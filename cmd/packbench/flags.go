package main

import (
	"flag"
	"fmt"

	"packunpack/internal/transport"
)

// simOnlyFlags maps every packbench flag that only affects the
// virtual-time sweep to the reason it cannot apply to -backend real
// (which runs the fixed realworld measured-speedup family). Setting one
// together with the real backend is a hard error rather than a silent
// no-op: a user who asked for fault injection or a trace directory must
// not get a clean-looking run that quietly did neither.
var simOnlyFlags = map[string]string{
	"faults":     "fault injection is a modelling device of the emulator's omniscient network",
	"sched":      "emulator scheduling modes do not apply to the real backend's OS threads",
	"trace-dir":  "per-point trace dumps cover the virtual-time experiment grid; use packtrace -backend real for a wall-clock trace",
	"plan-gate":  "the plan-cache amortization measurement runs on the virtual-time sweep",
	"flight-dir": "the sweep flight recorder covers the virtual-time experiment grid; use packtrace -backend real -flight-dir for one real run",
	"exp":        "the real backend runs the fixed realworld experiment family",
	"service":    "the serving-layer soak's latency model runs in virtual time on the emulator; use packserve -backend real for a wall-clock serving run",
}

// setFlagNames returns the names of the flags explicitly set on the
// command line, in flag.Visit (lexical) order.
func setFlagNames(fs *flag.FlagSet) []string {
	var set []string
	fs.Visit(func(f *flag.Flag) { set = append(set, f.Name) })
	return set
}

// checkBackendFlags rejects explicitly set sim-only flags under the
// real backend. set is the list of flag names the user passed.
func checkBackendFlags(backend transport.Backend, set []string) error {
	if backend != transport.BackendReal {
		return nil
	}
	for _, name := range set {
		if why, ok := simOnlyFlags[name]; ok {
			return fmt.Errorf("-%s is sim-only: %s (drop the flag or use -backend sim)", name, why)
		}
	}
	return nil
}
