package main

import (
	"flag"
	"strings"
	"testing"

	"packunpack/internal/transport"
)

// TestSimOnlyFlagsFailFastUnderRealBackend pins the flag-hygiene
// contract: every sim-only flag must be rejected, by name, when the
// real backend is selected — never silently ignored.
func TestSimOnlyFlagsFailFastUnderRealBackend(t *testing.T) {
	for name := range simOnlyFlags {
		err := checkBackendFlags(transport.BackendReal, []string{name})
		if err == nil {
			t.Errorf("-%s under -backend real: want error, got nil", name)
			continue
		}
		if !strings.Contains(err.Error(), "-"+name) || !strings.Contains(err.Error(), "sim-only") {
			t.Errorf("-%s error does not name the flag as sim-only: %v", name, err)
		}
	}
}

// TestBackendNeutralFlagsPass: the flags the realbench make target uses
// must stay accepted, and sim runs accept everything.
func TestBackendNeutralFlagsPass(t *testing.T) {
	// Mirrors `make realbench` and the real perf-report CI step.
	for _, set := range [][]string{
		{"backend", "seed", "real-gate"},
		{"backend", "quick", "seed", "json"},
		{"backend", "metrics", "metrics-addr", "samples", "parallel", "out", "cpuprofile", "memprofile"},
	} {
		if err := checkBackendFlags(transport.BackendReal, set); err != nil {
			t.Errorf("real backend rejected %v: %v", set, err)
		}
	}
	if err := checkBackendFlags(transport.BackendSim, []string{"faults", "sched", "trace-dir", "plan-gate", "flight-dir", "exp"}); err != nil {
		t.Errorf("sim backend rejected sim flags: %v", err)
	}
}

// TestParsedCommandLineFailsFast runs the same flag.Visit plumbing main
// uses over a parsed FlagSet, end to end.
func TestParsedCommandLineFailsFast(t *testing.T) {
	fs := flag.NewFlagSet("packbench", flag.ContinueOnError)
	fs.String("backend", "sim", "")
	fs.String("faults", "", "")
	fs.String("exp", "all", "")
	if err := fs.Parse([]string{"-backend", "real", "-faults", "42:drop=0.01"}); err != nil {
		t.Fatal(err)
	}
	backend, err := transport.ParseBackend(fs.Lookup("backend").Value.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := checkBackendFlags(backend, setFlagNames(fs)); err == nil {
		t.Fatal("-backend real -faults did not fail fast")
	} else if !strings.Contains(err.Error(), "-faults") {
		t.Fatalf("error does not name -faults: %v", err)
	}
}
