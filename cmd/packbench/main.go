// Command packbench regenerates the tables and figures of the paper's
// evaluation section on the emulated coarse-grained machine.
//
// Usage:
//
//	packbench -exp all            # everything (DESIGN.md experiment index)
//	packbench -exp fig3           # one artifact: fig3|fig4|fig5|table1|table2|scale|prs|ablate
//	packbench -exp table2 -quick  # trimmed parameter sets (seconds instead of minutes)
//	packbench -parallel 1         # serial sweep (output is identical either way)
//	packbench -sched goroutine    # concurrent emulator mode (default: coop)
//	packbench -json perf.json     # also write a host-performance report
//	packbench -samples 5          # repeat each replay 5x for robust wall stats
//	packbench -exp faults -quick  # fault-injection robustness sweep (hidden from 'all')
//	packbench -faults 42:drop=0.01,dup=0.005  # inject faults into any experiment's machines
//	packbench -backend real       # measured wall-clock speedup on the real shared-memory backend
//	packbench -backend real -real-gate 2.0  # fail unless P=8 speedup >= 2x (make realbench)
//	packbench -backend real -json perf.json # v6 report with the real_world telemetry curve
//	packbench -metrics            # attach telemetry to every machine; print the Prometheus exposition
//	packbench -metrics-addr :9100 # additionally serve it live (/metrics, /vars) while running
//	packbench -flight-dir crash   # post-mortem flight dump if a sweep machine deadlocks or aborts
//	packbench -list               # show the available experiment ids
//
// All reported times are virtual machine times under the two-level
// cost model (CM-5-flavoured constants), in milliseconds. The -parallel
// flag only changes how fast the host gets there: experiment points run
// on a worker pool, but every virtual measurement and every rendered
// table is byte-identical to the serial run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"packunpack/internal/bench"
	"packunpack/internal/metrics"
	"packunpack/internal/serve/loadgen"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (or 'all', or a comma list)")
	quick := flag.Bool("quick", false, "use trimmed parameter sets")
	seed := flag.Uint64("seed", 1, "seed for the random masks")
	list := flag.Bool("list", false, "list experiment ids and exit")
	outPath := flag.String("out", "", "also write the tables to this file")
	parallel := flag.Int("parallel", runtime.NumCPU(), "host worker pool size for the sweep engine (1 = serial)")
	schedFlag := flag.String("sched", "coop", "emulator scheduling mode: coop (cooperative, virtual-clock ordered) or goroutine (concurrent)")
	jsonPath := flag.String("json", "", "write a host-performance report (schema "+bench.PerfSchema+") to this file")
	traceDir := flag.String("trace-dir", "", "run every experiment point with event tracing on and dump one Chrome trace-event JSON per point into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (samples carry experiment/stage/scheme labels)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	samples := flag.Int("samples", 1, "wall-clock samples per experiment: repeat each warm-cache replay this many times and report median/p10/p90/MAD")
	faultsFlag := flag.String("faults", "", "run every measured machine under a deterministic fault-injection plan, 'seed[:name=value,...]' (names: drop,dup,reorder,delay,stall,delaymax,stallmax,timeout,retries), e.g. '42:drop=0.01,dup=0.005'")
	planGate := flag.Bool("plan-gate", false, "measure plan-cache wall-clock amortization (plan_repeat) and fail unless hit rate >= 0.99 and wall speedup >= 1.3x (make planbench)")
	backendFlag := flag.String("backend", "sim", "transport backend: sim runs the virtual-time experiments; real runs the measured-vs-modeled speedup family (realworld) on the shared-memory parallel backend")
	realGate := flag.Float64("real-gate", 0, "with -backend real: fail unless the measured P=8 speedup over P=1 reaches this factor (auto-skipped when the host has fewer than 8 CPUs)")
	metricsFlag := flag.Bool("metrics", false, "attach a wall-clock telemetry registry to every measured machine and print the Prometheus exposition after the tables (tables and virtual times are unaffected)")
	metricsAddr := flag.String("metrics-addr", "", "serve the telemetry registry live over HTTP at this address (/metrics Prometheus text, /vars expvar JSON); implies -metrics")
	flightDir := flag.String("flight-dir", "", "attach the always-on flight recorder to every measured sweep machine and dump its window (Chrome trace + text post-mortem) into this directory if a machine deadlocks or exhausts a fault budget")
	serviceN := flag.Int("service", 0, "run the serving-layer soak with this many seeded arrivals (loadgen DES over internal/serve; deterministic virtual latency quantiles, schema v7 service object in -json reports)")
	flag.Parse()

	if *samples < 1 {
		fmt.Fprintf(os.Stderr, "packbench: -samples must be >= 1\n")
		os.Exit(2)
	}

	sched, err := sim.ParseSched(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
		os.Exit(2)
	}
	backend, err := transport.ParseBackend(*backendFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
		os.Exit(2)
	}
	if *realGate != 0 && backend != transport.BackendReal {
		fmt.Fprintf(os.Stderr, "packbench: -real-gate needs -backend real\n")
		os.Exit(2)
	}
	if err := checkBackendFlags(backend, setFlagNames(flag.CommandLine)); err != nil {
		fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
		os.Exit(2)
	}

	suite := bench.NewSuite(*quick, *seed)
	suite.Workers = *parallel
	suite.Sched = sched
	suite.Samples = *samples
	if *faultsFlag != "" {
		f, err := sim.ParseFaults(*faultsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(2)
		}
		suite.Faults = f
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		suite.TraceDir = *traceDir
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		suite.FlightDir = *flightDir
	}

	// Telemetry: one registry shared by every measured machine on the
	// sim sweep. The real backend builds a fresh registry per processor
	// count inside MeasureRealWorld (per-point derived figures must not
	// mix traffic), so there the OnRealRegistry hook keeps the live
	// server and the final exposition pointed at the current machine.
	var reg *metrics.Registry
	var srv *metrics.Server
	if *metricsFlag || *metricsAddr != "" {
		reg = metrics.NewRegistry()
		suite.Metrics = reg
	}
	if *metricsAddr != "" {
		var err error
		srv, err = metrics.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving http://%s/metrics and /vars\n", srv.Addr())
	}
	if reg != nil {
		suite.OnRealRegistry = func(r *metrics.Registry) {
			reg = r
			if srv != nil {
				srv.SetRegistry(r)
			}
		}
	}

	// The real backend runs the measured-speedup family and exits: its
	// figures are host wall clock, so it shares no machinery (and no
	// baselines) with the virtual-time sweep below.
	if backend == transport.BackendReal {
		fmt.Printf("packbench: realworld (quick=%v, seed=%d, backend=real)\n", *quick, *seed)
		env := suite.Environment()
		fmt.Printf("env: %s\n\n", env)
		start := time.Now()
		res, err := suite.MeasureRealWorld()
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		wallMS := float64(time.Since(start)) / float64(time.Millisecond)
		tables := []*bench.Table{res.Table()}
		bench.RenderAll(os.Stdout, tables)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
				os.Exit(1)
			}
			bench.RenderAll(f, tables)
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *outPath)
		}
		if *jsonPath != "" {
			// One summary row stands in for the experiment grid (the v6
			// real_world object carries the full curve): every figure in
			// it is a host wall measurement except virtual_ms, which sums
			// the model half's predictions.
			row := bench.ExperimentPerf{
				ID:     "realworld",
				Tables: 1,
				Rows:   len(res.Points),
				WallMS: wallMS,
				// Each point runs one emulated machine plus Samples
				// measured real runs.
				MachineRuns: int64(len(res.Points) * (1 + res.Samples)),
				Derived:     res.DerivedMeans(),
			}
			for _, pt := range res.Points {
				row.VirtualMS += pt.ModelMS
			}
			rows := []bench.ExperimentPerf{row}
			report := bench.PerfReport{
				Schema:    bench.PerfSchema,
				GoVersion: runtime.Version(),
				NumCPU:    runtime.NumCPU(),
				Parallel:  *parallel,
				Sched:     sched.String(),
				Quick:     *quick,
				Seed:      *seed,
				Samples:   *samples,
				Env:       &env,

				Experiments: rows,
				Total:       bench.SumPerf(rows),
				RealWorld:   &res,
			}
			writeReport(*jsonPath, report)
		}
		if *metricsFlag && reg != nil {
			// reg was swapped by the OnRealRegistry hook, so this is the
			// last measured point's registry (P=8), not the empty suite one.
			fmt.Printf("\ntelemetry (Prometheus text format, last measured point):\n")
			if err := metrics.WritePrometheus(os.Stdout, reg); err != nil {
				fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *realGate > 0 {
			if res.HostCPUs < 8 {
				fmt.Printf("real gate skipped: host has %d CPUs, the P=8 speedup contract needs at least 8\n", res.HostCPUs)
				return
			}
			if err := res.Gate(8, *realGate); err != nil {
				fmt.Fprintf(os.Stderr, "packbench: real gate failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("real gate passed: P=8 speedup >= %.2fx\n", *realGate)
		}
		return
	}

	if *list {
		fmt.Println("available experiments:")
		canonical := make(map[string]bool)
		for _, id := range suite.ExperimentIDs() {
			canonical[id] = true
			fmt.Printf("  %s\n", id)
		}
		// Hidden experiments run by explicit id only and never join
		// "-exp all" or the perf baselines.
		var hidden []string
		for id := range suite.Registry() {
			if !canonical[id] {
				hidden = append(hidden, id)
			}
		}
		sort.Strings(hidden)
		for _, id := range hidden {
			fmt.Printf("  %s (hidden: excluded from 'all')\n", id)
		}
		return
	}

	ids := suite.ExperimentIDs()
	if *exp != "all" {
		ids = nil
		known := suite.Registry()
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := known[id]; !ok {
				fmt.Fprintf(os.Stderr, "packbench: unknown experiment %q (known: %s)\n",
					id, strings.Join(suite.ExperimentIDs(), ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		// LIFO: the profile must be flushed before the file closes.
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	var tables []*bench.Table
	perfs := make([]bench.ExperimentPerf, 0, 2*len(ids))
	for _, id := range ids {
		t, perf, err := suite.RunInstrumented(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		tables = append(tables, t...)
		perfs = append(perfs, perf...)
	}

	// The plan_repeat wall measurement runs when gating is requested or
	// when a perf report that includes the planrepeat experiment is
	// being written (so BENCH baselines record the amortization).
	var planPerf *bench.PlanRepeatPerf
	needPlanPerf := *planGate
	if *jsonPath != "" {
		for _, id := range ids {
			if id == "planrepeat" {
				needPlanPerf = true
			}
		}
	}
	if needPlanPerf {
		pp := suite.MeasurePlanRepeat()
		planPerf = &pp
		fmt.Printf("plan_repeat: %s — %d calls, unplanned %.4f ms/call, planned %.4f ms/call (%.2fx wall, %.2fx virtual), hit rate %.4f\n",
			pp.Config, pp.Calls, pp.UnplannedWallMS, pp.PlannedWallMS, pp.WallSpeedup, pp.VirtualSpeedup, pp.HitRate)
		if *planGate {
			if err := pp.Gate(0.99, 1.3); err != nil {
				fmt.Fprintf(os.Stderr, "packbench: plan gate failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("plan gate passed: hit rate >= 0.99, wall speedup >= 1.3x\n")
		}
	}

	// The service soak is the loadgen discrete-event model over
	// internal/serve: byte-verifies the workload mix against the
	// sequential reference, then replays the seeded arrival schedule.
	// Its outputs are deterministic virtual time, reported in the v7
	// "service" object and exact-compared by packdiff.
	var servicePerf *bench.ServicePerf
	if *serviceN > 0 {
		lr, err := loadgen.Run(loadgen.Config{Seed: *seed, Requests: *serviceN, Sched: sched})
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: service soak: %v\n", err)
			os.Exit(1)
		}
		servicePerf = &bench.ServicePerf{
			Seed: lr.Seed, Requests: lr.Requests, Admitted: lr.Admitted,
			Overloaded: lr.Overloaded, Workers: 8, Queue: 256,
			RatePerSec: lr.RatePerSec, DurationUS: lr.DurationUS,
			ThroughputRPS: lr.ThroughputRPS,
			P50US:         lr.P50US, P99US: lr.P99US, P999US: lr.P999US, SumUS: lr.SumUS,
		}
		for _, c := range lr.Classes {
			servicePerf.Classes = append(servicePerf.Classes, bench.ServiceClassPerf{
				Name: c.Name, Weight: c.Weight, ServiceUS: c.ServiceUS, Arrivals: c.Arrivals,
			})
		}
		fmt.Printf("service: %d requests at %.1f req/s — admitted %d, overloaded %d, p50/p99/p999 %d/%d/%d virtual µs (checksum %d)\n",
			lr.Requests, lr.RatePerSec, lr.Admitted, lr.Overloaded, lr.P50US, lr.P99US, lr.P999US, lr.SumUS)
	}

	// The header carries the environment fingerprint and sample count
	// so a pasted table is self-describing: virtual times are
	// host-independent, but anyone comparing the wall figures needs to
	// know what they were measured under.
	env := suite.Environment()
	fmt.Printf("packbench: %s (quick=%v, seed=%d, sched=%s)\n", *exp, *quick, *seed, sched)
	fmt.Printf("env: %s\n", env)
	fmt.Printf("machine model: CM-5-flavoured two-level cost model; times are virtual ms\n\n")
	bench.RenderAll(os.Stdout, tables)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		bench.RenderAll(f, tables)
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *jsonPath != "" {
		report := bench.PerfReport{
			Schema:      bench.PerfSchema,
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			Parallel:    *parallel,
			Sched:       sched.String(),
			Quick:       *quick,
			Seed:        *seed,
			Samples:     *samples,
			Env:         &env,
			Experiments: perfs,
			Total:       bench.SumPerf(perfs),
			PlanRepeat:  planPerf,
			Service:     servicePerf,
		}
		writeReport(*jsonPath, report)
	}
	if *metricsFlag && reg != nil {
		fmt.Printf("\ntelemetry (Prometheus text format):\n")
		if err := metrics.WritePrometheus(os.Stdout, reg); err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("generated %d tables in %.1fs wall time (parallel=%d)\n", len(tables), time.Since(start).Seconds(), *parallel)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *memProfile)
	}
}

// writeReport marshals the perf report, writes it, and validates the
// written file by reading it back: trajectory tooling diffs these
// reports blind, so a malformed or mis-versioned file should fail
// here, not there.
func writeReport(path string, report bench.PerfReport) {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
		os.Exit(1)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
		os.Exit(1)
	}
	var check bench.PerfReport
	if err := json.Unmarshal(written, &check); err != nil {
		fmt.Fprintf(os.Stderr, "packbench: written report does not parse: %v\n", err)
		os.Exit(1)
	}
	if check.Schema != bench.PerfSchema {
		fmt.Fprintf(os.Stderr, "packbench: written report carries schema %q, want %q\n", check.Schema, bench.PerfSchema)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (schema %s)\n", path, check.Schema)
}
