// Command packbench regenerates the tables and figures of the paper's
// evaluation section on the emulated coarse-grained machine.
//
// Usage:
//
//	packbench -exp all            # everything (DESIGN.md experiment index)
//	packbench -exp fig3           # one artifact: fig3|fig4|fig5|table1|table2|scale|prs|ablate
//	packbench -exp table2 -quick  # trimmed parameter sets (seconds instead of minutes)
//	packbench -list               # show the available experiment ids
//
// All reported times are virtual machine times under the two-level
// cost model (CM-5-flavoured constants), in milliseconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"packunpack/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (or 'all')")
	quick := flag.Bool("quick", false, "use trimmed parameter sets")
	seed := flag.Uint64("seed", 1, "seed for the random masks")
	list := flag.Bool("list", false, "list experiment ids and exit")
	outPath := flag.String("out", "", "also write the tables to this file")
	flag.Parse()

	suite := bench.NewSuite(*quick, *seed)
	reg := suite.Registry()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range suite.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	start := time.Now()
	var tables []*bench.Table
	if *exp == "all" {
		tables = suite.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			run, ok := reg[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "packbench: unknown experiment %q (known: %s)\n",
					id, strings.Join(suite.ExperimentIDs(), ", "))
				os.Exit(2)
			}
			tables = append(tables, run()...)
		}
	}

	fmt.Printf("packbench: %s (quick=%v, seed=%d)\n", *exp, *quick, *seed)
	fmt.Printf("machine model: CM-5-flavoured two-level cost model; times are virtual ms\n\n")
	bench.RenderAll(os.Stdout, tables)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		bench.RenderAll(f, tables)
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "packbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	fmt.Printf("generated %d tables in %.1fs wall time\n", len(tables), time.Since(start).Seconds())
}
