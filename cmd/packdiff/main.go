// Command packdiff compares two packbench perf reports (schema
// packbench-perf/v1 through v7) under the pipeline's exact-vs-noisy
// rule:
//
//   - virtual_ms and the derived registry means are exact replays of
//     the cost model — any drift between reports of the same grid is a
//     correctness regression in the emulator and exits non-zero;
//   - wall-clock and allocation figures are host measurements — they
//     are compared per experiment row against a relative threshold,
//     and (when both reports carry raw samples, schema v4) a
//     Mann–Whitney U test separates real deltas from noise.
//
// Usage:
//
//	packdiff OLD.json NEW.json              # markdown delta table, exit 1 on virtual drift
//	packdiff -format tsv OLD.json NEW.json  # tab-separated table
//	packdiff -threshold 0.05 -alpha 0.01 -fail-on-wall OLD.json NEW.json
//	packdiff -o delta.md OLD.json NEW.json  # also used by `make perfgate`
//
// Exit codes: 0 clean; 1 virtual-metric drift; 2 usage or unreadable
// report; 3 significant wall-clock regression (only with
// -fail-on-wall).
//
// Exact comparison assumes both reports were generated at -parallel 1
// with the same experiment set, seed and -quick setting (worker
// completion order perturbs the floating-point accumulation of
// virtual_ms, and the parallel collect pass over-collects on
// data-dependent grids). `make perfgate` pins those knobs.
//
// Schema skew is tolerated: when the two reports carry different
// schema versions or experiment grids (a newer schema typically adds
// experiments — v5 added planrepeat and the plan_repeat object, v6
// the real_world telemetry object and new derived keys, v7 the
// service soak object), the fields and aggregate rows that do not
// measure the same work are warned about and skipped, while every
// shared per-experiment row is still compared exactly. The v7 service
// object is itself deterministic virtual time: when both reports
// carry one under the same configuration it is compared exactly and
// drifts fail the gate like any virtual metric.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"packunpack/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative wall/alloc delta |new/old - 1| worth flagging")
	alpha := flag.Float64("alpha", 0.05, "Mann-Whitney significance level for sampled wall deltas")
	format := flag.String("format", "md", "delta table format: md or tsv")
	outPath := flag.String("o", "", "write the delta table to this file instead of stdout")
	failOnWall := flag.Bool("fail-on-wall", false, "exit 3 when a significant wall-clock regression exceeds the threshold")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: packdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *format != "md" && *format != "tsv" {
		fmt.Fprintf(os.Stderr, "packdiff: unknown format %q (md or tsv)\n", *format)
		os.Exit(2)
	}

	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldRep, err := bench.LoadPerfReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "packdiff: %v\n", err)
		os.Exit(2)
	}
	newRep, err := bench.LoadPerfReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "packdiff: %v\n", err)
		os.Exit(2)
	}

	d := bench.DiffReports(oldRep, newRep, bench.DiffOptions{Threshold: *threshold, Alpha: *alpha})
	d.OldPath, d.NewPath = oldPath, newPath

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "packdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	switch *format {
	case "md":
		d.WriteMarkdown(out)
	case "tsv":
		d.WriteTSV(out)
	}

	if vm := d.VirtualMismatches(); vm > 0 {
		fmt.Fprintf(os.Stderr, "packdiff: %d row(s) drifted on exact virtual metrics — correctness regression\n", vm)
		os.Exit(1)
	}
	if len(d.ServiceDrift) > 0 {
		fmt.Fprintf(os.Stderr, "packdiff: service object drifted on exact virtual metrics — correctness regression\n")
		os.Exit(1)
	}
	if *failOnWall {
		if wr := d.WallRegressions(); wr > 0 {
			fmt.Fprintf(os.Stderr, "packdiff: %d row(s) regressed on wall clock beyond ±%.0f%%\n", wr, *threshold*100)
			os.Exit(3)
		}
	}
}
