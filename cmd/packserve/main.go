// Command packserve drives the concurrent PACK/UNPACK service
// (internal/serve) with the open-loop traffic harness
// (internal/serve/loadgen) and reports throughput and latency.
//
//	packserve                                  # 100k-request deterministic sim run
//	packserve -requests 1000000 -seed 1        # the million-request schedule
//	packserve -soak                            # additionally execute every request, byte-verified
//	packserve -gate-p99 8000                   # exit 1 if p99 latency exceeds 8000 virtual µs
//	packserve -backend real -requests 5000     # wall-clock paced run on the real backend
//	packserve -chaos "7:drop=0.2" -soak        # chaos soak: jobs succeed byte-identically or fail structured
//	packserve -json run.json -trace-out svc.json  # machine-readable report + Perfetto schedule
//
// On the sim backend the run is a discrete-event simulation of the
// admission queue in virtual microseconds: every class's service time
// is first measured as the warm plan-cached virtual makespan of the
// real job through a real server (byte-verified against the
// sequential reference), and the reported histogram is then a pure
// function of the seed — identical across runs and machines, which is
// what lets `make servgate` enforce a p99 threshold without noise.
// With -soak every request additionally executes for real with its
// own payload and is byte-compared against internal/seq. With
// -backend real the same deterministic schedule is paced in wall
// time and the latencies are host measurements (never gateable).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"packunpack/internal/serve/loadgen"
	"packunpack/internal/sim"
	"packunpack/internal/trace"
	"packunpack/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("packserve: ")
	var (
		requests = flag.Int("requests", 100_000, "arrivals to generate")
		seed     = flag.Uint64("seed", 1, "master seed: arrival schedule, class choices, payloads")
		rate     = flag.Float64("rate", 0, "arrival rate per second (0: 70% of modelled pool capacity)")
		workers  = flag.Int("workers", 8, "service worker-pool size")
		queue    = flag.Int("queue", 256, "admission-queue capacity")
		backend  = flag.String("backend", "sim", "backend: sim (virtual clock, deterministic) or real (wall clock, paced)")
		sched    = flag.String("sched", "coop", "sim scheduling mode: coop or goroutine")
		soak     = flag.Bool("soak", false, "execute every request through the server, byte-verified (sim)")
		mix      = flag.String("mix", "default", "workload mix: default (small/medium/large) or small (tiny layouts, budget for million-request execute soaks)")
		chaos    = flag.String("chaos", "", "chaos mode fault spec, e.g. \"7:drop=0.2,stall=0.1\" (sim only)")
		gateP99  = flag.Int64("gate-p99", 0, "fail (exit 1) if p99 latency exceeds this many virtual µs (sim only)")
		jsonOut  = flag.String("json", "", "write the run report as JSON to this file")
		traceOut = flag.String("trace-out", "", "write the service schedule as Chrome trace JSON (load in ui.perfetto.dev)")
	)
	flag.Parse()

	b, err := transport.ParseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := sim.ParseSched(*sched)
	if err != nil {
		log.Fatal(err)
	}
	cfg := loadgen.Config{
		Seed: *seed, Requests: *requests, RatePerSec: *rate,
		Workers: *workers, Queue: *queue,
		Sched: sc, Execute: *soak,
	}
	switch *mix {
	case "default":
	case "small":
		cfg.Mix = loadgen.SmallMix()
	default:
		log.Fatalf("unknown -mix %q (want default or small)", *mix)
	}
	if *chaos != "" {
		fc, err := sim.ParseFaults(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Chaos = fc
	}

	var res *loadgen.Result
	switch b {
	case transport.BackendReal:
		if *soak || *gateP99 > 0 || cfg.Chaos != nil {
			log.Fatal("-soak, -gate-p99 and -chaos are sim-only (the real backend's latencies are wall measurements)")
		}
		cfg.Backend = transport.BackendReal
		res, err = loadgen.RunWall(cfg)
	default:
		res, err = loadgen.Run(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	unit := "virtual µs"
	if b == transport.BackendReal {
		unit = "wall µs"
	}
	fmt.Printf("packserve: seed %d, %d requests at %.1f req/s over %d workers (queue %d, %s backend)\n",
		res.Seed, res.Requests, res.RatePerSec, *workers, *queue, b)
	fmt.Printf("  admitted %d, overloaded %d, duration %.3f s, throughput %.1f req/s\n",
		res.Admitted, res.Overloaded, float64(res.DurationUS)/1e6, res.ThroughputRPS)
	fmt.Printf("  latency (%s): p50 %d  p99 %d  p999 %d  (checksum %d)\n",
		unit, res.P50US, res.P99US, res.P999US, res.SumUS)
	for _, c := range res.Classes {
		fmt.Printf("  class %-14s weight %d  service %6d µs  arrivals %d\n",
			c.Name, c.Weight, c.ServiceUS, c.Arrivals)
	}
	if *soak {
		fmt.Printf("  soak: executed %d requests byte-identically in %.1f ms (%.0f req/s wall)",
			res.Executed, res.ExecWallMS, float64(res.Executed)/res.ExecWallMS*1e3)
		if res.ExecFaulted > 0 {
			fmt.Printf(", %d structured chaos failures", res.ExecFaulted)
		}
		fmt.Println()
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		spans := make([]trace.ServiceSpan, len(res.Spans))
		for i, s := range res.Spans {
			spans[i] = trace.ServiceSpan{Class: s.Class, Worker: s.Worker,
				ArrivalUS: s.ArrivalUS, StartUS: s.StartUS, DoneUS: s.DoneUS}
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteServiceChrome(f, spans); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *gateP99 > 0 && res.P99US > *gateP99 {
		log.Fatalf("servgate: p99 %d µs exceeds the %d µs threshold", res.P99US, *gateP99)
	}
	if *gateP99 > 0 {
		fmt.Printf("  servgate: p99 %d µs within the %d µs threshold\n", res.P99US, *gateP99)
	}
}
