// packreport renders packbench perf baselines (BENCH_*.json, schema
// packbench-perf/v1 through v6) into one self-contained static HTML
// dashboard: wall-clock and virtual-time trends across the baseline
// sequence, derived-telemetry trends, plan-cache amortization, the
// paper's scheme-crossover model, and the real-backend speedup curve
// when a baseline carries one.
//
// Baselines are given in sequence order — the trend charts read
// left-to-right as the PR history:
//
//	packreport -o report.html BENCH_pr1.json BENCH_pr2.json ... BENCH_pr8.json
//	packreport BENCH_pr8.json            # single baseline to stdout
//
// Output is deterministic for the same inputs (no timestamps), so the
// dashboard is golden-testable and diff-friendly in review.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"packunpack/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("packreport: ")
	out := flag.String("o", "", "output HTML path (default stdout)")
	title := flag.String("title", "PACK/UNPACK performance baselines", "dashboard title")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: packreport [-o report.html] [-title s] BENCH_a.json [BENCH_b.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	files, err := report.LoadAll(flag.Args())
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := report.WriteHTML(w, *title, files); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "packreport: wrote %s (%d baselines)\n", *out, len(files))
	}
}
