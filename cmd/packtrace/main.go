// Command packtrace runs one PACK (or UNPACK) configuration on the
// emulated machine with the observability layer enabled and renders
// what happened: an ASCII Gantt chart of every processor's virtual
// time (the default), a Chrome trace-event JSON file for
// ui.perfetto.dev, the P×P communication matrix, and the virtual-time
// critical path — a visual companion to the packbench tables.
//
// The array shape and distribution are given in HPF directive
// notation:
//
//	packtrace -shape 16384 -dist "CYCLIC(16) ONTO 16" -scheme cms
//	packtrace -shape 64x64 -dist "CYCLIC(2), CYCLIC(2) ONTO 4x4" -density 0.3
//	packtrace -op unpack -scheme css -dist "CYCLIC ONTO 16"
//	packtrace -format chrome -o trace.json     # open in ui.perfetto.dev
//	packtrace -matrix                          # P×P messages/words, per phase
//	packtrace -critpath                        # blocking chain from the makespan
//	packtrace -backend real -format chrome -o wall.json  # wall-clock trace of the real backend
//	packtrace -jsonl events.jsonl              # stream the event feed as JSON Lines (bounded memory)
//	packtrace -flight-dir crash                # dump the flight recorder on deadlock or fault abort
//	packtrace -open crash/pack-cms-p16.flight.trace.json  # text digest of any Chrome trace we wrote
//
// With -backend real the same configuration executes on the real
// shared-memory backend: every timestamp in the output is wall-clock
// microseconds instead of virtual time (never both in one capture),
// the Gantt axis says so, and the -matrix picture is rebuilt from the
// telemetry counter registry instead of the event stream — the
// critical path is unavailable there (it is defined over the virtual
// cost model).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"packunpack/internal/dist"
	"packunpack/internal/hpf"
	"packunpack/internal/mask"
	"packunpack/internal/metrics"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
	"packunpack/internal/trace"
	"packunpack/internal/transport"
)

func parseShape(s string) ([]int, error) {
	var shape []int
	for _, tok := range strings.Split(strings.ToLower(s), "x") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad shape extent %q", tok)
		}
		shape = append(shape, v)
	}
	return shape, nil
}

func main() {
	shapeFlag := flag.String("shape", "16384", "global array shape, e.g. 16384 or 64x64 (dimension 0 first)")
	distFlag := flag.String("dist", "CYCLIC(16) ONTO 16", "HPF DISTRIBUTE directive, e.g. \"CYCLIC(2), BLOCK ONTO 4x4\"")
	density := flag.Float64("density", 0.5, "mask density in [0,1]")
	schemeName := flag.String("scheme", "cms", "scheme: sss|css|cms")
	op := flag.String("op", "pack", "operation: pack|unpack")
	width := flag.Int("width", 72, "gantt chart width in columns")
	seed := flag.Uint64("seed", 1, "mask seed")
	format := flag.String("format", "gantt", "timeline format: gantt (ASCII) or chrome (trace-event JSON for ui.perfetto.dev)")
	outPath := flag.String("o", "", "write the chrome trace to this file (default stdout)")
	matrix := flag.Bool("matrix", false, "print the P x P communication matrix (messages/words, per phase)")
	critpath := flag.Bool("critpath", false, "print the virtual-time critical path (blocking chain ending at the makespan)")
	schedFlag := flag.String("sched", "coop", "emulator scheduling mode: coop (cooperative, deterministic event order) or goroutine (concurrent)")
	backendFlag := flag.String("backend", "sim", "transport backend: sim traces the virtual-clock emulator, real traces the shared-memory parallel backend in wall-clock microseconds")
	jsonlPath := flag.String("jsonl", "", "stream every trace event to this file as JSON Lines (one event per line; bounded memory regardless of run size)")
	flightDir := flag.String("flight-dir", "", "attach the always-on flight recorder and dump its window (Chrome trace + text post-mortem) into this directory if the run deadlocks or exhausts a fault budget")
	openPath := flag.String("open", "", "open a Chrome trace-event JSON file written by this toolchain (packtrace -format chrome, packbench -trace-dir, or a flight dump) and print a text digest")
	flag.Parse()

	if *openPath != "" {
		f, err := os.Open(*openPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.SummarizeChrome(os.Stdout, f); err != nil {
			log.Fatal(err)
		}
		return
	}

	var scheme pack.Scheme
	switch *schemeName {
	case "sss":
		scheme = pack.SchemeSSS
	case "css":
		scheme = pack.SchemeCSS
	case "cms":
		scheme = pack.SchemeCMS
	default:
		log.Fatalf("unknown scheme %q", *schemeName)
	}
	if *op == "unpack" && scheme == pack.SchemeCMS {
		log.Fatalf("UNPACK supports sss and css only")
	}
	if *format != "gantt" && *format != "chrome" {
		log.Fatalf("unknown format %q (want gantt or chrome)", *format)
	}
	sched, err := sim.ParseSched(*schedFlag)
	if err != nil {
		log.Fatal(err)
	}
	backend, err := transport.ParseBackend(*backendFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := checkBackendFlags(backend, setFlagNames(flag.CommandLine)); err != nil {
		log.Fatal(err)
	}

	shape, err := parseShape(*shapeFlag)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := hpf.ParseDist(*distFlag, shape...)
	if err != nil {
		log.Fatalf("invalid distribution: %v", err)
	}
	gen := mask.NewRandom(*density, *seed, shape...)

	// The real backend's -matrix picture comes from the telemetry
	// counter registry rather than the event stream, so attach one.
	var reg *metrics.Registry
	if backend == transport.BackendReal {
		reg = metrics.NewRegistry()
	}

	// Streaming sink (-jsonl) and flight recorder (-flight-dir): both
	// ride the same event feed as the retained capture and work on
	// either backend.
	var jsonlFile *os.File
	var jsonlSink *trace.JSONLSink
	if *jsonlPath != "" {
		jsonlFile, err = os.Create(*jsonlPath)
		if err != nil {
			log.Fatal(err)
		}
		jsonlSink = trace.NewJSONLSink(jsonlFile)
	}
	var fr *sim.FlightRecorder
	if *flightDir != "" {
		fr = sim.MustNewFlightRecorder(layout.Procs(), sim.DefaultFlightCap)
	}

	var sink sim.EventSink
	if jsonlSink != nil {
		sink = jsonlSink
	}
	machine, err := transport.New(backend, sim.Config{
		Procs:   layout.Procs(),
		Sched:   sched,
		Params:  sim.CM5Params(),
		Record:  true,
		Trace:   true,
		Metrics: reg,
		Sink:    sink,
		Flight:  fr,
	})
	if err != nil {
		log.Fatal(err)
	}
	size := mask.Count(gen, shape...)
	vec, err := dist.NewVectorDist(size, layout.Procs(), 0)
	if err != nil {
		log.Fatal(err)
	}
	err = machine.Run(func(proc transport.Endpoint) {
		lm := mask.FillLocal(layout, proc.Rank(), gen)
		a := make([]int, layout.LocalSize())
		for i := range a {
			a[i] = proc.Rank()*layout.LocalSize() + i
		}
		var err error
		if *op == "unpack" {
			v := make([]int, vec.LocalLen(proc.Rank()))
			_, err = pack.Unpack(proc, layout, v, size, lm, a, pack.Options{Scheme: scheme})
		} else {
			_, err = pack.Pack(proc, layout, a, lm, pack.Options{Scheme: scheme})
		}
		if err != nil {
			panic(err)
		}
	})
	if jsonlSink != nil {
		// Flush whatever streamed — on a failed run the partial feed is
		// exactly the evidence worth keeping.
		if ferr := jsonlSink.Flush(); ferr != nil {
			fmt.Fprintf(os.Stderr, "packtrace: jsonl sink: %v\n", ferr)
		}
		if cerr := jsonlFile.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "packtrace: jsonl sink: %v\n", cerr)
		}
	}
	if err != nil {
		if fr != nil && trace.ShouldDumpFlight(err) {
			label := fmt.Sprintf("%s-%s-p%d", *op, scheme, layout.Procs())
			c := trace.FlightCapture(layout.Procs(), sim.CM5Params(), nil, fr)
			tp, sp, derr := trace.DumpFlight(*flightDir, label, c, err)
			if derr != nil {
				fmt.Fprintf(os.Stderr, "packtrace: flight dump failed: %v\n", derr)
			} else {
				fmt.Fprintf(os.Stderr, "packtrace: flight recorder dumped: %s and %s (render with packtrace -open)\n", tp, sp)
			}
		}
		log.Fatal(err)
	}
	if jsonlSink != nil {
		fmt.Fprintf(os.Stderr, "streamed events to %s (JSON Lines)\n", *jsonlPath)
	}
	var capture *trace.Capture
	timeUnit := "virtual time"
	switch m := machine.(type) {
	case *transport.SimMachine:
		capture = trace.CaptureMachine(m.M)
	case *transport.RealMachine:
		capture = trace.CaptureReal(m)
		timeUnit = "wall time"
	default:
		log.Fatalf("unknown machine type %T", machine)
	}

	if *format == "chrome" {
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			out = f
		}
		if err := trace.WriteChrome(out, capture); err != nil {
			log.Fatal(err)
		}
		if *outPath != "" {
			fmt.Fprintf(os.Stderr, "wrote %s (open in ui.perfetto.dev)\n", *outPath)
		}
		return
	}

	fmt.Printf("%s %s, shape %s, %s (P=%d), density %.0f%%, Size=%d, sched %s, backend %s\n\n",
		*op, scheme, *shapeFlag, hpf.Format(layout.Dims), layout.Procs(), *density*100, size, sched, backend)
	trace.GanttUnit(os.Stdout, capture.Spans, *width, timeUnit)
	fmt.Println()
	trace.Summary(os.Stdout, capture.Stats)
	if *matrix {
		fmt.Println()
		if reg != nil {
			// Real backend: the same P×P picture, rebuilt from the
			// telemetry counters (bytes/8 = words) instead of events.
			m, err := trace.MatrixFromMetrics(reg.Snapshot(), layout.Procs())
			if err != nil {
				log.Fatal(err)
			}
			trace.WriteMatrix(os.Stdout, m)
		} else {
			trace.WriteMatrix(os.Stdout, trace.BuildMatrix(capture))
		}
	}
	if *critpath {
		fmt.Println()
		rep, err := trace.CriticalPath(capture)
		if err != nil {
			log.Fatal(err)
		}
		trace.WriteCritPath(os.Stdout, rep)
	}
	if backend == transport.BackendReal {
		fmt.Printf("\ntotal wall time: %.3f ms\n", machine.MaxClock()/1000)
	} else {
		fmt.Printf("\ntotal simulated time: %.3f ms\n", machine.MaxClock()/1000)
	}
}
