// Command packtrace runs one PACK (or UNPACK) configuration on the
// emulated machine with timeline recording enabled and prints an ASCII
// Gantt chart of every processor's virtual time, plus the per-phase
// breakdown — a visual companion to the packbench tables.
//
// The array shape and distribution are given in HPF directive
// notation:
//
//	packtrace -shape 16384 -dist "CYCLIC(16) ONTO 16" -scheme cms
//	packtrace -shape 64x64 -dist "CYCLIC(2), CYCLIC(2) ONTO 4x4" -density 0.3
//	packtrace -op unpack -scheme css -dist "CYCLIC ONTO 16"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"packunpack/internal/dist"
	"packunpack/internal/hpf"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
	"packunpack/internal/trace"
)

func parseShape(s string) ([]int, error) {
	var shape []int
	for _, tok := range strings.Split(strings.ToLower(s), "x") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad shape extent %q", tok)
		}
		shape = append(shape, v)
	}
	return shape, nil
}

func main() {
	shapeFlag := flag.String("shape", "16384", "global array shape, e.g. 16384 or 64x64 (dimension 0 first)")
	distFlag := flag.String("dist", "CYCLIC(16) ONTO 16", "HPF DISTRIBUTE directive, e.g. \"CYCLIC(2), BLOCK ONTO 4x4\"")
	density := flag.Float64("density", 0.5, "mask density in [0,1]")
	schemeName := flag.String("scheme", "cms", "scheme: sss|css|cms")
	op := flag.String("op", "pack", "operation: pack|unpack")
	width := flag.Int("width", 72, "gantt chart width in columns")
	seed := flag.Uint64("seed", 1, "mask seed")
	flag.Parse()

	var scheme pack.Scheme
	switch *schemeName {
	case "sss":
		scheme = pack.SchemeSSS
	case "css":
		scheme = pack.SchemeCSS
	case "cms":
		scheme = pack.SchemeCMS
	default:
		log.Fatalf("unknown scheme %q", *schemeName)
	}
	if *op == "unpack" && scheme == pack.SchemeCMS {
		log.Fatalf("UNPACK supports sss and css only")
	}

	shape, err := parseShape(*shapeFlag)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := hpf.ParseDist(*distFlag, shape...)
	if err != nil {
		log.Fatalf("invalid distribution: %v", err)
	}
	gen := mask.NewRandom(*density, *seed, shape...)

	machine, err := sim.New(sim.Config{Procs: layout.Procs(), Params: sim.CM5Params(), Record: true})
	if err != nil {
		log.Fatal(err)
	}
	size := mask.Count(gen, shape...)
	vec, err := dist.NewVectorDist(size, layout.Procs(), 0)
	if err != nil {
		log.Fatal(err)
	}
	err = machine.Run(func(proc *sim.Proc) {
		lm := mask.FillLocal(layout, proc.Rank(), gen)
		a := make([]int, layout.LocalSize())
		for i := range a {
			a[i] = proc.Rank()*layout.LocalSize() + i
		}
		var err error
		if *op == "unpack" {
			v := make([]int, vec.LocalLen(proc.Rank()))
			_, err = pack.Unpack(proc, layout, v, size, lm, a, pack.Options{Scheme: scheme})
		} else {
			_, err = pack.Pack(proc, layout, a, lm, pack.Options{Scheme: scheme})
		}
		if err != nil {
			panic(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s %s, shape %s, %s (P=%d), density %.0f%%, Size=%d\n\n",
		*op, scheme, *shapeFlag, hpf.Format(layout.Dims), layout.Procs(), *density*100, size)
	trace.Gantt(os.Stdout, machine.Spans(), *width)
	fmt.Println()
	trace.Summary(os.Stdout, machine.Stats())
	fmt.Printf("\ntotal simulated time: %.3f ms\n", machine.MaxClock()/1000)
}
