package main

import (
	"flag"
	"fmt"

	"packunpack/internal/transport"
)

// simOnlyFlags maps every packtrace flag that is meaningful only under
// the virtual-clock emulator to the reason it cannot apply to the real
// backend. Setting one together with -backend real is a hard error —
// silently ignoring an explicit request would report wall-clock numbers
// the user believes are something else.
var simOnlyFlags = map[string]string{
	"critpath": "the critical path is defined over the virtual cost model, not wall time",
	"sched":    "emulator scheduling modes do not apply to the real backend's OS threads",
}

// setFlagNames returns the names of the flags explicitly set on the
// command line, in flag.Visit (lexical) order.
func setFlagNames(fs *flag.FlagSet) []string {
	var set []string
	fs.Visit(func(f *flag.Flag) { set = append(set, f.Name) })
	return set
}

// checkBackendFlags rejects explicitly set sim-only flags under the
// real backend. set is the list of flag names the user passed.
func checkBackendFlags(backend transport.Backend, set []string) error {
	if backend != transport.BackendReal {
		return nil
	}
	for _, name := range set {
		if why, ok := simOnlyFlags[name]; ok {
			return fmt.Errorf("-%s is sim-only: %s (drop the flag or use -backend sim)", name, why)
		}
	}
	return nil
}
