package main

import (
	"flag"
	"strings"
	"testing"

	"packunpack/internal/transport"
)

// TestSimOnlyFlagsFailFastUnderRealBackend pins the flag-hygiene
// contract: every sim-only flag must be rejected, by name, when the
// real backend is selected — never silently ignored.
func TestSimOnlyFlagsFailFastUnderRealBackend(t *testing.T) {
	for name := range simOnlyFlags {
		err := checkBackendFlags(transport.BackendReal, []string{name})
		if err == nil {
			t.Errorf("-%s under -backend real: want error, got nil", name)
			continue
		}
		if !strings.Contains(err.Error(), "-"+name) || !strings.Contains(err.Error(), "sim-only") {
			t.Errorf("-%s error does not name the flag as sim-only: %v", name, err)
		}
	}
}

// TestSimOnlyFlagsAllowedOnSimBackend: the same flags are fine on the
// emulator, and unrelated flags are fine on the real backend.
func TestSimOnlyFlagsAllowedOnSimBackend(t *testing.T) {
	if err := checkBackendFlags(transport.BackendSim, []string{"critpath", "sched", "matrix"}); err != nil {
		t.Errorf("sim backend rejected sim flags: %v", err)
	}
	if err := checkBackendFlags(transport.BackendReal, []string{"matrix", "format", "o", "jsonl", "flight-dir"}); err != nil {
		t.Errorf("real backend rejected backend-neutral flags: %v", err)
	}
}

// TestSetFlagNames exercises the flag.Visit plumbing the hygiene check
// runs on: only explicitly set flags are reported.
func TestSetFlagNames(t *testing.T) {
	fs := flag.NewFlagSet("packtrace", flag.ContinueOnError)
	fs.Bool("critpath", false, "")
	fs.String("backend", "sim", "")
	fs.String("shape", "16384", "")
	if err := fs.Parse([]string{"-critpath", "-backend", "real"}); err != nil {
		t.Fatal(err)
	}
	got := setFlagNames(fs)
	want := map[string]bool{"critpath": true, "backend": true}
	if len(got) != len(want) {
		t.Fatalf("setFlagNames = %v, want exactly %v", got, want)
	}
	for _, name := range got {
		if !want[name] {
			t.Fatalf("setFlagNames reported %q, which was not set", name)
		}
	}
	backend, err := transport.ParseBackend("real")
	if err != nil {
		t.Fatal(err)
	}
	if err := checkBackendFlags(backend, got); err == nil {
		t.Fatal("parsed -critpath -backend real did not fail fast")
	}
}

func TestParseShape(t *testing.T) {
	shape, err := parseShape("64x32")
	if err != nil || len(shape) != 2 || shape[0] != 64 || shape[1] != 32 {
		t.Fatalf("parseShape(64x32) = %v, %v", shape, err)
	}
	if _, err := parseShape("64x"); err == nil {
		t.Fatal("parseShape(64x) did not error")
	}
	if _, err := parseShape("0"); err == nil {
		t.Fatal("parseShape(0) did not error")
	}
}
