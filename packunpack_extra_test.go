package packunpack_test

import (
	"reflect"
	"testing"

	"packunpack"
)

func TestPublicPackVector(t *testing.T) {
	machine := packunpack.NewMachine(packunpack.Config{Procs: 4})
	layout := packunpack.MustLayout(packunpack.Dim{N: 32, P: 4, W: 2})

	global := make([]int, 32)
	gmask := make([]bool, 32)
	for i := range global {
		global[i] = i
		gmask[i] = i%5 == 0 // 7 selected
	}
	size := packunpack.SeqCount(gmask)
	nVec := size + 9
	padGlobal := make([]int, nVec)
	for i := range padGlobal {
		padGlobal[i] = -200 - i
	}
	want := packunpack.SeqPackVector(global, gmask, padGlobal)

	vec, err := packunpack.NewVectorDist(nVec, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	locals := packunpack.Scatter(layout, global)
	maskLocals := packunpack.Scatter(layout, gmask)
	results := make([]*packunpack.PackResult[int], 4)
	err = machine.Run(func(p *packunpack.Proc) {
		r := p.Rank()
		pad := make([]int, vec.LocalLen(r))
		for i := range pad {
			pad[i] = padGlobal[vec.ToGlobal(r, i)]
		}
		res, err := packunpack.PackVector(p, layout, locals[r], maskLocals[r], pad, nVec,
			packunpack.Options{Scheme: packunpack.CMS})
		if err != nil {
			panic(err)
		}
		results[r] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, nVec)
	for rank, res := range results {
		for i, v := range res.V {
			got[res.Vec.ToGlobal(rank, i)] = v
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PackVector via public API mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestPublicGeneralLayoutOps(t *testing.T) {
	machine := packunpack.NewMachine(packunpack.Config{Procs: 3})
	gl := packunpack.MustGeneralLayout(packunpack.Dim{N: 14, P: 3, W: 2})

	global := make([]int, 14)
	gmask := make([]bool, 14)
	for i := range global {
		global[i] = 100 + i
		gmask[i] = i%2 == 0
	}
	want := packunpack.SeqPack(global, gmask)
	aLocals := packunpack.ScatterGeneral(gl, global)
	mLocals := packunpack.ScatterGeneral(gl, gmask)

	outs := make([][]int, 3)
	var count int
	err := machine.Run(func(p *packunpack.Proc) {
		r := p.Rank()
		c, err := packunpack.CountGeneral(p, gl, mLocals[r])
		if err != nil {
			panic(err)
		}
		if r == 0 {
			count = c
		}
		res, err := packunpack.PackGeneral(p, gl, aLocals[r], mLocals[r],
			packunpack.Options{Scheme: packunpack.SSS})
		if err != nil {
			panic(err)
		}
		back, err := packunpack.UnpackGeneral(p, gl, res.V, res.Vec.Size, mLocals[r], aLocals[r],
			packunpack.Options{Scheme: packunpack.CSS})
		if err != nil {
			panic(err)
		}
		outs[r] = back.A
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(want) {
		t.Fatalf("CountGeneral = %d, want %d", count, len(want))
	}
	// Round trip: the array must be unchanged.
	if got := packunpack.GatherGeneral(gl, outs); !reflect.DeepEqual(got, global) {
		t.Fatalf("general round trip mismatch: %v", got)
	}
	if _, err := packunpack.NewGeneralLayout(); err == nil {
		t.Fatal("empty general layout accepted")
	}
}

func TestPublicCount(t *testing.T) {
	machine := packunpack.NewMachine(packunpack.Config{Procs: 4})
	layout := packunpack.MustLayout(packunpack.Dim{N: 40, P: 4, W: 5})
	gen := packunpack.RandomMask(0.3, 5, 40)
	want := packunpack.SeqCount(packunpack.FillGlobalMask(layout, gen))
	err := machine.Run(func(p *packunpack.Proc) {
		m := packunpack.FillLocalMask(layout, p.Rank(), gen)
		got, err := packunpack.Count(p, layout, m)
		if err != nil {
			panic(err)
		}
		if got != want {
			panic("public Count mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicVectorDist(t *testing.T) {
	v, err := packunpack.NewVectorDist(13, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r := 0; r < 4; r++ {
		total += v.LocalLen(r)
	}
	if total != 13 {
		t.Fatalf("local lengths sum to %d", total)
	}
	if _, err := packunpack.NewVectorDist(-1, 4, 0); err == nil {
		t.Fatal("negative vector size accepted")
	}
}

func TestPublicParseDist(t *testing.T) {
	l, err := packunpack.ParseDist("CYCLIC(2), BLOCK ONTO 4x2", 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if l.Procs() != 8 {
		t.Fatalf("Procs = %d", l.Procs())
	}
	if s := packunpack.FormatDist(l); s == "" {
		t.Fatal("FormatDist empty")
	}
	gl, err := packunpack.ParseDistGeneral("CYCLIC(3) ONTO 2", 8)
	if err != nil {
		t.Fatal(err)
	}
	if gl.Procs() != 2 {
		t.Fatalf("general Procs = %d", gl.Procs())
	}
	if _, err := packunpack.ParseDist("NOPE", 8); err == nil {
		t.Fatal("bad directive accepted")
	}
}
