package packunpack_test

import (
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"packunpack"
	"packunpack/internal/transport"
)

// This file is the cross-backend conformance suite: the same PACK and
// UNPACK workload runs on the emulator in both scheduler modes and on
// the real shared-memory backend, and the gathered results must be
// byte-identical everywhere (and equal to the sequential oracle). It
// extends the PR 2 cross-mode Stats-equivalence grid one axis outward:
// scheduler modes were two executions of one machine; backends are two
// machines, so only the results — not the virtual metrics — can be
// compared.

// conformanceMachine is one way to run an SPMD body.
type conformanceMachine struct {
	name  string
	build func(t *testing.T, procs int) packunpack.ParallelMachine
}

var conformanceMachines = []conformanceMachine{
	{"sim-goroutine", func(t *testing.T, procs int) packunpack.ParallelMachine {
		m, err := packunpack.NewBackendMachine(packunpack.BackendSim,
			packunpack.Config{Procs: procs, Params: packunpack.CM5Params(), Sched: packunpack.SchedGoroutine})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}},
	{"sim-coop", func(t *testing.T, procs int) packunpack.ParallelMachine {
		m, err := packunpack.NewBackendMachine(packunpack.BackendSim,
			packunpack.Config{Procs: procs, Params: packunpack.CM5Params(), Sched: packunpack.SchedCooperative})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}},
	{"real", func(t *testing.T, procs int) packunpack.ParallelMachine {
		m, err := packunpack.NewBackendMachine(packunpack.BackendReal,
			packunpack.Config{Procs: procs, Params: packunpack.CM5Params()})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}},
}

// packOutcome is everything a conformance run observes: the packed
// vector, its reported global size, and the unpacked round trip.
type packOutcome struct {
	size     int
	packed   []int
	unpacked []int
}

// runPackUnpack executes PACK then UNPACK on machine m and gathers the
// distributed results back to flat global arrays.
func runPackUnpack(t *testing.T, m packunpack.ParallelMachine, layout *packunpack.Layout,
	locals, fields [][]int, maskLocals [][]bool, opt packunpack.Options) packOutcome {
	t.Helper()
	p := m.Procs()
	packed := make([][]int, p)
	unpacked := make([][]int, p)
	sizes := make([]int, p)
	unpackOpt := opt
	if unpackOpt.Scheme == packunpack.CMS {
		unpackOpt.Scheme = packunpack.CSS // CMS is PACK-only
	}
	err := m.Run(func(e packunpack.Endpoint) {
		r := e.Rank()
		res, err := packunpack.Pack(e, layout, locals[r], maskLocals[r], opt)
		if err != nil {
			panic(err)
		}
		packed[r] = res.V
		sizes[r] = res.Vec.Size
		back, err := packunpack.Unpack(e, layout, res.V, res.Vec.Size, maskLocals[r], fields[r], unpackOpt)
		if err != nil {
			panic(err)
		}
		unpacked[r] = back.A
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var flat []int
	for _, b := range packed {
		flat = append(flat, b...)
	}
	return packOutcome{
		size:     sizes[0],
		packed:   flat,
		unpacked: packunpack.Gather(layout, unpacked),
	}
}

// conformanceWorkload builds the deterministic global array, mask and
// field used by every grid point, plus the per-processor scatters.
func conformanceWorkload(layout *packunpack.Layout, n int) (locals, fields [][]int, maskLocals [][]bool, global []int, gmask []bool, gfield []int) {
	global = make([]int, n)
	gmask = make([]bool, n)
	gfield = make([]int, n)
	for i := range global {
		global[i] = 7*i + 3
		gmask[i] = i%3 != 1 // density 2/3, irregular block boundaries
		gfield[i] = -(i + 1)
	}
	return packunpack.Scatter(layout, global), packunpack.Scatter(layout, gfield),
		packunpack.Scatter(layout, gmask), global, gmask, gfield
}

// TestCrossBackendConformance pins sim-vs-real byte-identical PACK and
// UNPACK results for every scheme x scheduler x P of the grid,
// including non-power-of-two machine sizes.
func TestCrossBackendConformance(t *testing.T) {
	const n = 48
	grid := []struct {
		p, w int
	}{{2, 4}, {3, 4}, {4, 3}, {8, 3}}
	schemes := []struct {
		name string
		s    packunpack.Scheme
	}{{"SSS", packunpack.SSS}, {"CSS", packunpack.CSS}, {"CMS", packunpack.CMS}}

	for _, g := range grid {
		layout := packunpack.MustLayout(packunpack.Dim{N: n, P: g.p, W: g.w})
		locals, fields, maskLocals, global, gmask, gfield := conformanceWorkload(layout, n)
		wantPacked := packunpack.SeqPack(global, gmask)
		wantBack := packunpack.SeqUnpack(wantPacked, gmask, gfield)

		for _, sc := range schemes {
			t.Run(fmt.Sprintf("P=%d/%s", g.p, sc.name), func(t *testing.T) {
				opt := packunpack.Options{Scheme: sc.s}
				var first *packOutcome
				var firstName string
				for _, cm := range conformanceMachines {
					m := cm.build(t, g.p)
					got := runPackUnpack(t, m, layout, locals, fields, maskLocals, opt)
					if got.size != len(wantPacked) || !reflect.DeepEqual(got.packed, wantPacked) {
						t.Fatalf("%s: packed = %v (size %d), oracle %v", cm.name, got.packed, got.size, wantPacked)
					}
					if !reflect.DeepEqual(got.unpacked, wantBack) {
						t.Fatalf("%s: unpack round trip diverged from oracle", cm.name)
					}
					if first == nil {
						first, firstName = &got, cm.name
						continue
					}
					if !reflect.DeepEqual(got, *first) {
						t.Fatalf("%s and %s disagree: %+v vs %+v", cm.name, firstName, got, *first)
					}
				}
			})
		}
	}
}

// TestCrossBackendConformancePRS runs the grid's PRS axis: every
// prefix-reduction-sum variant must give identical ranks — and thus
// identical results — on every machine.
func TestCrossBackendConformancePRS(t *testing.T) {
	const n = 48
	layout := packunpack.MustLayout(packunpack.Dim{N: n, P: 4, W: 3})
	locals, fields, maskLocals, global, gmask, gfield := conformanceWorkload(layout, n)
	wantPacked := packunpack.SeqPack(global, gmask)
	wantBack := packunpack.SeqUnpack(wantPacked, gmask, gfield)

	prs := []struct {
		name string
		a    packunpack.PRSAlgorithm
	}{{"auto", packunpack.PRSAuto}, {"direct", packunpack.PRSDirect}, {"split", packunpack.PRSSplit}}
	for _, pa := range prs {
		t.Run(pa.name, func(t *testing.T) {
			opt := packunpack.Options{Scheme: packunpack.CSS, PRS: pa.a}
			for _, cm := range conformanceMachines {
				m := cm.build(t, 4)
				got := runPackUnpack(t, m, layout, locals, fields, maskLocals, opt)
				if !reflect.DeepEqual(got.packed, wantPacked) || !reflect.DeepEqual(got.unpacked, wantBack) {
					t.Fatalf("%s: PRS %s diverged from oracle", cm.name, pa.name)
				}
			}
		})
	}
}

// TestCrossBackendConformancePlans pins the plan-cache path: compile on
// first call, execute cached bulk-copy plans on repeats, identical
// results on every machine and on every repeat. The plan compiler's
// agreement protocol (the 2-word PRS over the fingerprint) must stay
// deadlock-free on the real backend too.
func TestCrossBackendConformancePlans(t *testing.T) {
	const n, p, reps = 48, 4, 3
	layout := packunpack.MustLayout(packunpack.Dim{N: n, P: p, W: 3})
	locals, fields, maskLocals, global, gmask, gfield := conformanceWorkload(layout, n)
	wantPacked := packunpack.SeqPack(global, gmask)
	wantBack := packunpack.SeqUnpack(wantPacked, gmask, gfield)

	for _, cm := range conformanceMachines {
		t.Run(cm.name, func(t *testing.T) {
			m := cm.build(t, p)
			cache := packunpack.NewPlanCache()
			opt := packunpack.Options{Scheme: packunpack.CMS, Plans: cache}
			for rep := 0; rep < reps; rep++ {
				got := runPackUnpack(t, m, layout, locals, fields, maskLocals, opt)
				if !reflect.DeepEqual(got.packed, wantPacked) || !reflect.DeepEqual(got.unpacked, wantBack) {
					t.Fatalf("rep %d diverged from oracle", rep)
				}
			}
			stats := cache.Stats()
			if stats.Misses == 0 || stats.Hits == 0 {
				t.Errorf("plan cache never engaged: %+v", stats)
			}
		})
	}
}

// TestCrossBackendExplicitPlanAPI drives the two-step CompilePlan /
// PlanPack / PlanUnpack API on all machines.
func TestCrossBackendExplicitPlanAPI(t *testing.T) {
	const n, p = 48, 3
	layout := packunpack.MustLayout(packunpack.Dim{N: n, P: p, W: 4})
	locals, fields, maskLocals, global, gmask, gfield := conformanceWorkload(layout, n)
	wantPacked := packunpack.SeqPack(global, gmask)
	wantBack := packunpack.SeqUnpack(wantPacked, gmask, gfield)

	for _, cm := range conformanceMachines {
		t.Run(cm.name, func(t *testing.T) {
			m := cm.build(t, p)
			packed := make([][]int, p)
			unpacked := make([][]int, p)
			err := m.Run(func(e packunpack.Endpoint) {
				r := e.Rank()
				pl, err := packunpack.CompilePlan(e, layout, maskLocals[r], packunpack.Options{Scheme: packunpack.CSS})
				if err != nil {
					panic(err)
				}
				res, err := packunpack.PlanPack(e, pl, locals[r])
				if err != nil {
					panic(err)
				}
				packed[r] = res.V
				back, err := packunpack.PlanUnpack(e, pl, res.V, fields[r])
				if err != nil {
					panic(err)
				}
				unpacked[r] = back.A
			})
			if err != nil {
				t.Fatal(err)
			}
			var flat []int
			for _, b := range packed {
				flat = append(flat, b...)
			}
			if !reflect.DeepEqual(flat, wantPacked) {
				t.Fatalf("planned pack = %v, oracle %v", flat, wantPacked)
			}
			if got := packunpack.Gather(layout, unpacked); !reflect.DeepEqual(got, wantBack) {
				t.Fatal("planned unpack diverged from oracle")
			}
		})
	}
}

// TestConformanceVirtualMetricsSimOnly documents the metric contract of
// the suite: the two sim scheduler modes agree on virtual metrics
// exactly (the PR 2 grid), while the real backend shares only the
// op/message/word counters' meaning — its clocks are wall time.
func TestConformanceVirtualMetricsSimOnly(t *testing.T) {
	const n, p = 48, 4
	layout := packunpack.MustLayout(packunpack.Dim{N: n, P: p, W: 3})
	locals, fields, maskLocals, _, _, _ := conformanceWorkload(layout, n)
	opt := packunpack.Options{Scheme: packunpack.CMS}

	var stats [3][]packunpack.Stats
	var clocks [3]float64
	for i, cm := range conformanceMachines {
		m := cm.build(t, p)
		runPackUnpack(t, m, layout, locals, fields, maskLocals, opt)
		stats[i] = m.Stats()
		clocks[i] = m.MaxClock()
	}
	// Sim modes: full virtual equality, clock included.
	if !reflect.DeepEqual(stats[0], stats[1]) || clocks[0] != clocks[1] {
		t.Errorf("sim scheduler modes disagree on virtual metrics")
	}
	// Real: identical message/word traffic (same algorithm decisions),
	// wall clocks that cannot meaningfully equal the virtual ones.
	for r := 0; r < p; r++ {
		if stats[2][r].MsgsSent != stats[0][r].MsgsSent || stats[2][r].WordsSent != stats[0][r].WordsSent {
			t.Errorf("rank %d: real traffic (%d msgs/%d words) != sim traffic (%d msgs/%d words)",
				r, stats[2][r].MsgsSent, stats[2][r].WordsSent, stats[0][r].MsgsSent, stats[0][r].WordsSent)
		}
	}
}

// TestCrossBackendConformanceWithMetrics re-runs a grid point on every
// machine with a telemetry registry attached: instrumentation must
// never perturb the packed/unpacked bytes (results still byte-identical
// to the oracle and to each other), and the registry must actually have
// recorded — the comm and pack layers instrument through the Endpoint,
// so both backends produce the same counter families.
func TestCrossBackendConformanceWithMetrics(t *testing.T) {
	const n = 48
	layout := packunpack.MustLayout(packunpack.Dim{N: n, P: 8, W: 3})
	locals, fields, maskLocals, global, gmask, gfield := conformanceWorkload(layout, n)
	wantPacked := packunpack.SeqPack(global, gmask)
	wantBack := packunpack.SeqUnpack(wantPacked, gmask, gfield)
	opt := packunpack.Options{Scheme: packunpack.CMS}

	instrumented := []struct {
		name string
		cfg  packunpack.Config
		b    packunpack.Backend
	}{
		{"sim-goroutine", packunpack.Config{Procs: 8, Params: packunpack.CM5Params(), Sched: packunpack.SchedGoroutine}, packunpack.BackendSim},
		{"sim-coop", packunpack.Config{Procs: 8, Params: packunpack.CM5Params(), Sched: packunpack.SchedCooperative}, packunpack.BackendSim},
		{"real", packunpack.Config{Procs: 8, Params: packunpack.CM5Params()}, packunpack.BackendReal},
	}
	var first *packOutcome
	var firstName string
	for _, im := range instrumented {
		reg := packunpack.NewMetricsRegistry()
		im.cfg.Metrics = reg
		m, err := packunpack.NewBackendMachine(im.b, im.cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := runPackUnpack(t, m, layout, locals, fields, maskLocals, opt)
		if got.size != len(wantPacked) || !reflect.DeepEqual(got.packed, wantPacked) || !reflect.DeepEqual(got.unpacked, wantBack) {
			t.Fatalf("%s with metrics attached diverged from oracle", im.name)
		}
		if first == nil {
			first, firstName = &got, im.name
		} else if !reflect.DeepEqual(got, *first) {
			t.Fatalf("%s and %s disagree with metrics attached", im.name, firstName)
		}
		snap := reg.Snapshot()
		for _, family := range []string{"comm_calls_total", "pack_calls_total", "pack_bytes_total"} {
			f, ok := snap.Family(family)
			if !ok || f.Total() == 0 {
				t.Errorf("%s: metric family %s empty or missing — instrumentation did not record", im.name, family)
			}
		}
	}
}

// TestRealLinkBytesReconcileWithSimStats pins the acceptance contract
// of the real backend's telemetry at P=8: the per-link byte and message
// totals in the registry must reconcile exactly with the emulator's
// Stats for the same workload — every rank's outgoing link bytes sum to
// its sim WordsSent x 8 (and likewise messages), because both backends
// take identical algorithm decisions and the link meters count exactly
// the charged sends.
func TestRealLinkBytesReconcileWithSimStats(t *testing.T) {
	const n, p = 96, 8
	layout := packunpack.MustLayout(packunpack.Dim{N: n, P: p, W: 4})
	locals, fields, maskLocals, _, _, _ := conformanceWorkload(layout, n)
	opt := packunpack.Options{Scheme: packunpack.CMS}

	simM, err := packunpack.NewBackendMachine(packunpack.BackendSim,
		packunpack.Config{Procs: p, Params: packunpack.CM5Params(), Sched: packunpack.SchedCooperative})
	if err != nil {
		t.Fatal(err)
	}
	runPackUnpack(t, simM, layout, locals, fields, maskLocals, opt)
	simStats := simM.Stats()

	reg := packunpack.NewMetricsRegistry()
	realM, err := packunpack.NewBackendMachine(packunpack.BackendReal,
		packunpack.Config{Procs: p, Params: packunpack.CM5Params(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	runPackUnpack(t, realM, layout, locals, fields, maskLocals, opt)

	snap := reg.Snapshot()
	bytesBySrc := make([]int64, p)
	msgsBySrc := make([]int64, p)
	sumLinks := func(family string, out []int64) {
		f, ok := snap.Family(family)
		if !ok {
			t.Fatalf("registry has no %s family", family)
		}
		for _, c := range f.Children {
			src, err := strconv.Atoi(c.LabelValues[0])
			if err != nil || src < 0 || src >= p {
				t.Fatalf("%s: malformed src label %v", family, c.LabelValues)
			}
			out[src] += c.Value
		}
	}
	sumLinks("transport_link_bytes_total", bytesBySrc)
	sumLinks("transport_link_msgs_total", msgsBySrc)
	for r := 0; r < p; r++ {
		if want := simStats[r].WordsSent * 8; bytesBySrc[r] != want {
			t.Errorf("rank %d: registry link bytes %d, sim stats say %d", r, bytesBySrc[r], want)
		}
		if want := simStats[r].MsgsSent; msgsBySrc[r] != want {
			t.Errorf("rank %d: registry link msgs %d, sim stats say %d", r, msgsBySrc[r], want)
		}
	}
}

// TestConformanceSuiteCoversBothBackendKinds guards the suite itself:
// if someone trims the machine list, the backend axis must survive.
func TestConformanceSuiteCoversBothBackendKinds(t *testing.T) {
	seen := map[transport.Backend]bool{}
	for _, cm := range conformanceMachines {
		m := cm.build(t, 2)
		seen[m.Backend()] = true
	}
	if !seen[transport.BackendSim] || !seen[transport.BackendReal] {
		t.Fatalf("conformance machines cover %v; need both sim and real", seen)
	}
}
