GO ?= go

.PHONY: all build vet staticcheck test race bench smoke smoke-trace validate-perf ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; local
# runs without it just skip).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# smoke proves the parallel sweep engine end to end on one experiment,
# under both emulator scheduling modes.
smoke:
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 4 -sched coop
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 4 -sched goroutine

# smoke-trace proves the observability layer end to end: the Gantt,
# matrix, and critical-path renderers, and a Chrome trace that parses
# as JSON (Go's encoder wrote it, so a cheap well-formedness check via
# the json tooling suffices).
smoke-trace:
	$(GO) run ./cmd/packtrace -shape 4096 -dist "CYCLIC(4) ONTO 8" -matrix -critpath
	$(GO) run ./cmd/packtrace -shape 4096 -dist "CYCLIC(4) ONTO 8" -format chrome -o /tmp/packtrace-smoke.json
	$(GO) run ./internal/tools/jsoncheck /tmp/packtrace-smoke.json traceEvents

# validate-perf checks the packbench -json report: it must parse and
# carry the current schema marker (packbench exits non-zero on either
# failure, and jsoncheck re-verifies from a separate process).
validate-perf:
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 2 -json /tmp/packbench-perf.json >/dev/null
	$(GO) run ./internal/tools/jsoncheck /tmp/packbench-perf.json schema=packbench-perf/v3

ci: vet staticcheck build race smoke smoke-trace validate-perf
