GO ?= go

.PHONY: all build vet staticcheck test race bench smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; local
# runs without it just skip).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# smoke proves the parallel sweep engine end to end on one experiment,
# under both emulator scheduling modes.
smoke:
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 4 -sched coop
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 4 -sched goroutine

ci: vet staticcheck build race smoke
