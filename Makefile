GO ?= go

.PHONY: all build vet staticcheck test race bench smoke smoke-trace validate-perf perfgate planbench realbench real-race fuzz-short fault-race metricscheck reportcheck servgate ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; local
# runs without it just skip).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# smoke proves the parallel sweep engine end to end on one experiment,
# under both emulator scheduling modes.
smoke:
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 4 -sched coop
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 4 -sched goroutine

# smoke-trace proves the observability layer end to end: the Gantt,
# matrix, and critical-path renderers, and a Chrome trace that parses
# as JSON (Go's encoder wrote it, so a cheap well-formedness check via
# the json tooling suffices).
smoke-trace:
	$(GO) run ./cmd/packtrace -shape 4096 -dist "CYCLIC(4) ONTO 8" -matrix -critpath
	$(GO) run ./cmd/packtrace -shape 4096 -dist "CYCLIC(4) ONTO 8" -format chrome -o /tmp/packtrace-smoke.json
	$(GO) run ./internal/tools/jsoncheck /tmp/packtrace-smoke.json traceEvents

# validate-perf checks the packbench -json report: it must parse and
# carry the current schema marker (packbench exits non-zero on either
# failure, and jsoncheck re-verifies from a separate process).
validate-perf:
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 2 -json /tmp/packbench-perf.json >/dev/null
	$(GO) run ./internal/tools/jsoncheck /tmp/packbench-perf.json schema=packbench-perf/v7

# perfgate is the CI perf-regression gate: re-run the full quick sweep
# and diff it against the committed baseline with cmd/packdiff. Virtual
# metrics must match the baseline bit-for-bit — any drift is a
# correctness regression and fails the build. Wall/alloc deltas are
# reported but only gate when packdiff runs with -fail-on-wall (CI
# machines are too noisy for that to be the default).
#
# The sweep is pinned to -parallel 1: virtual results are bit-exact
# only between serial runs (worker completion order perturbs float
# accumulation; see DESIGN.md §10). -samples 5 gives each row robust
# wall statistics.
PERFGATE_BASELINE ?= BENCH_pr10.json
PERFGATE_OUT      ?= /tmp/packbench-perfgate.json
PERFGATE_DELTA    ?= /tmp/packdiff-delta.md
perfgate:
	$(GO) run ./cmd/packbench -exp all -quick -seed 1 -parallel 1 -sched coop \
		-samples 5 -service 1000000 -json $(PERFGATE_OUT) >/dev/null
	$(GO) run ./cmd/packdiff -o $(PERFGATE_DELTA) $(PERFGATE_BASELINE) $(PERFGATE_OUT)

# planbench is the plan-cache acceptance gate: the repeat-traffic
# experiment must show a cache hit rate >= 0.99 after warmup and an
# amortized wall-time speedup >= 1.3x for the planned path on the
# representative configuration (packbench exits non-zero below either
# threshold).
planbench:
	$(GO) run ./cmd/packbench -exp planrepeat -quick -seed 1 -parallel 1 -sched coop -plan-gate

# realbench runs the measured-vs-modeled speedup family on the real
# shared-memory backend and gates on the P=8-over-P=1 wall speedup of
# the large-N pack sweep. packbench auto-skips the 2x assertion (but
# still prints the curve) when the host has fewer than 8 CPUs — the
# contract is about parallel hardware, not about the Go scheduler's
# multiplexing.
realbench:
	$(GO) run ./cmd/packbench -backend real -seed 1 -real-gate 2.0

# real-race runs the cross-backend conformance grid and the transport
# layer's own suite under the race detector: the real backend's SPSC
# queues and watchdog are lock-free concurrent code, so every CI run
# must prove them race-clean, not just correct.
real-race:
	$(GO) test -race -run 'CrossBackend|Conformance' .
	$(GO) test -race ./internal/transport/

# fuzz-short gives each native fuzz target a brief budget of fresh
# coverage-guided inputs on top of the checked-in seed corpus. `go test
# -fuzz` accepts one target per package invocation, hence one line per
# target. New crashers land under testdata/fuzz/<Target>/ — commit them
# as regression seeds.
FUZZTIME ?= 30s
fuzz-short:
	$(GO) test ./internal/comm -run '^$$' -fuzz '^FuzzPrefixReductionSum$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dist -run '^$$' -fuzz '^FuzzDimRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dist -run '^$$' -fuzz '^FuzzVectorDist$$' -fuzztime $(FUZZTIME)

# fault-race runs the fault-injection, property-differential,
# shared-plan-cache and telemetry suites under the race detector. `make
# race` already covers them; this target exists to re-run just that
# surface quickly while iterating. (The Metrics pattern pulls in the
# sharded counter/histogram hammer and merge-determinism tests.)
fault-race:
	$(GO) test -race -run 'Fault|Property|PlanCache|Metrics' ./...

# metricscheck proves the telemetry layer end to end: the metrics
# package's own suite (golden Prometheus exposition, nil fast path,
# race hammer), a current-schema perf report from the real backend
# validated by jsoncheck, and a wall-clock Chrome trace of the real
# backend that parses as trace-event JSON.
metricscheck:
	$(GO) test ./internal/metrics/
	$(GO) run ./cmd/packbench -backend real -quick -seed 1 -json /tmp/packbench-real-perf.json >/dev/null
	$(GO) run ./internal/tools/jsoncheck /tmp/packbench-real-perf.json schema=packbench-perf/v7
	$(GO) run ./cmd/packtrace -backend real -shape 4096 -dist "CYCLIC(4) ONTO 8" -format chrome -o /tmp/packtrace-real.json
	$(GO) run ./internal/tools/jsoncheck /tmp/packtrace-real.json traceEvents

# reportcheck proves the scalable-observability layer end to end: the
# packreport golden dashboard (byte-determinism included), the trace
# sink suites (JSONL stream round-trip, aggregated rollup/Stats
# reconciliation, sampling charge-exactness), the flight recorder's
# dump-on-abort paths (structural deadlock and fault-budget
# exhaustion), and the CLIs on real inputs: packreport over every
# committed baseline, packtrace streaming a JSONL feed alongside a
# Chrome export, and packtrace -open digesting that export.
reportcheck:
	$(GO) test ./internal/report/
	$(GO) test ./internal/trace/ -run 'JSONL|Flight|Sampling|Agg|Sink'
	$(GO) test ./internal/bench/ -run 'FlightDump'
	$(GO) run ./cmd/packreport -o /tmp/packreport.html \
		BENCH_pr1.json BENCH_pr2.json BENCH_pr3.json BENCH_pr4.json \
		BENCH_pr5.json BENCH_pr6.json BENCH_pr8.json BENCH_pr10.json
	grep -q "Scheme crossover model" /tmp/packreport.html
	grep -q "Serving traffic" /tmp/packreport.html
	$(GO) run ./cmd/packtrace -shape 4096 -dist "CYCLIC(4) ONTO 8" \
		-jsonl /tmp/packtrace-feed.jsonl -format chrome -o /tmp/packtrace-open.json
	test -s /tmp/packtrace-feed.jsonl
	$(GO) run ./cmd/packtrace -open /tmp/packtrace-open.json

# servgate is the serving-layer acceptance gate, in two deterministic
# halves. The first is the latency gate: packserve replays the 1M-
# request open-loop arrival process through the discrete-event latency
# model (pure virtual time, seconds of wall clock), prints p50/p99/p999
# and fails when the p99 exceeds the threshold — the figures are a pure
# function of the seed, so the gate cannot flake. The second is the
# byte-correctness soak: the same arrival stream really executes
# against the concurrent server on the emulator, and every response is
# compared byte-for-byte with the sequential reference (small layouts
# keep 1M requests to minutes; override SERVSOAK_REQUESTS to trim).
SERVGATE_REQUESTS ?= 1000000
SERVGATE_P99_US   ?= 6000
SERVSOAK_REQUESTS ?= 1000000
servgate:
	$(GO) run ./cmd/packserve -requests $(SERVGATE_REQUESTS) -seed 1 -gate-p99 $(SERVGATE_P99_US)
	$(GO) run ./cmd/packserve -requests $(SERVSOAK_REQUESTS) -seed 1 -soak -mix small

ci: vet staticcheck build race real-race smoke smoke-trace validate-perf perfgate planbench realbench metricscheck reportcheck servgate
