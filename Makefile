GO ?= go

.PHONY: all build vet test race bench smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# smoke proves the parallel sweep engine end to end on one experiment.
smoke:
	$(GO) run ./cmd/packbench -exp fig3 -quick -parallel 4

ci: vet build race smoke
