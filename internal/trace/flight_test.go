package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"packunpack/internal/sim"
)

// TestShouldDumpFlight pins the trigger classification: deadlocks and
// fault budgets dump, clean runs and root-cause panics do not.
func TestShouldDumpFlight(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error", errors.New("boom"), false},
		{"deadlock sentinel", sim.ErrDeadlock, true},
		{"wrapped deadlock", fmt.Errorf("context: %w", sim.ErrDeadlock), true},
		{"fault budget", &sim.FaultBudgetError{Rank: 1, Dst: 2, Tag: 3, Attempts: 4}, true},
	}
	for _, tc := range cases {
		if got := ShouldDumpFlight(tc.err); got != tc.want {
			t.Errorf("%s: ShouldDumpFlight = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestFlightDumpOnDeadlock runs a machine into a structural deadlock
// with a flight recorder attached and verifies the dump: a valid
// Chrome trace-event JSON file plus a text summary naming the parked
// receive.
func TestFlightDumpOnDeadlock(t *testing.T) {
	fr := sim.MustNewFlightRecorder(3, 64)
	m := sim.MustNew(sim.Config{
		Procs: 3, Sched: sim.SchedCooperative,
		Params: sim.Params{Tau: 10, Mu: 1, Delta: 1},
		Flight: fr,
	})
	err := m.Run(func(p *sim.Proc) {
		p.SetPhase("warmup")
		next := (p.Rank() + 1) % p.NProcs()
		p.Send(next, 1, nil, 2)
		p.Recv((p.Rank()+p.NProcs()-1)%p.NProcs(), 1)
		p.SetPhase("wedge")
		if p.Rank() == 0 {
			p.Recv(2, 77) // rank 2 never sends tag 77: structural deadlock
		}
	})
	if !ShouldDumpFlight(err) {
		t.Fatalf("deadlocked run err %v did not classify as dumpable", err)
	}

	dir := t.TempDir()
	c := FlightCapture(m.Procs(), m.Params(), m.Stats(), fr)
	tracePath, summaryPath, derr := DumpFlight(dir, "wedge test/p3", c, err)
	if derr != nil {
		t.Fatalf("DumpFlight: %v", derr)
	}
	if !strings.HasSuffix(tracePath, "wedge-test-p3.flight.trace.json") {
		t.Fatalf("trace path %q not sanitized as expected", tracePath)
	}

	raw, rerr := os.ReadFile(tracePath)
	if rerr != nil {
		t.Fatalf("read dump: %v", rerr)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if jerr := json.Unmarshal(raw, &chrome); jerr != nil {
		t.Fatalf("flight trace is not valid Chrome JSON: %v", jerr)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("flight trace has no events")
	}

	// The dump must be openable the way packtrace -open opens it.
	var digest strings.Builder
	if serr := SummarizeChrome(&digest, strings.NewReader(string(raw))); serr != nil {
		t.Fatalf("SummarizeChrome on flight dump: %v", serr)
	}
	if !strings.Contains(digest.String(), "3 tracks") {
		t.Fatalf("flight digest does not show 3 tracks:\n%s", digest.String())
	}

	sum, rerr := os.ReadFile(summaryPath)
	if rerr != nil {
		t.Fatalf("read summary: %v", rerr)
	}
	text := string(sum)
	for _, want := range []string{
		"flight recorder post-mortem (3 ranks)",
		"reason: sim: deadlock",
		"parked waiting for (src=2, tag=77)",
		`phase "wedge"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
}
