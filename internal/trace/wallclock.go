package trace

// This file is the wall-clock event source: it adapts the real
// shared-memory backend (internal/transport.RealMachine) to the same
// Capture the emulator produces, so every exporter in this package —
// Chrome/Perfetto JSON with send→recv flow arrows, Gantt, matrices —
// consumes real runs unchanged.
//
// The one rule that keeps captures honest: a capture's timestamps are
// either all virtual (sim) or all wall-clock microseconds (real),
// never a mix (DESIGN.md §14). The real backend records no spans of
// its own — span recording would put timestamping work on the measured
// hot path — so SpansFromEvents synthesizes the processor timelines
// afterwards from the event stream: time between communication events
// is rendered as computation, receive waits (EvRecvWake.Dur) as
// communication.

import (
	"fmt"
	"strconv"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

// CaptureReal snapshots the most recent run of a real machine. The
// machine should have been built with RealConfig.Trace; without it the
// capture holds stats only (exporters then degrade exactly as they do
// for a sim machine without Config.Trace).
func CaptureReal(m *transport.RealMachine) *Capture {
	stats := m.Stats()
	events := m.Events()
	clocks := make([]float64, len(stats))
	for i, s := range stats {
		clocks[i] = s.Clock
	}
	return &Capture{
		Procs:  m.Procs(),
		Params: m.Params(),
		Stats:  stats,
		Spans:  SpansFromEvents(events, clocks),
		Events: events,
	}
}

// SpansFromEvents synthesizes per-processor span timelines from
// structured event streams: the interval a processor spends inside
// Recv waiting (EvRecvWake with Dur > 0) becomes a communication span,
// everything else between events becomes computation attributed to the
// current phase. finalClocks gives each rank's end-of-run clock so the
// last span reaches the end of the timeline. Ranks without events get
// nil rows.
func SpansFromEvents(events [][]sim.Event, finalClocks []float64) [][]sim.Span {
	out := make([][]sim.Span, len(events))
	for rank, row := range events {
		if len(row) == 0 {
			continue
		}
		var spans []sim.Span
		t := 0.0
		phase := "default"
		comp := func(end float64) {
			if end > t {
				spans = append(spans, sim.Span{Phase: phase, Comm: false, Start: t, End: end})
			}
		}
		for _, ev := range row {
			switch ev.Kind {
			case sim.EvPhase:
				comp(ev.Time)
				if ev.Time > t {
					t = ev.Time
				}
				phase = ev.Phase
			case sim.EvRecvWake:
				if ev.Dur <= 0 {
					continue
				}
				start := ev.Time - ev.Dur
				comp(start)
				if start < t {
					start = t
				}
				if ev.Time > start {
					spans = append(spans, sim.Span{Phase: phase, Comm: true, Start: start, End: ev.Time})
				}
				if ev.Time > t {
					t = ev.Time
				}
			}
		}
		if rank < len(finalClocks) {
			comp(finalClocks[rank])
		}
		out[rank] = spans
	}
	return out
}

// MatrixFromMetrics rebuilds the P×P communication matrix from the
// counter registry instead of the event stream — the telemetry path to
// the same picture: the real backend's per-link and per-phase link
// counters (transport_link_* / transport_phase_link_*, see
// internal/transport/realmeters.go) aggregate exactly what BuildMatrix
// derives from EvSend events, so the two reconcile cell by cell (and
// both reconcile with Stats.MsgsSent/WordsSent; pinned by the
// conformance suite).
func MatrixFromMetrics(snap metrics.Snapshot, procs int) (*CommMatrix, error) {
	m := &CommMatrix{P: procs, Total: newCells(procs), ByPhase: map[string]*MatrixCells{}}
	fill := func(family string, phased bool, set func(cells *MatrixCells, i int, v int64)) error {
		f, ok := snap.Family(family)
		if !ok {
			return fmt.Errorf("trace: metric family %s missing from snapshot (was the machine built with a registry?)", family)
		}
		for _, c := range f.Children {
			labels := c.LabelValues
			cells := m.Total
			if phased {
				ph := m.ByPhase[labels[0]]
				if ph == nil {
					ph = newCells(procs)
					m.ByPhase[labels[0]] = ph
				}
				cells = ph
				labels = labels[1:]
			}
			src, err1 := strconv.Atoi(labels[0])
			dst, err2 := strconv.Atoi(labels[1])
			if err1 != nil || err2 != nil || src < 0 || src >= procs || dst < 0 || dst >= procs {
				return fmt.Errorf("trace: %s has malformed link labels %v", family, c.LabelValues)
			}
			set(cells, src*procs+dst, c.Value)
		}
		return nil
	}
	addMsgs := func(cells *MatrixCells, i int, v int64) { cells.Msgs[i] += v }
	addWords := func(cells *MatrixCells, i int, v int64) { cells.Words[i] += v / 8 } // bytes -> machine words
	if err := fill("transport_link_msgs_total", false, addMsgs); err != nil {
		return nil, err
	}
	if err := fill("transport_link_bytes_total", false, addWords); err != nil {
		return nil, err
	}
	if err := fill("transport_phase_link_msgs_total", true, addMsgs); err != nil {
		return nil, err
	}
	if err := fill("transport_phase_link_bytes_total", true, addWords); err != nil {
		return nil, err
	}
	return m, nil
}
