package trace

// This file is the post-mortem end of the flight recorder
// (sim/flight.go): classify a failed run, and turn the recorder's
// bounded per-rank event window into something a human can open — a
// Chrome-loadable trace of the machine's final moments plus a text
// summary of who was doing what when it died. ViPIOS-style reasoning
// (PAPERS.md): a long-running redistribution system must explain its
// failures after the fact, so the recorder is cheap enough to leave on
// and the dump path triggers itself on the error classes that leave no
// other evidence: structural deadlock (both schedulers and the real
// backend's watchdog identify as sim.ErrDeadlock) and exhausted
// fault-retry budgets (sim.FaultBudgetError).

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"packunpack/internal/sim"
)

// ShouldDumpFlight classifies a run error: true for the failure modes
// whose post-mortem lives in the flight recorder — structural deadlock
// (cooperative proof, goroutine-mode monitor, or the real backend's
// watchdog abort; all match sim.ErrDeadlock) and fault-budget
// exhaustion. Root-cause panics carry their own stack and do not
// trigger a dump.
func ShouldDumpFlight(err error) bool {
	return err != nil && (errors.Is(err, sim.ErrDeadlock) || sim.IsFaultBudget(err))
}

// FlightCapture wraps a flight recorder's snapshot as a Capture so
// every exporter in this package (Chrome, matrix, the dump below) can
// consume the bounded window like any other event stream. Stats may be
// nil when the machine died before publishing them.
func FlightCapture(procs int, params sim.Params, stats []sim.Stats, fr *sim.FlightRecorder) *Capture {
	return &Capture{
		Procs:  procs,
		Params: params,
		Stats:  stats,
		Events: fr.Snapshot(),
	}
}

// flightLabel sanitizes a dump label into a filename stem.
func flightLabel(label string) string {
	if label == "" {
		return "run"
	}
	var sb strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			sb.WriteRune(r)
		default:
			sb.WriteRune('-')
		}
	}
	return sb.String()
}

// DumpFlight writes the capture's flight window under dir as
// <label>.flight.trace.json (Chrome trace-event JSON, loadable in
// Perfetto — packtrace -open renders the same file as text) and
// <label>.flight.txt (the summary WriteFlightSummary produces), and
// returns both paths.
func DumpFlight(dir, label string, c *Capture, reason error) (tracePath, summaryPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", fmt.Errorf("trace: flight dump: %w", err)
	}
	stem := flightLabel(label)
	tracePath = filepath.Join(dir, stem+".flight.trace.json")
	summaryPath = filepath.Join(dir, stem+".flight.txt")

	tf, err := os.Create(tracePath)
	if err != nil {
		return "", "", fmt.Errorf("trace: flight dump: %w", err)
	}
	werr := WriteChrome(tf, c)
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", "", fmt.Errorf("trace: flight dump: %w", werr)
	}

	sf, err := os.Create(summaryPath)
	if err != nil {
		return "", "", fmt.Errorf("trace: flight dump: %w", err)
	}
	WriteFlightSummary(sf, c, reason)
	if err := sf.Close(); err != nil {
		return "", "", fmt.Errorf("trace: flight dump: %w", err)
	}
	return tracePath, summaryPath, nil
}

// WriteFlightSummary renders the human-readable post-mortem: the
// reason, then one line per rank with its retained window and final
// recorded action — for a deadlocked rank that is the receive it was
// parked in, which together reconstructs the wait-for picture the
// machine died with.
func WriteFlightSummary(w io.Writer, c *Capture, reason error) {
	fmt.Fprintf(w, "flight recorder post-mortem (%d ranks)\n", c.Procs)
	if reason != nil {
		fmt.Fprintf(w, "reason: %v\n", reason)
	}
	fmt.Fprintln(w)
	for rank := 0; rank < c.Procs; rank++ {
		var row []sim.Event
		if rank < len(c.Events) {
			row = c.Events[rank]
		}
		if len(row) == 0 {
			fmt.Fprintf(w, "p%-4d no events retained\n", rank)
			continue
		}
		last := row[len(row)-1]
		fmt.Fprintf(w, "p%-4d %d events retained, window [%.3f, %.3f] µs, last: %s",
			rank, len(row), row[0].Time, last.Time, last.Kind)
		switch last.Kind {
		case sim.EvRecvBlock:
			fmt.Fprintf(w, " — parked waiting for (src=%d, tag=%d) since t=%.3f in phase %q",
				last.Peer, last.Tag, last.Time, last.Phase)
		case sim.EvSend, sim.EvDeliver:
			fmt.Fprintf(w, " — to p%d tag %d, %d words, phase %q", last.Peer, last.Tag, last.Words, last.Phase)
		case sim.EvRecvWake:
			fmt.Fprintf(w, " — from p%d tag %d, phase %q", last.Peer, last.Tag, last.Phase)
		default:
			fmt.Fprintf(w, " — phase %q", last.Phase)
		}
		fmt.Fprintln(w)
	}
	// Tail of each rank's window, newest last, for the fine grain the
	// one-liners compress away.
	const tailLen = 5
	fmt.Fprintf(w, "\nlast %d events per rank:\n", tailLen)
	for rank := 0; rank < c.Procs; rank++ {
		var row []sim.Event
		if rank < len(c.Events) {
			row = c.Events[rank]
		}
		start := len(row) - tailLen
		if start < 0 {
			start = 0
		}
		for _, e := range row[start:] {
			fmt.Fprintf(w, "  p%-4d t=%12.3f %-12s peer=%-4d tag=%-6d words=%-6d phase=%s\n",
				rank, e.Time, e.Kind, e.Peer, e.Tag, e.Words, e.Phase)
		}
	}
}
