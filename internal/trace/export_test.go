package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"packunpack/internal/hpf"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tracedRun executes a deterministic two-processor exchange with full
// observability on under the cooperative scheduler.
func tracedRun(t *testing.T) *Capture {
	t.Helper()
	m := sim.MustNew(sim.Config{
		Procs:  2,
		Params: sim.Params{Tau: 10, Mu: 1, Delta: 1},
		Sched:  sim.SchedCooperative,
		Record: true,
		Trace:  true,
	})
	err := m.Run(func(p *sim.Proc) {
		p.Charge(20)
		prev := p.SetPhase("prs")
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 5)
		} else {
			p.Recv(0, 1)
		}
		p.SetPhase(prev)
		p.Charge(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	return CaptureMachine(m)
}

// packCapture runs a real CMS PACK on 4 processors with tracing, the
// shape the CLI exercises.
func packCapture(t *testing.T) *Capture {
	t.Helper()
	layout, err := hpf.ParseDist("CYCLIC(4) ONTO 4", 256)
	if err != nil {
		t.Fatal(err)
	}
	gen := mask.NewRandom(0.5, 1, 256)
	m := sim.MustNew(sim.Config{Procs: 4, Params: sim.CM5Params(), Sched: sim.SchedCooperative, Record: true, Trace: true})
	err = m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(layout, p.Rank(), gen)
		a := make([]int, layout.LocalSize())
		for i := range a {
			a[i] = p.Rank()*layout.LocalSize() + i
		}
		if _, err := pack.Pack(p, layout, a, lm, pack.Options{Scheme: pack.SchemeCMS}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return CaptureMachine(m)
}

func TestChromeGolden(t *testing.T) {
	c := tracedRun(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, c); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export differs from golden file (stable output is the cooperative-mode determinism contract; regenerate with -update if the change is intended)\ngot:\n%s", buf.String())
	}
}

// TestChromeStructure validates the export as trace-event JSON the way
// Perfetto's loader would: a traceEvents array whose entries carry
// name/ph/ts/pid/tid, every flow start has a matching finish with the
// same id, and slice durations are non-negative.
func TestChromeStructure(t *testing.T) {
	c := packCapture(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, c); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  float64  `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
			ID   string   `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	flowStart := map[string]int{}
	flowEnd := map[string]int{}
	slices := 0
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Ts == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event missing required fields: %+v", e)
		}
		switch e.Ph {
		case "X":
			slices++
			if e.Dur < 0 {
				t.Fatalf("negative slice duration: %+v", e)
			}
		case "s":
			flowStart[e.ID]++
		case "f":
			flowEnd[e.ID]++
		}
	}
	if slices == 0 {
		t.Fatal("no slices in export")
	}
	if len(flowStart) == 0 {
		t.Fatal("no flow arrows in export")
	}
	for id, n := range flowStart {
		if flowEnd[id] != n {
			t.Fatalf("flow %s has %d starts but %d finishes", id, n, flowEnd[id])
		}
	}
	for id := range flowEnd {
		if flowStart[id] == 0 {
			t.Fatalf("flow %s finishes without a start", id)
		}
	}
}

// TestMatrixTotals cross-checks the communication matrix against the
// machine statistics: summed cells must equal MsgsSent/WordsSent.
func TestMatrixTotals(t *testing.T) {
	c := packCapture(t)
	m := BuildMatrix(c)
	gotMsgs, gotWords := m.Total.Totals()
	var wantMsgs, wantWords int64
	for _, s := range c.Stats {
		wantMsgs += s.MsgsSent
		wantWords += s.WordsSent
	}
	if gotMsgs != wantMsgs || gotWords != wantWords {
		t.Fatalf("matrix totals %d msgs / %d words, stats say %d / %d", gotMsgs, gotWords, wantMsgs, wantWords)
	}
	// Per-phase cells partition the total.
	var phaseMsgs int64
	for _, cells := range m.ByPhase {
		n, _ := cells.Totals()
		phaseMsgs += n
	}
	if phaseMsgs != wantMsgs {
		t.Fatalf("per-phase msgs sum %d != total %d", phaseMsgs, wantMsgs)
	}
	// Row sums must match each sender's own counter.
	for src, s := range c.Stats {
		var row int64
		for dst := 0; dst < m.P; dst++ {
			row += m.Total.Msgs[src*m.P+dst]
		}
		if row != s.MsgsSent {
			t.Fatalf("row %d sums %d msgs, stats say %d", src, row, s.MsgsSent)
		}
	}

	var buf bytes.Buffer
	WriteMatrix(&buf, m)
	out := buf.String()
	for _, want := range []string{"total:", "m2m", "grand total:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("matrix rendering missing %q:\n%s", want, out)
		}
	}
}

func TestMatrixHeatmapLargeP(t *testing.T) {
	m := sim.MustNew(sim.Config{Procs: 32, Params: sim.Params{Tau: 1}, Sched: sim.SchedCooperative, Trace: true})
	err := m.Run(func(p *sim.Proc) {
		next := (p.Rank() + 1) % p.NProcs()
		p.Send(next, 0, nil, p.Rank())
		p.Recv((p.Rank()+p.NProcs()-1)%p.NProcs(), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteMatrix(&buf, BuildMatrix(CaptureMachine(m)))
	if !strings.Contains(buf.String(), "heatmap") {
		t.Fatalf("P=32 matrix should render as heatmap:\n%s", buf.String())
	}
}

// TestCriticalPathChain builds a two-processor chain with a known
// makespan and checks the analyzer reports exactly the expected hops
// and accounts for 100% of the makespan.
//
// Timeline (Tau=10, Mu=1, Delta=1):
//
//	p0: comp [0,20) — send 5 words, done at 35 — comp [35,45), clock 45
//	p1: comp [0,5) — blocks at 5, wakes at 35 — comp [35,95), clock 95
//
// Makespan 95 = p1 tail (60) + message release at 35 determined by p0:
// segment p0 [0,35] then p1 [35,95].
func TestCriticalPathChain(t *testing.T) {
	m := sim.MustNew(sim.Config{Procs: 2, Params: sim.Params{Tau: 10, Mu: 1, Delta: 1}, Sched: sim.SchedCooperative, Record: true, Trace: true})
	err := m.Run(func(p *sim.Proc) {
		if p.Rank() == 0 {
			p.Charge(20)
			p.Send(1, 9, nil, 5)
			p.Charge(10)
		} else {
			p.Charge(5)
			p.Recv(0, 9)
			p.Charge(60)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := CriticalPath(CaptureMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 95 || r.EndRank != 1 {
		t.Fatalf("makespan %v on p%d, want 95 on p1", r.Makespan, r.EndRank)
	}
	if len(r.Segments) != 2 {
		t.Fatalf("want 2 segments, got %+v", r.Segments)
	}
	s0, s1 := r.Segments[0], r.Segments[1]
	if s0.Rank != 0 || s0.Start != 0 || s0.End != 35 || s0.MsgFrom != -1 {
		t.Fatalf("first segment wrong: %+v", s0)
	}
	if s1.Rank != 1 || s1.Start != 35 || s1.End != 95 || s1.MsgFrom != 0 || s1.MsgWords != 5 {
		t.Fatalf("second segment wrong: %+v", s1)
	}
	if r.Msgs != 1 || r.Words != 5 {
		t.Fatalf("path traffic %d msgs %d words, want 1/5", r.Msgs, r.Words)
	}
	// 100% accounting: per-phase attribution sums to the makespan.
	var total float64
	for _, v := range r.Comp {
		total += v
	}
	for _, v := range r.Comm {
		total += v
	}
	if math.Abs(total-r.Makespan) > 1e-9 {
		t.Fatalf("path accounts for %v of makespan %v", total, r.Makespan)
	}
	if r.Comp["default"] != 80 || r.Comm["default"] != 15 {
		t.Fatalf("attribution wrong: comp %v comm %v", r.Comp, r.Comm)
	}

	var buf bytes.Buffer
	WriteCritPath(&buf, r)
	out := buf.String()
	for _, want := range []string{"makespan 0.095 ms", "msg from p0 tag 9, 5 words", "100.0% of makespan accounted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("critpath rendering missing %q:\n%s", want, out)
		}
	}
}

// TestCriticalPathPack checks the accounting identity on a real PACK
// run: segments partition [0, makespan] and phase attribution sums to
// the makespan.
func TestCriticalPathPack(t *testing.T) {
	c := packCapture(t)
	r, err := CriticalPath(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != c.Makespan() {
		t.Fatalf("report makespan %v != capture %v", r.Makespan, c.Makespan())
	}
	prevEnd := 0.0
	for i, seg := range r.Segments {
		if i == 0 && seg.Start != 0 {
			t.Fatalf("path does not start at 0: %+v", seg)
		}
		if i > 0 && seg.Start != prevEnd {
			t.Fatalf("segments not contiguous at %d: %v != %v", i, seg.Start, prevEnd)
		}
		prevEnd = seg.End
	}
	if prevEnd != r.Makespan {
		t.Fatalf("path ends at %v, makespan %v", prevEnd, r.Makespan)
	}
	var total float64
	for _, v := range r.Comp {
		total += v
	}
	for _, v := range r.Comm {
		total += v
	}
	if math.Abs(total-r.Makespan) > 1e-6*r.Makespan {
		t.Fatalf("attribution %v != makespan %v", total, r.Makespan)
	}
}

func TestCriticalPathNeedsEvents(t *testing.T) {
	m := sim.MustNew(sim.Config{Procs: 1, Params: sim.Params{Delta: 1}, Record: true})
	if err := m.Run(func(p *sim.Proc) { p.Charge(5) }); err != nil {
		t.Fatal(err)
	}
	if _, err := CriticalPath(CaptureMachine(m)); err == nil {
		t.Fatal("want an error for a capture without events")
	}
}

func TestGanttZeroDurationHint(t *testing.T) {
	// Spans recorded but the run cost nothing: the hint must not blame
	// sim.Config.Record.
	spans := [][]sim.Span{{{Phase: "default", Start: 0, End: 0}}}
	var buf bytes.Buffer
	Gantt(&buf, spans, 10)
	out := buf.String()
	if !strings.Contains(out, "zero duration") || strings.Contains(out, "Record set") {
		t.Fatalf("zero-duration hint wrong: %s", out)
	}
}

func TestGanttHugeWidthClamped(t *testing.T) {
	m := sim.MustNew(sim.Config{Procs: 1, Params: sim.Params{Delta: 1}, Record: true})
	if err := m.Run(func(p *sim.Proc) { p.Charge(3) }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Gantt(&buf, m.Spans(), 1<<30)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header+row+legend, got:\n%s", buf.String())
	}
	if n := len(lines[1]); n > 4200 {
		t.Fatalf("row not clamped: %d chars", n)
	}
}
