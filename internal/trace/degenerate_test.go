package trace

import (
	"errors"
	"testing"

	"packunpack/internal/sim"
)

// TestDegenerateCaptures pins that the exporters never panic on
// empty, zero-event, or malformed captures: they return zero values
// (Makespan, BuildMatrix) or typed errors (CriticalPath).
func TestDegenerateCaptures(t *testing.T) {
	wake := func(peer int) sim.Event {
		return sim.Event{Kind: sim.EvRecvWake, Rank: 0, Peer: peer, Time: 5, Dur: 5, MsgID: 1}
	}
	cases := []struct {
		name         string
		c            *Capture
		wantMakespan float64
		wantMsgs     int64
		wantCritErr  error // nil means CriticalPath must succeed
	}{
		{
			name:        "zero value",
			c:           &Capture{},
			wantCritErr: ErrNoEvents,
		},
		{
			name:        "negative procs",
			c:           &Capture{Procs: -3},
			wantCritErr: ErrNoEvents,
		},
		{
			name:        "procs without events",
			c:           &Capture{Procs: 4, Stats: make([]sim.Stats, 4)},
			wantCritErr: ErrNoEvents,
		},
		{
			name:         "events without stats",
			c:            &Capture{Procs: 1, Events: [][]sim.Event{{{Kind: sim.EvSend, Rank: 0, Peer: 0, Words: 2, Dur: 1}}}},
			wantMakespan: 0,
			wantMsgs:     1,
			wantCritErr:  ErrNoStats,
		},
		{
			name: "peer outside machine",
			c: &Capture{
				Procs:  1,
				Stats:  []sim.Stats{{Clock: 10}},
				Events: [][]sim.Event{{{Kind: sim.EvSend, Rank: 0, Peer: 7, Words: 3}, wake(7)}},
			},
			wantMakespan: 10,
			wantMsgs:     0, // out-of-range send skipped
			wantCritErr:  ErrMalformedCapture,
		},
		{
			name: "more event rows than procs",
			c: &Capture{
				Procs:  1,
				Stats:  []sim.Stats{{Clock: 1}},
				Events: [][]sim.Event{{}, {{Kind: sim.EvSend, Rank: 1, Peer: 0, Words: 1}}},
			},
			wantMakespan: 1,
			wantMsgs:     0,
			wantCritErr:  ErrMalformedCapture,
		},
		{
			name: "healthy minimal capture",
			c: &Capture{
				Procs: 1,
				Stats: []sim.Stats{{Clock: 3}},
				Events: [][]sim.Event{{
					{Kind: sim.EvCharge, Rank: 0, Ops: 2, Time: 3, Dur: 3},
				}},
			},
			wantMakespan: 3,
			wantMsgs:     0,
			wantCritErr:  nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.Makespan(); got != tc.wantMakespan {
				t.Fatalf("Makespan = %v, want %v", got, tc.wantMakespan)
			}
			m := BuildMatrix(tc.c)
			msgs, _ := m.Total.Totals()
			if msgs != tc.wantMsgs {
				t.Fatalf("BuildMatrix total msgs = %d, want %d", msgs, tc.wantMsgs)
			}
			r, err := CriticalPath(tc.c)
			if tc.wantCritErr != nil {
				if !errors.Is(err, tc.wantCritErr) {
					t.Fatalf("CriticalPath err = %v, want %v", err, tc.wantCritErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("CriticalPath: %v", err)
			}
			if r.Makespan != tc.wantMakespan {
				t.Fatalf("CriticalPath makespan = %v, want %v", r.Makespan, tc.wantMakespan)
			}
		})
	}
}
