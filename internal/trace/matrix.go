package trace

import (
	"fmt"
	"io"
	"sort"

	"packunpack/internal/sim"
)

// This file builds and renders P×P communication matrices from the
// event stream: who sent how many messages (and words) to whom, per
// phase and in total. The per-phase split is what makes the paper's
// scheme differences visible at a glance — SSS floods every processor
// pair with per-element messages, CSS sends one compact message per
// pair, CMS reshapes traffic through the many-to-many exchange.

// MatrixCells holds P×P counters in row-major [src*P+dst] order.
type MatrixCells struct {
	Msgs  []int64
	Words []int64
}

func newCells(p int) *MatrixCells {
	return &MatrixCells{Msgs: make([]int64, p*p), Words: make([]int64, p*p)}
}

// Totals sums the cells.
func (c *MatrixCells) Totals() (msgs, words int64) {
	for i := range c.Msgs {
		msgs += c.Msgs[i]
		words += c.Words[i]
	}
	return msgs, words
}

// CommMatrix is the traffic breakdown of one capture.
type CommMatrix struct {
	P       int
	Total   *MatrixCells
	ByPhase map[string]*MatrixCells
}

// BuildMatrix aggregates every EvSend in the capture. SendFree control
// messages (EvDeliver without a matching EvSend) are uncharged traffic
// and are deliberately excluded, which keeps the totals reconcilable
// with Stats.MsgsSent/WordsSent.
//
// Degenerate captures are safe: a zero-processor or event-free capture
// yields an empty matrix, and events whose rank or peer falls outside
// [0, Procs) — a malformed or truncated capture — are skipped rather
// than crashing the exporter.
func BuildMatrix(c *Capture) *CommMatrix {
	p := c.Procs
	if p < 0 {
		p = 0
	}
	m := &CommMatrix{P: p, Total: newCells(p), ByPhase: map[string]*MatrixCells{}}
	for src, row := range c.Events {
		if src >= p {
			break
		}
		for _, e := range row {
			if e.Kind != sim.EvSend || e.Peer < 0 || e.Peer >= p {
				continue
			}
			i := src*p + e.Peer
			m.Total.Msgs[i]++
			m.Total.Words[i] += int64(e.Words)
			ph := m.ByPhase[e.Phase]
			if ph == nil {
				ph = newCells(p)
				m.ByPhase[e.Phase] = ph
			}
			ph.Msgs[i]++
			ph.Words[i] += int64(e.Words)
		}
	}
	return m
}

// PhaseNames returns the phases with traffic, sorted.
func (m *CommMatrix) PhaseNames() []string {
	names := make([]string, 0, len(m.ByPhase))
	for name := range m.ByPhase {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// heatGlyphs maps a cell's share of the matrix maximum to a density
// glyph, darkest last.
const heatGlyphs = " .:-=+*#%@"

// renderCells writes one matrix. Small machines (P <= 16) get exact
// numbers; larger ones get a density heatmap so a 256-processor matrix
// still fits a terminal.
func renderCells(w io.Writer, p int, vals []int64, unit string) {
	var max, total int64
	for _, v := range vals {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		fmt.Fprintf(w, "  (no %s)\n", unit)
		return
	}
	if p <= 16 {
		width := len(fmt.Sprint(max))
		if width < len(fmt.Sprint(p-1))+1 {
			width = len(fmt.Sprint(p-1)) + 1
		}
		fmt.Fprintf(w, "  %*s", width+4, "dst")
		for d := 0; d < p; d++ {
			fmt.Fprintf(w, " %*d", width, d)
		}
		fmt.Fprintln(w)
		for s := 0; s < p; s++ {
			fmt.Fprintf(w, "  src %*d", width, s)
			for d := 0; d < p; d++ {
				fmt.Fprintf(w, " %*d", width, vals[s*p+d])
			}
			fmt.Fprintln(w)
		}
		return
	}
	fmt.Fprintf(w, "  heatmap (%s, max cell %d, scale %q light..dark)\n", unit, max, heatGlyphs)
	for s := 0; s < p; s++ {
		line := make([]byte, p)
		for d := 0; d < p; d++ {
			v := vals[s*p+d]
			g := 0
			if v > 0 {
				// Linear bucket over (0, max], never rendering nonzero as blank.
				g = 1 + int(float64(v)/float64(max)*float64(len(heatGlyphs)-2))
				if g > len(heatGlyphs)-1 {
					g = len(heatGlyphs) - 1
				}
			}
			line[d] = heatGlyphs[g]
		}
		fmt.Fprintf(w, "  p%-4d |%s|\n", s, line)
	}
}

// WriteMatrix renders the total matrix followed by one matrix per
// phase, each with message and word counts.
func WriteMatrix(w io.Writer, m *CommMatrix) {
	if m.Total == nil {
		fmt.Fprintln(w, "trace: no communication events (was sim.Config.Trace set?)")
		return
	}
	msgs, words := m.Total.Totals()
	if msgs == 0 {
		fmt.Fprintln(w, "trace: no messages sent (was sim.Config.Trace set?)")
		return
	}
	sections := append([]string{"total"}, m.PhaseNames()...)
	for _, name := range sections {
		cells := m.Total
		if name != "total" {
			cells = m.ByPhase[name]
		}
		sMsgs, sWords := cells.Totals()
		fmt.Fprintf(w, "%s: %d messages, %d words\n", name, sMsgs, sWords)
		fmt.Fprintln(w, " messages (src -> dst):")
		renderCells(w, m.P, cells.Msgs, "messages")
		fmt.Fprintln(w, " words (src -> dst):")
		renderCells(w, m.P, cells.Words, "words")
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "grand total: %d messages, %d words\n", msgs, words)
}
