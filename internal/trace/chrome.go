package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"packunpack/internal/sim"
)

// This file exports a capture in the Chrome trace-event JSON format,
// which Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
// Each processor becomes one thread track holding "X" (complete) slices
// from the span timeline; send→receive pairs become flow events ("s"
// start on the sender, "f" finish on the receiver), which the viewers
// draw as arrows between tracks — the SSS request storms versus the
// CMS single-exchange pattern become directly visible. Timestamps are
// the emulator's virtual microseconds (the trace-event unit is also
// microseconds, so no scaling is applied).

// chromeEvent is one trace-event record. Field order is fixed by the
// struct, and encoding/json emits struct fields in declaration order,
// so the export is byte-stable — the golden test depends on that.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	ID   string      `json:"id,omitempty"`
	BP   string      `json:"bp,omitempty"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs is the args payload; pointers-to-struct with omitempty
// keep absent groups out of the JSON entirely.
type chromeArgs struct {
	Name  string `json:"name,omitempty"`  // metadata events
	Phase string `json:"phase,omitempty"` // slices
	Kind  string `json:"kind,omitempty"`
	Src   *int   `json:"src,omitempty"` // flows
	Dst   *int   `json:"dst,omitempty"`
	Tag   *int   `json:"tag,omitempty"`
	Words *int   `json:"words,omitempty"`
	Ops   *int64 `json:"ops,omitempty"`     // charge batches
	Wait  *int64 `json:"wait_us,omitempty"` // service spans: queue wait
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

func intp(v int) *int       { return &v }
func int64p(v int64) *int64 { return &v }

// spanKind labels a span for the slice name and category.
func spanKind(comm bool) string {
	if comm {
		return "comm"
	}
	return "comp"
}

// WriteChrome writes the capture as Chrome trace-event JSON. The
// output is deterministic for a deterministic capture (cooperative
// scheduling), which the golden test locks in.
func WriteChrome(w io.Writer, c *Capture) error {
	evs := []chromeEvent{
		{Name: "process_name", Ph: "M", Args: &chromeArgs{Name: "packunpack machine"}},
	}
	for rank := 0; rank < c.Procs; rank++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Tid: rank,
			Args: &chromeArgs{Name: fmt.Sprintf("p%d", rank)},
		})
	}

	// Slices: one "X" event per recorded span.
	for rank, row := range c.Spans {
		for _, s := range row {
			evs = append(evs, chromeEvent{
				Name: s.Phase + "/" + spanKind(s.Comm),
				Cat:  spanKind(s.Comm),
				Ph:   "X",
				Ts:   s.Start,
				Dur:  s.End - s.Start,
				Tid:  rank,
				Args: &chromeArgs{Phase: s.Phase, Kind: spanKind(s.Comm)},
			})
		}
	}

	// Flows and instants from the event stream. Flow start ("s") sits at
	// the send completion on the sender track, flow finish ("f", binding
	// point "e" = enclosing slice) at the wake on the receiver track;
	// viewers match them by (cat, name, id).
	for rank, row := range c.Events {
		for _, e := range row {
			switch e.Kind {
			case sim.EvSend:
				evs = append(evs, chromeEvent{
					Name: "msg", Cat: "flow", Ph: "s",
					Ts: e.Time, Tid: rank, ID: fmt.Sprintf("%#x", e.MsgID),
					Args: &chromeArgs{Src: intp(rank), Dst: intp(e.Peer), Tag: intp(e.Tag), Words: intp(e.Words)},
				})
			case sim.EvRecvWake:
				if e.MsgID == 0 {
					continue // untraced sender; no flow to draw
				}
				evs = append(evs, chromeEvent{
					Name: "msg", Cat: "flow", Ph: "f", BP: "e",
					Ts: e.Time, Tid: rank, ID: fmt.Sprintf("%#x", e.MsgID),
					Args: &chromeArgs{Src: intp(e.Peer), Dst: intp(rank), Tag: intp(e.Tag), Words: intp(e.Words)},
				})
			case sim.EvPhase:
				evs = append(evs, chromeEvent{
					Name: "phase:" + e.Phase, Cat: "phase", Ph: "i", S: "t",
					Ts: e.Time, Tid: rank,
				})
			case sim.EvDedup:
					// Receiver-side recovery: Peer is the duplicate's source.
					evs = append(evs, chromeEvent{
						Name: "dedup", Cat: "fault", Ph: "i", S: "t",
						Ts: e.Time, Tid: rank,
						Args: &chromeArgs{Kind: "dedup", Src: intp(e.Peer), Dst: intp(rank), Tag: intp(e.Tag)},
					})
				case sim.EvFaultDrop, sim.EvFaultDup, sim.EvFaultReorder, sim.EvFaultDelay,
					sim.EvRetry:
					// Injection and recovery markers from the fault layer
					// (sim/fault.go). Rendered as thread-scoped instants in
					// their own "fault" category so Perfetto can filter
					// them; fault-free captures emit none, keeping the
					// golden export unchanged.
					evs = append(evs, chromeEvent{
						Name: e.Kind.String(), Cat: "fault", Ph: "i", S: "t",
						Ts: e.Time, Tid: rank,
						Args: &chromeArgs{Kind: e.Kind.String(), Dst: intp(e.Peer), Tag: intp(e.Tag), Words: intp(e.Words)},
					})
				case sim.EvFaultStall:
					// Stalls have real virtual duration, so draw them as a
					// slice on the stalled processor's track.
					evs = append(evs, chromeEvent{
						Name: "fault-stall", Cat: "fault", Ph: "X",
						Ts: e.Time - e.Dur, Dur: e.Dur, Tid: rank,
						Args: &chromeArgs{Kind: "fault-stall"},
					})
				case sim.EvCharge:
				// Slices already show the computation; a counter-style
				// instant would only duplicate them. Expose the batch ops
				// as an instant only when there is no span timeline.
				if len(c.Spans) > rank && len(c.Spans[rank]) > 0 {
					continue
				}
				evs = append(evs, chromeEvent{
					Name: "charge", Cat: "comp", Ph: "i", S: "t",
					Ts: e.Time, Tid: rank, Args: &chromeArgs{Ops: int64p(e.Ops)},
				})
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{DisplayTimeUnit: "ms", TraceEvents: evs})
}

// SummarizeChrome reads a Chrome trace-event JSON file this repo wrote
// (packtrace -format chrome, packbench -trace-dir, or a flight-recorder
// dump) and renders a text digest: overall event count and time window,
// then one line per thread track with its slice/flow/instant counts.
// This is what `packtrace -open` uses, so a post-mortem dump can be
// inspected without leaving the terminal.
func SummarizeChrome(w io.Writer, r io.Reader) error {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("trace: not a Chrome trace-event file: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return errors.New("trace: Chrome file has no traceEvents")
	}

	type track struct {
		name                           string
		slices, sends, recvs, instants int
		lo, hi                         float64
		seen                           bool
	}
	tracks := map[int]*track{}
	get := func(tid int) *track {
		t := tracks[tid]
		if t == nil {
			t = &track{}
			tracks[tid] = t
		}
		return t
	}
	see := func(t *track, ts float64) {
		if !t.seen || ts < t.lo {
			t.lo = ts
		}
		if !t.seen || ts > t.hi {
			t.hi = ts
		}
		t.seen = true
	}
	var total int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" && e.Args != nil {
				get(e.Tid).name = e.Args.Name
			}
			continue
		case "X":
			t := get(e.Tid)
			t.slices++
			see(t, e.Ts)
			see(t, e.Ts+e.Dur)
		case "s":
			t := get(e.Tid)
			t.sends++
			see(t, e.Ts)
		case "f":
			t := get(e.Tid)
			t.recvs++
			see(t, e.Ts)
		case "i":
			t := get(e.Tid)
			t.instants++
			see(t, e.Ts)
		default:
			continue
		}
		total++
	}

	tids := make([]int, 0, len(tracks))
	var lo, hi float64
	first := true
	for tid, t := range tracks {
		tids = append(tids, tid)
		if !t.seen {
			continue
		}
		if first || t.lo < lo {
			lo = t.lo
		}
		if first || t.hi > hi {
			hi = t.hi
		}
		first = false
	}
	sort.Ints(tids)
	fmt.Fprintf(w, "chrome trace: %d events on %d tracks, window [%.3f, %.3f] µs\n", total, len(tids), lo, hi)
	for _, tid := range tids {
		t := tracks[tid]
		name := t.name
		if name == "" {
			name = fmt.Sprintf("tid%d", tid)
		}
		fmt.Fprintf(w, "  %-6s %4d slices, %4d sends, %4d recvs, %4d instants",
			name, t.slices, t.sends, t.recvs, t.instants)
		if t.seen {
			fmt.Fprintf(w, ", window [%.3f, %.3f]", t.lo, t.hi)
		}
		fmt.Fprintln(w)
	}
	return nil
}
