package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

// runTracedReal executes a small exchange pattern on a real machine
// with tracing and metrics on, returning the machine for capture.
func runTracedReal(t *testing.T, procs int) *transport.RealMachine {
	t.Helper()
	m, err := transport.NewReal(transport.RealConfig{
		Procs: procs, Params: sim.CM5Params(), Trace: true, Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(func(p transport.Endpoint) {
		p.SetPhase("exchange")
		for d := 0; d < p.NProcs(); d++ {
			if d != p.Rank() {
				p.SendInts(d, 11, []int{p.Rank(), d})
			}
		}
		for s := 0; s < p.NProcs(); s++ {
			if s != p.Rank() {
				p.RecvInts(s, 11)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCaptureRealProducesSpansAndEvents(t *testing.T) {
	m := runTracedReal(t, 4)
	c := CaptureReal(m)
	if !c.HasEvents() {
		t.Fatal("real capture has no events")
	}
	if len(c.Spans) != 4 {
		t.Fatalf("spans rows = %d, want 4", len(c.Spans))
	}
	for rank, row := range c.Spans {
		if len(row) == 0 {
			t.Errorf("rank %d synthesized no spans", rank)
		}
		for _, s := range row {
			if s.End <= s.Start {
				t.Errorf("rank %d span [%f,%f] not positive", rank, s.Start, s.End)
			}
		}
	}
	if c.Makespan() <= 0 {
		t.Error("real capture has zero makespan")
	}
}

func TestSpansFromEventsSynthesis(t *testing.T) {
	// Hand-built stream: comp 0..10, phase switch at 10, a receive that
	// waited 5µs ending at 20, comp to the final clock 25.
	events := [][]sim.Event{{
		{Kind: sim.EvPhase, Time: 10, Phase: "m2m"},
		{Kind: sim.EvRecvWake, Time: 20, Dur: 5, Peer: 1, MsgID: 42},
	}}
	spans := SpansFromEvents(events, []float64{25})
	want := []sim.Span{
		{Phase: "default", Comm: false, Start: 0, End: 10},
		{Phase: "m2m", Comm: false, Start: 10, End: 15},
		{Phase: "m2m", Comm: true, Start: 15, End: 20},
		{Phase: "m2m", Comm: false, Start: 20, End: 25},
	}
	if len(spans[0]) != len(want) {
		t.Fatalf("got %d spans %+v, want %d", len(spans[0]), spans[0], len(want))
	}
	for i, s := range spans[0] {
		if s != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestWriteChromeRealCapture(t *testing.T) {
	m := runTracedReal(t, 4)
	c := CaptureReal(m)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, c); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			ID string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// Flow arrows: every "s" must have a matching "f" with the same id.
	starts, finishes := map[string]int{}, map[string]int{}
	slices := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			starts[ev.ID]++
		case "f":
			finishes[ev.ID]++
		case "X":
			slices++
		}
	}
	if len(starts) == 0 {
		t.Fatal("no flow starts in real-backend chrome export")
	}
	if slices == 0 {
		t.Fatal("no slices in real-backend chrome export (spans missing)")
	}
	for id := range finishes {
		if starts[id] == 0 {
			t.Errorf("flow finish %s has no start", id)
		}
	}
	// 4 ranks * 3 peers = 12 counted messages; every one traced.
	if len(starts) != 12 {
		t.Errorf("flow starts = %d, want 12", len(starts))
	}
}

func TestMatrixFromMetricsMatchesEventMatrix(t *testing.T) {
	m := runTracedReal(t, 4)
	c := CaptureReal(m)
	fromEvents := BuildMatrix(c)
	fromMetrics, err := MatrixFromMetrics(m.Metrics().Snapshot(), m.Procs())
	if err != nil {
		t.Fatal(err)
	}
	if !matrixEqual(fromEvents.Total, fromMetrics.Total) {
		t.Errorf("total matrices disagree:\nevents:  %+v\nmetrics: %+v", fromEvents.Total, fromMetrics.Total)
	}
	for _, phase := range fromEvents.PhaseNames() {
		if !matrixEqual(fromEvents.ByPhase[phase], fromMetrics.ByPhase[phase]) {
			t.Errorf("phase %q matrices disagree", phase)
		}
	}
	// And the registry path renders through the usual writer.
	var buf bytes.Buffer
	WriteMatrix(&buf, fromMetrics)
	if !strings.Contains(buf.String(), "exchange") {
		t.Errorf("rendered metrics matrix lacks the phase section:\n%s", buf.String())
	}
}

func matrixEqual(a, b *MatrixCells) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Msgs) != len(b.Msgs) {
		return false
	}
	for i := range a.Msgs {
		if a.Msgs[i] != b.Msgs[i] || a.Words[i] != b.Words[i] {
			return false
		}
	}
	return true
}

func TestMatrixFromMetricsMissingFamily(t *testing.T) {
	if _, err := MatrixFromMetrics(metrics.NewRegistry().Snapshot(), 2); err == nil {
		t.Error("empty snapshot did not error")
	}
}

func TestGanttUnitLabel(t *testing.T) {
	spans := [][]sim.Span{{{Phase: "x", Start: 0, End: 100}}}
	var buf bytes.Buffer
	GanttUnit(&buf, spans, 40, "wall time")
	if !strings.Contains(buf.String(), "wall time 0 ..") {
		t.Errorf("GanttUnit did not label the axis: %s", buf.String())
	}
}
