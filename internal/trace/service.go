package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file exports a service-level schedule — the loadgen harness's
// per-request spans — in the same Chrome trace-event JSON format as
// WriteChrome, one thread track per service worker instead of per
// processor. Timestamps are the harness's virtual microseconds, so a
// deterministic run exports a byte-stable file (pinned by a golden
// test, like the machine-level exporter).

// ServiceSpan is one request's life in the service queue: admitted at
// ArrivalUS, started on Worker at StartUS, finished at DoneUS. The
// struct mirrors loadgen.Span without importing it, keeping this
// package free of service dependencies.
type ServiceSpan struct {
	Class     string
	Worker    int
	ArrivalUS uint64
	StartUS   uint64
	DoneUS    uint64
}

// WriteServiceChrome writes the spans as Chrome trace-event JSON: one
// "X" slice per request on its worker's track, with the queue wait
// carried in args (the viewers show it in the slice details). Spans
// are written in the order given — the harness emits them in start
// order per worker, which the viewers accept on any order anyway.
func WriteServiceChrome(w io.Writer, spans []ServiceSpan) error {
	workers := 0
	for _, s := range spans {
		if s.Worker >= workers {
			workers = s.Worker + 1
		}
	}
	events := make([]chromeEvent, 0, len(spans)+workers+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: &chromeArgs{Name: "packserve"},
	})
	for tid := 0; tid < workers; tid++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: &chromeArgs{Name: fmt.Sprintf("worker %d", tid)},
		})
	}
	for _, s := range spans {
		args := &chromeArgs{Kind: "request"}
		if wait := int64(s.StartUS - s.ArrivalUS); wait > 0 {
			args.Wait = int64p(wait)
		}
		events = append(events, chromeEvent{
			Name: s.Class, Cat: "service", Ph: "X",
			Ts: float64(s.StartUS), Dur: float64(s.DoneUS - s.StartUS),
			Pid: 0, Tid: s.Worker,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{DisplayTimeUnit: "ms", TraceEvents: events})
}
