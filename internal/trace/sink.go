package trace

// This file is the streaming side of the observability layer: Sink
// implementations that consume the emulator's (or real backend's)
// structured event stream as it is produced, so observability no
// longer requires retaining every event in memory (Capture.Events is
// O(total events); a P=1024 sweep emits millions). Three strategies:
//
//   - RetainSink keeps everything, per rank — exactly Config.Trace's
//     behavior, but as a sink, so one capture path serves all three.
//   - JSONLSink streams events to an io.Writer as JSON lines; the
//     memory cost is one buffered writer, and ReadJSONL round-trips
//     the stream back into events for offline analysis.
//   - AggSink folds events into per-phase, per-rank rollups online —
//     communication matrix cells, busy/comm/wait accumulators,
//     message-size histograms (internal/metrics) — and retains no
//     events at all. Memory is O(active (rank, phase, destination)
//     triples + P), independent of run length.
//
// SamplingSink composes in front of any of them: per-rank subsets,
// event-kind filters, and 1-in-N message sampling. Charge batches are
// never message-sampled or kind-filtered away, so the op accounting of
// whatever survives stays exact (DESIGN.md §15).
//
// Concurrency: Emit is called by the rank that owns the event. Under
// the cooperative scheduler calls are serialized; under the goroutine
// scheduler and the real backend ranks call concurrently. RetainSink
// and AggSink exploit ownership (per-rank state, no locks on the hot
// path; the histograms are atomic); JSONLSink serializes on a mutex
// because its output is one shared stream.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
)

// Sink is a destination for streamed trace events. It extends
// sim.EventSink with Flush, which forces out any buffered state (and
// reports deferred I/O errors) once the run is over.
type Sink interface {
	sim.EventSink
	Flush() error
}

// --- full retention ---

// RetainSink keeps every event in per-rank buffers — the sink-shaped
// equivalent of sim.Config.Trace, for callers that want the capture
// path to go through one interface regardless of strategy.
type RetainSink struct {
	rows [][]sim.Event
}

// NewRetainSink builds a retaining sink for procs ranks.
func NewRetainSink(procs int) *RetainSink {
	return &RetainSink{rows: make([][]sim.Event, procs)}
}

// Emit appends the event to its rank's buffer. Only the owning rank
// appends to a given row, so concurrent ranks never contend.
func (s *RetainSink) Emit(ev sim.Event) {
	if ev.Rank < 0 || ev.Rank >= len(s.rows) {
		return
	}
	s.rows[ev.Rank] = append(s.rows[ev.Rank], ev)
}

// Flush is a no-op; retention has nothing buffered elsewhere.
func (s *RetainSink) Flush() error { return nil }

// Events returns the retained per-rank streams. The rows are copies;
// call after the run has finished.
func (s *RetainSink) Events() [][]sim.Event {
	out := make([][]sim.Event, len(s.rows))
	for i, row := range s.rows {
		out[i] = append([]sim.Event(nil), row...)
	}
	return out
}

// --- JSONL streaming ---

// jsonlEvent is the wire form of one event. Field order is fixed and
// all fields are always present, so the output is byte-deterministic
// for a deterministic event stream and round-trips exactly (Go's
// float64 marshalling is shortest-round-trip).
type jsonlEvent struct {
	Kind  string  `json:"kind"`
	Seq   uint64  `json:"seq"`
	Rank  int     `json:"rank"`
	Peer  int     `json:"peer"`
	Tag   int     `json:"tag"`
	Words int     `json:"words"`
	Ops   int64   `json:"ops"`
	Time  float64 `json:"time"`
	Dur   float64 `json:"dur"`
	Phase string  `json:"phase"`
	MsgID uint64  `json:"msgid"`
}

// evKindByName inverts EventKind.String() over every kind; it drives
// ReadJSONL's decoding.
var evKindByName = func() map[string]sim.EventKind {
	m := make(map[string]sim.EventKind)
	for k := sim.EvSend; k <= sim.EvDedup; k++ {
		m[k.String()] = k
	}
	return m
}()

// JSONLSink streams every event as one JSON object per line. Ranks
// emit into one shared stream, so a mutex serializes writes; the
// buffered writer keeps the syscall rate sane. Write errors are held
// and reported by Flush (the emulator hot path has no error channel).
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewJSONLSink builds a streaming sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Emit writes one JSON line.
func (s *JSONLSink) Emit(ev sim.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	line, err := json.Marshal(jsonlEvent{
		Kind: ev.Kind.String(), Seq: ev.Seq, Rank: ev.Rank, Peer: ev.Peer,
		Tag: ev.Tag, Words: ev.Words, Ops: ev.Ops, Time: ev.Time, Dur: ev.Dur,
		Phase: ev.Phase, MsgID: ev.MsgID,
	})
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.bw.Write(line); err != nil {
		s.err = err
		return
	}
	s.err = s.bw.WriteByte('\n')
}

// Flush drains the buffer and reports the first deferred error.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// ReadJSONL parses a stream written by JSONLSink back into events, in
// stream order.
func ReadJSONL(r io.Reader) ([]sim.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []sim.Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		kind, ok := evKindByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: jsonl line %d: unknown event kind %q", line, je.Kind)
		}
		out = append(out, sim.Event{
			Kind: kind, Seq: je.Seq, Rank: je.Rank, Peer: je.Peer, Tag: je.Tag,
			Words: je.Words, Ops: je.Ops, Time: je.Time, Dur: je.Dur,
			Phase: je.Phase, MsgID: je.MsgID,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl read: %w", err)
	}
	return out, nil
}

// EventsByRank regroups a flat event stream (e.g. from ReadJSONL) into
// the per-rank rows a Capture carries, dropping events whose rank is
// outside [0, procs).
func EventsByRank(events []sim.Event, procs int) [][]sim.Event {
	rows := make([][]sim.Event, procs)
	for _, e := range events {
		if e.Rank < 0 || e.Rank >= procs {
			continue
		}
		rows[e.Rank] = append(rows[e.Rank], e)
	}
	return rows
}

// --- online aggregation ---

// RankRollup is one rank's accumulated activity: how much virtual (or
// wall) time it spent computing (charge batches), occupying the wire
// (send costs), and waiting in receives, plus its traffic totals. Idle
// time relative to the makespan is Makespan - Busy - Comm - Wait for
// sim captures (the emulator's clock only advances through those
// three).
type RankRollup struct {
	Rank   int
	Events int64 // events folded for this rank
	Msgs   int64 // charged sends
	Words  int64
	Busy   float64 // charge-batch time, µs
	Comm   float64 // send occupancy, µs
	Wait   float64 // receive waiting, µs
}

// aggCell is one (src rank, phase, dst rank) traffic counter.
type aggCell struct {
	msgs, words int64
}

// aggRank is one rank's private accumulator. Only the owning rank
// touches it during a run.
type aggRank struct {
	roll  RankRollup
	total map[int]*aggCell            // dst -> counts, all phases
	byPh  map[string]map[int]*aggCell // phase -> dst -> counts
	sizes map[string]*metrics.Histogram
}

// AggSink folds the event stream into per-phase rollups online: a
// sparse communication matrix (per-rank destination maps, so memory
// tracks active src->dst pairs rather than P^2), per-rank
// busy/comm/wait accumulators, and per-phase message-size histograms
// recorded through an internal/metrics registry. No event is retained;
// the sink's memory is O(active cells + P) regardless of how many
// events pass through — the property that makes tracing affordable at
// P >= 1024 (pinned by TestScaleAggregatedObservability).
type AggSink struct {
	procs int
	ranks []*aggRank
	reg   *metrics.Registry
	hist  *metrics.HistogramVec
}

// NewAggSink builds an aggregating sink for procs ranks.
func NewAggSink(procs int) *AggSink {
	s := &AggSink{procs: procs, ranks: make([]*aggRank, procs), reg: metrics.NewRegistry()}
	s.hist = s.reg.Histogram("trace_msg_words", "message sizes folded by the aggregating trace sink, machine words", "phase")
	for i := range s.ranks {
		s.ranks[i] = &aggRank{
			roll:  RankRollup{Rank: i},
			total: map[int]*aggCell{},
			byPh:  map[string]map[int]*aggCell{},
			sizes: map[string]*metrics.Histogram{},
		}
	}
	return s
}

// Emit folds one event. Hot path: one switch, map lookups only on
// sends (the others touch fixed per-rank fields).
func (s *AggSink) Emit(ev sim.Event) {
	if ev.Rank < 0 || ev.Rank >= s.procs {
		return
	}
	r := s.ranks[ev.Rank]
	r.roll.Events++
	switch ev.Kind {
	case sim.EvCharge:
		r.roll.Busy += ev.Dur
	case sim.EvSend:
		r.roll.Msgs++
		r.roll.Words += int64(ev.Words)
		r.roll.Comm += ev.Dur
		if ev.Peer >= 0 && ev.Peer < s.procs {
			cell := r.total[ev.Peer]
			if cell == nil {
				cell = &aggCell{}
				r.total[ev.Peer] = cell
			}
			cell.msgs++
			cell.words += int64(ev.Words)
			ph := r.byPh[ev.Phase]
			if ph == nil {
				ph = map[int]*aggCell{}
				r.byPh[ev.Phase] = ph
			}
			pcell := ph[ev.Peer]
			if pcell == nil {
				pcell = &aggCell{}
				ph[ev.Peer] = pcell
			}
			pcell.msgs++
			pcell.words += int64(ev.Words)
		}
		h := r.sizes[ev.Phase]
		if h == nil {
			h = s.hist.With(ev.Phase)
			r.sizes[ev.Phase] = h
		}
		h.Observe(int64(ev.Words))
	case sim.EvRecvWake:
		r.roll.Wait += ev.Dur
	}
}

// Flush is a no-op; aggregation holds no deferred I/O.
func (s *AggSink) Flush() error { return nil }

// Rollups returns the per-rank accumulators, ordered by rank. Call
// after the run has finished.
func (s *AggSink) Rollups() []RankRollup {
	out := make([]RankRollup, s.procs)
	for i, r := range s.ranks {
		out[i] = r.roll
	}
	return out
}

// Matrix materializes the dense P×P communication matrix from the
// sparse cells, in the same shape BuildMatrix produces from a retained
// capture (total plus per-phase sections). Dense cost is O(P^2) per
// section — fine for rendering small machines; at large P prefer the
// sparse accessors (Rollups, Totals, CheckStats).
func (s *AggSink) Matrix() *CommMatrix {
	m := &CommMatrix{P: s.procs, Total: newCells(s.procs), ByPhase: map[string]*MatrixCells{}}
	for src, r := range s.ranks {
		for dst, cell := range r.total {
			i := src*s.procs + dst
			m.Total.Msgs[i] += cell.msgs
			m.Total.Words[i] += cell.words
		}
		for phase, cells := range r.byPh {
			ph := m.ByPhase[phase]
			if ph == nil {
				ph = newCells(s.procs)
				m.ByPhase[phase] = ph
			}
			for dst, cell := range cells {
				i := src*s.procs + dst
				ph.Msgs[i] += cell.msgs
				ph.Words[i] += cell.words
			}
		}
	}
	return m
}

// Totals sums traffic over all ranks.
func (s *AggSink) Totals() (msgs, words int64) {
	for _, r := range s.ranks {
		msgs += r.roll.Msgs
		words += r.roll.Words
	}
	return msgs, words
}

// Cells counts the allocated sparse matrix cells (total and per-phase)
// — the sink's variable-size memory. The fixed remainder is O(P).
// Exposed so scale tests can assert the memory bound structurally.
func (s *AggSink) Cells() int {
	n := 0
	for _, r := range s.ranks {
		n += len(r.total)
		for _, ph := range r.byPh {
			n += len(ph)
		}
	}
	return n
}

// EventsSeen sums the events folded across all ranks.
func (s *AggSink) EventsSeen() int64 {
	var n int64
	for _, r := range s.ranks {
		n += r.roll.Events
	}
	return n
}

// SizeQuantile extracts quantile q of the message-size distribution of
// one phase, in machine words (0 when the phase saw no sends).
func (s *AggSink) SizeQuantile(phase string, q float64) int64 {
	return s.hist.With(phase).Quantile(q)
}

// SizeCount returns how many sends the named phase's size histogram
// observed.
func (s *AggSink) SizeCount(phase string) int64 {
	return s.hist.With(phase).Count()
}

// CheckStats verifies the rollups reconcile exactly with the
// machine-level accounting: per rank, folded sends and words must
// equal Stats.MsgsSent/WordsSent. A mismatch means events were lost
// (or double-counted) between the emit path and the sink — the
// invariant that makes aggregated traces trustworthy summaries.
func (s *AggSink) CheckStats(stats []sim.Stats) error {
	if len(stats) != s.procs {
		return fmt.Errorf("trace: aggregator built for %d ranks, stats have %d", s.procs, len(stats))
	}
	for i, st := range stats {
		r := s.ranks[i].roll
		if r.Msgs != st.MsgsSent || r.Words != st.WordsSent {
			return fmt.Errorf("trace: rank %d rollup (%d msgs, %d words) does not reconcile with stats (%d msgs, %d words)",
				i, r.Msgs, r.Words, st.MsgsSent, st.WordsSent)
		}
	}
	return nil
}

// --- sampling ---

// SamplePolicy selects which events a SamplingSink forwards.
type SamplePolicy struct {
	// Ranks, when non-nil, keeps only events owned by these ranks.
	Ranks []int
	// Kinds, when non-nil, keeps only these event kinds. EvCharge is
	// exempt: charge batches always pass (subject to the rank filter),
	// so the op accounting of the surviving ranks stays exact under
	// any kind filter.
	Kinds []sim.EventKind
	// MsgEvery, when > 1, keeps roughly 1-in-MsgEvery messages: events
	// carrying a MsgID are forwarded only when the id hashes into the
	// selected residue, so a surviving message keeps its send,
	// delivery, and receive-wake together (they share the id).
	// Non-message events (charges, phase marks, recv-blocks) are not
	// message-sampled.
	MsgEvery int
}

// SamplingSink filters events by a SamplePolicy before forwarding to
// an inner sink. It adds no state beyond the precompiled policy, so it
// is safe under concurrent ranks whenever the inner sink is.
type SamplingSink struct {
	inner    sim.EventSink
	ranks    map[int]bool
	kindMask uint64
	msgEvery uint64
}

// NewSamplingSink compiles the policy in front of inner.
func NewSamplingSink(inner sim.EventSink, pol SamplePolicy) *SamplingSink {
	s := &SamplingSink{inner: inner}
	if pol.Ranks != nil {
		s.ranks = make(map[int]bool, len(pol.Ranks))
		for _, r := range pol.Ranks {
			s.ranks[r] = true
		}
	}
	for _, k := range pol.Kinds {
		s.kindMask |= 1 << uint(k)
	}
	if pol.MsgEvery > 1 {
		s.msgEvery = uint64(pol.MsgEvery)
	}
	return s
}

// sampleMix decorrelates message ids before the residue test, so
// sampling does not systematically favour low send counts or low
// ranks (splitmix64 finalizer, same shape the fault layer uses).
func sampleMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Keep reports whether the policy retains ev.
func (s *SamplingSink) Keep(ev sim.Event) bool {
	if s.ranks != nil && !s.ranks[ev.Rank] {
		return false
	}
	if ev.Kind == sim.EvCharge {
		return true
	}
	if s.kindMask != 0 && s.kindMask&(1<<uint(ev.Kind)) == 0 {
		return false
	}
	if s.msgEvery > 1 && ev.MsgID != 0 && sampleMix(ev.MsgID)%s.msgEvery != 0 {
		return false
	}
	return true
}

// Emit forwards the event when the policy keeps it.
func (s *SamplingSink) Emit(ev sim.Event) {
	if s.Keep(ev) {
		s.inner.Emit(ev)
	}
}

// Flush forwards to the inner sink when it is flushable.
func (s *SamplingSink) Flush() error {
	if f, ok := s.inner.(Sink); ok {
		return f.Flush()
	}
	return nil
}
