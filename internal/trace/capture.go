package trace

import (
	"packunpack/internal/sim"
)

// Capture is one finished run's observability snapshot: the statistics,
// span timelines, and structured event streams the exporters in this
// package consume. All slices are owned by the capture (sim's accessors
// deep-copy), so a capture stays valid across later runs of the same
// machine.
type Capture struct {
	Procs  int
	Params sim.Params
	Stats  []sim.Stats
	Spans  [][]sim.Span
	Events [][]sim.Event
}

// CaptureMachine snapshots the most recent run of m. For the full
// picture the machine should have been built with both Config.Record
// (spans) and Config.Trace (events); exporters degrade gracefully when
// one is missing (the Chrome export loses slices or flows, the matrix
// and critical path need events).
func CaptureMachine(m *sim.Machine) *Capture {
	return &Capture{
		Procs:  m.Procs(),
		Params: m.Params(),
		Stats:  m.Stats(),
		Spans:  m.Spans(),
		Events: m.Events(),
	}
}

// Makespan returns the largest final clock in the capture, µs.
func (c *Capture) Makespan() float64 {
	var max float64
	for _, s := range c.Stats {
		if s.Clock > max {
			max = s.Clock
		}
	}
	return max
}

// HasEvents reports whether any rank recorded structured events.
func (c *Capture) HasEvents() bool {
	for _, row := range c.Events {
		if len(row) > 0 {
			return true
		}
	}
	return false
}
