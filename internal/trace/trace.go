// Package trace renders the per-processor virtual-time timelines
// recorded by the machine emulator (sim.Config.Record) as ASCII Gantt
// charts and phase summaries — a quick way to see where a PACK/UNPACK
// run spends its time: the ranking scans, the prefix-reduction-sum
// waves along each grid dimension, and the many-to-many exchange.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"packunpack/internal/sim"
)

// glyphFor maps a span to its chart character: upper case for
// computation, lower case for communication, keyed by phase.
func glyphFor(phase string, comm bool) byte {
	var c byte
	switch phase {
	case "prs":
		c = 'P'
	case "m2m":
		c = 'M'
	case "redist":
		c = 'R'
	default:
		c = 'C' // local computation (the "default" phase)
	}
	if comm {
		c += 'a' - 'A'
	}
	return c
}

// Gantt renders one row per processor, bucketing virtual time into
// width columns. Each bucket shows the glyph of the span kind that
// dominates it; '.' marks idle time (gaps before the first activity or
// between spans, which only arise from receive waits already charged
// as communication — so '.' is rare and indicates the processor
// finished early).
func Gantt(w io.Writer, spans [][]sim.Span, width int) {
	GanttUnit(w, spans, width, "virtual time")
}

// GanttUnit is Gantt with an explicit time-axis label: "virtual time"
// for emulator captures, "wall time" for real-backend ones (the chart
// logic is identical — only the meaning of the microseconds differs,
// and the label keeps the reader from mixing them up).
func GanttUnit(w io.Writer, spans [][]sim.Span, width int, unit string) {
	if width <= 0 {
		width = 72
	}
	// Arbitrarily wide charts only smear spans across unreadable
	// columns (and overflow column arithmetic); clamp to something no
	// terminal exceeds.
	const maxWidth = 4096
	if width > maxWidth {
		width = maxWidth
	}
	var end float64
	haveSpans := false
	for _, row := range spans {
		if n := len(row); n > 0 {
			haveSpans = true
			if row[n-1].End > end {
				end = row[n-1].End
			}
		}
	}
	if end == 0 {
		// Distinguish "nothing was recorded" (recording off, or nothing
		// ran) from "spans exist but the run took zero virtual time"
		// (all cost parameters zero) — the old hint blamed
		// sim.Config.Record for both.
		if haveSpans {
			fmt.Fprintln(w, "trace: all recorded spans have zero duration (zero-cost run; nothing to chart)")
		} else {
			fmt.Fprintln(w, "trace: no recorded spans (was sim.Config.Record set?)")
		}
		return
	}
	scale := float64(width) / end

	fmt.Fprintf(w, "%s 0 .. %.3f ms, one column = %.1f us\n", unit, end/1000, end/float64(width))
	for rank, row := range spans {
		line := make([]byte, width)
		weight := make([]float64, width) // dominant-span bookkeeping
		for i := range line {
			line[i] = '.'
		}
		for _, s := range row {
			lo := int(s.Start * scale)
			hi := int(s.End * scale)
			if lo >= width {
				lo = width - 1 // float rounding at the right edge
			}
			if hi >= width {
				hi = width - 1
			}
			for c := lo; c <= hi; c++ {
				// Span coverage of this column.
				colLo, colHi := float64(c)/scale, float64(c+1)/scale
				cover := min64(s.End, colHi) - max64(s.Start, colLo)
				if cover > weight[c] {
					weight[c] = cover
					line[c] = glyphFor(s.Phase, s.Comm)
				}
			}
		}
		fmt.Fprintf(w, "p%-3d |%s|\n", rank, line)
	}
	fmt.Fprintln(w, "legend: C/c local comp/comm, P/p prefix-reduction-sum, M/m many-to-many, R/r redistribution, . idle")
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Summary prints per-phase totals (maximum over processors, like the
// paper's per-stage measurements) from machine statistics.
func Summary(w io.Writer, stats []sim.Stats) {
	type agg struct{ comp, comm float64 }
	phases := map[string]agg{}
	for _, s := range stats {
		for name, ph := range s.Phases {
			a := phases[name]
			if ph.Comp > a.comp {
				a.comp = ph.Comp
			}
			if ph.Comm > a.comm {
				a.comm = ph.Comm
			}
			phases[name] = a
		}
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-10s  %12s  %12s\n", "phase", "max comp ms", "max comm ms")
	fmt.Fprintln(w, strings.Repeat("-", 40))
	for _, name := range names {
		a := phases[name]
		fmt.Fprintf(w, "%-10s  %12.3f  %12.3f\n", name, a.comp/1000, a.comm/1000)
	}
}
