package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"packunpack/internal/sim"
)

// This file implements the critical-path analyzer: starting from the
// processor whose final clock is the makespan, it walks the blocking
// chain backwards — through every receive that actually waited, to the
// send that released it, to that sender's own last blocking wait, and
// so on back to virtual time zero. The result partitions the makespan
// into processor segments joined by messages, so the question "which
// spans and which messages determine the end-to-end time" has an exact
// answer, attributed per phase. This is the per-run analogue of the
// paper's Section 7 argument: it tells you whether a configuration is
// bounded by ranking computation, by the prefix-reduction-sum, or by
// the many-to-many exchange — and which processor pair carries it.
//
// Correctness rests on two emulator invariants: a processor's clock
// advances only through charges and sends (so span timelines have no
// hidden gaps), and a receive that waited resumes exactly at the
// message's arrival time, which equals the sender's clock at send
// completion — the jump target on the sender's timeline.

// Segment is one processor's stretch of the critical path: the
// processor ran (computed, sent) from Start to End without any
// blocking wait. Except for the first, each segment begins at the
// arrival of the message that released it.
type Segment struct {
	Rank       int
	Start, End float64
	// MsgFrom/MsgTag/MsgWords/MsgID describe the releasing message;
	// MsgFrom is -1 for the initial segment (path start at time zero).
	MsgFrom  int
	MsgTag   int
	MsgWords int
	MsgID    uint64
	// Comp and Comm attribute the segment's virtual time to phases,
	// from the span timeline.
	Comp map[string]float64
	Comm map[string]float64
}

// Dur returns the segment length in µs.
func (s Segment) Dur() float64 { return s.End - s.Start }

// CritReport is the analyzed critical path of one capture.
type CritReport struct {
	// Makespan is the maximum final clock, µs; EndRank the processor
	// that reaches it.
	Makespan float64
	EndRank  int
	// Segments in time order from virtual time zero to the makespan;
	// adjacent segments join at a message arrival.
	Segments []Segment
	// Msgs and Words count the messages riding the critical path.
	Msgs  int
	Words int64
	// Comp and Comm are the per-phase totals over all segments; their
	// grand sum equals the makespan (the accounting identity the tests
	// assert).
	Comp map[string]float64
	Comm map[string]float64
}

// PhaseNames returns the phases appearing on the path, sorted.
func (r *CritReport) PhaseNames() []string {
	seen := map[string]bool{}
	for name := range r.Comp {
		seen[name] = true
	}
	for name := range r.Comm {
		seen[name] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// attribute folds the span coverage of (start, end] on rank into the
// segment's per-phase maps.
func (c *Capture) attribute(seg *Segment) {
	if seg.Rank >= len(c.Spans) {
		return
	}
	for _, s := range c.Spans[seg.Rank] {
		lo, hi := s.Start, s.End
		if lo < seg.Start {
			lo = seg.Start
		}
		if hi > seg.End {
			hi = seg.End
		}
		if hi <= lo {
			continue
		}
		if s.Comm {
			seg.Comm[s.Phase] += hi - lo
		} else {
			seg.Comp[s.Phase] += hi - lo
		}
	}
}

// ErrNoEvents reports a capture without structured events; the matrix
// degrades to empty, but the critical path genuinely needs the chain.
var ErrNoEvents = errors.New("trace: no events in capture")

// ErrNoStats reports a capture without per-processor statistics.
var ErrNoStats = errors.New("trace: capture has no statistics")

// ErrMalformedCapture reports a capture whose events reference ranks
// outside [0, Procs) — truncated or mixed streams.
var ErrMalformedCapture = errors.New("trace: malformed capture")

// CriticalPath walks the blocking chain backwards from the max-clock
// processor. It needs a capture taken with both Config.Trace (events,
// for the chain) and Config.Record (spans, for phase attribution).
// Degenerate captures return typed errors (ErrNoEvents, ErrNoStats,
// ErrMalformedCapture), never panic.
func CriticalPath(c *Capture) (*CritReport, error) {
	if c.Procs < 1 || !c.HasEvents() {
		return nil, fmt.Errorf("%w (was sim.Config.Trace set?)", ErrNoEvents)
	}
	if len(c.Stats) == 0 {
		return nil, ErrNoStats
	}

	// Per-rank blocking wakes, in time order (event rows already are).
	wakes := make([][]sim.Event, c.Procs)
	var totalEvents int
	for rank, row := range c.Events {
		if rank >= c.Procs {
			return nil, fmt.Errorf("%w: event row %d beyond P=%d", ErrMalformedCapture, rank, c.Procs)
		}
		totalEvents += len(row)
		for _, e := range row {
			if e.Kind == sim.EvRecvWake && e.Dur > 0 {
				wakes[rank] = append(wakes[rank], e)
			}
		}
	}

	r := &CritReport{EndRank: 0, Comp: map[string]float64{}, Comm: map[string]float64{}}
	for rank, s := range c.Stats {
		if s.Clock > r.Makespan {
			r.Makespan, r.EndRank = s.Clock, rank
		}
	}
	if r.EndRank >= c.Procs {
		return nil, fmt.Errorf("%w: stats row %d beyond P=%d", ErrMalformedCapture, r.EndRank, c.Procs)
	}

	cur, t := r.EndRank, r.Makespan
	// A path can have at most one hop per blocking wake; anything more
	// means a zero-cost message cycle (possible only with Tau=Mu=0),
	// which would loop forever.
	for hop := 0; ; hop++ {
		if hop > totalEvents+c.Procs {
			return nil, fmt.Errorf("trace: critical path does not terminate (zero-cost message cycle at t=%.3f, rank %d)", t, cur)
		}
		ws := wakes[cur]
		// Latest blocking wake at or before t.
		i := sort.Search(len(ws), func(i int) bool { return ws[i].Time > t }) - 1
		seg := Segment{Rank: cur, End: t, MsgFrom: -1, Comp: map[string]float64{}, Comm: map[string]float64{}}
		if i < 0 {
			seg.Start = 0
			r.Segments = append(r.Segments, seg)
			break
		}
		w := ws[i]
		if w.Peer < 0 || w.Peer >= c.Procs {
			return nil, fmt.Errorf("%w: wake on rank %d names peer %d outside P=%d", ErrMalformedCapture, cur, w.Peer, c.Procs)
		}
		seg.Start = w.Time
		seg.MsgFrom, seg.MsgTag, seg.MsgWords, seg.MsgID = w.Peer, w.Tag, w.Words, w.MsgID
		r.Segments = append(r.Segments, seg)
		r.Msgs++
		r.Words += int64(w.Words)
		cur, t = w.Peer, w.Time
	}

	// Built back-to-front; flip to time order and attribute phases.
	for i, j := 0, len(r.Segments)-1; i < j; i, j = i+1, j-1 {
		r.Segments[i], r.Segments[j] = r.Segments[j], r.Segments[i]
	}
	for i := range r.Segments {
		c.attribute(&r.Segments[i])
		for name, v := range r.Segments[i].Comp {
			r.Comp[name] += v
		}
		for name, v := range r.Segments[i].Comm {
			r.Comm[name] += v
		}
	}
	return r, nil
}

// WriteCritPath renders the report: the hop table, then the per-phase
// attribution with its share of the makespan.
func WriteCritPath(w io.Writer, r *CritReport) {
	fmt.Fprintf(w, "critical path: makespan %.3f ms ending on p%d — %d hops, %d messages (%d words) on the path\n",
		r.Makespan/1000, r.EndRank, len(r.Segments), r.Msgs, r.Words)
	fmt.Fprintf(w, "%4s %5s %14s %14s %10s %10s  %s\n", "#", "proc", "start ms", "end ms", "comp ms", "comm ms", "released by")
	for i, seg := range r.Segments {
		var comp, comm float64
		for _, v := range seg.Comp {
			comp += v
		}
		for _, v := range seg.Comm {
			comm += v
		}
		release := "(run start)"
		if seg.MsgFrom >= 0 {
			release = fmt.Sprintf("msg from p%d tag %d, %d words", seg.MsgFrom, seg.MsgTag, seg.MsgWords)
		}
		fmt.Fprintf(w, "%4d %5s %14.3f %14.3f %10.3f %10.3f  %s\n",
			i+1, fmt.Sprintf("p%d", seg.Rank), seg.Start/1000, seg.End/1000, comp/1000, comm/1000, release)
	}
	fmt.Fprintln(w, "\nper-phase attribution on the path:")
	fmt.Fprintf(w, "  %-10s %10s %10s %8s\n", "phase", "comp ms", "comm ms", "share")
	var accounted float64
	for _, name := range r.PhaseNames() {
		comp, comm := r.Comp[name], r.Comm[name]
		accounted += comp + comm
		share := 0.0
		if r.Makespan > 0 {
			share = (comp + comm) / r.Makespan
		}
		fmt.Fprintf(w, "  %-10s %10.3f %10.3f %7.1f%%\n", name, comp/1000, comm/1000, share*100)
	}
	share := 0.0
	if r.Makespan > 0 {
		share = accounted / r.Makespan
	}
	fmt.Fprintf(w, "  %-10s %21.3f %7.1f%% of makespan accounted\n", "total", accounted/1000, share*100)
}
