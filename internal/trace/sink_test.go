package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"packunpack/internal/sim"
)

// allToAllBody is a small two-phase SPMD exchange: a charge-heavy
// "compose" phase, then every rank sends one message of a distinct
// size to every rank (itself included) and receives them all.
func allToAllBody(p *sim.Proc) {
	n := p.NProcs()
	prev := p.SetPhase("compose")
	p.Charge(10 * (p.Rank() + 1))
	p.SetPhase("exchange")
	for d := 0; d < n; d++ {
		p.Send(d, 1, nil, 1+(p.Rank()+d)%5)
	}
	for s := 0; s < n; s++ {
		p.Recv(s, 1)
	}
	p.SetPhase(prev)
	p.Charge(3)
}

// sinkRun executes allToAllBody on a fresh machine with the given sink
// attached (and full tracing on, so tests can compare against the
// retained baseline).
func sinkRun(t *testing.T, procs int, sched sim.Sched, sink sim.EventSink) *sim.Machine {
	t.Helper()
	m := sim.MustNew(sim.Config{
		Procs: procs, Sched: sched,
		Params: sim.Params{Tau: 10, Mu: 1, Delta: 0.5},
		Trace:  true, Record: true, Sink: sink,
	})
	if err := m.Run(allToAllBody); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRetainSinkMatchesTraceBuffers(t *testing.T) {
	for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
		rs := NewRetainSink(4)
		m := sinkRun(t, 4, sched, rs)
		if !reflect.DeepEqual(rs.Events(), m.Events()) {
			t.Fatalf("%v: retain sink diverges from Config.Trace buffers", sched)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	js := NewJSONLSink(&buf)
	m := sinkRun(t, 3, sim.SchedCooperative, js)
	if err := js.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	got := EventsByRank(events, 3)
	want := m.Events()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSONL round trip diverges:\ngot  %d/%d/%d events\nwant %d/%d/%d",
			len(got[0]), len(got[1]), len(got[2]), len(want[0]), len(want[1]), len(want[2]))
	}
}

func TestAggSinkReconcilesWithRetainedCapture(t *testing.T) {
	const procs = 4
	agg := NewAggSink(procs)
	m := sinkRun(t, procs, sim.SchedCooperative, agg)

	if err := agg.CheckStats(m.Stats()); err != nil {
		t.Fatalf("CheckStats: %v", err)
	}

	// The dense matrix materialized from the sparse cells must equal
	// the one built from the fully retained capture.
	want := BuildMatrix(CaptureMachine(m))
	got := agg.Matrix()
	if !reflect.DeepEqual(got.Total, want.Total) {
		t.Fatalf("aggregated total matrix diverges from retained BuildMatrix")
	}
	if len(got.ByPhase) != len(want.ByPhase) {
		t.Fatalf("phase sections: got %d, want %d", len(got.ByPhase), len(want.ByPhase))
	}
	for phase, cells := range want.ByPhase {
		if !reflect.DeepEqual(got.ByPhase[phase], cells) {
			t.Fatalf("phase %q matrix diverges", phase)
		}
	}

	// Busy/Comm/Wait reconcile with the machine stats: charges sum to
	// Comp, send occupancy plus receive waiting to Comm.
	for i, st := range m.Stats() {
		r := agg.Rollups()[i]
		if math.Abs(r.Busy-st.Comp) > 1e-6 {
			t.Fatalf("rank %d Busy %.9f != Comp %.9f", i, r.Busy, st.Comp)
		}
		if math.Abs((r.Comm+r.Wait)-st.Comm) > 1e-6 {
			t.Fatalf("rank %d Comm+Wait %.9f != stats Comm %.9f", i, r.Comm+r.Wait, st.Comm)
		}
	}

	// Size histogram: every send of the exchange phase was observed.
	msgs, _ := agg.Totals()
	if n := agg.SizeCount("exchange"); n != msgs {
		t.Fatalf("exchange size histogram has %d observations, want %d", n, msgs)
	}
	if q := agg.SizeQuantile("exchange", 1); q < 1 || q > 5 {
		t.Fatalf("exchange p100 message size %d, want within [1,5]", q)
	}

	// No event retention: the sink's variable memory is the sparse
	// cells, bounded by (ranks × phases × destinations), not by events.
	if cells := agg.Cells(); cells > procs*procs*2 {
		t.Fatalf("aggregator allocated %d cells for a %d-rank machine", cells, procs)
	}
	if agg.EventsSeen() == 0 {
		t.Fatal("aggregator saw no events")
	}
}

func TestSamplingKindAndRankFilter(t *testing.T) {
	inner := NewRetainSink(4)
	pol := SamplePolicy{Ranks: []int{1, 2}, Kinds: []sim.EventKind{sim.EvSend}}
	m := sinkRun(t, 4, sim.SchedCooperative, NewSamplingSink(inner, pol))

	full := m.Events()
	got := inner.Events()
	for r := 0; r < 4; r++ {
		if r != 1 && r != 2 {
			if len(got[r]) != 0 {
				t.Fatalf("rank %d filtered out but kept %d events", r, len(got[r]))
			}
			continue
		}
		var wantCharges, gotCharges int64
		for _, e := range full[r] {
			if e.Kind == sim.EvCharge {
				wantCharges += e.Ops
			}
		}
		for _, e := range got[r] {
			switch e.Kind {
			case sim.EvSend:
				// kept by the kind filter
			case sim.EvCharge:
				gotCharges += e.Ops
			default:
				t.Fatalf("rank %d: kind filter leaked %v", r, e.Kind)
			}
		}
		// Charge batches bypass the kind filter, so the op accounting
		// of the surviving ranks is exact.
		if gotCharges != wantCharges {
			t.Fatalf("rank %d: sampled charges %d ops, want %d", r, gotCharges, wantCharges)
		}
	}
}

func TestSamplingKeepsMessagesWhole(t *testing.T) {
	const procs = 4
	inner := NewRetainSink(procs)
	m := sinkRun(t, procs, sim.SchedCooperative, NewSamplingSink(inner, SamplePolicy{MsgEvery: 3}))

	// Kinds per message id in the full stream and in the sampled one.
	collect := func(rows [][]sim.Event) map[uint64]map[sim.EventKind]int {
		out := map[uint64]map[sim.EventKind]int{}
		for _, row := range rows {
			for _, e := range row {
				if e.MsgID == 0 {
					continue
				}
				if out[e.MsgID] == nil {
					out[e.MsgID] = map[sim.EventKind]int{}
				}
				out[e.MsgID][e.Kind]++
			}
		}
		return out
	}
	full := collect(m.Events())
	sampled := collect(inner.Events())
	if len(sampled) == 0 || len(sampled) >= len(full) {
		t.Fatalf("1-in-3 sampling kept %d of %d messages", len(sampled), len(full))
	}
	for id, kinds := range sampled {
		if !reflect.DeepEqual(kinds, full[id]) {
			t.Fatalf("message %d sampled partially: got %v, want %v", id, kinds, full[id])
		}
	}
}
