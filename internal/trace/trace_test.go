package trace

import (
	"bytes"
	"strings"
	"testing"

	"packunpack/internal/sim"
)

func recordedRun(t *testing.T) *sim.Machine {
	t.Helper()
	m := sim.MustNew(sim.Config{Procs: 2, Params: sim.Params{Tau: 10, Mu: 1, Delta: 1}, Record: true})
	err := m.Run(func(p *sim.Proc) {
		p.Charge(20)
		prev := p.SetPhase("prs")
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 5)
		} else {
			p.Recv(0, 1)
		}
		p.SetPhase(prev)
		p.Charge(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSpansRecorded(t *testing.T) {
	m := recordedRun(t)
	spans := m.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 timelines, got %d", len(spans))
	}
	for rank, row := range spans {
		if len(row) == 0 {
			t.Fatalf("rank %d has no spans", rank)
		}
		prevEnd := 0.0
		for _, s := range row {
			if s.End <= s.Start {
				t.Fatalf("rank %d: empty or reversed span %+v", rank, s)
			}
			if s.Start < prevEnd {
				t.Fatalf("rank %d: overlapping spans", rank)
			}
			prevEnd = s.End
		}
	}
	// Rank 0: comp [0,20), prs comm [20,35), comp [35,45).
	r0 := spans[0]
	if len(r0) != 3 || r0[0].Comm || !r0[1].Comm || r0[1].Phase != "prs" || r0[2].End != 45 {
		t.Fatalf("rank 0 timeline unexpected: %+v", r0)
	}
}

func TestSpansMergeContiguous(t *testing.T) {
	m := sim.MustNew(sim.Config{Procs: 1, Params: sim.Params{Delta: 1}, Record: true})
	err := m.Run(func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Charge(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	row := m.Spans()[0]
	if len(row) != 1 || row[0].End != 100 {
		t.Fatalf("contiguous charges should merge to one span, got %+v", row)
	}
}

func TestSpansOffByDefault(t *testing.T) {
	m := sim.MustNew(sim.Config{Procs: 1, Params: sim.Params{Delta: 1}})
	if err := m.Run(func(p *sim.Proc) { p.Charge(5) }); err != nil {
		t.Fatal(err)
	}
	if row := m.Spans()[0]; row != nil {
		t.Fatalf("recording off should keep no spans, got %+v", row)
	}
}

func TestGanttRendering(t *testing.T) {
	m := recordedRun(t)
	var buf bytes.Buffer
	Gantt(&buf, m.Spans(), 40)
	out := buf.String()
	for _, want := range []string{"p0", "p1", "legend", "C", "p"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 2 rows + legend.
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	Gantt(&buf, nil, 10)
	if !strings.Contains(buf.String(), "no recorded spans") {
		t.Fatalf("empty gantt message missing: %s", buf.String())
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	m := recordedRun(t)
	var buf bytes.Buffer
	Gantt(&buf, m.Spans(), 0)
	if !strings.Contains(buf.String(), "p0") {
		t.Fatal("default width render failed")
	}
}

func TestSummary(t *testing.T) {
	m := recordedRun(t)
	var buf bytes.Buffer
	Summary(&buf, m.Stats())
	out := buf.String()
	for _, want := range []string{"phase", "default", "prs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestGlyphs(t *testing.T) {
	cases := map[[2]string]byte{
		{"default", "comp"}: 'C',
		{"prs", "comm"}:     'p',
		{"m2m", "comp"}:     'M',
		{"redist", "comm"}:  'r',
		{"other", "comp"}:   'C',
	}
	for k, want := range cases {
		if got := glyphFor(k[0], k[1] == "comm"); got != want {
			t.Errorf("glyphFor(%s,%s) = %c, want %c", k[0], k[1], got, want)
		}
	}
}
