package trace

import (
	"strings"
	"testing"
)

// TestWriteServiceChromeGolden pins the byte-exact export of a small
// service schedule, like the machine-level Chrome golden.
func TestWriteServiceChromeGolden(t *testing.T) {
	spans := []ServiceSpan{
		{Class: "s4-pack-sss", Worker: 0, ArrivalUS: 10, StartUS: 10, DoneUS: 150},
		{Class: "m8-unpack-css", Worker: 1, ArrivalUS: 20, StartUS: 25, DoneUS: 900},
		{Class: "s4-pack-sss", Worker: 0, ArrivalUS: 100, StartUS: 150, DoneUS: 290},
	}
	var sb strings.Builder
	if err := WriteServiceChrome(&sb, spans); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"packserve"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"worker 0"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"worker 1"}},` +
		`{"name":"s4-pack-sss","cat":"service","ph":"X","ts":10,"dur":140,"pid":0,"tid":0,"args":{"kind":"request"}},` +
		`{"name":"m8-unpack-css","cat":"service","ph":"X","ts":25,"dur":875,"pid":0,"tid":1,"args":{"kind":"request","wait_us":5}},` +
		`{"name":"s4-pack-sss","cat":"service","ph":"X","ts":150,"dur":140,"pid":0,"tid":0,"args":{"kind":"request","wait_us":50}}` +
		"]}\n"
	if sb.String() != want {
		t.Fatalf("export drift:\n got %s\nwant %s", sb.String(), want)
	}
}

func TestWriteServiceChromeEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteServiceChrome(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents"`) {
		t.Fatalf("empty export malformed: %s", sb.String())
	}
}
