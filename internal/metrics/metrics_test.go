package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixture populates a registry with a deterministic set of events
// — the shared input for the golden-exposition and snapshot tests.
func buildFixture() *Registry {
	r := NewRegistry()
	msgs := r.Counter("transport_link_msgs_total", "messages per (src,dst) link", "src", "dst")
	msgs.With("0", "1").Add(3)
	msgs.With("1", "0").Add(2)
	r.Counter("pack_calls_total", "pack/unpack invocations", "op").With("pack").Inc()
	depth := r.Gauge("queue_depth_hw", "SPSC queue high-water mark").With()
	depth.SetMax(7)
	depth.SetMax(4) // lower: must not regress the mark
	lat := r.Histogram("recv_wait_us", "receive wait time in microseconds").With()
	for v := int64(0); v < 100; v++ {
		lat.Observe(v)
	}
	lat.Observe(100000)
	return r
}

func TestBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 33, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for v := int64(2); v < 1<<30; v = v*3 + 7 {
		vals = append(vals, v, v-1, v+1)
	}
	prev := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if lo, hi := bucketLower(i), bucketUpper(i); v < lo || v > hi {
			t.Errorf("value %d landed in bucket %d = [%d,%d]", v, i, lo, hi)
		}
		_ = prev
	}
	// Bucket bounds tile the axis: upper(i)+1 == lower(i+1).
	for i := 0; i < histBuckets-1; i++ {
		if bucketUpper(i)+1 != bucketLower(i+1) {
			t.Fatalf("gap between bucket %d (upper %d) and %d (lower %d)", i, bucketUpper(i), i+1, bucketLower(i+1))
		}
	}
	if bucketIndex(math.MaxInt64) != histBuckets-1 {
		t.Fatalf("MaxInt64 maps to bucket %d, want last (%d)", bucketIndex(math.MaxInt64), histBuckets-1)
	}
}

func TestQuantilesExactInLinearRegion(t *testing.T) {
	h := NewRegistry().Histogram("h", "").With()
	for v := int64(0); v < histSub; v++ {
		h.Observe(v)
	}
	// 16 observations 0..15: rank(0.5)=8 → value 7 (0-indexed 8th).
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7", got)
	}
	if got := h.Quantile(1.0); got != 15 {
		t.Errorf("p100 = %d, want 15", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
}

func TestQuantileResolutionBound(t *testing.T) {
	h := NewRegistry().Histogram("h", "").With()
	const v = 123457
	h.Observe(v)
	got := h.Quantile(0.99)
	if got < v || float64(got) > float64(v)*(1+1.0/histSub)+1 {
		t.Errorf("p99 of single observation %d = %d, outside resolution bound", v, got)
	}
}

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewRegistry().Histogram("h", "").With()
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) on empty histogram = %d, want 0", q, got)
		}
	}
	if got := h.Count(); got != 0 {
		t.Errorf("Count on empty histogram = %d, want 0", got)
	}
	if got := h.Sum(); got != 0 {
		t.Errorf("Sum on empty histogram = %d, want 0", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewRegistry().Histogram("h", "").With()
	const v = 7 // linear region: every quantile is exactly the value
	h.Observe(v)
	for _, q := range []float64{0, 0.25, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) of single observation %d = %d, want %d", q, v, got, v)
		}
	}
	if got, want := h.Count(), int64(1); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), int64(v); got != want {
		t.Errorf("Sum = %d, want %d", got, want)
	}
}

func TestQuantileAllMassInOverflowBucket(t *testing.T) {
	// MaxInt64 lands in the final bucket, whose upper bound clamps to
	// MaxInt64 rather than wrapping: every quantile reports that bound.
	h := NewRegistry().Histogram("h", "").With()
	for i := 0; i < 3; i++ {
		h.Observe(math.MaxInt64)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != math.MaxInt64 {
			t.Errorf("Quantile(%v) with all mass in top bucket = %d, want MaxInt64", q, got)
		}
	}
	if got, want := h.Count(), int64(3); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func TestObserveNegativeClampsToZero(t *testing.T) {
	h := NewRegistry().Histogram("h", "").With()
	h.Observe(-5)
	if got := h.Quantile(1); got != 0 {
		t.Errorf("Quantile(1) after negative observation = %d, want 0 (clamped)", got)
	}
	if got := h.Sum(); got != 0 {
		t.Errorf("Sum after negative observation = %d, want 0 (clamped)", got)
	}
	if got, want := h.Count(), int64(1); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func TestCounterShards(t *testing.T) {
	c := NewRegistry().Counter("c", "").With()
	for i := 0; i < numShards*3; i++ {
		c.AddShard(i, 1)
	}
	c.Add(2)
	if got := c.Value(); got != numShards*3+2 {
		t.Errorf("Value = %d, want %d", got, numShards*3+2)
	}
}

func TestFamilySchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", "a")
	defer func() {
		if recover() == nil {
			t.Error("re-registering x as gauge did not panic")
		}
	}()
	r.Gauge("x", "", "a")
}

func TestSnapshotLookup(t *testing.T) {
	snap := buildFixture().Snapshot()
	f, ok := snap.Family("transport_link_msgs_total")
	if !ok {
		t.Fatal("family missing from snapshot")
	}
	if got := f.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	c, ok := f.Child("0", "1")
	if !ok || c.Value != 3 {
		t.Errorf("child (0,1) = %+v ok=%v, want value 3", c, ok)
	}
	if _, ok := f.Child("9", "9"); ok {
		t.Error("nonexistent child reported present")
	}
	hf, _ := snap.Family("recv_wait_us")
	hc, ok := hf.Child()
	if !ok || hc.Count != 101 {
		t.Fatalf("histogram child count = %d ok=%v, want 101", hc.Count, ok)
	}
	// Values 50 and 51 share the [50,51] bucket (first two-wide octave),
	// so the quantile reports the bucket's upper bound.
	if got := hc.Quantile(0.5); got != 51 {
		t.Errorf("snapshot p50 = %d, want 51", got)
	}
}

func TestGoldenPrometheusExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, buildFixture()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestExpvarJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExpvarJSON(&buf, buildFixture()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if _, ok := doc["counters"]["transport_link_msgs_total{0,1}"]; !ok {
		t.Errorf("counters missing labeled key: %s", buf.Bytes())
	}
	var buf2 bytes.Buffer
	if err := WriteExpvarJSON(&buf2, buildFixture()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("expvar JSON not deterministic across identical registries")
	}
}

func TestServe(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", buildFixture())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics": "transport_link_msgs_total",
		"/vars":    "histograms",
	} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !bytes.Contains(body, []byte(want)) {
			t.Errorf("GET %s: status %d, body %q lacks %q", path, resp.StatusCode, body, want)
		}
	}
}

// TestServeSetRegistry pins the live-swap contract: after
// SetRegistry the endpoints read the new registry (the real-backend
// speedup family swaps in a fresh registry per measured point so the
// live view follows the machine currently executing).
func TestServeSetRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func() string {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body)
	}
	if body := get(); bytes.Contains([]byte(body), []byte("swapped_in_total")) {
		t.Fatalf("empty server already exposes the family: %q", body)
	}
	r := NewRegistry()
	r.Counter("swapped_in_total", "", "k").With("v").Inc()
	srv.SetRegistry(r)
	if body := get(); !bytes.Contains([]byte(body), []byte("swapped_in_total")) {
		t.Errorf("after SetRegistry, /metrics lacks the new family: %q", body)
	}
	srv.SetRegistry(nil)
	if body := get(); bytes.Contains([]byte(body), []byte("swapped_in_total")) {
		t.Errorf("after SetRegistry(nil), /metrics still serves old registry: %q", body)
	}
}

// TestServeNilRegistry pins that the flag plumbing can start the
// endpoint unconditionally: a nil registry serves empty documents.
func TestServeNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("nil-registry /metrics status = %d", resp.StatusCode)
	}
}

// TestMetricsNilFastPath is the zero-overhead regression guard for the
// disabled case: every handle chain off a nil registry must be a
// no-op and must not allocate. This is the contract that lets the
// transport/pack/comm hot paths stay uninstrumented-speed when
// telemetry is off.
func TestMetricsNilFastPath(t *testing.T) {
	var r *Registry
	cv := r.Counter("c", "", "l")
	gv := r.Gauge("g", "")
	hv := r.Histogram("h", "")
	c, g, h := cv.With("x"), gv.With(), hv.With()
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry produced non-nil children")
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		c.Inc()
		c.AddShard(3, 1)
		g.Set(5)
		g.SetMax(9)
		g.Add(1)
		h.Observe(42)
	}); n != 0 {
		t.Errorf("disabled hot-path ops allocate: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = r.Counter("c", "", "l").With("x")
	}); n != 0 {
		t.Errorf("disabled handle resolution allocates: %v allocs/op", n)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil handles report nonzero readings")
	}
	if snap := r.Snapshot(); len(snap.Families) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

// TestEnabledHotPathAllocs pins that the *enabled* steady state (handles
// pre-resolved) does not allocate either — sharded atomics only.
func TestEnabledHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", "dst").With("3")
	h := r.Histogram("h", "").With()
	g := r.Gauge("g", "")
	gc := g.With()
	if n := testing.AllocsPerRun(100, func() {
		c.AddShard(1, 8)
		gc.SetMax(12)
		h.Observe(99)
	}); n != 0 {
		t.Errorf("enabled steady-state ops allocate: %v allocs/op", n)
	}
	// Single-label With on an existing child is also allocation-free
	// (the label value itself is the map key).
	if n := testing.AllocsPerRun(100, func() {
		r.Counter("c", "", "dst").With("3").Inc()
	}); n > 1 {
		t.Errorf("single-label With allocates %v/op, want <= 1", n)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c", "").With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("c", "").With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddShard(1, 1)
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("h", "").With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("h", "").With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
