package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges render
// directly; histograms render as summaries — pre-extracted
// p50/p99/p999 quantile series plus _sum and _count — because the
// quantiles are what the log-linear buckets exist to answer and the
// golden output stays stable under bucket-layout tuning.
//
// Output is deterministic (sorted families, sorted label tuples), so a
// quiesced registry exposes byte-identical text across runs — the
// property the metricscheck golden test pins.
func WritePrometheus(w io.Writer, r *Registry) error {
	return writePrometheusSnapshot(w, r.Snapshot())
}

var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

func writePrometheusSnapshot(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		typ := "counter"
		switch f.Kind {
		case KindGauge:
			typ = "gauge"
		case KindHistogram:
			typ = "summary"
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, typ); err != nil {
			return err
		}
		for _, c := range f.Children {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f FamilySnap, c ChildSnap) error {
	if f.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, labelBlock(f.Labels, c.LabelValues, "", ""), c.Value)
		return err
	}
	for _, sq := range summaryQuantiles {
		if _, err := fmt.Fprintf(w, "%s%s %d\n",
			f.Name, labelBlock(f.Labels, c.LabelValues, "quantile", sq.label), c.Quantile(sq.q)); err != nil {
			return err
		}
	}
	base := labelBlock(f.Labels, c.LabelValues, "", "")
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.Name, base, c.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, base, c.Count)
	return err
}

// labelBlock renders `{a="x",b="y"}` (empty string when no labels),
// optionally appending one extra pair (the summary quantile label).
func labelBlock(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(value(values, i)))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func value(values []string, i int) string {
	if i < len(values) {
		return values[i]
	}
	return ""
}

func escapeLabel(s string) string {
	// %q already escapes `\` and `"`; newlines are the remaining hazard
	// and %q escapes those too, so the quoting above suffices. This
	// helper exists to make the policy explicit and greppable.
	return s
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteExpvarJSON renders the registry as a flat expvar-style JSON
// object: one top-level key per kind, each mapping
// "family{v1,v2}" to its reading (histograms map to an object with
// count/sum/p50/p99/p999). encoding/json sorts map keys, so the output
// is deterministic.
func WriteExpvarJSON(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	counters := map[string]int64{}
	gauges := map[string]int64{}
	hists := map[string]map[string]int64{}
	for _, f := range snap.Families {
		for _, c := range f.Children {
			key := f.Name
			if len(c.LabelValues) > 0 {
				key += "{" + strings.Join(c.LabelValues, ",") + "}"
			}
			switch f.Kind {
			case KindCounter:
				counters[key] = c.Value
			case KindGauge:
				gauges[key] = c.Value
			case KindHistogram:
				hists[key] = map[string]int64{
					"count": c.Count, "sum": c.Sum,
					"p50": c.Quantile(0.5), "p99": c.Quantile(0.99), "p999": c.Quantile(0.999),
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters": counters, "gauges": gauges, "histograms": hists,
	})
}
