package metrics

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Server is the live exposition endpoint: a plain net/http server
// publishing the registry at /metrics (Prometheus text format) and
// /vars (expvar-style JSON). It exists so a long real-backend run can
// be scraped while it executes; nothing in the hot path knows the
// server exists — it only reads snapshots.
type Server struct {
	ln  net.Listener
	srv *http.Server
	reg atomic.Pointer[Registry]
}

// Serve starts the exposition server on addr (":0" picks a free port;
// read it back with Addr). The registry may be nil, in which case the
// endpoints serve empty documents — callers can wire the flag plumbing
// unconditionally.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	s.reg.Store(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, s.reg.Load())
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteExpvarJSON(w, s.reg.Load())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "packunpack telemetry: /metrics (Prometheus text), /vars (expvar JSON)")
	})
	srv.Handler = mux
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// SetRegistry atomically swaps the registry the endpoints read. It
// exists for runs that build a fresh registry per measurement point
// (the real-backend speedup family): the live endpoint then always
// shows the machine currently executing. nil is allowed (empty docs).
func (s *Server) SetRegistry(r *Registry) { s.reg.Store(r) }

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
