package metrics

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestMetricsRaceHammer drives the sharded counters, gauges, and
// histogram buckets from P concurrent goroutines. Correctness here is
// exact final values (the atomics must not lose updates); run under
// `go test -race` (make fault-race / make race) it also proves the
// structures are data-race-free.
func TestMetricsRaceHammer(t *testing.T) {
	const (
		workers = 8
		perG    = 5000
	)
	r := NewRegistry()
	c := r.Counter("hammer_total", "", "lane")
	g := r.Gauge("hammer_hw", "")
	h := r.Histogram("hammer_lat", "")
	hw := g.With()
	hist := h.With()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := c.With(fmt.Sprint(w % 2)) // two lanes, each shared by 4 goroutines
			for i := 0; i < perG; i++ {
				lane.Add(1)
				c.With("all").AddShard(w, 1)
				hw.SetMax(int64(w*perG + i))
				hist.Observe(int64(i % 1000))
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	f, _ := snap.Family("hammer_total")
	if got := f.Total(); got != 2*workers*perG {
		t.Errorf("counter total = %d, want %d", got, 2*workers*perG)
	}
	if got := hw.Value(); got != int64((workers-1)*perG+perG-1) {
		t.Errorf("high-water = %d, want %d", got, (workers-1)*perG+perG-1)
	}
	if got := hist.Count(); got != workers*perG {
		t.Errorf("histogram count = %d, want %d", got, workers*perG)
	}
}

// TestMetricsMergeDeterminism pins the merge-determinism contract: the
// same multiset of events, recorded under any partitioning across
// goroutines and any interleaving, snapshots to the identical value —
// shard sums and bucket counts are commutative, and the snapshot
// orders families/children canonically.
func TestMetricsMergeDeterminism(t *testing.T) {
	// One fixed multiset of events, derived from a seeded RNG.
	type ev struct {
		kind int // 0 counter, 1 gauge-max, 2 histogram
		lane string
		v    int64
	}
	rng := rand.New(rand.NewSource(42))
	events := make([]ev, 20000)
	for i := range events {
		events[i] = ev{kind: rng.Intn(3), lane: fmt.Sprint(rng.Intn(4)), v: int64(rng.Intn(1 << 16))}
	}

	record := func(r *Registry, evs []ev) {
		c := r.Counter("m_total", "h", "lane")
		g := r.Gauge("m_hw", "h", "lane")
		h := r.Histogram("m_lat", "h", "lane")
		for _, e := range evs {
			switch e.kind {
			case 0:
				c.With(e.lane).Add(e.v)
			case 1:
				g.With(e.lane).SetMax(e.v)
			case 2:
				h.With(e.lane).Observe(e.v)
			}
		}
	}

	// Reference: serial, in order.
	ref := NewRegistry()
	record(ref, events)
	want := ref.Snapshot()

	// Trials: different goroutine counts, shuffled event order.
	for _, workers := range []int{2, 5, 16} {
		r := NewRegistry()
		shuffled := append([]ev(nil), events...)
		rand.New(rand.NewSource(int64(workers))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		var wg sync.WaitGroup
		per := (len(shuffled) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := lo + per
			if hi > len(shuffled) {
				hi = len(shuffled)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(part []ev) {
				defer wg.Done()
				record(r, part)
			}(shuffled[lo:hi])
		}
		wg.Wait()
		if got := r.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: snapshot differs from serial reference", workers)
		}
	}
}
