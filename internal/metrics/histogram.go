package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// The histogram uses log-linear bucketing (the HDR-histogram shape):
// values below histSub land in exact unit buckets, and each power-of-two
// octave above that is split into histSub linear sub-buckets. Relative
// error is therefore bounded by 1/histSub (6.25%) everywhere, and is
// ZERO in the linear region — quantiles over small integer
// observations (queue depths, retry counts) are exact, and latency
// quantiles are exact to the bucket bound, which is what "exact
// p50/p99/p999 extraction" means here: the reported value is a true
// bucket boundary of the recorded distribution, never an interpolated
// fiction.
//
// Observations are clamped to [0, MaxInt64]; each Observe is two
// atomic adds (sum, bucket), so the histogram is lock-free and
// merge-deterministic like the counters.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave; also the linear-region width
	histBuckets = histSub + (63-histSubBits)*histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	h := 63 - bits.LeadingZeros64(uint64(v)) // index of the top set bit, >= histSubBits
	sub := int((v >> uint(h-histSubBits)) & (histSub - 1))
	return histSub + (h-histSubBits)*histSub + sub
}

// bucketLower is the smallest value mapping to bucket i.
func bucketLower(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	o := (i - histSub) / histSub
	sub := (i - histSub) % histSub
	return int64(histSub+sub) << uint(o)
}

// bucketUpper is the largest value mapping to bucket i.
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	o := (i - histSub) / histSub
	lo := bucketLower(i)
	width := int64(1) << uint(o)
	if lo > math.MaxInt64-width {
		return math.MaxInt64
	}
	return lo + width - 1
}

// Histogram records a latency/size distribution into log-linear
// buckets. Safe on the nil *Histogram.
type Histogram struct {
	labels  []string
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram(labels []string) *Histogram { return &Histogram{labels: labels} }

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count is the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum is the total of all observations so far.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile extracts quantile q (in [0,1]) from the current buckets:
// the upper bound of the first bucket whose cumulative count reaches
// rank ceil(q*count). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileFromCounts(counts[:], total, q)
}

func quantileFromCounts(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(counts) - 1)
}
