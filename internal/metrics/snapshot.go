package metrics

import (
	"math"
	"sort"
)

// Snapshot is a deterministic point-in-time copy of a registry: a pure
// function of the multiset of recorded events. Families sort by name,
// children by label tuple, so two registries that saw the same events
// under any goroutine interleaving snapshot to identical values (the
// merge-determinism contract pinned by TestMetricsMergeDeterminism).
type Snapshot struct {
	Families []FamilySnap `json:"families"`
}

// FamilySnap is one family's snapshot.
type FamilySnap struct {
	Name     string      `json:"name"`
	Help     string      `json:"help"`
	Kind     Kind        `json:"kind"`
	Labels   []string    `json:"labels,omitempty"`
	Children []ChildSnap `json:"children"`
}

// ChildSnap is one labeled child's snapshot. Value carries
// counter/gauge readings; Count/Sum/Buckets carry histograms.
type ChildSnap struct {
	LabelValues []string `json:"label_values,omitempty"`
	Value       int64    `json:"value,omitempty"`
	Count       int64    `json:"count,omitempty"`
	Sum         int64    `json:"sum,omitempty"`
	Buckets     []Bucket `json:"buckets,omitempty"`
}

// Bucket is one occupied histogram bucket: counts of observations in
// [Lower, Upper].
type Bucket struct {
	Lower int64 `json:"lo"`
	Upper int64 `json:"hi"`
	Count int64 `json:"n"`
}

// Quantile extracts quantile q from a histogram child's buckets (same
// convention as Histogram.Quantile). Zero for counter/gauge children.
func (c ChildSnap) Quantile(q float64) int64 {
	if len(c.Buckets) == 0 {
		return 0
	}
	// Re-spread the sparse buckets onto rank order; they are already
	// sorted by construction.
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(c.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range c.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Upper
		}
	}
	return c.Buckets[len(c.Buckets)-1].Upper
}

// Snapshot copies the registry. Safe on the nil registry (empty
// snapshot). Concurrent writers do not corrupt a snapshot, but only a
// quiesced registry snapshots exactly.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var names []string
	r.families.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)

	var snap Snapshot
	for _, name := range names {
		f, _ := r.families.Load(name)
		snap.Families = append(snap.Families, f.(*family).snapshot())
	}
	return snap
}

func (f *family) snapshot() FamilySnap {
	fs := FamilySnap{Name: f.name, Help: f.help, Kind: f.kind, Labels: append([]string(nil), f.labels...)}
	f.children.Range(func(_, v any) bool {
		fs.Children = append(fs.Children, childSnap(v))
		return true
	})
	sort.Slice(fs.Children, func(i, j int) bool {
		return lessTuple(fs.Children[i].LabelValues, fs.Children[j].LabelValues)
	})
	return fs
}

func lessTuple(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func childSnap(v any) ChildSnap {
	switch c := v.(type) {
	case *Counter:
		return ChildSnap{LabelValues: append([]string(nil), c.labels...), Value: c.Value()}
	case *Gauge:
		return ChildSnap{LabelValues: append([]string(nil), c.labels...), Value: c.Value()}
	case *Histogram:
		cs := ChildSnap{LabelValues: append([]string(nil), c.labels...), Sum: c.Sum()}
		for i := range c.buckets {
			n := c.buckets[i].Load()
			if n == 0 {
				continue
			}
			cs.Count += n
			cs.Buckets = append(cs.Buckets, Bucket{Lower: bucketLower(i), Upper: bucketUpper(i), Count: n})
		}
		return cs
	}
	return ChildSnap{}
}

// Family finds a family snapshot by name; the bool reports presence.
func (s Snapshot) Family(name string) (FamilySnap, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnap{}, false
}

// Child finds a child by exact label tuple.
func (f FamilySnap) Child(values ...string) (ChildSnap, bool) {
	for _, c := range f.Children {
		if len(c.LabelValues) != len(values) {
			continue
		}
		match := true
		for i := range values {
			if c.LabelValues[i] != values[i] {
				match = false
				break
			}
		}
		if match {
			return c, true
		}
	}
	return ChildSnap{}, false
}

// Total sums Value over all children (counter/gauge families).
func (f FamilySnap) Total() int64 {
	var sum int64
	for _, c := range f.Children {
		sum += c.Value
	}
	return sum
}
