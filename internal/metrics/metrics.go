// Package metrics is the backend-agnostic telemetry subsystem: a
// registry of labeled metric families (counters, gauges, latency
// histograms) designed so the instrumented hot paths cost nothing when
// telemetry is off and stay lock-free when it is on.
//
// The two design rules, in priority order:
//
//  1. Disabled means free. Every handle type (*Registry, *CounterVec,
//     *Counter, ...) treats the nil pointer as a valid "telemetry off"
//     value, and every mutating method starts with a one-branch nil
//     check and returns. Instrumentation therefore never needs its own
//     guard: `p.Metrics().Counter(...)` on a nil registry yields nil
//     handles all the way down, and the eventual Add/Observe is a
//     predicted-not-taken branch. This mirrors the emulator's one-bool
//     trace guard (DESIGN.md §6).
//
//  2. Enabled means lock-free. Counters are sharded across padded
//     cache-line cells (writers pick a shard from their stack address,
//     or pin one explicitly with AddShard); gauges and histogram
//     buckets are single atomics. No mutating path takes a lock; the
//     only mutexes guard family/child *creation*, which hot paths
//     amortize away by pre-resolving handles.
//
// Reads (Snapshot, the exposition writers) are designed for
// determinism, not speed: a snapshot taken after writers quiesce is a
// pure function of the multiset of recorded events, independent of
// interleaving — shard sums and bucket counts are commutative, and
// families/children are emitted in sorted order.
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Kind discriminates the metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// numShards is the counter shard count; a power of two so the shard
// pick is a mask, not a modulo.
const numShards = 16

// cell is one counter shard, padded to its own cache line so
// concurrent writers on different shards never false-share.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// shardIndex derives a shard from the caller's stack address: cheap,
// allocation-free, and stable for the lifetime of a goroutine's stack
// segment, so a tight loop in one goroutine keeps hitting the same
// cache line. Collisions only cost contention, never correctness.
func shardIndex() int {
	var marker byte
	return int(uintptr(unsafe.Pointer(&marker)) >> 10 & (numShards - 1))
}

// Registry holds the metric families. The nil *Registry is the
// "telemetry disabled" registry: every method on it is a no-op that
// returns nil handles.
type Registry struct {
	mu       sync.Mutex
	families sync.Map // name -> *family
	order    []string // registration order (used only to detect, not render)
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry { return &Registry{} }

// family is one named metric family with a fixed kind and label
// schema; children (one per label-value tuple) are created on demand.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu       sync.Mutex
	children sync.Map // labelKey -> *Counter / *Gauge / *Histogram
}

// lookup returns the named family, creating it on first use, and
// panics on schema disagreement — two call sites registering the same
// name with different kinds or label arity is a programming error that
// silent tolerance would turn into corrupt exposition.
func (r *Registry) lookup(name, help string, kind Kind, labels []string) *family {
	if f, ok := r.families.Load(name); ok {
		fam := f.(*family)
		fam.check(kind, labels)
		return fam
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families.Load(name); ok {
		fam := f.(*family)
		fam.check(kind, labels)
		return fam
	}
	fam := &family{name: name, help: help, kind: kind, labels: append([]string(nil), labels...)}
	r.families.Store(name, fam)
	r.order = append(r.order, name)
	return fam
}

func (f *family) check(kind Kind, labels []string) {
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: family %q re-registered as %v/%d labels (was %v/%d)",
			f.name, kind, len(labels), f.kind, len(f.labels)))
	}
}

// labelKey builds the child map key. The single-label case (the common
// hot-path shape) uses the value itself — no allocation; multi-label
// tuples join on 0xff, which cannot appear in well-formed label text.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	return strings.Join(values, "\xff")
}

func (f *family) child(values []string, make func(labels []string) any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: family %q got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := labelKey(values)
	if c, ok := f.children.Load(key); ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children.Load(key); ok {
		return c
	}
	c := make(append([]string(nil), values...))
	f.children.Store(key, c)
	return c
}

// Counter registers (or finds) a counter family. Returns nil when the
// registry is nil.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, KindCounter, labels)}
}

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, KindGauge, labels)}
}

// Histogram registers (or finds) a histogram family.
func (r *Registry) Histogram(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, KindHistogram, labels)}
}

// CounterVec is a counter family handle; With resolves one child.
type CounterVec struct{ f *family }

// With returns the child for the given label values (creating it on
// first use). Hot paths should call With once and retain the child.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func(labels []string) any { return &Counter{labels: labels} }).(*Counter)
}

// GaugeVec is a gauge family handle.
type GaugeVec struct{ f *family }

func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func(labels []string) any { return &Gauge{labels: labels} }).(*Gauge)
}

// HistogramVec is a histogram family handle.
type HistogramVec struct{ f *family }

func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values, func(labels []string) any { return newHistogram(labels) }).(*Histogram)
}

// Counter is a monotone sum sharded across padded cells. All methods
// are safe on the nil *Counter (no-ops / zero).
type Counter struct {
	labels []string
	shards [numShards]cell
}

// Add adds d on the shard picked from the caller's stack address.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].n.Add(d)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// AddShard adds d on an explicit shard (masked into range). Hot loops
// with a natural writer index — a rank, a worker id — use this to pin
// one cache line instead of re-deriving the stack hint per call.
func (c *Counter) AddShard(shard int, d int64) {
	if c == nil {
		return
	}
	c.shards[shard&(numShards-1)].n.Add(d)
}

// Value sums the shards. Exact once writers have quiesced.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	labels []string
	v      atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to v if v is larger — the lock-free
// high-water-mark update (CAS loop; losers retry against the new max).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
