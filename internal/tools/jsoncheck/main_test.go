package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedBaselinesStillParse drives the same checks CI runs over
// the committed perf baselines: every historical schema version must
// keep parsing, because cmd/packdiff and the trajectory tooling read
// them blind.
func TestCommittedBaselinesStillParse(t *testing.T) {
	cases := []struct {
		file   string
		schema string
	}{
		{"BENCH_pr1.json", "packbench-perf/v1"},
		{"BENCH_pr2.json", "packbench-perf/v2"},
		{"BENCH_pr3.json", "packbench-perf/v3"},
	}
	for _, tc := range cases {
		path := filepath.Join("..", "..", "..", tc.file)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("committed baseline missing: %v", err)
		}
		if err := check(path, []string{"schema=" + tc.schema, "experiments", "total"}); err != nil {
			t.Errorf("%s: %v", tc.file, err)
		}
	}
}

func TestCheckAssertions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	body := `{"schema":"packbench-perf/v4","experiments":[1],"empty":[],"n":3}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := check(path, nil); err != nil {
		t.Errorf("no assertions: %v", err)
	}
	if err := check(path, []string{"schema=packbench-perf/v4", "experiments"}); err != nil {
		t.Errorf("valid assertions: %v", err)
	}
	if err := check(path, []string{"schema=packbench-perf/v1"}); err == nil {
		t.Error("wrong schema value: want error")
	}
	if err := check(path, []string{"missing"}); err == nil {
		t.Error("missing key: want error")
	}
	if err := check(path, []string{"empty"}); err == nil {
		t.Error("empty array key: want error")
	}
	if err := check(path, []string{"n=3"}); err == nil {
		t.Error("key=value on non-string: want error")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("[1,2,3]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(bad, nil); err == nil {
		t.Error("non-object document: want error")
	}
	if err := check(filepath.Join(dir, "absent.json"), nil); err == nil {
		t.Error("absent file: want error")
	}
}
