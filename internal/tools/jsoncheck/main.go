// Command jsoncheck validates a JSON file from a separate process, for
// the Makefile/CI smoke targets: the writers (packbench, packtrace)
// already self-check, but a reader that shares none of their code is
// what actually proves the artifact parses in the wild.
//
// Usage:
//
//	jsoncheck FILE                 # file parses as a JSON object
//	jsoncheck FILE key             # ...and has a non-empty top-level key
//	jsoncheck FILE key=value       # ...and the key is that exact string
//
// Multiple assertions may be given; all must hold.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsoncheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		fail("usage: jsoncheck FILE [key | key=value]...")
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("%s does not parse as a JSON object: %v", path, err)
	}

	for _, assert := range os.Args[2:] {
		key, want, exact := assert, "", false
		if i := strings.IndexByte(assert, '='); i >= 0 {
			key, want, exact = assert[:i], assert[i+1:], true
		}
		raw, ok := doc[key]
		if !ok {
			fail("%s: missing top-level key %q", path, key)
		}
		if exact {
			var got string
			if err := json.Unmarshal(raw, &got); err != nil {
				fail("%s: key %q is not a string: %v", path, key, err)
			}
			if got != want {
				fail("%s: key %q = %q, want %q", path, key, got, want)
			}
		} else if len(raw) == 0 || string(raw) == "null" || string(raw) == "[]" ||
			string(raw) == "{}" || string(raw) == `""` {
			fail("%s: top-level key %q is empty", path, key)
		}
	}
	fmt.Printf("jsoncheck: %s ok (%d assertions)\n", path, len(os.Args)-2)
}
