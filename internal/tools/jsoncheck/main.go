// Command jsoncheck validates a JSON file from a separate process, for
// the Makefile/CI smoke targets: the writers (packbench, packtrace)
// already self-check, but a reader that shares none of their code is
// what actually proves the artifact parses in the wild.
//
// Usage:
//
//	jsoncheck FILE                 # file parses as a JSON object
//	jsoncheck FILE key             # ...and has a non-empty top-level key
//	jsoncheck FILE key=value       # ...and the key is that exact string
//
// Multiple assertions may be given; all must hold.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "jsoncheck: usage: jsoncheck FILE [key | key=value]...")
		os.Exit(1)
	}
	if err := check(os.Args[1], os.Args[2:]); err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jsoncheck: %s ok (%d assertions)\n", os.Args[1], len(os.Args)-2)
}

// check validates that path parses as a JSON object and satisfies
// every assertion ("key" = non-empty top-level key, "key=value" =
// exact string match). Factored out of main so the backward-compat
// tests can drive the same code paths CI does.
func check(path string, asserts []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s does not parse as a JSON object: %v", path, err)
	}

	for _, assert := range asserts {
		key, want, exact := assert, "", false
		if i := strings.IndexByte(assert, '='); i >= 0 {
			key, want, exact = assert[:i], assert[i+1:], true
		}
		raw, ok := doc[key]
		if !ok {
			return fmt.Errorf("%s: missing top-level key %q", path, key)
		}
		if exact {
			var got string
			if err := json.Unmarshal(raw, &got); err != nil {
				return fmt.Errorf("%s: key %q is not a string: %v", path, key, err)
			}
			if got != want {
				return fmt.Errorf("%s: key %q = %q, want %q", path, key, got, want)
			}
		} else if len(raw) == 0 || string(raw) == "null" || string(raw) == "[]" ||
			string(raw) == "{}" || string(raw) == `""` {
			return fmt.Errorf("%s: top-level key %q is empty", path, key)
		}
	}
	return nil
}
