package ranking

import (
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/sim"
)

// TestIterRecordsMatchesKeptRecords pins the streaming iterator to the
// materialized Records slice: for every rank of several layouts and
// mask densities, IterRecords must emit exactly the records that
// Options.KeepRecords would have stored, in the same scan order.
func TestIterRecordsMatchesKeptRecords(t *testing.T) {
	layouts := []*dist.Layout{
		dist.MustLayout(dist.Dim{N: 96, P: 4, W: 1}),
		dist.MustLayout(dist.Dim{N: 96, P: 4, W: 8}),
		dist.MustLayout(dist.Dim{N: 105, P: 3, W: 7}),
		dist.MustLayout(dist.Dim{N: 24, P: 2, W: 3}, dist.Dim{N: 10, P: 2, W: 5}),
	}
	for _, l := range layouts {
		gens := map[string]mask.Gen{
			"empty": mask.Empty{},
			"full":  mask.Full{},
			"d30":   mask.NewRandom(0.3, 11, shapes(l)...),
			"d80":   mask.NewRandom(0.8, 12, shapes(l)...),
		}
		for name, gen := range gens {
			m := sim.MustNew(sim.Config{Procs: l.Procs()})
			err := m.Run(func(p *sim.Proc) {
				lm := mask.FillLocal(l, p.Rank(), gen)
				res, err := Rank(p, l, lm, Options{KeepRecords: true})
				if err != nil {
					panic(err)
				}
				var got []Record
				res.IterRecords(l.Dims[0].L(), l.Dims[0].W, l.Dims[0].T(), lm, func(rec Record) {
					got = append(got, rec)
				})
				if len(got) != len(res.Records) {
					t.Errorf("%v/%s rank %d: iterated %d records, kept %d", l, name, p.Rank(), len(got), len(res.Records))
					return
				}
				for i, rec := range got {
					if rec != res.Records[i] {
						t.Errorf("%v/%s rank %d: record %d = %+v, kept %+v", l, name, p.Rank(), i, rec, res.Records[i])
						return
					}
				}
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", l, name, err)
			}
		}
	}
}
