package ranking

import (
	"reflect"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/sim"
)

// TestRankUnderFaults: the ranking stage — pure prefix/reduction
// arithmetic over the wire — returns identical base-rank arrays,
// counters and records under any fault schedule on either scheduler.
func TestRankUnderFaults(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 12, P: 2, W: 3}, dist.Dim{N: 8, P: 2, W: 2})
	gmask := make([]bool, l.GlobalSize())
	for i := range gmask {
		gmask[i] = i%5 != 2
	}
	maskLocals := dist.Scatter(l, gmask)

	run := func(sched sim.Sched, faults *sim.FaultConfig) []*Result {
		t.Helper()
		out := make([]*Result, l.Procs())
		m := sim.MustNew(sim.Config{Procs: l.Procs(), Params: sim.CM5Params(), Sched: sched, Faults: faults})
		if err := m.Run(func(p *sim.Proc) {
			res, err := Rank(p, l, maskLocals[p.Rank()], Options{KeepRecords: true})
			if err != nil {
				panic(err)
			}
			out[p.Rank()] = res
		}); err != nil {
			t.Fatalf("sched %v faults %v: %v", sched, faults, err)
		}
		return out
	}

	baseline := run(sim.SchedCooperative, nil)
	schedules := []*sim.FaultConfig{
		{Seed: 51, Drop: 0.15, Dup: 0.1, Reorder: 0.15, Delay: 0.1},
		{Seed: 52, Drop: 0.35},
	}
	for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
		for _, f := range schedules {
			if got := run(sched, f); !reflect.DeepEqual(got, baseline) {
				t.Errorf("sched %v faults %v: ranking results diverge from fault-free run", sched, f)
			}
		}
	}
}
