package ranking

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

// oracleCheck runs the parallel ranking on an emulated machine and
// verifies every per-element rank, the Size, PS_f and PS_c against the
// sequential oracle.
func oracleCheck(t *testing.T, l *dist.Layout, gen mask.Gen, opt Options) {
	t.Helper()
	gmask := mask.FillGlobal(l, gen)
	wantRanks := seq.Ranks(gmask)
	wantSize := seq.Count(gmask)

	m := sim.MustNew(sim.Config{Procs: l.Procs()})
	results := make([]*Result, l.Procs())
	masks := make([][]bool, l.Procs())
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		masks[p.Rank()] = lm
		keep := opt
		keep.KeepRecords = true // always verify via records
		res, err := Rank(p, l, lm, keep)
		if err != nil {
			panic(err)
		}
		results[p.Rank()] = res
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}

	totalRecords := 0
	for rank, res := range results {
		if res.Size != wantSize {
			t.Fatalf("rank %d: Size=%d, oracle %d", rank, res.Size, wantSize)
		}
		totalRecords += len(res.Records)
		if res.LocalTrue != len(res.Records) {
			t.Fatalf("rank %d: LocalTrue %d != records %d", rank, res.LocalTrue, len(res.Records))
		}
		for _, rec := range res.Records {
			g := l.LocalToGlobal(rank, rec.Off)
			pos := l.FlattenGlobal(g)
			if !gmask[pos] {
				t.Fatalf("rank %d: record at unselected position %d", rank, pos)
			}
			if got := res.RankOf(rec); got != wantRanks[pos] {
				t.Fatalf("rank %d: element at global pos %d ranked %d, oracle %d (layout %v)", rank, pos, got, wantRanks[pos], l)
			}
		}
		// PS_c must count the selected elements per slice.
		sumPSc := 0
		for _, c := range res.PSc {
			sumPSc += c
		}
		if sumPSc != res.LocalTrue {
			t.Fatalf("rank %d: PSc sums to %d, want %d", rank, sumPSc, res.LocalTrue)
		}
		if len(res.PSf) != l.Slices() || len(res.PSc) != l.Slices() {
			t.Fatalf("rank %d: base-rank arrays sized %d/%d, want %d", rank, len(res.PSf), len(res.PSc), l.Slices())
		}
	}
	if totalRecords != wantSize {
		t.Fatalf("records total %d, oracle Size %d", totalRecords, wantSize)
	}
}

func shapes(l *dist.Layout) []int {
	s := make([]int, l.Rank())
	for i, d := range l.Dims {
		s[i] = d.N
	}
	return s
}

func TestRankingMatchesOracle(t *testing.T) {
	layouts := map[string]*dist.Layout{
		"1d-cyclic":  dist.MustLayout(dist.Dim{N: 32, P: 4, W: 1}),
		"1d-bc2":     dist.MustLayout(dist.Dim{N: 32, P: 4, W: 2}),
		"1d-block":   dist.MustLayout(dist.Dim{N: 32, P: 4, W: 8}),
		"1d-serial":  dist.MustLayout(dist.Dim{N: 12, P: 1, W: 4}),
		"1d-np2":     dist.MustLayout(dist.Dim{N: 45, P: 3, W: 5}),
		"2d":         dist.MustLayout(dist.Dim{N: 8, P: 2, W: 2}, dist.Dim{N: 8, P: 2, W: 2}),
		"2d-cyclic":  dist.MustLayout(dist.Dim{N: 6, P: 3, W: 1}, dist.Dim{N: 8, P: 2, W: 1}),
		"2d-ragged":  dist.MustLayout(dist.Dim{N: 12, P: 2, W: 2}, dist.Dim{N: 10, P: 5, W: 1}),
		"3d":         dist.MustLayout(dist.Dim{N: 4, P: 2, W: 2}, dist.Dim{N: 6, P: 3, W: 1}, dist.Dim{N: 4, P: 2, W: 1}),
		"4d":         dist.MustLayout(dist.Dim{N: 4, P: 2, W: 1}, dist.Dim{N: 2, P: 1, W: 2}, dist.Dim{N: 4, P: 2, W: 2}, dist.Dim{N: 2, P: 2, W: 1}),
		"2d-serial1": dist.MustLayout(dist.Dim{N: 8, P: 4, W: 1}, dist.Dim{N: 4, P: 1, W: 2}),
	}
	for lname, l := range layouts {
		sh := shapes(l)
		gens := map[string]mask.Gen{
			"d25":   mask.NewRandom(0.25, 5, sh...),
			"d75":   mask.NewRandom(0.75, 6, sh...),
			"full":  mask.Full{},
			"empty": mask.Empty{},
		}
		if l.Rank() == 2 {
			gens["lt"] = mask.UpperTriangle{}
		}
		for gname, gen := range gens {
			t.Run(fmt.Sprintf("%s/%s", lname, gname), func(t *testing.T) {
				oracleCheck(t, l, gen, Options{})
			})
		}
	}
}

func TestRankingPRSVariants(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 64, P: 8, W: 2})
	gen := mask.NewRandom(0.5, 9, 64)
	for _, algo := range []comm.PRSAlgorithm{comm.PRSAuto, comm.PRSDirect, comm.PRSSplit} {
		t.Run(algo.String(), func(t *testing.T) {
			oracleCheck(t, l, gen, Options{PRS: algo})
		})
	}
	t.Run("separate", func(t *testing.T) {
		oracleCheck(t, l, gen, Options{SeparatePrefixReduce: true})
	})
}

// TestRankingProperty drives random layouts and densities through the
// oracle comparison with testing/quick.
func TestRankingProperty(t *testing.T) {
	// Factor pools guaranteeing valid layouts: N = P*W*T.
	pvals := []int{1, 2, 3, 4}
	wvals := []int{1, 2, 3}
	tvals := []int{1, 2, 3}
	f := func(p1, w1, t1, p2, w2, t2 uint, dpct uint8, seed uint64) bool {
		d0 := dist.Dim{P: pvals[p1%4], W: wvals[w1%3]}
		d0.N = d0.P * d0.W * tvals[t1%3]
		d1 := dist.Dim{P: pvals[p2%4], W: wvals[w2%3]}
		d1.N = d1.P * d1.W * tvals[t2%3]
		l, err := dist.NewLayout(d0, d1)
		if err != nil {
			return false
		}
		density := float64(dpct%101) / 100
		gen := mask.NewRandom(density, seed, d0.N, d1.N)

		gmask := mask.FillGlobal(l, gen)
		wantRanks := seq.Ranks(gmask)
		wantSize := seq.Count(gmask)

		m := sim.MustNew(sim.Config{Procs: l.Procs()})
		ok := true
		err = m.Run(func(p *sim.Proc) {
			lm := mask.FillLocal(l, p.Rank(), gen)
			res, err := Rank(p, l, lm, Options{KeepRecords: true})
			if err != nil {
				panic(err)
			}
			if res.Size != wantSize {
				ok = false
				return
			}
			for _, rec := range res.Records {
				pos := l.FlattenGlobal(l.LocalToGlobal(p.Rank(), rec.Off))
				if res.RankOf(rec) != wantRanks[pos] {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1234))}); err != nil {
		t.Fatal(err)
	}
}

func TestRankBadInputs(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		if _, err := Rank(p, l, make([]bool, 3), Options{}); err == nil {
			panic("short mask accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Machine size mismatch.
	m2 := sim.MustNew(sim.Config{Procs: 2})
	err = m2.Run(func(p *sim.Proc) {
		if _, err := Rank(p, l, make([]bool, 4), Options{}); err == nil {
			panic("machine/layout mismatch accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDimGroups(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 8, P: 2, W: 2}, dist.Dim{N: 9, P: 3, W: 3})
	m := sim.MustNew(sim.Config{Procs: 6})
	err := m.Run(func(p *sim.Proc) {
		groups, err := DimGroups(p, l)
		if err != nil {
			panic(err)
		}
		if len(groups) != 2 {
			panic("want 2 groups")
		}
		if groups[0].Size() != 2 || groups[1].Size() != 3 {
			panic(fmt.Sprintf("group sizes %d/%d", groups[0].Size(), groups[1].Size()))
		}
		coords := l.GridCoords(p.Rank())
		if groups[0].Index() != coords[0] || groups[1].Index() != coords[1] {
			panic("group index must equal the grid coordinate")
		}
		// All members of group i share the other coordinate.
		for _, r := range groups[0].Ranks() {
			if l.GridCoords(r)[1] != coords[1] {
				panic("dim-0 group mixes dim-1 coordinates")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSliceBase(t *testing.T) {
	// L0=8, W0=2, T0=4: slice s covers offsets [base, base+2).
	cases := map[int]int{0: 0, 1: 2, 2: 4, 3: 6, 4: 8, 5: 10}
	for slice, want := range cases {
		if got := SliceBase(slice, 8, 2, 4); got != want {
			t.Errorf("SliceBase(%d) = %d, want %d", slice, got, want)
		}
	}
}

func TestRankingChargesWork(t *testing.T) {
	// The ranking stage must charge local work proportional to the
	// local array plus the base-rank arrays — never zero.
	l := dist.MustLayout(dist.Dim{N: 64, P: 4, W: 2})
	gen := mask.NewRandom(0.5, 3, 64)
	m := sim.MustNew(sim.Config{Procs: 4, Params: sim.CM5Params()})
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		if _, err := Rank(p, l, lm, Options{}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Stats() {
		if s.Ops < int64(l.LocalSize()) {
			t.Fatalf("rank %d charged only %d ops", s.Rank, s.Ops)
		}
		if _, okPhase := s.Phases[PhasePRS]; !okPhase {
			t.Fatalf("rank %d has no PRS phase booked", s.Rank)
		}
	}
}

func TestSSSChargesMoreThanCSSPerRecord(t *testing.T) {
	// With a dense mask, record maintenance must make SSS's ranking
	// local computation strictly heavier than CSS's initial-scan cost
	// difference — i.e. ops(SSS) > ops(CSS) at equal inputs.
	l := dist.MustLayout(dist.Dim{N: 256, P: 4, W: 64})
	gen := mask.NewRandom(0.9, 3, 256)
	ops := func(keep bool) int64 {
		m := sim.MustNew(sim.Config{Procs: 4, Params: sim.CM5Params()})
		err := m.Run(func(p *sim.Proc) {
			lm := mask.FillLocal(l, p.Rank(), gen)
			if _, err := Rank(p, l, lm, Options{KeepRecords: keep}); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, s := range m.Stats() {
			total += s.Ops
		}
		return total
	}
	if sss, css := ops(true), ops(false); sss <= css {
		t.Fatalf("SSS ranking ops (%d) should exceed CSS ranking ops (%d) at 90%% density", sss, css)
	}
}

// TestRankingFigure1Example pins down the paper's Figure 1 setting —
// a one-dimensional array of 16 elements distributed block-cyclic(2)
// over four processors — with a mask of ten selected elements
// (Figure 1 also shows Size = 10), and asserts the exact counter and
// base-rank arrays computed by hand:
//
//	global position: 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15
//	mask:            T T F T T F F T F T T  F  T  F  T  T
//	rank:            0 1 . 2 3 . . 4 . 5 6  .  7  .  8  9
//
// Processor p owns blocks {p, p+4}*2; e.g. processor 0 owns global
// {0,1} (its slice 0) and {8,9} (its slice 1).
func TestRankingFigure1Example(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	sel := map[int]bool{0: true, 1: true, 3: true, 4: true, 7: true, 9: true, 10: true, 12: true, 14: true, 15: true}
	gmask := make([]bool, 16)
	for g := range gmask {
		gmask[g] = sel[g]
	}
	locals := dist.Scatter(l, gmask)

	wantPSc := map[int][]int{
		0: {2, 1}, // {0,1}: T,T   {8,9}: F,T
		1: {1, 1}, // {2,3}: F,T   {10,11}: T,F
		2: {1, 1}, // {4,5}: T,F   {12,13}: T,F
		3: {1, 2}, // {6,7}: F,T   {14,15}: T,T
	}
	wantPSf := map[int][]int{
		0: {0, 5}, // ranks before global 0 and before global 8
		1: {2, 6}, // before 2, before 10
		2: {3, 7}, // before 4, before 12
		3: {4, 8}, // before 6, before 14
	}

	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		res, err := Rank(p, l, locals[p.Rank()], Options{})
		if err != nil {
			panic(err)
		}
		if res.Size != 10 {
			panic(fmt.Sprintf("Size = %d, want 10", res.Size))
		}
		if got, want := res.PSc, wantPSc[p.Rank()]; !equalInts(got, want) {
			panic(fmt.Sprintf("proc %d: PSc = %v, want %v", p.Rank(), got, want))
		}
		if got, want := res.PSf, wantPSf[p.Rank()]; !equalInts(got, want) {
			panic(fmt.Sprintf("proc %d: PSf = %v, want %v", p.Rank(), got, want))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
