// Package ranking implements the parallel ranking algorithm of
// Section 5 of the paper: given a block-cyclically distributed logical
// mask array of arbitrary rank, compute for every true element its rank
// (its index in the packed result vector) without moving any array
// elements between processors.
//
// The algorithm works on 2d per-dimension base-rank arrays PS_i / RS_i
// of shape (L_{d-1}, ..., L_{i+1}, T_i):
//
//  1. Initial step (local scan): count the true elements of every
//     slice (the W_0 contiguous local elements within one tile of
//     dimension 0) into PS_0 = RS_0.
//  2. Intermediate step i (for i = 0..d-1), Figure 2:
//     substep 1 — vector prefix-reduction-sum along dimension i's
//     processor group (PS_i becomes the exclusive prefix, RS_i the
//     per-tile total);
//     substep 2 — segmented local exclusive prefix-sum on RS_i (one
//     segment per block of dimension i+1), then PS_i += RS_i;
//     substep 3 — initialize PS_{i+1} = RS_{i+1} with the per-block
//     totals (pre-prefix stash + post-prefix boundary entry); at the
//     top dimension this pair yields Size instead.
//  3. Final step: fold the base-rank arrays downward
//     (PS_i += broadcast of PS_{i+1} over block rows) into the final
//     base-rank array PS_f, indexed by slice; the global rank of a
//     true element is its initial within-slice rank plus PS_f at its
//     slice.
package ranking

import (
	"fmt"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/transport"
)

// PhasePRS is the sim phase name under which all prefix-reduction-sum
// time is booked, so that harnesses can report it separately exactly as
// the paper does ("excluding the time taken by the prefix-reduction-
// sum").
const PhasePRS = "prs"

// Options select algorithmic variants of the ranking stage.
type Options struct {
	// PRS picks the prefix-reduction-sum algorithm (default: the
	// paper's auto rule).
	PRS comm.PRSAlgorithm
	// KeepRecords stores one record per local true element during the
	// initial scan — the simple storage scheme (SSS) of Section 6.1.
	// When false, only the slice counter array PS_c is kept, as the
	// compact storage scheme (CSS/CMS) requires.
	KeepRecords bool
	// SeparatePrefixReduce runs the prefix-sum and the reduction-sum
	// as two separate collectives instead of the combined
	// prefix-reduction-sum primitive. Costs one extra round of
	// start-ups per intermediate step; exists for the ablation
	// benchmark of the combined primitive (Section 5.1).
	SeparatePrefixReduce bool
}

// Record is the per-element information the simple storage scheme saves
// during the initial scan (Section 6.1: "a local index on each
// dimension, a tile number, and an initial local rank"). The local
// index vector and tile number are packed into the flat local offset
// and slice id; the storage cost charged matches the paper's d+2 items.
type Record struct {
	Off      int // flat local offset of the element
	Slice    int // slice id (index into PS_f)
	InitRank int // rank within its slice
}

// Result is the outcome of the ranking stage on one processor.
type Result struct {
	// Size is the global number of selected elements — the length of
	// the packed vector. Identical on every processor.
	Size int
	// PSf is the final base-rank array, one entry per local slice: the
	// global rank of the first selected element of the slice (i.e. the
	// number of selected elements anywhere before the slice).
	PSf []int
	// PSc is the counter array: the number of selected elements in
	// each local slice (the copy of the initial PS_0).
	PSc []int
	// Records holds the per-element information when
	// Options.KeepRecords was set, in local scan order.
	Records []Record
	// LocalTrue is E_i, the number of selected elements on this
	// processor.
	LocalTrue int
}

// geometry bundles the per-step index arithmetic of the base-rank
// arrays.
type geometry struct {
	l *dist.Layout
	d int
	// above[i] = prod_{k>i} L_k: the number of "rows" above dimension
	// i, i.e. the h*m index space of PS_i divided into L_{i+1} and the
	// rest.
	above []int
}

func newGeometry(l *dist.Layout) geometry {
	d := l.Rank()
	above := make([]int, d+1)
	above[d] = 1
	for i := d - 1; i >= 0; i-- {
		above[i] = above[i+1] * l.Dims[i].L()
	}
	// above[i] as stored now is prod_{k>=i} L_k; shift so that
	// above[i] = prod_{k>i} L_k.
	shifted := make([]int, d+1)
	for i := 0; i <= d; i++ {
		if i == d {
			shifted[i] = 1
		} else {
			shifted[i] = above[i+1]
		}
	}
	return geometry{l: l, d: d, above: shifted}
}

// size returns M_i = T_i * prod_{k>i} L_k, the length of PS_i/RS_i.
func (g geometry) size(i int) int { return g.l.Dims[i].T() * g.above[i] }

// DimGroups builds, for processor p of the layout's grid, the
// per-dimension communication groups: group i contains the processors
// whose grid coordinates agree with p's everywhere except coordinate i,
// ordered by that coordinate.
func DimGroups(p transport.Endpoint, l *dist.Layout) ([]comm.Group, error) {
	if p.NProcs() != l.Procs() {
		return nil, fmt.Errorf("ranking: machine has %d processors but layout needs %d", p.NProcs(), l.Procs())
	}
	coords := l.GridCoords(p.Rank())
	groups := make([]comm.Group, l.Rank())
	for i := range groups {
		ranks := make([]int, l.Dims[i].P)
		c := append([]int(nil), coords...)
		for ci := range ranks {
			c[i] = ci
			ranks[ci] = l.GridRank(c)
		}
		g, err := comm.NewGroup(p, ranks)
		if err != nil {
			return nil, err
		}
		groups[i] = g
	}
	return groups, nil
}

// Rank executes the parallel ranking algorithm for the calling
// processor. mask is the processor's local portion of the mask array in
// local row-major order (dimension 0 fastest); its length must be the
// layout's local size. Every processor of the machine must call Rank
// with the same layout and options.
func Rank(p transport.Endpoint, l *dist.Layout, mask []bool, opt Options) (*Result, error) {
	if len(mask) != l.LocalSize() {
		return nil, fmt.Errorf("ranking: local mask has %d elements, layout needs %d", len(mask), l.LocalSize())
	}
	groups, err := DimGroups(p, l)
	if err != nil {
		return nil, err
	}
	geo := newGeometry(l)
	d := l.Rank()

	// ---- Initial step: local scan (Section 5.2). ----
	res := &Result{}
	ps := make([][]int, d)
	ps[0] = make([]int, geo.size(0))
	l0 := l.Dims[0].L()
	w0 := l.Dims[0].W
	t0 := l.Dims[0].T()
	for off, sel := range mask {
		if !sel {
			continue
		}
		rest := off / l0
		slice := rest*t0 + (off%l0)/w0
		if opt.KeepRecords {
			res.Records = append(res.Records, Record{Off: off, Slice: slice, InitRank: ps[0][slice]})
		}
		ps[0][slice]++
		res.LocalTrue++
	}
	p.Charge(len(mask)) // read every mask element
	if opt.KeepRecords {
		// SSS: save a d+3-item record per element — a local index on
		// each dimension, a tile number, an initial rank and a
		// destination slot (Section 6.4.1 charges this maintenance at
		// Theta(4E) for d=1). d+1 item writes happen here; the final
		// step pays the remaining 2 (read and rank update).
		p.Charge((d + 1) * res.LocalTrue)
	} else {
		p.Charge(res.LocalTrue) // counter increments
	}
	// RS_0 starts equal to PS_0.
	rs := cloneInts(ps[0])
	p.Charge(len(rs))
	if !opt.KeepRecords {
		// CSS/CMS: copy PS_0 to the counter array PS_c (Section 6.1).
		res.PSc = cloneInts(ps[0])
		p.Charge(len(res.PSc))
	} else {
		res.PSc = cloneInts(ps[0]) // free bookkeeping for assertions
	}

	// ---- Intermediate steps (Figure 2). ----
	for i := 0; i < d; i++ {
		m := geo.size(i)
		ti := l.Dims[i].T()

		// Substep 1: vector prefix-reduction-sum along dimension i.
		prev := p.SetPhase(PhasePRS)
		var prefix, total []int
		if opt.SeparatePrefixReduce {
			prefix, _ = groups[i].PrefixReductionSum(rs, opt.PRS)
			_, total = groups[i].PrefixReductionSum(rs, opt.PRS)
		} else {
			prefix, total = groups[i].PrefixReductionSum(rs, opt.PRS)
		}
		p.SetPhase(prev)
		ps[i] = prefix
		rs = total

		if i < d-1 {
			li1 := l.Dims[i+1].L()
			wi1 := l.Dims[i+1].W
			ti1 := l.Dims[i+1].T()
			high := geo.above[i+1] // prod_{k>i+1} L_k

			// Substep 2.1: stash the pre-prefix block boundary values.
			stash := make([]int, high*ti1)
			for h := 0; h < high; h++ {
				rowbase := h * li1 * ti
				for k := 0; k < ti1; k++ {
					idx := rowbase + ((k+1)*wi1-1)*ti + (ti - 1)
					stash[h*ti1+k] = rs[idx]
				}
			}
			p.Charge(len(stash))

			// Substeps 2.2/2.3: segmented exclusive prefix-sum on RS,
			// one segment per dimension-(i+1) block.
			for h := 0; h < high; h++ {
				rowbase := h * li1 * ti
				for k := 0; k < ti1; k++ {
					run := 0
					for mm := k * wi1; mm < (k+1)*wi1; mm++ {
						base := rowbase + mm*ti
						for t := 0; t < ti; t++ {
							rs[base+t], run = run, run+rs[base+t]
						}
					}
				}
			}
			p.Charge(m)

			// Substep 2.4: PS_i += RS_i.
			for j := 0; j < m; j++ {
				ps[i][j] += rs[j]
			}
			p.Charge(m)

			// Substep 3: PS_{i+1} = RS_{i+1} = stash + post-prefix
			// boundary.
			next := make([]int, high*ti1)
			for h := 0; h < high; h++ {
				rowbase := h * li1 * ti
				for k := 0; k < ti1; k++ {
					idx := rowbase + ((k+1)*wi1-1)*ti + (ti - 1)
					next[h*ti1+k] = stash[h*ti1+k] + rs[idx]
				}
			}
			p.Charge(len(next))
			ps[i+1] = nil // assigned by the next iteration's substep 1
			rs = next
		} else {
			// Top dimension: a single segment; Size = pre-prefix last
			// entry + post-prefix last entry.
			pre := rs[m-1]
			run := 0
			for t := 0; t < m; t++ {
				rs[t], run = run, run+rs[t]
			}
			p.Charge(m)
			for j := 0; j < m; j++ {
				ps[i][j] += rs[j]
			}
			p.Charge(m)
			res.Size = pre + rs[m-1]
		}
	}

	// ---- Final step (Section 5.4): fold PS_{i+1} into PS_i. ----
	for i := d - 2; i >= 0; i-- {
		li1 := l.Dims[i+1].L()
		wi1 := l.Dims[i+1].W
		ti := l.Dims[i].T()
		ti1 := l.Dims[i+1].T()
		high := geo.above[i+1]
		for h := 0; h < high; h++ {
			rowbase := h * li1 * ti
			for mm := 0; mm < li1; mm++ {
				addend := ps[i+1][h*ti1+mm/wi1]
				base := rowbase + mm*ti
				for t := 0; t < ti; t++ {
					ps[i][base+t] += addend
				}
			}
		}
		p.Charge(geo.size(i))
	}
	res.PSf = ps[0]

	if opt.KeepRecords {
		// SSS final step: resolve every record's global rank (the
		// read half of the record maintenance cost).
		p.Charge(2 * len(res.Records))
	}
	return res, nil
}

// RankOf resolves the global rank of a record against the final
// base-rank array.
func (r *Result) RankOf(rec Record) int { return r.PSf[rec.Slice] + rec.InitRank }

// IterRecords streams the simple-storage-scheme records of the mask's
// selected elements in local scan order without requiring
// Options.KeepRecords: the counter array PS_c already pins how many
// selected elements each slice holds, so a rescan of the mask
// regenerates every Record on the fly. Consumers that only need run
// boundaries (the plan compiler) use this instead of materializing —
// and then retaining — the full Records slice. l0, w0 and t0 are the
// layout's dimension-0 local extent, block size and tile count (the
// slice arithmetic of SliceBase). The walk stops scanning a slice as
// soon as its PS_c count is exhausted, mirroring the compact schemes'
// stop-early policy; the caller charges the scan.
func (r *Result) IterRecords(l0, w0, t0 int, mask []bool, fn func(Record)) {
	for slice, n := range r.PSc {
		if n == 0 {
			continue
		}
		base := SliceBase(slice, l0, w0, t0)
		k := 0
		for i := 0; i < w0 && k < n; i++ {
			if mask[base+i] {
				fn(Record{Off: base + i, Slice: slice, InitRank: k})
				k++
			}
		}
	}
}

func cloneInts(v []int) []int {
	out := make([]int, len(v))
	copy(out, v)
	return out
}

// SliceBase returns the flat local offset of the first element of the
// given slice, for a layout with local extent l0, block size w0 and t0
// tiles along dimension 0. Slices are W_0 contiguous local elements:
// slice s covers offsets [SliceBase, SliceBase+W_0).
func SliceBase(slice, l0, w0, t0 int) int {
	rest := slice / t0
	tile := slice % t0
	return rest*l0 + tile*w0
}
