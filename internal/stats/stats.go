// Package stats implements the small statistical toolkit the perf
// pipeline needs: robust aggregates (median, quantiles, MAD) over
// repeated wall-clock samples, and a Mann–Whitney U significance test
// for deciding whether two sample sets plausibly come from the same
// distribution (benchstat-style, suited to the small sample counts a
// perf sweep can afford).
//
// Virtual times never come through here — they are exact replays of
// the cost model and are compared bit-for-bit (see cmd/packdiff). This
// package exists for the host-side wall-clock and allocation figures,
// which are genuinely noisy.
package stats

import (
	"math"
	"sort"
)

// Summary is the robust description of one metric's repeated samples.
// Median/P10/P90 describe the distribution's location and spread
// without assuming normality; MAD (median absolute deviation) is the
// robust analogue of the standard deviation.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P10    float64
	P90    float64
	// MAD is the raw median absolute deviation from the median (not
	// scaled by 1.4826; consumers that want a sigma-comparable figure
	// apply the normal-consistency constant themselves).
	MAD float64
}

// Summarize computes the Summary of xs. It copies the input (callers
// keep their sample order) and returns the zero Summary for an empty
// slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		Median: quantileSorted(sorted, 0.5),
		P10:    quantileSorted(sorted, 0.10),
		P90:    quantileSorted(sorted, 0.90),
	}
	dev := make([]float64, len(sorted))
	for i, v := range sorted {
		dev[i] = math.Abs(v - s.Median)
	}
	sort.Float64s(dev)
	s.MAD = quantileSorted(dev, 0.5)
	return s
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile of xs (q in [0,1]) with linear
// interpolation between order statistics (the "R-7" rule spreadsheet
// users expect). It copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile on an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
