package stats

import (
	"math"
	"testing"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSummarizeGolden(t *testing.T) {
	// Hand-computed on a fixed, unsorted input.
	xs := []float64{5, 1, 4, 2, 3}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("N/Min/Max: %+v", s)
	}
	if !close(s.Mean, 3) || !close(s.Median, 3) {
		t.Fatalf("Mean/Median: %+v", s)
	}
	// R-7 quantiles over sorted [1 2 3 4 5]: pos = q*(n-1).
	if !close(s.P10, 1.4) || !close(s.P90, 4.6) {
		t.Fatalf("P10/P90: %+v", s)
	}
	// |x - 3| = [2 1 0 1 2], median 1.
	if !close(s.MAD, 1) {
		t.Fatalf("MAD: %+v", s)
	}
	// Input order must be preserved (Summarize copies).
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarizeEvenCountInterpolates(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 10})
	if !close(s.Median, 2.5) {
		t.Fatalf("median of even count: %v", s.Median)
	}
	if !close(s.Mean, 4) {
		t.Fatalf("mean: %v", s.Mean)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty input: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Median != 7 || s.P10 != 7 || s.P90 != 7 || s.MAD != 0 {
		t.Fatalf("single sample: %+v", s)
	}
	s = Summarize([]float64{2, 2, 2, 2})
	if s.Median != 2 || s.MAD != 0 || s.Min != 2 || s.Max != 2 {
		t.Fatalf("constant samples: %+v", s)
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{10, 20, 30}
	if Quantile(xs, -1) != 10 || Quantile(xs, 0) != 10 {
		t.Fatal("low quantile clamps to min")
	}
	if Quantile(xs, 1) != 30 || Quantile(xs, 2) != 30 {
		t.Fatal("high quantile clamps to max")
	}
	if !close(Quantile(xs, 0.5), 20) || !close(Quantile(xs, 0.25), 15) {
		t.Fatalf("interpolation: %v %v", Quantile(xs, 0.5), Quantile(xs, 0.25))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("Median")
	}
}

func TestMannWhitneyDisjointSamples(t *testing.T) {
	// All of a below all of b: the most extreme ordering. Exact
	// two-sided p for 5v5 is 2/C(10,5) = 2/252.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 11, 12, 13, 14}
	r := MannWhitneyU(a, b)
	if !r.Exact {
		t.Fatal("small tie-free samples must use the exact test")
	}
	if r.U != 0 {
		t.Fatalf("U = %v, want 0", r.U)
	}
	if !close(r.P, 2.0/252) {
		t.Fatalf("p = %v, want %v", r.P, 2.0/252)
	}
	// Symmetry: swapping the samples flips U but not p.
	r2 := MannWhitneyU(b, a)
	if r2.U != 25 || !close(r2.P, r.P) {
		t.Fatalf("swapped: U=%v p=%v", r2.U, r2.P)
	}
}

func TestMannWhitneyThreeVsThree(t *testing.T) {
	// Classic textbook case: fully separated 3v3 gives two-sided
	// p = 2 * (1/20) = 0.1.
	r := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6})
	if !r.Exact || !close(r.P, 0.1) {
		t.Fatalf("3v3: %+v", r)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	// Same values on both sides: pure ties, no evidence of difference.
	a := []float64{3, 3, 3, 3, 3}
	r := MannWhitneyU(a, a)
	if r.P != 1 {
		t.Fatalf("identical samples: p = %v, want 1", r.P)
	}
	if r.Exact {
		t.Fatal("tied samples must not claim the exact distribution")
	}
}

func TestMannWhitneyOverlappingSamples(t *testing.T) {
	// Interleaved samples: no real difference, p must be large.
	a := []float64{1, 3, 5, 7, 9}
	b := []float64{2, 4, 6, 8, 10}
	r := MannWhitneyU(a, b)
	if r.P < 0.5 {
		t.Fatalf("interleaved samples flagged significant: %+v", r)
	}
}

func TestMannWhitneyEdgeCases(t *testing.T) {
	if r := MannWhitneyU(nil, []float64{1, 2}); r.P != 1 {
		t.Fatalf("empty a: %+v", r)
	}
	if r := MannWhitneyU([]float64{1, 2}, nil); r.P != 1 {
		t.Fatalf("empty b: %+v", r)
	}
	// n=1 vs n=1: two-sided p can never drop below 1.
	if r := MannWhitneyU([]float64{1}, []float64{100}); r.P != 1 {
		t.Fatalf("1v1: %+v", r)
	}
	// n=1 vs larger sample: p = 2/(m+1) when the singleton is outside.
	r := MannWhitneyU([]float64{0}, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if !r.Exact || !close(r.P, 0.2) {
		t.Fatalf("1v9: %+v", r)
	}
}

func TestMannWhitneyTiesUseNormalApproximation(t *testing.T) {
	a := []float64{1, 2, 2, 3, 4}
	b := []float64{2, 5, 6, 7, 8}
	r := MannWhitneyU(a, b)
	if r.Exact {
		t.Fatal("ties present: must use the normal approximation")
	}
	if r.P <= 0 || r.P > 1 {
		t.Fatalf("p out of range: %+v", r)
	}
}

func TestMannWhitneyLargeSamplesApproximation(t *testing.T) {
	// Above the exact-DP bound: clearly separated large samples must be
	// strongly significant under the normal approximation.
	var a, b []float64
	for i := 0; i < 25; i++ {
		a = append(a, float64(i))
		b = append(b, float64(i)+1000)
	}
	r := MannWhitneyU(a, b)
	if r.Exact {
		t.Fatal("25v25 exceeds the exact bound")
	}
	if r.P > 1e-6 {
		t.Fatalf("separated large samples: p = %v", r.P)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	// U_a + U_b = n*m, and the two-sided p must not depend on which
	// sample is "first".
	a := []float64{1, 4, 6, 9, 11, 13, 17}
	b := []float64{2, 3, 5, 12, 14, 18, 19}
	ra, rb := MannWhitneyU(a, b), MannWhitneyU(b, a)
	if !ra.Exact || !rb.Exact {
		t.Fatal("expected exact path")
	}
	if !close(ra.U+rb.U, float64(len(a)*len(b))) {
		t.Fatalf("U_a + U_b = %v, want %d", ra.U+rb.U, len(a)*len(b))
	}
	if !close(ra.P, rb.P) {
		t.Fatalf("p asymmetric: %v vs %v", ra.P, rb.P)
	}
	if ra.P <= 0 || ra.P > 1 {
		t.Fatalf("p out of range: %v", ra.P)
	}
}
