package stats

import (
	"math"
	"sort"
)

// TestResult is the outcome of a two-sided Mann–Whitney U test.
type TestResult struct {
	// U is the Mann–Whitney statistic of the first sample (fractional
	// when ties forced average ranks).
	U float64
	// P is the two-sided p-value: the probability of a U at least this
	// extreme if both samples came from the same distribution. Small P
	// means the difference is unlikely to be noise.
	P float64
	// Exact reports whether P came from the exact permutation
	// distribution (small tie-free samples) rather than the normal
	// approximation.
	Exact bool
}

// maxExactProduct bounds the n*m size of the exact-distribution DP;
// beyond it the normal approximation is both accurate and cheap.
const maxExactProduct = 400

// MannWhitneyU runs the two-sided Mann–Whitney U test on two
// independent samples. For small tie-free samples (len(a)*len(b) <=
// 400) it uses the exact permutation distribution, like benchstat; with
// ties or larger samples it falls back to the normal approximation
// with tie correction and continuity correction.
//
// Degenerate inputs are conservatively non-significant: an empty
// sample, or two samples whose pooled values are all identical, yield
// P = 1.
func MannWhitneyU(a, b []float64) TestResult {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return TestResult{P: 1}
	}

	ranks, tieCorr, tied := rankAll(a, b)
	var ra float64 // rank sum of sample a
	for i := 0; i < n; i++ {
		ra += ranks[i]
	}
	u := ra - float64(n*(n+1))/2

	if !tied && n*m <= maxExactProduct {
		return TestResult{U: u, P: exactP(n, m, u), Exact: true}
	}

	mu := float64(n*m) / 2
	nf, mf, tot := float64(n), float64(m), float64(n+m)
	sigma2 := nf * mf / 12 * ((tot + 1) - tieCorr/(tot*(tot-1)))
	if sigma2 <= 0 {
		// Every pooled value tied: no ordering information at all.
		return TestResult{U: u, P: 1}
	}
	// Continuity correction: shrink the deviation by 1/2 toward the
	// mean (never past it).
	dev := math.Abs(u - mu)
	if dev > 0.5 {
		dev -= 0.5
	} else {
		dev = 0
	}
	z := dev / math.Sqrt(sigma2)
	p := math.Erfc(z / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return TestResult{U: u, P: p}
}

// rankAll assigns pooled average ranks to a then b, returning the
// per-value ranks (a's first), the tie-correction term sum(t^3-t), and
// whether any tie occurred.
func rankAll(a, b []float64) (ranks []float64, tieCorr float64, tied bool) {
	n, m := len(a), len(b)
	type idxVal struct {
		v   float64
		pos int
	}
	all := make([]idxVal, 0, n+m)
	for i, v := range a {
		all = append(all, idxVal{v, i})
	}
	for i, v := range b {
		all = append(all, idxVal{v, n + i})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	ranks = make([]float64, n+m)
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		// Positions i..j-1 share the average of ranks i+1..j.
		avg := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[all[k].pos] = avg
		}
		if t := float64(j - i); t > 1 {
			tied = true
			tieCorr += t*t*t - t
		}
		i = j
	}
	return ranks, tieCorr, tied
}

// exactP returns the exact two-sided p-value of an observed tie-free U
// with sample sizes n and m, by dynamic programming over the
// distribution of rank subsets: count(i, j, u) arrangements of i
// sample-a values among i+j values produce statistic u, via the
// classic recurrence count(i,j,u) = count(i-1,j,u-j) + count(i,j-1,u).
func exactP(n, m int, uObs float64) float64 {
	nm := n * m
	// The distribution is symmetric about nm/2; fold the observed U to
	// the lower tail.
	lo := uObs
	if other := float64(nm) - uObs; other < lo {
		lo = other
	}
	counts := make([][]float64, n+1)
	for i := range counts {
		counts[i] = make([]float64, nm+1)
	}
	for i := 0; i <= n; i++ {
		counts[i][0] = 1 // j = 0: only u = 0
	}
	for j := 1; j <= m; j++ {
		next := make([][]float64, n+1)
		for i := range next {
			next[i] = make([]float64, nm+1)
		}
		next[0][0] = 1
		for i := 1; i <= n; i++ {
			for u := 0; u <= i*j; u++ {
				v := counts[i][u] // count(i, j-1, u)
				if u >= j {
					v += next[i-1][u-j] // count(i-1, j, u-j)
				}
				next[i][u] = v
			}
		}
		counts = next
	}
	var total, tail float64
	for u, c := range counts[n] {
		total += c
		if float64(u) <= lo {
			tail += c
		}
	}
	p := 2 * tail / total
	if p > 1 {
		p = 1
	}
	return p
}
