package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// chart is one rendered figure: the SVG plot plus the pieces the
// accessibility pass requires — a legend whenever two or more series
// share the plot, and a table view carrying the exact numbers (also
// the relief for palette slots that sit under 3:1 contrast).
type chart struct {
	Title   string
	SVG     string
	Legend  []series
	Caption string
	Head    []string
	Rows    [][]string
}

// pageCSS holds both validated palettes: the light categorical slots
// against surface #fcfcfb and the same hues re-stepped for the dark
// surface #1a1a19 (dark mode is selected, not an automatic flip). All
// text wears ink tokens; series colors appear only on marks.
const pageCSS = `:root{
  --surface:#fcfcfb; --ink:#1c1b1a; --ink-muted:#6f6d66; --grid:#e5e3dc;
  --s1:#2a78d6; --s2:#eb6834; --s3:#1baf7a;
}
@media (prefers-color-scheme: dark){
  :root{
    --surface:#1a1a19; --ink:#f1efe9; --ink-muted:#a3a19a; --grid:#33322f;
    --s1:#3987e5; --s2:#d95926; --s3:#199e70;
  }
}
body{background:var(--surface);color:var(--ink);
  font:14px/1.5 system-ui,-apple-system,"Segoe UI",sans-serif;
  max-width:780px;margin:2rem auto;padding:0 1rem;}
h1{font-size:1.4rem;margin-bottom:.2rem}
h2{font-size:1.1rem;margin-top:2.2rem;border-bottom:1px solid var(--grid);padding-bottom:.3rem}
h3{font-size:.95rem;margin:1.4rem 0 .4rem}
p.sub,figcaption,p.caption{color:var(--ink-muted);font-size:.85rem}
svg{width:100%;height:auto;display:block}
svg .tick{fill:var(--ink-muted);font-size:10px}
table{border-collapse:collapse;width:100%;font-size:.85rem;margin:.6rem 0}
th{text-align:left;color:var(--ink-muted);font-weight:600}
th,td{padding:.25rem .5rem;border-bottom:1px solid var(--grid)}
td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}
.legend{display:flex;gap:1rem;flex-wrap:wrap;font-size:.85rem;margin:.3rem 0}
.legend .chip{display:inline-block;width:10px;height:10px;border-radius:3px;margin-right:.35rem;vertical-align:-1px}
details>summary{cursor:pointer;color:var(--ink-muted);font-size:.85rem}
`

func esc(s string) string { return html.EscapeString(s) }

// writeChart emits one figure: heading, legend (only with ≥2 series —
// a single series is named by the title), the SVG, a collapsible table
// view, and the caption.
func writeChart(sb *strings.Builder, c chart) {
	sb.WriteString("<figure>\n<h3>" + esc(c.Title) + "</h3>\n")
	if len(c.Legend) >= 2 {
		sb.WriteString(`<div class="legend">`)
		for _, s := range c.Legend {
			fmt.Fprintf(sb, `<span><span class="chip" style="background:var(--s%d)"></span>%s</span>`,
				s.Slot, esc(s.Name))
		}
		sb.WriteString("</div>\n")
	}
	sb.WriteString(c.SVG + "\n")
	if len(c.Rows) > 0 {
		sb.WriteString("<details><summary>Table view</summary>\n<table>\n<tr>")
		for i, h := range c.Head {
			cls := ` class="num"`
			if i == 0 {
				cls = ""
			}
			sb.WriteString("<th" + cls + ">" + esc(h) + "</th>")
		}
		sb.WriteString("</tr>\n")
		for _, row := range c.Rows {
			sb.WriteString("<tr>")
			for i, cell := range row {
				cls := ` class="num"`
				if i == 0 {
					cls = ""
				}
				sb.WriteString("<td" + cls + ">" + esc(cell) + "</td>")
			}
			sb.WriteString("</tr>\n")
		}
		sb.WriteString("</table>\n</details>\n")
	}
	if c.Caption != "" {
		sb.WriteString("<figcaption>" + esc(c.Caption) + "</figcaption>\n")
	}
	sb.WriteString("</figure>\n")
}

// derivedAt reads one derived-telemetry key from a baseline's total
// row, NaN when that schema era had not grown the key yet.
func derivedAt(f *File, key string) float64 {
	if v, ok := f.Perf.Total.Derived[key]; ok {
		return v
	}
	return math.NaN()
}

func labels(files []*File) []string {
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.Label
	}
	return out
}

// trendChart builds a one-measure bar chart over the baseline sequence
// plus its table view.
func trendChart(files []*File, title, unit, caption string, at func(*File) float64) chart {
	s := series{Name: title, Slot: 1, Values: make([]float64, len(files))}
	rows := make([][]string, len(files))
	for i, f := range files {
		s.Values[i] = at(f)
		rows[i] = []string{f.Label, fmtNum(s.Values[i])}
	}
	return chart{
		Title:   title,
		SVG:     barChartSVG(title, unit, labels(files), []series{s}),
		Caption: caption,
		Head:    []string{"baseline", unit},
		Rows:    rows,
	}
}

// multiTrendChart builds a line chart of up to three derived keys over
// the baseline sequence; extra table columns may carry keys that are
// tabulated but not plotted (the palette holds three series).
func multiTrendChart(files []*File, title, unit, caption string, plotted []string, tabulated []string) chart {
	ss := make([]series, len(plotted))
	for j, key := range plotted {
		ss[j] = series{Name: key, Slot: j + 1, Values: make([]float64, len(files))}
		for i, f := range files {
			ss[j].Values[i] = derivedAt(f, key)
		}
	}
	head := append([]string{"baseline"}, plotted...)
	head = append(head, tabulated...)
	rows := make([][]string, len(files))
	for i, f := range files {
		row := []string{f.Label}
		for _, key := range plotted {
			row = append(row, fmtNum(derivedAt(f, key)))
		}
		for _, key := range tabulated {
			row = append(row, fmtNum(derivedAt(f, key)))
		}
		rows[i] = row
	}
	return chart{
		Title:   title,
		SVG:     lineChartSVG(title, unit, labels(files), ss),
		Legend:  ss,
		Caption: caption,
		Head:    head,
		Rows:    rows,
	}
}

// crossoverChart plots the paper's §6.4.1 scheme-crossover model: the
// minimum mask density δ*(W) = (1+1/W)/3 above which the compact
// schemes (CSS/CMS) beat SSS on local computation, per block size.
func crossoverChart() chart {
	ws := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	xs := make([]string, len(ws))
	s := series{Name: "δ*(W) = (1+1/W)/3", Slot: 1, Values: make([]float64, len(ws))}
	rows := make([][]string, len(ws))
	for i, w := range ws {
		xs[i] = strconv.Itoa(w)
		s.Values[i] = (1 + 1/float64(w)) / 3
		rows[i] = []string{xs[i], fmtNum(s.Values[i])}
	}
	return chart{
		Title: "Scheme crossover: minimum density where CSS/CMS beat SSS",
		SVG:   lineChartSVG("scheme crossover model", "density", xs, []series{s}),
		Caption: "Model from the paper's §6.4.1 cost comparison: above the curve the compact schemes win on local computation; " +
			"x is the block size W, y the mask density δ*. The packbench \"model\" experiment measures this grid empirically.",
		Head: []string{"W", "δ* (min density)"},
		Rows: rows,
	}
}

// planChart builds the plan-cache amortization figure over the
// baselines that carry a plan_repeat measurement (schema v5+).
func planChart(files []*File) (chart, bool) {
	var (
		xs   []string
		wall = series{Name: "wall speedup", Slot: 1}
		virt = series{Name: "virtual speedup", Slot: 2}
		rows [][]string
	)
	for _, f := range files {
		pr := f.Perf.PlanRepeat
		if pr == nil {
			continue
		}
		xs = append(xs, f.Label)
		wall.Values = append(wall.Values, pr.WallSpeedup)
		virt.Values = append(virt.Values, pr.VirtualSpeedup)
		rows = append(rows, []string{
			f.Label, strconv.Itoa(pr.Calls), fmtNum(pr.HitRate),
			fmtNum(pr.UnplannedWallMS), fmtNum(pr.PlannedWallMS),
			fmtNum(pr.WallSpeedup), fmtNum(pr.VirtualSpeedup),
		})
	}
	if len(xs) == 0 {
		return chart{}, false
	}
	ss := []series{wall, virt}
	return chart{
		Title:   "Plan-cache amortization (plan_repeat)",
		SVG:     barChartSVG("plan cache speedup", "×", xs, ss),
		Legend:  ss,
		Caption: "Per-call speedup of repeat PACK traffic once the PackPlan compilation layer answers from its cache; hit rate is the cache's share of lookups.",
		Head:    []string{"baseline", "calls", "hit rate", "unplanned ms/call", "planned ms/call", "wall ×", "virtual ×"},
		Rows:    rows,
	}, true
}

// realWorldChart plots the measured-vs-modeled speedup curve of the
// newest baseline carrying a real_world object (schema v6+).
func realWorldChart(files []*File) (chart, bool) {
	var src *File
	for _, f := range files {
		if f.Perf.RealWorld != nil {
			src = f
		}
	}
	if src == nil {
		return chart{}, false
	}
	rw := src.Perf.RealWorld
	xs := make([]string, len(rw.Points))
	model := series{Name: "model speedup", Slot: 1, Values: make([]float64, len(rw.Points))}
	meas := series{Name: "measured speedup", Slot: 2, Values: make([]float64, len(rw.Points))}
	derivedKeys := map[string]bool{}
	for _, pt := range rw.Points {
		for k := range pt.Derived {
			derivedKeys[k] = true
		}
	}
	keys := make([]string, 0, len(derivedKeys))
	for k := range derivedKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	head := []string{"P", "model ms", "model ×", "real ms", "real ×"}
	head = append(head, keys...)
	rows := make([][]string, len(rw.Points))
	for i, pt := range rw.Points {
		xs[i] = strconv.Itoa(pt.P)
		model.Values[i] = pt.ModelSpeedup
		meas.Values[i] = pt.RealSpeedup
		row := []string{xs[i], fmtNum(pt.ModelMS), fmtNum(pt.ModelSpeedup), fmtNum(pt.RealMS), fmtNum(pt.RealSpeedup)}
		for _, k := range keys {
			if v, ok := pt.Derived[k]; ok {
				row = append(row, fmtNum(v))
			} else {
				row = append(row, "—")
			}
		}
		rows[i] = row
	}
	ss := []series{model, meas}
	return chart{
		Title:  fmt.Sprintf("Real-backend speedup (%s): N=%d, W=%d, density %s", src.Label, rw.N, rw.W, fmtNum(rw.Density)),
		SVG:    lineChartSVG("real backend speedup", "×", xs, ss),
		Legend: ss,
		Caption: fmt.Sprintf("Measured wall-clock speedup on the shared-memory backend against the emulator's cost-model prediction; "+
			"%d reps × %d samples on a %d-CPU host. Host figures — never bit-for-bit comparable.", rw.Reps, rw.Samples, rw.HostCPUs),
		Head: head,
		Rows: rows,
	}, true
}

// serviceChart builds the serving-latency trend over the baselines
// that carry a service soak object (schema v7+): the deterministic
// virtual-time p50/p99/p999 of the open-loop traffic model, plus a
// table of the soak configuration and per-class service times of the
// newest such baseline.
func serviceChart(files []*File) (chart, bool) {
	var (
		xs   []string
		p50  = series{Name: "p50 µs", Slot: 1}
		p99  = series{Name: "p99 µs", Slot: 2}
		p999 = series{Name: "p999 µs", Slot: 3}
		rows [][]string
		last *File
	)
	for _, f := range files {
		sv := f.Perf.Service
		if sv == nil {
			continue
		}
		last = f
		xs = append(xs, f.Label)
		p50.Values = append(p50.Values, float64(sv.P50US))
		p99.Values = append(p99.Values, float64(sv.P99US))
		p999.Values = append(p999.Values, float64(sv.P999US))
		rows = append(rows, []string{
			f.Label, strconv.Itoa(sv.Requests), strconv.Itoa(sv.Overloaded),
			fmtNum(sv.RatePerSec), fmtNum(sv.ThroughputRPS),
			strconv.FormatInt(sv.P50US, 10), strconv.FormatInt(sv.P99US, 10),
			strconv.FormatInt(sv.P999US, 10),
		})
	}
	if len(xs) == 0 {
		return chart{}, false
	}
	sv := last.Perf.Service
	for _, c := range sv.Classes {
		rows = append(rows, []string{
			last.Label + " · " + c.Name, strconv.Itoa(c.Arrivals), "—", "—", "—",
			"—", "—", strconv.FormatUint(c.ServiceUS, 10),
		})
	}
	ss := []series{p50, p99, p999}
	return chart{
		Title:  fmt.Sprintf("Serving latency (service soak, %d workers, queue %d)", sv.Workers, sv.Queue),
		SVG:    lineChartSVG("serving latency trend", "µs", xs, ss),
		Legend: ss,
		Caption: "Virtual-time request latency of the open-loop packserve soak — deterministic for a seed, so cmd/packdiff " +
			"compares it exactly; per-class rows tabulate the newest baseline's warm service time in the last column.",
		Head: []string{"baseline / class", "requests", "overloaded", "offered rps", "throughput rps", "p50 µs", "p99 µs", "p999 µs"},
		Rows: rows,
	}, true
}

// overviewTable summarizes every loaded baseline on one row each.
func overviewTable(sb *strings.Builder, files []*File) {
	sb.WriteString("<table>\n<tr><th>baseline</th><th>schema</th><th>sched</th>" +
		`<th class="num">samples</th><th class="num">experiments</th><th class="num">machine runs</th>` +
		`<th class="num">cache hits</th><th class="num">wall ms</th><th class="num">virtual ms</th></tr>` + "\n")
	for _, f := range files {
		sched := f.Perf.Sched
		if sched == "" {
			sched = "—"
		}
		samples := "—"
		if f.Perf.Samples > 0 {
			samples = strconv.Itoa(f.Perf.Samples)
		}
		nExp := 0
		for _, e := range f.Perf.Experiments {
			if !strings.HasSuffix(e.ID, "/prefetch") {
				nExp++
			}
		}
		fmt.Fprintf(sb, `<tr><td>%s</td><td>v%d</td><td>%s</td><td class="num">%s</td><td class="num">%d</td>`+
			`<td class="num">%d</td><td class="num">%d</td><td class="num">%s</td><td class="num">%s</td></tr>`+"\n",
			esc(f.Label), f.Schema, esc(sched), samples, nExp,
			f.Perf.Total.MachineRuns, f.Perf.Total.CacheHits,
			fmtNum(f.Perf.Total.WallMS), fmtNum(f.Perf.Total.VirtualMS))
	}
	sb.WriteString("</table>\n")
}

// WriteHTML renders the loaded baselines, in the given order, into one
// self-contained HTML dashboard. Output is deterministic for the same
// inputs: no timestamps, every map walked in sorted order.
func WriteHTML(w io.Writer, title string, files []*File) error {
	if len(files) == 0 {
		return fmt.Errorf("report: no baselines to render")
	}
	var sb strings.Builder
	sb.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	sb.WriteString(`<meta name="viewport" content="width=device-width, initial-scale=1">` + "\n")
	sb.WriteString("<title>" + esc(title) + "</title>\n<style>\n" + pageCSS + "</style>\n</head>\n<body>\n")
	sb.WriteString("<h1>" + esc(title) + "</h1>\n")
	fmt.Fprintf(&sb, `<p class="sub">%d baselines, %s → %s · schemas packbench-perf/v%d → v%d</p>`+"\n",
		len(files), esc(files[0].Label), esc(files[len(files)-1].Label), files[0].Schema, files[len(files)-1].Schema)

	sb.WriteString("<h2>Run overview</h2>\n")
	overviewTable(&sb, files)

	sb.WriteString("<h2>Suite cost trends</h2>\n")
	writeChart(&sb, trendChart(files, "Total wall-clock per suite run", "ms",
		"Host wall time of the full experiment suite; moves with hardware, sampling, and parallelism — read alongside the env row, not as a regression gate by itself.",
		func(f *File) float64 { return f.Perf.Total.WallMS }))
	writeChart(&sb, trendChart(files, "Total virtual time (cost-model checksum)", "ms",
		"Sum of emulated machine time over all runs — host-independent and bit-for-bit reproducible; cmd/packdiff compares it exactly.",
		func(f *File) float64 { return f.Perf.Total.VirtualMS }))

	sb.WriteString("<h2>Derived telemetry trends</h2>\n")
	writeChart(&sb, multiTrendChart(files, "Communication and idle fractions", "fraction",
		"Run-weighted means over each suite's machine runs (schema v3+; earlier baselines show a gap).",
		[]string{"comm_frac", "idle_frac"}, []string{"imbalance"}))
	writeChart(&sb, multiTrendChart(files, "Communication share by phase", "fraction",
		"How the communication volume splits across the PACK phases; the unplotted default-phase share is in the table view.",
		[]string{"comm_share/m2m", "comm_share/prs", "comm_share/redist"}, []string{"comm_share/default"}))

	if c, ok := planChart(files); ok {
		sb.WriteString("<h2>Plan-cache amortization</h2>\n")
		writeChart(&sb, c)
	}

	sb.WriteString("<h2>Scheme crossover model</h2>\n")
	writeChart(&sb, crossoverChart())

	if c, ok := realWorldChart(files); ok {
		sb.WriteString("<h2>Real-backend speedup</h2>\n")
		writeChart(&sb, c)
	}

	if c, ok := serviceChart(files); ok {
		sb.WriteString("<h2>Serving traffic</h2>\n")
		writeChart(&sb, c)
	}

	sb.WriteString("<p class=\"caption\">Generated by packreport from the baselines above; deterministic for the same inputs.</p>\n")
	sb.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
