package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func loadFixtures(t *testing.T) []*File {
	t.Helper()
	files, err := LoadAll([]string{
		filepath.Join("testdata", "BENCH_v1.json"),
		filepath.Join("testdata", "BENCH_v4.json"),
		filepath.Join("testdata", "BENCH_v6.json"),
		filepath.Join("testdata", "BENCH_v7.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestGoldenDashboard pins the full rendered page — every chart path
// the fixtures can reach (v1 with bare rows, v4 with derived telemetry
// and wall stats, v6 with plan_repeat and real_world, v7 with the
// service soak object) — against a
// golden file, which is also the determinism proof: any nondeterminism
// in map iteration or float formatting shows up as golden drift.
func TestGoldenDashboard(t *testing.T) {
	files := loadFixtures(t)
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "golden dashboard", files); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "dashboard.golden.html")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("dashboard drifted from golden (run with -update if intended).\ngot %d bytes, want %d", buf.Len(), len(want))
	}

	var again bytes.Buffer
	if err := WriteHTML(&again, "golden dashboard", files); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same inputs differ — the dashboard must be deterministic")
	}
}

// TestGoldenDashboardSections checks the golden page carries every
// section the fixtures unlock, so a silently-skipped section cannot
// hide behind an -update run.
func TestGoldenDashboardSections(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "golden dashboard", loadFixtures(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<h2>Run overview</h2>",
		"<h2>Suite cost trends</h2>",
		"<h2>Derived telemetry trends</h2>",
		"<h2>Plan-cache amortization</h2>",
		"<h2>Scheme crossover model</h2>",
		"<h2>Real-backend speedup</h2>",
		"<h2>Serving traffic</h2>",
		"prefers-color-scheme: dark", // dark palette is selected, not flipped
		"Table view",                 // every chart ships its numbers
		"var(--s3)",                  // three-series charts use the full slot order
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// v1 predates derived telemetry: its trend cells must render as a
	// gap ("—"), never as a zero measurement.
	if !strings.Contains(out, "<td>v1</td>") && !strings.Contains(out, ">v1<") {
		t.Error("v1 fixture missing from overview")
	}
	if !strings.Contains(out, "—") {
		t.Error("missing-measure gap marker absent for the v1 baseline")
	}
}

// TestRendersRepoBaselines loads every committed BENCH_*.json at the
// repo root — the real schema-era sequence v1..v7 — and renders them,
// proving the loader is tolerant of each vintage as shipped, not just
// of the hand-written fixtures.
func TestRendersRepoBaselines(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected committed baselines at the repo root, found %v", paths)
	}
	sort.Strings(paths)
	files, err := LoadAll(paths)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "repo baselines", files); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, f := range files {
		if !strings.Contains(out, ">"+f.Label+"<") {
			t.Errorf("baseline %s missing from dashboard", f.Label)
		}
	}
	if strings.Contains(out, "Real-backend speedup") {
		t.Error("no committed baseline carries real_world; the section should be absent")
	}
	if !strings.Contains(out, "Serving traffic") {
		t.Error("the v7 baseline carries a service object; the serving-traffic section should render")
	}
}

// TestLoadRejectsForeignJSON: a JSON file that is not a packbench perf
// report must fail loudly, not render an empty dashboard row.
func TestLoadRejectsForeignJSON(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "other.json")
	if err := os.WriteFile(p, []byte(`{"schema":"something-else/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(p); err == nil {
		t.Fatal("foreign schema accepted")
	}
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestLabels pins the path → axis-label derivation.
func TestLabels(t *testing.T) {
	for path, want := range map[string]string{
		"BENCH_pr4.json":      "pr4",
		"/a/b/BENCH_pr8.json": "pr8",
		"custom.json":         "custom",
	} {
		if got := labelFor(path); got != want {
			t.Errorf("labelFor(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestFmtNum pins the adaptive formatting the axes and tables share.
func TestFmtNum(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.5, "0.5"},
		{0.9917, "0.992"},
		{1.715, "1.72"},
		{42.25, "42.25"},
		{8143.0625, "8143"},
	} {
		if got := fmtNum(tc.v); got != tc.want {
			t.Errorf("fmtNum(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
