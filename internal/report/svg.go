package report

// Static SVG chart primitives for the dashboard. All geometry is
// computed here and emitted as plain SVG — the page ships no script;
// per-mark hover detail rides on native <title> tooltips. Fills and
// strokes reference CSS custom properties (var(--s1)…var(--s3),
// var(--grid), var(--ink-muted)) so one SVG serves both the light and
// dark palettes, each validated separately against its surface.

import (
	"fmt"
	"html"
	"math"
	"strconv"
	"strings"
)

// series is one plotted measure: Slot picks the categorical palette
// slot (1..3, fixed order, never cycled) and NaN values mean "this
// baseline predates the measure" — the mark is omitted, not zeroed.
type series struct {
	Name   string
	Slot   int
	Values []float64
}

const (
	svgW = 640
	svgH = 240
	padL = 62
	padR = 10
	padT = 12
	padB = 30

	plotW = svgW - padL - padR
	plotH = svgH - padT - padB
)

// fmtNum renders a value with precision adapted to its magnitude, so
// axis ticks and table cells stay readable across ms totals in the
// tens of thousands and fractions in the hundredths.
func fmtNum(v float64) string {
	if math.IsNaN(v) {
		return "—"
	}
	av := math.Abs(v)
	var s string
	switch {
	case av >= 100:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case av >= 1:
		s = strconv.FormatFloat(v, 'f', 2, 64)
	default:
		s = strconv.FormatFloat(v, 'f', 3, 64)
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// niceTicks returns ascending y ticks from 0 past max with a 1/2/5
// step, so gridlines land on round numbers.
func niceTicks(max float64) []float64 {
	if max <= 0 {
		max = 1
	}
	raw := max / 4
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag <= 1:
		step = mag
	case raw/mag <= 2:
		step = 2 * mag
	case raw/mag <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	ticks := []float64{0}
	for t := step; ; t += step {
		ticks = append(ticks, t)
		if t >= max {
			break
		}
	}
	return ticks
}

// maxValue scans every finite value across the series.
func maxValue(ss []series) float64 {
	max := 0.0
	for _, s := range ss {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > max {
				max = v
			}
		}
	}
	return max
}

func coord(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// frame emits the shared chart scaffolding — horizontal gridlines with
// tick labels, the baseline axis, and the categorical x labels — and
// returns the resolved y scale.
func frame(sb *strings.Builder, labels []string, ticks []float64) (yOf func(float64) float64) {
	top := ticks[len(ticks)-1]
	yOf = func(v float64) float64 {
		return padT + plotH*(1-v/top)
	}
	for _, t := range ticks {
		y := coord(yOf(t))
		sb.WriteString(`<line x1="` + coord(padL) + `" y1="` + y +
			`" x2="` + coord(padL+plotW) + `" y2="` + y +
			`" stroke="var(--grid)" stroke-width="1"/>`)
		sb.WriteString(`<text x="` + coord(padL-6) + `" y="` + y +
			`" dy="0.32em" text-anchor="end" class="tick">` + html.EscapeString(fmtNum(t)) + `</text>`)
	}
	band := float64(plotW) / float64(len(labels))
	for i, l := range labels {
		x := coord(padL + band*(float64(i)+0.5))
		sb.WriteString(`<text x="` + x + `" y="` + coord(svgH-8) +
			`" text-anchor="middle" class="tick">` + html.EscapeString(l) + `</text>`)
	}
	return yOf
}

func svgOpen(sb *strings.Builder, alt string) {
	fmt.Fprintf(sb, `<svg viewBox="0 0 %d %d" role="img" aria-label="%s">`, svgW, svgH, html.EscapeString(alt))
}

// barChartSVG renders grouped vertical bars: one band per label, one
// bar per series inside it, 2px gaps between group members, 4px-radius
// data ends anchored to the baseline.
func barChartSVG(alt, unit string, labels []string, ss []series) string {
	var sb strings.Builder
	svgOpen(&sb, alt)
	yOf := frame(&sb, labels, niceTicks(maxValue(ss)))
	band := float64(plotW) / float64(len(labels))
	k := float64(len(ss))
	barW := (band*0.6 - 2*(k-1)) / k
	if barW > 36 {
		barW = 36
	}
	groupW := barW*k + 2*(k-1)
	for i, label := range labels {
		x0 := padL + band*(float64(i)+0.5) - groupW/2
		for j, s := range ss {
			v := s.Values[i]
			if math.IsNaN(v) {
				continue
			}
			y := yOf(v)
			h := float64(padT+plotH) - y
			if h < 1 {
				h = 1
				y = float64(padT+plotH) - 1
			}
			x := x0 + float64(j)*(barW+2)
			fmt.Fprintf(&sb, `<rect x="%s" y="%s" width="%s" height="%s" rx="4" fill="var(--s%d)">`,
				coord(x), coord(y), coord(barW), coord(h), s.Slot)
			fmt.Fprintf(&sb, `<title>%s · %s: %s %s</title></rect>`,
				html.EscapeString(label), html.EscapeString(s.Name), fmtNum(v), unit)
		}
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

// lineChartSVG renders one 2px polyline per series with ≥8px markers
// ringed by the surface color; NaN values break the line — a gap in
// the record, not a zero.
func lineChartSVG(alt, unit string, labels []string, ss []series) string {
	var sb strings.Builder
	svgOpen(&sb, alt)
	yOf := frame(&sb, labels, niceTicks(maxValue(ss)))
	band := float64(plotW) / float64(len(labels))
	xOf := func(i int) float64 { return padL + band*(float64(i)+0.5) }
	for _, s := range ss {
		var pts []string
		flush := func() {
			if len(pts) >= 2 {
				fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="var(--s%d)" stroke-width="2"/>`,
					strings.Join(pts, " "), s.Slot)
			}
			pts = pts[:0]
		}
		for i, v := range s.Values {
			if math.IsNaN(v) {
				flush()
				continue
			}
			pts = append(pts, coord(xOf(i))+","+coord(yOf(v)))
		}
		flush()
	}
	for _, s := range ss {
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			fmt.Fprintf(&sb, `<circle cx="%s" cy="%s" r="4" fill="var(--s%d)" stroke="var(--surface)" stroke-width="2">`,
				coord(xOf(i)), coord(yOf(v)), s.Slot)
			fmt.Fprintf(&sb, `<title>%s · %s: %s %s</title></circle>`,
				html.EscapeString(labels[i]), html.EscapeString(s.Name), fmtNum(v), unit)
		}
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}
