// Package report renders packbench perf baselines (BENCH_*.json,
// schema packbench-perf/v1 through v7) into one self-contained static
// HTML dashboard: wall-clock and virtual-time trends across baselines,
// derived-telemetry trends, plan-cache amortization, the paper's
// scheme-crossover model, the real-backend speedup curve, and the
// serving-latency trend when a baseline carries the v7 service soak
// object. The output is deterministic byte-for-byte for the same
// inputs (no timestamps, sorted iteration), which is what makes it
// golden-testable.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"packunpack/internal/bench"
)

// File is one loaded baseline: the parsed report plus the short label
// the dashboard uses on axes ("pr4" for BENCH_pr4.json).
type File struct {
	Label  string
	Path   string
	Schema int // schema version number (1..), 0 if unparseable suffix
	Perf   bench.PerfReport
}

// Load reads one BENCH_*.json baseline. Every schema era v1–v7 decodes
// into the current bench.PerfReport superset: fields a vintage lacks
// read as zero values, which the renderer treats as "not measured"
// rather than zero measurements.
func Load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var perf bench.PerfReport
	if err := json.Unmarshal(raw, &perf); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	const prefix = "packbench-perf/v"
	if !strings.HasPrefix(perf.Schema, prefix) {
		return nil, fmt.Errorf("report: %s: schema %q is not a packbench perf report", path, perf.Schema)
	}
	v, err := strconv.Atoi(strings.TrimPrefix(perf.Schema, prefix))
	if err != nil || v < 1 {
		return nil, fmt.Errorf("report: %s: malformed schema version %q", path, perf.Schema)
	}
	return &File{Label: labelFor(path), Path: path, Schema: v, Perf: perf}, nil
}

// LoadAll loads the given baselines in order. Order is meaningful: the
// trend charts read left-to-right as the sequence of PRs.
func LoadAll(paths []string) ([]*File, error) {
	files := make([]*File, 0, len(paths))
	for _, p := range paths {
		f, err := Load(p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// labelFor derives the short axis label from a baseline path:
// "BENCH_pr4.json" → "pr4"; anything else keeps its stem.
func labelFor(path string) string {
	name := strings.TrimSuffix(filepath.Base(path), ".json")
	return strings.TrimPrefix(name, "BENCH_")
}
