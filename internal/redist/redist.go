// Package redist implements array redistribution between block-cyclic
// layouts and the two preliminary redistribution schemes of Section 6.3
// of the paper, which reduce the ranking overhead of PACK when the
// input array is distributed cyclically:
//
//   - RedistSelected (the paper's "Redistribution of Selected Data",
//     Red.1 in Table II): only the elements whose mask value is true
//     are sent to their owners under the target block distribution,
//     each tagged with its combined global index; the receivers
//     rebuild a temporary array and mask.
//   - RedistWhole (the paper's "Redistribution of Whole Arrays",
//     Red.2): the input array and the mask array are both fully
//     redistributed. Messages carry no indices, so the scheme needs
//     two phases of communication detection — one for the elements to
//     be sent, one for those to be received (reference [7]).
//
// Both are followed by PACK with the compact message scheme on the
// block-distributed temporaries, which is where CMS performs best.
//
// # Communication detection cost model
//
// The paper's Table II shows redistribution costs dominated by
// communication detection: the general block-cyclic redistribution
// runtime of reference [7] builds per-dimension communication pattern
// tables whose size tracks the number of global blocks N_i/W_i along
// each dimension — enormous for a cyclic distribution (N_i blocks) and
// tiny for a block distribution (P_i blocks). This emulation charges
// DetectOpsPerBlock elementary operations per global source block per
// dimension for every detection phase, which reproduces the paper's
// shape: in 1-D, detection swamps the savings and neither
// redistribution scheme beats plain SSS on the cyclic input; in 2-D,
// where the same global size spreads over two dimensions (N_0 + N_1
// blocks instead of N blocks), the pipelines win.
package redist

import (
	"fmt"
	"sort"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/pack"
	"packunpack/internal/transport"
)

// PhaseRedist is the sim phase under which redistribution
// communication is booked.
const PhaseRedist = "redist"

// DetectOpsPerBlock is the modelled cost, in elementary operations, of
// processing one global source block of one dimension during a
// communication detection phase (building the send or receive pattern
// tables of the reference [7] runtime). Calibrated so that the
// Table II shape of the paper holds; see the package comment.
const DetectOpsPerBlock = 12

// detectionCharge books one communication detection phase against the
// calling processor: pattern-table construction over all global source
// blocks of every dimension.
func detectionCharge(p transport.Endpoint, src *dist.Layout) {
	blocks := 0
	for _, d := range src.Dims {
		blocks += d.N / d.W
	}
	p.Charge(blocks * DetectOpsPerBlock)
}

// BlockLayout returns the layout with the same global shape and
// processor grid as l but block distribution (W_i = L_i) along every
// dimension — the redistribution target that minimizes the ranking
// overhead (one tile per dimension).
func BlockLayout(l *dist.Layout) *dist.Layout {
	dims := make([]dist.Dim, l.Rank())
	for i, d := range l.Dims {
		dims[i] = dist.Dim{N: d.N, P: d.P, W: d.L()}
	}
	return dist.MustLayout(dims...)
}

// sameShape verifies that two layouts describe the same global array on
// the same processor grid.
func sameShape(a, b *dist.Layout) error {
	if a.Rank() != b.Rank() {
		return fmt.Errorf("redist: rank mismatch %d vs %d", a.Rank(), b.Rank())
	}
	for i := range a.Dims {
		if a.Dims[i].N != b.Dims[i].N {
			return fmt.Errorf("redist: dimension %d extent mismatch %d vs %d", i, a.Dims[i].N, b.Dims[i].N)
		}
		if a.Dims[i].P != b.Dims[i].P {
			return fmt.Errorf("redist: dimension %d grid mismatch %d vs %d", i, a.Dims[i].P, b.Dims[i].P)
		}
	}
	return nil
}

// globalWalk iterates a processor's local elements of a layout in
// local row-major order, yielding for each the flat global position.
// It mirrors mask.FillLocal's odometer walk.
func globalWalk(l *dist.Layout, rank int, visit func(off, globalPos int)) {
	d := l.Rank()
	coords := l.GridCoords(rank)
	locals := make([]int, d)
	global := make([]int, d)
	strides := make([]int, d)
	s := 1
	for i := 0; i < d; i++ {
		strides[i] = s
		s *= l.Dims[i].N
		global[i] = l.Dims[i].ToGlobal(coords[i], 0)
	}
	pos := 0
	for i := 0; i < d; i++ {
		pos += global[i] * strides[i]
	}
	n := l.LocalSize()
	for off := 0; off < n; off++ {
		visit(off, pos)
		for i := 0; i < d; i++ {
			locals[i]++
			if locals[i] < l.Dims[i].L() {
				old := global[i]
				if locals[i]%l.Dims[i].W == 0 {
					global[i] = l.Dims[i].ToGlobal(coords[i], locals[i])
				} else {
					global[i]++
				}
				pos += (global[i] - old) * strides[i]
				break
			}
			locals[i] = 0
			old := global[i]
			global[i] = l.Dims[i].ToGlobal(coords[i], 0)
			pos += (global[i] - old) * strides[i]
		}
	}
}

// incoming records where one received element lands: its offset in the
// sender's local scan order determines the order within the message,
// dstOff where it is stored.
type incoming struct{ srcOff, dstOff int }

// Plan is the result of communication detection for a whole-array
// redistribution from src to dst, reusable across conformable arrays
// (the Red.2 pipeline applies one plan to both the input array and the
// mask array).
type Plan struct {
	src, dst *dist.Layout
	rank     int
	// sendDst[i] is the destination rank of the i-th local element in
	// local scan order.
	sendDst []int
	// sendLen[r] is the number of elements destined to rank r.
	sendLen []int
	// place[r] lists the landing spots of the elements arriving from
	// rank r, in that sender's scan order.
	place [][]incoming
}

// NewPlan performs the two communication detection phases of the
// whole-array redistribution scheme: one for the elements to be sent
// and one for those to be received (reference [7]). The returned plan
// can move any number of conformable arrays.
func NewPlan(p transport.Endpoint, src, dst *dist.Layout) (*Plan, error) {
	if err := sameShape(src, dst); err != nil {
		return nil, err
	}
	n := p.NProcs()
	pl := &Plan{src: src, dst: dst, rank: p.Rank(), sendLen: make([]int, n)}

	// Phase 1: where does each of my source elements go?
	detectionCharge(p, src)
	pl.sendDst = make([]int, src.LocalSize())
	globalWalk(src, p.Rank(), func(off, pos int) {
		rank, _ := dst.GlobalPosOwner(pos)
		pl.sendDst[off] = rank
		pl.sendLen[rank]++
	})
	p.Charge(src.LocalSize()) // send-set enumeration

	// Phase 2: which of my destination elements come from whom, and
	// in what order within each source's message? The message order is
	// the sender's local scan order, i.e. ascending source offset.
	detectionCharge(p, src)
	pl.place = make([][]incoming, n)
	globalWalk(dst, p.Rank(), func(off, pos int) {
		rank, srcOff := src.GlobalPosOwner(pos)
		pl.place[rank] = append(pl.place[rank], incoming{srcOff: srcOff, dstOff: off})
	})
	for _, list := range pl.place {
		sort.Slice(list, func(i, j int) bool { return list[i].srcOff < list[j].srcOff })
	}
	p.Charge(2 * dst.LocalSize()) // receive-set enumeration and ordering
	return pl, nil
}

// Apply moves one array according to the plan: index-free messages
// over the linear permutation schedule. It returns the local array
// under the plan's destination layout.
func Apply[T any](p transport.Endpoint, pl *Plan, a []T) ([]T, error) {
	if len(a) != pl.src.LocalSize() {
		return nil, fmt.Errorf("redist: local array has %d elements, source layout needs %d", len(a), pl.src.LocalSize())
	}
	if p.Rank() != pl.rank {
		return nil, fmt.Errorf("redist: plan built for rank %d applied on rank %d", pl.rank, p.Rank())
	}
	n := p.NProcs()
	send := make([][]T, n)
	for r, ln := range pl.sendLen {
		if ln > 0 {
			send[r] = make([]T, 0, ln)
		}
	}
	for off, dst := range pl.sendDst {
		send[dst] = append(send[dst], a[off])
	}
	p.Charge(len(a)) // message composition

	prev := p.SetPhase(PhaseRedist)
	recv := comm.AlltoallV(comm.World(p), send, 1)
	p.SetPhase(prev)

	out := make([]T, pl.dst.LocalSize())
	for srcRank, data := range recv {
		if len(data) != len(pl.place[srcRank]) {
			return nil, fmt.Errorf("redist: expected %d elements from %d, got %d", len(pl.place[srcRank]), srcRank, len(data))
		}
		for i, in := range pl.place[srcRank] {
			out[in.dstOff] = data[i]
		}
		p.Charge(len(data)) // message decomposition
	}
	return out, nil
}

// Redistribute moves a distributed array from layout src to layout dst
// (same global shape, same processor grid) using the whole-array
// scheme: a fresh two-phase communication detection followed by one
// Apply. Use NewPlan/Apply directly to amortize detection over several
// arrays.
func Redistribute[T any](p transport.Endpoint, src, dst *dist.Layout, a []T) ([]T, error) {
	pl, err := NewPlan(p, src, dst)
	if err != nil {
		return nil, err
	}
	return Apply(p, pl, a)
}

// indexed pairs a datum with its flat global position (the "combined
// global index" of Section 6.3 — d per-dimension indices folded into
// one word to minimize message size).
type indexed[T any] struct {
	Pos   int
	Datum T
}

// RedistributeSelected moves only the mask-selected elements of a to
// their owners under dst, rebuilding a temporary array and a temporary
// mask there (all-false initialized). It returns the calling
// processor's temporary local array and mask under dst.
//
// Only the send side needs communication detection (the messages carry
// the combined global indices), so the scheme pays one detection phase
// where the whole-array scheme pays two.
func RedistributeSelected[T any](p transport.Endpoint, src, dst *dist.Layout, a []T, m []bool) ([]T, []bool, error) {
	if err := sameShape(src, dst); err != nil {
		return nil, nil, err
	}
	if len(a) != src.LocalSize() || len(m) != src.LocalSize() {
		return nil, nil, fmt.Errorf("redist: local array %d / mask %d, source layout needs %d", len(a), len(m), src.LocalSize())
	}
	world := comm.World(p)
	n := p.NProcs()
	d := src.Rank()

	// Communication detection restricted to selected elements; the
	// message carries (combined global index, datum) pairs. Combining
	// the d per-dimension indices into one word costs about d
	// operations per selected element on the sender.
	detectionCharge(p, src)
	send := make([][]indexed[T], n)
	selected := 0
	globalWalk(src, p.Rank(), func(off, pos int) {
		if !m[off] {
			return
		}
		rank, _ := dst.GlobalPosOwner(pos)
		send[rank] = append(send[rank], indexed[T]{Pos: pos, Datum: a[off]})
		selected++
	})
	p.Charge(src.LocalSize() + (2+d)*selected) // mask scan + pair and index composition

	prev := p.SetPhase(PhaseRedist)
	recv := comm.AlltoallV(world, send, 2)
	p.SetPhase(prev)

	outA := make([]T, dst.LocalSize())
	outM := make([]bool, dst.LocalSize())
	p.Charge(dst.LocalSize()) // initialize the temporary mask to false
	for _, data := range recv {
		// Decompose the combined index (about d operations), store the
		// datum and set the mask.
		p.Charge((3 + d) * len(data))
		for _, it := range data {
			rank, off := dst.GlobalPosOwner(it.Pos)
			if rank != p.Rank() {
				return nil, nil, fmt.Errorf("redist: element for rank %d delivered to rank %d", rank, p.Rank())
			}
			outA[off] = it.Datum
			outM[off] = true
		}
	}
	return outA, outM, nil
}

// PackRedistSelected is the paper's Red.1 pipeline: redistribute the
// selected data to the block layout, then PACK with the compact message
// scheme. opt.Scheme is ignored (CMS is used, as in Table II).
func PackRedistSelected[T any](p transport.Endpoint, src *dist.Layout, a []T, m []bool, opt pack.Options) (*pack.Result[T], error) {
	dst := BlockLayout(src)
	ta, tm, err := RedistributeSelected(p, src, dst, a, m)
	if err != nil {
		return nil, err
	}
	opt.Scheme = pack.SchemeCMS
	return pack.Pack(p, dst, ta, tm, opt)
}

// PackRedistWhole is the paper's Red.2 pipeline: redistribute the whole
// input array and mask array to the block layout (one shared
// communication detection, two applications), then PACK with the
// compact message scheme. opt.Scheme is ignored (CMS is used).
func PackRedistWhole[T any](p transport.Endpoint, src *dist.Layout, a []T, m []bool, opt pack.Options) (*pack.Result[T], error) {
	dst := BlockLayout(src)
	pl, err := NewPlan(p, src, dst)
	if err != nil {
		return nil, err
	}
	ta, err := Apply(p, pl, a)
	if err != nil {
		return nil, err
	}
	tm, err := Apply(p, pl, m)
	if err != nil {
		return nil, err
	}
	opt.Scheme = pack.SchemeCMS
	return pack.Pack(p, dst, ta, tm, opt)
}
