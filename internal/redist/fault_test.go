package redist

import (
	"reflect"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/pack"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

var redistFaultSchedules = []*sim.FaultConfig{
	{Seed: 61, Drop: 0.12, Dup: 0.12, Reorder: 0.15, Delay: 0.1, Stall: 0.02},
	{Seed: 62, Drop: 0.3},
}

// TestRedistributeUnderFaults: a cyclic-to-block redistribution moves
// every element to its new owner exactly once even when the network
// drops, duplicates and reorders.
func TestRedistributeUnderFaults(t *testing.T) {
	src := dist.MustLayout(dist.Dim{N: 24, P: 4, W: 1})
	dst := BlockLayout(src)
	global := make([]int, 24)
	for i := range global {
		global[i] = 13*i + 2
	}
	locals := dist.Scatter(src, global)

	for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
		for _, f := range redistFaultSchedules {
			out := make([][]int, src.Procs())
			m := sim.MustNew(sim.Config{Procs: src.Procs(), Params: sim.CM5Params(), Sched: sched, Faults: f})
			if err := m.Run(func(p *sim.Proc) {
				b, err := Redistribute(p, src, dst, locals[p.Rank()])
				if err != nil {
					panic(err)
				}
				out[p.Rank()] = b
			}); err != nil {
				t.Fatalf("sched %v faults %v: %v", sched, f, err)
			}
			if got := dist.Gather(dst, out); !reflect.DeepEqual(got, global) {
				t.Errorf("sched %v faults %v: redistribution corrupted data", sched, f)
			}
		}
	}
}

// TestPackRedistUnderFaults: both preliminary-redistribution pipelines
// (Red.1 selected-only, Red.2 whole-array) match the sequential
// reference under injected faults.
func TestPackRedistUnderFaults(t *testing.T) {
	src := dist.MustLayout(dist.Dim{N: 32, P: 4, W: 2})
	global := make([]int, 32)
	gmask := make([]bool, 32)
	for i := range global {
		global[i] = 5*i + 1
		gmask[i] = i%4 != 3
	}
	want := seq.Pack(global, gmask)
	locals := dist.Scatter(src, global)
	maskLocals := dist.Scatter(src, gmask)

	pipelines := []struct {
		name string
		run  func(p *sim.Proc) (*pack.Result[int], error)
	}{
		{"selected", func(p *sim.Proc) (*pack.Result[int], error) {
			return PackRedistSelected(p, src, locals[p.Rank()], maskLocals[p.Rank()], pack.Options{})
		}},
		{"whole", func(p *sim.Proc) (*pack.Result[int], error) {
			return PackRedistWhole(p, src, locals[p.Rank()], maskLocals[p.Rank()], pack.Options{})
		}},
	}
	for _, pl := range pipelines {
		for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
			for _, f := range redistFaultSchedules {
				results := make([]*pack.Result[int], src.Procs())
				m := sim.MustNew(sim.Config{Procs: src.Procs(), Params: sim.CM5Params(), Sched: sched, Faults: f})
				if err := m.Run(func(p *sim.Proc) {
					res, err := pl.run(p)
					if err != nil {
						panic(err)
					}
					results[p.Rank()] = res
				}); err != nil {
					t.Fatalf("%s sched %v faults %v: %v", pl.name, sched, f, err)
				}
				got := make([]int, len(want))
				for rank, res := range results {
					if res.Ranking.Size != len(want) {
						t.Fatalf("%s: rank %d counted %d, want %d", pl.name, rank, res.Ranking.Size, len(want))
					}
					for i, v := range res.V {
						got[res.Vec.ToGlobal(rank, i)] = v
					}
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s sched %v faults %v: packed vector diverges from reference", pl.name, sched, f)
				}
			}
		}
	}
}
