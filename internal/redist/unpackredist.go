package redist

import (
	"packunpack/internal/dist"
	"packunpack/internal/pack"
	"packunpack/internal/transport"
)

// UnpackRedistWhole applies the Section 6.3 redistribution idea to
// UNPACK, which the paper argues is *not* a feasible option: because
// UNPACK is a READ operation whose result array must come back in the
// original distribution, the pipeline needs two redistribution steps —
// one moving the mask and field arrays to the block layout before the
// operation, and another moving the result array back afterwards.
//
// The implementation exists so the claim can be measured (see the
// ablation benchmarks): it is correct, it is just expected to lose to
// plain UNPACK on the cyclic layout.
func UnpackRedistWhole[T any](p transport.Endpoint, src *dist.Layout, v []T, nPrime int, m []bool, field []T, opt pack.Options) (*pack.UnpackResult[T], error) {
	dst := BlockLayout(src)

	// Step 1: mask and field to the block layout (one shared
	// communication detection, two applications).
	fwd, err := NewPlan(p, src, dst)
	if err != nil {
		return nil, err
	}
	tm, err := Apply(p, fwd, m)
	if err != nil {
		return nil, err
	}
	tf, err := Apply(p, fwd, field)
	if err != nil {
		return nil, err
	}

	// UNPACK on the block layout, where the ranking overhead is
	// minimal. The input vector's own distribution is unchanged.
	opt.Scheme = pack.SchemeCSS
	res, err := pack.Unpack(p, dst, v, nPrime, tm, tf, opt)
	if err != nil {
		return nil, err
	}

	// Step 2: the result array back to the original distribution —
	// the second redistribution the paper warns about.
	back, err := NewPlan(p, dst, src)
	if err != nil {
		return nil, err
	}
	a, err := Apply(p, back, res.A)
	if err != nil {
		return nil, err
	}
	res.A = a
	return res, nil
}
