package redist

import (
	"reflect"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

func TestUnpackRedistWholeMatchesOracle(t *testing.T) {
	src := dist.MustLayout(dist.Dim{N: 64, P: 4, W: 1}) // cyclic input
	gen := mask.NewRandom(0.4, 17, 64)
	gmask := mask.FillGlobal(src, gen)
	size := seq.Count(gmask)

	vGlobal := make([]int, size)
	for i := range vGlobal {
		vGlobal[i] = 500 + i
	}
	fGlobal := make([]int, 64)
	for i := range fGlobal {
		fGlobal[i] = -i
	}
	want := seq.Unpack(vGlobal, gmask, fGlobal)

	vec, err := dist.NewVectorDist(size, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	fLocals := dist.Scatter(src, fGlobal)

	m := sim.MustNew(sim.Config{Procs: 4, Params: sim.CM5Params()})
	outs := make([][]int, 4)
	err = m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(src, p.Rank(), gen)
		v := make([]int, vec.LocalLen(p.Rank()))
		for i := range v {
			v[i] = vGlobal[vec.ToGlobal(p.Rank(), i)]
		}
		res, err := UnpackRedistWhole(p, src, v, size, lm, fLocals[p.Rank()], pack.Options{})
		if err != nil {
			panic(err)
		}
		outs[p.Rank()] = res.A
	})
	if err != nil {
		t.Fatal(err)
	}
	got := dist.Gather(src, outs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("UnpackRedistWhole mismatch:\n got %v\nwant %v", got, want)
	}

	// The pipeline must book redistribution time (two plan phases + a
	// result move).
	var redistTime float64
	for _, s := range m.Stats() {
		redistTime += s.Phases[PhaseRedist].Comm
	}
	if redistTime <= 0 {
		t.Fatal("no redistribution communication booked")
	}
}

func TestUnpackRedistLosesToDirectUnpack(t *testing.T) {
	// The paper's claim: redistribution is not feasible for UNPACK.
	src := dist.MustLayout(dist.Dim{N: 4096, P: 16, W: 1})
	gen := mask.NewRandom(0.5, 23, 4096)
	size := mask.Count(gen, 4096)
	vec, _ := dist.NewVectorDist(size, 16, 0)

	runIt := func(useRedist bool) float64 {
		m := sim.MustNew(sim.Config{Procs: 16, Params: sim.CM5Params()})
		err := m.Run(func(p *sim.Proc) {
			lm := mask.FillLocal(src, p.Rank(), gen)
			v := make([]int, vec.LocalLen(p.Rank()))
			f := make([]int, src.LocalSize())
			var err error
			if useRedist {
				_, err = UnpackRedistWhole(p, src, v, size, lm, f, pack.Options{})
			} else {
				_, err = pack.Unpack(p, src, v, size, lm, f, pack.Options{Scheme: pack.SchemeSSS})
			}
			if err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.MaxClock()
	}
	direct, redist := runIt(false), runIt(true)
	if redist <= direct {
		t.Fatalf("redistribution UNPACK (%v) unexpectedly beat direct UNPACK (%v)", redist, direct)
	}
}
