package redist

import (
	"fmt"
	"reflect"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

func shapes(l *dist.Layout) []int {
	s := make([]int, l.Rank())
	for i, d := range l.Dims {
		s[i] = d.N
	}
	return s
}

func TestBlockLayout(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1}, dist.Dim{N: 8, P: 2, W: 2})
	b := BlockLayout(l)
	for i, d := range b.Dims {
		if !d.Block() {
			t.Errorf("dimension %d not block-distributed: %+v", i, d)
		}
		if d.N != l.Dims[i].N || d.P != l.Dims[i].P {
			t.Errorf("dimension %d changed shape/grid: %+v", i, d)
		}
	}
}

func TestRedistributePreservesContent(t *testing.T) {
	cases := []struct{ src, dst *dist.Layout }{
		{dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1}), dist.MustLayout(dist.Dim{N: 16, P: 4, W: 4})},
		{dist.MustLayout(dist.Dim{N: 16, P: 4, W: 4}), dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1})},
		{dist.MustLayout(dist.Dim{N: 24, P: 4, W: 2}), dist.MustLayout(dist.Dim{N: 24, P: 4, W: 3})},
		{
			dist.MustLayout(dist.Dim{N: 8, P: 2, W: 1}, dist.Dim{N: 6, P: 3, W: 1}),
			dist.MustLayout(dist.Dim{N: 8, P: 2, W: 4}, dist.Dim{N: 6, P: 3, W: 2}),
		},
	}
	for ci, c := range cases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			n := c.src.GlobalSize()
			global := make([]int, n)
			for i := range global {
				global[i] = i + 100
			}
			locals := dist.Scatter(c.src, global)
			m := sim.MustNew(sim.Config{Procs: c.src.Procs()})
			out := make([][]int, c.src.Procs())
			err := m.Run(func(p *sim.Proc) {
				res, err := Redistribute(p, c.src, c.dst, locals[p.Rank()])
				if err != nil {
					panic(err)
				}
				out[p.Rank()] = res
			})
			if err != nil {
				t.Fatalf("machine run failed: %v", err)
			}
			if got := dist.Gather(c.dst, out); !reflect.DeepEqual(got, global) {
				t.Fatalf("content changed:\n got %v\nwant %v", got, global)
			}
		})
	}
}

func TestRedistributeSelected(t *testing.T) {
	src := dist.MustLayout(dist.Dim{N: 32, P: 4, W: 1})
	dst := BlockLayout(src)
	gen := mask.NewRandom(0.4, 11, shapes(src)...)
	global := make([]int, 32)
	for i := range global {
		global[i] = i * 3
	}
	gmask := mask.FillGlobal(src, gen)
	locals := dist.Scatter(src, global)

	m := sim.MustNew(sim.Config{Procs: 4})
	outA := make([][]int, 4)
	outM := make([][]bool, 4)
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(src, p.Rank(), gen)
		ta, tm, err := RedistributeSelected(p, src, dst, locals[p.Rank()], lm)
		if err != nil {
			panic(err)
		}
		outA[p.Rank()] = ta
		outM[p.Rank()] = tm
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}
	gotMask := dist.Gather(dst, outM)
	if !reflect.DeepEqual(gotMask, gmask) {
		t.Fatalf("temporary mask mismatch:\n got %v\nwant %v", gotMask, gmask)
	}
	gotA := dist.Gather(dst, outA)
	for i := range gmask {
		if gmask[i] && gotA[i] != global[i] {
			t.Fatalf("selected element %d: got %d, want %d", i, gotA[i], global[i])
		}
	}
}

// runRedistPack checks that both redistribution pipelines produce the
// oracle pack result for a cyclically distributed input.
func runRedistPack(t *testing.T, l *dist.Layout, gen mask.Gen, whole bool) {
	t.Helper()
	n := l.GlobalSize()
	global := make([]int, n)
	for i := range global {
		global[i] = i + 7
	}
	gmask := mask.FillGlobal(l, gen)
	want := seq.Pack(global, gmask)
	locals := dist.Scatter(l, global)

	m := sim.MustNew(sim.Config{Procs: l.Procs()})
	results := make([]*pack.Result[int], l.Procs())
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		var res *pack.Result[int]
		var err error
		if whole {
			res, err = PackRedistWhole(p, l, locals[p.Rank()], lm, pack.Options{})
		} else {
			res, err = PackRedistSelected(p, l, locals[p.Rank()], lm, pack.Options{})
		}
		if err != nil {
			panic(err)
		}
		results[p.Rank()] = res
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}
	var got []int
	for _, r := range results {
		got = append(got, r.V...)
	}
	if len(want) == 0 {
		want = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packed vector mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestPackRedistPipelines(t *testing.T) {
	layouts := map[string]*dist.Layout{
		"1d-cyclic": dist.MustLayout(dist.Dim{N: 64, P: 4, W: 1}),
		"2d-cyclic": dist.MustLayout(dist.Dim{N: 8, P: 2, W: 1}, dist.Dim{N: 8, P: 2, W: 1}),
	}
	for lname, l := range layouts {
		for _, density := range []float64{0, 0.1, 0.5, 1.0} {
			gen := mask.NewRandom(density, 5, shapes(l)...)
			for _, whole := range []bool{false, true} {
				name := fmt.Sprintf("%s/d%.0f/whole=%v", lname, density*100, whole)
				t.Run(name, func(t *testing.T) {
					runRedistPack(t, l, gen, whole)
				})
			}
		}
	}
}

func TestRedistributeRejectsMismatch(t *testing.T) {
	a := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1})
	b := dist.MustLayout(dist.Dim{N: 32, P: 4, W: 1})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		if _, err := Redistribute(p, a, b, make([]int, 4)); err == nil {
			panic("expected shape mismatch error")
		}
		if _, err := Redistribute(p, a, BlockLayout(a), make([]int, 3)); err == nil {
			panic("expected local size error")
		}
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}
}

func TestPipelineErrorPropagation(t *testing.T) {
	src := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		if _, err := PackRedistSelected(p, src, make([]int, 1), make([]bool, 1), pack.Options{}); err == nil {
			panic("Red.1 accepted mis-sized locals")
		}
		if _, err := PackRedistWhole(p, src, make([]int, 1), make([]bool, 4), pack.Options{}); err == nil {
			panic("Red.2 accepted mis-sized locals")
		}
		if _, err := UnpackRedistWhole(p, src, nil, 0, make([]bool, 1), make([]int, 1), pack.Options{}); err == nil {
			panic("UnpackRedistWhole accepted mis-sized locals")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsWrongRankPlan(t *testing.T) {
	src := dist.MustLayout(dist.Dim{N: 8, P: 2, W: 1})
	dst := BlockLayout(src)
	m := sim.MustNew(sim.Config{Procs: 2})
	plans := make([]*Plan, 2)
	err := m.Run(func(p *sim.Proc) {
		pl, err := NewPlan(p, src, dst)
		if err != nil {
			panic(err)
		}
		plans[p.Rank()] = pl
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reusing another rank's plan must be rejected.
	err = m.Run(func(p *sim.Proc) {
		other := plans[1-p.Rank()]
		if _, err := Apply(p, other, make([]int, src.LocalSize())); err == nil {
			panic("plan for another rank accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSameShapeChecks(t *testing.T) {
	a := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1})
	b := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1}, dist.Dim{N: 2, P: 1, W: 2})
	c := dist.MustLayout(dist.Dim{N: 16, P: 2, W: 1})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		if _, err := NewPlan(p, a, b); err == nil {
			panic("rank mismatch accepted")
		}
		if p.Rank() < 2 {
			// c has only 2 processors; the grid mismatch must be
			// caught before any communication.
			if _, err := NewPlan(p, a, c); err == nil {
				panic("grid mismatch accepted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
