package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: the rows/series of one of
// the paper's tables or figures.
type Table struct {
	// ID is the experiment id from the DESIGN.md index (fig3, table1,
	// ...); several tables may share an id (one per sub-plot).
	ID string
	// Title describes the artifact and the fixed parameters.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes are free-form footnotes (paper-shape expectations, etc.).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== [%s] %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintln(w, "  "+strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderAll renders a sequence of tables.
func RenderAll(w io.Writer, tables []*Table) {
	for _, t := range tables {
		t.Render(w)
	}
}

// ms formats a millisecond value like the paper's tables.
func ms(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	case v >= 10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
