package bench

import (
	"fmt"
	"sort"

	"packunpack/internal/pack"
	"packunpack/internal/sim"
	"packunpack/internal/trace"
)

// This file is the derived-metrics registry: named quantities computed
// from a finished machine run beyond the paper's raw per-phase times.
// Each registered metric maps a run snapshot to one scalar; the sweep
// engine evaluates the registry for every machine execution and the
// -json perf report emits per-experiment means (schema
// packbench-perf/v3, the "derived" object). The names are the schema:
// changing or removing one is a schema change and must bump PerfSchema.

// Snapshot is what a metric may look at: the per-processor statistics
// of the run and, when the run was traced, its critical-path report.
type Snapshot struct {
	Stats []sim.Stats
	// Crit is non-nil only for traced runs (packbench -trace-dir);
	// metrics that need it return ok=false otherwise.
	Crit *trace.CritReport
	// Plan is non-nil only for planned runs (Run.Planned): the run's
	// plan-cache counter snapshot; metrics that need it return ok=false
	// otherwise.
	Plan *pack.PlanCacheStats
}

// maxClock returns the makespan of the snapshot, µs.
func (s Snapshot) maxClock() float64 {
	var max float64
	for _, st := range s.Stats {
		if st.Clock > max {
			max = st.Clock
		}
	}
	return max
}

// meanClock returns the mean final clock, µs.
func (s Snapshot) meanClock() float64 {
	if len(s.Stats) == 0 {
		return 0
	}
	var sum float64
	for _, st := range s.Stats {
		sum += st.Clock
	}
	return sum / float64(len(s.Stats))
}

// Metric is one registered derived quantity.
type Metric struct {
	// Name keys the metric in the perf report's "derived" object.
	Name string
	// Help is the one-line definition surfaced in docs and tooling.
	Help string
	// Compute returns the metric's value for one run; ok=false means
	// the snapshot lacks what the metric needs (e.g. no trace) and the
	// run contributes nothing to the aggregate.
	Compute func(Snapshot) (v float64, ok bool)
}

// MetricRegistry returns the registered derived metrics, in emission
// order. The registry is a function (not a package variable) so
// callers cannot mutate the canonical set.
func MetricRegistry() []Metric {
	return []Metric{
		{
			Name: "idle_frac",
			Help: "fraction of the machine's processor-time budget idle at the end (1 - meanClock/maxClock); high values mean early finishers wait on stragglers",
			Compute: func(s Snapshot) (float64, bool) {
				max := s.maxClock()
				if max == 0 {
					return 0, false
				}
				return 1 - s.meanClock()/max, true
			},
		},
		{
			Name: "imbalance",
			Help: "load imbalance maxClock/meanClock; 1.0 is perfectly balanced",
			Compute: func(s Snapshot) (float64, bool) {
				mean := s.meanClock()
				if mean == 0 {
					return 0, false
				}
				return s.maxClock() / mean, true
			},
		},
		{
			Name: "comm_frac",
			Help: "communication share of all processor busy time (sum Comm / sum (Comp+Comm))",
			Compute: func(s Snapshot) (float64, bool) {
				var comm, busy float64
				for _, st := range s.Stats {
					comm += st.Comm
					busy += st.Comp + st.Comm
				}
				if busy == 0 {
					return 0, false
				}
				return comm / busy, true
			},
		},
		{
			Name: "critpath_words",
			Help: "message words on the critical path (traced runs only)",
			Compute: func(s Snapshot) (float64, bool) {
				if s.Crit == nil {
					return 0, false
				}
				return float64(s.Crit.Words), true
			},
		},
		{
			Name: "critpath_msgs",
			Help: "messages on the critical path (traced runs only)",
			Compute: func(s Snapshot) (float64, bool) {
				if s.Crit == nil {
					return 0, false
				}
				return float64(s.Crit.Msgs), true
			},
		},
		{
			Name: "critpath_hops",
			Help: "processor segments on the critical path (traced runs only)",
			Compute: func(s Snapshot) (float64, bool) {
				if s.Crit == nil {
					return 0, false
				}
				return float64(len(s.Crit.Segments)), true
			},
		},
		{
			Name: "plan_hit_rate",
			Help: "plan-cache hit fraction of the run's transparent PACK/UNPACK lookups (planned runs only)",
			Compute: func(s Snapshot) (float64, bool) {
				if s.Plan == nil || s.Plan.Hits+s.Plan.Misses == 0 {
					return 0, false
				}
				return s.Plan.HitRate(), true
			},
		},
	}
}

// ComputeDerived evaluates the registry plus the per-phase
// communication shares ("comm_share/<phase>": the phase's summed Comm
// over the summed final clocks — how much of the machine's time the
// phase spends communicating).
func ComputeDerived(s Snapshot) map[string]float64 {
	out := make(map[string]float64)
	for _, m := range MetricRegistry() {
		if v, ok := m.Compute(s); ok {
			out[m.Name] = v
		}
	}
	var clocks float64
	phaseComm := map[string]float64{}
	for _, st := range s.Stats {
		clocks += st.Clock
		for name, ph := range st.Phases {
			phaseComm[name] += ph.Comm
		}
	}
	if clocks > 0 {
		for name, comm := range phaseComm {
			out["comm_share/"+name] = comm / clocks
		}
	}
	return out
}

// DerivedNames lists every metric name the registry can emit for the
// given snapshot's phase set, sorted — used by docs and tests.
func DerivedNames(s Snapshot) []string {
	names := make([]string, 0, len(MetricRegistry()))
	for _, m := range MetricRegistry() {
		names = append(names, m.Name)
	}
	seen := map[string]bool{}
	for _, st := range s.Stats {
		for name := range st.Phases {
			if !seen[name] {
				seen[name] = true
				names = append(names, "comm_share/"+name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// FormatMetricHelp renders the registry as "name — help" lines for the
// CLI's documentation output.
func FormatMetricHelp() string {
	var out string
	for _, m := range MetricRegistry() {
		out += fmt.Sprintf("  %-16s %s\n", m.Name, m.Help)
	}
	out += fmt.Sprintf("  %-16s %s\n", "comm_share/<ph>", "per-phase communication share of summed processor clocks")
	return out
}
