package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"packunpack/internal/stats"
)

// This file is the perf-report comparator behind cmd/packdiff. The
// comparison rule splits the report's metrics into two classes:
//
//   - Virtual metrics (virtual_ms and the derived registry means) are
//     exact replays of the cost model: two runs of the same grid at
//     the same -parallel class must agree bit-for-bit. Any drift is a
//     correctness regression in the emulator or the experiment grid —
//     never host noise — so it is compared with ==, not a tolerance.
//   - Wall-clock and allocation figures are host measurements. They
//     are compared per row against a relative threshold and, when both
//     reports carry raw samples (schema v4), a Mann–Whitney U test
//     decides whether the delta is distinguishable from noise.
//
// Note the -parallel caveat: worker completion order perturbs the
// floating-point accumulation of virtual_ms, and the collect dry-pass
// over-collects on data-dependent generators (table1's crossover
// search), so exact comparison is only guaranteed between reports
// generated at -parallel 1. The perf gate pins that.

// SchemaVersion extracts the numeric version of a packbench-perf
// schema marker ("packbench-perf/v3" -> 3).
func SchemaVersion(schema string) (int, error) {
	const prefix = "packbench-perf/v"
	if !strings.HasPrefix(schema, prefix) {
		return 0, fmt.Errorf("not a packbench-perf schema: %q", schema)
	}
	v, err := strconv.Atoi(schema[len(prefix):])
	if err != nil || v < 1 {
		return 0, fmt.Errorf("malformed schema version: %q", schema)
	}
	return v, nil
}

// LoadPerfReport reads and validates a perf report of any schema
// version v1–v6. Fields a version lacks read as their zero values
// (v1 has no sched, v1–v3 no samples/env/wall_stats, v1–v4 no
// plan_repeat, v1–v5 no real_world).
func LoadPerfReport(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	v, err := SchemaVersion(r.Schema)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	maxKnown, _ := SchemaVersion(PerfSchema)
	if v > maxKnown {
		return nil, fmt.Errorf("%s: schema %s is newer than this tool understands (%s)", path, r.Schema, PerfSchema)
	}
	if len(r.Experiments) == 0 {
		return nil, fmt.Errorf("%s: report has no experiment rows", path)
	}
	return &r, nil
}

// DiffOptions configures the noisy-metric comparison. The virtual
// comparison is not configurable: it is always exact.
type DiffOptions struct {
	// Threshold is the relative wall/alloc delta |new/old - 1| above
	// which a row is flagged (default 0.10).
	Threshold float64
	// Alpha is the Mann–Whitney significance level: when both rows
	// carry ≥2 samples, a flagged wall delta must also have p <= Alpha
	// to count as a regression/improvement (default 0.05).
	Alpha float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.10
	}
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	return o
}

// RowDiff is the comparison of one experiment row present in both
// reports.
type RowDiff struct {
	ID string

	// Wall comparison (noisy).
	OldWallMS, NewWallMS float64
	// WallDelta is (new-old)/old; NaN when old is zero.
	WallDelta float64
	// P is the Mann–Whitney two-sided p-value over the rows' raw wall
	// samples; NaN when either side lacks ≥2 samples (pre-v4 reports).
	P float64
	// WallFlagged: the delta exceeds the threshold and, when P is
	// available, is significant at alpha.
	WallFlagged bool

	// Allocation comparison (noisy, but far more stable than wall).
	OldAllocs, NewAllocs uint64
	AllocDelta           float64
	AllocFlagged         bool

	// Virtual comparison (exact).
	OldVirtualMS, NewVirtualMS float64
	VirtualMatch               bool
	// DerivedDrift names derived metrics present in both rows whose
	// values differ (bit-for-bit comparison).
	DerivedDrift []string
	// DerivedSkew names derived keys present in only one of the two
	// rows — schema/telemetry evolution (e.g. v6 added queue_depth_p99,
	// park_rate), warned about and skipped, never a gate failure.
	DerivedSkew []string

	// StructureDrift notes row-shape changes (tables, rows,
	// machine_runs) — informational, since a PR may legitimately grow
	// the grid, but worth surfacing next to the timing deltas.
	StructureDrift []string

	// Incomparable marks a row whose exact comparison was skipped
	// because the two reports do not measure the same thing: the
	// aggregate "all" row when the experiment grids differ (a newer
	// schema typically adds experiments, so its total legitimately
	// includes work the baseline never ran). Incomparable rows never
	// fail the virtual gate and never flag wall regressions.
	Incomparable bool
}

// VirtualOK reports whether the row's exact-class metrics all match.
// Incomparable rows pass vacuously: their mismatch is schema/grid
// skew, not emulator drift.
func (r RowDiff) VirtualOK() bool {
	return r.Incomparable || (r.VirtualMatch && len(r.DerivedDrift) == 0)
}

// Diff is the full comparison of two perf reports.
type Diff struct {
	Old, New         *PerfReport
	OldPath, NewPath string
	Opt              DiffOptions
	// Rows covers ids present in both reports, in the new report's
	// order (the total line "all" included).
	Rows []RowDiff
	// OnlyOld / OnlyNew list ids present in a single report.
	OnlyOld, OnlyNew []string
	// EnvDiffers notes that the two reports were measured under
	// different host environments, making wall comparisons suspect.
	EnvDiffers bool
	// SkewNotes lists schema-evolution differences that were warned
	// about and skipped rather than compared: fields one schema version
	// lacks (e.g. v5's plan_repeat against a v4 baseline) and aggregate
	// rows over differing experiment grids.
	SkewNotes []string
	// ServiceDrift lists exact-metric mismatches of the v7 service
	// object when both reports carry one under the same configuration.
	// Service figures are virtual-time and seed-deterministic, so any
	// entry here is a correctness regression of the serving layer or
	// the cost model — it fails the gate like per-row virtual drift.
	ServiceDrift []string
}

// VirtualMismatches counts rows whose exact-class metrics drifted.
func (d *Diff) VirtualMismatches() int {
	n := 0
	for _, r := range d.Rows {
		if !r.VirtualOK() {
			n++
		}
	}
	return n
}

// WallRegressions counts flagged rows that got slower.
func (d *Diff) WallRegressions() int {
	n := 0
	for _, r := range d.Rows {
		if r.WallFlagged && r.WallDelta > 0 {
			n++
		}
	}
	return n
}

// relDelta returns (new-old)/old, NaN when old is zero and new isn't.
func relDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.NaN()
	}
	return (new - old) / old
}

// envOf summarizes the comparable environment of a report, falling
// back to the v1–v3 top-level fields when the env object is absent.
func envOf(r *PerfReport) string {
	if r.Env != nil {
		return fmt.Sprintf("%s %s/%s cpu=%d maxprocs=%d", r.Env.GoVersion, r.Env.GOOS, r.Env.GOARCH, r.Env.NumCPU, r.Env.GOMAXPROCS)
	}
	return fmt.Sprintf("%s cpu=%d", r.GoVersion, r.NumCPU)
}

// DiffReports compares two perf reports under the exact-vs-noisy rule.
func DiffReports(old, new *PerfReport, opt DiffOptions) *Diff {
	opt = opt.withDefaults()
	d := &Diff{Old: old, New: new, Opt: opt}
	d.EnvDiffers = envOf(old) != envOf(new) ||
		old.Quick != new.Quick || old.Seed != new.Seed

	oldRows := make(map[string]ExperimentPerf, len(old.Experiments)+1)
	for _, e := range old.Experiments {
		oldRows[e.ID] = e
	}
	oldRows[old.Total.ID] = old.Total

	newIDs := make(map[string]bool, len(new.Experiments)+1)
	for _, e := range new.Experiments {
		newIDs[e.ID] = true
		oe, ok := oldRows[e.ID]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, e.ID)
			continue
		}
		d.Rows = append(d.Rows, diffRow(oe, e, opt))
	}
	for _, e := range old.Experiments {
		if !newIDs[e.ID] {
			d.OnlyOld = append(d.OnlyOld, e.ID)
		}
	}

	// The total row sums per-experiment figures, so it is only
	// exact-comparable when both reports ran the same grid. A schema
	// bump that adds a canonical experiment (v5 added planrepeat) makes
	// the totals legitimately differ: warn and skip instead of failing
	// the gate — every shared per-experiment row is still compared
	// exactly.
	gridsDiffer := len(d.OnlyOld) > 0 || len(d.OnlyNew) > 0
	newIDs[new.Total.ID] = true
	if oe, ok := oldRows[new.Total.ID]; ok {
		r := diffRow(oe, new.Total, opt)
		if gridsDiffer {
			r.Incomparable = true
			r.WallFlagged, r.AllocFlagged = false, false
			d.SkewNotes = append(d.SkewNotes, fmt.Sprintf(
				"aggregate %q row skipped: the experiment grids differ (%d id(s) only in old, %d only in new), so the totals do not sum the same work",
				new.Total.ID, len(d.OnlyOld), len(d.OnlyNew)))
		}
		d.Rows = append(d.Rows, r)
	} else {
		d.OnlyNew = append(d.OnlyNew, new.Total.ID)
	}
	if !newIDs[old.Total.ID] {
		d.OnlyOld = append(d.OnlyOld, old.Total.ID)
	}

	// Fields one schema version lacks are skew, not drift: warn and
	// skip. plan_repeat (v5) is the wall-clock plan-cache amortization —
	// a host measurement, so even two v5 reports are not exact-compared
	// on it; its presence mismatch is still worth a note.
	if ov, nv := old.PlanRepeat != nil, new.PlanRepeat != nil; ov != nv {
		which := "new"
		if ov {
			which = "old"
		}
		d.SkewNotes = append(d.SkewNotes, fmt.Sprintf(
			"plan_repeat object present only in the %s report (schema v5 field) — skipped, not compared", which))
	}
	// real_world (v6) is the real-backend telemetry curve — pure host
	// wall measurements, so like plan_repeat it is never numerically
	// compared; a presence mismatch still deserves a note.
	if ov, nv := old.RealWorld != nil, new.RealWorld != nil; ov != nv {
		which := "new"
		if ov {
			which = "old"
		}
		d.SkewNotes = append(d.SkewNotes, fmt.Sprintf(
			"real_world object present only in the %s report (schema v6 field) — skipped, not compared", which))
	}
	// service (v7) is the serving-layer soak. Unlike plan_repeat and
	// real_world it is deterministic virtual time, so when both sides
	// carry it under the same configuration it is compared exactly; a
	// presence or configuration mismatch is skew, warned and skipped.
	switch ov, nv := old.Service != nil, new.Service != nil; {
	case ov != nv:
		which := "new"
		if ov {
			which = "old"
		}
		d.SkewNotes = append(d.SkewNotes, fmt.Sprintf(
			"service object present only in the %s report (schema v7 field) — skipped, not compared", which))
	case ov && nv:
		d.diffService(old.Service, new.Service)
	}
	// Derived keys one side lacks are telemetry evolution (v6 added
	// queue_depth_p99/park_rate to instrumented rows), not drift: one
	// aggregated note instead of a per-row gate failure.
	skewKeys := map[string]bool{}
	for _, r := range d.Rows {
		for _, k := range r.DerivedSkew {
			skewKeys[k] = true
		}
	}
	if len(skewKeys) > 0 {
		keys := make([]string, 0, len(skewKeys))
		for k := range skewKeys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		d.SkewNotes = append(d.SkewNotes, fmt.Sprintf(
			"derived key(s) present on one side only — skipped, not compared: %s", strings.Join(keys, ", ")))
	}
	if old.Schema != new.Schema {
		d.SkewNotes = append(d.SkewNotes, fmt.Sprintf(
			"schema skew: %s vs %s — fields the older schema lacks read as zero and are skipped", old.Schema, new.Schema))
	}
	return d
}

// diffService exact-compares two v7 service objects. A configuration
// mismatch (different seed, load, or pool shape) makes them
// incomparable — skew, not drift.
func (d *Diff) diffService(old, new *ServicePerf) {
	if old.Seed != new.Seed || old.Requests != new.Requests ||
		old.Workers != new.Workers || old.Queue != new.Queue ||
		old.RatePerSec != new.RatePerSec {
		d.SkewNotes = append(d.SkewNotes, fmt.Sprintf(
			"service objects ran different configurations (seed %d/%d, requests %d/%d, workers %d/%d, queue %d/%d) — skipped, not compared",
			old.Seed, new.Seed, old.Requests, new.Requests, old.Workers, new.Workers, old.Queue, new.Queue))
		return
	}
	drift := func(name string, ov, nv any) {
		if ov != nv {
			d.ServiceDrift = append(d.ServiceDrift, fmt.Sprintf("%s %v→%v", name, ov, nv))
		}
	}
	drift("admitted", old.Admitted, new.Admitted)
	drift("overloaded", old.Overloaded, new.Overloaded)
	drift("duration_us", old.DurationUS, new.DurationUS)
	drift("p50_us", old.P50US, new.P50US)
	drift("p99_us", old.P99US, new.P99US)
	drift("p999_us", old.P999US, new.P999US)
	drift("sum_us", old.SumUS, new.SumUS)
	oc := make(map[string]ServiceClassPerf, len(old.Classes))
	for _, c := range old.Classes {
		oc[c.Name] = c
	}
	for _, c := range new.Classes {
		o, ok := oc[c.Name]
		if !ok {
			d.ServiceDrift = append(d.ServiceDrift, fmt.Sprintf("class %s only in new", c.Name))
			continue
		}
		drift("class "+c.Name+" service_us", o.ServiceUS, c.ServiceUS)
		drift("class "+c.Name+" arrivals", o.Arrivals, c.Arrivals)
		delete(oc, c.Name)
	}
	for name := range oc {
		d.ServiceDrift = append(d.ServiceDrift, fmt.Sprintf("class %s only in old", name))
	}
	sort.Strings(d.ServiceDrift)
}

func diffRow(old, new ExperimentPerf, opt DiffOptions) RowDiff {
	r := RowDiff{
		ID:           new.ID,
		OldWallMS:    old.WallMS,
		NewWallMS:    new.WallMS,
		WallDelta:    relDelta(old.WallMS, new.WallMS),
		P:            math.NaN(),
		OldAllocs:    old.Allocs,
		NewAllocs:    new.Allocs,
		AllocDelta:   relDelta(float64(old.Allocs), float64(new.Allocs)),
		OldVirtualMS: old.VirtualMS,
		NewVirtualMS: new.VirtualMS,
		VirtualMatch: old.VirtualMS == new.VirtualMS,
	}

	if len(old.WallSamplesMS) >= 2 && len(new.WallSamplesMS) >= 2 {
		r.P = stats.MannWhitneyU(old.WallSamplesMS, new.WallSamplesMS).P
	}
	overThreshold := !math.IsNaN(r.WallDelta) && math.Abs(r.WallDelta) > opt.Threshold
	if math.IsNaN(r.P) {
		r.WallFlagged = overThreshold
	} else {
		r.WallFlagged = overThreshold && r.P <= opt.Alpha
	}
	r.AllocFlagged = !math.IsNaN(r.AllocDelta) && math.Abs(r.AllocDelta) > opt.Threshold

	// Exact comparison of the derived means over the keys both rows
	// carry. Keys present on one side only are grid/schema evolution,
	// not emulator drift (e.g. a v2 report has no derived object at
	// all), so they do not fail the gate.
	for name, ov := range old.Derived {
		if nv, ok := new.Derived[name]; ok {
			if nv != ov {
				r.DerivedDrift = append(r.DerivedDrift, name)
			}
		} else {
			r.DerivedSkew = append(r.DerivedSkew, name)
		}
	}
	for name := range new.Derived {
		if _, ok := old.Derived[name]; !ok {
			r.DerivedSkew = append(r.DerivedSkew, name)
		}
	}
	sort.Strings(r.DerivedDrift)
	sort.Strings(r.DerivedSkew)

	if old.Tables != new.Tables {
		r.StructureDrift = append(r.StructureDrift, fmt.Sprintf("tables %d→%d", old.Tables, new.Tables))
	}
	if old.Rows != new.Rows {
		r.StructureDrift = append(r.StructureDrift, fmt.Sprintf("rows %d→%d", old.Rows, new.Rows))
	}
	if old.MachineRuns != new.MachineRuns {
		r.StructureDrift = append(r.StructureDrift, fmt.Sprintf("machine_runs %d→%d", old.MachineRuns, new.MachineRuns))
	}
	return r
}

// formatting helpers shared by the two renderers.

func fmtDelta(d float64) string {
	if math.IsNaN(d) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", d*100)
}

func fmtP(p float64) string {
	if math.IsNaN(p) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", p)
}

func (r RowDiff) virtualCell() string {
	if r.Incomparable {
		return "skipped (grids differ)"
	}
	if r.VirtualOK() {
		return "ok"
	}
	var parts []string
	if !r.VirtualMatch {
		parts = append(parts, fmt.Sprintf("virtual_ms %v→%v", r.OldVirtualMS, r.NewVirtualMS))
	}
	if len(r.DerivedDrift) > 0 {
		parts = append(parts, "derived: "+strings.Join(r.DerivedDrift, " "))
	}
	return "DRIFT(" + strings.Join(parts, "; ") + ")"
}

// WriteMarkdown renders the delta table as GitHub-flavoured markdown.
func (d *Diff) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## packdiff: %s → %s\n\n", d.describe(d.Old, d.OldPath), d.describe(d.New, d.NewPath))
	if vm := d.VirtualMismatches(); vm == 0 {
		fmt.Fprintf(w, "- virtual metrics: **exact match** (%d rows)\n", len(d.Rows))
	} else {
		fmt.Fprintf(w, "- virtual metrics: **%d of %d rows DRIFTED** — emulator correctness regression\n", vm, len(d.Rows))
	}
	fmt.Fprintf(w, "- wall threshold ±%.0f%%, alpha %.2f; flagged regressions: %d\n",
		d.Opt.Threshold*100, d.Opt.Alpha, d.WallRegressions())
	if d.EnvDiffers {
		fmt.Fprintf(w, "- **environments differ** — wall/alloc deltas may reflect the host, not the code\n")
	}
	if len(d.ServiceDrift) > 0 {
		fmt.Fprintf(w, "- service metrics: **DRIFTED** — %s\n", strings.Join(d.ServiceDrift, "; "))
	} else if d.Old.Service != nil && d.New.Service != nil {
		fmt.Fprintf(w, "- service metrics: exact match (p50/p99/p999 %d/%d/%d µs)\n",
			d.New.Service.P50US, d.New.Service.P99US, d.New.Service.P999US)
	}
	for _, note := range d.SkewNotes {
		fmt.Fprintf(w, "- **skew**: %s\n", note)
	}
	if len(d.OnlyOld) > 0 {
		fmt.Fprintf(w, "- only in old: %s\n", strings.Join(d.OnlyOld, ", "))
	}
	if len(d.OnlyNew) > 0 {
		fmt.Fprintf(w, "- only in new: %s\n", strings.Join(d.OnlyNew, ", "))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| experiment | wall old (ms) | wall new (ms) | Δ wall | p | allocs old | allocs new | Δ allocs | virtual | notes |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|:--|:--|")
	for _, r := range d.Rows {
		var notes []string
		if r.Incomparable {
			notes = append(notes, "grids differ")
		}
		if r.WallFlagged {
			if r.WallDelta > 0 {
				notes = append(notes, "**slower**")
			} else {
				notes = append(notes, "faster")
			}
		}
		if r.AllocFlagged {
			notes = append(notes, "allocs")
		}
		notes = append(notes, r.StructureDrift...)
		fmt.Fprintf(w, "| %s | %.3f | %.3f | %s | %s | %d | %d | %s | %s | %s |\n",
			r.ID, r.OldWallMS, r.NewWallMS, fmtDelta(r.WallDelta), fmtP(r.P),
			r.OldAllocs, r.NewAllocs, fmtDelta(r.AllocDelta), r.virtualCell(),
			strings.Join(notes, ", "))
	}
}

// WriteTSV renders the delta table as tab-separated values for
// spreadsheet or awk consumption.
func (d *Diff) WriteTSV(w io.Writer) {
	fmt.Fprintln(w, "experiment\twall_old_ms\twall_new_ms\twall_delta\tp\twall_flagged\tallocs_old\tallocs_new\talloc_delta\tvirtual_old_ms\tvirtual_new_ms\tvirtual_ok\tincomparable\tderived_drift\tstructure_drift")
	for _, r := range d.Rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%s\t%s\t%v\t%d\t%d\t%s\t%v\t%v\t%v\t%v\t%s\t%s\n",
			r.ID, r.OldWallMS, r.NewWallMS, fmtDelta(r.WallDelta), fmtP(r.P), r.WallFlagged,
			r.OldAllocs, r.NewAllocs, fmtDelta(r.AllocDelta),
			r.OldVirtualMS, r.NewVirtualMS, r.VirtualOK(), r.Incomparable,
			strings.Join(r.DerivedDrift, ","), strings.Join(r.StructureDrift, ","))
	}
}

func (d *Diff) describe(r *PerfReport, path string) string {
	name := path
	if name == "" {
		name = "report"
	}
	samples := r.Samples
	if samples == 0 {
		samples = 1
	}
	return fmt.Sprintf("%s (%s, sched=%s, parallel=%d, samples=%d)",
		name, r.Schema, orDash(r.Sched), r.Parallel, samples)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
