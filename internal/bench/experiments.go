package bench

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/metrics"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
	"packunpack/internal/trace"
)

// Suite bundles the paper's experiments. Quick mode shrinks the
// parameter sets so the whole suite runs in seconds (used by tests);
// the default sizes are the paper's full grids (six 1-D arrays, four
// 2-D arrays, six masks).
type Suite struct {
	Quick bool
	// Seed for the random masks (the paper regenerated five random
	// masks per configuration; one seed per density is enough for the
	// shape comparisons).
	Seed uint64
	// Workers bounds the host worker pool the sweep engine fans
	// experiment points out to: 0 means runtime.NumCPU(), 1 reproduces
	// the fully serial behaviour. Whatever the value, rendered tables
	// are byte-identical (the determinism invariant of DESIGN.md §7).
	Workers int
	// Sched is the emulator execution mode every measured machine
	// runs under. NewSuite defaults it to sim.SchedCooperative: the
	// sweep engine is already host-parallel across experiment points,
	// so within-machine goroutine concurrency only oversubscribes the
	// host (DESIGN.md §8). Either mode produces identical tables.
	Sched sim.Sched
	// Faults, when non-nil, installs this fault-injection plan on every
	// measured machine that does not carry its own (packbench -faults).
	// The canonical experiments stay fault-free unless the caller asks;
	// the "faults" sweep sets per-run plans regardless.
	Faults *sim.FaultConfig
	// Metrics, when non-nil, attaches this telemetry registry to every
	// measured machine that does not carry its own (packbench -metrics).
	// Tables and virtual times are unaffected — telemetry observes wall
	// clock only — and the registry stays out of the memoization key, so
	// cached points simply do not re-record (a cache hit runs no machine).
	Metrics *metrics.Registry
	// OnRealRegistry, when non-nil, is called with each fresh telemetry
	// registry MeasureRealWorld creates (one per processor count, so
	// per-point derived figures stay isolated). Live exposition servers
	// use it to follow the machine currently executing
	// (metrics.Server.SetRegistry).
	OnRealRegistry func(*metrics.Registry)
	// TraceDir, when non-empty, runs every measured machine with the
	// observability layer on and dumps one Chrome trace-event file per
	// executed experiment point into the directory (packbench
	// -trace-dir). Tables and virtual times are unaffected.
	TraceDir string
	// FlightDir, when non-empty, attaches an always-on flight recorder
	// to every measured PACK/UNPACK machine of the sweep (packbench
	// -flight-dir) and, if a machine aborts on a structural deadlock or
	// an exhausted fault-retry budget, dumps the recorder's bounded
	// event window into the directory (Chrome trace + text post-mortem,
	// flightdump.go) before the engine panic propagates. Tables and
	// virtual times are unaffected.
	FlightDir string
	// Samples is how many times the instrumented runner repeats each
	// experiment's warm-cache replay to collect wall-clock samples
	// (packbench -samples); 0 or 1 measures once. Repeats never re-run
	// machines — the prefetch phase executes the grid once — so
	// sampling changes only the statistical quality of the wall
	// figures, not any virtual result.
	Samples int
	// cache memoizes measurements across experiments: Figure 3 and
	// Figure 4 report different columns of the same runs, and the
	// Table I crossover search revisits the SSS baseline repeatedly.
	// It is also the hand-off point of the parallel sweep engine.
	cache *runCache
	// collect, when non-nil, switches measure into the grid-discovery
	// mode of the parallel sweep engine (see parallel.go).
	collect *runCollector
	// counters instrument machine executions for the perf report.
	counters *perfCounters
	// labelExp is the experiment id the instrumented runner stamps on
	// the engine's pprof labels (parallel.go), so -cpuprofile samples
	// attribute to the experiment that spent them. Empty outside
	// RunInstrumented.
	labelExp string
	// labelCtx carries the current stage's pprof labels down to
	// execute, which layers the per-point labels (scheme, op, procs)
	// on top (see withStage).
	labelCtx context.Context
	// prefetchOnly / replayOnly split an experiment into its two
	// engine phases for the instrumented runner (report.go): the
	// prefetch phase discovers and executes the measurement grid (all
	// machine runs and their allocations happen here), the replay
	// phase renders tables from the warm cache. Neither is set during
	// normal generation.
	prefetchOnly bool
	replayOnly   bool
}

// NewSuite builds a suite with a shared measurement cache.
func NewSuite(quick bool, seed uint64) Suite {
	return Suite{Quick: quick, Seed: seed, Sched: sim.SchedCooperative, cache: newRunCache(), counters: &perfCounters{}}
}

// sampleCount resolves the Samples field: 0 means one sample.
func (s Suite) sampleCount() int {
	if s.Samples > 1 {
		return s.Samples
	}
	return 1
}

// maskSpec names a mask generator for a given array shape.
type maskSpec struct {
	name string
	gen  mask.Gen
}

// maskSpecs returns the paper's six masks for a shape: densities
// 10..90% plus the deterministic LT mask.
func (s Suite) maskSpecs(shape []int) []maskSpec {
	densities := []float64{0.10, 0.30, 0.50, 0.70, 0.90}
	if s.Quick {
		densities = []float64{0.10, 0.50, 0.90}
	}
	var specs []maskSpec
	for i, d := range densities {
		specs = append(specs, maskSpec{
			name: fmt.Sprintf("%.0f%%", d*100),
			gen:  mask.NewRandom(d, s.Seed+uint64(i)+1, shape...),
		})
	}
	switch len(shape) {
	case 1:
		specs = append(specs, maskSpec{name: "LT", gen: mask.FirstHalf{N: shape[0]}})
	case 2:
		specs = append(specs, maskSpec{name: "LT", gen: mask.UpperTriangle{}})
	}
	return specs
}

// oneD builds the paper's 1-D layout: N elements over P=16 processors
// (unless overridden) with block size w.
func oneD(n, p, w int) *dist.Layout {
	return dist.MustLayout(dist.Dim{N: n, P: p, W: w})
}

// twoD builds the paper's 2-D layout: n x n elements over a pg x pg
// grid, with the same block size along both dimensions ("the block
// size for dimension 0 was fixed to be the same as that for dimension
// 1").
func twoD(n, pg, w int) *dist.Layout {
	return dist.MustLayout(dist.Dim{N: n, P: pg, W: w}, dist.Dim{N: n, P: pg, W: w})
}

// blockSizes returns the power-of-two block sizes from 1 (cyclic) to
// localSize (block), the sweep of the paper's figures.
func blockSizes(localSize int, quick bool) []int {
	var out []int
	for w := 1; w <= localSize; w *= 2 {
		out = append(out, w)
	}
	if quick && len(out) > 4 {
		// Keep cyclic, two middles and block.
		out = []int{out[0], out[len(out)/3], out[2*len(out)/3], out[len(out)-1]}
	}
	return out
}

// arraySpec is one input-array configuration of the paper.
type arraySpec struct {
	name   string
	build  func(w int) *dist.Layout
	localW int // local extent along dimension 0 (the W sweep range)
	shape  []int
}

// packArrays returns the array configurations used by Figures 3-5:
// 1-D arrays on 16 processors and 2-D arrays on a 4x4 grid.
func (s Suite) packArrays() []arraySpec {
	if s.Quick {
		return []arraySpec{
			{name: "1-D N=4096, P=16", build: func(w int) *dist.Layout { return oneD(4096, 16, w) }, localW: 4096 / 16, shape: []int{4096}},
			{name: "2-D 64x64, P=4x4", build: func(w int) *dist.Layout { return twoD(64, 4, w) }, localW: 64 / 4, shape: []int{64, 64}},
		}
	}
	var specs []arraySpec
	for _, n := range []int{4096, 8192, 16384, 32768, 65536, 131072} {
		n := n
		specs = append(specs, arraySpec{
			name:   fmt.Sprintf("1-D N=%d, P=16", n),
			build:  func(w int) *dist.Layout { return oneD(n, 16, w) },
			localW: n / 16,
			shape:  []int{n},
		})
	}
	for _, n := range []int{64, 128, 256, 512} {
		n := n
		specs = append(specs, arraySpec{
			name:   fmt.Sprintf("2-D %dx%d, P=4x4", n, n),
			build:  func(w int) *dist.Layout { return twoD(n, 4, w) },
			localW: n / 4,
			shape:  []int{n, n},
		})
	}
	return specs
}

// measure runs one configuration and panics on harness bugs (the
// experiment grid is fixed, so an error is a programming error, not an
// input error). Results are memoized when the suite has a cache. In
// collect mode the point is only recorded for the parallel prefetcher
// and a zero Metrics is returned (the dry pass's tables are discarded).
func (s Suite) measure(r Run) Metrics {
	r.Sched = s.Sched // experiments leave the mode to the suite
	if r.Faults == nil {
		r.Faults = s.Faults
	}
	if r.Metrics == nil {
		r.Metrics = s.Metrics
	}
	key := runKey(r)
	if s.collect != nil {
		s.collect.add(key, r)
		return Metrics{}
	}
	if s.cache != nil {
		if m, ok := s.cache.get(key); ok {
			return m
		}
	}
	m := s.execute(r)
	if s.cache != nil {
		s.cache.put(key, m)
	}
	return m
}

// packSchemes are the three PACK schemes in the paper's order.
var packSchemes = []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS, pack.SchemeCMS}

// Fig3 regenerates Figure 3: local computation time (ms) of the three
// PACK schemes as a function of the block size, per array size and
// mask density.
func (s Suite) Fig3() []*Table { return s.parallelize(Suite.fig3) }

func (s Suite) fig3() []*Table {
	var tables []*Table
	for _, arr := range s.packArrays() {
		for _, msk := range s.maskSpecs(arr.shape) {
			t := &Table{
				ID:      "fig3",
				Title:   fmt.Sprintf("PACK local computation (ms), %s, mask %s", arr.name, msk.name),
				Columns: []string{"W", "SSS", "CSS", "CMS"},
				Notes: []string{
					"local computation excludes the prefix-reduction-sum (paper, Section 7)",
					"expected shape: grows as W shrinks; SSS best at W=1; CSS/CMS best at block",
				},
			}
			for _, w := range blockSizes(arr.localW, s.Quick) {
				row := []string{fmt.Sprint(w)}
				for _, scheme := range packSchemes {
					met := s.measure(Run{Layout: arr.build(w), Gen: msk.gen, Opt: pack.Options{Scheme: scheme}, Mode: ModePack})
					row = append(row, ms(met.LocalMS))
				}
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}
	return tables
}

// Fig4 regenerates Figure 4: total PACK execution time (ms) of the
// three schemes, with the stage breakdown of the best scheme.
func (s Suite) Fig4() []*Table { return s.parallelize(Suite.fig4) }

func (s Suite) fig4() []*Table {
	var tables []*Table
	for _, arr := range s.packArrays() {
		for _, msk := range s.maskSpecs(arr.shape) {
			t := &Table{
				ID:      "fig4",
				Title:   fmt.Sprintf("PACK total time (ms), %s, mask %s", arr.name, msk.name),
				Columns: []string{"W", "SSS", "CSS", "CMS", "CMS-prs", "CMS-m2m"},
				Notes: []string{
					"expected shape: CMS best overall except cyclic (W=1) where SSS wins",
				},
			}
			for _, w := range blockSizes(arr.localW, s.Quick) {
				row := []string{fmt.Sprint(w)}
				var cms Metrics
				for _, scheme := range packSchemes {
					met := s.measure(Run{Layout: arr.build(w), Gen: msk.gen, Opt: pack.Options{Scheme: scheme}, Mode: ModePack})
					row = append(row, ms(met.TotalMS))
					if scheme == pack.SchemeCMS {
						cms = met
					}
				}
				row = append(row, ms(cms.PRSMS), ms(cms.M2MMS))
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}
	return tables
}

// Fig5 regenerates Figure 5: total UNPACK execution time (ms) of the
// two UNPACK schemes (SSS and CSS).
func (s Suite) Fig5() []*Table { return s.parallelize(Suite.fig5) }

func (s Suite) fig5() []*Table {
	var tables []*Table
	for _, arr := range s.packArrays() {
		for _, msk := range s.maskSpecs(arr.shape) {
			t := &Table{
				ID:      "fig5",
				Title:   fmt.Sprintf("UNPACK total time (ms), %s, mask %s", arr.name, msk.name),
				Columns: []string{"W", "SSS", "CSS", "CSS-m2m"},
				Notes: []string{
					"UNPACK uses two-phase communication (requests + data); expect it to cost more than PACK",
				},
			}
			for _, w := range blockSizes(arr.localW, s.Quick) {
				row := []string{fmt.Sprint(w)}
				var css Metrics
				for _, scheme := range []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS} {
					met := s.measure(Run{Layout: arr.build(w), Gen: msk.gen, Opt: pack.Options{Scheme: scheme}, Mode: ModeUnpack})
					row = append(row, ms(met.TotalMS))
					if scheme == pack.SchemeCSS {
						css = met
					}
				}
				row = append(row, ms(css.M2MMS))
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}
	return tables
}

// beta finds the smallest power-of-two block size at which challenger
// local computation is no worse than incumbent local computation, or 0
// if it never happens (the paper prints infinity). In collect mode the
// crossover predicate cannot be evaluated, so the whole sweep is
// enumerated for the prefetcher — a superset of what the real pass
// will read, which keeps the replay byte-identical.
func (s Suite) beta(build func(w int) *dist.Layout, localW int, gen mask.Gen, challenger, incumbent pack.Scheme) int {
	for w := 1; w <= localW; w *= 2 {
		inc := s.measure(Run{Layout: build(w), Gen: gen, Opt: pack.Options{Scheme: incumbent}, Mode: ModePack})
		ch := s.measure(Run{Layout: build(w), Gen: gen, Opt: pack.Options{Scheme: challenger}, Mode: ModePack})
		if s.collect != nil {
			continue
		}
		if ch.LocalMS <= inc.LocalMS {
			return w
		}
	}
	return 0
}

// Table1 regenerates Table I: the beta_1 crossover block sizes (first
// block size at which the compact storage scheme beats the simple
// storage scheme on local computation) for 1-D and 2-D arrays across
// mask densities, plus the corresponding beta_2 values for the compact
// message scheme.
func (s Suite) Table1() []*Table { return s.parallelize(Suite.table1) }

func (s Suite) table1() []*Table {
	type sizeSpec struct {
		label  string
		build  func(w int) *dist.Layout
		localW int
		shape  []int
	}
	var oneDSizes, twoDSizes []sizeSpec
	oneDLocals := []int{1024, 2048, 4096, 8192}
	twoDLocals := []int{16, 32, 64, 128}
	if s.Quick {
		oneDLocals = []int{256}
		twoDLocals = []int{16}
	}
	for _, ls := range oneDLocals {
		n := ls * 16
		oneDSizes = append(oneDSizes, sizeSpec{
			label:  fmt.Sprint(ls),
			build:  func(w int) *dist.Layout { return oneD(n, 16, w) },
			localW: ls,
			shape:  []int{n},
		})
	}
	for _, ls := range twoDLocals {
		n := ls * 4
		twoDSizes = append(twoDSizes, sizeSpec{
			label:  fmt.Sprint(ls),
			build:  func(w int) *dist.Layout { return twoD(n, 4, w) },
			localW: ls,
			shape:  []int{n, n},
		})
	}

	makeTable := func(id, title string, sizes []sizeSpec, challenger pack.Scheme) *Table {
		t := &Table{
			ID:      id,
			Title:   title,
			Columns: []string{"Local Size"},
			Notes: []string{
				"0 printed as 'inf': the challenger never catches up within the sweep",
				"expected shape: crossover shrinks as density grows; very large at 10%",
			},
		}
		var specNames []string
		for _, sz := range sizes {
			specs := s.maskSpecs(sz.shape)
			row := []string{sz.label}
			for _, msk := range specs {
				if len(specNames) < len(specs) {
					specNames = append(specNames, msk.name)
				}
				b := s.beta(sz.build, sz.localW, msk.gen, challenger, pack.SchemeSSS)
				if b == 0 {
					row = append(row, "inf")
				} else {
					row = append(row, fmt.Sprint(b))
				}
			}
			t.AddRow(row...)
		}
		t.Columns = append(t.Columns, specNames...)
		return t
	}

	return []*Table{
		makeTable("table1", "Table I: beta_1 (CSS beats SSS on local computation), 1-D arrays, P=16", oneDSizes, pack.SchemeCSS),
		makeTable("table1", "Table I: beta_1, 2-D arrays, P=4x4 (local size per dimension)", twoDSizes, pack.SchemeCSS),
		makeTable("table1", "Table I companion: beta_2 (CMS beats SSS on local computation), 1-D arrays, P=16", oneDSizes, pack.SchemeCMS),
		makeTable("table1", "Table I companion: beta_2, 2-D arrays, P=4x4", twoDSizes, pack.SchemeCMS),
	}
}

// Table2 regenerates Table II: total PACK time for a cyclically
// distributed input under the plain simple storage scheme versus the
// two preliminary redistribution pipelines.
func (s Suite) Table2() []*Table { return s.parallelize(Suite.table2) }

func (s Suite) table2() []*Table {
	type sizeSpec struct {
		label string
		l     *dist.Layout
		shape []int
	}
	sizes := []sizeSpec{
		{label: "1-D 16384", l: oneD(16384, 16, 1), shape: []int{16384}},
		{label: "1-D 65536", l: oneD(65536, 16, 1), shape: []int{65536}},
		{label: "2-D 256x256", l: twoD(256, 4, 1), shape: []int{256, 256}},
		{label: "2-D 512x512", l: twoD(512, 4, 1), shape: []int{512, 512}},
	}
	if s.Quick {
		sizes = []sizeSpec{
			{label: "1-D 4096", l: oneD(4096, 16, 1), shape: []int{4096}},
			{label: "2-D 64x64", l: twoD(64, 4, 1), shape: []int{64, 64}},
		}
	}
	var tables []*Table
	for _, sz := range sizes {
		t := &Table{
			ID:      "table2",
			Title:   fmt.Sprintf("Table II: cyclic input, %s — SSS vs redistribution pipelines (ms)", sz.label),
			Columns: []string{"Mask", "SSS", "Red.1", "Red.2"},
			Notes: []string{
				"Red.1 = redistribute selected data + CMS on block; Red.2 = redistribute whole arrays + CMS on block",
				"expected shape (paper): 1-D — neither Red beats SSS; 2-D — Red.1 wins at low density, Red.2 at high; Red.2 nearly density-insensitive",
			},
		}
		for _, msk := range s.maskSpecs(sz.shape) {
			if msk.name == "LT" {
				continue // Table II lists the five random densities only
			}
			sss := s.measure(Run{Layout: sz.l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModePack})
			r1 := s.measure(Run{Layout: sz.l, Gen: msk.gen, Mode: ModeRed1})
			r2 := s.measure(Run{Layout: sz.l, Gen: msk.gen, Mode: ModeRed2})
			t.AddRow(msk.name, ms(sss.TotalMS), ms(r1.TotalMS), ms(r2.TotalMS))
		}
		tables = append(tables, t)
	}
	return tables
}

// Scale regenerates the Section 7 scaling experiment: the same local
// array size on 16 and on 256 processors (global size grown 16x),
// showing communication taking over from local computation.
func (s Suite) Scale() []*Table { return s.parallelize(Suite.scale) }

func (s Suite) scale() []*Table {
	type cfg struct {
		label string
		build func(w int) *dist.Layout
		lw    int
		shape []int
	}
	var cfgs []cfg
	if s.Quick {
		cfgs = []cfg{
			{label: "1-D N=16384, P=16", build: func(w int) *dist.Layout { return oneD(16384, 16, w) }, lw: 1024, shape: []int{16384}},
			{label: "1-D N=262144, P=256", build: func(w int) *dist.Layout { return oneD(262144, 256, w) }, lw: 1024, shape: []int{262144}},
		}
	} else {
		cfgs = []cfg{
			{label: "1-D N=65536, P=16", build: func(w int) *dist.Layout { return oneD(65536, 16, w) }, lw: 4096, shape: []int{65536}},
			{label: "1-D N=1048576, P=256", build: func(w int) *dist.Layout { return oneD(1048576, 256, w) }, lw: 4096, shape: []int{1048576}},
			{label: "2-D 512x512, P=4x4", build: func(w int) *dist.Layout { return twoD(512, 4, w) }, lw: 128, shape: []int{512, 512}},
			{label: "2-D 2048x2048, P=16x16", build: func(w int) *dist.Layout { return twoD(2048, 16, w) }, lw: 128, shape: []int{2048, 2048}},
		}
	}
	var tables []*Table
	for _, c := range cfgs {
		t := &Table{
			ID:      "scale",
			Title:   fmt.Sprintf("Scaling: %s, CMS PACK breakdown (ms), mask 50%%", c.label),
			Columns: []string{"W", "total", "local", "prs", "m2m"},
			Notes: []string{
				"fixed local size across the two machine sizes; expected shape: on 256 processors communication dominates",
			},
		}
		gen := mask.NewRandom(0.5, s.Seed+42, c.shape...)
		ws := []int{1, 8, c.lw}
		for _, w := range ws {
			met := s.measure(Run{Layout: c.build(w), Gen: gen, Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: ModePack})
			t.AddRow(fmt.Sprint(w), ms(met.TotalMS), ms(met.LocalMS), ms(met.PRSMS), ms(met.M2MMS))
		}
		tables = append(tables, t)
	}
	return tables
}

// prsPoint is one (P, M, algorithm) configuration of the PRS grid.
type prsPoint struct {
	p, m int
	algo comm.PRSAlgorithm
}

// prsKey identifies a PRS point in the suite's shared memo cache (the
// "prs|" prefix keeps it disjoint from the PACK/UNPACK run keys).
func (s Suite) prsKey(pt prsPoint) string {
	return fmt.Sprintf("prs|%d|%d|%v|%v", pt.p, pt.m, pt.algo, s.Sched)
}

// prsExecute runs one bare PRS collective and books it like any other
// machine execution — including the TraceDir dump, so a traced sweep
// covers the PRS grid too. Like execute, the point carries pprof
// labels identifying it in a -cpuprofile.
func (s Suite) prsExecute(pt prsPoint) (met Metrics) {
	labels := pprof.Labels("op", "prs", "algo", fmt.Sprint(pt.algo),
		"procs", strconv.Itoa(pt.p), "veclen", strconv.Itoa(pt.m))
	pprof.Do(s.labelCtxOrBackground(), labels, func(context.Context) {
		met = s.prsExecutePoint(pt)
	})
	return met
}

func (s Suite) prsExecutePoint(pt prsPoint) Metrics {
	traced := s.TraceDir != ""
	machine := sim.MustNew(sim.Config{
		Procs: pt.p, Params: sim.CM5Params(), Sched: s.Sched,
		Record: traced, Trace: traced,
	})
	err := machine.Run(func(proc *sim.Proc) {
		vec := make([]int, pt.m)
		for i := range vec {
			vec[i] = proc.Rank() + i
		}
		comm.World(proc).PrefixReductionSum(vec, pt.algo)
	})
	if err != nil {
		panic(err)
	}
	m := metricsFrom(machine)
	s.counters.record(m)
	if traced {
		s.dumpTrace(s.prsKey(pt), trace.CaptureMachine(machine))
	}
	return m
}

// PRS regenerates the prefix-reduction-sum comparison the paper refers
// to (Section 7 and reference [6]): direct vs split vs the auto rule,
// across processor counts and vector lengths. The runs are bare
// collectives, not PACK/UNPACK points, so it does not go through
// measure; it follows the same two-phase shape as parallelize instead:
// the (P, M, algo) grid is prefetched into the shared cache across the
// worker pool, and the rows are assembled serially in grid order from
// the warm cache — byte-identical regardless of the worker count.
func (s Suite) PRS() []*Table {
	procs := []int{4, 16, 64, 256}
	vecs := []int{16, 256, 4096, 65536}
	if s.Quick {
		procs = []int{4, 16}
		vecs = []int{16, 1024}
	}
	algos := []comm.PRSAlgorithm{comm.PRSDirect, comm.PRSSplit, comm.PRSAuto}
	var grid []prsPoint
	for _, p := range procs {
		for _, m := range vecs {
			for _, algo := range algos {
				grid = append(grid, prsPoint{p: p, m: m, algo: algo})
			}
		}
	}
	if s.cache != nil && !s.replayOnly && (s.workerCount() > 1 || s.prefetchOnly) {
		var todo []int
		for i, pt := range grid {
			if !s.cache.peek(s.prsKey(pt)) {
				todo = append(todo, i)
			}
		}
		s.withStage("prefetch", func(ctx context.Context) {
			ps := s
			ps.labelCtx = ctx
			ps.forEach(len(todo), func(j int) {
				pt := grid[todo[j]]
				ps.cache.put(ps.prsKey(pt), ps.prsExecute(pt))
			})
		})
	}
	if s.prefetchOnly {
		return nil
	}
	vals := make([]float64, len(grid))
	s.withStage("replay", func(ctx context.Context) {
		rs := s
		rs.labelCtx = ctx
		for i, pt := range grid {
			met, ok := Metrics{}, false
			if rs.cache != nil {
				met, ok = rs.cache.get(rs.prsKey(pt))
			}
			if !ok {
				met = rs.prsExecute(pt)
				if rs.cache != nil {
					rs.cache.put(rs.prsKey(pt), met)
				}
			}
			vals[i] = met.TotalMS
		}
	})

	t := &Table{
		ID:      "prs",
		Title:   "Vector prefix-reduction-sum time (ms) by algorithm",
		Columns: []string{"P", "M", "direct", "split", "auto"},
		Notes: []string{
			"expected shape: direct wins for small M or small P; split wins as both grow (its bandwidth term is P-independent)",
		},
	}
	i := 0
	for range procs {
		for range vecs {
			row := []string{fmt.Sprint(grid[i].p), fmt.Sprint(grid[i].m)}
			for range algos {
				row = append(row, ms(vals[i]))
				i++
			}
			t.AddRow(row...)
		}
	}
	return []*Table{t}
}

// Registry maps experiment ids to their generator functions.
func (s Suite) Registry() map[string]func() []*Table {
	return map[string]func() []*Table{
		"fig3":       s.Fig3,
		"fig4":       s.Fig4,
		"fig5":       s.Fig5,
		"table1":     s.Table1,
		"table2":     s.Table2,
		"scale":      s.Scale,
		"prs":        s.PRS,
		"ablate":     s.Ablations,
		"model":      s.Model,
		"faults":     s.FaultSweep,
		"planrepeat": s.PlanRepeat,
		"realworld":  s.RealWorld,
		"scale1k":    s.Scale1K,
	}
}

// hiddenExperiments are registered but excluded from ExperimentIDs (and
// hence from "-exp all" and the perf-regression baseline): they are not
// paper artifacts, and keeping them out preserves the bit-for-bit
// stability of the canonical BENCH reports. They run by explicit id
// (packbench -exp faults).
var hiddenExperiments = map[string]bool{"faults": true, "realworld": true, "scale1k": true}

// ExperimentIDs returns the canonical registry keys in stable order.
func (s Suite) ExperimentIDs() []string {
	reg := s.Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		if !hiddenExperiments[id] && id != "planrepeat" {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	// planrepeat always runs last: the perf report's per-experiment
	// virtual_ms figures are deltas of one cumulative float sum, so
	// inserting a new experiment mid-order would shift the running
	// total and perturb every later row's delta by an ulp — breaking
	// bit-exact packdiff comparisons against pre-v5 baselines for
	// experiments that themselves never changed.
	if _, ok := reg["planrepeat"]; ok && !hiddenExperiments["planrepeat"] {
		ids = append(ids, "planrepeat")
	}
	return ids
}

// All runs every experiment in registry order.
func (s Suite) All() []*Table {
	var tables []*Table
	for _, id := range s.ExperimentIDs() {
		tables = append(tables, s.Registry()[id]()...)
	}
	return tables
}
