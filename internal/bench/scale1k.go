package bench

import (
	"fmt"

	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
	"packunpack/internal/trace"
)

// Scale1K extends the scaling sweep past the paper's P=256 ceiling to
// P=1024 (hidden experiment "scale1k", the ROADMAP scale target) with
// the online aggregating sink attached in place of full event
// retention: the machine streams every trace event through
// trace.AggSink, which folds it into per-rank/per-phase rollups and
// retains nothing — event-storage memory stays proportional to the
// active traffic pattern, not the event count, which is what makes
// observability at this scale affordable at all. The experiment is
// self-checking: the rollup totals must reconcile exactly with the
// machine's Stats counters, or the engine panics.
//
// Hidden (run with `packbench -exp scale1k`) so the canonical BENCH
// reports and the packdiff baselines keep their exact shape. The
// cooperative scheduler is forced regardless of Suite.Sched: at P=1024
// a goroutine per rank oversubscribes any host, and the ISSUE's memory
// bound is defined over the deterministic coop event order.
func (s Suite) Scale1K() []*Table {
	const procs = 1024
	n := 1 << 20
	if s.Quick {
		n = 1 << 18
	}
	t := &Table{
		ID:      "scale1k",
		Title:   fmt.Sprintf("P=1024 observability scale: 1-D PACK breakdown (ms), N=%d, mask 50%%, aggregating sink", n),
		Columns: []string{"scheme", "total", "local", "prs", "m2m", "msgs", "words", "agg cells", "events folded"},
		Notes: []string{
			"the aggregating sink retains zero events: 'agg cells' is its whole variable-size state, 'events folded' what full retention would have stored",
			"rollup totals reconcile exactly with the machines' Stats counters (self-checked)",
		},
	}
	gen := mask.NewRandom(0.5, s.Seed+99, n)
	for _, scheme := range []pack.Scheme{pack.SchemeCSS, pack.SchemeCMS} {
		agg := trace.NewAggSink(procs)
		met, err := Run{
			Layout: oneD(n, procs, 64), Gen: gen,
			Opt: pack.Options{Scheme: scheme}, Mode: ModePack,
			Sched: sim.SchedCooperative, Sink: agg,
		}.Execute()
		if err != nil {
			panic(fmt.Sprintf("bench: scale1k: %v", err))
		}
		aggMsgs, aggWords := agg.Totals()
		if aggMsgs != met.Msgs || aggWords != met.Words {
			panic(fmt.Sprintf("bench: scale1k %s: rollup totals (%d msgs, %d words) do not reconcile with stats (%d msgs, %d words)",
				scheme, aggMsgs, aggWords, met.Msgs, met.Words))
		}
		t.AddRow(scheme.String(), ms(met.TotalMS), ms(met.LocalMS), ms(met.PRSMS), ms(met.M2MMS),
			fmt.Sprint(met.Msgs), fmt.Sprint(met.Words), fmt.Sprint(agg.Cells()), fmt.Sprint(agg.EventsSeen()))
	}
	return []*Table{t}
}
