package bench

import (
	"fmt"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
)

// faultLevel is one row group of the fault-sweep ablation.
type faultLevel struct {
	name string
	cfg  *sim.FaultConfig // nil = exact fault-free machine
}

// faultLevels are the sweep's injection intensities. The seeds are
// fixed so the table is deterministic; the rates roughly quadruple per
// step.
func faultLevels() []faultLevel {
	return []faultLevel{
		{"off", nil},
		{"low", &sim.FaultConfig{Seed: 1001, Drop: 0.01, Dup: 0.01, Reorder: 0.02, Delay: 0.02, Stall: 0.005}},
		{"med", &sim.FaultConfig{Seed: 1002, Drop: 0.04, Dup: 0.04, Reorder: 0.08, Delay: 0.08, Stall: 0.02}},
		{"high", &sim.FaultConfig{Seed: 1003, Drop: 0.15, Dup: 0.15, Reorder: 0.25, Delay: 0.25, Stall: 0.05}},
	}
}

// FaultSweep is the fault-injection ablation (packbench -exp faults):
// PACK under increasing fault intensity, per scheme, with the virtual
// slowdown and the injection/recovery counters. It is a robustness
// experiment, not a paper artifact, so it is registered as a hidden
// experiment and never contributes to the canonical BENCH reports.
func (s Suite) FaultSweep() []*Table { return s.parallelize(Suite.faultSweep) }

func (s Suite) faultSweep() []*Table {
	n := 32768
	if s.Quick {
		n = 4096
	}
	const procs = 8
	layout := dist.MustLayout(dist.Dim{N: n, P: procs, W: n / procs})
	gen := mask.NewRandom(0.5, s.Seed+777, n)

	t := &Table{
		ID:      "faults",
		Title:   fmt.Sprintf("PACK under fault injection (1-D N=%d, P=%d, 50%% mask)", n, procs),
		Columns: []string{"faults", "scheme", "total ms", "m2m ms", "injected", "retried", "deduped", "residual"},
		Notes: []string{
			"reliable transport: sequence-numbered sends, timeout/retry, receiver dedup",
			"results stay byte-identical to the fault-free run at every level (fault suite)",
			"virtual times grow with the retry/stall overhead; 'off' is the exact fault-free machine",
		},
	}
	for _, lvl := range faultLevels() {
		for _, scheme := range packSchemes {
			met := s.measure(Run{
				Layout: layout, Gen: gen,
				Opt:    pack.Options{Scheme: scheme},
				Mode:   ModePack,
				Faults: lvl.cfg,
			})
			var injected, retried, deduped, residual int64
			if met.FaultStats != nil {
				injected = met.FaultStats.Injected()
				retried = met.FaultStats.Retries
				deduped = met.FaultStats.Dedups
				residual = met.FaultStats.Residual
			}
			t.AddRow(lvl.name, scheme.String(), ms(met.TotalMS), ms(met.M2MMS),
				fmt.Sprint(injected), fmt.Sprint(retried), fmt.Sprint(deduped), fmt.Sprint(residual))
		}
	}
	return []*Table{t}
}
