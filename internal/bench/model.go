package bench

import (
	"fmt"

	"packunpack/internal/mask"
	"packunpack/internal/pack"
)

// Model regenerates Section 6.4's local-computation model check. The
// paper predicts that the compact storage scheme beats the simple
// storage scheme on local computation when
//
//	L + C <= 3*E_i   i.e.   1 + 1/W <= 3*delta
//
// (L local size, C = L/W slices, E_i = delta*L selected elements), so
// for each block size W there is a predicted minimum mask density
// delta*(W) = (1 + 1/W)/3 above which CSS should win. The experiment
// tabulates that prediction against the measured winner across the
// density grid, plus the analogous measurement for CMS.
func (s Suite) Model() []*Table { return s.parallelize(Suite.model) }

func (s Suite) model() []*Table {
	n := 16384
	if s.Quick {
		n = 4096
	}
	shape := []int{n}
	densities := []float64{0.10, 0.30, 0.50, 0.70, 0.90}
	if s.Quick {
		densities = []float64{0.10, 0.50, 0.90}
	}

	t := &Table{
		ID:      "model",
		Title:   fmt.Sprintf("Section 6.4 model check: min density at which CSS/CMS beat SSS on local computation, 1-D N=%d, P=16", n),
		Columns: []string{"W", "model delta*(W)", "measured CSS", "measured CMS"},
		Notes: []string{
			"model: CSS wins when density >= (1+1/W)/3 (paper eq. in 6.4.1); '-' = no density in the grid wins",
			"expected shape: both thresholds fall as W grows; the model's flat-delta world is optimistic for CSS at small W",
		},
	}

	// In collect mode the winner predicate cannot be evaluated, so the
	// whole density sweep is enumerated for the prefetcher (a superset
	// of what the serial replay will read; see Suite.beta).
	minWinningDensity := func(w int, scheme pack.Scheme) string {
		for _, d := range densities {
			gen := mask.NewRandom(d, s.Seed+uint64(d*100), shape...)
			sss := s.measure(Run{Layout: oneD(n, 16, w), Gen: gen, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModePack})
			ch := s.measure(Run{Layout: oneD(n, 16, w), Gen: gen, Opt: pack.Options{Scheme: scheme}, Mode: ModePack})
			if s.collect != nil {
				continue
			}
			if ch.LocalMS <= sss.LocalMS {
				return fmt.Sprintf("%.0f%%", d*100)
			}
		}
		return "-"
	}

	for _, w := range []int{1, 2, 4, 8, 16, 64, 256} {
		if w > n/16 {
			continue
		}
		model := (1 + 1/float64(w)) / 3
		modelStr := fmt.Sprintf("%.0f%%", model*100)
		if model > 1 {
			modelStr = ">100% (never)"
		}
		t.AddRow(fmt.Sprint(w), modelStr, minWinningDensity(w, pack.SchemeCSS), minWinningDensity(w, pack.SchemeCMS))
	}
	return []*Table{t}
}
