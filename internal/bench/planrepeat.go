package bench

import (
	"fmt"
	"time"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
)

// This file is the repeat-traffic experiment of the PackPlan
// compilation layer: the same mask applied many times per machine —
// the halo-exchange / stream-compaction workload the plan cache
// targets. The virtual table (planrepeat) reports amortized per-call
// cost and cache hit rate inside the cost model; MeasurePlanRepeat
// additionally measures host wall clock for the perf report's
// "plan_repeat" object and the make planbench gate.

// planRepeatCalls is how many times each measured machine repeats the
// operation (quick and full mode). One compile per rank then
// calls-1 cache hits: hit rate (calls-1)/calls.
func (s Suite) planRepeatCalls() int {
	if s.Quick {
		return 120
	}
	return 200
}

// planRepeatArray returns the experiment's array configuration.
func (s Suite) planRepeatArray() (n, p int, ws []int) {
	if s.Quick {
		return 4096, 16, []int{16, 256}
	}
	return 65536, 16, []int{64, 4096}
}

// PlanRepeat regenerates the repeat-traffic comparison: amortized
// virtual time per call, unplanned versus planned, for every scheme of
// both operations.
func (s Suite) PlanRepeat() []*Table { return s.parallelize(Suite.planRepeat) }

func (s Suite) planRepeat() []*Table {
	n, p, ws := s.planRepeatArray()
	calls := s.planRepeatCalls()
	gen := mask.NewRandom(0.5, s.Seed+99, n)

	type opSpec struct {
		mode    Mode
		schemes []pack.Scheme
	}
	ops := []opSpec{
		{ModePack, []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS, pack.SchemeCMS}},
		{ModeUnpack, []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS}},
	}

	t := &Table{
		ID:      "planrepeat",
		Title:   fmt.Sprintf("Repeat traffic (same mask x%d): amortized cost per call (ms), 1-D N=%d, P=%d, 50%% mask", calls, n, p),
		Columns: []string{"W", "op", "scheme", "unplanned/call", "planned/call", "speedup", "hit rate"},
		Notes: []string{
			"planned: Options.Plans cache — call 1 compiles (ranking + run coalescing), every repeat executes bulk copies after a two-word collective lookup",
			fmt.Sprintf("hit rate per machine is (calls-1)/calls = %d/%d per rank; the wall-clock amortization gate lives in the perf report's plan_repeat object", calls-1, calls),
			"expected shape: speedup grows with W (fewer, longer runs) and is largest where ranking dominates the unplanned call",
		},
	}
	for _, w := range ws {
		layout := dist.MustLayout(dist.Dim{N: n, P: p, W: w})
		for _, op := range ops {
			for _, scheme := range op.schemes {
				base := Run{Layout: layout, Gen: gen, Opt: pack.Options{Scheme: scheme}, Mode: op.mode, Repeat: calls}
				un := s.measure(base)
				planned := base
				planned.Planned = true
				pl := s.measure(planned)
				speedup, hit := 0.0, 0.0
				if pl.TotalMS > 0 {
					speedup = un.TotalMS / pl.TotalMS
				}
				if v, ok := pl.Derived["plan_hit_rate"]; ok {
					hit = v
				}
				t.AddRow(fmt.Sprint(w), op.mode.String(), scheme.String(),
					ms(un.TotalMS/float64(calls)), ms(pl.TotalMS/float64(calls)),
					fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%.4f", hit))
			}
		}
	}
	return []*Table{t}
}

// PlanRepeatPerf is the wall-clock amortization measurement of the
// plan cache (perf report "plan_repeat", schema v5): the same
// repeat-traffic machine measured unplanned and planned on the host
// clock. Wall figures are per call, from the best of Reps repetitions
// (minimum — the standard noise floor for throughput measurements);
// the virtual figures and the hit rate come from the cost model and
// are exactly reproducible.
type PlanRepeatPerf struct {
	Config          string  `json:"config"`
	Calls           int     `json:"calls"`
	Reps            int     `json:"reps"`
	UnplannedWallMS float64 `json:"unplanned_wall_ms_per_call"`
	PlannedWallMS   float64 `json:"planned_wall_ms_per_call"`
	WallSpeedup     float64 `json:"wall_speedup"`
	VirtualSpeedup  float64 `json:"virtual_speedup"`
	HitRate         float64 `json:"hit_rate"`
}

// Gate checks the acceptance thresholds of the repeat-traffic
// experiment (make planbench): cache hit rate after warmup and
// amortized wall-time speedup of the planned path.
func (p PlanRepeatPerf) Gate(minHitRate, minWallSpeedup float64) error {
	if p.HitRate < minHitRate {
		return fmt.Errorf("plan-cache hit rate %.4f below gate %.4f", p.HitRate, minHitRate)
	}
	if p.WallSpeedup < minWallSpeedup {
		return fmt.Errorf("planned wall speedup %.2fx below gate %.2fx", p.WallSpeedup, minWallSpeedup)
	}
	return nil
}

// MeasurePlanRepeat measures the representative repeat-traffic
// configuration (PACK under the default standard scheme at the block
// distribution) on the host clock, bypassing the suite's memo cache:
// each of reps repetitions executes both machines fresh and the
// minimum wall per variant is kept.
func (s Suite) MeasurePlanRepeat() PlanRepeatPerf {
	n, p, ws := s.planRepeatArray()
	w := ws[len(ws)-1]
	calls := s.planRepeatCalls()
	layout := dist.MustLayout(dist.Dim{N: n, P: p, W: w})
	gen := mask.NewRandom(0.5, s.Seed+99, n)
	base := Run{Layout: layout, Gen: gen, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModePack, Repeat: calls, Sched: s.Sched}

	const reps = 3
	out := PlanRepeatPerf{
		Config: fmt.Sprintf("pack SSS, 1-D N=%d, P=%d, W=%d, 50%% mask", n, p, w),
		Calls:  calls,
		Reps:   reps,
	}
	var unVirt, plVirt float64
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		un, err := base.Execute()
		unWall := time.Since(start).Seconds() * 1000 / float64(calls)
		if err != nil {
			panic(err)
		}
		planned := base
		planned.Planned = true
		start = time.Now()
		pl, err := planned.Execute()
		plWall := time.Since(start).Seconds() * 1000 / float64(calls)
		if err != nil {
			panic(err)
		}
		if rep == 0 || unWall < out.UnplannedWallMS {
			out.UnplannedWallMS = unWall
		}
		if rep == 0 || plWall < out.PlannedWallMS {
			out.PlannedWallMS = plWall
		}
		unVirt, plVirt = un.TotalMS, pl.TotalMS
		out.HitRate = 0
		if pl.PlanStats != nil {
			out.HitRate = pl.PlanStats.HitRate()
		}
	}
	if out.PlannedWallMS > 0 {
		out.WallSpeedup = out.UnplannedWallMS / out.PlannedWallMS
	}
	if plVirt > 0 {
		out.VirtualSpeedup = unVirt / plVirt
	}
	return out
}
