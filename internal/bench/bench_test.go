package bench

import (
	"bytes"
	"strings"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
)

func layout1d(n, p, w int) *dist.Layout {
	return dist.MustLayout(dist.Dim{N: n, P: p, W: w})
}

func TestRunExecuteVerified(t *testing.T) {
	l := layout1d(256, 4, 4)
	gen := mask.NewRandom(0.4, 3, 256)
	for _, mode := range []Mode{ModePack, ModeUnpack, ModeRed1, ModeRed2, ModeUnpackRedist} {
		for _, scheme := range []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS} {
			if (mode == ModeUnpack || mode == ModeUnpackRedist) && scheme == pack.SchemeCMS {
				continue
			}
			r := Run{Layout: l, Gen: gen, Opt: pack.Options{Scheme: scheme}, Mode: mode, Verify: true}
			met, err := r.Execute()
			if err != nil {
				t.Fatalf("mode %v scheme %v: %v", mode, scheme, err)
			}
			if met.TotalMS <= 0 {
				t.Fatalf("mode %v: no time measured", mode)
			}
			if met.Size <= 0 {
				t.Fatalf("mode %v: no size", mode)
			}
			if met.Words <= 0 || met.Msgs <= 0 {
				t.Fatalf("mode %v: no traffic recorded", mode)
			}
		}
	}
}

func TestMetricsBreakdownConsistency(t *testing.T) {
	l := layout1d(512, 4, 8)
	gen := mask.NewRandom(0.5, 5, 512)
	met, err := Run{Layout: l, Gen: gen, Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: ModePack}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if met.LocalMS <= 0 || met.PRSMS <= 0 || met.M2MMS <= 0 {
		t.Fatalf("missing breakdown component: %+v", met)
	}
	if met.RedistMS != 0 {
		t.Fatalf("plain pack must not book redist time: %+v", met)
	}
	// Components are per-processor maxima of disjoint phases; each
	// must be below the total.
	for _, v := range []float64{met.LocalMS, met.PRSMS, met.M2MMS} {
		if v > met.TotalMS {
			t.Fatalf("component %v exceeds total %v", v, met.TotalMS)
		}
	}
	// Redistribution pipelines must book redist time.
	met2, err := Run{Layout: layout1d(512, 4, 1), Gen: gen, Mode: ModeRed2}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if met2.RedistMS <= 0 {
		t.Fatalf("Red.2 booked no redistribution time: %+v", met2)
	}
}

func TestRunCustomParams(t *testing.T) {
	l := layout1d(64, 4, 4)
	gen := mask.NewRandom(0.5, 5, 64)
	free, err := Run{Layout: l, Gen: gen, Mode: ModePack, Params: sim.Params{Tau: 0, Mu: 0, Delta: 0.0001}}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	paid, err := Run{Layout: l, Gen: gen, Mode: ModePack}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if free.TotalMS >= paid.TotalMS {
		t.Fatalf("near-free machine (%v) not cheaper than CM-5 params (%v)", free.TotalMS, paid.TotalMS)
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{ModePack: "pack", ModeUnpack: "unpack", ModeRed1: "red1", ModeRed2: "red2", Mode(7): "Mode(7)"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q", int(m), m.String())
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}, Notes: []string{"hello"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"[x] demo", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestMsFormatting(t *testing.T) {
	if ms(123.456) != "123.5" || ms(12.345) != "12.35" || ms(1.2345) != "1.234" {
		t.Fatalf("ms formats: %s %s %s", ms(123.456), ms(12.345), ms(1.2345))
	}
}

func TestQuickSuiteProducesAllArtifacts(t *testing.T) {
	s := NewSuite(true, 1)
	reg := s.Registry()
	ids := s.ExperimentIDs()
	// The canonical id list excludes hidden experiments (run by
	// explicit id only), but every hidden id must still resolve.
	if len(ids)+len(hiddenExperiments) != len(reg) {
		t.Fatalf("id list (%d) + hidden (%d) and registry (%d) out of sync",
			len(ids), len(hiddenExperiments), len(reg))
	}
	for _, id := range ids {
		if hiddenExperiments[id] {
			t.Fatalf("hidden experiment %s leaked into the canonical id list", id)
		}
	}
	for id := range hiddenExperiments {
		if _, ok := reg[id]; !ok {
			t.Fatalf("hidden experiment %s missing from registry", id)
		}
	}
	for _, id := range []string{"fig3", "fig4", "fig5", "table1", "table2", "scale", "prs", "ablate", "model"} {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	tables := s.All()
	if len(tables) < 8 {
		t.Fatalf("suite produced only %d tables", len(tables))
	}
	var buf bytes.Buffer
	RenderAll(&buf, tables)
	if buf.Len() == 0 {
		t.Fatal("nothing rendered")
	}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
			t.Fatalf("malformed table %+v", tb)
		}
	}
}

// TestPaperShapes asserts the qualitative claims of the paper's
// evaluation on small configurations — the reproduction's key
// regression test.
func TestPaperShapes(t *testing.T) {
	n := 4096
	gen50 := mask.NewRandom(0.5, 2, n)
	localOf := func(scheme pack.Scheme, w int) float64 {
		met, err := Run{Layout: layout1d(n, 16, w), Gen: gen50, Opt: pack.Options{Scheme: scheme}, Mode: ModePack}.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return met.LocalMS
	}

	t.Run("local-comp-grows-as-W-shrinks", func(t *testing.T) {
		for _, scheme := range []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS, pack.SchemeCMS} {
			cyc, blk := localOf(scheme, 1), localOf(scheme, n/16)
			if cyc <= blk {
				t.Errorf("%v: cyclic local comp (%v) should exceed block (%v)", scheme, cyc, blk)
			}
		}
	})

	t.Run("SSS-wins-at-cyclic", func(t *testing.T) {
		sss, css, cms := localOf(pack.SchemeSSS, 1), localOf(pack.SchemeCSS, 1), localOf(pack.SchemeCMS, 1)
		if sss >= css || sss >= cms {
			t.Errorf("at W=1 SSS (%v) should beat CSS (%v) and CMS (%v)", sss, css, cms)
		}
	})

	t.Run("CMS-wins-at-block-high-density", func(t *testing.T) {
		gen90 := mask.NewRandom(0.9, 2, n)
		tot := func(scheme pack.Scheme) float64 {
			met, err := Run{Layout: layout1d(n, 16, n/16), Gen: gen90, Opt: pack.Options{Scheme: scheme}, Mode: ModePack}.Execute()
			if err != nil {
				t.Fatal(err)
			}
			return met.TotalMS
		}
		sss, cms := tot(pack.SchemeSSS), tot(pack.SchemeCMS)
		if cms >= sss {
			t.Errorf("at block/90%% CMS total (%v) should beat SSS (%v)", cms, sss)
		}
	})

	t.Run("redistribution-loses-in-1d", func(t *testing.T) {
		l := layout1d(n, 16, 1)
		sss, err := Run{Layout: l, Gen: gen50, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModePack}.Execute()
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeRed1, ModeRed2} {
			red, err := Run{Layout: l, Gen: gen50, Mode: mode}.Execute()
			if err != nil {
				t.Fatal(err)
			}
			if red.TotalMS <= sss.TotalMS {
				t.Errorf("1-D cyclic: %v (%v) should not beat SSS (%v)", mode, red.TotalMS, sss.TotalMS)
			}
		}
	})

	t.Run("red1-wins-in-2d-low-density", func(t *testing.T) {
		l := dist.MustLayout(dist.Dim{N: 128, P: 4, W: 1}, dist.Dim{N: 128, P: 4, W: 1})
		gen10 := mask.NewRandom(0.1, 2, 128, 128)
		sss, err := Run{Layout: l, Gen: gen10, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModePack}.Execute()
		if err != nil {
			t.Fatal(err)
		}
		red1, err := Run{Layout: l, Gen: gen10, Mode: ModeRed1}.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if red1.TotalMS >= sss.TotalMS {
			t.Errorf("2-D cyclic low density: Red.1 (%v) should beat SSS (%v)", red1.TotalMS, sss.TotalMS)
		}
	})

	t.Run("unpack-comm-exceeds-pack-comm", func(t *testing.T) {
		l := layout1d(n, 16, 16)
		packM, err := Run{Layout: l, Gen: gen50, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModePack}.Execute()
		if err != nil {
			t.Fatal(err)
		}
		unpackM, err := Run{Layout: l, Gen: gen50, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModeUnpack}.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if unpackM.M2MMS <= packM.M2MMS {
			t.Errorf("UNPACK two-phase comm (%v) should exceed PACK comm (%v)", unpackM.M2MMS, packM.M2MMS)
		}
	})
}

// TestScaleCommunicationDominates asserts the Section 7 scaling claim:
// with the local size fixed, the communication share of PACK grows
// substantially from 16 to 256 processors.
func TestScaleCommunicationDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test skipped in -short mode")
	}
	commShare := func(n, p int) float64 {
		gen := mask.NewRandom(0.5, 3, n)
		met, err := Run{Layout: layout1d(n, p, 16), Gen: gen,
			Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: ModePack}.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return (met.PRSMS + met.M2MMS) / met.TotalMS
	}
	small := commShare(16384, 16)   // local size 1024
	large := commShare(262144, 256) // same local size, 16x machine
	if large <= small {
		t.Fatalf("communication share did not grow with the machine: P=16 %.2f vs P=256 %.2f", small, large)
	}
}

// TestTablesWellFormed checks structural integrity of every quick-mode
// artifact: consistent column counts and non-empty cells.
func TestTablesWellFormed(t *testing.T) {
	s := NewSuite(true, 1)
	for _, tb := range s.All() {
		for ri, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("[%s] %s: row %d has %d cells for %d columns", tb.ID, tb.Title, ri, len(row), len(tb.Columns))
			}
			for ci, cell := range row {
				if cell == "" {
					t.Errorf("[%s] %s: empty cell (%d,%d)", tb.ID, tb.Title, ri, ci)
				}
			}
		}
	}
}

// TestSuiteCacheHits verifies that the measurement cache actually
// dedupes repeated configurations (fig3 and fig4 share their runs).
func TestSuiteCacheHits(t *testing.T) {
	s := NewSuite(true, 1)
	s.Fig3()
	before := s.cache.len()
	s.Fig4() // same sweep, different columns
	if s.cache.len() != before {
		t.Fatalf("fig4 added %d cache entries; it should reuse fig3's runs", s.cache.len()-before)
	}
}
