package bench

import (
	"bytes"
	"testing"
	"time"
)

// TestWallMSResolution pins the satellite fix: wall times must keep
// sub-microsecond resolution. The old formula
// float64(wall.Microseconds())/1000 truncated 1.5µs to 0.001ms (and
// anything under 1µs to zero).
func TestWallMSResolution(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want float64
	}{
		{1500 * time.Nanosecond, 0.0015},
		{999 * time.Nanosecond, 0.000999},
		{123456789 * time.Nanosecond, 123.456789},
		{time.Millisecond, 1},
		{0, 0},
	}
	for _, c := range cases {
		if got := wallMS(c.d); got != c.want {
			t.Errorf("wallMS(%v) = %v, want %v", c.d, got, c.want)
		}
		if trunc := float64(c.d.Microseconds()) / 1000; c.d == 1500*time.Nanosecond && trunc == c.want {
			t.Errorf("old truncating formula unexpectedly exact for %v", c.d)
		}
	}
}

func TestSealSamples(t *testing.T) {
	p := ExperimentPerf{ID: "x", WallMS: 99}
	p.sealSamples([]float64{3, 1, 2, 5, 4})
	if p.WallMS != 3 {
		t.Errorf("WallMS = %v, want median 3", p.WallMS)
	}
	if p.WallStats == nil || p.WallStats.Samples != 5 || p.WallStats.MedianMS != 3 ||
		p.WallStats.MinMS != 1 || p.WallStats.MaxMS != 5 || p.WallStats.MADMS != 1 {
		t.Errorf("WallStats = %+v", p.WallStats)
	}
	if len(p.WallSamplesMS) != 5 || p.WallSamplesMS[0] != 3 {
		t.Errorf("samples not preserved in order: %v", p.WallSamplesMS)
	}
}

// TestRunInstrumentedSamples checks the repeated-sample contract: N
// replay samples on the experiment row, one on the prefetch row,
// headline wall = median, and no extra machine runs from sampling.
func TestRunInstrumentedSamples(t *testing.T) {
	s := NewSuite(true, 1)
	s.Workers = 1
	s.Samples = 3
	tables, perfs, err := s.RunInstrumented("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if len(perfs) != 2 {
		t.Fatalf("want prefetch+replay rows, got %d", len(perfs))
	}
	pre, rep := perfs[0], perfs[1]
	if pre.ID != "fig3/prefetch" || rep.ID != "fig3" {
		t.Fatalf("row ids: %q, %q", pre.ID, rep.ID)
	}
	if got := len(rep.WallSamplesMS); got != 3 {
		t.Fatalf("replay samples = %d, want 3", got)
	}
	if rep.WallStats == nil || rep.WallStats.Samples != 3 {
		t.Fatalf("replay WallStats = %+v", rep.WallStats)
	}
	if len(pre.WallSamplesMS) != 1 || pre.WallStats.Samples != 1 {
		t.Fatalf("prefetch must carry exactly one sample: %+v", pre.WallStats)
	}
	if rep.MachineRuns != 0 {
		t.Fatalf("replay ran %d machines; sampling must stay warm-cache only", rep.MachineRuns)
	}
	if pre.MachineRuns == 0 {
		t.Fatal("prefetch ran no machines")
	}
	if rep.WallMS != rep.WallStats.MedianMS {
		t.Fatalf("headline wall %v != median %v", rep.WallMS, rep.WallStats.MedianMS)
	}

	// Sampling must not change the rendered tables: compare against a
	// single-sample suite.
	s2 := NewSuite(true, 1)
	s2.Workers = 1
	tables2, _, err := s2.RunInstrumented("fig3")
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	RenderAll(&got, tables)
	RenderAll(&want, tables2)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("sampled run rendered different tables than single-sample run")
	}
}

func TestSumPerfWallSumsMedians(t *testing.T) {
	a := ExperimentPerf{ID: "a"}
	a.sealSamples([]float64{1, 10, 2}) // median 2
	b := ExperimentPerf{ID: "b"}
	b.sealSamples([]float64{5}) // median 5
	total := SumPerf([]ExperimentPerf{a, b})
	if total.WallMS != 7 {
		t.Fatalf("total wall = %v, want 7", total.WallMS)
	}
	if total.WallStats != nil || total.WallSamplesMS != nil {
		t.Fatal("total must not carry sample fields")
	}
}
