package bench

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"packunpack/internal/sim"
)

// This file is the host-parallel sweep engine. Experiment points are
// independent — masks are pure functions of (seed, global index) and
// every Run executes on its own sim.Machine with its own virtual
// clocks — so the engine fans them out across a bounded worker pool.
//
// Determinism invariant (DESIGN.md §7): host parallelism must never
// change a single rendered byte. The engine guarantees that by
// construction: a generator is first dry-run in "collect" mode to
// discover its measurement grid (tables discarded), the grid is
// executed concurrently into the shared cache, and then the generator
// is replayed serially against the warm cache, producing exactly the
// rows a fully serial run would.

// runCache memoizes Metrics by configuration key. It is safe for
// concurrent use: the sweep engine fills it from several workers at
// once.
type runCache struct {
	mu   sync.Mutex
	m    map[string]Metrics
	hits atomic.Int64
}

func newRunCache() *runCache { return &runCache{m: make(map[string]Metrics)} }

// get returns the cached metrics for key, counting a hit on success.
func (c *runCache) get(key string) (Metrics, bool) {
	c.mu.Lock()
	m, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return m, ok
}

// peek is get without hit accounting (used by the prefetcher to skip
// already-measured points).
func (c *runCache) peek(key string) bool {
	c.mu.Lock()
	_, ok := c.m[key]
	c.mu.Unlock()
	return ok
}

func (c *runCache) put(key string, m Metrics) {
	c.mu.Lock()
	c.m[key] = m
	c.mu.Unlock()
}

func (c *runCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// runKey identifies a measurement configuration for memoization. The
// scheduler mode is part of the key out of caution — the two modes
// produce identical metrics (the cross-mode equivalence contract), but
// a cache must never be able to blur a configuration distinction.
func runKey(r Run) string {
	return fmt.Sprintf("%s|%s|%v|%v|%v|%d|%v|%v|%v|%v|%v|%v|%v|%s|%d|%v",
		r.Layout.String(), r.Gen.Name(), r.Opt.Scheme, r.Mode, r.Opt.PRS,
		r.Opt.VectorW, r.Opt.WholeSliceScan, r.Opt.A2A, r.Opt.SeparatePrefixReduce,
		r.SelfSendFree, r.Params, r.Sched, r.Trace, r.Faults.String(),
		r.Repeat, r.Planned)
}

// runCollector accumulates the distinct experiment points a generator
// would measure, during the dry (collect) pass of the engine.
type runCollector struct {
	seen map[string]bool
	keys []string
	runs []Run
}

func (c *runCollector) add(key string, r Run) {
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.keys = append(c.keys, key)
	c.runs = append(c.runs, r)
}

// perfCounters aggregates host-side instrumentation of the suite's
// work for the -json perf report.
type perfCounters struct {
	mu        sync.Mutex
	runs      int64
	virtualMS float64
	// derived sums each registry metric (metrics.go) over the recorded
	// runs; the report divides by the run count for per-experiment
	// means.
	derived map[string]float64
}

func (c *perfCounters) record(m Metrics) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.runs++
	c.virtualMS += m.TotalMS
	if len(m.Derived) > 0 {
		if c.derived == nil {
			c.derived = make(map[string]float64, len(m.Derived))
		}
		for name, v := range m.Derived {
			c.derived[name] += v
		}
	}
	c.mu.Unlock()
}

// PerfTotals is a point-in-time snapshot of the suite's cumulative
// instrumentation; deltas between snapshots give per-experiment
// figures.
type PerfTotals struct {
	// MachineRuns counts machine executions, VirtualMS the virtual time
	// they produced (summed TotalMS — the cross-machine checksum).
	MachineRuns int64
	VirtualMS   float64
	CacheHits   int64
	// DerivedSum sums each derived metric over the runs (a copy; safe
	// to keep across later work).
	DerivedSum map[string]float64
}

// PerfSnapshot captures the suite's cumulative instrumentation: machine
// executions, the virtual time they produced, cache hits, and the
// summed derived metrics.
func (s Suite) PerfSnapshot() PerfTotals {
	var t PerfTotals
	if s.counters != nil {
		s.counters.mu.Lock()
		t.MachineRuns = s.counters.runs
		t.VirtualMS = s.counters.virtualMS
		if len(s.counters.derived) > 0 {
			t.DerivedSum = make(map[string]float64, len(s.counters.derived))
			for name, v := range s.counters.derived {
				t.DerivedSum[name] = v
			}
		}
		s.counters.mu.Unlock()
	}
	if s.cache != nil {
		t.CacheHits = s.cache.hits.Load()
	}
	return t
}

// workerCount resolves the Workers field: 0 means one worker per CPU.
func (s Suite) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.NumCPU()
}

// forEach runs fn(i) for every i in [0, n) across the suite's worker
// pool and blocks until all complete. With one worker (or n <= 1) it
// degenerates to a plain serial loop. A panic in a worker is re-raised
// in the caller after the pool drains, mirroring measure's serial
// panic-on-harness-bug behaviour.
func (s Suite) forEach(n int, fn func(int)) {
	w := s.workerCount()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// prefetch executes every not-yet-cached collected point across the
// worker pool, filling the shared cache. No output is produced here;
// the caller replays its generator against the warm cache afterwards.
func (s Suite) prefetch(col *runCollector) {
	var todo []int
	for i, key := range col.keys {
		if !s.cache.peek(key) {
			todo = append(todo, i)
		}
	}
	s.forEach(len(todo), func(j int) {
		i := todo[j]
		s.cache.put(col.keys[i], s.execute(col.runs[i]))
	})
}

// stageLabels returns the pprof label set for one engine stage, so a
// -cpuprofile attributes samples to the experiment and phase that
// spent them. The stage is "collect" (grid discovery dry pass),
// "prefetch" (grid execution across the worker pool), or "replay"
// (serial table rendering against the warm cache).
func (s Suite) stageLabels(stage string) pprof.LabelSet {
	if s.labelExp == "" {
		return pprof.Labels("stage", stage)
	}
	return pprof.Labels("experiment", s.labelExp, "stage", stage)
}

// withStage runs fn under the stage's pprof labels and hands fn the
// labelled context. Callers store that context in their Suite copy
// (labelCtx) so execute can layer the per-point labels on top of the
// stage labels — pprof.Do builds the goroutine's label map from the
// context it is given, so labelling from context.Background() would
// erase the stage labels instead of extending them. Labels are
// goroutine-scoped and inherited by goroutines spawned inside fn, so
// wrapping a stage here also labels its forEach worker pool.
func (s Suite) withStage(stage string, fn func(context.Context)) {
	pprof.Do(context.Background(), s.stageLabels(stage), fn)
}

// labelCtxOrBackground returns the suite's stage-labelled context.
func (s Suite) labelCtxOrBackground() context.Context {
	if s.labelCtx != nil {
		return s.labelCtx
	}
	return context.Background()
}

// runLabels identifies one experiment point in a CPU profile.
func runLabels(r Run) pprof.LabelSet {
	return pprof.Labels(
		"scheme", r.Opt.Scheme.String(),
		"op", r.Mode.String(),
		"procs", strconv.Itoa(r.Layout.Procs()),
	)
}

// execute runs one point and books it in the perf counters. The
// experiment grid is fixed, so an error is a programming error, not an
// input error — hence the panic. With a TraceDir configured, the point
// runs with the observability layer on and its Chrome trace is dumped
// there (tracedump.go); virtual results are identical either way.
// The machine execution carries per-point pprof labels (scheme, op,
// processor count) on top of the stage labels already on the
// goroutine.
func (s Suite) execute(r Run) (met Metrics) {
	pprof.Do(s.labelCtxOrBackground(), runLabels(r), func(context.Context) {
		met = s.executePoint(r)
	})
	return met
}

func (s Suite) executePoint(r Run) Metrics {
	// With a FlightDir configured, every measured machine carries the
	// always-on flight recorder; on an abort the bounded window is
	// dumped before the engine panic propagates (flightdump.go).
	if s.FlightDir != "" && r.Flight == nil {
		r.Flight = sim.MustNewFlightRecorder(r.Layout.Procs(), sim.DefaultFlightCap)
	}
	if s.TraceDir != "" {
		m, capture, err := r.ExecuteTrace()
		if err != nil {
			panic(fmt.Sprintf("bench: %v%s", err, s.dumpFlightOnAbort(runKey(r), r, err)))
		}
		s.counters.record(m)
		s.dumpTrace(runKey(r), capture)
		return m
	}
	m, err := r.Execute()
	if err != nil {
		panic(fmt.Sprintf("bench: %v%s", err, s.dumpFlightOnAbort(runKey(r), r, err)))
	}
	s.counters.record(m)
	return m
}

// parallelize is the engine's entry point: it dry-runs gen in collect
// mode to discover the measurement grid, prefetches the grid across
// the worker pool, and then replays gen serially against the warm
// cache. gen is a method expression (e.g. Suite.fig3) so the dry pass
// can run on a copy of the suite with collect mode switched on.
//
// The prefetch pass runs when there is host parallelism to exploit —
// or whenever the instrumented runner splits the phases (prefetchOnly
// / replayOnly), which it does at every worker count so that the
// per-experiment rows of the perf report measure exactly the same
// warm-cache replay regardless of -parallel (report.go). With a single
// worker there is no parallelism to feed, so the prefetch phase skips
// the dry pass (whose grid can over-collect on data-dependent
// generators) and simply runs the generator serially, discarding the
// tables: measure fills the shared cache with exactly the points the
// replay will read.
func (s Suite) parallelize(gen func(Suite) []*Table) []*Table {
	serialPrefetch := s.prefetchOnly && s.workerCount() <= 1
	if s.cache != nil && s.collect == nil && !s.replayOnly && !serialPrefetch &&
		(s.workerCount() > 1 || s.prefetchOnly) {
		dry := s
		dry.collect = &runCollector{seen: make(map[string]bool)}
		s.withStage("collect", func(ctx context.Context) {
			dry.labelCtx = ctx
			gen(dry) // tables discarded; may over-collect (see beta)
		})
		s.withStage("prefetch", func(ctx context.Context) {
			ps := s
			ps.labelCtx = ctx
			ps.prefetch(dry.collect)
		})
	}
	if s.prefetchOnly {
		if serialPrefetch {
			run := s
			run.prefetchOnly = false
			s.withStage("prefetch", func(ctx context.Context) {
				run.labelCtx = ctx
				gen(run)
			})
		}
		return nil
	}
	var tables []*Table
	s.withStage("replay", func(ctx context.Context) {
		rs := s
		rs.labelCtx = ctx
		tables = gen(rs)
	})
	return tables
}
