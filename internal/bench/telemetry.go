package bench

import "packunpack/internal/metrics"

// This file turns a raw telemetry snapshot into the handful of derived
// wall-clock figures the perf report carries (schema v6). The raw
// registry holds per-link and per-rank families; the report wants
// machine-level health indicators, so the derivation collapses them:
//
//	queue_depth_p99  p99 of the sampled SPSC queue depths — how deep
//	                 links run when the receiver lags (0 = drained).
//	park_rate        receiver parks per completed receive — how often
//	                 a Recv found its queues empty and had to sleep.
//	plan_hit_rate    plan-cache hits / lookups; present only when the
//	                 workload routed through a plan cache at all, so
//	                 plan-free reports keep their exact shape.
//
// All three are host measurements: they describe the machine the run
// executed on, never the cost model, and are reported for reading —
// cmd/packdiff skips them like every other wall figure.

// DeriveTelemetry computes the derived wall-clock figures from a
// registry snapshot. Families that never recorded are simply absent
// from the result; an empty snapshot yields nil.
func DeriveTelemetry(snap metrics.Snapshot) map[string]float64 {
	out := map[string]float64{}
	if f, ok := snap.Family("transport_queue_depth"); ok && len(f.Children) > 0 {
		out["queue_depth_p99"] = float64(f.Children[0].Quantile(0.99))
	}
	if parks, ok := snap.Family("transport_parks_total"); ok {
		if recvs, ok := snap.Family("transport_recvs_total"); ok && recvs.Total() > 0 {
			out["park_rate"] = float64(parks.Total()) / float64(recvs.Total())
		}
	}
	hits, okH := snap.Family("pack_plan_hits_total")
	misses, okM := snap.Family("pack_plan_misses_total")
	if okH || okM {
		var h, m int64
		if okH {
			h = hits.Total()
		}
		if okM {
			m = misses.Total()
		}
		if h+m > 0 {
			out["plan_hit_rate"] = float64(h) / float64(h+m)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// DerivedMeans averages each telemetry key over the curve's points that
// carry it — the summary row of a real-backend perf report (the
// real_world object keeps the per-point values). Nil when no point
// recorded anything.
func (r RealWorldResult) DerivedMeans() map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, pt := range r.Points {
		for k, v := range pt.Derived {
			sums[k] += v
			counts[k]++
		}
	}
	if len(sums) == 0 {
		return nil
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}
