package bench

import (
	"fmt"

	"packunpack/internal/sim"
	"packunpack/internal/trace"
)

// FlightDir support (packbench -flight-dir): every measured machine of
// a sweep runs with the always-on flight recorder attached, and when a
// machine aborts on one of the failure modes whose evidence lives in
// the recorder (structural deadlock, exhausted fault-retry budget —
// trace.ShouldDumpFlight), the bounded per-rank event window is written
// into the directory before the engine panic propagates. A healthy
// sweep writes nothing: the recorder costs one branch per event and the
// dump path never runs.

// dumpFlightOnAbort writes the aborted run's flight window under the
// suite's FlightDir and returns a message suffix naming the files (or
// the dump failure), empty when no dump applies. Stats are deliberately
// nil: the machine died before publishing them, and the dump renderers
// work from the event window alone.
func (s Suite) dumpFlightOnAbort(key string, r Run, err error) string {
	if s.FlightDir == "" || r.Flight == nil || !trace.ShouldDumpFlight(err) {
		return ""
	}
	params := r.Params
	if params == (sim.Params{}) {
		params = sim.CM5Params()
	}
	c := trace.FlightCapture(r.Layout.Procs(), params, nil, r.Flight)
	tracePath, summaryPath, derr := trace.DumpFlight(s.FlightDir, key, c, err)
	if derr != nil {
		return fmt.Sprintf(" (flight dump failed: %v)", derr)
	}
	return fmt.Sprintf(" (flight recorder dumped: %s and %s)", tracePath, summaryPath)
}
