package bench

import (
	"fmt"

	"packunpack/internal/comm"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
)

// Ablations measures the design choices DESIGN.md calls out: the
// linear permutation schedule, the stop-early slice rescan, the
// combined prefix-reduction-sum primitive, and the self-message
// policy.
func (s Suite) Ablations() []*Table { return s.parallelize(Suite.ablations) }

func (s Suite) ablations() []*Table {
	return []*Table{
		s.ablationSchedule(),
		s.ablationScanPolicy(),
		s.ablationCombinedPRS(),
		s.ablationSelfSend(),
		s.ablationVectorDist(),
		s.ablationUnpackRedist(),
	}
}

// ablationVectorDist measures the Section 6.2 footnote: the compact
// message scheme degrades as the result vector's block size shrinks
// (segments fragment at every vector block boundary).
func (s Suite) ablationVectorDist() *Table {
	n := 65536
	if s.Quick {
		n = 4096
	}
	shape := []int{n}
	t := &Table{
		ID:      "ablate",
		Title:   fmt.Sprintf("Ablation: result vector distribution, CMS PACK, 1-D N=%d, P=16, W=64", n),
		Columns: []string{"vector W", "total ms", "m2m ms", "words sent"},
		Notes: []string{
			"paper, Section 6.2: segments (and header words) grow as the result vector's blocks shrink",
		},
	}
	gen := mask.NewRandom(0.7, s.Seed+11, shape...)
	for _, wv := range []int{0, 64, 8, 1} {
		met := s.measure(Run{Layout: oneD(n, 16, 64), Gen: gen,
			Opt: pack.Options{Scheme: pack.SchemeCMS, VectorW: wv}, Mode: ModePack})
		label := fmt.Sprint(wv)
		if wv == 0 {
			label = "block"
		}
		t.AddRow(label, ms(met.TotalMS), ms(met.M2MMS), fmt.Sprint(met.Words))
	}
	return t
}

// ablationUnpackRedist measures the Section 6.3 claim that the
// redistribution idea is not feasible for UNPACK (it needs two
// redistribution steps because the result array must come back in the
// original distribution).
func (s Suite) ablationUnpackRedist() *Table {
	n := 16384
	if s.Quick {
		n = 4096
	}
	shape := []int{n}
	t := &Table{
		ID:      "ablate",
		Title:   fmt.Sprintf("Ablation: UNPACK on a cyclic input — direct vs whole-array redistribution, 1-D N=%d, P=16 (ms)", n),
		Columns: []string{"Mask", "direct SSS", "direct CSS", "redistribute"},
		Notes: []string{
			"paper, Section 6.3: redistribution is not a feasible option for UNPACK (two redistribution steps)",
		},
	}
	for _, msk := range s.maskSpecs(shape) {
		l := oneD(n, 16, 1)
		sss := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModeUnpack})
		css := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeCSS}, Mode: ModeUnpack})
		red := s.measure(Run{Layout: l, Gen: msk.gen, Mode: ModeUnpackRedist})
		t.AddRow(msk.name, ms(sss.TotalMS), ms(css.TotalMS), ms(red.TotalMS))
	}
	return t
}

// ablationSchedule compares the linear permutation schedule against
// the naive unscheduled exchange and the skip-empty variant, on the
// many-to-many stage of CMS PACK.
func (s Suite) ablationSchedule() *Table {
	n := 65536
	if s.Quick {
		n = 4096
	}
	shape := []int{n}
	t := &Table{
		ID:      "ablate",
		Title:   fmt.Sprintf("Ablation: many-to-many scheduling, CMS PACK, 1-D N=%d, P=16, W=16 (ms)", n),
		Columns: []string{"Mask", "linear-perm total", "linear m2m", "naive total", "naive m2m", "skip-empty m2m"},
		Notes: []string{
			"linear permutation spreads start-ups over contention-free rounds; skip-empty models free count knowledge",
		},
	}
	for _, msk := range s.maskSpecs(shape) {
		l := oneD(n, 16, 16)
		lin := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: ModePack})
		nai := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeCMS, A2A: comm.A2AOptions{Naive: true}}, Mode: ModePack})
		skp := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeCMS, A2A: comm.A2AOptions{SkipEmpty: true}}, Mode: ModePack})
		t.AddRow(msk.name, ms(lin.TotalMS), ms(lin.M2MMS), ms(nai.TotalMS), ms(nai.M2MMS), ms(skp.M2MMS))
	}
	return t
}

// ablationScanPolicy compares the two slice rescan methods of Section
// 6.1: stop once all packed elements of the slice are collected
// (method 1, the paper's measured winner) versus scanning the whole
// slice (method 2).
func (s Suite) ablationScanPolicy() *Table {
	n := 65536
	if s.Quick {
		n = 4096
	}
	shape := []int{n}
	t := &Table{
		ID:      "ablate",
		Title:   fmt.Sprintf("Ablation: slice rescan policy, CSS PACK local computation, 1-D N=%d, P=16, W=64 (ms)", n),
		Columns: []string{"Mask", "stop-at-count", "whole-slice"},
		Notes: []string{
			"the paper found method 1 slightly better; the gap narrows as density grows",
		},
	}
	for _, msk := range s.maskSpecs(shape) {
		l := oneD(n, 16, 64)
		stop := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeCSS}, Mode: ModePack})
		whole := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeCSS, WholeSliceScan: true}, Mode: ModePack})
		t.AddRow(msk.name, ms(stop.LocalMS), ms(whole.LocalMS))
	}
	return t
}

// ablationCombinedPRS compares the combined prefix-reduction-sum
// primitive against running the prefix-sum and the reduction-sum
// separately (Section 5.1's motivation: halve the start-up cost).
func (s Suite) ablationCombinedPRS() *Table {
	n := 65536
	if s.Quick {
		n = 4096
	}
	shape := []int{n}
	t := &Table{
		ID:      "ablate",
		Title:   fmt.Sprintf("Ablation: combined vs separate prefix/reduction, SSS PACK, 1-D N=%d, P=16 (prs ms)", n),
		Columns: []string{"W", "combined", "separate"},
		Notes: []string{
			"cyclic distributions have the longest PRS vectors, so the gap is largest at W=1",
		},
	}
	gen := mask.NewRandom(0.5, s.Seed+7, shape...)
	for _, w := range []int{1, 16, n / 16} {
		l := oneD(n, 16, w)
		combined := s.measure(Run{Layout: l, Gen: gen, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: ModePack})
		separate := s.measure(Run{Layout: l, Gen: gen, Opt: pack.Options{Scheme: pack.SchemeSSS, SeparatePrefixReduce: true}, Mode: ModePack})
		t.AddRow(fmt.Sprint(w), ms(combined.PRSMS), ms(separate.PRSMS))
	}
	return t
}

// ablationSelfSend compares the paper's policy of routing self
// messages through the network against shortcutting them to free local
// copies, under block distribution where most data stays home.
func (s Suite) ablationSelfSend() *Table {
	n := 65536
	if s.Quick {
		n = 4096
	}
	shape := []int{n}
	t := &Table{
		ID:      "ablate",
		Title:   fmt.Sprintf("Ablation: self-message policy, CMS PACK m2m time, 1-D N=%d, P=16, block distribution (ms)", n),
		Columns: []string{"Mask", "self costed (paper)", "self free"},
		Notes: []string{
			"under block distribution most packed elements stay on their processor, so the self-message policy matters most there",
		},
	}
	for _, msk := range s.maskSpecs(shape) {
		l := oneD(n, 16, n/16)
		costed := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: ModePack})
		free := s.measure(Run{Layout: l, Gen: msk.gen, Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: ModePack, SelfSendFree: true})
		t.AddRow(msk.name, ms(costed.M2MMS), ms(free.M2MMS))
	}
	return t
}
