package bench

import (
	"sync"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
)

// localBufs is one rank's reusable fill buffers: the local mask, the
// local data array, and (for UNPACK modes) the local vector portion.
// A sweep re-fills these for every experiment point; recycling them
// removes the dominant per-run allocations of the harness.
type localBufs struct {
	mask []bool
	data []int
	vec  []int
}

// localBufPool hands fill buffers to SPMD rank bodies. sync.Pool gives
// a pooled object to at most one goroutine at a time, so concurrent
// machines (the parallel sweep engine runs many at once) can never
// observe each other's fills; each rank returns its buffers only after
// its operation has consumed them.
var localBufPool = sync.Pool{New: func() any { return new(localBufs) }}

// maskBuf fills (and if needed grows) the pooled mask buffer for the
// rank's local portion.
func (b *localBufs) maskBuf(l *dist.Layout, rank int, g mask.Gen) []bool {
	b.mask = mask.FillLocalInto(b.mask, l, rank, g)
	return b.mask
}
