package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
)

// metricsRun is a small deterministic point used across the derived
// metric tests: big enough to exercise every phase of the CMS scheme,
// small enough to run in milliseconds.
func metricsRun() Run {
	return Run{
		Layout: dist.MustLayout(dist.Dim{N: 1024, P: 4, W: 4}),
		Gen:    mask.NewRandom(0.5, 1, 1024),
		Opt:    pack.Options{Scheme: pack.SchemeCMS},
		Mode:   ModePack,
	}
}

// TestDerivedMetricsSanity checks the registry's invariants on an
// ordinary (untraced) run: every machine execution carries the basic
// derived metrics, each inside its mathematical range, and the
// critical-path metrics stay absent without a trace.
func TestDerivedMetricsSanity(t *testing.T) {
	met, err := metricsRun().Execute()
	if err != nil {
		t.Fatal(err)
	}
	d := met.Derived
	if d == nil {
		t.Fatal("untraced Execute produced no derived metrics")
	}
	if v := d["idle_frac"]; v < 0 || v >= 1 {
		t.Errorf("idle_frac = %v, want [0,1)", v)
	}
	if v := d["imbalance"]; v < 1 {
		t.Errorf("imbalance = %v, want >= 1", v)
	}
	if v := d["comm_frac"]; v <= 0 || v > 1 {
		t.Errorf("comm_frac = %v, want (0,1]", v)
	}
	for _, name := range []string{"critpath_words", "critpath_msgs", "critpath_hops"} {
		if _, ok := d[name]; ok {
			t.Errorf("untraced run carries %s; critical-path metrics need a trace", name)
		}
	}
	var shares int
	for name := range d {
		if strings.HasPrefix(name, "comm_share/") {
			shares++
		}
	}
	if shares == 0 {
		t.Error("no comm_share/<phase> metrics; a CMS pack has at least the m2m phase")
	}
}

// TestExecuteTraceMetrics checks the traced path: the capture comes
// back with events, the critical-path metrics join Derived, and — the
// observability contract — tracing changes no virtual measurement: the
// raw metrics and every shared derived name match the untraced run
// exactly.
func TestExecuteTraceMetrics(t *testing.T) {
	r := metricsRun()
	plain, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	met, capture, err := r.ExecuteTrace()
	if err != nil {
		t.Fatal(err)
	}
	if capture == nil || !capture.HasEvents() {
		t.Fatal("ExecuteTrace returned no event capture")
	}

	if met.TotalMS != plain.TotalMS || met.LocalMS != plain.LocalMS ||
		met.PRSMS != plain.PRSMS || met.M2MMS != plain.M2MMS ||
		met.Words != plain.Words || met.Msgs != plain.Msgs {
		t.Errorf("tracing changed virtual metrics:\n traced %+v\n plain  %+v", met, plain)
	}
	for name, want := range plain.Derived {
		if got, ok := met.Derived[name]; !ok || got != want {
			t.Errorf("derived %q: traced %v, untraced %v", name, met.Derived[name], want)
		}
	}
	if v, ok := met.Derived["critpath_hops"]; !ok || v < 1 {
		t.Errorf("critpath_hops = %v (present=%v), want >= 1 on a traced run", v, ok)
	}
	if v := met.Derived["critpath_msgs"]; v < 1 {
		t.Errorf("critpath_msgs = %v, want >= 1: four CMS ranks cannot finish without a blocking message", v)
	}
}

// TestTraceDirDumpsParse runs one quick experiment with a TraceDir and
// checks the engine dumped one parseable Chrome trace per machine run,
// and that enabling tracing did not perturb the rendered tables.
func TestTraceDirDumpsParse(t *testing.T) {
	dir := t.TempDir()

	plain := NewSuite(true, 1)
	plain.Workers = 1
	want := renderSuite(plain)

	s := NewSuite(true, 1)
	s.Workers = 1
	s.TraceDir = dir
	if got := renderSuite(s); got != want {
		t.Fatal("tracing the sweep changed the rendered tables")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := s.PerfSnapshot().MachineRuns
	if int64(len(entries)) != runs {
		t.Fatalf("dumped %d trace files for %d machine runs", len(entries), runs)
	}
	for i, e := range entries {
		if i >= 5 { // parsing a sample is enough; all come from one writer
			break
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s does not parse: %v", e.Name(), err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatalf("%s has no trace events", e.Name())
		}
	}
}

// TestPerfReportDerived checks the schema marker and that instrumented
// runs carry per-experiment derived means: machine executions happen in
// the prefetch phase, so its perf line gets a derived object while the
// pure-replay line (zero machine runs) gets none. (The derived object
// is a v3 feature; v4 added sampling, v5 plan caching, v6 the
// real_world telemetry object, and v7 the service soak object on top
// without touching it.)
func TestPerfReportDerived(t *testing.T) {
	if PerfSchema != "packbench-perf/v7" {
		t.Fatalf("PerfSchema = %q, want packbench-perf/v7", PerfSchema)
	}

	s := NewSuite(true, 1)
	s.Workers = 1
	_, perfs, err := s.RunInstrumented("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if len(perfs) != 2 {
		t.Fatalf("RunInstrumented produced %d perf lines, want 2", len(perfs))
	}
	pre, replay := perfs[0], perfs[1]
	if pre.MachineRuns == 0 {
		t.Fatal("prefetch phase ran no machines")
	}
	for _, name := range []string{"idle_frac", "imbalance", "comm_frac"} {
		if _, ok := pre.Derived[name]; !ok {
			t.Errorf("prefetch perf line lacks derived %q", name)
		}
	}
	if replay.MachineRuns != 0 {
		t.Fatalf("replay phase ran %d machines, want 0 (warm cache)", replay.MachineRuns)
	}
	if replay.Derived != nil {
		t.Error("replay perf line carries a derived object despite zero machine runs")
	}

	total := SumPerf(perfs)
	if total.MachineRuns != pre.MachineRuns {
		t.Errorf("total machine runs %d, want %d", total.MachineRuns, pre.MachineRuns)
	}
	// With one contributing phase the run-weighted mean is that phase's.
	for name, want := range pre.Derived {
		if got := total.Derived[name]; got != want {
			t.Errorf("total derived %q = %v, want %v", name, got, want)
		}
	}

	// The report must round-trip through JSON with the derived object
	// intact (the -json consumers parse it blind).
	data, err := json.Marshal(PerfReport{Schema: PerfSchema, Experiments: perfs, Total: total})
	if err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != PerfSchema {
		t.Fatalf("schema round-trip: %q", back.Schema)
	}
	if got := back.Experiments[0].Derived["imbalance"]; got != pre.Derived["imbalance"] {
		t.Errorf("derived imbalance round-trip: %v want %v", got, pre.Derived["imbalance"])
	}
}

// TestTraceFileNames pins the dump naming scheme: sanitized stem, hash
// suffix, and distinct names for keys that sanitize identically.
func TestTraceFileNames(t *testing.T) {
	a := traceFileName("layout|gen|CMS")
	b := traceFileName("layout|gen;CMS")
	if a == b {
		t.Fatalf("keys differing only in punctuation collide: %s", a)
	}
	if !strings.HasSuffix(a, ".trace.json") {
		t.Fatalf("unexpected trace file name %q", a)
	}
	long := traceFileName(strings.Repeat("x", 500))
	if len(long) > 150 {
		t.Fatalf("trace file name not truncated: %d chars", len(long))
	}
}
