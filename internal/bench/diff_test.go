package bench

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func loadCommitted(t *testing.T, name string) *PerfReport {
	t.Helper()
	r, err := LoadPerfReport(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return r
}

// TestLoadCommittedBaselines is the backward-compat satellite: every
// committed BENCH_*.json (schema v1 through v3) must keep parsing
// through the v4 loader.
func TestLoadCommittedBaselines(t *testing.T) {
	cases := []struct {
		file   string
		schema string
	}{
		{"BENCH_pr1.json", "packbench-perf/v1"},
		{"BENCH_pr2.json", "packbench-perf/v2"},
		{"BENCH_pr3.json", "packbench-perf/v3"},
	}
	for _, c := range cases {
		r := loadCommitted(t, c.file)
		if r.Schema != c.schema {
			t.Errorf("%s: schema %q, want %q", c.file, r.Schema, c.schema)
		}
		if v, err := SchemaVersion(r.Schema); err != nil || v < 1 || v > 4 {
			t.Errorf("%s: version %d err %v", c.file, v, err)
		}
		if r.Total.VirtualMS <= 0 {
			t.Errorf("%s: total virtual_ms = %v", c.file, r.Total.VirtualMS)
		}
		for _, e := range r.Experiments {
			if e.ID == "" {
				t.Errorf("%s: row with empty id", c.file)
			}
		}
	}
}

func TestSchemaVersion(t *testing.T) {
	if v, err := SchemaVersion("packbench-perf/v4"); err != nil || v != 4 {
		t.Fatalf("v4: %d %v", v, err)
	}
	for _, bad := range []string{"", "perf/v1", "packbench-perf/", "packbench-perf/vx", "packbench-perf/v0"} {
		if _, err := SchemaVersion(bad); err == nil {
			t.Errorf("SchemaVersion(%q) did not fail", bad)
		}
	}
}

// TestDiffPr2VsPr3Exact is the acceptance check: BENCH_pr2 and
// BENCH_pr3 carry identical virtual metrics, so the comparator must
// report zero virtual mismatches while still producing a wall table.
func TestDiffPr2VsPr3Exact(t *testing.T) {
	old := loadCommitted(t, "BENCH_pr2.json")
	cur := loadCommitted(t, "BENCH_pr3.json")
	d := DiffReports(old, cur, DiffOptions{})
	if vm := d.VirtualMismatches(); vm != 0 {
		for _, r := range d.Rows {
			if !r.VirtualOK() {
				t.Logf("drift: %s: %s", r.ID, r.virtualCell())
			}
		}
		t.Fatalf("pr2 vs pr3: %d virtual mismatches, want 0", vm)
	}
	if len(d.Rows) == 0 {
		t.Fatal("no rows compared")
	}
	var md, tsv bytes.Buffer
	d.WriteMarkdown(&md)
	d.WriteTSV(&tsv)
	if !strings.Contains(md.String(), "exact match") {
		t.Fatalf("markdown missing exact-match banner:\n%s", md.String())
	}
	if got := strings.Count(tsv.String(), "\n"); got != len(d.Rows)+1 {
		t.Fatalf("tsv has %d lines for %d rows", got, len(d.Rows))
	}
	// Both files lack raw samples, so no p-values anywhere.
	for _, r := range d.Rows {
		if !math.IsNaN(r.P) {
			t.Fatalf("%s: p-value computed without samples", r.ID)
		}
	}
}

// TestDiffPerturbedVirtualFails feeds the committed fixture whose
// fig3/prefetch virtual_ms was nudged by 1e-9: the exact rule must
// flag it (packdiff exits 1 on this).
func TestDiffPerturbedVirtualFails(t *testing.T) {
	old := loadCommitted(t, "BENCH_pr3.json")
	cur, err := LoadPerfReport(filepath.Join("testdata", "BENCH_pr3_perturbed.json"))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffReports(old, cur, DiffOptions{})
	if vm := d.VirtualMismatches(); vm == 0 {
		t.Fatal("perturbed virtual_ms not detected")
	}
	var hit bool
	for _, r := range d.Rows {
		if r.ID == "fig3/prefetch" {
			hit = true
			if r.VirtualMatch {
				t.Fatal("fig3/prefetch should mismatch")
			}
		} else if r.ID != "all" && !r.VirtualOK() {
			t.Fatalf("unexpected drift on %s", r.ID)
		}
	}
	if !hit {
		t.Fatal("fig3/prefetch row missing")
	}
	var md bytes.Buffer
	d.WriteMarkdown(&md)
	if !strings.Contains(md.String(), "DRIFT") {
		t.Fatal("markdown missing DRIFT marker")
	}
}

// TestDiffDerivedDriftFails checks the second exact class: a drifted
// derived mean must fail even when virtual_ms agrees.
func TestDiffDerivedDriftFails(t *testing.T) {
	old := loadCommitted(t, "BENCH_pr3.json")
	cur := loadCommitted(t, "BENCH_pr3.json")
	for i, e := range cur.Experiments {
		if len(e.Derived) > 0 {
			m := make(map[string]float64, len(e.Derived))
			for k, v := range e.Derived {
				m[k] = v
			}
			for k := range m {
				m[k] += 1e-12
				break
			}
			cur.Experiments[i].Derived = m
			break
		}
	}
	d := DiffReports(old, cur, DiffOptions{})
	if d.VirtualMismatches() == 0 {
		t.Fatal("derived drift not detected")
	}
}

// TestDiffWallSignificance exercises the noisy half: identical samples
// are never flagged; a large, clearly-significant regression is.
func TestDiffWallSignificance(t *testing.T) {
	mk := func(samples []float64) *PerfReport {
		row := ExperimentPerf{ID: "x", VirtualMS: 10}
		row.sealSamples(samples)
		r := &PerfReport{Schema: PerfSchema, Experiments: []ExperimentPerf{row}}
		r.Total = SumPerf(r.Experiments)
		r.Total.VirtualMS = 10
		return r
	}
	base := mk([]float64{10, 10.1, 9.9, 10.05, 9.95})

	same := DiffReports(base, mk([]float64{10.02, 9.98, 10.06, 9.94, 10.01}), DiffOptions{})
	for _, r := range same.Rows {
		if r.WallFlagged {
			t.Fatalf("noise flagged as regression: %+v", r)
		}
	}

	slow := DiffReports(base, mk([]float64{20, 20.1, 19.9, 20.05, 19.95}), DiffOptions{})
	var flagged bool
	for _, r := range slow.Rows {
		if r.ID == "x" {
			if math.IsNaN(r.P) {
				t.Fatal("sampled rows must get a p-value")
			}
			flagged = r.WallFlagged && r.WallDelta > 0
		}
	}
	if !flagged {
		t.Fatal("2x wall regression not flagged")
	}
	if slow.WallRegressions() == 0 {
		t.Fatal("WallRegressions did not count the x row")
	}

	// Same 2x delta but wildly overlapping samples: the significance
	// test must hold fire.
	noisy := DiffReports(
		mk([]float64{5, 30, 8, 22, 11}),
		mk([]float64{28, 6, 24, 9, 21}), DiffOptions{})
	for _, r := range noisy.Rows {
		if r.ID == "x" && r.WallFlagged {
			t.Fatalf("overlapping noisy samples flagged: p=%v delta=%v", r.P, r.WallDelta)
		}
	}
}

// TestDiffRowAccounting covers added/removed ids and structure drift.
func TestDiffRowAccounting(t *testing.T) {
	old := &PerfReport{Schema: "packbench-perf/v3", Experiments: []ExperimentPerf{
		{ID: "a", WallMS: 1, VirtualMS: 5, Rows: 4, MachineRuns: 2},
		{ID: "gone", WallMS: 1},
	}, Total: ExperimentPerf{ID: "all", VirtualMS: 5}}
	cur := &PerfReport{Schema: PerfSchema, Experiments: []ExperimentPerf{
		{ID: "a", WallMS: 1, VirtualMS: 5, Rows: 6, MachineRuns: 3},
		{ID: "fresh", WallMS: 1},
	}, Total: ExperimentPerf{ID: "all", VirtualMS: 5}}
	d := DiffReports(old, cur, DiffOptions{})
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "gone" {
		t.Fatalf("OnlyOld = %v", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "fresh" {
		t.Fatalf("OnlyNew = %v", d.OnlyNew)
	}
	if d.VirtualMismatches() != 0 {
		t.Fatal("matching rows misreported")
	}
	for _, r := range d.Rows {
		if r.ID == "a" && len(r.StructureDrift) != 2 {
			t.Fatalf("structure drift = %v", r.StructureDrift)
		}
	}
}

// TestDiffSchemaSkewV5VsV4 is the schema-skew satellite: a v5 report
// (extra planrepeat experiment, plan_repeat object) diffed against a
// v4 baseline must warn-and-skip the new fields and the aggregate
// total — and still compare every shared experiment row exactly.
func TestDiffSchemaSkewV5VsV4(t *testing.T) {
	old := &PerfReport{Schema: "packbench-perf/v4", Experiments: []ExperimentPerf{
		{ID: "fig3", WallMS: 1, VirtualMS: 5},
	}, Total: ExperimentPerf{ID: "all", WallMS: 1, VirtualMS: 5}}
	cur := &PerfReport{Schema: "packbench-perf/v5", Experiments: []ExperimentPerf{
		{ID: "fig3", WallMS: 1, VirtualMS: 5},
		{ID: "planrepeat", WallMS: 2, VirtualMS: 7},
	},
		Total:      ExperimentPerf{ID: "all", WallMS: 3, VirtualMS: 12},
		PlanRepeat: &PlanRepeatPerf{Calls: 120, HitRate: 0.9917, WallSpeedup: 1.5},
	}

	d := DiffReports(old, cur, DiffOptions{})
	if vm := d.VirtualMismatches(); vm != 0 {
		t.Fatalf("schema skew failed the exact gate: %d mismatches", vm)
	}
	var total RowDiff
	var found bool
	for _, r := range d.Rows {
		if r.ID == "all" {
			total, found = r, true
		}
	}
	if !found {
		t.Fatal("total row missing")
	}
	if !total.Incomparable || total.VirtualMatch {
		t.Fatalf("total row not skipped: %+v", total)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "planrepeat" {
		t.Fatalf("OnlyNew = %v", d.OnlyNew)
	}
	joined := strings.Join(d.SkewNotes, "\n")
	for _, want := range []string{"grids differ", "plan_repeat", "schema skew"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("skew notes missing %q:\n%s", want, joined)
		}
	}

	var md, tsv bytes.Buffer
	d.WriteMarkdown(&md)
	d.WriteTSV(&tsv)
	if !strings.Contains(md.String(), "skipped (grids differ)") {
		t.Fatalf("markdown missing skipped total:\n%s", md.String())
	}
	if !strings.Contains(md.String(), "**skew**") {
		t.Fatalf("markdown missing skew bullets:\n%s", md.String())
	}
	if !strings.Contains(tsv.String(), "\tincomparable\t") {
		t.Fatalf("tsv missing incomparable column:\n%s", tsv.String())
	}

	// A drifted shared row must still fail even amid skew.
	cur.Experiments[0].VirtualMS += 1e-9
	if DiffReports(old, cur, DiffOptions{}).VirtualMismatches() == 0 {
		t.Fatal("shared-row drift masked by schema skew")
	}

	// Same grid, same schema: the total stays exact-compared.
	exact := DiffReports(old, old, DiffOptions{})
	for _, r := range exact.Rows {
		if r.Incomparable {
			t.Fatalf("same-grid row %s marked incomparable", r.ID)
		}
	}
	if len(exact.SkewNotes) != 0 {
		t.Fatalf("same-schema diff has skew notes: %v", exact.SkewNotes)
	}
}

func TestLoadPerfReportRejectsGarbage(t *testing.T) {
	if _, err := LoadPerfReport(filepath.Join("testdata", "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadPerfReport(filepath.Join("..", "..", "go.mod")); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

// TestDiffServiceObject covers the v7 service soak object: exact
// comparison when both reports carry the same configuration, drift
// detection on any deterministic field, and warn-and-skip on presence
// or configuration mismatches.
func TestDiffServiceObject(t *testing.T) {
	svc := func() *ServicePerf {
		return &ServicePerf{
			Seed: 1, Requests: 1_000_000, Admitted: 999_990, Overloaded: 10,
			Workers: 8, Queue: 256, RatePerSec: 3749.6, DurationUS: 266_000_000,
			ThroughputRPS: 3759.4, P50US: 1279, P99US: 5119, P999US: 6399,
			SumUS: 1_634_823_001,
			Classes: []ServiceClassPerf{
				{Name: "s4-pack-sss", Weight: 4, ServiceUS: 762, Arrivals: 250_000},
				{Name: "l8-unpack-sss", Weight: 1, ServiceUS: 4813, Arrivals: 62_000},
			},
		}
	}
	base := func(s *ServicePerf) *PerfReport {
		return &PerfReport{Schema: PerfSchema, Experiments: []ExperimentPerf{
			{ID: "fig3", WallMS: 1, VirtualMS: 5},
		}, Total: ExperimentPerf{ID: "all", WallMS: 1, VirtualMS: 5}, Service: s}
	}

	// Identical service objects: exact match, no skew, no drift.
	d := DiffReports(base(svc()), base(svc()), DiffOptions{})
	if len(d.ServiceDrift) != 0 || len(d.SkewNotes) != 0 {
		t.Fatalf("identical service objects: drift %v, skew %v", d.ServiceDrift, d.SkewNotes)
	}
	var md bytes.Buffer
	d.WriteMarkdown(&md)
	if !strings.Contains(md.String(), "service metrics: exact match") {
		t.Fatalf("markdown missing service match line:\n%s", md.String())
	}

	// Presence mismatch: skew note, no drift (the older baseline
	// predates the soak).
	d = DiffReports(base(nil), base(svc()), DiffOptions{})
	if len(d.ServiceDrift) != 0 {
		t.Fatalf("presence mismatch treated as drift: %v", d.ServiceDrift)
	}
	if joined := strings.Join(d.SkewNotes, "\n"); !strings.Contains(joined, "service object present only in the new report") {
		t.Fatalf("skew notes missing service presence note: %v", d.SkewNotes)
	}

	// A drifted deterministic field fails like virtual drift.
	drifted := svc()
	drifted.SumUS++
	drifted.Classes[0].ServiceUS = 763
	d = DiffReports(base(svc()), base(drifted), DiffOptions{})
	if len(d.ServiceDrift) != 2 {
		t.Fatalf("service drift entries = %v, want sum_us and class service_us", d.ServiceDrift)
	}
	md.Reset()
	d.WriteMarkdown(&md)
	if !strings.Contains(md.String(), "service metrics: **DRIFTED**") {
		t.Fatalf("markdown missing service drift line:\n%s", md.String())
	}

	// Different configurations are incomparable: skew, never drift.
	other := svc()
	other.Requests = 50_000
	d = DiffReports(base(svc()), base(other), DiffOptions{})
	if len(d.ServiceDrift) != 0 {
		t.Fatalf("config mismatch treated as drift: %v", d.ServiceDrift)
	}
	if joined := strings.Join(d.SkewNotes, "\n"); !strings.Contains(joined, "different configurations") {
		t.Fatalf("skew notes missing config note: %v", d.SkewNotes)
	}
}
