package bench

import (
	"reflect"
	"strings"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
)

// runStats executes one PACK or UNPACK operation on a fresh machine
// under the given scheduler and returns the per-processor statistics.
func runStats(t *testing.T, sched sim.Sched, mode Mode, scheme pack.Scheme, procs int) []sim.Stats {
	t.Helper()
	n := 64 * procs
	l := dist.MustLayout(dist.Dim{N: n, P: procs, W: 8})
	gen := mask.NewRandom(0.45, 7, n)
	size := mask.Count(gen, n)
	machine := sim.MustNew(sim.Config{Procs: procs, Params: sim.CM5Params(), Sched: sched})
	err := machine.Run(func(p *sim.Proc) {
		lm := mask.FillLocalInto(nil, l, p.Rank(), gen)
		a := fillLocalData(nil, p.Rank(), l.LocalSize())
		var err error
		switch mode {
		case ModePack:
			_, err = pack.Pack(p, l, a, lm, pack.Options{Scheme: scheme})
		case ModeUnpack:
			vec, verr := dist.NewVectorDist(size, procs, 0)
			if verr != nil {
				panic(verr)
			}
			v := fillLocalData(nil, p.Rank()+1000, vec.LocalLen(p.Rank()))
			_, err = pack.Unpack(p, l, v, size, lm, a, pack.Options{Scheme: scheme})
		}
		if err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatalf("sched=%v mode=%v scheme=%v P=%d: %v", sched, mode, scheme, procs, err)
	}
	return machine.Stats()
}

// TestSchedulerModesEquivalent is the cross-mode equivalence contract
// at the algorithm level: over a PACK/UNPACK × scheme × machine-size
// grid, the cooperative and the goroutine scheduler must produce
// identical per-processor Stats — clock, ops, message and word counts,
// and per-phase breakdowns. (UNPACK under CMS is excluded: the compact
// message scheme applies to PACK only.)
func TestSchedulerModesEquivalent(t *testing.T) {
	type cell struct {
		mode    Mode
		schemes []pack.Scheme
	}
	grid := []cell{
		{ModePack, []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS, pack.SchemeCMS}},
		{ModeUnpack, []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS}},
	}
	for _, c := range grid {
		for _, scheme := range c.schemes {
			for _, procs := range []int{2, 4, 8, 16} {
				conc := runStats(t, sim.SchedGoroutine, c.mode, scheme, procs)
				coop := runStats(t, sim.SchedCooperative, c.mode, scheme, procs)
				if !reflect.DeepEqual(conc, coop) {
					t.Errorf("mode=%v scheme=%v P=%d: stats diverge between schedulers\ngoroutine: %+v\ncoop:      %+v",
						c.mode, scheme, procs, conc, coop)
				}
			}
		}
	}
}

// TestSuiteOutputSchedInvariant: the rendered tables must not depend on
// the emulator scheduling mode (the sweep-level face of the same
// contract).
func TestSuiteOutputSchedInvariant(t *testing.T) {
	coop := NewSuite(true, 1)
	coop.Workers = 2
	gor := NewSuite(true, 1)
	gor.Workers = 2
	gor.Sched = sim.SchedGoroutine
	if a, b := renderSuite(coop), renderSuite(gor); a != b {
		t.Fatal("rendered tables differ between scheduler modes")
	}
}

// TestPerExperimentPerfParallelInvariant is the regression test for
// the allocation-attribution bug: per-experiment rows of the perf
// report used to be computed from process-wide MemStats deltas around
// the whole generation, so under -parallel the prefetch workers'
// allocations bled into them. Now the rows cover only the serial
// warm-cache replay and must be identical — like virtual_ms always was
// — whatever the worker count.
func TestPerExperimentPerfParallelInvariant(t *testing.T) {
	ids := []string{"fig3", "fig4", "prs"}
	collect := func(workers int) map[string]ExperimentPerf {
		s := NewSuite(true, 1)
		s.Workers = workers
		out := make(map[string]ExperimentPerf)
		for _, id := range ids {
			_, perfs, err := s.RunInstrumented(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range perfs {
				if !strings.HasSuffix(p.ID, "/prefetch") {
					out[p.ID] = p
				}
			}
		}
		return out
	}
	serial, parallel := collect(1), collect(4)
	// MemStats deltas are process-wide, so a handful of
	// runtime-internal allocations (stack growth, sudog caches, GC
	// bookkeeping) can land inside either snapshot window; the bug this
	// guards against inflated the parallel rows by the entire grid
	// execution (tens of thousands of allocations), so a few-percent
	// band distinguishes the two regimes with a wide margin.
	close := func(a, b, slack uint64) bool {
		d := a - b
		if b > a {
			d = b - a
		}
		limit := max(a, b) / 50
		if limit < slack {
			limit = slack
		}
		return d <= limit
	}
	for _, id := range ids {
		sp, pp := serial[id], parallel[id]
		if sp.Rows != pp.Rows || sp.Tables != pp.Tables {
			t.Errorf("%s: rendered output differs: serial %d/%d, parallel %d/%d rows/tables", id, sp.Rows, sp.Tables, pp.Rows, pp.Tables)
		}
		if sp.MachineRuns != pp.MachineRuns || sp.VirtualMS != pp.VirtualMS {
			t.Errorf("%s: replay executed machines differently: serial %d runs / %.3f ms, parallel %d runs / %.3f ms",
				id, sp.MachineRuns, sp.VirtualMS, pp.MachineRuns, pp.VirtualMS)
		}
		if !close(sp.Allocs, pp.Allocs, 64) || !close(sp.AllocBytes, pp.AllocBytes, 16384) {
			t.Errorf("%s: per-experiment allocation row not -parallel-invariant: serial %d allocs / %d B, parallel %d allocs / %d B",
				id, sp.Allocs, sp.AllocBytes, pp.Allocs, pp.AllocBytes)
		}
	}
}
