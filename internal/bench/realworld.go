package bench

// This file is the realworld experiment family: the same PACK workload
// run twice per processor count — once on the emulator for the cost
// model's prediction, once on the real shared-memory backend
// (internal/transport) for a measured wall-clock time — so the model's
// predicted speedup curve can be read next to the machine's actual one.
//
// Unlike every canonical experiment, the real half is host-dependent
// and nondeterministic by nature (it measures the machine it runs on),
// so the family is hidden: it never joins "-exp all" or the perf
// baselines, and its table carries the host fingerprint instead of
// claiming reproducibility. Model times keep the usual determinism.

import (
	"fmt"
	"runtime"
	"time"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/metrics"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

// RealWorldPoint is one processor count of the measured-vs-modeled
// speedup curve. Serialized into the perf report since schema v6, so
// every field carries a JSON tag.
type RealWorldPoint struct {
	P int `json:"p"`
	// ModelMS is the emulator's virtual time per call (cost-model
	// prediction); ModelSpeedup is ModelMS(P=1)/ModelMS(P).
	ModelMS      float64 `json:"model_ms"`
	ModelSpeedup float64 `json:"model_speedup"`
	// RealMS is the measured wall time per call on the real backend
	// (minimum over samples, amortized over the in-run repeats);
	// RealSpeedup is RealMS(P=1)/RealMS(P).
	RealMS      float64 `json:"real_ms"`
	RealSpeedup float64 `json:"real_speedup"`
	// Derived holds wall-clock telemetry figures extracted from the
	// metrics registry attached to the real machine (schema v6):
	// queue_depth_p99 (p99 of sampled SPSC queue depths), park_rate
	// (receiver parks per completed receive), and plan_hit_rate when the
	// workload routed through a plan cache. Host measurements — never
	// comparable bit-for-bit across runs.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// RealWorldResult is the full curve plus the measurement conditions.
type RealWorldResult struct {
	// N is the global array length; W the block size; Density the mask
	// density.
	N       int     `json:"n"`
	W       int     `json:"w"`
	Density float64 `json:"density"`
	// Reps is how many PACK calls each measured run amortizes over;
	// Samples how many runs the minimum wall time is taken from.
	Reps    int `json:"reps"`
	Samples int `json:"samples"`
	// HostCPUs is runtime.NumCPU() at measurement time — the context
	// every wall figure must be read in.
	HostCPUs int              `json:"host_cpus"`
	Points   []RealWorldPoint `json:"points"`
}

// Gate checks the measured curve against a minimum speedup at one
// processor count (the make realbench contract).
func (r RealWorldResult) Gate(p int, minSpeedup float64) error {
	for _, pt := range r.Points {
		if pt.P != p {
			continue
		}
		if pt.RealSpeedup < minSpeedup {
			return fmt.Errorf("bench: real backend speedup at P=%d is %.2fx, want >= %.2fx (host has %d CPUs)",
				p, pt.RealSpeedup, minSpeedup, r.HostCPUs)
		}
		return nil
	}
	return fmt.Errorf("bench: no realworld point at P=%d", p)
}

// realWorldShape picks the workload size: large enough that per-call
// work dominates goroutine spawn/join overhead, small enough that the
// family stays interactive.
func (s Suite) realWorldShape() (n, w, reps, samples int) {
	if s.Quick {
		return 1 << 14, 16, 2, 2
	}
	return 1 << 17, 16, 3, 3
}

// MeasureRealWorld runs the PACK workload at each processor count on
// both backends and returns the two speedup curves.
func (s Suite) MeasureRealWorld() (RealWorldResult, error) {
	n, w, reps, samples := s.realWorldShape()
	const density = 0.5
	res := RealWorldResult{N: n, W: w, Density: density, Reps: reps, Samples: samples, HostCPUs: runtime.NumCPU()}
	gen := mask.NewRandom(density, s.Seed, n)

	for _, p := range []int{1, 2, 4, 8} {
		layout, err := dist.NewLayout(dist.Dim{N: n, P: p, W: w})
		if err != nil {
			return res, err
		}
		pt := RealWorldPoint{P: p}

		// Model half: one emulated call under the cooperative scheduler
		// (deterministic; repeats would scale the virtual time linearly).
		simMachine, err := sim.New(sim.Config{Procs: p, Params: sim.CM5Params(), Sched: sim.SchedCooperative})
		if err != nil {
			return res, err
		}
		if err := runRealWorldBody(transport.WrapSim(simMachine), layout, gen, 1); err != nil {
			return res, err
		}
		pt.ModelMS = simMachine.MaxClock() / 1000

		// Real half: measured wall time, minimum over samples to shed
		// scheduler noise, amortized over reps calls per run. Each point
		// gets a fresh telemetry registry so its derived figures describe
		// exactly this processor count's traffic (instrumentation never
		// perturbs results — the conformance tests pin that).
		reg := metrics.NewRegistry()
		if s.OnRealRegistry != nil {
			s.OnRealRegistry(reg)
		}
		realMachine, err := transport.NewReal(transport.RealConfig{Procs: p, Params: sim.CM5Params(), Metrics: reg})
		if err != nil {
			return res, err
		}
		best := time.Duration(0)
		for k := 0; k < samples; k++ {
			if err := runRealWorldBody(realMachine, layout, gen, reps); err != nil {
				return res, err
			}
			if e := realMachine.Elapsed(); best == 0 || e < best {
				best = e
			}
		}
		pt.RealMS = float64(best) / float64(time.Millisecond) / float64(reps)
		pt.Derived = DeriveTelemetry(reg.Snapshot())

		res.Points = append(res.Points, pt)
	}
	base := res.Points[0]
	for i := range res.Points {
		res.Points[i].ModelSpeedup = base.ModelMS / res.Points[i].ModelMS
		res.Points[i].RealSpeedup = base.RealMS / res.Points[i].RealMS
	}
	return res, nil
}

// runRealWorldBody executes reps CMS PACK calls on machine m.
func runRealWorldBody(m transport.Machine, layout *dist.Layout, gen mask.Gen, reps int) error {
	var firstErr firstError
	err := m.Run(func(e transport.Endpoint) {
		lm := mask.FillLocal(layout, e.Rank(), gen)
		a := fillLocalData(nil, e.Rank(), layout.LocalSize())
		for it := 0; it < reps; it++ {
			if _, err := pack.Pack(e, layout, a, lm, pack.Options{Scheme: pack.SchemeCMS}); err != nil {
				firstErr.set(err)
				panic(err)
			}
		}
	})
	if ferr := firstErr.get(); ferr != nil {
		return ferr
	}
	return err
}

// RealWorld renders the measured-vs-modeled speedup table (experiment
// id "realworld"; hidden from "-exp all" because the real half measures
// the host).
func (s Suite) RealWorld() []*Table {
	if s.prefetchOnly {
		// Nothing to prefetch: wall measurements cannot be cached (a
		// cached wall time would be a stale measurement, not a replay).
		return nil
	}
	res, err := s.MeasureRealWorld()
	if err != nil {
		t := &Table{ID: "realworld", Title: "Measured vs modeled PACK speedup (failed)"}
		t.Notes = append(t.Notes, fmt.Sprintf("measurement error: %v", err))
		return []*Table{t}
	}
	return []*Table{res.Table()}
}

// Table renders the result for the packbench output.
func (r RealWorldResult) Table() *Table {
	t := &Table{
		ID: "realworld",
		Title: fmt.Sprintf("Measured vs modeled PACK speedup (CMS, N=%d, W=%d, density %.2f, %d reps/run, min of %d samples)",
			r.N, r.W, r.Density, r.Reps, r.Samples),
		Columns: []string{"P", "model ms", "model speedup", "real ms", "real speedup", "qdepth p99", "park rate"},
		Notes: []string{
			fmt.Sprintf("real times are host wall clock on %d CPUs — NOT reproducible figures; model times are virtual (CM-5 constants)", r.HostCPUs),
			"the gap between the curves is the model-vs-hardware divergence: the emulator assumes P dedicated processors, the host multiplexes onto its cores",
			"qdepth p99 / park rate come from the telemetry registry attached to the real machine: p99 of sampled SPSC queue depths, receiver parks per completed receive",
		},
	}
	for _, pt := range r.Points {
		t.AddRow(fmt.Sprint(pt.P),
			fmt.Sprintf("%.3f", pt.ModelMS), fmt.Sprintf("%.2fx", pt.ModelSpeedup),
			fmt.Sprintf("%.3f", pt.RealMS), fmt.Sprintf("%.2fx", pt.RealSpeedup),
			fmt.Sprintf("%.0f", pt.Derived["queue_depth_p99"]), fmt.Sprintf("%.3f", pt.Derived["park_rate"]))
	}
	return t
}
