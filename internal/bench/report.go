package bench

import (
	"fmt"
	"runtime"
	"time"
)

// PerfSchema identifies the JSON layout of PerfReport, so trajectory
// tooling that diffs BENCH_*.json files across commits can detect
// incompatible changes instead of misreading fields.
const PerfSchema = "packbench-perf/v1"

// PerfReport is the host-performance baseline packbench -json writes:
// one entry per requested experiment plus a summed total. Virtual
// times (the paper's results) are invariant under host parallelism;
// the wall-clock and allocation figures are what the -parallel flag
// and the allocation work are expected to move.
type PerfReport struct {
	Schema      string           `json:"schema"`
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	Parallel    int              `json:"parallel"`
	Quick       bool             `json:"quick"`
	Seed        uint64           `json:"seed"`
	Experiments []ExperimentPerf `json:"experiments"`
	Total       ExperimentPerf   `json:"total"`
}

// ExperimentPerf is the host-side cost of generating one experiment's
// tables.
type ExperimentPerf struct {
	// ID is the experiment id ("fig3", ...); "all" in Total.
	ID string `json:"id"`
	// Tables and Rows count the rendered output.
	Tables int `json:"tables"`
	Rows   int `json:"rows"`
	// WallMS is host wall-clock time.
	WallMS float64 `json:"wall_ms"`
	// Allocs / AllocBytes are the heap allocation count and volume
	// (runtime.MemStats.Mallocs/TotalAlloc deltas over the whole
	// process, so background noise is possible but tiny here).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// MachineRuns counts emulated machine executions; CacheHits counts
	// measurements answered from the memo cache instead.
	MachineRuns int64 `json:"machine_runs"`
	CacheHits   int64 `json:"cache_hits"`
	// VirtualMS sums the virtual total time over all machine runs — a
	// host-independent checksum: it must not change with -parallel.
	VirtualMS float64 `json:"virtual_ms"`
}

// RunInstrumented generates one experiment's tables while measuring the
// host-side cost of doing so.
func (s Suite) RunInstrumented(id string) ([]*Table, ExperimentPerf, error) {
	gen, ok := s.Registry()[id]
	if !ok {
		return nil, ExperimentPerf{}, fmt.Errorf("bench: unknown experiment %q", id)
	}
	runsBefore, virtBefore, hitsBefore := s.PerfSnapshot()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	tables := gen()

	wall := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	runsAfter, virtAfter, hitsAfter := s.PerfSnapshot()

	perf := ExperimentPerf{
		ID:          id,
		Tables:      len(tables),
		WallMS:      float64(wall.Microseconds()) / 1000,
		Allocs:      msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes:  msAfter.TotalAlloc - msBefore.TotalAlloc,
		MachineRuns: runsAfter - runsBefore,
		CacheHits:   hitsAfter - hitsBefore,
		VirtualMS:   virtAfter - virtBefore,
	}
	for _, t := range tables {
		perf.Rows += len(t.Rows)
	}
	return tables, perf, nil
}

// SumPerf folds per-experiment figures into the report's total line.
func SumPerf(perfs []ExperimentPerf) ExperimentPerf {
	total := ExperimentPerf{ID: "all"}
	for _, p := range perfs {
		total.Tables += p.Tables
		total.Rows += p.Rows
		total.WallMS += p.WallMS
		total.Allocs += p.Allocs
		total.AllocBytes += p.AllocBytes
		total.MachineRuns += p.MachineRuns
		total.CacheHits += p.CacheHits
		total.VirtualMS += p.VirtualMS
	}
	return total
}
