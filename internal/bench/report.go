package bench

import (
	"fmt"
	"runtime"
	"time"

	"packunpack/internal/sim"
	"packunpack/internal/stats"
)

// PerfSchema identifies the JSON layout of PerfReport, so trajectory
// tooling that diffs BENCH_*.json files across commits can detect
// incompatible changes instead of misreading fields.
//
// v2: per-experiment rows now measure only the serial warm-cache
// replay (so allocation and wall figures are invariant under
// -parallel), while each experiment's grid execution is reported as
// its own "<id>/prefetch" line; a top-level "sched" field records the
// emulator scheduling mode.
//
// v3: rows with machine runs carry a "derived" object of per-run mean
// registry metrics (metrics.go): idle_frac, imbalance, comm_frac,
// comm_share/<phase>, and — when the sweep was traced via -trace-dir —
// critpath_words/critpath_msgs/critpath_hops. The pre-existing fields
// are unchanged, so v2 consumers that ignore unknown keys still parse.
//
// v4: repeated-sample wall-clock measurement. The replay of each
// experiment can run N times (packbench -samples); rows then carry the
// raw per-sample walls ("wall_samples_ms") plus robust aggregates
// ("wall_stats": median/p10/p90/MAD/min/max), with "wall_ms" now the
// median so single-number consumers see the robust figure. A top-level
// "samples" count and an "env" environment fingerprint (go version,
// OS/arch, CPU count, GOMAXPROCS, sched, parallel) record what the
// wall figures were measured under. Additionally, "wall_ms" values are
// no longer truncated to microsecond resolution. Virtual metrics are
// untouched: "virtual_ms" and "derived" stay exactly reproducible and
// are compared bit-for-bit by cmd/packdiff. v1–v3 files still parse
// (absent fields read as zero); v3 consumers that ignore unknown keys
// still parse v4.
//
// v5: plan caching. The experiment set gains "planrepeat" (repeat
// traffic through the PackPlan compilation layer), whose rows' derived
// objects carry "plan_hit_rate"; a top-level "plan_repeat" object
// records the wall-clock amortization measurement (calls, per-call
// unplanned/planned wall ms, speedup, hit rate). Rows of unplanned
// experiments are untouched — their virtual metrics stay bit-for-bit
// comparable with v4 baselines — and cmd/packdiff warns-and-skips the
// new fields when the older file lacks them. v1–v4 files still parse;
// v4 consumers that ignore unknown keys still parse v5.
//
// v6: real-backend telemetry. A report produced with the real backend
// (packbench -real -json) carries a top-level "real_world" object — the
// measured-vs-modeled speedup curve, now serialized for the first time —
// whose points hold a "derived" map of wall-clock telemetry figures
// (queue_depth_p99, park_rate, and plan_hit_rate when plans were used)
// extracted from the internal/metrics registry attached to each real
// machine; the run is also summarized as one "realworld" experiment row.
// These figures are host measurements, never comparable bit-for-bit.
// Virtual metrics are untouched: every sim-backend row stays exactly
// reproducible and bit-for-bit comparable with v5 baselines, and
// cmd/packdiff warns-and-skips real_world and the new derived keys when
// only one side carries them. v1–v5 files still parse; v5 consumers that
// ignore unknown keys still parse v6.
//
// v7: the serving layer. A run that included the service soak
// (packbench -service N) carries a top-level "service" object — the
// loadgen harness's deterministic report: seeded Poisson arrivals over
// the class mix, the discrete-event model of the admission queue
// (workers, bounded FIFO, rejections), and the resulting virtual-time
// latency quantiles (p50/p99/p999), throughput, and SumUS checksum,
// plus each class's warm plan-cached virtual service time. Like all
// virtual metrics these are bit-for-bit reproducible from the seed and
// compared exactly by cmd/packdiff when both files carry them;
// packdiff warns-and-skips the object when only one side has it. Every
// pre-existing row is untouched — sim-backend rows stay bit-for-bit
// comparable with v6 baselines. v1–v6 files still parse; v6 consumers
// that ignore unknown keys still parse v7.
const PerfSchema = "packbench-perf/v7"

// Environment is the perf report's measurement-environment record: the
// host fingerprint plus the knobs of this run that move wall-clock
// numbers without touching virtual ones.
type Environment struct {
	sim.Fingerprint
	Sched    string `json:"sched"`
	Parallel int    `json:"parallel"`
	Samples  int    `json:"samples"`
}

// String renders the environment on one line for table headers, so a
// pasted table is self-describing.
func (e Environment) String() string {
	return fmt.Sprintf("%s; sched=%s parallel=%d samples=%d",
		e.Fingerprint, e.Sched, e.Parallel, e.Samples)
}

// Environment captures the suite's measurement environment.
func (s Suite) Environment() Environment {
	return Environment{
		Fingerprint: sim.HostFingerprint(),
		Sched:       s.Sched.String(),
		Parallel:    s.workerCount(),
		Samples:     s.sampleCount(),
	}
}

// PerfReport is the host-performance baseline packbench -json writes:
// one entry per requested experiment plus a summed total. Virtual
// times (the paper's results) are invariant under host parallelism;
// the wall-clock and allocation figures are what the -parallel flag
// and the scheduler mode are expected to move.
type PerfReport struct {
	Schema      string           `json:"schema"`
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	Parallel    int              `json:"parallel"`
	Sched       string           `json:"sched"`
	Quick       bool             `json:"quick"`
	Seed        uint64           `json:"seed"`
	Samples     int              `json:"samples,omitempty"`
	Env         *Environment     `json:"env,omitempty"`
	Experiments []ExperimentPerf `json:"experiments"`
	Total       ExperimentPerf   `json:"total"`
	// PlanRepeat is the plan-cache wall-clock amortization measurement
	// (schema v5), attached when the run included the planrepeat
	// experiment; nil otherwise and in older files.
	PlanRepeat *PlanRepeatPerf `json:"plan_repeat,omitempty"`
	// RealWorld is the measured-vs-modeled speedup curve with per-point
	// telemetry (schema v6), attached when the report was produced by a
	// real-backend run (packbench -real -json); nil otherwise and in
	// older files. Its wall figures are host measurements — cmd/packdiff
	// notes its presence but never diffs it numerically.
	RealWorld *RealWorldResult `json:"real_world,omitempty"`
	// Service is the serving-layer soak report (schema v7), attached
	// when the run included the packserve/loadgen service measurement
	// (packbench -service); nil otherwise and in older files. All its
	// figures are virtual-time and deterministic from the seed, so
	// cmd/packdiff compares them exactly when both sides carry them.
	Service *ServicePerf `json:"service,omitempty"`
}

// ServicePerf is the deterministic report of the serving-layer soak
// (schema v7): the loadgen discrete-event model of internal/serve's
// admission queue under seeded Poisson traffic. Mirrors
// loadgen.Result's deterministic half without importing it (bench
// stays below the service layer).
type ServicePerf struct {
	Seed          uint64             `json:"seed"`
	Requests      int                `json:"requests"`
	Admitted      int                `json:"admitted"`
	Overloaded    int                `json:"overloaded"`
	Workers       int                `json:"workers"`
	Queue         int                `json:"queue"`
	RatePerSec    float64            `json:"rate_per_sec"`
	DurationUS    uint64             `json:"duration_us"`
	ThroughputRPS float64            `json:"throughput_rps"`
	P50US         int64              `json:"p50_us"`
	P99US         int64              `json:"p99_us"`
	P999US        int64              `json:"p999_us"`
	SumUS         uint64             `json:"sum_us"`
	Classes       []ServiceClassPerf `json:"classes"`
}

// ServiceClassPerf is one workload class of the service soak: its mix
// weight, measured warm virtual service time, and arrival share.
type ServiceClassPerf struct {
	Name      string `json:"name"`
	Weight    int    `json:"weight"`
	ServiceUS uint64 `json:"service_us"`
	Arrivals  int    `json:"arrivals"`
}

// WallStats holds the robust aggregates of a row's repeated wall-clock
// samples (schema v4). All figures are milliseconds except Samples.
type WallStats struct {
	Samples  int     `json:"samples"`
	MedianMS float64 `json:"median_ms"`
	P10MS    float64 `json:"p10_ms"`
	P90MS    float64 `json:"p90_ms"`
	MADMS    float64 `json:"mad_ms"`
	MinMS    float64 `json:"min_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// ExperimentPerf is the host-side cost of one generation phase: the
// "<id>/prefetch" line covers discovering and executing the
// experiment's measurement grid (all machine runs, all worker-pool
// parallelism, the bulk of the allocations); the "<id>" line covers
// the serial replay that renders the tables from the warm cache and is
// byte-for-byte the same work at any -parallel setting.
type ExperimentPerf struct {
	// ID is the phase id ("fig3/prefetch", "fig3", ...); "all" in Total.
	ID string `json:"id"`
	// Tables and Rows count the rendered output (replay lines only).
	Tables int `json:"tables"`
	Rows   int `json:"rows"`
	// WallMS is host wall-clock time: the median over the row's samples
	// (schema v4; with one sample it is that sample).
	WallMS float64 `json:"wall_ms"`
	// WallSamplesMS are the raw per-sample wall times in measurement
	// order; cmd/packdiff feeds them to the Mann–Whitney significance
	// test. Only the replay phase is re-sampled — prefetch rows carry a
	// single sample (re-running the prefetch would hit the warm cache
	// and measure nothing).
	WallSamplesMS []float64 `json:"wall_samples_ms,omitempty"`
	// WallStats are the robust aggregates over WallSamplesMS.
	WallStats *WallStats `json:"wall_stats,omitempty"`
	// Allocs / AllocBytes are the heap allocation count and volume
	// (runtime.MemStats.Mallocs/TotalAlloc deltas around this phase
	// only). Because machine executions are confined to the prefetch
	// phase, the per-experiment replay figures no longer absorb
	// concurrent prefetch workers' allocations and match a serial run.
	// With repeated samples these (and the counters below) come from
	// the first sample, so they stay comparable to single-sample runs.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// MachineRuns counts emulated machine executions; CacheHits counts
	// measurements answered from the memo cache instead.
	MachineRuns int64 `json:"machine_runs"`
	CacheHits   int64 `json:"cache_hits"`
	// VirtualMS sums the virtual total time over all machine runs — a
	// host-independent checksum: it must not change with -parallel.
	VirtualMS float64 `json:"virtual_ms"`
	// Derived holds per-run means of the registry metrics (metrics.go)
	// over this phase's machine runs. Omitted when the phase ran no
	// machines (replay lines answer everything from the cache). Schema
	// v3 addition.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// wallMS converts a duration to milliseconds at full resolution.
// (The previous float64(wall.Microseconds())/1000 truncated to whole
// microseconds, quantizing sub-microsecond replay times to zero.)
func wallMS(wall time.Duration) float64 {
	return float64(wall) / float64(time.Millisecond)
}

// sealSamples finalizes a row's repeated-sample fields: the raw
// samples, their robust aggregates, and the median as the row's
// headline WallMS.
func (p *ExperimentPerf) sealSamples(samples []float64) {
	sum := stats.Summarize(samples)
	p.WallSamplesMS = samples
	p.WallStats = &WallStats{
		Samples:  sum.N,
		MedianMS: sum.Median,
		P10MS:    sum.P10,
		P90MS:    sum.P90,
		MADMS:    sum.MAD,
		MinMS:    sum.Min,
		MaxMS:    sum.Max,
	}
	p.WallMS = sum.Median
}

// instrument measures the host-side cost of running fn.
func (s Suite) instrument(id string, fn func() []*Table) ([]*Table, ExperimentPerf) {
	before := s.PerfSnapshot()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	tables := fn()

	wall := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	after := s.PerfSnapshot()

	perf := ExperimentPerf{
		ID:          id,
		Tables:      len(tables),
		WallMS:      wallMS(wall),
		Allocs:      msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes:  msAfter.TotalAlloc - msBefore.TotalAlloc,
		MachineRuns: after.MachineRuns - before.MachineRuns,
		CacheHits:   after.CacheHits - before.CacheHits,
		VirtualMS:   after.VirtualMS - before.VirtualMS,
	}
	if perf.MachineRuns > 0 {
		perf.Derived = make(map[string]float64)
		for name, sum := range after.DerivedSum {
			delta := sum - before.DerivedSum[name]
			perf.Derived[name] = delta / float64(perf.MachineRuns)
		}
	}
	for _, t := range tables {
		perf.Rows += len(t.Rows)
	}
	return tables, perf
}

// RunInstrumented generates one experiment's tables while measuring
// the host-side cost of doing so, split into the engine's two phases.
// It returns the "<id>/prefetch" perf line (grid execution, including
// any worker-pool parallelism) followed by the "<id>" line (the serial
// warm-cache replay). Splitting the phases is what makes the
// per-experiment rows -parallel-invariant: previously the whole
// generation was measured at once, so prefetch workers' allocations
// bled into per-experiment figures and disagreed with a serial run.
//
// With Suite.Samples > 1 the replay phase runs that many times and the
// row reports the robust aggregates over the per-sample walls; the
// replay is deterministic warm-cache work, so repeating it measures
// host noise, not new virtual results (machine runs all happen in the
// prefetch phase, which is measured once). Tables, allocation figures,
// and counters come from the first sample.
func (s Suite) RunInstrumented(id string) ([]*Table, []ExperimentPerf, error) {
	if _, ok := s.Registry()[id]; !ok {
		return nil, nil, fmt.Errorf("bench: unknown experiment %q", id)
	}

	pre := s
	pre.prefetchOnly = true
	pre.labelExp = id
	_, prePerf := s.instrument(id+"/prefetch", pre.Registry()[id])
	prePerf.sealSamples([]float64{prePerf.WallMS})

	rep := s
	rep.replayOnly = true
	rep.labelExp = id
	var (
		tables  []*Table
		perf    ExperimentPerf
		samples = make([]float64, 0, s.sampleCount())
	)
	for k := 0; k < s.sampleCount(); k++ {
		t, p := s.instrument(id, rep.Registry()[id])
		if k == 0 {
			tables, perf = t, p
		}
		samples = append(samples, p.WallMS)
	}
	perf.sealSamples(samples)

	return tables, []ExperimentPerf{prePerf, perf}, nil
}

// SumPerf folds per-phase figures into the report's total line.
// Derived metrics are per-run means, so the total carries their
// run-weighted mean rather than a plain sum. The total's WallMS sums
// the rows' medians; it carries no sample fields of its own (the rows
// are the unit of statistical comparison).
func SumPerf(perfs []ExperimentPerf) ExperimentPerf {
	total := ExperimentPerf{ID: "all"}
	derivedSum := make(map[string]float64)
	for _, p := range perfs {
		total.Tables += p.Tables
		total.Rows += p.Rows
		total.WallMS += p.WallMS
		total.Allocs += p.Allocs
		total.AllocBytes += p.AllocBytes
		total.MachineRuns += p.MachineRuns
		total.CacheHits += p.CacheHits
		total.VirtualMS += p.VirtualMS
		for name, mean := range p.Derived {
			derivedSum[name] += mean * float64(p.MachineRuns)
		}
	}
	if len(derivedSum) > 0 && total.MachineRuns > 0 {
		total.Derived = make(map[string]float64, len(derivedSum))
		for name, sum := range derivedSum {
			total.Derived[name] = sum / float64(total.MachineRuns)
		}
	}
	return total
}
