package bench

import (
	"fmt"
	"runtime"
	"time"
)

// PerfSchema identifies the JSON layout of PerfReport, so trajectory
// tooling that diffs BENCH_*.json files across commits can detect
// incompatible changes instead of misreading fields.
//
// v2: per-experiment rows now measure only the serial warm-cache
// replay (so allocation and wall figures are invariant under
// -parallel), while each experiment's grid execution is reported as
// its own "<id>/prefetch" line; a top-level "sched" field records the
// emulator scheduling mode.
//
// v3: rows with machine runs carry a "derived" object of per-run mean
// registry metrics (metrics.go): idle_frac, imbalance, comm_frac,
// comm_share/<phase>, and — when the sweep was traced via -trace-dir —
// critpath_words/critpath_msgs/critpath_hops. The pre-existing fields
// are unchanged, so v2 consumers that ignore unknown keys still parse.
const PerfSchema = "packbench-perf/v3"

// PerfReport is the host-performance baseline packbench -json writes:
// one entry per requested experiment plus a summed total. Virtual
// times (the paper's results) are invariant under host parallelism;
// the wall-clock and allocation figures are what the -parallel flag
// and the scheduler mode are expected to move.
type PerfReport struct {
	Schema      string           `json:"schema"`
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	Parallel    int              `json:"parallel"`
	Sched       string           `json:"sched"`
	Quick       bool             `json:"quick"`
	Seed        uint64           `json:"seed"`
	Experiments []ExperimentPerf `json:"experiments"`
	Total       ExperimentPerf   `json:"total"`
}

// ExperimentPerf is the host-side cost of one generation phase: the
// "<id>/prefetch" line covers discovering and executing the
// experiment's measurement grid (all machine runs, all worker-pool
// parallelism, the bulk of the allocations); the "<id>" line covers
// the serial replay that renders the tables from the warm cache and is
// byte-for-byte the same work at any -parallel setting.
type ExperimentPerf struct {
	// ID is the phase id ("fig3/prefetch", "fig3", ...); "all" in Total.
	ID string `json:"id"`
	// Tables and Rows count the rendered output (replay lines only).
	Tables int `json:"tables"`
	Rows   int `json:"rows"`
	// WallMS is host wall-clock time.
	WallMS float64 `json:"wall_ms"`
	// Allocs / AllocBytes are the heap allocation count and volume
	// (runtime.MemStats.Mallocs/TotalAlloc deltas around this phase
	// only). Because machine executions are confined to the prefetch
	// phase, the per-experiment replay figures no longer absorb
	// concurrent prefetch workers' allocations and match a serial run.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// MachineRuns counts emulated machine executions; CacheHits counts
	// measurements answered from the memo cache instead.
	MachineRuns int64 `json:"machine_runs"`
	CacheHits   int64 `json:"cache_hits"`
	// VirtualMS sums the virtual total time over all machine runs — a
	// host-independent checksum: it must not change with -parallel.
	VirtualMS float64 `json:"virtual_ms"`
	// Derived holds per-run means of the registry metrics (metrics.go)
	// over this phase's machine runs. Omitted when the phase ran no
	// machines (replay lines answer everything from the cache). Schema
	// v3 addition.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// instrument measures the host-side cost of running fn.
func (s Suite) instrument(id string, fn func() []*Table) ([]*Table, ExperimentPerf) {
	before := s.PerfSnapshot()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	tables := fn()

	wall := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	after := s.PerfSnapshot()

	perf := ExperimentPerf{
		ID:          id,
		Tables:      len(tables),
		WallMS:      float64(wall.Microseconds()) / 1000,
		Allocs:      msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes:  msAfter.TotalAlloc - msBefore.TotalAlloc,
		MachineRuns: after.MachineRuns - before.MachineRuns,
		CacheHits:   after.CacheHits - before.CacheHits,
		VirtualMS:   after.VirtualMS - before.VirtualMS,
	}
	if perf.MachineRuns > 0 {
		perf.Derived = make(map[string]float64)
		for name, sum := range after.DerivedSum {
			delta := sum - before.DerivedSum[name]
			perf.Derived[name] = delta / float64(perf.MachineRuns)
		}
	}
	for _, t := range tables {
		perf.Rows += len(t.Rows)
	}
	return tables, perf
}

// RunInstrumented generates one experiment's tables while measuring
// the host-side cost of doing so, split into the engine's two phases.
// It returns the "<id>/prefetch" perf line (grid execution, including
// any worker-pool parallelism) followed by the "<id>" line (the serial
// warm-cache replay). Splitting the phases is what makes the
// per-experiment rows -parallel-invariant: previously the whole
// generation was measured at once, so prefetch workers' allocations
// bled into per-experiment figures and disagreed with a serial run.
func (s Suite) RunInstrumented(id string) ([]*Table, []ExperimentPerf, error) {
	if _, ok := s.Registry()[id]; !ok {
		return nil, nil, fmt.Errorf("bench: unknown experiment %q", id)
	}

	pre := s
	pre.prefetchOnly = true
	_, prePerf := s.instrument(id+"/prefetch", pre.Registry()[id])

	rep := s
	rep.replayOnly = true
	tables, perf := s.instrument(id, rep.Registry()[id])

	return tables, []ExperimentPerf{prePerf, perf}, nil
}

// SumPerf folds per-phase figures into the report's total line.
// Derived metrics are per-run means, so the total carries their
// run-weighted mean rather than a plain sum.
func SumPerf(perfs []ExperimentPerf) ExperimentPerf {
	total := ExperimentPerf{ID: "all"}
	derivedSum := make(map[string]float64)
	for _, p := range perfs {
		total.Tables += p.Tables
		total.Rows += p.Rows
		total.WallMS += p.WallMS
		total.Allocs += p.Allocs
		total.AllocBytes += p.AllocBytes
		total.MachineRuns += p.MachineRuns
		total.CacheHits += p.CacheHits
		total.VirtualMS += p.VirtualMS
		for name, mean := range p.Derived {
			derivedSum[name] += mean * float64(p.MachineRuns)
		}
	}
	if len(derivedSum) > 0 && total.MachineRuns > 0 {
		total.Derived = make(map[string]float64, len(derivedSum))
		for name, sum := range derivedSum {
			total.Derived[name] = sum / float64(total.MachineRuns)
		}
	}
	return total
}
