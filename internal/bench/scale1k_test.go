package bench

import (
	"strings"
	"testing"

	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
	"packunpack/internal/trace"
)

// scaleAggRun executes a P=1024 cooperative CMS PACK with an
// aggregating sink attached, repeating the operation reps times inside
// the one machine, and returns the sink and the machine's stats.
func scaleAggRun(t *testing.T, procs, n, reps int) (*trace.AggSink, []sim.Stats) {
	t.Helper()
	agg := trace.NewAggSink(procs)
	layout := oneD(n, procs, 64)
	gen := mask.NewRandom(0.5, 1, n)
	machine := sim.MustNew(sim.Config{
		Procs: procs, Params: sim.CM5Params(), Sched: sim.SchedCooperative,
		Sink: agg,
	})
	if err := machine.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(layout, p.Rank(), gen)
		a := fillLocalData(nil, p.Rank(), layout.LocalSize())
		for i := 0; i < reps; i++ {
			if _, err := pack.Pack(p, layout, a, lm, pack.Options{Scheme: pack.SchemeCMS}); err != nil {
				panic(err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	var retained int
	for _, row := range machine.Events() {
		retained += len(row)
	}
	if retained != 0 {
		t.Fatalf("machine retained %d events with Trace off", retained)
	}
	return agg, machine.Stats()
}

// TestScaleAggregatedObservability is the ISSUE-9 acceptance test: a
// P=1024 cooperative-scheduler PACK run with the aggregating sink
// attached completes with event-storage memory O(P) — zero events are
// retained anywhere and the per-rank rollup state is exactly P entries
// — and the rollups reconcile exactly, per rank, with the machine's
// Stats counters. The sink's only variable-size state is its sparse
// cell set, which is bounded by the active traffic pattern (the
// many-to-many exchange is protocol-level all-to-all, so ~2·P² cells
// plus the PRS pairs) and — the part that makes tracing at scale
// affordable — independent of how many events stream through: doubling
// the event volume must not grow it by a single cell.
func TestScaleAggregatedObservability(t *testing.T) {
	const procs = 1024
	const n = 1 << 18 // 256 local elements per rank
	agg, stats := scaleAggRun(t, procs, n, 1)

	// Exact per-rank reconciliation of the rollups with Stats.
	if err := agg.CheckStats(stats); err != nil {
		t.Fatalf("rollups do not reconcile with Stats: %v", err)
	}
	if got := len(agg.Rollups()); got != procs {
		t.Fatalf("rollup state has %d per-rank entries, want exactly P=%d", got, procs)
	}

	folded := agg.EventsSeen()
	cells := agg.Cells()
	if folded < int64(procs) {
		t.Fatalf("sink folded only %d events for a P=%d run", folded, procs)
	}
	// Pattern bound: total cells + per-phase cells can cover at most
	// every (src, dst) pair twice, plus slack for the low-degree PRS
	// phase pairs.
	if limit := 2*procs*procs + 64*procs; cells > limit {
		t.Fatalf("agg state = %d cells > pattern bound %d", cells, limit)
	}

	// Event-volume independence: twice the events, identical cell state.
	agg2, _ := scaleAggRun(t, procs, n, 2)
	if agg2.Cells() != cells {
		t.Fatalf("doubling event volume changed agg state: %d -> %d cells", cells, agg2.Cells())
	}
	if f2 := agg2.EventsSeen(); f2 < 2*folded*9/10 {
		t.Fatalf("repeat run folded %d events, want ~2x %d", f2, folded)
	}

	// The per-phase size histograms cover the exchange traffic.
	if c := agg.SizeCount(pack.PhaseM2M); c == 0 {
		t.Fatalf("no message sizes observed in phase %q", pack.PhaseM2M)
	}
}

// TestScale1KExperimentRendersAndReconciles runs the hidden scale1k
// sweep in quick mode end to end: it must render one table with both
// compact schemes (the experiment self-checks rollup reconciliation and
// panics on mismatch).
func TestScale1KExperimentRendersAndReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("P=1024 sweep in -short mode")
	}
	s := NewSuite(true, 1)
	s.Workers = 1
	tables := s.Scale1K()
	if len(tables) != 1 {
		t.Fatalf("scale1k rendered %d tables, want 1", len(tables))
	}
	var sb strings.Builder
	RenderAll(&sb, tables)
	out := sb.String()
	for _, want := range []string{"P=1024", "CSS", "CMS", "aggregating sink"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scale1k table missing %q:\n%s", want, out)
		}
	}
}
