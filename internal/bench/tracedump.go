package bench

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"packunpack/internal/trace"
)

// TraceDir support (packbench -trace-dir): every machine execution of
// a sweep runs with the emulator's observability layer on and writes
// its Chrome trace-event JSON into the directory, one file per
// experiment point, named after the point's memo key. Memoized points
// execute (and dump) once — rerunning an experiment that only hits the
// cache produces no new files, mirroring the machine_runs accounting.

// traceFileName turns a memo key into a safe, collision-free file
// name: the sanitized key for readability plus a short hash of the
// exact key (sanitizing is lossy, the hash is not).
func traceFileName(key string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '=':
			return r
		}
		return '_'
	}, key)
	const maxStem = 120
	if len(clean) > maxStem {
		clean = clean[:maxStem]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return fmt.Sprintf("%s-%08x.trace.json", clean, h.Sum32())
}

// dumpTrace writes one captured run. Failures are harness errors (bad
// directory, full disk) and panic like every other engine-internal
// fault.
func (s Suite) dumpTrace(key string, c *trace.Capture) {
	if c == nil {
		return
	}
	path := filepath.Join(s.TraceDir, traceFileName(key))
	f, err := os.Create(path)
	if err != nil {
		panic(fmt.Sprintf("bench: trace dump: %v", err))
	}
	if err := trace.WriteChrome(f, c); err != nil {
		f.Close()
		panic(fmt.Sprintf("bench: trace dump: %v", err))
	}
	if err := f.Close(); err != nil {
		panic(fmt.Sprintf("bench: trace dump: %v", err))
	}
}
