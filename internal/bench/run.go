// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 7): workload
// definitions, parameter sweeps, scheme comparisons, and text rendering
// of the measured rows/series.
//
// All times are virtual machine times from the sim cost model, reported
// in milliseconds like the paper. The DESIGN.md experiment index maps
// each experiment id here to the paper artifact it reproduces.
package bench

import (
	"fmt"
	"sync"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/metrics"
	"packunpack/internal/pack"
	"packunpack/internal/ranking"
	"packunpack/internal/redist"
	"packunpack/internal/sim"
	"packunpack/internal/trace"
)

// Mode selects the operation a Run measures.
type Mode int

const (
	// ModePack measures plain parallel PACK.
	ModePack Mode = iota
	// ModeUnpack measures parallel UNPACK (N' = Size).
	ModeUnpack
	// ModeRed1 measures the Red.1 pipeline: redistribution of the
	// selected data to block layout, then CMS PACK.
	ModeRed1
	// ModeRed2 measures the Red.2 pipeline: redistribution of the
	// whole arrays, then CMS PACK.
	ModeRed2
	// ModeUnpackRedist measures UNPACK via whole-array redistribution
	// (the Section 6.3 idea the paper deems infeasible for UNPACK).
	ModeUnpackRedist
)

func (m Mode) String() string {
	switch m {
	case ModePack:
		return "pack"
	case ModeUnpack:
		return "unpack"
	case ModeRed1:
		return "red1"
	case ModeRed2:
		return "red2"
	case ModeUnpackRedist:
		return "unpack-redist"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Metrics is the virtual-time breakdown of one measured operation, in
// milliseconds, taken as the per-component maximum over processors
// (the paper reports the slowest processor per stage).
type Metrics struct {
	// TotalMS is the end-to-end time (maximum final clock).
	TotalMS float64
	// LocalMS is the local computation time as the paper defines it:
	// all local work excluding the prefix-reduction-sum (ranking scans
	// and arithmetic, send-list construction, message composition and
	// decomposition).
	LocalMS float64
	// PRSMS is the time spent in the vector prefix-reduction-sum
	// (computation + communication).
	PRSMS float64
	// M2MMS is the many-to-many personalized communication time of
	// the redistribution stage.
	M2MMS float64
	// RedistMS is the preliminary array redistribution communication
	// time (Red.1/Red.2 pipelines only).
	RedistMS float64
	// Size is the number of selected elements.
	Size int
	// Words is the total number of machine words sent by all
	// processors.
	Words int64
	// Msgs is the total number of messages sent.
	Msgs int64
	// FaultStats aggregates the machine's fault-injection and recovery
	// counters over all processors; nil when the run had no fault plan
	// (so fault-free reports keep their exact shape).
	FaultStats *sim.FaultCounters `json:"FaultStats,omitempty"`
	// PlanStats snapshots the run's plan-cache counters; nil unless the
	// run was Planned (so unplanned reports keep their exact shape).
	PlanStats *pack.PlanCacheStats `json:"PlanStats,omitempty"`
	// Derived holds the registry metrics (metrics.go) computed for this
	// run: load imbalance, idle fraction, per-phase comm shares, and —
	// for traced runs — critical-path figures. Treated as read-only
	// once computed (Metrics values are memoized and shared).
	Derived map[string]float64
}

// metricsFrom extracts Metrics from the most recent machine run.
func metricsFrom(m *sim.Machine) Metrics {
	var out Metrics
	stats := m.Stats()
	out.TotalMS = m.MaxClock() / 1000
	for _, s := range stats {
		prs := s.Phases[ranking.PhasePRS]
		if local := (s.Comp - prs.Comp) / 1000; local > out.LocalMS {
			out.LocalMS = local
		}
		if v := (prs.Comp + prs.Comm) / 1000; v > out.PRSMS {
			out.PRSMS = v
		}
		m2m := s.Phases[pack.PhaseM2M]
		if v := (m2m.Comp + m2m.Comm) / 1000; v > out.M2MMS {
			out.M2MMS = v
		}
		rd := s.Phases[redist.PhaseRedist]
		if v := (rd.Comp + rd.Comm) / 1000; v > out.RedistMS {
			out.RedistMS = v
		}
		out.Words += s.WordsSent
		out.Msgs += s.MsgsSent
	}
	if rep := m.FaultReport(); rep != nil {
		total := rep.Total
		out.FaultStats = &total
	}
	out.Derived = ComputeDerived(Snapshot{Stats: stats})
	return out
}

// Run describes one measured operation instance.
type Run struct {
	Layout *dist.Layout
	Gen    mask.Gen
	Opt    pack.Options
	Mode   Mode
	// Params are the machine constants; zero value means CM5Params.
	Params sim.Params
	// Sched selects the emulator's execution mode. The sweep engine
	// defaults to the cooperative scheduler (machines are already
	// host-parallel across experiment points, so within-machine
	// goroutine concurrency only adds contention); the zero value is
	// the concurrent goroutine mode, matching sim.Config.
	Sched sim.Sched
	// SelfSendFree shortcuts self messages to zero cost (ablation of
	// the paper's policy of routing them through the network).
	SelfSendFree bool
	// Faults installs a deterministic fault-injection plan on the
	// measured machine (sim.Config.Faults); the operation then runs
	// over the reliable transport and Metrics.FaultStats reports the
	// injection activity. Nil measures the exact fault-free machine.
	Faults *sim.FaultConfig
	// Trace enables the emulator's observability layer for this run
	// (sim.Config.Record + Trace): ExecuteTrace then returns the
	// capture, and the critical-path metrics join Metrics.Derived.
	// Tracing never changes virtual times; it only records them.
	Trace bool
	// Verify additionally checks the result against the sequential
	// oracle (slower; used by the harness tests).
	Verify bool
	// Repeat executes the operation this many times inside the one
	// measured machine (0 or 1 means once) — the repeat-traffic shape of
	// the planrepeat experiment. Reported times cover all calls;
	// amortized per-call figures divide by Repeat.
	Repeat int
	// Planned installs a fresh plan cache (pack.Options.Plans) for the
	// run, so the first call compiles and every repeat executes the
	// cached bulk-copy plan; Metrics.PlanStats then reports the cache
	// counters and Derived gains plan_hit_rate.
	Planned bool
	// Metrics attaches a wall-clock telemetry registry to the measured
	// machine (sim.Config.Metrics / packbench -metrics). Deliberately
	// NOT part of the memoization key (runKey): telemetry observes host
	// time and never perturbs virtual results, so a cached measurement
	// stays valid whether or not a registry was attached — the
	// cross-backend conformance tests pin that invariant.
	Metrics *metrics.Registry
	// Flight attaches an always-on flight recorder to the measured
	// machine (sim.Config.Flight / packbench -flight-dir). Like Metrics,
	// it is NOT part of the memoization key: the recorder observes the
	// event feed and never perturbs virtual results. The sweep engine
	// dumps its window when a machine aborts (parallel.go).
	Flight *sim.FlightRecorder
	// Sink attaches a streaming event sink to the measured machine
	// (sim.Config.Sink) — e.g. trace.NewAggSink for the bounded-memory
	// P >= 1024 observability sweep (scale1k.go). Like Metrics and
	// Flight, NOT part of the memoization key, and unlike Trace it
	// retains no events: memory stays O(P) however long the run.
	Sink sim.EventSink
	// failRank is a test seam: when set, it is consulted after the
	// operation and its non-nil error is reported as that rank's
	// failure (exercises the any-rank first-error capture).
	failRank func(rank int) error
}

// firstError captures the first error reported by any rank of an SPMD
// run, race-safely: ranks fail concurrently, and before this existed
// only rank 0's error surfaced cleanly (other ranks' errors were only
// visible as recovered panics).
type firstError struct {
	once sync.Once
	err  error
}

func (f *firstError) set(err error) {
	if err != nil {
		f.once.Do(func() { f.err = err })
	}
}

// get must only be called after the run has completed (Machine.Run's
// internal WaitGroup orders the ranks' set calls before it).
func (f *firstError) get() error { return f.err }

// fillLocalData deterministically fills a processor's local data array;
// the values encode (rank, offset) so misrouted elements are
// detectable. buf is reused when large enough (nil allocates fresh).
func fillLocalData(buf []int, rank, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	a := buf[:n]
	for i := range a {
		a[i] = rank*(1<<24) + i
	}
	return a
}

// Execute runs the operation on a fresh machine and returns its
// metrics.
func (r Run) Execute() (Metrics, error) {
	met, _, err := r.exec()
	return met, err
}

// ExecuteTrace is Execute with the observability layer on: it returns
// the run's trace capture alongside the metrics, and Metrics.Derived
// additionally carries the critical-path figures.
func (r Run) ExecuteTrace() (Metrics, *trace.Capture, error) {
	r.Trace = true
	return r.exec()
}

func (r Run) exec() (Metrics, *trace.Capture, error) {
	params := r.Params
	if params == (sim.Params{}) {
		params = sim.CM5Params()
	}
	machine, err := sim.New(sim.Config{
		Procs: r.Layout.Procs(), Params: params, SelfSendFree: r.SelfSendFree, Sched: r.Sched,
		Record: r.Trace, Trace: r.Trace, Faults: r.Faults, Metrics: r.Metrics, Flight: r.Flight,
		Sink: r.Sink,
	})
	if err != nil {
		return Metrics{}, nil, err
	}

	// UNPACK needs the vector length up front; the mask generators are
	// deterministic, so the harness (not the timed machine) counts.
	size := 0
	if r.Mode == ModeUnpack || r.Mode == ModeUnpackRedist {
		shape := make([]int, r.Layout.Rank())
		for i, d := range r.Layout.Dims {
			shape[i] = d.N
		}
		size = mask.Count(r.Gen, shape...)
	}

	// Planned runs share one fresh cache across the machine's ranks and
	// repeats: the first call per rank compiles, every repeat hits.
	opt := r.Opt
	var plans *pack.PlanCache
	if r.Planned {
		plans = pack.NewPlanCache()
		opt.Plans = plans
	}
	reps := r.Repeat
	if reps < 1 {
		reps = 1
	}

	var firstErr firstError
	results := make([]*pack.Result[int], r.Layout.Procs())
	unpacked := make([]*pack.UnpackResult[int], r.Layout.Procs())
	runErr := machine.Run(func(p *sim.Proc) {
		// The local mask/data/vector fills are the per-run allocation
		// hot spot of a sweep; they are recycled through a sync.Pool
		// (pool.go) once this rank's operation has consumed them — no
		// result below retains a reference to them.
		bufs := localBufPool.Get().(*localBufs)
		defer localBufPool.Put(bufs)
		lm := bufs.maskBuf(r.Layout, p.Rank(), r.Gen)
		a := fillLocalData(bufs.data, p.Rank(), r.Layout.LocalSize())
		bufs.data = a
		for it := 0; it < reps; it++ {
			var err error
			switch r.Mode {
			case ModePack:
				results[p.Rank()], err = pack.Pack(p, r.Layout, a, lm, opt)
			case ModeUnpack:
				vec, verr := dist.NewVectorDist(size, p.NProcs(), opt.VectorW)
				if verr != nil {
					err = verr
					break
				}
				v := fillLocalData(bufs.vec, p.Rank()+1000, vec.LocalLen(p.Rank()))
				bufs.vec = v
				unpacked[p.Rank()], err = pack.Unpack(p, r.Layout, v, size, lm, a, opt)
			case ModeRed1:
				results[p.Rank()], err = redist.PackRedistSelected(p, r.Layout, a, lm, opt)
			case ModeRed2:
				results[p.Rank()], err = redist.PackRedistWhole(p, r.Layout, a, lm, opt)
			case ModeUnpackRedist:
				vec, verr := dist.NewVectorDist(size, p.NProcs(), opt.VectorW)
				if verr != nil {
					err = verr
					break
				}
				v := fillLocalData(bufs.vec, p.Rank()+1000, vec.LocalLen(p.Rank()))
				bufs.vec = v
				unpacked[p.Rank()], err = redist.UnpackRedistWhole(p, r.Layout, v, size, lm, a, opt)
			default:
				err = fmt.Errorf("bench: unknown mode %v", r.Mode)
			}
			if err == nil && r.failRank != nil {
				err = r.failRank(p.Rank())
			}
			if err != nil {
				firstErr.set(err)
				panic(err)
			}
		}
	})
	if err := firstErr.get(); err != nil {
		return Metrics{}, nil, err
	}
	if runErr != nil {
		return Metrics{}, nil, runErr
	}

	met := metricsFrom(machine)
	if plans != nil {
		// Re-derive with the cache counters in view; plan_hit_rate joins
		// the map while every shared figure stays bit-identical, so
		// unplanned runs keep their exact derived maps.
		st := plans.Stats()
		met.PlanStats = &st
		met.Derived = ComputeDerived(Snapshot{Stats: machine.Stats(), Plan: met.PlanStats})
	}
	var capture *trace.Capture
	if r.Trace {
		capture = trace.CaptureMachine(machine)
		crit, err := trace.CriticalPath(capture)
		if err != nil {
			return met, capture, fmt.Errorf("bench: critical-path analysis: %w", err)
		}
		// Re-derive with the critical path in view; the traced map is a
		// superset of the untraced one, so memoized figures agree either
		// way on the shared names.
		met.Derived = ComputeDerived(Snapshot{Stats: capture.Stats, Crit: crit, Plan: met.PlanStats})
	}
	if r.Mode == ModeUnpack || r.Mode == ModeUnpackRedist {
		met.Size = size
	} else {
		met.Size = results[0].Ranking.Size
	}
	if r.Verify {
		if err := r.verify(results, unpacked, size); err != nil {
			return met, capture, err
		}
	}
	return met, capture, nil
}

// verify checks the distributed result against the sequential oracle.
func (r Run) verify(results []*pack.Result[int], unpacked []*pack.UnpackResult[int], size int) error {
	gmask := mask.FillGlobal(r.Layout, r.Gen)
	locals := make([][]int, r.Layout.Procs())
	for rank := range locals {
		locals[rank] = fillLocalData(nil, rank, r.Layout.LocalSize())
	}
	global := dist.Gather(r.Layout, locals)

	if r.Mode == ModeUnpack || r.Mode == ModeUnpackRedist {
		vGlobal := make([]int, size)
		vec, err := dist.NewVectorDist(size, r.Layout.Procs(), r.Opt.VectorW)
		if err != nil {
			return err
		}
		for rank := 0; rank < r.Layout.Procs(); rank++ {
			v := fillLocalData(nil, rank+1000, vec.LocalLen(rank))
			for i, val := range v {
				vGlobal[vec.ToGlobal(rank, i)] = val
			}
		}
		want := make([]int, len(global))
		ri := 0
		for i, sel := range gmask {
			if sel {
				want[i] = vGlobal[ri]
				ri++
			} else {
				want[i] = global[i]
			}
		}
		aLocals := make([][]int, len(unpacked))
		for rank, u := range unpacked {
			aLocals[rank] = u.A
		}
		got := dist.Gather(r.Layout, aLocals)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("bench: unpack verify failed at %d: got %d want %d", i, got[i], want[i])
			}
		}
		return nil
	}

	var want []int
	for i, sel := range gmask {
		if sel {
			want = append(want, global[i])
		}
	}
	var got []int
	for _, res := range results {
		got = append(got, res.V...)
	}
	if len(got) != len(want) {
		return fmt.Errorf("bench: pack verify failed: got %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("bench: pack verify failed at %d: got %d want %d", i, got[i], want[i])
		}
	}
	return nil
}
