package bench

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
)

// renderSuite renders every experiment of a suite to one string.
func renderSuite(s Suite) string {
	var sb strings.Builder
	RenderAll(&sb, s.All())
	return sb.String()
}

// TestParallelOutputByteIdentical is the determinism invariant of the
// sweep engine (DESIGN.md §7): the rendered tables of a parallel sweep
// must be byte-identical to the serial run's. Host parallelism may only
// change wall-clock time, never a virtual measurement.
func TestParallelOutputByteIdentical(t *testing.T) {
	serial := NewSuite(true, 1)
	serial.Workers = 1
	parallel := NewSuite(true, 1)
	parallel.Workers = 4

	want := renderSuite(serial)
	got := renderSuite(parallel)
	if got != want {
		t.Fatalf("parallel sweep output differs from serial run:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if parallel.PerfSnapshot().MachineRuns == 0 {
		t.Fatal("parallel suite recorded no machine runs")
	}
}

// TestParallelPrefetchWarmsCache verifies the collect/prefetch pass
// actually routes points through the worker pool: after one parallel
// experiment, the replay must have answered from the warm cache.
func TestParallelPrefetchWarmsCache(t *testing.T) {
	s := NewSuite(true, 1)
	s.Workers = 4
	s.Fig3()
	if s.PerfSnapshot().CacheHits == 0 {
		t.Fatal("parallel sweep replay produced no cache hits; the prefetch pass did not run")
	}
}

// TestFirstErrorFromAnyRank exercises the first-error capture of
// Run.Execute: an error raised on a non-zero rank must surface as that
// error, not as a recovered-panic diagnostic (before the fix only rank
// 0's error was reported cleanly).
func TestFirstErrorFromAnyRank(t *testing.T) {
	base := Run{
		Layout: dist.MustLayout(dist.Dim{N: 256, P: 4, W: 4}),
		Gen:    mask.NewRandom(0.5, 1, 256),
		Opt:    pack.Options{Scheme: pack.SchemeCSS},
		Mode:   ModePack,
	}

	boom := errors.New("boom on rank 2")
	r := base
	r.failRank = func(rank int) error {
		if rank == 2 {
			return boom
		}
		return nil
	}
	if _, err := r.Execute(); !errors.Is(err, boom) {
		t.Fatalf("rank-2 failure surfaced as %v, want %v", err, boom)
	}

	// All ranks failing concurrently must still yield exactly one of
	// the injected errors (the race the sync.Once arbitrates).
	r = base
	r.failRank = func(rank int) error { return fmt.Errorf("rank %d failed", rank) }
	_, err := r.Execute()
	if err == nil {
		t.Fatal("no error surfaced when every rank failed")
	}
	if !strings.HasPrefix(err.Error(), "rank ") || !strings.HasSuffix(err.Error(), " failed") {
		t.Fatalf("concurrent failures surfaced as %q, want one injected rank error", err)
	}
}

// BenchmarkQuickSweep measures the whole quick suite end-to-end, the
// number the -parallel flag is meant to move on multi-core hosts.
func BenchmarkQuickSweep(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewSuite(true, 1)
				s.Workers = workers
				s.All()
			}
		})
	}
}

// BenchmarkMeasurePoint measures one cached-suite experiment point,
// the unit of work the allocation rework targets.
func BenchmarkMeasurePoint(b *testing.B) {
	b.ReportAllocs()
	r := Run{
		Layout: dist.MustLayout(dist.Dim{N: 4096, P: 16, W: 16}),
		Gen:    mask.NewRandom(0.5, 1, 4096),
		Opt:    pack.Options{Scheme: pack.SchemeCMS},
		Mode:   ModePack,
	}
	for i := 0; i < b.N; i++ {
		if _, err := r.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}
