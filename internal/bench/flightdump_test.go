package bench

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
)

// TestFlightDumpOnFaultAbort drives a sweep point into fault-budget
// exhaustion (a drop-everything plan, so the reliable transport in
// internal/comm gives up) with a FlightDir configured, and checks the
// engine dumped the flight recorder's window — both files, named by the
// point's memo key — before the abort panic propagated.
func TestFlightDumpOnFaultAbort(t *testing.T) {
	dir := t.TempDir()
	s := NewSuite(true, 1)
	s.Workers = 1
	s.FlightDir = dir
	r := Run{
		Layout: dist.MustLayout(dist.Dim{N: 256, P: 4, W: 4}),
		Gen:    mask.NewRandom(0.5, 1, 256),
		Opt:    pack.Options{Scheme: pack.SchemeCMS},
		Mode:   ModePack,
		Sched:  sim.SchedCooperative,
		Faults: &sim.FaultConfig{Seed: 1, Drop: 1, MaxRetries: 3},
	}
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected the aborted machine to panic the engine")
		}
		msg := fmt.Sprint(rec)
		if !strings.Contains(msg, "flight recorder dumped") {
			t.Fatalf("abort panic does not name the dump: %s", msg)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var traceFile, txtFile bool
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".flight.trace.json") {
				traceFile = true
			}
			if strings.HasSuffix(e.Name(), ".flight.txt") {
				txtFile = true
			}
		}
		if !traceFile || !txtFile {
			t.Fatalf("flight dump files missing in %s: %v", dir, entries)
		}
	}()
	s.executePoint(r)
}

// TestFlightDirCleanSweepWritesNothing: the recorder is attached but a
// healthy sweep leaves the directory empty — the dump path is an abort
// path, not a logging path.
func TestFlightDirCleanSweepWritesNothing(t *testing.T) {
	dir := t.TempDir()
	s := NewSuite(true, 1)
	s.Workers = 1
	s.FlightDir = dir
	r := Run{
		Layout: dist.MustLayout(dist.Dim{N: 256, P: 4, W: 4}),
		Gen:    mask.NewRandom(0.5, 1, 256),
		Opt:    pack.Options{Scheme: pack.SchemeCMS},
		Mode:   ModePack,
		Sched:  sim.SchedCooperative,
	}
	met := s.executePoint(r)
	if met.TotalMS <= 0 {
		t.Fatalf("healthy point did not measure: %+v", met)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("clean sweep wrote flight files: %v", entries)
	}
}
