package mask

import (
	"math"
	"testing"
	"testing/quick"

	"packunpack/internal/dist"
)

func TestRandomDensityConverges(t *testing.T) {
	for _, density := range []float64{0, 0.1, 0.5, 0.9, 1} {
		g := NewRandom(density, 99, 100000)
		count := Count(g, 100000)
		got := float64(count) / 100000
		if math.Abs(got-density) > 0.01 {
			t.Errorf("density %.2f: measured %.4f", density, got)
		}
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	g1 := NewRandom(0.5, 7, 64, 64)
	g2 := NewRandom(0.5, 7, 64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if g1.At([]int{i, j}) != g2.At([]int{i, j}) {
				t.Fatalf("non-deterministic at (%d,%d)", i, j)
			}
		}
	}
}

func TestRandomSeedsDiffer(t *testing.T) {
	g1 := NewRandom(0.5, 1, 4096)
	g2 := NewRandom(0.5, 2, 4096)
	same := 0
	for i := 0; i < 4096; i++ {
		if g1.At([]int{i}) == g2.At([]int{i}) {
			same++
		}
	}
	if same > 4096*3/4 || same < 4096/4 {
		t.Fatalf("seeds 1 and 2 agree on %d/4096 elements; masks look correlated", same)
	}
}

func TestRandomIsDistributionIndependent(t *testing.T) {
	// The mask value depends only on the global index, so two layouts
	// of the same array see the same global mask.
	g := NewRandom(0.4, 3, 48)
	l1 := dist.MustLayout(dist.Dim{N: 48, P: 4, W: 1})
	l2 := dist.MustLayout(dist.Dim{N: 48, P: 2, W: 12})
	m1 := FillGlobal(l1, g)
	m2 := FillGlobal(l2, g)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("global mask differs at %d", i)
		}
	}
}

func TestFirstHalf(t *testing.T) {
	g := FirstHalf{N: 10}
	for i := 0; i < 10; i++ {
		want := i < 5
		if got := g.At([]int{i}); got != want {
			t.Errorf("FirstHalf.At(%d) = %v", i, got)
		}
	}
	if Count(g, 10) != 5 {
		t.Error("FirstHalf count wrong")
	}
}

func TestUpperTriangle(t *testing.T) {
	g := UpperTriangle{}
	n := 8
	// Count of strict upper triangle in n x n: n(n-1)/2.
	if got, want := Count(g, n, n), n*(n-1)/2; got != want {
		t.Errorf("UpperTriangle count = %d, want %d", got, want)
	}
	if g.At([]int{3, 3}) {
		t.Error("diagonal should be false")
	}
	if !g.At([]int{2, 5}) {
		t.Error("(i0=2, i1=5) should be true")
	}
	if g.At([]int{5, 2}) {
		t.Error("(i0=5, i1=2) should be false")
	}
}

func TestFullEmpty(t *testing.T) {
	if Count(Full{}, 6, 7) != 42 {
		t.Error("Full count wrong")
	}
	if Count(Empty{}, 6, 7) != 0 {
		t.Error("Empty count wrong")
	}
}

func TestNames(t *testing.T) {
	for _, g := range []Gen{NewRandom(0.3, 1, 8), FirstHalf{N: 8}, UpperTriangle{}, Full{}, Empty{}} {
		if g.Name() == "" {
			t.Errorf("%T has empty name", g)
		}
	}
}

// TestFillLocalMatchesFillGlobal is the core property: scattering the
// global mask must equal filling locally on every processor, for every
// layout.
func TestFillLocalMatchesFillGlobal(t *testing.T) {
	layouts := []*dist.Layout{
		dist.MustLayout(dist.Dim{N: 32, P: 4, W: 2}),
		dist.MustLayout(dist.Dim{N: 32, P: 4, W: 1}),
		dist.MustLayout(dist.Dim{N: 8, P: 2, W: 2}, dist.Dim{N: 6, P: 3, W: 1}),
		dist.MustLayout(dist.Dim{N: 4, P: 2, W: 1}, dist.Dim{N: 4, P: 1, W: 2}, dist.Dim{N: 4, P: 2, W: 2}),
	}
	for _, l := range layouts {
		shape := make([]int, l.Rank())
		for i, d := range l.Dims {
			shape[i] = d.N
		}
		gens := []Gen{NewRandom(0.5, 11, shape...), Full{}, Empty{}}
		if l.Rank() == 2 {
			gens = append(gens, UpperTriangle{})
		}
		for _, g := range gens {
			want := dist.Scatter(l, FillGlobal(l, g))
			for rank := 0; rank < l.Procs(); rank++ {
				got := FillLocal(l, rank, g)
				if len(got) != len(want[rank]) {
					t.Fatalf("%v %s rank %d: length %d vs %d", l, g.Name(), rank, len(got), len(want[rank]))
				}
				for off := range got {
					if got[off] != want[rank][off] {
						t.Fatalf("%v %s rank %d: mismatch at local %d", l, g.Name(), rank, off)
					}
				}
			}
		}
	}
}

func TestSplitmix64Mixes(t *testing.T) {
	// Adjacent inputs must produce well-spread outputs (sanity, not a
	// statistical test): check no collisions over a small range and
	// that bit 0 flips about half the time.
	seen := map[uint64]bool{}
	flips := 0
	prev := splitmix64(0)
	for i := uint64(1); i < 4096; i++ {
		h := splitmix64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
		if h&1 != prev&1 {
			flips++
		}
		prev = h
	}
	if flips < 1500 || flips > 2600 {
		t.Fatalf("low bit flipped %d/4095 times", flips)
	}
}

func TestCountMatchesFillGlobal(t *testing.T) {
	f := func(seed uint64, dpct uint8) bool {
		density := float64(dpct%101) / 100
		l := dist.MustLayout(dist.Dim{N: 24, P: 2, W: 3}, dist.Dim{N: 10, P: 2, W: 5})
		g := NewRandom(density, seed, 24, 10)
		gm := FillGlobal(l, g)
		n := 0
		for _, b := range gm {
			if b {
				n++
			}
		}
		return n == Count(g, 24, 10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFillLocalIntoReusesBuffer verifies the sweep-harness contract:
// a large-enough buffer is refilled in place (same backing array), a
// too-small one is replaced, and both produce FillLocal's values.
func TestFillLocalIntoReusesBuffer(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 256, P: 4, W: 8})
	g := NewRandom(0.5, 3, 256)
	want := FillLocal(l, 1, g)

	buf := make([]bool, 0, l.LocalSize()+10)
	got := FillLocalInto(buf, l, 1, g)
	if &got[0] != &buf[:1][0] {
		t.Error("FillLocalInto allocated despite sufficient capacity")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused fill differs from FillLocal at %d", i)
		}
	}

	small := make([]bool, 1)
	got = FillLocalInto(small, l, 1, g)
	if len(got) != l.LocalSize() {
		t.Fatalf("grown fill has %d elements, want %d", len(got), l.LocalSize())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grown fill differs from FillLocal at %d", i)
		}
	}
}
