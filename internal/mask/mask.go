// Package mask generates the logical mask arrays driving PACK/UNPACK.
//
// Every generator is a pure function of the global element indices (and
// a seed), so each processor of the emulated machine can fill its local
// portion of the mask without communication, and repeated runs see
// identical masks. The paper's experiments use five random masks with
// densities 10%..90% and one deterministic "LT" mask (first half true
// in 1-D; strict upper triangle in 2-D).
package mask

import (
	"fmt"

	"packunpack/internal/dist"
)

// Gen decides the mask value for a global index vector (dimension 0
// first).
type Gen interface {
	At(global []int) bool
	Name() string
}

// Random is a pseudo-random mask where each element is independently
// true with probability Density. The value is a hash of the global
// row-major position and the seed, so it is distribution-independent.
type Random struct {
	Density float64 // in [0, 1]
	Seed    uint64
	Shape   []int // global extents, dimension 0 first
}

// NewRandom builds a random mask generator for an array of the given
// global shape (dimension 0 first).
func NewRandom(density float64, seed uint64, shape ...int) Random {
	return Random{Density: density, Seed: seed, Shape: shape}
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r Random) At(global []int) bool {
	pos := uint64(0)
	stride := uint64(1)
	for i, g := range global {
		pos += uint64(g) * stride
		stride *= uint64(r.Shape[i])
	}
	h := splitmix64(pos ^ splitmix64(r.Seed))
	// Top 53 bits as a uniform float in [0, 1).
	u := float64(h>>11) / (1 << 53)
	return u < r.Density
}

func (r Random) Name() string { return fmt.Sprintf("random(%.0f%%)", r.Density*100) }

// FirstHalf is the paper's deterministic 1-D "LT" mask: true iff the
// global index is below N/2.
type FirstHalf struct {
	N int
}

func (f FirstHalf) At(global []int) bool { return global[0] < f.N/2 }

func (f FirstHalf) Name() string { return "LT-1d(firsthalf)" }

// UpperTriangle is the paper's deterministic 2-D "LT" mask: true iff
// the global index on dimension 1 is larger than that on dimension 0.
type UpperTriangle struct{}

func (UpperTriangle) At(global []int) bool { return global[1] > global[0] }

func (UpperTriangle) Name() string { return "LT-2d(upper)" }

// Full and Empty are degenerate masks for edge-case tests.
type Full struct{}

func (Full) At([]int) bool { return true }
func (Full) Name() string  { return "full" }

type Empty struct{}

func (Empty) At([]int) bool { return false }
func (Empty) Name() string  { return "empty" }

// FillLocal evaluates the generator over processor rank's local portion
// of the layout, in local row-major order (dimension 0 fastest). The
// odometer walk keeps global coordinates incrementally, so filling is
// O(rank * L) without per-element allocation.
func FillLocal(l *dist.Layout, rank int, g Gen) []bool {
	return FillLocalInto(nil, l, rank, g)
}

// FillLocalInto is FillLocal writing into buf, which is grown only when
// its capacity is too small — sweeps that re-fill masks for many
// experiment points can recycle one buffer instead of allocating per
// run.
func FillLocalInto(buf []bool, l *dist.Layout, rank int, g Gen) []bool {
	d := l.Rank()
	coords := l.GridCoords(rank)
	locals := make([]int, d)
	global := make([]int, d)
	for i := 0; i < d; i++ {
		global[i] = l.Dims[i].ToGlobal(coords[i], 0)
	}
	if cap(buf) < l.LocalSize() {
		buf = make([]bool, l.LocalSize())
	}
	out := buf[:l.LocalSize()]
	for off := range out {
		out[off] = g.At(global)
		// Advance the local odometer and refresh global coordinates.
		for i := 0; i < d; i++ {
			locals[i]++
			if locals[i] < l.Dims[i].L() {
				if locals[i]%l.Dims[i].W == 0 {
					// Crossed into the next block: jump a tile.
					global[i] = l.Dims[i].ToGlobal(coords[i], locals[i])
				} else {
					global[i]++
				}
				break
			}
			locals[i] = 0
			global[i] = l.Dims[i].ToGlobal(coords[i], 0)
		}
	}
	return out
}

// FillGlobal evaluates the generator over the whole array in global
// row-major order (for sequential oracles).
func FillGlobal(l *dist.Layout, g Gen) []bool {
	d := l.Rank()
	global := make([]int, d)
	out := make([]bool, l.GlobalSize())
	for off := range out {
		out[off] = g.At(global)
		for i := 0; i < d; i++ {
			global[i]++
			if global[i] < l.Dims[i].N {
				break
			}
			global[i] = 0
		}
	}
	return out
}

// Count returns the number of true values a generator produces over a
// global shape (dimension 0 first) — the Size of the packed vector.
func Count(g Gen, shape ...int) int {
	d := len(shape)
	global := make([]int, d)
	total := 1
	for _, n := range shape {
		total *= n
	}
	count := 0
	for off := 0; off < total; off++ {
		if g.At(global) {
			count++
		}
		for i := 0; i < d; i++ {
			global[i]++
			if global[i] < shape[i] {
				break
			}
			global[i] = 0
		}
	}
	return count
}
