package sim

import (
	"reflect"
	"strings"
	"testing"
)

// schedModes enumerates both execution modes for cross-mode tests.
var schedModes = []Sched{SchedGoroutine, SchedCooperative}

// irregularBody is a deterministic exchange pattern with phases,
// uneven message sizes, and rank-dependent local work — a workload
// whose stats expose any divergence between the two schedulers.
func irregularBody(p *Proc) {
	n := p.NProcs()
	p.Charge(p.Rank()*3 + 1)
	p.SetPhase("exchange")
	for r := 1; r < n; r++ {
		dst := (p.Rank() + r) % n
		buf := make([]int, (p.Rank()*r+dst)%5)
		for i := range buf {
			buf[i] = dst
		}
		p.SendInts(dst, r, buf)
	}
	for r := 1; r < n; r++ {
		src := (p.Rank() - r + n) % n
		v := p.RecvInts(src, r)
		for _, x := range v {
			if x != p.Rank() {
				panic("misrouted payload")
			}
		}
	}
	p.SetPhase("post")
	p.Charge((n - p.Rank()) * 2)
	if p.Rank() == 0 {
		p.Send(n-1, 99, nil, 7)
	}
	if p.Rank() == n-1 {
		p.Recv(0, 99)
	}
}

// TestCoopMatchesGoroutineStats is the cross-mode equivalence
// contract: identical per-processor Stats (clock, ops, msgs, words,
// phase breakdowns) and identical recorded timelines, whatever the
// scheduler.
func TestCoopMatchesGoroutineStats(t *testing.T) {
	for _, procs := range []int{2, 4, 8, 16} {
		var stats [][]Stats
		var spans [][][]Span
		for _, sched := range schedModes {
			m := MustNew(Config{Procs: procs, Params: CM5Params(), Sched: sched, Record: true})
			if err := m.Run(irregularBody); err != nil {
				t.Fatalf("P=%d %v: %v", procs, sched, err)
			}
			stats = append(stats, m.Stats())
			spans = append(spans, m.Spans())
		}
		if !reflect.DeepEqual(stats[0], stats[1]) {
			t.Errorf("P=%d: stats differ between schedulers:\ngoroutine: %+v\ncoop:      %+v", procs, stats[0], stats[1])
		}
		if !reflect.DeepEqual(spans[0], spans[1]) {
			t.Errorf("P=%d: spans differ between schedulers", procs)
		}
	}
}

// TestCoopVirtualClockOrder pins the scheduling contract: among
// runnable processors the smallest virtual clock runs next (ties to the
// lowest rank). Appending to the shared log without synchronization is
// safe precisely because the cooperative mode runs one body at a time.
func TestCoopVirtualClockOrder(t *testing.T) {
	var log []string
	m := MustNew(Config{Procs: 4, Params: Params{Tau: 1, Delta: 1}, Sched: SchedCooperative})
	err := m.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Recv(3, 9)
			p.Charge(100)
			p.Send(1, 1, nil, 0)
			p.Send(2, 2, nil, 0)
			log = append(log, "0")
		case 1:
			p.Charge(50)
			p.Recv(0, 1)
			log = append(log, "1")
		case 2:
			p.Charge(5)
			p.Recv(0, 2)
			log = append(log, "2")
		case 3:
			p.Send(0, 9, nil, 0)
			log = append(log, "3")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2 (clock 5) must be resumed before rank 1 (clock 50) once
	// rank 0's sends unblock them both.
	want := []string{"3", "0", "2", "1"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("execution order %v, want %v", log, want)
	}
}

// TestCoopDeadlockExactAndDeterministic: a mismatched receive must be
// reported as a deadlock error instantly (no ticker, no sleeps) and
// with a byte-identical diagnostic on every run.
func TestCoopDeadlockExactAndDeterministic(t *testing.T) {
	run := func() string {
		m := MustNew(Config{Procs: 3, Sched: SchedCooperative})
		err := m.Run(func(p *Proc) {
			p.Recv((p.Rank()+1)%3, 42)
		})
		if err == nil {
			t.Fatal("wedged machine returned no error")
		}
		return err.Error()
	}
	first := run()
	if !strings.Contains(first, "deadlock") {
		t.Fatalf("diagnostic lacks 'deadlock': %q", first)
	}
	if !strings.Contains(first, "processor 0 waits for (src=1, tag=42)") ||
		!strings.Contains(first, "processor 2 waits for (src=0, tag=42)") {
		t.Fatalf("diagnostic lacks the wait-for table: %q", first)
	}
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("deadlock diagnostic not deterministic:\n%q\n%q", first, again)
		}
	}
}

// TestCoopDeadlockPartial mirrors the goroutine-mode test: one clean
// finisher must not hide the wedge of the rest.
func TestCoopDeadlockPartial(t *testing.T) {
	m := MustNew(Config{Procs: 3, Sched: SchedCooperative})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			return
		}
		p.Recv(3-p.Rank(), 7)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock diagnostic, got %v", err)
	}
	if strings.Contains(err.Error(), "processor 0 waits") {
		t.Fatalf("finished processor listed as a waiter: %v", err)
	}
}

// TestCoopLongPingPong drives many block/resume cycles through the
// scheduler (the pattern that stressed the goroutine-mode monitor).
func TestCoopLongPingPong(t *testing.T) {
	m := MustNew(Config{Procs: 2, Sched: SchedCooperative})
	err := m.Run(func(p *Proc) {
		other := 1 - p.Rank()
		for i := 0; i < 2000; i++ {
			if p.Rank() == 0 {
				p.Send(other, i, nil, 0)
				p.Recv(other, i)
			} else {
				p.Recv(other, i)
				p.Send(other, i, nil, 0)
			}
		}
	})
	if err != nil {
		t.Fatalf("false deadlock: %v", err)
	}
}

// TestCoopRunReusable: repeated runs restart clocks and leave no
// scheduler state behind.
func TestCoopRunReusable(t *testing.T) {
	m := MustNew(Config{Procs: 2, Params: Params{Delta: 1}, Sched: SchedCooperative})
	for i := 0; i < 3; i++ {
		if err := m.Run(func(p *Proc) { p.Charge(4) }); err != nil {
			t.Fatal(err)
		}
		if m.MaxClock() != 4 {
			t.Fatalf("run %d: clock %v, want 4", i, m.MaxClock())
		}
	}
}

// TestCoopUndeliveredMessages: the post-run mailbox check works the
// same in cooperative mode.
func TestCoopUndeliveredMessages(t *testing.T) {
	m := MustNew(Config{Procs: 2, Sched: SchedCooperative})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, nil, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("expected undelivered-message error, got %v", err)
	}
}

// TestPanicPreferredOverInducedDeadlock is the regression test for the
// masked-root-cause bug: when one processor panics, its peers wedge
// waiting for messages it will never send, and before the fix Run
// returned the lowest-rank error — usually a secondary deadlock
// diagnostic — instead of the originating panic. Both modes must name
// the real panic.
func TestPanicPreferredOverInducedDeadlock(t *testing.T) {
	for _, sched := range schedModes {
		m := MustNew(Config{Procs: 4, Sched: sched})
		err := m.Run(func(p *Proc) {
			if p.Rank() == 2 {
				panic("root cause on rank 2")
			}
			p.Recv(2, 5) // rank 2 dies before sending: peers wedge
		})
		if err == nil {
			t.Fatalf("%v: no error surfaced", sched)
		}
		if !strings.Contains(err.Error(), "processor 2 panicked: root cause on rank 2") {
			t.Errorf("%v: root-cause panic masked: %v", sched, err)
		}
		if strings.Contains(err.Error(), "deadlock") {
			t.Errorf("%v: induced deadlock diagnostics not suppressed: %v", sched, err)
		}
	}
}

// TestRunJoinsConcurrentErrors: several non-deadlock failures are all
// reported, aggregated with errors.Join (before the fix only the
// lowest-rank error surfaced).
func TestRunJoinsConcurrentErrors(t *testing.T) {
	for _, sched := range schedModes {
		m := MustNew(Config{Procs: 4, Sched: sched})
		err := m.Run(func(p *Proc) {
			if p.Rank() == 1 || p.Rank() == 3 {
				panic("boom")
			}
		})
		if err == nil {
			t.Fatalf("%v: no error surfaced", sched)
		}
		for _, want := range []string{"processor 1 panicked", "processor 3 panicked"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%v: aggregated error misses %q: %v", sched, want, err)
			}
		}
	}
}

// TestTakeZeroesVacatedSlot is the regression test for the payload
// retention leak: compacting the queue must clear the vacated tail
// slot so the removed message's payload becomes collectable.
func TestTakeZeroesVacatedSlot(t *testing.T) {
	b := newMailbox()
	b.put(message{src: 0, tag: 1, payload: "keep"})
	b.put(message{src: 0, tag: 2, payload: "leak"})
	backing := b.queue[:2]
	w := newWatch(1, []*mailbox{b})
	if got := b.take(w, 0, 0, 1); got.payload != "keep" {
		t.Fatalf("took %v, want the tag-1 message", got.payload)
	}
	if backing[1].payload != nil {
		t.Fatalf("vacated tail slot still references payload %v", backing[1].payload)
	}
	if len(b.queue) != 1 || b.queue[0].payload != "leak" {
		t.Fatalf("queue corrupted by compaction: %+v", b.queue)
	}
}

func TestParseSched(t *testing.T) {
	cases := map[string]Sched{"goroutine": SchedGoroutine, "coop": SchedCooperative, "cooperative": SchedCooperative}
	for in, want := range cases {
		got, err := ParseSched(in)
		if err != nil || got != want {
			t.Errorf("ParseSched(%q) = %v, %v", in, got, err)
		}
		if got.String() == "" {
			t.Errorf("Sched(%v).String empty", got)
		}
	}
	if _, err := ParseSched("preemptive"); err == nil {
		t.Error("unknown scheduler accepted")
	}
}
