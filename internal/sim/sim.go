// Package sim emulates a coarse-grained distributed memory parallel
// machine of the kind the paper targets (Section 2): P processors with
// private local memories connected by an interconnection network that
// behaves like a virtual crossbar.
//
// Each logical processor runs as a goroutine in SPMD style and owns a
// virtual clock measured in microseconds. The clock advances according
// to the paper's two-level cost model:
//
//   - a local elementary operation costs Delta,
//   - sending an m-word message costs Tau + Mu*m, independent of the
//     distance between sender and receiver and of link congestion.
//
// Data really moves between processors (over channels guarded by
// mailboxes), so algorithms built on the emulator are exercised
// end-to-end; the virtual clocks merely attribute a reproducible cost to
// every step. The maximum clock over all processors at the end of a run
// plays the role of the wall-clock time the paper measures on the CM-5.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"packunpack/internal/metrics"
)

// Params holds the two-level machine model constants, all in
// microseconds. Tau is the communication start-up cost, Mu the
// per-word transfer time (the inverse of the data-transfer rate), and
// Delta the cost of one local elementary operation.
type Params struct {
	Tau   float64
	Mu    float64
	Delta float64
}

// CM5Params returns machine constants flavoured after the 32 MHz
// SPARC-based CM-5 nodes the paper used: an active-message start-up in
// the tens of microseconds, a per-word (4-byte) network cost of about
// half a microsecond, and a local elementary operation (a few
// instructions: load, test, store) around 0.15 µs.
//
// The absolute values only scale the reported times; the scheme
// comparisons in the paper are driven by operation and word counts.
func CM5Params() Params {
	return Params{Tau: 86, Mu: 0.5, Delta: 0.15}
}

// Sched selects how the machine schedules its logical processors on
// the host. The two modes produce identical virtual results (clocks,
// stats, phase breakdowns, payload routing); they differ only in host
// cost and in how deadlocks are detected.
type Sched int

const (
	// SchedGoroutine runs the P processor bodies as freely scheduled
	// goroutines: within-machine host parallelism, mailboxes guarded by
	// mutex/condvar, and a polling monitor that detects deadlock
	// heuristically (a stable all-blocked picture across a 2 ms scan).
	SchedGoroutine Sched = iota
	// SchedCooperative runs the bodies as coroutine-style goroutines
	// scheduled one at a time in virtual-clock order: the runnable
	// processor with the smallest clock runs until it blocks in Recv.
	// Exactly one body runs at any moment, so mailbox access needs no
	// locks, and the scheduler sees every blocked receive, which makes
	// deadlock an exact structural condition (all live processors
	// blocked with no matching message anywhere) detected instantly
	// with a full wait-for diagnostic — no ticker, no trip latency, no
	// host-load sensitivity. Preferred when machines are already run in
	// parallel across experiment points (the sweep engine's default).
	SchedCooperative
)

func (s Sched) String() string {
	switch s {
	case SchedGoroutine:
		return "goroutine"
	case SchedCooperative:
		return "coop"
	}
	return fmt.Sprintf("Sched(%d)", int(s))
}

// ParseSched maps the packbench -sched flag values to a Sched.
func ParseSched(s string) (Sched, error) {
	switch s {
	case "goroutine":
		return SchedGoroutine, nil
	case "coop", "cooperative":
		return SchedCooperative, nil
	}
	return 0, fmt.Errorf("sim: unknown scheduler %q (want goroutine or coop)", s)
}

// Config describes a machine to build.
type Config struct {
	// Procs is the number of logical processors, P >= 1.
	Procs int
	// Sched selects the execution mode; the zero value is
	// SchedGoroutine, the historical concurrent mode.
	Sched Sched
	// Params are the cost-model constants. Zero values are allowed
	// (they produce a free machine, useful in unit tests).
	Params Params
	// SelfSendFree, when set, makes messages a processor sends to
	// itself cost nothing. The paper's implementation did NOT shortcut
	// self messages into local copies ("local copy was not performed
	// when a processor needed to send a message to itself"), so the
	// default (false) charges self messages like any other; the flag
	// exists for ablation.
	SelfSendFree bool
	// Record, when set, keeps a per-processor timeline of virtual-time
	// spans (phase, computation/communication, start, end) retrievable
	// via Machine.Spans after a run. Contiguous spans of the same kind
	// are merged, so the overhead is modest; leave it off for large
	// parameter sweeps.
	Record bool
	// Trace, when set, records structured events (sends, deliveries,
	// receives, wake-ups, phase transitions, charge batches — see
	// trace.go) into per-processor buffers retrievable via
	// Machine.Events after a run. Independent of Record; the exporters
	// in internal/trace want both.
	Trace bool
	// Sink, when non-nil, additionally streams every trace event to the
	// sink as it is produced (without requiring Trace's buffering). See
	// EventSink for the concurrency contract.
	Sink EventSink
	// Metrics, when non-nil, attaches the backend-agnostic telemetry
	// registry (internal/metrics): the instrumented layers above the
	// endpoint (pack, comm) record counters and latency histograms into
	// it. The emulator itself records nothing — virtual-time accounting
	// already lives in Stats/Spans/Events — so attaching a registry
	// never perturbs virtual results. Nil (the default) disables
	// telemetry at one-branch cost in the instrumented paths.
	Metrics *metrics.Registry
	// Faults, when non-nil, enables the deterministic fault-injection
	// subsystem (fault.go): TrySend delivery attempts are subjected to
	// a seeded schedule of drops, duplications, reorderings, delays,
	// and sender stalls, and Machine.FaultReport summarises the run.
	// New validates the plan and stores a normalized private copy. Nil
	// leaves every communication primitive exact.
	Faults *FaultConfig
	// Flight, when non-nil, keeps the most recent events of every rank
	// in fixed-size ring buffers (flight.go) — a bounded post-mortem
	// window that stays affordable on long runs where full tracing is
	// not. On a failed run, snapshot it and hand the rings to
	// internal/trace's flight dumper. Independent of Trace and Sink;
	// any combination works.
	Flight *FlightRecorder
}

// Span is one recorded interval of a processor timeline: [Start, End)
// in virtual microseconds, attributed to a phase, either computation
// or communication (sending, or waiting for a message).
type Span struct {
	Phase string
	Comm  bool
	Start float64
	End   float64
}

// message is an in-flight point-to-point message.
type message struct {
	src     int
	tag     int
	payload any
	words   int
	arrival float64 // virtual time at which the message is available
	id      uint64  // trace message id; zero when tracing is off
}

// mailbox is an unbounded, tag-matched receive queue. Sends never
// block (eager protocol), so a correct SPMD exchange pattern can never
// deadlock regardless of send/receive ordering; a receive that no
// matching send will ever satisfy still can, which the machine's
// deadlock monitor (watch) detects.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// removeAt deletes and returns queue[i], compacting the queue and
// zeroing the vacated tail slot so the removed message's payload does
// not stay reachable through the slice's spare capacity (a payload
// retention leak across long runs otherwise). Caller must hold b.mu in
// goroutine mode; in cooperative mode access is already serialized.
func (b *mailbox) removeAt(i int) message {
	m := b.queue[i]
	last := len(b.queue) - 1
	copy(b.queue[i:], b.queue[i+1:])
	b.queue[last] = message{}
	b.queue = b.queue[:last]
	return m
}

// ErrDeadlock is the sentinel every deadlock-shaped run error matches
// via errors.Is: the goroutine-mode per-rank unwind, the cooperative
// scheduler's machine-level wait-for diagnostic, and the real
// backend's watchdog abort all identify as ErrDeadlock. Callers (the
// bench harness's flight-recorder dump trigger, tests) should test
// errors.Is(err, sim.ErrDeadlock) rather than matching message text.
var ErrDeadlock = errors.New("sim: deadlock")

// deadlockError is the panic value raised in a processor that is
// unblocked because the machine is wedged (the cooperative scheduler
// proved it, or the goroutine-mode monitor tripped). Run recognizes it
// so induced deadlock diagnostics never mask a root-cause panic.
type deadlockError struct {
	rank, src, tag int
}

func (e deadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: processor %d waiting for a message from %d with tag %d that can never arrive", e.rank, e.src, e.tag)
}

// Is makes errors.Is(err, ErrDeadlock) hold for per-rank unwinds.
func (e deadlockError) Is(target error) bool { return target == ErrDeadlock }

// take removes and returns the first message matching (src, tag),
// blocking until one arrives. Messages from a given source with a given
// tag are delivered in send order. If the machine's deadlock monitor
// trips while this processor is blocked, take panics with a diagnostic
// (recovered by Run into an error).
func (b *mailbox) take(w *watch, rank, src, tag int) message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if m.src == src && m.tag == tag {
				return b.removeAt(i)
			}
		}
		w.register(rank, src, tag)
		if w.dead.Load() {
			w.unregister(rank)
			panic(deadlockError{rank: rank, src: src, tag: tag})
		}
		b.cond.Wait()
		w.unregister(rank)
		if w.dead.Load() {
			panic(deadlockError{rank: rank, src: src, tag: tag})
		}
	}
}

// matches reports whether the queue holds a message for (src, tag).
// Caller must hold b.mu.
func (b *mailbox) matchesLocked(src, tag int) bool {
	for _, m := range b.queue {
		if m.src == src && m.tag == tag {
			return true
		}
	}
	return false
}

// waitInfo records what a blocked processor is waiting for.
type waitInfo struct {
	src, tag int
}

// watch is the machine's deadlock monitor. Blocked receivers register
// what they wait for; a background goroutine (one per Run) checks
// periodically whether every still-running processor is blocked with
// no matching message anywhere — the definition of a wedged machine —
// and if the picture is stable across the scan, trips: sets the dead
// flag and wakes every waiter, which then panic with a diagnostic
// instead of hanging the test suite.
type watch struct {
	mu       sync.Mutex
	waiting  map[int]waitInfo
	finished int
	epoch    uint64
	total    int
	boxes    []*mailbox
	dead     atomic.Bool
	stop     chan struct{}
}

func newWatch(total int, boxes []*mailbox) *watch {
	return &watch{waiting: make(map[int]waitInfo), total: total, boxes: boxes, stop: make(chan struct{})}
}

func (w *watch) register(rank, src, tag int) {
	w.mu.Lock()
	w.waiting[rank] = waitInfo{src: src, tag: tag}
	w.epoch++
	w.mu.Unlock()
}

func (w *watch) unregister(rank int) {
	w.mu.Lock()
	delete(w.waiting, rank)
	w.epoch++
	w.mu.Unlock()
}

func (w *watch) finish() {
	w.mu.Lock()
	w.finished++
	w.epoch++
	w.mu.Unlock()
}

// check performs one deadlock scan; it returns true if it tripped.
func (w *watch) check() bool {
	w.mu.Lock()
	if len(w.waiting)+w.finished != w.total || len(w.waiting) == 0 {
		w.mu.Unlock()
		return false
	}
	epoch := w.epoch
	snapshot := make(map[int]waitInfo, len(w.waiting))
	for r, i := range w.waiting {
		snapshot[r] = i
	}
	w.mu.Unlock()

	// A blocked receiver with a matching queued message is merely slow
	// to wake (the broadcast already happened), not deadlocked.
	for rank, info := range snapshot {
		b := w.boxes[rank]
		b.mu.Lock()
		ok := b.matchesLocked(info.src, info.tag)
		b.mu.Unlock()
		if ok {
			return false
		}
	}

	// Confirm nothing moved while we scanned.
	w.mu.Lock()
	stable := w.epoch == epoch
	w.mu.Unlock()
	if !stable {
		return false
	}

	w.dead.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	return true
}

// monitor polls until stopped or tripped.
func (w *watch) monitor() {
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			if w.check() {
				return
			}
		}
	}
}

func (b *mailbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// PhaseStats is the virtual-time breakdown attributed to one named
// phase of an algorithm.
type PhaseStats struct {
	Comp float64 // local computation time, µs
	Comm float64 // communication time (send occupancy + receive waiting), µs
}

// Stats summarises one processor's activity after a run.
type Stats struct {
	Rank      int
	Clock     float64 // final virtual time, µs
	Comp      float64 // total local computation, µs
	Comm      float64 // total communication, µs
	Ops       int64   // elementary operations charged
	MsgsSent  int64
	WordsSent int64
	Phases    map[string]PhaseStats
	// Faults tallies this processor's injected faults and recovery
	// actions; all zero unless the machine ran with Config.Faults set.
	Faults FaultCounters
}

// Machine is a collection of logical processors sharing a virtual
// crossbar network.
type Machine struct {
	cfg   Config
	boxes []*mailbox

	// running guards against concurrent Run calls on one machine (the
	// mailboxes are shared between runs). Distinct Machine values share
	// no state, so any number of machines may run concurrently — the
	// parallel sweep harness relies on that.
	running atomic.Bool

	// seq is the machine-global event sequence counter of the
	// cooperative scheduler (only the running processor touches it, and
	// handoffs order every access); reset at the start of each Run.
	seq uint64

	mu          sync.Mutex
	stats       []Stats
	spans       [][]Span
	events      [][]Event
	faultReport *FaultReport
}

// New builds a machine with cfg.Procs processors.
func New(cfg Config) (*Machine, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("sim: Procs must be >= 1, got %d", cfg.Procs)
	}
	if cfg.Params.Tau < 0 || cfg.Params.Mu < 0 || cfg.Params.Delta < 0 {
		return nil, fmt.Errorf("sim: negative cost parameters %+v", cfg.Params)
	}
	faults, err := normalizeFaults(cfg.Faults, cfg.Params)
	if err != nil {
		return nil, err
	}
	cfg.Faults = faults
	if cfg.Flight != nil && cfg.Flight.Procs() < cfg.Procs {
		return nil, fmt.Errorf("sim: flight recorder built for %d ranks cannot cover P=%d", cfg.Flight.Procs(), cfg.Procs)
	}
	m := &Machine{cfg: cfg, boxes: make([]*mailbox, cfg.Procs)}
	for i := range m.boxes {
		m.boxes[i] = newMailbox()
	}
	return m, nil
}

// MustNew is New for configurations known to be valid (tests, examples).
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Procs returns the number of processors.
func (m *Machine) Procs() int { return m.cfg.Procs }

// Params returns the machine cost constants.
func (m *Machine) Params() Params { return m.cfg.Params }

// Run executes body once per processor, SPMD style, and blocks until
// every processor finishes. It returns an error if any processor
// panicked or if any message was left undelivered (which would indicate
// a mismatched communication pattern).
//
// Run may be called repeatedly (each call starts all clocks from
// zero) but not concurrently: the machine's mailboxes are shared
// between runs. Concurrent calls are detected and return an error.
// Distinct machines are fully independent and safe to run in parallel.
func (m *Machine) Run(body func(p *Proc)) error {
	if !m.running.CompareAndSwap(false, true) {
		return fmt.Errorf("sim: Machine.Run called concurrently on the same machine")
	}
	defer m.running.Store(false)
	m.seq = 0
	if m.cfg.Sched == SchedCooperative {
		return m.runCoop(body)
	}
	return m.runGoroutine(body)
}

// newProcs builds the per-run processor values, clocks at zero.
func (m *Machine) newProcs() []*Proc {
	procs := make([]*Proc, m.cfg.Procs)
	for i := range procs {
		procs[i] = &Proc{
			rank:  i,
			m:     m,
			box:   m.boxes[i],
			phase: "default",
			stats: Stats{Rank: i, Phases: make(map[string]PhaseStats)},
		}
	}
	return procs
}

// recoverRankErr converts a recovered panic value into a per-rank
// error, preserving deadlockError identity so finishRun can tell
// induced deadlock unwinding apart from root-cause failures.
func recoverRankErr(rank int, r any) error {
	if de, ok := r.(deadlockError); ok {
		return de
	}
	if fe, ok := r.(*FaultBudgetError); ok {
		return fe
	}
	return fmt.Errorf("sim: processor %d panicked: %v", rank, r)
}

// runGoroutine is the concurrent mode: one goroutine per processor,
// locked mailboxes, and the polling deadlock monitor.
func (m *Machine) runGoroutine(body func(p *Proc)) error {
	w := newWatch(m.cfg.Procs, m.boxes)
	go w.monitor()
	defer close(w.stop)
	procs := m.newProcs()
	for _, p := range procs {
		p.w = w
	}
	errs := make([]error, m.cfg.Procs)
	var wg sync.WaitGroup
	wg.Add(m.cfg.Procs)
	for i := range procs {
		go func(p *Proc) {
			defer wg.Done()
			defer w.finish()
			defer func() {
				if r := recover(); r != nil {
					errs[p.rank] = recoverRankErr(p.rank, r)
				}
			}()
			body(p)
			p.flushHeld(-1) // release reorder-held messages before finishing
		}(procs[i])
	}
	wg.Wait()
	return m.finishRun(procs, errs, nil)
}

// finishRun publishes the run's statistics and folds the per-rank
// errors into the run result. Non-deadlock errors are preferred: when a
// processor panics, its peers are typically woken with induced
// "deadlock" panics, and reporting one of those would mask the root
// cause. Remaining errors of the winning class are aggregated with
// errors.Join; diag, when non-nil, is the cooperative scheduler's
// machine-level wait-for diagnostic and stands in for the per-rank
// deadlock unwind errors.
func (m *Machine) finishRun(procs []*Proc, errs []error, diag error) error {
	m.mu.Lock()
	m.stats = make([]Stats, m.cfg.Procs)
	m.spans = make([][]Span, m.cfg.Procs)
	m.events = make([][]Event, m.cfg.Procs)
	m.faultReport = nil
	if m.cfg.Faults != nil {
		// Trailing duplicates a receiver had no reason to consume are an
		// expected end state of a faulted run, not a protocol error:
		// count them as residual (attributed to the destination rank)
		// and drain the mailboxes so a later Run starts clean.
		for i, b := range m.boxes {
			if n := len(b.queue); n > 0 {
				procs[i].faults.Residual += int64(n)
				b.queue = nil
			}
		}
		m.faultReport = buildFaultReport(m.cfg.Faults.Seed, procs)
	}
	for i, p := range procs {
		if p.tracing() {
			p.flushCharge()
		}
		p.stats.Clock = p.clock
		p.stats.Faults = p.faults
		m.stats[i] = p.stats
		m.spans[i] = p.spans
		m.events[i] = p.events
	}
	m.mu.Unlock()

	var primary, deadlocks []error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var de deadlockError
		if errors.As(err, &de) {
			deadlocks = append(deadlocks, err)
		} else {
			primary = append(primary, err)
		}
	}
	switch {
	case len(primary) > 0:
		return errors.Join(primary...)
	case diag != nil:
		return diag
	case len(deadlocks) > 0:
		return errors.Join(deadlocks...)
	}
	if m.cfg.Faults != nil {
		return nil // leftovers were folded into the report's residual
	}
	for i, b := range m.boxes {
		if n := b.pending(); n != 0 {
			return fmt.Errorf("sim: processor %d finished with %d undelivered messages", i, n)
		}
	}
	return nil
}

// Stats returns the per-processor statistics of the most recent Run,
// ordered by rank. The result is a deep copy (including the Phases
// maps): callers may mutate it, and a later Run cannot corrupt an
// earlier snapshot.
func (m *Machine) Stats() []Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Stats, len(m.stats))
	for i, s := range m.stats {
		phases := make(map[string]PhaseStats, len(s.Phases))
		for name, ph := range s.Phases {
			phases[name] = ph
		}
		s.Phases = phases
		out[i] = s
	}
	return out
}

// Spans returns the recorded per-processor timelines of the most
// recent Run (nil unless Config.Record was set), ordered by rank. The
// rows are deep copies: mutating them does not touch the machine's
// snapshot.
func (m *Machine) Spans() [][]Span {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]Span, len(m.spans))
	for i, row := range m.spans {
		out[i] = append([]Span(nil), row...)
	}
	return out
}

// MaxClock returns the largest final virtual clock of the most recent
// Run in microseconds — the emulator's analogue of elapsed time.
func (m *Machine) MaxClock() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max float64
	for _, s := range m.stats {
		if s.Clock > max {
			max = s.Clock
		}
	}
	return max
}

// MaxPhase returns the largest per-processor total (Comp+Comm) spent in
// the named phase, and the largest Comp and Comm parts individually.
// Taking per-component maxima mirrors how the paper reports the slowest
// processor for each measured stage.
func (m *Machine) MaxPhase(name string) (total, comp, comm float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.stats {
		ph := s.Phases[name]
		if t := ph.Comp + ph.Comm; t > total {
			total = t
		}
		if ph.Comp > comp {
			comp = ph.Comp
		}
		if ph.Comm > comm {
			comm = ph.Comm
		}
	}
	return total, comp, comm
}

// PhaseNames returns the sorted union of phase names seen in the most
// recent Run.
func (m *Machine) PhaseNames() []string {
	m.mu.Lock()
	seen := map[string]bool{}
	for _, s := range m.stats {
		for name := range s.Phases {
			seen[name] = true
		}
	}
	m.mu.Unlock()
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Proc is one logical processor inside a Run. It is only valid inside
// the body function passed to Run and must not be shared between
// goroutines.
type Proc struct {
	rank  int
	m     *Machine
	w     *watch     // goroutine mode only
	cs    *coopSched // cooperative mode only
	box   *mailbox
	clock float64
	phase string
	stats Stats
	spans []Span

	// Event-tracing state (trace.go); all zero when tracing is off.
	events      []Event
	seq         uint64 // per-rank event counter (goroutine mode)
	sends       uint64 // per-rank message counter for MsgID
	chargeOpen  bool   // a charge batch is pending
	chargeStart float64
	chargeEnd   float64
	chargeOps   int64

	// Fault-injection state (fault.go); all zero when faults are off.
	faultSeq    uint64 // per-rank delivery attempt counter
	faults      FaultCounters
	phaseFaults map[string]FaultCounters
	held        []heldMsg // reorder-faulted messages awaiting overtake
	commState   any // opaque slot for the reliable transport (CommState)
}

// Metrics returns the telemetry registry attached via Config.Metrics,
// nil when telemetry is off (the instrumented layers' nil-registry
// fast path then short-circuits every recording).
func (p *Proc) Metrics() *metrics.Registry { return p.m.cfg.Metrics }

// record appends (or extends) a timeline span ending at the current
// clock.
func (p *Proc) record(comm bool, start float64) {
	if !p.m.cfg.Record || p.clock == start {
		return
	}
	if n := len(p.spans); n > 0 {
		last := &p.spans[n-1]
		if last.Phase == p.phase && last.Comm == comm && last.End == start {
			last.End = p.clock
			return
		}
	}
	p.spans = append(p.spans, Span{Phase: p.phase, Comm: comm, Start: start, End: p.clock})
}

// Rank returns this processor's id in [0, NProcs).
func (p *Proc) Rank() int { return p.rank }

// NProcs returns the machine size P.
func (p *Proc) NProcs() int { return p.m.cfg.Procs }

// Params returns the machine cost constants.
func (p *Proc) Params() Params { return p.m.cfg.Params }

// Clock returns the current virtual time in microseconds.
func (p *Proc) Clock() float64 { return p.clock }

// SetPhase switches cost attribution to the named phase and returns the
// previous phase name, so callers can restore it:
//
//	defer p.SetPhase(p.SetPhase("ranking"))
func (p *Proc) SetPhase(name string) (previous string) {
	previous = p.phase
	if name != previous && p.tracing() {
		p.flushCharge() // the pending batch belongs to the old phase
		p.phase = name
		p.emit(Event{Kind: EvPhase, Time: p.clock, Phase: name})
		return previous
	}
	p.phase = name
	return previous
}

func (p *Proc) addComp(t float64) {
	start := p.clock
	p.clock += t
	p.stats.Comp += t
	ph := p.stats.Phases[p.phase]
	ph.Comp += t
	p.stats.Phases[p.phase] = ph
	p.record(false, start)
}

func (p *Proc) addComm(t float64) {
	start := p.clock
	p.clock += t
	p.stats.Comm += t
	ph := p.stats.Phases[p.phase]
	ph.Comm += t
	p.stats.Phases[p.phase] = ph
	p.record(true, start)
}

// Charge accounts for ops local elementary operations (cost ops*Delta).
// Algorithms call it wherever the paper's model counts local work: one
// op per element scanned, per record field written, per message word
// composed or decomposed, and so on.
func (p *Proc) Charge(ops int) {
	if ops <= 0 {
		return
	}
	p.stats.Ops += int64(ops)
	start := p.clock
	p.addComp(float64(ops) * p.m.cfg.Params.Delta)
	if p.tracing() {
		p.noteCharge(start, int64(ops))
	}
}

// Send transmits payload (words machine words long) to processor dst
// with the given tag. It never blocks. The sender is charged the full
// Tau + Mu*words occupancy, and the message becomes available to the
// receiver at the sender's clock after the send completes.
func (p *Proc) Send(dst, tag int, payload any, words int) {
	if dst < 0 || dst >= p.m.cfg.Procs {
		panic(fmt.Sprintf("sim: Send to invalid rank %d (P=%d)", dst, p.m.cfg.Procs))
	}
	if words < 0 {
		panic("sim: Send with negative word count")
	}
	cost := p.m.cfg.Params.Tau + p.m.cfg.Params.Mu*float64(words)
	if dst == p.rank && p.m.cfg.SelfSendFree {
		cost = 0
	}
	p.addComm(cost)
	p.stats.MsgsSent++
	p.stats.WordsSent += int64(words)
	var id uint64
	if p.tracing() {
		p.flushCharge()
		p.sends++
		id = msgID(p.rank, p.sends)
		p.emit(Event{Kind: EvSend, Peer: dst, Tag: tag, Words: words, Time: p.clock, Dur: cost, MsgID: id})
	}
	p.deliver(dst, message{src: p.rank, tag: tag, payload: payload, words: words, arrival: p.clock, id: id})
}

// deliver appends a message to dst's mailbox. In cooperative mode
// exactly one processor runs at a time (handoffs through the scheduler
// establish the ordering), so the queue is appended to directly; in
// goroutine mode the locked put wakes any blocked receiver.
func (p *Proc) deliver(dst int, m message) {
	if p.tracing() {
		p.flushCharge()
		p.emit(Event{Kind: EvDeliver, Peer: dst, Tag: m.tag, Words: m.words, Time: m.arrival, MsgID: m.id})
	}
	if p.cs != nil {
		b := p.m.boxes[dst]
		b.queue = append(b.queue, m)
		p.cs.noteDeliver(dst, m.src, m.tag)
		return
	}
	p.m.boxes[dst].put(m)
}

// SendFree transmits a zero-cost control message: it charges nothing,
// counts nothing, and arrives at the sender's current clock. It exists
// for modelling out-of-band knowledge in ablation modes (see
// comm.A2AOptions) and must not be used on timed algorithm paths.
func (p *Proc) SendFree(dst, tag int, payload any) {
	if dst < 0 || dst >= p.m.cfg.Procs {
		panic(fmt.Sprintf("sim: SendFree to invalid rank %d (P=%d)", dst, p.m.cfg.Procs))
	}
	var id uint64
	if p.tracing() {
		p.sends++
		id = msgID(p.rank, p.sends)
	}
	p.deliver(dst, message{src: p.rank, tag: tag, payload: payload, arrival: p.clock, id: id})
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload and word count. The receiver's clock advances to
// the message arrival time if it is still earlier; the waiting time is
// attributed to communication.
func (p *Proc) Recv(src, tag int) (payload any, words int) {
	if src < 0 || src >= p.m.cfg.Procs {
		panic(fmt.Sprintf("sim: Recv from invalid rank %d (P=%d)", src, p.m.cfg.Procs))
	}
	if p.m.cfg.Faults != nil {
		// About to (possibly) block: release reorder-held messages so a
		// peer waiting on one of them can make progress (flushHeld).
		p.flushHeld(-1)
	}
	traced := p.tracing()
	blockClock := p.clock
	if traced {
		p.flushCharge()
		p.emit(Event{Kind: EvRecvBlock, Peer: src, Tag: tag, Time: p.clock})
	}
	var msg message
	if p.cs != nil {
		msg = p.box.takeCoop(p.cs, p.rank, src, tag)
	} else {
		msg = p.box.take(p.w, p.rank, src, tag)
	}
	if msg.arrival > p.clock {
		p.addComm(msg.arrival - p.clock)
	}
	if traced {
		p.emit(Event{Kind: EvRecvWake, Peer: src, Tag: tag, Words: msg.words, Time: p.clock, Dur: p.clock - blockClock, MsgID: msg.id})
	}
	return msg.payload, msg.words
}

// SendInts is Send for the common []int payload, charging one machine
// word per element.
func (p *Proc) SendInts(dst, tag int, v []int) {
	p.Send(dst, tag, v, len(v))
}

// RecvInts is Recv for []int payloads.
func (p *Proc) RecvInts(src, tag int) []int {
	payload, _ := p.Recv(src, tag)
	if payload == nil {
		return nil
	}
	return payload.([]int)
}
