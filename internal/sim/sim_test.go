package sim

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0}); err == nil {
		t.Error("Procs=0 accepted")
	}
	if _, err := New(Config{Procs: -3}); err == nil {
		t.Error("negative Procs accepted")
	}
	if _, err := New(Config{Procs: 2, Params: Params{Tau: -1}}); err == nil {
		t.Error("negative Tau accepted")
	}
	if m, err := New(Config{Procs: 2}); err != nil || m == nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{Procs: 0})
}

func TestRunSPMD(t *testing.T) {
	m := MustNew(Config{Procs: 8})
	var count int64
	err := m.Run(func(p *Proc) {
		atomic.AddInt64(&count, 1)
		if p.NProcs() != 8 {
			panic("wrong NProcs")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("body ran %d times, want 8", count)
	}
}

func TestRunReportsPanics(t *testing.T) {
	m := MustNew(Config{Procs: 4})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "processor 2 panicked") {
		t.Fatalf("expected panic report, got %v", err)
	}
}

func TestRunDetectsUndeliveredMessages(t *testing.T) {
	m := MustNew(Config{Procs: 2})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, nil, 0)
		}
		// Rank 1 never receives.
	})
	if err == nil || !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("expected undelivered-message error, got %v", err)
	}
}

func TestChargeAdvancesClock(t *testing.T) {
	m := MustNew(Config{Procs: 1, Params: Params{Delta: 0.5}})
	err := m.Run(func(p *Proc) {
		p.Charge(10)
		p.Charge(0)  // no-op
		p.Charge(-5) // no-op
		if p.Clock() != 5 {
			panic(fmt.Sprintf("clock %v, want 5", p.Clock()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()[0]
	if s.Comp != 5 || s.Ops != 10 || s.Comm != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSendRecvCostModel(t *testing.T) {
	// tau=10, mu=2: a 5-word message costs 10+10=20 at the sender; the
	// receiver (idle) advances to the arrival time.
	m := MustNew(Config{Procs: 2, Params: Params{Tau: 10, Mu: 2}})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []int{1, 2, 3, 4, 5}, 5)
			if p.Clock() != 20 {
				panic(fmt.Sprintf("sender clock %v, want 20", p.Clock()))
			}
		} else {
			v := p.RecvInts(0, 1)
			if !reflect.DeepEqual(v, []int{1, 2, 3, 4, 5}) {
				panic("payload corrupted")
			}
			if p.Clock() != 20 {
				panic(fmt.Sprintf("receiver clock %v, want 20", p.Clock()))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st[0].MsgsSent != 1 || st[0].WordsSent != 5 {
		t.Fatalf("sender stats %+v", st[0])
	}
	if m.MaxClock() != 20 {
		t.Fatalf("MaxClock %v, want 20", m.MaxClock())
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	// A receiver already past the arrival time keeps its clock.
	m := MustNew(Config{Procs: 2, Params: Params{Tau: 1, Mu: 0, Delta: 1}})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 0) // arrival at t=1
		} else {
			p.Charge(100) // clock 100
			p.Recv(0, 1)
			if p.Clock() != 100 {
				panic(fmt.Sprintf("receiver clock %v, want 100", p.Clock()))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendPolicy(t *testing.T) {
	for _, free := range []bool{false, true} {
		m := MustNew(Config{Procs: 1, Params: Params{Tau: 10, Mu: 1}, SelfSendFree: free})
		err := m.Run(func(p *Proc) {
			p.Send(0, 1, []int{1, 2}, 2)
			p.Recv(0, 1)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 12.0
		if free {
			want = 0
		}
		if got := m.MaxClock(); got != want {
			t.Errorf("SelfSendFree=%v: clock %v, want %v", free, got, want)
		}
	}
}

func TestTagMatchingAndFIFO(t *testing.T) {
	m := MustNew(Config{Procs: 2})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendInts(1, 5, []int{50})
			p.SendInts(1, 3, []int{30})
			p.SendInts(1, 5, []int{51})
		} else {
			// Receive out of tag order: tag 3 first, then the two
			// tag-5 messages must come back in send order.
			if v := p.RecvInts(0, 3); v[0] != 30 {
				panic("tag 3 mismatched")
			}
			if v := p.RecvInts(0, 5); v[0] != 50 {
				panic("tag 5 not FIFO")
			}
			if v := p.RecvInts(0, 5); v[0] != 51 {
				panic("tag 5 second message wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhaseAttribution(t *testing.T) {
	m := MustNew(Config{Procs: 2, Params: Params{Tau: 5, Mu: 1, Delta: 1}})
	err := m.Run(func(p *Proc) {
		p.Charge(3) // default phase
		prev := p.SetPhase("stage2")
		if prev != "default" {
			panic("unexpected previous phase")
		}
		p.Charge(7)
		if p.Rank() == 0 {
			p.Send(1, 1, nil, 4)
		} else {
			p.Recv(0, 1)
		}
		p.SetPhase(prev)
		p.Charge(2)
	})
	if err != nil {
		t.Fatal(err)
	}
	s0 := m.Stats()[0]
	if s0.Phases["default"].Comp != 5 {
		t.Errorf("default comp %v, want 5", s0.Phases["default"].Comp)
	}
	if s0.Phases["stage2"].Comp != 7 || s0.Phases["stage2"].Comm != 9 {
		t.Errorf("stage2 %+v, want comp 7 comm 9", s0.Phases["stage2"])
	}
	total, comp, comm := m.MaxPhase("stage2")
	if comp != 7 || comm < 9 || total < 16 {
		t.Errorf("MaxPhase = %v %v %v", total, comp, comm)
	}
	names := m.PhaseNames()
	if !reflect.DeepEqual(names, []string{"default", "stage2"}) {
		t.Errorf("PhaseNames = %v", names)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Stats {
		m := MustNew(Config{Procs: 8, Params: CM5Params()})
		err := m.Run(func(p *Proc) {
			// An irregular exchange pattern.
			n := p.NProcs()
			for r := 1; r < n; r++ {
				dst := (p.Rank() + r) % n
				buf := make([]int, (p.Rank()*r)%7)
				p.SendInts(dst, r, buf)
			}
			for r := 1; r < n; r++ {
				src := (p.Rank() - r + n) % n
				p.RecvInts(src, r)
			}
			p.Charge(p.Rank() * 10)
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated runs produced different statistics")
	}
}

func TestRunReusable(t *testing.T) {
	m := MustNew(Config{Procs: 2, Params: Params{Delta: 1}})
	for i := 0; i < 3; i++ {
		err := m.Run(func(p *Proc) { p.Charge(4) })
		if err != nil {
			t.Fatal(err)
		}
		if m.MaxClock() != 4 {
			t.Fatalf("run %d: clock %v, want 4 (clocks must reset)", i, m.MaxClock())
		}
	}
}

func TestSendValidation(t *testing.T) {
	m := MustNew(Config{Procs: 2})
	err := m.Run(func(p *Proc) {
		defer func() {
			if recover() == nil {
				panic("Send to invalid rank did not panic")
			}
		}()
		p.Send(5, 1, nil, 0)
	})
	// The inner panic is converted into the outer panic's absence;
	// Run must not report an error because the recover swallowed it...
	// except our deferred check re-panics when Send does NOT panic.
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSendNegativeWordsPanics(t *testing.T) {
	m := MustNew(Config{Procs: 1})
	err := m.Run(func(p *Proc) {
		defer func() {
			if recover() == nil {
				panic("negative words did not panic")
			}
		}()
		p.Send(0, 1, nil, -1)
	})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCM5ParamsSane(t *testing.T) {
	p := CM5Params()
	if p.Tau <= 0 || p.Mu <= 0 || p.Delta <= 0 {
		t.Fatalf("CM5Params not positive: %+v", p)
	}
	if p.Tau < p.Mu {
		t.Fatal("start-up cost should dominate per-word cost")
	}
}

func TestMaxClockEmpty(t *testing.T) {
	m := MustNew(Config{Procs: 2})
	if m.MaxClock() != 0 {
		t.Fatal("MaxClock before any run should be 0")
	}
}

func TestVirtualTimeCausality(t *testing.T) {
	// A chain of messages: each hop adds tau+mu*words; the final clock
	// must be the sum along the chain regardless of real scheduling.
	const hops = 5
	m := MustNew(Config{Procs: hops + 1, Params: Params{Tau: 3, Mu: 1}})
	err := m.Run(func(p *Proc) {
		r := p.Rank()
		if r > 0 {
			p.Recv(r-1, 9)
		}
		if r < hops {
			p.Send(r+1, 9, nil, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(hops * (3 + 2))
	if got := m.MaxClock(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("chain clock %v, want %v", got, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := MustNew(Config{Procs: 3})
	err := m.Run(func(p *Proc) {
		// Everybody waits for a message from the next processor that
		// nobody ever sends: a classic wait cycle.
		p.Recv((p.Rank()+1)%3, 42)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock diagnostic, got %v", err)
	}
}

func TestDeadlockDetectionPartial(t *testing.T) {
	// One processor finishes cleanly; the others wedge on each other.
	m := MustNew(Config{Procs: 3})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			return
		}
		p.Recv(3-p.Rank(), 7) // 1 waits for 2, 2 waits for 1
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock diagnostic, got %v", err)
	}
}

func TestNoFalseDeadlockOnSlowPingPong(t *testing.T) {
	// A long serial dependency chain with queued-but-unconsumed
	// messages must NOT trip the monitor.
	m := MustNew(Config{Procs: 2})
	err := m.Run(func(p *Proc) {
		other := 1 - p.Rank()
		for i := 0; i < 2000; i++ {
			if p.Rank() == 0 {
				p.Send(other, i, nil, 0)
				p.Recv(other, i)
			} else {
				p.Recv(other, i)
				p.Send(other, i, nil, 0)
			}
		}
	})
	if err != nil {
		t.Fatalf("false deadlock: %v", err)
	}
}

func TestMachineAccessors(t *testing.T) {
	m := MustNew(Config{Procs: 3, Params: Params{Tau: 1, Mu: 2, Delta: 3}})
	if m.Procs() != 3 {
		t.Fatalf("Procs = %d", m.Procs())
	}
	if m.Params() != (Params{Tau: 1, Mu: 2, Delta: 3}) {
		t.Fatalf("Params = %+v", m.Params())
	}
	err := m.Run(func(p *Proc) {
		if p.Params().Mu != 2 {
			panic("Proc.Params wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendFreeCostsNothing(t *testing.T) {
	m := MustNew(Config{Procs: 2, Params: Params{Tau: 100, Mu: 100}})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFree(1, 9, "hello")
			if p.Clock() != 0 {
				panic("SendFree charged time")
			}
		} else {
			payload, words := p.Recv(0, 9)
			if payload.(string) != "hello" || words != 0 {
				panic("SendFree payload mangled")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Stats() {
		if s.MsgsSent != 0 || s.WordsSent != 0 {
			t.Fatalf("SendFree counted in stats: %+v", s)
		}
	}
}

func TestSendFreeValidation(t *testing.T) {
	m := MustNew(Config{Procs: 1})
	err := m.Run(func(p *Proc) {
		defer func() {
			if recover() == nil {
				panic("SendFree to invalid rank did not panic")
			}
		}()
		p.SendFree(9, 1, nil)
	})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSpansRecordedInSim(t *testing.T) {
	m := MustNew(Config{Procs: 1, Params: Params{Delta: 1}, Record: true})
	if err := m.Run(func(p *Proc) { p.Charge(3); p.SetPhase("x"); p.Charge(2) }); err != nil {
		t.Fatal(err)
	}
	spans := m.Spans()
	if len(spans) != 1 || len(spans[0]) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0][1].Phase != "x" || spans[0][1].End != 5 {
		t.Fatalf("second span wrong: %+v", spans[0][1])
	}
}
