package sim

import (
	"reflect"
	"testing"
)

func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("42:drop=0.01,dup=0.005,reorder=0.01,delay=0.02,stall=0.001")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{Seed: 42, Drop: 0.01, Dup: 0.005, Reorder: 0.01, Delay: 0.02, Stall: 0.001}
	if *f != want {
		t.Errorf("ParseFaults = %+v, want %+v", *f, want)
	}
	f, err = ParseFaults("7:drop=0.5,timeout=200,retries=3,delaymax=50,stallmax=10")
	if err != nil {
		t.Fatal(err)
	}
	if f.Seed != 7 || f.Drop != 0.5 || f.RetryTimeout != 200 || f.MaxRetries != 3 || f.DelayMax != 50 || f.StallMax != 10 {
		t.Errorf("ParseFaults knobs mangled: %+v", *f)
	}
	if f, err = ParseFaults("9"); err != nil || f.Seed != 9 {
		t.Errorf("bare seed: %+v, %v", f, err)
	}
	for _, bad := range []string{"", "x:drop=0.1", "1:drop", "1:bogus=0.1", "1:drop=x", "1:retries=x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}

func TestFaultConfigValidation(t *testing.T) {
	for _, bad := range []FaultConfig{
		{Drop: 1.5}, {Dup: -0.1}, {Reorder: 2}, {Delay: -1}, {Stall: 7},
		{DelayMax: -1}, {StallMax: -1}, {RetryTimeout: -1},
	} {
		bad := bad
		if _, err := New(Config{Procs: 1, Faults: &bad}); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	// Defaults fill in on a normalized private copy; the caller's
	// struct stays untouched.
	user := &FaultConfig{Seed: 3, Drop: 0.1}
	m := MustNew(Config{Procs: 1, Params: CM5Params(), Faults: user})
	if err := m.Run(func(p *Proc) {
		f := p.Faults()
		if f.MaxRetries != 25 || f.RetryTimeout <= 0 || f.DelayMax <= 0 || f.StallMax <= 0 {
			panic("defaults not filled")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if user.MaxRetries != 0 {
		t.Error("caller's FaultConfig mutated by New")
	}
}

func TestTrySendWithoutFaultsIsSend(t *testing.T) {
	send := MustNew(Config{Procs: 2, Params: CM5Params()})
	try := MustNew(Config{Procs: 2, Params: CM5Params()})
	body := func(useTry bool) func(p *Proc) {
		return func(p *Proc) {
			if p.Rank() == 0 {
				for i := 0; i < 5; i++ {
					if useTry {
						if !p.TrySend(1, 7, []int{i}, 1) {
							panic("TrySend without faults failed")
						}
					} else {
						p.Send(1, 7, []int{i}, 1)
					}
				}
				return
			}
			for i := 0; i < 5; i++ {
				p.Recv(0, 7)
			}
		}
	}
	if err := send.Run(body(false)); err != nil {
		t.Fatal(err)
	}
	if err := try.Run(body(true)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(send.Stats(), try.Stats()) {
		t.Errorf("TrySend without faults diverges from Send:\n%+v\nvs\n%+v", send.Stats(), try.Stats())
	}
	if try.FaultReport() != nil {
		t.Error("FaultReport non-nil without a fault plan")
	}
}

// faultStorm is a communication-free injection workload: every rank
// fires a burst of delivery attempts at its neighbours with a naive
// bounded retry, and nobody receives — with faults on, the leftovers
// become residual instead of an undelivered-messages error. It
// exercises every injection path without needing a protocol.
func faultStorm(p *Proc) {
	n := p.NProcs()
	for i := 0; i < 120; i++ {
		dst := (p.Rank() + 1 + i%(n-1)) % n
		for attempt := 0; attempt < 3; attempt++ {
			if p.TrySend(dst, 5, i, 1) {
				break
			}
			p.RetryWait(dst, 5)
		}
		p.Charge(3)
	}
}

func stormConfig(sched Sched, seed uint64) Config {
	return Config{
		Procs: 6, Params: CM5Params(), Sched: sched, Trace: true,
		Faults: &FaultConfig{Seed: seed, Drop: 0.1, Dup: 0.08, Reorder: 0.1, Delay: 0.1, Stall: 0.05},
	}
}

// normalizeEvents strips the Seq numbering, which is machine-global
// under the cooperative scheduler and per-rank under the goroutine
// scheduler; everything else in the per-rank streams must agree.
func normalizeEvents(rows [][]Event) [][]Event {
	for _, row := range rows {
		for i := range row {
			row[i].Seq = 0
		}
	}
	return rows
}

func TestFaultDeterminismAcrossSchedulers(t *testing.T) {
	run := func(sched Sched, seed uint64) *Machine {
		m := MustNew(stormConfig(sched, seed))
		if err := m.Run(faultStorm); err != nil {
			t.Fatalf("sched %v seed %d: %v", sched, seed, err)
		}
		return m
	}
	coop := run(SchedCooperative, 11)
	gor := run(SchedGoroutine, 11)

	repC, repG := coop.FaultReport(), gor.FaultReport()
	if repC == nil || repG == nil {
		t.Fatal("missing fault report")
	}
	if repC.Total.Injected() == 0 {
		t.Fatal("no faults injected — the storm parameters are too tame")
	}
	if repC.Total.Drops == 0 || repC.Total.Dups == 0 || repC.Total.Reorders == 0 ||
		repC.Total.Delays == 0 || repC.Total.Stalls == 0 || repC.Total.Retries == 0 {
		t.Errorf("some fault kind never fired: %+v", repC.Total)
	}
	if !reflect.DeepEqual(repC, repG) {
		t.Errorf("fault reports differ across schedulers:\n%+v\nvs\n%+v", repC, repG)
	}
	if !reflect.DeepEqual(coop.Stats(), gor.Stats()) {
		t.Error("stats differ across schedulers under faults")
	}
	evC := normalizeEvents(coop.Events())
	evG := normalizeEvents(gor.Events())
	if !reflect.DeepEqual(evC, evG) {
		t.Error("per-rank event streams differ across schedulers under faults")
	}

	// Reruns replay the same schedule; a different seed gives a
	// different (still non-empty) one.
	coop2 := run(SchedCooperative, 11)
	if !reflect.DeepEqual(coop2.FaultReport(), repC) {
		t.Error("same seed did not replay the same fault schedule")
	}
	other := run(SchedCooperative, 12)
	repO := other.FaultReport()
	if repO.Total.Injected() == 0 {
		t.Error("seed 12 injected nothing")
	}
	if reflect.DeepEqual(repO.PerRank, repC.PerRank) {
		t.Error("different seeds produced identical injection points")
	}
}

func TestFaultResidualDuplicates(t *testing.T) {
	m := MustNew(Config{Procs: 2, Params: CM5Params(), Sched: SchedCooperative,
		Faults: &FaultConfig{Seed: 1, Dup: 1}})
	if err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if !p.TrySend(1, 9, i, 1) {
					panic("dup-only plan dropped a message")
				}
			}
			return
		}
		for i := 0; i < 5; i++ {
			p.Recv(0, 9)
		}
	}); err != nil {
		t.Fatalf("residual duplicates reported as an error: %v", err)
	}
	rep := m.FaultReport()
	if rep.Total.Dups != 5 || rep.Total.Residual != 5 {
		t.Errorf("dups=%d residual=%d, want 5/5", rep.Total.Dups, rep.Total.Residual)
	}
	if rep.PerRank[1].Residual != 5 {
		t.Errorf("residual attributed to rank %+v, want destination rank 1", rep.PerRank)
	}
	// The boxes were drained: a second run starts clean.
	if err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatalf("machine dirty after faulted run: %v", err)
	}
}

func TestFaultBudgetError(t *testing.T) {
	m := MustNew(Config{Procs: 2, Params: CM5Params(), Sched: SchedCooperative,
		Faults: &FaultConfig{Seed: 1, Drop: 1, MaxRetries: 4}})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			f := p.Faults()
			for attempt := 1; ; attempt++ {
				if p.TrySend(1, 3, nil, 0) {
					panic("drop-everything plan delivered")
				}
				if attempt > f.MaxRetries {
					p.FaultGiveUp(1, 3, attempt)
				}
				p.RetryWait(1, 3)
			}
		}
		p.Recv(0, 3) // unwound by the induced deadlock
	})
	if !IsFaultBudget(err) {
		t.Fatalf("want FaultBudgetError, got %v", err)
	}
	rep := m.FaultReport()
	if rep == nil || rep.Total.Drops != 5 || rep.Total.Retries != 4 {
		t.Errorf("report after budget exhaustion: %+v", rep)
	}
	// Per-phase tallies carry the same totals (single default phase).
	if ph := rep.PerPhase["default"]; ph.Drops != 5 {
		t.Errorf("per-phase drops = %d, want 5", ph.Drops)
	}
}

func TestFaultStatsFold(t *testing.T) {
	m := MustNew(Config{Procs: 2, Params: CM5Params(), Sched: SchedCooperative,
		Faults: &FaultConfig{Seed: 5, Drop: 0.3}})
	if err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 50; i++ {
				for !p.TrySend(1, 2, i, 1) {
					p.RetryWait(1, 2)
				}
			}
		}
		// Rank 1 deliberately leaves everything queued (residual).
	}); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	rep := m.FaultReport()
	if stats[0].Faults != rep.PerRank[0] {
		t.Errorf("Stats.Faults %+v != report per-rank %+v", stats[0].Faults, rep.PerRank[0])
	}
	if stats[0].Faults.Attempts == 0 || stats[0].Faults.Drops == 0 {
		t.Errorf("drop plan injected nothing: %+v", stats[0].Faults)
	}
}
