package sim

// This file is the deterministic fault-injection layer of the emulator
// (Config.Faults). The paper assumes a perfectly reliable CM-5 network;
// to exercise the robustness of the communication layer built on top,
// the machine can instead be configured to misbehave in the four
// classic ways — dropping, duplicating, reordering, and delaying
// messages — plus transient processor stalls, all under a seeded
// schedule.
//
// Determinism is the design constraint everything here bends to. Fault
// decisions are pure functions of (seed, sender rank, the sender's
// running attempt counter): no host randomness, no wall clocks, no
// scheduler state. Each logical processor executes the same operation
// sequence under both scheduler modes (the cross-mode equivalence
// contract of DESIGN.md §8), so its attempt counter advances
// identically, every fault fires at the same virtual instant with the
// same effect, and the two modes keep producing bit-identical virtual
// results even while the network misbehaves. With Faults nil the fault
// path costs one pointer check and nothing else changes — the
// perf-gate contract (virtual metrics bit-for-bit against the
// committed baseline) is preserved.
//
// Faults are injected only at TrySend, the delivery attempt primitive
// the reliable transport in internal/comm is built on. Raw Send/Recv
// and the zero-cost SendFree control channel stay exact: collectives
// that have not opted into the reliable protocol keep their guaranteed
// semantics, and the SkipEmpty probe channel remains the out-of-band
// modelling device it is documented to be.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// FaultConfig is a seeded schedule of network and processor faults.
// All probabilities are per delivery attempt, in [0, 1]. The zero
// value of each knob disables that fault; a nil *FaultConfig disables
// the subsystem entirely.
type FaultConfig struct {
	// Seed selects the schedule. Two runs with the same seed (and the
	// same workload) inject exactly the same faults at the same points
	// under either scheduler; different seeds give independent
	// schedules.
	Seed uint64
	// Drop is the probability a delivery attempt never reaches the
	// destination mailbox (the sender still pays the full wire
	// occupancy, as for a message lost in the network).
	Drop float64
	// Dup is the probability the destination receives a second copy of
	// the message.
	Dup float64
	// Reorder is the probability the message falls behind in the
	// network: it is held back and delivered only after the sender's
	// next surviving delivery to the same destination (which thereby
	// overtakes it), or unovertaken at the sender's next receive or the
	// end of its run. Holding on the sender keeps the fault schedule a
	// pure function of the sender's operation sequence; enqueuing at
	// the front of the destination mailbox (the previous definition)
	// made the overtake depend on how much of the queue the receiver
	// had already drained — a real-time race under the goroutine
	// scheduler that broke cross-scheduler determinism.
	Reorder float64
	// Delay is the probability the message's arrival time slips by an
	// extra, deterministically chosen amount up to DelayMax.
	Delay float64
	// Stall is the probability the sending processor suffers a
	// transient stall (up to StallMax of local time) before the
	// attempt — a GC pause, an interrupt, a slow card.
	Stall float64

	// DelayMax bounds the extra arrival delay in virtual µs. Zero
	// means the default 4*Tau + 64*Mu + 1.
	DelayMax float64
	// StallMax bounds the stall length in virtual µs. Zero means the
	// default 2*Tau + 1.
	StallMax float64
	// RetryTimeout is the virtual time a reliable sender waits for the
	// (modelled) acknowledgement before retrying a delivery attempt.
	// Zero means the default 4*Tau + 64*Mu + 1.
	RetryTimeout float64
	// MaxRetries is the fault budget: how many retries of one message
	// the reliable layer attempts before giving up with a
	// FaultBudgetError. Zero or negative means the default 25.
	MaxRetries int
}

// String renders the configuration compactly (used by the bench
// memoization key and the packbench table headers).
func (f *FaultConfig) String() string {
	if f == nil {
		return "off"
	}
	return fmt.Sprintf("seed=%d drop=%g dup=%g reorder=%g delay=%g stall=%g timeout=%g retries=%d",
		f.Seed, f.Drop, f.Dup, f.Reorder, f.Delay, f.Stall, f.RetryTimeout, f.MaxRetries)
}

// normalizeFaults validates f and returns a private copy with defaults
// filled in (so the machine's plan cannot be mutated through the
// caller's pointer). The defaults scale with the machine constants; the
// +1 terms keep them positive on the zero-cost machines unit tests use.
func normalizeFaults(f *FaultConfig, prm Params) (*FaultConfig, error) {
	if f == nil {
		return nil, nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Drop", f.Drop}, {"Dup", f.Dup}, {"Reorder", f.Reorder},
		{"Delay", f.Delay}, {"Stall", f.Stall},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("sim: fault probability %s=%g outside [0,1]", p.name, p.v)
		}
	}
	if f.DelayMax < 0 || f.StallMax < 0 || f.RetryTimeout < 0 {
		return nil, fmt.Errorf("sim: negative fault durations in %+v", *f)
	}
	cp := *f
	if cp.DelayMax == 0 {
		cp.DelayMax = 4*prm.Tau + 64*prm.Mu + 1
	}
	if cp.StallMax == 0 {
		cp.StallMax = 2*prm.Tau + 1
	}
	if cp.RetryTimeout == 0 {
		cp.RetryTimeout = 4*prm.Tau + 64*prm.Mu + 1
	}
	if cp.MaxRetries <= 0 {
		cp.MaxRetries = 25
	}
	return &cp, nil
}

// ParseFaults parses the packbench -faults flag syntax
//
//	seed[:name=value,...]
//
// e.g. "42:drop=0.01,dup=0.005,reorder=0.01,delay=0.02,stall=0.001".
// Accepted names: drop, dup, reorder, delay, stall (probabilities),
// delaymax, stallmax, timeout (virtual µs), retries (count).
func ParseFaults(s string) (*FaultConfig, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("sim: empty -faults spec")
	}
	head, rates, _ := strings.Cut(s, ":")
	seed, err := strconv.ParseUint(strings.TrimSpace(head), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("sim: -faults seed %q: %v", head, err)
	}
	f := &FaultConfig{Seed: seed}
	if strings.TrimSpace(rates) == "" {
		return f, nil
	}
	for _, kv := range strings.Split(rates, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("sim: -faults rate %q: want name=value", kv)
		}
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "retries" {
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("sim: -faults retries %q: %v", val, err)
			}
			f.MaxRetries = n
			continue
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("sim: -faults rate %q: %v", kv, err)
		}
		switch name {
		case "drop":
			f.Drop = x
		case "dup":
			f.Dup = x
		case "reorder":
			f.Reorder = x
		case "delay":
			f.Delay = x
		case "stall":
			f.Stall = x
		case "delaymax":
			f.DelayMax = x
		case "stallmax":
			f.StallMax = x
		case "timeout":
			f.RetryTimeout = x
		default:
			return nil, fmt.Errorf("sim: -faults unknown rate name %q", name)
		}
	}
	return f, nil
}

// FaultCounters tallies injected faults and the recovery actions the
// reliable transport took, for one processor or aggregated.
type FaultCounters struct {
	// Attempts counts TrySend delivery attempts.
	Attempts int64
	// Injected faults, by kind.
	Drops    int64
	Dups     int64
	Reorders int64
	Delays   int64
	Stalls   int64
	// Recovery actions observed by the reliable transport.
	Retries int64 // timeout-and-resend cycles
	Dedups  int64 // duplicate envelopes discarded by the receiver
	Stashes int64 // out-of-order envelopes parked until their turn
	// Residual is the number of messages (trailing duplicates) left in
	// mailboxes when the run finished; only the aggregate and per-rank
	// report rows carry it.
	Residual int64
}

// Injected returns the total number of injected faults.
func (c FaultCounters) Injected() int64 {
	return c.Drops + c.Dups + c.Reorders + c.Delays + c.Stalls
}

func (c *FaultCounters) add(o FaultCounters) {
	c.Attempts += o.Attempts
	c.Drops += o.Drops
	c.Dups += o.Dups
	c.Reorders += o.Reorders
	c.Delays += o.Delays
	c.Stalls += o.Stalls
	c.Retries += o.Retries
	c.Dedups += o.Dedups
	c.Stashes += o.Stashes
	c.Residual += o.Residual
}

// FaultReport is the structured outcome of a run with fault injection
// on: what was injected, what the transport did about it, and what was
// left over, in total, per rank, and per cost-attribution phase.
type FaultReport struct {
	Seed     uint64
	Total    FaultCounters
	PerRank  []FaultCounters
	PerPhase map[string]FaultCounters
}

// FaultReport returns the fault summary of the most recent Run, or nil
// when the machine runs without fault injection. The result is a deep
// copy.
func (m *Machine) FaultReport() *FaultReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.faultReport == nil {
		return nil
	}
	cp := *m.faultReport
	cp.PerRank = append([]FaultCounters(nil), m.faultReport.PerRank...)
	cp.PerPhase = make(map[string]FaultCounters, len(m.faultReport.PerPhase))
	for k, v := range m.faultReport.PerPhase {
		cp.PerPhase[k] = v
	}
	return &cp
}

// buildFaultReport aggregates the per-proc counters after a run; the
// caller (finishRun) holds m.mu and has already folded residuals into
// the per-proc counters.
func buildFaultReport(seed uint64, procs []*Proc) *FaultReport {
	rep := &FaultReport{Seed: seed, PerRank: make([]FaultCounters, len(procs)), PerPhase: map[string]FaultCounters{}}
	for i, p := range procs {
		rep.PerRank[i] = p.faults
		rep.Total.add(p.faults)
		for phase, c := range p.phaseFaults {
			agg := rep.PerPhase[phase]
			agg.add(c)
			rep.PerPhase[phase] = agg
		}
	}
	return rep
}

// FaultBudgetError reports a message the reliable transport gave up on
// after exhausting its retry budget. Run returns it as the run error
// (it outranks the induced deadlock unwinds of the peers), and the
// FaultReport of the aborted run remains available for diagnosis.
type FaultBudgetError struct {
	Rank, Dst, Tag, Attempts int
}

func (e *FaultBudgetError) Error() string {
	return fmt.Sprintf("sim: fault budget exhausted: processor %d gave up sending to %d (tag %d) after %d attempts",
		e.Rank, e.Dst, e.Tag, e.Attempts)
}

// IsFaultBudget reports whether err (or anything it wraps) is a
// FaultBudgetError.
func IsFaultBudget(err error) bool {
	var fe *FaultBudgetError
	return errors.As(err, &fe)
}

// faultMix64 is the splitmix64 finalizer — the same generator the mask
// package uses, duplicated privately so the two packages stay
// dependency-free of each other.
func faultMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultUniform returns a uniform in [0, 1) for decision slot `slot` of
// the processor's current delivery attempt. It depends only on the
// seed, the rank, the per-rank attempt counter, and the slot — all
// scheduler-independent quantities.
func (p *Proc) faultUniform(slot uint64) float64 {
	h := faultMix64(p.m.cfg.Faults.Seed ^ faultMix64(uint64(p.rank)<<32|p.faultSeq<<3|slot))
	return float64(h>>11) / (1 << 53)
}

// bumpFault applies f to the processor's run-total and current-phase
// fault counters.
func (p *Proc) bumpFault(f func(*FaultCounters)) {
	f(&p.faults)
	if p.phaseFaults == nil {
		p.phaseFaults = make(map[string]FaultCounters)
	}
	c := p.phaseFaults[p.phase]
	f(&c)
	p.phaseFaults[p.phase] = c
}

// Faults returns the machine's normalized fault plan, nil when fault
// injection is off. Callers must treat the result as read-only.
func (p *Proc) Faults() *FaultConfig { return p.m.cfg.Faults }

// CommState is an opaque per-run slot where a higher communication
// layer hangs protocol state off the processor (the reliable-delivery
// transport in internal/comm keeps its sequence counters and
// out-of-order stash here). The slot is nil at the start of every Run.
func (p *Proc) CommState() *any { return &p.commState }

// TrySend is the fault-injectable delivery attempt the reliable
// transport is built on. Without a fault plan it is exactly Send (and
// always succeeds). With one, the sender first suffers any scheduled
// stall, then pays the full wire occupancy (Tau + Mu*words — a lost
// message still occupied the sender's network interface), and the
// attempt's fate is decided by the plan: dropped attempts return false
// and deliver nothing; surviving attempts may be delayed, reordered
// ahead of the destination's queue, or duplicated, and return true.
//
// The emulator is omniscient, so "the sender knows the attempt was
// dropped" stands in for the acknowledgement a real protocol would
// wait on; RetryWait charges that wait explicitly.
func (p *Proc) TrySend(dst, tag int, payload any, words int) bool {
	f := p.m.cfg.Faults
	if f == nil {
		p.Send(dst, tag, payload, words)
		return true
	}
	if dst < 0 || dst >= p.m.cfg.Procs {
		panic(fmt.Sprintf("sim: TrySend to invalid rank %d (P=%d)", dst, p.m.cfg.Procs))
	}
	if words < 0 {
		panic("sim: TrySend with negative word count")
	}
	p.faultSeq++
	p.bumpFault(func(c *FaultCounters) { c.Attempts++ })

	// Transient processor stall before the send goes out.
	if f.Stall > 0 && p.faultUniform(0) < f.Stall {
		stall := f.StallMax * (0.25 + 0.75*p.faultUniform(1))
		p.bumpFault(func(c *FaultCounters) { c.Stalls++ })
		if p.tracing() {
			p.flushCharge()
			p.emit(Event{Kind: EvFaultStall, Peer: dst, Tag: tag, Time: p.clock + stall, Dur: stall})
		}
		p.addComp(stall)
	}

	// Wire occupancy, exactly as in Send.
	cost := p.m.cfg.Params.Tau + p.m.cfg.Params.Mu*float64(words)
	if dst == p.rank && p.m.cfg.SelfSendFree {
		cost = 0
	}
	p.addComm(cost)
	p.stats.MsgsSent++
	p.stats.WordsSent += int64(words)
	var id uint64
	if p.tracing() {
		p.flushCharge()
		p.sends++
		id = msgID(p.rank, p.sends)
		p.emit(Event{Kind: EvSend, Peer: dst, Tag: tag, Words: words, Time: p.clock, Dur: cost, MsgID: id})
	}

	if f.Drop > 0 && p.faultUniform(2) < f.Drop {
		p.bumpFault(func(c *FaultCounters) { c.Drops++ })
		if p.tracing() {
			p.emit(Event{Kind: EvFaultDrop, Peer: dst, Tag: tag, Words: words, Time: p.clock, MsgID: id})
		}
		return false
	}

	arrival := p.clock
	if f.Delay > 0 && p.faultUniform(3) < f.Delay {
		extra := f.DelayMax * (0.25 + 0.75*p.faultUniform(4))
		arrival += extra
		p.bumpFault(func(c *FaultCounters) { c.Delays++ })
		if p.tracing() {
			p.emit(Event{Kind: EvFaultDelay, Peer: dst, Tag: tag, Words: words, Time: arrival, Dur: extra, MsgID: id})
		}
	}

	msg := message{src: p.rank, tag: tag, payload: payload, words: words, arrival: arrival, id: id}
	reordered := f.Reorder > 0 && p.faultUniform(5) < f.Reorder
	dup := f.Dup > 0 && p.faultUniform(6) < f.Dup
	if reordered {
		// The message falls behind in the network: hold it on the sender
		// until a later delivery to the same destination overtakes it
		// (or a flush point releases it unovertaken, see flushHeld). A
		// duplicate of a held message falls behind with it.
		p.bumpFault(func(c *FaultCounters) { c.Reorders++ })
		if p.tracing() {
			p.emit(Event{Kind: EvFaultReorder, Peer: dst, Tag: tag, Words: words, Time: arrival, MsgID: id})
		}
		p.held = append(p.held, heldMsg{dst: dst, m: msg})
		if dup {
			p.bumpFault(func(c *FaultCounters) { c.Dups++ })
			if p.tracing() {
				p.emit(Event{Kind: EvFaultDup, Peer: dst, Tag: tag, Words: words, Time: arrival, MsgID: id})
			}
			p.held = append(p.held, heldMsg{dst: dst, m: msg})
		}
		return true
	}
	p.deliver(dst, msg)
	if dup {
		p.bumpFault(func(c *FaultCounters) { c.Dups++ })
		if p.tracing() {
			p.emit(Event{Kind: EvFaultDup, Peer: dst, Tag: tag, Words: words, Time: arrival, MsgID: id})
		}
		p.deliver(dst, msg)
	}
	p.flushHeld(dst) // this delivery overtook anything held for dst
	return true
}

// heldMsg is a reorder-faulted message waiting on its sender to be
// overtaken (see FaultConfig.Reorder).
type heldMsg struct {
	dst int
	m   message
}

// flushHeld delivers the held (reorder-faulted) messages for dst, in
// hold order; dst < 0 flushes every destination. Flush points are all
// sender-local, so the delivery order of every (sender, destination)
// pair — the only order receive matching can observe — is a pure
// function of the sender's operation sequence on either scheduler:
//
//   - a surviving TrySend to the same destination (the overtake);
//   - the sender entering Recv (it may block there, and a held message
//     must never be the one a blocked peer is waiting for);
//   - the end of the sender's run body, for the same reason.
func (p *Proc) flushHeld(dst int) {
	if len(p.held) == 0 {
		return
	}
	rest := p.held
	p.held = rest[:0]
	for _, h := range rest {
		if dst < 0 || h.dst == dst {
			p.deliver(h.dst, h.m)
		} else {
			p.held = append(p.held, h)
		}
	}
	// Zero the vacated tail slots so delivered payloads do not stay
	// reachable through the slice's spare capacity.
	for i := len(p.held); i < len(rest); i++ {
		rest[i] = heldMsg{}
	}
}

// RetryWait charges the reliable sender's retransmission timeout — the
// virtual time a real protocol would spend waiting for an
// acknowledgement that never came — and counts the retry. It must only
// be called with fault injection on.
func (p *Proc) RetryWait(dst, tag int) {
	f := p.m.cfg.Faults
	if f == nil {
		panic("sim: RetryWait without a fault plan")
	}
	p.bumpFault(func(c *FaultCounters) { c.Retries++ })
	p.addComm(f.RetryTimeout)
	if p.tracing() {
		p.flushCharge()
		p.emit(Event{Kind: EvRetry, Peer: dst, Tag: tag, Time: p.clock, Dur: f.RetryTimeout})
	}
}

// NoteDedup records a duplicate envelope discarded by the reliable
// receiver.
func (p *Proc) NoteDedup(src, tag int) {
	p.bumpFault(func(c *FaultCounters) { c.Dedups++ })
	if p.tracing() {
		p.flushCharge()
		p.emit(Event{Kind: EvDedup, Peer: src, Tag: tag, Time: p.clock})
	}
}

// NoteStash records an out-of-order envelope the reliable receiver
// parked until the gap before it fills.
func (p *Proc) NoteStash(src, tag int) {
	p.bumpFault(func(c *FaultCounters) { c.Stashes++ })
}

// FaultGiveUp aborts the calling processor with a FaultBudgetError;
// the reliable transport calls it when a message exhausts MaxRetries.
func (p *Proc) FaultGiveUp(dst, tag, attempts int) {
	panic(&FaultBudgetError{Rank: p.rank, Dst: dst, Tag: tag, Attempts: attempts})
}
