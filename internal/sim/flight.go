package sim

// This file is the flight recorder: a fixed-size per-rank ring buffer
// of the most recent trace events, designed to be left on during long
// runs at one-branch cost on the hot path. Where Config.Trace retains
// every event (O(total events) memory) and Config.Sink streams them
// out, the flight recorder keeps only the last Capacity events per
// rank — a bounded post-mortem window. When a run dies (structural
// deadlock, exhausted fault budget, real-backend watchdog abort), the
// caller snapshots the rings and hands them to internal/trace's
// DumpFlight, which writes a Chrome-loadable trace plus a text summary
// of the machine's final moments.
//
// Concurrency contract: like every other piece of tracing state, each
// ring is owned by its rank — only the processor whose events they are
// writes into ring r. Under the cooperative scheduler all writes are
// serialized anyway; under the goroutine scheduler and on the real
// backend, ranks write concurrently to disjoint rings, which is
// race-free without locks. Snapshot must only be called once the run
// has finished (Machine.Run returned), the same rule the Stats/Events
// accessors follow.

import "fmt"

// FlightRecorder holds one fixed-capacity event ring per rank. Build
// one with NewFlightRecorder, attach it via Config.Flight (sim) or
// RealConfig.Flight (real backend), and read it with Snapshot after
// the run returned an error.
type FlightRecorder struct {
	procs int
	cap   int
	rings [][]Event // rings[r] has capacity cap, len grows to cap then stays
	next  []int     // next write position per rank
	total []uint64  // events ever observed per rank (>= len(rings[r]))
}

// DefaultFlightCap is the per-rank ring capacity used by callers that
// do not want to choose one: large enough to hold the closing
// exchanges of a phase, small enough that P=4096 recorders stay in the
// tens of megabytes.
const DefaultFlightCap = 256

// NewFlightRecorder builds a recorder for procs ranks with the given
// per-rank ring capacity (DefaultFlightCap when capacity <= 0).
func NewFlightRecorder(procs, capacity int) (*FlightRecorder, error) {
	if procs < 1 {
		return nil, fmt.Errorf("sim: flight recorder needs procs >= 1, got %d", procs)
	}
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &FlightRecorder{
		procs: procs,
		cap:   capacity,
		rings: make([][]Event, procs),
		next:  make([]int, procs),
		total: make([]uint64, procs),
	}, nil
}

// MustNewFlightRecorder is NewFlightRecorder for arguments known to be
// valid.
func MustNewFlightRecorder(procs, capacity int) *FlightRecorder {
	f, err := NewFlightRecorder(procs, capacity)
	if err != nil {
		panic(err)
	}
	return f
}

// Procs returns the rank count the recorder was built for.
func (f *FlightRecorder) Procs() int { return f.procs }

// Capacity returns the per-rank ring capacity.
func (f *FlightRecorder) Capacity() int { return f.cap }

// note records one event into its rank's ring, overwriting the oldest
// entry once the ring is full. Called from the trace emit path by the
// owning rank only; events with an out-of-range rank are dropped (the
// recorder may be smaller than a misconfigured machine, and a bounds
// branch beats a crash inside the crash recorder).
func (f *FlightRecorder) note(ev Event) {
	r := ev.Rank
	if r < 0 || r >= f.procs {
		return
	}
	ring := f.rings[r]
	if len(ring) < f.cap {
		f.rings[r] = append(ring, ev)
	} else {
		ring[f.next[r]] = ev
	}
	f.next[r]++
	if f.next[r] == f.cap {
		f.next[r] = 0
	}
	f.total[r]++
}

// Note is the exported entry point for backends outside this package
// (the real transport) that feed the recorder from their own emit
// paths. Same ownership contract as note.
func (f *FlightRecorder) Note(ev Event) { f.note(ev) }

// Snapshot returns each rank's retained events oldest-first. The rows
// are copies; the caller may keep them across later runs. Only call
// after the run has finished.
func (f *FlightRecorder) Snapshot() [][]Event {
	out := make([][]Event, f.procs)
	for r, ring := range f.rings {
		if len(ring) < f.cap {
			out[r] = append([]Event(nil), ring...)
			continue
		}
		row := make([]Event, 0, f.cap)
		row = append(row, ring[f.next[r]:]...)
		row = append(row, ring[:f.next[r]]...)
		out[r] = row
	}
	return out
}

// Total returns how many events rank r ever pushed through its ring
// (retained or overwritten); 0 for out-of-range ranks.
func (f *FlightRecorder) Total(r int) uint64 {
	if r < 0 || r >= f.procs {
		return 0
	}
	return f.total[r]
}

// Reset clears every ring so one recorder can be reused across runs.
func (f *FlightRecorder) Reset() {
	for r := range f.rings {
		f.rings[r] = f.rings[r][:0]
		f.next[r] = 0
		f.total[r] = 0
	}
}
