package sim

import (
	"fmt"
	"runtime"
)

// Fingerprint identifies the host environment a measurement ran under.
// Virtual times are host-independent, but the wall-clock and
// allocation figures in a perf report are only comparable between runs
// on like environments — the fingerprint is what lets tooling (and
// humans reading a pasted table) decide whether two reports are
// comparable at all.
type Fingerprint struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// HostFingerprint captures the current process's environment.
func HostFingerprint() Fingerprint {
	return Fingerprint{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// String renders the fingerprint on one line, for table headers.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s %s/%s, %d CPUs, GOMAXPROCS=%d",
		f.GoVersion, f.GOOS, f.GOARCH, f.NumCPU, f.GOMAXPROCS)
}
