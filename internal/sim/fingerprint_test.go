package sim

import (
	"runtime"
	"strings"
	"testing"
)

func TestHostFingerprint(t *testing.T) {
	f := HostFingerprint()
	if f.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", f.GoVersion, runtime.Version())
	}
	if f.GOOS != runtime.GOOS || f.GOARCH != runtime.GOARCH {
		t.Errorf("GOOS/GOARCH = %q/%q", f.GOOS, f.GOARCH)
	}
	if f.NumCPU < 1 || f.GOMAXPROCS < 1 {
		t.Errorf("NumCPU/GOMAXPROCS = %d/%d", f.NumCPU, f.GOMAXPROCS)
	}
	s := f.String()
	for _, want := range []string{f.GoVersion, f.GOOS + "/" + f.GOARCH, "GOMAXPROCS"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
