package sim

// This file is the structured event-tracing layer of the emulator
// (Config.Trace / Config.Sink). Where the span recorder (Config.Record)
// answers "what was each processor doing over time", the event stream
// answers "which message, from whom, when, and why did it matter":
// every send, delivery, posted receive, wake-up, phase transition, and
// charge batch becomes one Event with virtual timestamps and enough
// identity (message ids, sequence numbers) to reconstruct send→receive
// flows and blocking chains after the run. The exporters in
// internal/trace (Chrome/Perfetto JSON, communication matrices, the
// critical-path analyzer) all consume this stream.
//
// Overhead discipline: tracing is opt-in and the hot paths pay exactly
// one nil/bool check when it is off. When it is on, contiguous Charge
// calls in the same phase collapse into a single pending batch that is
// flushed lazily (on the next communication event, phase switch, or at
// body end), so a tight scan loop of N Charge calls produces one event,
// not N. Events carry no pointers into simulator state; buffers are
// per-processor and only the owning processor appends, which keeps the
// goroutine mode race-free without locks.

// EventKind enumerates the structured trace event types.
type EventKind uint8

const (
	// EvSend marks a completed message send on the sender's timeline:
	// Time is the completion instant (= the receiver-visible arrival
	// time), Dur the Tau+Mu*words occupancy, Peer the destination.
	EvSend EventKind = iota
	// EvDeliver marks the message being enqueued at the destination
	// mailbox. It is recorded on the sender's timeline (the sender
	// performs the delivery) with Peer = destination; for SendFree
	// messages it is the only record of the transfer.
	EvDeliver
	// EvRecvBlock marks a receive being posted: the processor asked for
	// (Peer, Tag) at Time and will consume the matching message, waiting
	// if it has not arrived yet.
	EvRecvBlock
	// EvRecvWake marks the receive completing: Time is the instant the
	// processor proceeds (its clock after any wait), Dur the waited
	// virtual time (zero when the message had already arrived), Peer the
	// source, and MsgID links back to the matching EvSend/EvDeliver.
	EvRecvWake
	// EvPhase marks a phase transition; Phase is the new phase name.
	EvPhase
	// EvCharge is a merged batch of local elementary operations: Ops
	// operations ending at Time, Dur virtual microseconds long.
	// Contiguous charges in one phase collapse into a single event.
	EvCharge
	// EvFaultDrop marks an injected message drop on the sender's
	// timeline: the attempt identified by MsgID paid its wire occupancy
	// but never reached the destination mailbox (fault.go).
	EvFaultDrop
	// EvFaultDup marks an injected duplication: the destination
	// received a second copy of the message identified by MsgID.
	EvFaultDup
	// EvFaultReorder marks an injected reordering: the message fell
	// behind in the network, held on the sender until its next
	// surviving delivery to the same destination overtakes it.
	EvFaultReorder
	// EvFaultDelay marks an injected delivery delay: Dur extra virtual
	// microseconds before the message becomes available, Time the
	// delayed arrival.
	EvFaultDelay
	// EvFaultStall marks an injected transient processor stall of Dur
	// virtual microseconds ending at Time, charged as local time before
	// a delivery attempt.
	EvFaultStall
	// EvRetry marks the reliable transport re-sending after a
	// retransmission timeout: Dur is the timeout charged, Peer the
	// destination of the retried message.
	EvRetry
	// EvDedup marks the reliable receiver discarding a duplicate
	// envelope from Peer.
	EvDedup
)

func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvDeliver:
		return "deliver"
	case EvRecvBlock:
		return "recv-block"
	case EvRecvWake:
		return "recv-wake"
	case EvPhase:
		return "phase"
	case EvCharge:
		return "charge"
	case EvFaultDrop:
		return "fault-drop"
	case EvFaultDup:
		return "fault-dup"
	case EvFaultReorder:
		return "fault-reorder"
	case EvFaultDelay:
		return "fault-delay"
	case EvFaultStall:
		return "fault-stall"
	case EvRetry:
		return "retry"
	case EvDedup:
		return "dedup"
	}
	return "unknown"
}

// Event is one structured trace record. All times are virtual
// microseconds on the emulated machine's clocks.
type Event struct {
	// Kind discriminates the record; see the EventKind constants for
	// which of the remaining fields are meaningful.
	Kind EventKind
	// Seq is the event's sequence number. Under the cooperative
	// scheduler it is a machine-global counter, so the total order of
	// events is deterministic across runs; under the goroutine scheduler
	// it is per-processor (per-rank streams are still ordered, but the
	// interleaving between ranks is whatever the host produced).
	Seq uint64
	// Rank is the processor whose timeline the event belongs to.
	Rank int
	// Peer is the other endpoint: destination for EvSend/EvDeliver,
	// source for EvRecvBlock/EvRecvWake.
	Peer int
	// Tag is the message tag for communication events.
	Tag int
	// Words is the message length in machine words.
	Words int
	// Ops is the operation count of an EvCharge batch.
	Ops int64
	// Time is the virtual instant the event occurs (for EvSend the send
	// completion, for EvRecvWake the wake-up, for EvCharge the batch
	// end).
	Time float64
	// Dur is the event's extent: send occupancy, receive wait, or
	// charge-batch length.
	Dur float64
	// Phase is the cost-attribution phase current when the event was
	// recorded (for EvPhase, the phase being switched to).
	Phase string
	// MsgID identifies a message across its send, delivery, and receive
	// events; it is unique within a run and deterministic in both
	// scheduler modes (rank-qualified send counter). Zero means "not a
	// message event" or "tracing was off when the message was sent".
	MsgID uint64
}

// EventSink receives every trace event as it is produced, in timeline
// order per processor. Emit is called by the logical processor that
// owns the event: under the cooperative scheduler calls are fully
// serialized, under the goroutine scheduler different ranks call
// concurrently and the sink must be safe for that. Implementations
// must be cheap — they run on the emulator's hot path.
type EventSink interface {
	Emit(Event)
}

// msgID builds the rank-qualified message id: the sender's rank in the
// high bits, its running send count in the low bits. Deterministic in
// both scheduler modes because each processor numbers only its own
// sends.
func msgID(rank int, n uint64) uint64 {
	return uint64(rank)<<40 | n
}

// MsgIDSrc recovers the sending rank encoded in a message id.
func MsgIDSrc(id uint64) int { return int(id >> 40) }

// MakeMsgID builds the rank-qualified message id (the inverse of
// MsgIDSrc). Exported for the real backend, which numbers its own
// sends with the same scheme so both backends' event streams key
// send→receive flows identically.
func MakeMsgID(rank int, n uint64) uint64 { return msgID(rank, n) }

// tracing reports whether the processor records events (full buffers,
// a streaming sink, or just the flight recorder's bounded window).
func (p *Proc) tracing() bool {
	return p.m.cfg.Trace || p.m.cfg.Sink != nil || p.m.cfg.Flight != nil
}

// nextSeq returns the next event sequence number: machine-global (and
// therefore deterministic) under the cooperative scheduler, per-rank
// under the goroutine scheduler.
func (p *Proc) nextSeq() uint64 {
	if p.cs != nil {
		p.m.seq++
		return p.m.seq
	}
	p.seq++
	return p.seq
}

// emit stamps and records one event. Callers must have flushed any
// pending charge batch first so the stream stays in timeline order.
func (p *Proc) emit(ev Event) {
	ev.Seq = p.nextSeq()
	ev.Rank = p.rank
	if ev.Phase == "" {
		ev.Phase = p.phase
	}
	if p.m.cfg.Trace {
		p.events = append(p.events, ev)
	}
	if p.m.cfg.Sink != nil {
		p.m.cfg.Sink.Emit(ev)
	}
	if p.m.cfg.Flight != nil {
		p.m.cfg.Flight.note(ev)
	}
}

// noteCharge folds one Charge call into the pending batch, starting a
// new batch when the charge is not contiguous with it (different phase
// or an intervening event).
func (p *Proc) noteCharge(start float64, ops int64) {
	if p.chargeOpen && p.chargeEnd == start {
		p.chargeEnd = p.clock
		p.chargeOps += ops
		return
	}
	p.flushCharge()
	p.chargeOpen = true
	p.chargeStart = start
	p.chargeEnd = p.clock
	p.chargeOps = ops
}

// flushCharge emits the pending charge batch, if any. Called before
// every non-charge event, on phase transitions, and at body end, so a
// batch can never straddle another event in the stream.
func (p *Proc) flushCharge() {
	if !p.chargeOpen {
		return
	}
	p.chargeOpen = false
	p.emit(Event{
		Kind: EvCharge,
		Ops:  p.chargeOps,
		Time: p.chargeEnd,
		Dur:  p.chargeEnd - p.chargeStart,
	})
}

// Events returns the structured event streams of the most recent Run,
// ordered by rank (nil rows unless Config.Trace was set). Like Stats
// and Spans, the result is a deep copy: callers may mutate it freely
// without corrupting the machine's snapshot.
func (m *Machine) Events() [][]Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]Event, len(m.events))
	for i, row := range m.events {
		out[i] = append([]Event(nil), row...)
	}
	return out
}
