package sim

import (
	"reflect"
	"sync"
	"testing"
)

// tracedBody is a small deterministic two-phase exchange used by the
// event-tracing tests: rank 0 computes, sends, computes; rank 1
// computes less, then blocks on the message.
func tracedBody(p *Proc) {
	p.Charge(10)
	p.Charge(5) // contiguous: must merge with the previous batch
	prev := p.SetPhase("prs")
	if p.Rank() == 0 {
		p.Charge(3)
		p.Send(1, 7, []int{1, 2}, 2)
	} else {
		p.Recv(0, 7)
	}
	p.SetPhase(prev)
	p.Charge(4)
}

func tracedMachine(t *testing.T, sched Sched) *Machine {
	t.Helper()
	m := MustNew(Config{Procs: 2, Params: Params{Tau: 10, Mu: 1, Delta: 1}, Sched: sched, Record: true, Trace: true})
	if err := m.Run(tracedBody); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEventStream(t *testing.T) {
	m := tracedMachine(t, SchedCooperative)
	ev := m.Events()
	if len(ev) != 2 {
		t.Fatalf("want 2 event rows, got %d", len(ev))
	}

	// Rank 0: charge [0,15), phase prs, charge [15,18), send done at 30
	// (tau 10 + mu*2), deliver at 30, phase default, charge [30,34).
	kinds := func(row []Event) []EventKind {
		out := make([]EventKind, len(row))
		for i, e := range row {
			out[i] = e.Kind
		}
		return out
	}
	want0 := []EventKind{EvCharge, EvPhase, EvCharge, EvSend, EvDeliver, EvPhase, EvCharge}
	if got := kinds(ev[0]); !reflect.DeepEqual(got, want0) {
		t.Fatalf("rank 0 kinds = %v, want %v", got, want0)
	}
	want1 := []EventKind{EvCharge, EvPhase, EvRecvBlock, EvRecvWake, EvPhase, EvCharge}
	if got := kinds(ev[1]); !reflect.DeepEqual(got, want1) {
		t.Fatalf("rank 1 kinds = %v, want %v", got, want1)
	}

	// Contiguous charges merged: the first batch is 15 ops, 15 µs.
	if c := ev[0][0]; c.Ops != 15 || c.Dur != 15 || c.Time != 15 || c.Phase != "default" {
		t.Fatalf("merged charge batch wrong: %+v", c)
	}
	send := ev[0][3]
	if send.Time != 30 || send.Dur != 12 || send.Peer != 1 || send.Tag != 7 || send.Words != 2 || send.MsgID == 0 {
		t.Fatalf("send event wrong: %+v", send)
	}
	if del := ev[0][4]; del.Time != 30 || del.MsgID != send.MsgID {
		t.Fatalf("deliver event wrong: %+v", del)
	}
	wake := ev[1][3]
	if wake.MsgID != send.MsgID || wake.Time != 30 || wake.Dur != 15 || wake.Peer != 0 || wake.Words != 2 {
		t.Fatalf("wake event wrong: %+v (blocked at 15, arrival 30)", wake)
	}
	if blk := ev[1][2]; blk.Time != 15 || blk.Peer != 0 || blk.Tag != 7 {
		t.Fatalf("recv-block event wrong: %+v", blk)
	}
	if ph := ev[0][1]; ph.Phase != "prs" || ph.Time != 15 {
		t.Fatalf("phase event wrong: %+v", ph)
	}
}

// TestEventSeqDeterministicCoop locks in the cooperative-mode
// determinism contract: two identical runs produce identical event
// streams, including the machine-global sequence numbers.
func TestEventSeqDeterministicCoop(t *testing.T) {
	a := tracedMachine(t, SchedCooperative).Events()
	b := tracedMachine(t, SchedCooperative).Events()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cooperative event streams differ across runs:\n%v\nvs\n%v", a, b)
	}
	// Machine-global seq: the union over ranks is exactly 1..n.
	seen := map[uint64]bool{}
	n := 0
	for _, row := range a {
		for _, e := range row {
			seen[e.Seq] = true
			n++
		}
	}
	for s := uint64(1); s <= uint64(n); s++ {
		if !seen[s] {
			t.Fatalf("sequence numbers not contiguous: missing %d of %d", s, n)
		}
	}
}

// TestEventsModeEquivalent checks that both schedulers produce the same
// per-rank event streams up to sequence numbering (virtual times and
// message identity are schedule-independent).
func TestEventsModeEquivalent(t *testing.T) {
	strip := func(rows [][]Event) [][]Event {
		for _, row := range rows {
			for i := range row {
				row[i].Seq = 0
			}
		}
		return rows
	}
	coop := strip(tracedMachine(t, SchedCooperative).Events())
	gor := strip(tracedMachine(t, SchedGoroutine).Events())
	if !reflect.DeepEqual(coop, gor) {
		t.Fatalf("event streams differ between modes:\ncoop %v\ngoroutine %v", coop, gor)
	}
}

func TestEventsOffByDefault(t *testing.T) {
	m := MustNew(Config{Procs: 1, Params: Params{Delta: 1}})
	if err := m.Run(func(p *Proc) { p.Charge(5) }); err != nil {
		t.Fatal(err)
	}
	if row := m.Events()[0]; row != nil {
		t.Fatalf("tracing off should keep no events, got %+v", row)
	}
}

// captureSink records emitted events (mutex-guarded: the goroutine
// mode emits from several ranks at once).
type captureSink struct {
	mu  sync.Mutex
	evs []Event
}

func (s *captureSink) Emit(e Event) {
	s.mu.Lock()
	s.evs = append(s.evs, e)
	s.mu.Unlock()
}

func TestEventSinkStreams(t *testing.T) {
	sink := &captureSink{}
	m := MustNew(Config{Procs: 2, Params: Params{Tau: 10, Mu: 1, Delta: 1}, Sched: SchedCooperative, Sink: sink})
	if err := m.Run(tracedBody); err != nil {
		t.Fatal(err)
	}
	if len(sink.evs) == 0 {
		t.Fatal("sink saw no events")
	}
	// Sink-only tracing must not buffer.
	if row := m.Events(); row[0] != nil || row[1] != nil {
		t.Fatalf("Sink without Trace should not buffer, got %v", row)
	}
	// Cooperative mode: the sink stream is globally seq-ordered.
	for i := 1; i < len(sink.evs); i++ {
		if sink.evs[i].Seq != sink.evs[i-1].Seq+1 {
			t.Fatalf("sink stream out of order at %d: %+v after %+v", i, sink.evs[i], sink.evs[i-1])
		}
	}
}

func TestSendFreeTracedDeliverOnly(t *testing.T) {
	m := MustNew(Config{Procs: 2, Params: Params{Tau: 10, Mu: 1, Delta: 1}, Sched: SchedCooperative, Trace: true})
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFree(1, 3, "ctl")
		} else {
			p.Recv(0, 3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := m.Events()
	if len(ev[0]) != 1 || ev[0][0].Kind != EvDeliver || ev[0][0].MsgID == 0 {
		t.Fatalf("SendFree should record exactly one deliver event, got %v", ev[0])
	}
	if wake := ev[1][1]; wake.Kind != EvRecvWake || wake.MsgID != ev[0][0].MsgID {
		t.Fatalf("control message wake not linked: %+v", ev[1])
	}
}

// TestStatsSnapshotIsolated is the regression test for the historical
// aliasing bug: the Stats()/Spans() results shared maps and span rows
// with internal state, so mutating a result (or running again)
// corrupted earlier snapshots.
func TestStatsSnapshotIsolated(t *testing.T) {
	m := tracedMachine(t, SchedCooperative)

	first := m.Stats()
	firstSpans := m.Spans()

	// Mutating the returned snapshot must not affect a later read.
	first[0].Phases["prs"] = PhaseStats{Comp: 1e9, Comm: 1e9}
	firstSpans[0][0].End = -1

	second := m.Stats()
	if second[0].Phases["prs"].Comp == 1e9 {
		t.Fatal("mutating a Stats() result leaked into machine state")
	}
	if m.Spans()[0][0].End == -1 {
		t.Fatal("mutating a Spans() result leaked into machine state")
	}

	// A second Run must not corrupt a snapshot taken before it.
	want := second[0].Phases["prs"]
	if err := m.Run(func(p *Proc) { p.SetPhase("prs"); p.Charge(1000) }); err != nil {
		t.Fatal(err)
	}
	if got := second[0].Phases["prs"]; got != want {
		t.Fatalf("second Run corrupted earlier snapshot: %+v != %+v", got, want)
	}
}
