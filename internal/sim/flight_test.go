package sim

import (
	"errors"
	"testing"
)

// TestFlightRecorderWindow pins the ring semantics: a run producing
// more events than the capacity retains exactly the newest Capacity
// events per rank, oldest-first in the snapshot, and counts the rest
// as overwritten.
func TestFlightRecorderWindow(t *testing.T) {
	const ringCap = 8
	fr := MustNewFlightRecorder(2, ringCap)
	m := MustNew(Config{Procs: 2, Sched: SchedCooperative, Params: Params{Delta: 1}, Flight: fr})
	err := m.Run(func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Charge(1)
			// Alternate phases so each Charge flushes as its own event
			// instead of merging into one batch.
			if i%2 == 0 {
				p.SetPhase("a")
			} else {
				p.SetPhase("b")
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := fr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot rows = %d, want 2", len(snap))
	}
	for r, row := range snap {
		if len(row) != ringCap {
			t.Fatalf("rank %d retained %d events, want %d", r, len(row), ringCap)
		}
		if fr.Total(r) <= uint64(ringCap) {
			t.Fatalf("rank %d total %d, want > %d (ring must have wrapped)", r, fr.Total(r), ringCap)
		}
		for i := 1; i < len(row); i++ {
			if row[i].Seq <= row[i-1].Seq {
				t.Fatalf("rank %d snapshot out of order at %d: seq %d then %d", r, i, row[i-1].Seq, row[i].Seq)
			}
			if row[i].Rank != r {
				t.Fatalf("rank %d ring holds event owned by rank %d", r, row[i].Rank)
			}
		}
	}
}

// TestFlightOnlyTracing pins that attaching only a flight recorder
// turns the emit path on (the ring fills) without retaining full event
// buffers on the machine.
func TestFlightOnlyTracing(t *testing.T) {
	fr := MustNewFlightRecorder(2, 16)
	m := MustNew(Config{Procs: 2, Sched: SchedCooperative, Params: Params{Tau: 1}, Flight: fr})
	err := m.Run(func(p *Proc) {
		peer := 1 - p.Rank()
		p.Send(peer, 7, nil, 4)
		p.Recv(peer, 7)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for r, row := range m.Events() {
		if len(row) != 0 {
			t.Fatalf("rank %d kept %d full-trace events without Config.Trace", r, len(row))
		}
	}
	snap := fr.Snapshot()
	for r, row := range snap {
		if len(row) == 0 {
			t.Fatalf("rank %d flight ring empty", r)
		}
	}
	// Both ranks saw a send, a deliver, a recv-block and a recv-wake.
	var kinds []EventKind
	for _, e := range snap[0] {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EvSend, EvDeliver, EvRecvBlock, EvRecvWake}
	if len(kinds) != len(want) {
		t.Fatalf("rank 0 ring kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("rank 0 ring kinds = %v, want %v", kinds, want)
		}
	}
}

// TestFlightRecorderTooSmall pins the construction-time size check.
func TestFlightRecorderTooSmall(t *testing.T) {
	fr := MustNewFlightRecorder(2, 8)
	if _, err := New(Config{Procs: 4, Flight: fr}); err == nil {
		t.Fatal("New accepted a flight recorder smaller than P")
	}
}

// TestErrDeadlockSentinel pins that both schedulers' deadlock run
// errors match sim.ErrDeadlock via errors.Is, so dump triggers can
// classify without parsing message text.
func TestErrDeadlockSentinel(t *testing.T) {
	for _, sched := range []Sched{SchedCooperative, SchedGoroutine} {
		m := MustNew(Config{Procs: 2, Sched: sched})
		err := m.Run(func(p *Proc) {
			if p.Rank() == 0 {
				p.Recv(1, 99) // never sent
			}
		})
		if err == nil {
			t.Fatalf("%v: wedged run returned nil", sched)
		}
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("%v: deadlock error %v does not match ErrDeadlock", sched, err)
		}
	}
}
