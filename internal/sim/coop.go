package sim

import (
	"fmt"
	"strings"
)

// This file is the cooperative execution mode (Config.Sched =
// SchedCooperative). The P processor bodies still live on goroutines —
// each needs its own stack to block in the middle of an algorithm —
// but they run strictly one at a time: the runnable processor with the
// smallest virtual clock (ties broken by rank, so runs are fully
// deterministic) holds the baton until it blocks in Recv with no
// matching message, finishes, or panics, and then resumes its successor
// directly. Handoffs go through one-slot channels — the sender performs
// no scheduler work after the send, which enforces the
// one-runner-at-a-time invariant, and the send happens-before the
// matching receive, which makes the lock-free mailbox access race-safe.
//
// Because every blocked receive and every delivered message passes
// through the scheduler state, a wedged machine is not inferred from
// timing: the moment no processor is runnable while some are blocked,
// the machine is proven deadlocked (no matching message exists anywhere
// for any waiter) and every waiter is unwound immediately with a full
// wait-for diagnostic. The goroutine mode's polling watch, its 2 ms
// trip latency, and its epoch/stability heuristics have no counterpart
// here.
//
// Two design points keep the scheduling overhead off the critical path
// on large machines:
//
//   - Readiness is event-driven: a delivery that satisfies the
//     destination's pending receive flips it to runnable right then
//     (noteDeliver, O(1) per message) instead of a wake-scan over all
//     blocked mailboxes per handoff (O(P·queue)).
//   - The runnable set is a binary heap ordered by (clock, rank), so
//     picking the successor is O(log P) instead of an O(P) scan. A
//     processor's clock only advances while it runs, and the heap only
//     ever holds parked processors, so the keys are immutable while
//     enqueued and the heap invariant cannot rot.

// coopRunState is a processor's scheduling state.
type coopRunState uint8

const (
	coopReady   coopRunState = iota // runnable (includes not-yet-started)
	coopBlocked                     // parked in Recv on (src, tag)
	coopDone                        // body returned or panicked
)

// coopSched is the per-run cooperative scheduler state. Only the
// currently running processor touches it, with channel handoffs
// ordering every access.
type coopSched struct {
	resume   []chan bool // per rank; false resumes only to unwind a deadlock
	finished chan struct{}
	state    []coopRunState
	waiting  []waitInfo // valid where state == coopBlocked
	procs    []*Proc
	m        *Machine
	diag     error

	ready []int // binary min-heap of runnable ranks, keyed by (clock, rank)
	left  int   // processors whose body has not finished
}

// less orders the ready heap by virtual clock, ties by rank.
func (c *coopSched) less(a, b int) bool {
	ca, cb := c.procs[a].clock, c.procs[b].clock
	return ca < cb || (ca == cb && a < b)
}

// pushReady enqueues a runnable rank.
func (c *coopSched) pushReady(r int) {
	c.ready = append(c.ready, r)
	i := len(c.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(c.ready[i], c.ready[parent]) {
			break
		}
		c.ready[i], c.ready[parent] = c.ready[parent], c.ready[i]
		i = parent
	}
}

// popReady dequeues the runnable rank with the smallest clock, or -1.
func (c *coopSched) popReady() int {
	n := len(c.ready)
	if n == 0 {
		return -1
	}
	top := c.ready[0]
	c.ready[0] = c.ready[n-1]
	c.ready = c.ready[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && c.less(c.ready[l], c.ready[small]) {
			small = l
		}
		if r < n && c.less(c.ready[r], c.ready[small]) {
			small = r
		}
		if small == i {
			break
		}
		c.ready[i], c.ready[small] = c.ready[small], c.ready[i]
		i = small
	}
	return top
}

// noteDeliver flips a blocked destination whose pending receive this
// message satisfies back to runnable. Called at every delivery by the
// running processor.
func (c *coopSched) noteDeliver(dst, src, tag int) {
	if c.state[dst] == coopBlocked && c.waiting[dst].src == src && c.waiting[dst].tag == tag {
		c.state[dst] = coopReady
		c.pushReady(dst)
	}
}

// passBaton hands control to the next runnable processor: the caller is
// parked (or done) and exactly one successor is woken. When nothing is
// runnable it either declares the run finished or proves a deadlock and
// starts unwinding the waiters one by one (each unwound processor's
// exit path calls passBaton again, continuing the chain).
func (c *coopSched) passBaton() {
	if c.left == 0 {
		close(c.finished)
		return
	}
	if pick := c.popReady(); pick >= 0 {
		c.resume[pick] <- true
		return
	}
	// No processor is runnable and not all are done: the machine is
	// wedged, exactly and provably. Record the full wait-for picture
	// once, then unwind the lowest-ranked waiter; its panic path brings
	// the baton back here for the next.
	if c.diag == nil {
		c.diag = c.deadlockDiagnostic(c.m)
	}
	for r, st := range c.state {
		if st == coopBlocked {
			c.resume[r] <- false
			return
		}
	}
	panic("sim: internal error: live processors but none ready or blocked")
}

// yieldBlocked parks the calling processor until a matching delivery
// resumes it. It returns false when the machine is deadlocked and the
// caller must unwind.
func (c *coopSched) yieldBlocked(rank, src, tag int) bool {
	c.waiting[rank] = waitInfo{src: src, tag: tag}
	c.state[rank] = coopBlocked
	c.passBaton()
	return <-c.resume[rank]
}

// takeCoop is the cooperative-mode receive: scan the queue, and if no
// message matches, hand the baton to the next processor. No locks — the
// scheduler guarantees exclusive access.
func (b *mailbox) takeCoop(c *coopSched, rank, src, tag int) message {
	for {
		for i := range b.queue {
			if b.queue[i].src == src && b.queue[i].tag == tag {
				return b.removeAt(i)
			}
		}
		if !c.yieldBlocked(rank, src, tag) {
			panic(deadlockError{rank: rank, src: src, tag: tag})
		}
	}
}

// deadlockDiagnostic renders the exact wait-for table of a wedged
// machine: every live processor, what it waits for, and how many
// unmatched messages sit in its mailbox.
func (c *coopSched) deadlockDiagnostic(m *Machine) error {
	var sb strings.Builder
	blocked := 0
	for r, st := range c.state {
		if st != coopBlocked {
			continue
		}
		if blocked > 0 {
			sb.WriteString("; ")
		}
		blocked++
		w := c.waiting[r]
		fmt.Fprintf(&sb, "processor %d waits for (src=%d, tag=%d) with %d queued messages, none matching",
			r, w.src, w.tag, len(m.boxes[r].queue))
	}
	return fmt.Errorf("%w: all %d live processors blocked on receives no send will ever satisfy: %s", ErrDeadlock, blocked, sb.String())
}

// runCoop executes body under the cooperative scheduler.
func (m *Machine) runCoop(body func(p *Proc)) error {
	n := m.cfg.Procs
	c := &coopSched{
		resume:   make([]chan bool, n),
		finished: make(chan struct{}),
		state:    make([]coopRunState, n),
		waiting:  make([]waitInfo, n),
		m:        m,
		left:     n,
	}
	// The resume channels carry the baton. A one-slot buffer lets a
	// processor that discovers the deadlock while being the only (or
	// lowest-ranked) blocked waiter post its own unwind token before
	// parking — with an unbuffered channel that self-send would hang.
	// The handoff discipline is unchanged: the sender does no scheduler
	// work after the send, so at most one processor runs at a time, and
	// the buffered send still happens-before the matching receive.
	for i := range c.resume {
		c.resume[i] = make(chan bool, 1)
	}
	procs := m.newProcs()
	c.procs = procs
	errs := make([]error, n)
	for _, p := range procs {
		p.cs = c
		go func(p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					errs[p.rank] = recoverRankErr(p.rank, r)
				}
				c.state[p.rank] = coopDone
				c.left--
				c.passBaton()
			}()
			if !<-c.resume[p.rank] {
				return // unwound before first being scheduled
			}
			body(p)
			p.flushHeld(-1) // release reorder-held messages before finishing
		}(p)
	}

	// Seed the ready heap with every processor (all clocks zero, so rank
	// 0 starts) and kick off the baton chain; the goroutine whose exit
	// leaves nothing to do closes finished.
	for r := 0; r < n; r++ {
		c.pushReady(r)
	}
	c.passBaton()
	<-c.finished
	return m.finishRun(procs, errs, c.diag)
}
