package pack

import (
	"fmt"
	"reflect"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

func generalLayouts() map[string]*dist.GeneralLayout {
	return map[string]*dist.GeneralLayout{
		"1d-prime":   dist.MustGeneralLayout(dist.Dim{N: 17, P: 4, W: 2}),
		"1d-w-gt-l":  dist.MustGeneralLayout(dist.Dim{N: 10, P: 4, W: 8}),
		"1d-partial": dist.MustGeneralLayout(dist.Dim{N: 29, P: 3, W: 4}),
		"2d-ragged":  dist.MustGeneralLayout(dist.Dim{N: 7, P: 2, W: 2}, dist.Dim{N: 10, P: 3, W: 2}),
		"2d-tiny":    dist.MustGeneralLayout(dist.Dim{N: 3, P: 2, W: 2}, dist.Dim{N: 5, P: 2, W: 3}),
		"3d-uneven":  dist.MustGeneralLayout(dist.Dim{N: 5, P: 2, W: 1}, dist.Dim{N: 4, P: 3, W: 2}, dist.Dim{N: 3, P: 1, W: 2}),
		"1d-divides": dist.MustGeneralLayout(dist.Dim{N: 16, P: 4, W: 2}), // also valid strictly
	}
}

// fillGlobalGeneral evaluates a mask generator over the whole ragged
// array in global row-major order.
func fillGlobalGeneral(gl *dist.GeneralLayout, gen mask.Gen) []bool {
	n := gl.GlobalSize()
	out := make([]bool, 0, n)
	d := gl.Rank()
	idx := make([]int, d)
	for pos := 0; pos < n; pos++ {
		out = append(out, gen.At(idx))
		for i := 0; i < d; i++ {
			idx[i]++
			if idx[i] < gl.Dims[i].N {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

func generalShape(gl *dist.GeneralLayout) []int {
	s := make([]int, gl.Rank())
	for i, d := range gl.Dims {
		s[i] = d.N
	}
	return s
}

func TestPackGeneralMatchesOracle(t *testing.T) {
	for lname, gl := range generalLayouts() {
		sh := generalShape(gl)
		gens := map[string]mask.Gen{
			"d40":   mask.NewRandom(0.4, 3, sh...),
			"full":  mask.Full{},
			"empty": mask.Empty{},
		}
		for gname, gen := range gens {
			for _, scheme := range []Scheme{SchemeSSS, SchemeCSS, SchemeCMS} {
				t.Run(fmt.Sprintf("%s/%s/%v", lname, gname, scheme), func(t *testing.T) {
					global := make([]int, gl.GlobalSize())
					for i := range global {
						global[i] = i + 11
					}
					gmask := fillGlobalGeneral(gl, gen)
					want := seq.Pack(global, gmask)
					if want == nil {
						want = []int{}
					}

					aLocals := dist.ScatterGeneral(gl, global)
					mLocals := dist.ScatterGeneral(gl, gmask)
					m := sim.MustNew(sim.Config{Procs: gl.Procs()})
					results := make([]*Result[int], gl.Procs())
					err := m.Run(func(p *sim.Proc) {
						res, err := PackGeneral(p, gl, aLocals[p.Rank()], mLocals[p.Rank()], Options{Scheme: scheme})
						if err != nil {
							panic(err)
						}
						results[p.Rank()] = res
					})
					if err != nil {
						t.Fatal(err)
					}
					got := make([]int, len(want))
					for rank, res := range results {
						if res.Ranking.Size != len(want) {
							t.Fatalf("Size=%d, oracle %d", res.Ranking.Size, len(want))
						}
						for i, v := range res.V {
							got[res.Vec.ToGlobal(rank, i)] = v
						}
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("PackGeneral mismatch:\n got %v\nwant %v", got, want)
					}
				})
			}
		}
	}
}

func TestUnpackGeneralMatchesOracle(t *testing.T) {
	for lname, gl := range generalLayouts() {
		sh := generalShape(gl)
		gen := mask.NewRandom(0.5, 9, sh...)
		for _, scheme := range []Scheme{SchemeSSS, SchemeCSS} {
			t.Run(fmt.Sprintf("%s/%v", lname, scheme), func(t *testing.T) {
				n := gl.GlobalSize()
				gmask := fillGlobalGeneral(gl, gen)
				size := seq.Count(gmask)
				vGlobal := make([]int, size+3)
				for i := range vGlobal {
					vGlobal[i] = 900 + i
				}
				fGlobal := make([]int, n)
				for i := range fGlobal {
					fGlobal[i] = -i - 1
				}
				want := seq.Unpack(vGlobal, gmask, fGlobal)

				vec, err := dist.NewVectorDist(len(vGlobal), gl.Procs(), 0)
				if err != nil {
					t.Fatal(err)
				}
				fLocals := dist.ScatterGeneral(gl, fGlobal)
				mLocals := dist.ScatterGeneral(gl, gmask)

				m := sim.MustNew(sim.Config{Procs: gl.Procs()})
				outs := make([][]int, gl.Procs())
				err = m.Run(func(p *sim.Proc) {
					v := make([]int, vec.LocalLen(p.Rank()))
					for i := range v {
						v[i] = vGlobal[vec.ToGlobal(p.Rank(), i)]
					}
					res, err := UnpackGeneral(p, gl, v, len(vGlobal), mLocals[p.Rank()], fLocals[p.Rank()], Options{Scheme: scheme})
					if err != nil {
						panic(err)
					}
					outs[p.Rank()] = res.A
				})
				if err != nil {
					t.Fatal(err)
				}
				got := dist.GatherGeneral(gl, outs)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("UnpackGeneral mismatch:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

func TestPackGeneralBadInputs(t *testing.T) {
	gl := dist.MustGeneralLayout(dist.Dim{N: 17, P: 4, W: 2})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		if _, err := PackGeneral(p, gl, make([]int, 1), make([]bool, 1), Options{}); err == nil {
			panic("mis-sized ragged local accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m2 := sim.MustNew(sim.Config{Procs: 2})
	err = m2.Run(func(p *sim.Proc) {
		if _, err := PackGeneral(p, gl, []int(nil), nil, Options{}); err == nil {
			panic("machine/layout mismatch accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
