package pack

import (
	"fmt"
	"reflect"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

// TestPackVectorDistributions: the result vector distributed
// block-cyclically with various block sizes must still produce the
// oracle content under every scheme.
func TestPackVectorDistributions(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 96, P: 4, W: 4})
	gen := mask.NewRandom(0.55, 13, 96)
	for _, scheme := range []Scheme{SchemeSSS, SchemeCSS, SchemeCMS} {
		for _, wv := range []int{0, 1, 2, 5, 100} {
			t.Run(fmt.Sprintf("%v/Wv=%d", scheme, wv), func(t *testing.T) {
				runPack(t, l, gen, Options{Scheme: scheme, VectorW: wv})
			})
		}
	}
}

func TestUnpackVectorDistributions(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 96, P: 4, W: 4})
	gen := mask.NewRandom(0.55, 13, 96)
	for _, scheme := range []Scheme{SchemeSSS, SchemeCSS} {
		for _, wv := range []int{0, 1, 3, 7} {
			t.Run(fmt.Sprintf("%v/Wv=%d", scheme, wv), func(t *testing.T) {
				runUnpackW(t, l, gen, 5, Options{Scheme: scheme, VectorW: wv})
			})
		}
	}
}

// TestCMSSegmentsGrowAsVectorBlocksShrink verifies the Section 6.2
// observation: the compact message scheme ships more header words when
// the result vector's blocks get smaller.
func TestCMSSegmentsGrowAsVectorBlocksShrink(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 1024, P: 8, W: 32})
	gen := mask.NewRandom(0.7, 3, 1024)
	words := func(wv int) int64 {
		m := sim.MustNew(sim.Config{Procs: 8, Params: sim.CM5Params()})
		err := m.Run(func(p *sim.Proc) {
			a := make([]int, l.LocalSize())
			lm := mask.FillLocal(l, p.Rank(), gen)
			if _, err := Pack(p, l, a, lm, Options{Scheme: SchemeCMS, VectorW: wv}); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, s := range m.Stats() {
			total += s.WordsSent
		}
		return total
	}
	block, cyc := words(0), words(1)
	if cyc <= block {
		t.Fatalf("cyclic result vector moved %d words, block moved %d; segments should fragment", cyc, block)
	}
}

// TestPackWithVectorArgument: the Fortran 90 VECTOR argument pads the
// result with the vector's trailing elements.
func TestPackWithVectorArgument(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 64, P: 4, W: 2})
	for _, density := range []float64{0, 0.3, 1.0} {
		for _, extra := range []int{0, 5, 40} {
			t.Run(fmt.Sprintf("d%.0f/extra%d", density*100, extra), func(t *testing.T) {
				gen := mask.NewRandom(density, 21, 64)
				gmask := mask.FillGlobal(l, gen)
				global := make([]int, 64)
				for i := range global {
					global[i] = i + 1
				}
				size := seq.Count(gmask)
				nVec := size + extra
				padGlobal := make([]int, nVec)
				for i := range padGlobal {
					padGlobal[i] = -100 - i
				}
				want := seq.PackVector(global, gmask, padGlobal)

				locals := dist.Scatter(l, global)
				vec, err := dist.NewVectorDist(nVec, 4, 0)
				if err != nil {
					t.Fatal(err)
				}
				m := sim.MustNew(sim.Config{Procs: 4})
				results := make([]*Result[int], 4)
				err = m.Run(func(p *sim.Proc) {
					lm := mask.FillLocal(l, p.Rank(), gen)
					pad := make([]int, vec.LocalLen(p.Rank()))
					for i := range pad {
						pad[i] = padGlobal[vec.ToGlobal(p.Rank(), i)]
					}
					res, err := PackVector(p, l, locals[p.Rank()], lm, pad, nVec, Options{Scheme: SchemeCMS})
					if err != nil {
						panic(err)
					}
					results[p.Rank()] = res
				})
				if err != nil {
					t.Fatal(err)
				}
				got := make([]int, nVec)
				for rank, res := range results {
					if res.Vec.Size != nVec {
						t.Fatalf("result vector sized %d, want %d", res.Vec.Size, nVec)
					}
					for i, v := range res.V {
						got[res.Vec.ToGlobal(rank, i)] = v
					}
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("PackVector mismatch:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

func TestPackVectorTooShort(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), mask.Full{}) // Size = 16
		vec, _ := dist.NewVectorDist(8, 4, 0)
		pad := make([]int, vec.LocalLen(p.Rank()))
		if _, err := PackVector(p, l, make([]int, 4), lm, pad, 8, Options{}); err == nil {
			panic("VECTOR shorter than Size accepted")
		}
		if _, err := PackVector(p, l, make([]int, 4), lm, nil, -1, Options{}); err == nil {
			panic("negative VECTOR length accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackVectorBadPadPortion(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), mask.Empty{})
		// Wrong local pad length: distribution of 8 over 4 gives 2 per
		// processor, pass 3.
		if _, err := PackVector(p, l, make([]int, 4), lm, make([]int, 3), 8, Options{}); err == nil {
			panic("mis-sized pad portion accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// runUnpackW is runUnpack with full options (vector distribution
// aware). It returns the machine so callers can inspect cost stats.
func runUnpackW(t *testing.T, l *dist.Layout, gen mask.Gen, slack int, opt Options) *sim.Machine {
	t.Helper()
	gmask := mask.FillGlobal(l, gen)
	size := seq.Count(gmask)
	nPrime := size + slack
	vGlobal := make([]int, nPrime)
	for i := range vGlobal {
		vGlobal[i] = 1000 + i
	}
	fGlobal := make([]int, l.GlobalSize())
	for i := range fGlobal {
		fGlobal[i] = -1 - i
	}
	want := seq.Unpack(vGlobal, gmask, fGlobal)

	vec, err := dist.NewVectorDist(nPrime, l.Procs(), opt.VectorW)
	if err != nil {
		t.Fatal(err)
	}
	fLocals := dist.Scatter(l, fGlobal)

	m := sim.MustNew(sim.Config{Procs: l.Procs()})
	results := make([]*UnpackResult[int], l.Procs())
	err = m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		vLocal := make([]int, vec.LocalLen(p.Rank()))
		for i := range vLocal {
			vLocal[i] = vGlobal[vec.ToGlobal(p.Rank(), i)]
		}
		res, err := Unpack(p, l, vLocal, nPrime, lm, fLocals[p.Rank()], opt)
		if err != nil {
			panic(err)
		}
		results[p.Rank()] = res
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}

	aLocals := make([][]int, l.Procs())
	for r, res := range results {
		aLocals[r] = res.A
	}
	got := dist.Gather(l, aLocals)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unpacked array mismatch:\n got %v\nwant %v", got, want)
	}
	return m
}
