package pack

import (
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/ranking"
	"packunpack/internal/sim"
)

// composeAllocs measures the heap allocations of one compose call for
// rank 0 of a P=4 cyclic layout with an n-element global array. The
// ranking stage (a collective) runs once up front; the compose
// functions themselves are pure local work, so they can be measured
// after the machine run on a quiet heap.
func composeAllocs(t *testing.T, n int, compose func(p *sim.Proc, l *dist.Layout, a []int, m []bool, rnk *ranking.Result, vec dist.VectorDist)) float64 {
	t.Helper()
	l := dist.MustLayout(dist.Dim{N: n, P: 4, W: 8})
	machine := sim.MustNew(sim.Config{Procs: 4})
	var rnk *ranking.Result
	var m []bool
	var proc *sim.Proc
	err := machine.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), mask.NewRandom(0.5, 7, n))
		r, err := ranking.Rank(p, l, lm, ranking.Options{})
		if err != nil {
			panic(err)
		}
		if p.Rank() == 0 {
			rnk = r
			m = lm
			proc = p
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int, l.LocalSize())
	for i := range a {
		a[i] = i
	}
	vec, err := dist.NewVectorDist(rnk.Size, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Charging against a finished machine's rank-0 proc is harmless:
	// it only advances that proc's (no longer read) virtual clock.
	return testing.AllocsPerRun(20, func() {
		compose(proc, l, a, m, rnk, vec)
	})
}

// TestComposeHotPathAllocations is the allocation-regression guard for
// the exact-sized send lists: the compose functions must allocate a
// small constant number of buffers (the counts, the arenas, the slice
// scratch) regardless of how many elements are selected. Per-element
// append growth would scale these numbers with n.
func TestComposeHotPathAllocations(t *testing.T) {
	const maxAllocs = 10.0
	for _, n := range []int{1024, 8192} {
		css := composeAllocs(t, n, func(p *sim.Proc, l *dist.Layout, a []int, m []bool, rnk *ranking.Result, vec dist.VectorDist) {
			send := make([][]pair[int], 4)
			composePairsCSS(p, l, a, m, rnk, vec, send, false)
		})
		if css > maxAllocs {
			t.Errorf("composePairsCSS(n=%d): %.0f allocs/run, want <= %.0f (send lists must be exact-sized)", n, css, maxAllocs)
		}
		cms := composeAllocs(t, n, func(p *sim.Proc, l *dist.Layout, a []int, m []bool, rnk *ranking.Result, vec dist.VectorDist) {
			send := make([][]segMsg[int], 4)
			composeSegmentsCMS(p, l, a, m, rnk, vec, send, false)
		})
		if cms > maxAllocs {
			t.Errorf("composeSegmentsCMS(n=%d): %.0f allocs/run, want <= %.0f (segment/data arenas must be exact-sized)", n, cms, maxAllocs)
		}
	}
}

// TestPlanComposeAllocations extends the guard to the compiled-plan
// path: executing a plan composes from the precompiled run list into
// two exact-sized arenas, so the per-call allocation count must stay a
// small constant regardless of n — the warm-call cost the plan cache
// amortizes toward.
func TestPlanComposeAllocations(t *testing.T) {
	const maxAllocs = 10.0
	for _, n := range []int{1024, 8192} {
		l := dist.MustLayout(dist.Dim{N: n, P: 4, W: 8})
		machine := sim.MustNew(sim.Config{Procs: 4})
		var pl *Plan
		var proc *sim.Proc
		err := machine.Run(func(p *sim.Proc) {
			lm := mask.FillLocal(l, p.Rank(), mask.NewRandom(0.5, 7, n))
			cp, err := CompilePlan(p, l, lm, Options{})
			if err != nil {
				panic(err)
			}
			if p.Rank() == 0 {
				pl = cp
				proc = p
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		a := make([]int, l.LocalSize())
		for i := range a {
			a[i] = i
		}
		got := testing.AllocsPerRun(20, func() {
			composePlanSegs(proc, pl, a)
		})
		if got > maxAllocs {
			t.Errorf("composePlanSegs(n=%d): %.0f allocs/run, want <= %.0f (plan exec must reuse the compiled runs, not rebuild them)", n, got, maxAllocs)
		}
	}
}
