package pack

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

// TestPackPropertyRandomConfigs drives randomly generated layouts,
// densities, schemes and vector distributions through the oracle
// comparison.
func TestPackPropertyRandomConfigs(t *testing.T) {
	pvals := []int{1, 2, 3, 4}
	wvals := []int{1, 2, 4}
	tvals := []int{1, 2, 3}
	f := func(p1, w1, t1, p2, w2, t2 uint, dpct uint8, seed uint64, schemeSel, wvSel uint8) bool {
		d0 := dist.Dim{P: pvals[p1%4], W: wvals[w1%3]}
		d0.N = d0.P * d0.W * tvals[t1%3]
		d1 := dist.Dim{P: pvals[p2%4], W: wvals[w2%3]}
		d1.N = d1.P * d1.W * tvals[t2%3]
		l, err := dist.NewLayout(d0, d1)
		if err != nil {
			return false
		}
		density := float64(dpct%101) / 100
		gen := mask.NewRandom(density, seed, d0.N, d1.N)
		scheme := []Scheme{SchemeSSS, SchemeCSS, SchemeCMS}[schemeSel%3]
		wv := []int{0, 1, 2, 5}[wvSel%4]

		global := make([]int, l.GlobalSize())
		for i := range global {
			global[i] = i * 7
		}
		gmask := mask.FillGlobal(l, gen)
		want := seq.Pack(global, gmask)
		locals := dist.Scatter(l, global)

		m := sim.MustNew(sim.Config{Procs: l.Procs()})
		results := make([]*Result[int], l.Procs())
		err = m.Run(func(p *sim.Proc) {
			lm := mask.FillLocal(l, p.Rank(), gen)
			res, err := Pack(p, l, locals[p.Rank()], lm, Options{Scheme: scheme, VectorW: wv})
			if err != nil {
				panic(err)
			}
			results[p.Rank()] = res
		})
		if err != nil {
			return false
		}
		got := make([]int, len(want))
		for rank, res := range results {
			if res.Ranking.Size != len(want) {
				return false
			}
			for i, v := range res.V {
				got[res.Vec.ToGlobal(rank, i)] = v
			}
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

// TestExhaustiveSmallConfigs enumerates every legal (P, W) pair for a
// small 1-D array and every scheme — complete coverage of the
// distribution space at this size.
func TestExhaustiveSmallConfigs(t *testing.T) {
	const n = 24
	gen := mask.NewRandom(0.5, 31, n)
	for p := 1; p <= n; p++ {
		if n%p != 0 {
			continue
		}
		localSize := n / p
		for w := 1; w <= localSize; w++ {
			if localSize%w != 0 {
				continue
			}
			l := dist.MustLayout(dist.Dim{N: n, P: p, W: w})
			for _, scheme := range []Scheme{SchemeSSS, SchemeCSS, SchemeCMS} {
				t.Run(fmt.Sprintf("P%d/W%d/%v", p, w, scheme), func(t *testing.T) {
					runPack(t, l, gen, Options{Scheme: scheme})
				})
			}
		}
	}
}

// TestPackDeterministicTimings: two identical runs must produce
// identical virtual-time statistics (bit-for-bit), the emulator's
// reproducibility guarantee.
func TestPackDeterministicTimings(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 2, W: 2}, dist.Dim{N: 16, P: 2, W: 4})
	gen := mask.NewRandom(0.5, 77, 16, 16)
	run := func() []sim.Stats {
		m := sim.MustNew(sim.Config{Procs: 4, Params: sim.CM5Params()})
		err := m.Run(func(p *sim.Proc) {
			a := make([]int, l.LocalSize())
			lm := mask.FillLocal(l, p.Rank(), gen)
			if _, err := Pack(p, l, a, lm, Options{Scheme: SchemeCMS}); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("identical pack runs produced different statistics")
	}
}

// TestPackUnpackRoundTripOnMachine: UNPACK(PACK(a,m), m, a) == a, end
// to end on the emulated machine across schemes.
func TestPackUnpackRoundTripOnMachine(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 12, P: 2, W: 3}, dist.Dim{N: 10, P: 5, W: 1})
	gen := mask.NewRandom(0.6, 41, 12, 10)
	global := make([]int, l.GlobalSize())
	for i := range global {
		global[i] = 3*i + 1
	}
	locals := dist.Scatter(l, global)

	for _, packScheme := range []Scheme{SchemeSSS, SchemeCMS} {
		for _, unpackScheme := range []Scheme{SchemeSSS, SchemeCSS} {
			t.Run(fmt.Sprintf("%v-%v", packScheme, unpackScheme), func(t *testing.T) {
				m := sim.MustNew(sim.Config{Procs: l.Procs()})
				out := make([][]int, l.Procs())
				err := m.Run(func(p *sim.Proc) {
					lm := mask.FillLocal(l, p.Rank(), gen)
					res, err := Pack(p, l, locals[p.Rank()], lm, Options{Scheme: packScheme})
					if err != nil {
						panic(err)
					}
					back, err := Unpack(p, l, res.V, res.Vec.Size, lm, locals[p.Rank()], Options{Scheme: unpackScheme})
					if err != nil {
						panic(err)
					}
					out[p.Rank()] = back.A
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := dist.Gather(l, out); !reflect.DeepEqual(got, global) {
					t.Fatalf("round trip lost data:\n got %v\nwant %v", got, global)
				}
			})
		}
	}
}

// TestPackStringElements: the generic implementation must work for
// non-numeric element types (strings count one word each here).
func TestPackStringElements(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	global := make([]string, 16)
	gmask := make([]bool, 16)
	for i := range global {
		global[i] = fmt.Sprintf("s%02d", i)
		gmask[i] = i%3 != 1
	}
	want := seq.Pack(global, gmask)
	locals := dist.Scatter(l, global)
	maskLocals := dist.Scatter(l, gmask)

	m := sim.MustNew(sim.Config{Procs: 4})
	results := make([]*Result[string], 4)
	err := m.Run(func(p *sim.Proc) {
		res, err := Pack(p, l, locals[p.Rank()], maskLocals[p.Rank()], Options{Scheme: SchemeCMS})
		if err != nil {
			panic(err)
		}
		results[p.Rank()] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(want))
	for rank, res := range results {
		for i, v := range res.V {
			got[res.Vec.ToGlobal(rank, i)] = v
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("string pack mismatch: %v vs %v", got, want)
	}
}

// TestSoakRandomConfigs is a longer randomized soak across layouts,
// schemes, vector distributions, pads and both operations; skipped in
// -short mode.
func TestSoakRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20260704))
	pick := func(xs []int) int { return xs[rng.Intn(len(xs))] }
	for iter := 0; iter < 150; iter++ {
		d0 := dist.Dim{P: pick([]int{1, 2, 3, 4}), W: pick([]int{1, 2, 3, 4})}
		d0.N = d0.P * d0.W * pick([]int{1, 2, 3, 4})
		dims := []dist.Dim{d0}
		if rng.Intn(2) == 0 {
			d1 := dist.Dim{P: pick([]int{1, 2, 3}), W: pick([]int{1, 2})}
			d1.N = d1.P * d1.W * pick([]int{1, 2, 3})
			dims = append(dims, d1)
		}
		l, err := dist.NewLayout(dims...)
		if err != nil {
			t.Fatalf("iter %d: bad layout: %v", iter, err)
		}
		shape := make([]int, l.Rank())
		for i, d := range l.Dims {
			shape[i] = d.N
		}
		density := float64(rng.Intn(101)) / 100
		gen := mask.NewRandom(density, rng.Uint64(), shape...)
		opt := Options{
			Scheme:         []Scheme{SchemeSSS, SchemeCSS, SchemeCMS}[rng.Intn(3)],
			VectorW:        pick([]int{0, 1, 2, 3}),
			WholeSliceScan: rng.Intn(2) == 0,
		}
		if rng.Intn(3) == 0 {
			opt.A2A.SkipEmpty = true
		}
		if rng.Intn(4) == 0 {
			opt.A2A.Naive = true
		}
		runPack(t, l, gen, opt)
		if opt.Scheme != SchemeCMS {
			runUnpackW(t, l, gen, rng.Intn(5), opt)
		}
	}
}
