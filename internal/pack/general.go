package pack

import (
	"fmt"

	"packunpack/internal/dist"
	"packunpack/internal/transport"
)

// This file lifts the paper's divisibility assumptions from PACK and
// UNPACK. The paper assumes P_i | N_i and W_i | L_i "for the sake of
// simplicity"; real arrays rarely oblige. The generalization pads each
// dimension up to the next tile multiple (dist.GeneralLayout.Padded)
// and masks the padding out: padding lives at the *end* of every
// dimension, so the row-major order of the real elements — and hence
// every rank the ranking stage computes — is unchanged, and the padded
// elements never pack (their mask is false) and never receive UNPACK
// data.

// raggedToPadded builds the map between a processor's ragged local
// offsets and its padded local offsets (identical per-dimension local
// indices, different strides).
func raggedToPadded(gl *dist.GeneralLayout, padded *dist.Layout, rank int) []int {
	shape := gl.LocalShapeAt(rank)
	pShape := padded.LocalShape()
	d := len(shape)
	size := 1
	for _, s := range shape {
		size *= s
	}
	out := make([]int, size)
	locals := make([]int, d)
	pOff := 0
	pStride := make([]int, d)
	s := 1
	for i := 0; i < d; i++ {
		pStride[i] = s
		s *= pShape[i]
	}
	for off := 0; off < size; off++ {
		out[off] = pOff
		for i := 0; i < d; i++ {
			locals[i]++
			pOff += pStride[i]
			if locals[i] < shape[i] {
				break
			}
			pOff -= shape[i] * pStride[i]
			locals[i] = 0
		}
	}
	return out
}

// PackGeneral is Pack for arrays whose extents need not satisfy the
// paper's divisibility assumptions. a and m are the processor's ragged
// local portions (row-major over the ragged local shape,
// dist.GeneralLayout.LocalShapeAt).
func PackGeneral[T any](p transport.Endpoint, gl *dist.GeneralLayout, a []T, m []bool, opt Options) (*Result[T], error) {
	padded, pa, pm, _, err := padInputs(p, gl, a, m)
	if err != nil {
		return nil, err
	}
	return Pack(p, padded, pa, pm, opt)
}

// UnpackGeneral is Unpack for ragged layouts: the result array comes
// back in the caller's ragged local shape.
func UnpackGeneral[T any](p transport.Endpoint, gl *dist.GeneralLayout, v []T, nPrime int, m []bool, field []T, opt Options) (*UnpackResult[T], error) {
	padded, pf, pm, toPadded, err := padInputs(p, gl, field, m)
	if err != nil {
		return nil, err
	}
	res, err := Unpack(p, padded, v, nPrime, pm, pf, opt)
	if err != nil {
		return nil, err
	}
	// Extract the ragged result from the padded one.
	out := make([]T, len(toPadded))
	for off, pOff := range toPadded {
		out[off] = res.A[pOff]
	}
	p.Charge(len(out))
	res.A = out
	return res, nil
}

// padInputs validates sizes and builds the padded local array and mask
// (padding masked false). It charges the padding passes.
func padInputs[T any](p transport.Endpoint, gl *dist.GeneralLayout, a []T, m []bool) (*dist.Layout, []T, []bool, []int, error) {
	if p.NProcs() != gl.Procs() {
		return nil, nil, nil, nil, fmt.Errorf("pack: machine has %d processors but layout needs %d", p.NProcs(), gl.Procs())
	}
	want := gl.LocalSizeAt(p.Rank())
	if len(a) != want || len(m) != want {
		return nil, nil, nil, nil, fmt.Errorf("pack: ragged local array %d / mask %d, layout needs %d", len(a), len(m), want)
	}
	padded := gl.Padded()
	pa := make([]T, padded.LocalSize())
	pm := make([]bool, padded.LocalSize())
	toPadded := raggedToPadded(gl, padded, p.Rank())
	for off, pOff := range toPadded {
		pa[pOff] = a[off]
		pm[pOff] = m[off]
	}
	// One pass to zero/false-initialize the padded buffers plus one
	// element copy per real element.
	p.Charge(padded.LocalSize() + 2*want)
	return padded, pa, pm, toPadded, nil
}
