package pack

import (
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/sim"
)

func TestCountMatchesMaskCount(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 12, P: 2, W: 3}, dist.Dim{N: 8, P: 4, W: 1})
	for _, density := range []float64{0, 0.3, 0.8, 1} {
		gen := mask.NewRandom(density, 19, 12, 8)
		want := mask.Count(gen, 12, 8)
		m := sim.MustNew(sim.Config{Procs: 8, Params: sim.CM5Params()})
		err := m.Run(func(p *sim.Proc) {
			lm := mask.FillLocal(l, p.Rank(), gen)
			got, err := Count(p, l, lm)
			if err != nil {
				panic(err)
			}
			if got != want {
				panic("Count mismatch")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCountCheaperThanPack(t *testing.T) {
	// COUNT must cost a fraction of a full PACK at the same inputs.
	l := dist.MustLayout(dist.Dim{N: 4096, P: 16, W: 16})
	gen := mask.NewRandom(0.5, 7, 4096)
	timeOf := func(doPack bool) float64 {
		m := sim.MustNew(sim.Config{Procs: 16, Params: sim.CM5Params()})
		err := m.Run(func(p *sim.Proc) {
			lm := mask.FillLocal(l, p.Rank(), gen)
			var err error
			if doPack {
				a := make([]int, l.LocalSize())
				_, err = Pack(p, l, a, lm, Options{Scheme: SchemeCMS})
			} else {
				_, err = Count(p, l, lm)
			}
			if err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.MaxClock()
	}
	packT, countT := timeOf(true), timeOf(false)
	if countT*2 >= packT {
		t.Fatalf("COUNT (%v) should be far cheaper than PACK (%v)", countT, packT)
	}
}

func TestCountGeneral(t *testing.T) {
	gl := dist.MustGeneralLayout(dist.Dim{N: 23, P: 4, W: 3})
	gen := mask.NewRandom(0.5, 29, 23)
	want := mask.Count(gen, 23)
	m := sim.MustNew(sim.Config{Procs: 4})
	gmask := fillGlobalGeneral(gl, gen)
	mLocals := dist.ScatterGeneral(gl, gmask)
	err := m.Run(func(p *sim.Proc) {
		got, err := CountGeneral(p, gl, mLocals[p.Rank()])
		if err != nil {
			panic(err)
		}
		if got != want {
			panic("CountGeneral mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountBadInputs(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	gl := dist.MustGeneralLayout(dist.Dim{N: 17, P: 4, W: 2})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		if _, err := Count(p, l, make([]bool, 1)); err == nil {
			panic("short mask accepted")
		}
		if _, err := CountGeneral(p, gl, make([]bool, 1)); err == nil {
			panic("short ragged mask accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m2 := sim.MustNew(sim.Config{Procs: 2})
	err = m2.Run(func(p *sim.Proc) {
		if _, err := Count(p, l, make([]bool, 4)); err == nil {
			panic("machine mismatch accepted")
		}
		if _, err := CountGeneral(p, gl, make([]bool, gl.LocalSizeAt(p.Rank()))); err == nil {
			panic("ragged machine mismatch accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	gen := mask.NewRandom(0.5, 13, 16)
	gmask := mask.FillGlobal(l, gen)
	tGlobal := make([]int, 16)
	fGlobal := make([]int, 16)
	for i := range tGlobal {
		tGlobal[i] = 100 + i
		fGlobal[i] = -100 - i
	}
	tLocals := dist.Scatter(l, tGlobal)
	fLocals := dist.Scatter(l, fGlobal)

	m := sim.MustNew(sim.Config{Procs: 4, Params: sim.CM5Params()})
	outs := make([][]int, 4)
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		out, err := Merge(p, l, tLocals[p.Rank()], fLocals[p.Rank()], lm)
		if err != nil {
			panic(err)
		}
		outs[p.Rank()] = out
	})
	if err != nil {
		t.Fatal(err)
	}
	got := dist.Gather(l, outs)
	for i := range got {
		want := fGlobal[i]
		if gmask[i] {
			want = tGlobal[i]
		}
		if got[i] != want {
			t.Fatalf("Merge at %d: got %d, want %d", i, got[i], want)
		}
	}
	// MERGE must be communication-free.
	for _, s := range m.Stats() {
		if s.MsgsSent != 0 {
			t.Fatalf("Merge sent %d messages; it must be local", s.MsgsSent)
		}
	}
}

func TestMergeBadInputs(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		if _, err := Merge(p, l, make([]int, 4), make([]int, 3), make([]bool, 4)); err == nil {
			panic("mismatched operands accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
