package pack

import (
	"fmt"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/ranking"
	"packunpack/internal/transport"
)

// UnpackResult is the outcome of Unpack on one processor.
type UnpackResult[T any] struct {
	// A is this processor's local portion of the result array, in
	// local row-major order, conformable with the mask.
	A []T
	// Ranking is the ranking-stage result.
	Ranking *ranking.Result
}

// reqSeg is a compact request: "send me the Count vector elements
// starting at global rank Base" (two machine words). The simple
// storage scheme sends one single-element segment per selected element
// (its effective request size is one word, the rank; we charge one
// word accordingly).
type reqSeg struct {
	Base  int
	Count int
}

// Unpack scatters the distributed input vector into a new array shaped
// like the mask: selected positions receive the vector elements in
// array element order, unselected positions receive the field array
// value. v is the processor's portion of the input vector, nPrime its
// global length (the paper's N', which must be at least the number of
// selected elements); m and field are the local mask and field arrays.
// The input vector is block-distributed by default and block-cyclic
// with Options.VectorW otherwise.
//
// UNPACK is a read operation: no processor knows in advance who needs
// its vector elements, so the redistribution stage uses two-phase
// communication — requests travel to the vector owners, data travels
// back (Section 4.2).
func Unpack[T any](p transport.Endpoint, l *dist.Layout, v []T, nPrime int, m []bool, field []T, opt Options) (*UnpackResult[T], error) {
	if len(m) != l.LocalSize() || len(field) != l.LocalSize() {
		return nil, fmt.Errorf("unpack: local mask %d / field %d, layout needs %d", len(m), len(field), l.LocalSize())
	}
	if opt.Scheme == SchemeCMS {
		return nil, fmt.Errorf("unpack: the compact message scheme applies to PACK only (requests are already compact under CSS)")
	}
	if opt.Plans != nil {
		return unpackPlanned(p, l, v, nPrime, m, field, opt)
	}
	vec, err := dist.NewVectorDist(nPrime, p.NProcs(), opt.VectorW)
	if err != nil {
		return nil, err
	}
	if want := vec.LocalLen(p.Rank()); len(v) != want {
		return nil, fmt.Errorf("unpack: local vector has %d elements, distribution of N'=%d gives %d", len(v), nPrime, want)
	}

	rnk, err := ranking.Rank(p, l, m, opt.rankingOptions(opt.Scheme == SchemeSSS))
	if err != nil {
		return nil, err
	}
	if rnk.Size > nPrime {
		return nil, fmt.Errorf("unpack: vector too short: N'=%d < Size=%d", nPrime, rnk.Size)
	}

	world := comm.World(p)
	n := p.NProcs()

	// ---- Compose requests, remembering how to place the replies. ----
	reqs := make([][]reqSeg, n)
	reqWords := make([]int, n)
	// For CSS, placement[i] lists (slice, skip, count) triples in
	// request order; for SSS, recIdx[i] lists record indices.
	type placeSeg struct{ slice, skip, count int }
	var placement [][]placeSeg
	var recIdx [][]int

	// The per-destination request/placement lists are pre-sized to
	// their exact final lengths from the ranking results (uncharged
	// host bookkeeping), so the append loops below never reallocate.
	carveReqs := func(counts []int) {
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			return
		}
		arena := make([]reqSeg, total)
		off := 0
		for dst, c := range counts {
			if c == 0 {
				continue
			}
			reqs[dst] = arena[off : off : off+c]
			off += c
		}
	}

	if opt.Scheme == SchemeSSS {
		recIdx = make([][]int, n)
		counts := make([]int, n)
		for _, rec := range rnk.Records {
			dst, _ := vec.Owner(rnk.RankOf(rec))
			counts[dst]++
		}
		carveReqs(counts)
		total := 0
		for _, c := range counts {
			total += c
		}
		idxArena := make([]int, total)
		off := 0
		for dst, c := range counts {
			if c == 0 {
				continue
			}
			recIdx[dst] = idxArena[off : off : off+c]
			off += c
		}
		for ri, rec := range rnk.Records {
			r := rnk.RankOf(rec)
			dst, _ := vec.Owner(r)
			reqs[dst] = append(reqs[dst], reqSeg{Base: r, Count: 1})
			recIdx[dst] = append(recIdx[dst], ri)
			reqWords[dst]++ // one word per individual rank request
		}
		p.Charge(2 * len(rnk.Records)) // resolve rank, write request
	} else {
		placement = make([][]placeSeg, n)
		g := geomOf(l)
		counts := make([]int, n)
		forEachRankRun(rnk, vec, g.slices, func(dst, cnt int) { counts[dst]++ })
		carveReqs(counts)
		total := 0
		for _, c := range counts {
			total += c
		}
		placeArena := make([]placeSeg, total)
		off := 0
		for dst, c := range counts {
			if c == 0 {
				continue
			}
			placement[dst] = placeArena[off : off : off+c]
			off += c
		}
		p.Charge(g.slices) // check the counter array, one read per slice
		for slice := 0; slice < g.slices; slice++ {
			cnt := rnk.PSc[slice]
			if cnt == 0 {
				continue
			}
			r := rnk.PSf[slice]
			taken := 0
			for taken < cnt {
				dst, _ := vec.Owner(r)
				fit := vec.BlockRunEnd(r) - r
				c := min(fit, cnt-taken)
				reqs[dst] = append(reqs[dst], reqSeg{Base: r, Count: c})
				placement[dst] = append(placement[dst], placeSeg{slice: slice, skip: taken, count: c})
				reqWords[dst] += 2
				p.Charge(2) // request segment header
				r += c
				taken += c
			}
		}
	}

	// ---- Stage 1: requests to the vector owners. ----
	prev := p.SetPhase(PhaseM2M)
	gotReqs := comm.AlltoallVW(world, reqs, reqWords, opt.A2A)
	p.SetPhase(prev)

	// ---- Serve: slice the local vector portion per request. ----
	replies := serveVecRequests(p, vec, v, gotReqs)

	// ---- Stage 2: data back to the requesters. ----
	prev = p.SetPhase(PhaseM2M)
	gotData := comm.AlltoallVOpt(world, replies, 1, opt.A2A)
	p.SetPhase(prev)

	// ---- Place: field values where the mask is false, vector data
	// where it is true. ----
	res := &UnpackResult[T]{A: make([]T, l.LocalSize()), Ranking: rnk}
	for off, sel := range m {
		if !sel {
			res.A[off] = field[off]
		}
	}
	p.Charge(l.LocalSize()) // the local field-array transfer pass
	if opt.Scheme == SchemeSSS {
		for src, data := range gotData {
			for i, ri := range recIdx[src] {
				rec := rnk.Records[ri]
				res.A[rec.Off] = data[i]
			}
			p.Charge(2 * len(data)) // read record, write datum
		}
	} else {
		g := geomOf(l)
		for src, data := range gotData {
			pos := 0
			for _, pl := range placement[src] {
				pos += placeIntoSlice(p, g, res.A, m, pl.slice, pl.skip, pl.count, data[pos:], opt.WholeSliceScan)
			}
		}
	}
	recordPackOp(p, "unpack", len(res.A))
	return res, nil
}

// serveVecRequests answers the owner side of UNPACK's two-phase
// exchange: for every received request segment, the owner slices the
// requested run out of its local vector portion. The planned and
// unplanned paths share this helper, so a served request costs the
// same (one header read plus one op per copied word) either way.
func serveVecRequests[T any](p transport.Endpoint, vec dist.VectorDist, v []T, gotReqs [][]reqSeg) [][]T {
	replies := make([][]T, len(gotReqs))
	for src, list := range gotReqs {
		if len(list) == 0 {
			continue
		}
		total := 0
		for _, rq := range list {
			total += rq.Count
		}
		out := make([]T, 0, total)
		for _, rq := range list {
			p.Charge(1 + rq.Count) // read request, copy data
			_, lo := vec.Owner(rq.Base)
			out = append(out, v[lo:lo+rq.Count]...)
		}
		replies[src] = out
	}
	return replies
}

// placeIntoSlice scatters data into the slice's selected positions,
// skipping the first skip selected positions, writing count elements.
// It returns count. The rescan mirrors the compact storage scheme's
// collectSlice.
func placeIntoSlice[T any](p transport.Endpoint, g sliceGeom, a []T, m []bool, slice, skip, count int, data []T, whole bool) int {
	base := g.base(slice)
	seen := 0
	written := 0
	scanned := 0
	for i := 0; i < g.w0; i++ {
		scanned++
		if m[base+i] {
			if seen >= skip && written < count {
				a[base+i] = data[written]
				written++
				if written == count && !whole {
					break
				}
			}
			seen++
			if seen >= skip+count && !whole {
				break
			}
		}
	}
	p.Charge(scanned + count)
	if written != count {
		panic(fmt.Sprintf("pack: internal error: placed %d of %d elements in slice %d", written, count, slice))
	}
	return count
}
