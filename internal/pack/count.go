package pack

import (
	"fmt"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/transport"
)

// Count computes the number of selected elements — the Fortran 90
// COUNT intrinsic. It is the cheap sibling of the ranking stage: one
// local mask scan and a single-word reduction-sum, with no
// per-dimension base-rank arrays and no redistribution. Every
// processor receives the global count.
func Count(p transport.Endpoint, l *dist.Layout, m []bool) (int, error) {
	if len(m) != l.LocalSize() {
		return 0, fmt.Errorf("pack: local mask has %d elements, layout needs %d", len(m), l.LocalSize())
	}
	if p.NProcs() != l.Procs() {
		return 0, fmt.Errorf("pack: machine has %d processors but layout needs %d", p.NProcs(), l.Procs())
	}
	n := 0
	for _, sel := range m {
		if sel {
			n++
		}
	}
	p.Charge(len(m))
	_, total := comm.World(p).PrefixReductionSum([]int{n}, comm.PRSDirect)
	return total[0], nil
}

// CountGeneral is Count for ragged layouts (arbitrary extents).
func CountGeneral(p transport.Endpoint, gl *dist.GeneralLayout, m []bool) (int, error) {
	if want := gl.LocalSizeAt(p.Rank()); len(m) != want {
		return 0, fmt.Errorf("pack: ragged local mask has %d elements, layout needs %d", len(m), want)
	}
	if p.NProcs() != gl.Procs() {
		return 0, fmt.Errorf("pack: machine has %d processors but layout needs %d", p.NProcs(), gl.Procs())
	}
	n := 0
	for _, sel := range m {
		if sel {
			n++
		}
	}
	p.Charge(len(m))
	_, total := comm.World(p).PrefixReductionSum([]int{n}, comm.PRSDirect)
	return total[0], nil
}
