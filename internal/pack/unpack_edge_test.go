package pack

import (
	"fmt"
	"testing"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/sim"
)

// prefixGen selects exactly the first K elements of a 1-D array, which
// concentrates every vector request on the first vector owner and
// leaves the remaining owners with zero-length reply buffers.
type prefixGen struct{ K int }

func (g prefixGen) At(global []int) bool { return global[0] < g.K }
func (g prefixGen) Name() string         { return fmt.Sprintf("prefix(%d)", g.K) }

func sumMsgs(m *sim.Machine) int64 {
	var total int64
	for _, s := range m.Stats() {
		total += s.MsgsSent
	}
	return total
}

// TestUnpackSkipEmptyZeroLengthReplies drives the two-phase UNPACK
// redistribution through AlltoallV's SkipEmpty mode on a pattern where
// both directions carry empty buffers: only the first 6 of 64 elements
// are selected, so two processors compose no requests at all, and with
// N' padded to 32 only the first vector owner holds requested data —
// every other owner's reply to every requester is zero-length. The
// result must still match the sequential oracle, and skipping must
// strictly reduce the number of (costed) messages.
func TestUnpackSkipEmptyZeroLengthReplies(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 64, P: 4, W: 4})
	gen := prefixGen{K: 6}
	const slack = 26 // N' = 6 + 26 = 32, block-distributed 8 per owner
	for _, scheme := range []Scheme{SchemeSSS, SchemeCSS} {
		for _, naive := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/naive=%v", scheme, naive), func(t *testing.T) {
				base := Options{Scheme: scheme, A2A: comm.A2AOptions{Naive: naive}}
				skip := base
				skip.A2A.SkipEmpty = true
				full := runUnpackW(t, l, gen, slack, base)
				skipped := runUnpackW(t, l, gen, slack, skip)
				if f, s := sumMsgs(full), sumMsgs(skipped); s >= f {
					t.Errorf("SkipEmpty sent %d messages, always-send sent %d; empty requests/replies should be skipped", s, f)
				}
			})
		}
	}
}

// TestUnpackSkipEmptyNoSelection is the fully degenerate corner: an
// empty mask means every request buffer and every reply buffer in both
// all-to-all stages has zero length, so under SkipEmpty the
// redistribution stages exchange probes only. The unpacked array must
// equal the field array, and the message-count difference against
// always-send mode must be exactly the 2·P rounds per processor that
// the two all-to-all stages would otherwise transmit empty.
func TestUnpackSkipEmptyNoSelection(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 48, P: 4, W: 3})
	for _, scheme := range []Scheme{SchemeSSS, SchemeCSS} {
		full := runUnpackW(t, l, mask.Empty{}, 8, Options{Scheme: scheme})
		skip := runUnpackW(t, l, mask.Empty{}, 8, Options{Scheme: scheme, A2A: comm.A2AOptions{SkipEmpty: true}})
		p := int64(l.Procs())
		if d := sumMsgs(full) - sumMsgs(skip); d != 2*p*p {
			t.Errorf("scheme %v: SkipEmpty removed %d messages, want exactly %d (all data rounds of both stages)", scheme, d, 2*p*p)
		}
	}
}
