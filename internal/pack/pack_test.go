package pack

import (
	"fmt"
	"reflect"
	"testing"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

// layouts used across the correctness tests: a spread of ranks, grid
// shapes and block sizes, including cyclic (W=1), block (W=L) and
// non-power-of-two processor counts.
func testLayouts() map[string]*dist.Layout {
	return map[string]*dist.Layout{
		"1d-cyclic":      dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1}),
		"1d-blockcyclic": dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2}),
		"1d-block":       dist.MustLayout(dist.Dim{N: 16, P: 4, W: 4}),
		"1d-np2":         dist.MustLayout(dist.Dim{N: 30, P: 3, W: 5}),
		"1d-big":         dist.MustLayout(dist.Dim{N: 256, P: 8, W: 4}),
		"2d-square":      dist.MustLayout(dist.Dim{N: 8, P: 2, W: 2}, dist.Dim{N: 8, P: 2, W: 2}),
		"2d-cyclic":      dist.MustLayout(dist.Dim{N: 8, P: 2, W: 1}, dist.Dim{N: 8, P: 2, W: 1}),
		"2d-mixed":       dist.MustLayout(dist.Dim{N: 12, P: 2, W: 3}, dist.Dim{N: 6, P: 3, W: 1}),
		"2d-flat":        dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2}, dist.Dim{N: 4, P: 1, W: 4}),
		"3d":             dist.MustLayout(dist.Dim{N: 4, P: 2, W: 1}, dist.Dim{N: 4, P: 2, W: 2}, dist.Dim{N: 4, P: 1, W: 4}),
		"3d-wide":        dist.MustLayout(dist.Dim{N: 8, P: 2, W: 2}, dist.Dim{N: 6, P: 1, W: 3}, dist.Dim{N: 6, P: 3, W: 2}),
	}
}

func testMasks(l *dist.Layout) map[string]mask.Gen {
	shape := make([]int, l.Rank())
	for i, d := range l.Dims {
		shape[i] = d.N
	}
	gens := map[string]mask.Gen{
		"empty":  mask.Empty{},
		"full":   mask.Full{},
		"d10":    mask.NewRandom(0.10, 1, shape...),
		"d50":    mask.NewRandom(0.50, 2, shape...),
		"d90":    mask.NewRandom(0.90, 3, shape...),
		"single": singleTrue{shape: shape},
	}
	if l.Rank() == 1 {
		gens["lt"] = mask.FirstHalf{N: shape[0]}
	}
	if l.Rank() == 2 {
		gens["lt"] = mask.UpperTriangle{}
	}
	return gens
}

// singleTrue selects exactly one element, near the end of the array.
type singleTrue struct{ shape []int }

func (s singleTrue) At(global []int) bool {
	pos, stride := 0, 1
	for i, g := range global {
		pos += g * stride
		stride *= s.shape[i]
	}
	total := stride
	return pos == total-1-total/3
}
func (s singleTrue) Name() string { return "single" }

// runPack executes Pack on an emulated machine and checks the gathered
// result vector against the sequential oracle.
func runPack(t *testing.T, l *dist.Layout, gen mask.Gen, opt Options) {
	t.Helper()
	n := l.GlobalSize()
	global := make([]int, n)
	for i := range global {
		global[i] = i * 10
	}
	gmask := mask.FillGlobal(l, gen)
	want := seq.Pack(global, gmask)
	if want == nil {
		want = []int{}
	}

	locals := dist.Scatter(l, global)
	m := sim.MustNew(sim.Config{Procs: l.Procs()})
	results := make([]*Result[int], l.Procs())
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		res, err := Pack(p, l, locals[p.Rank()], lm, opt)
		if err != nil {
			panic(err)
		}
		results[p.Rank()] = res
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}

	got := make([]int, len(want))
	for rank, r := range results {
		if r.Ranking.Size != len(want) {
			t.Fatalf("rank %d reports Size=%d, oracle %d", rank, r.Ranking.Size, len(want))
		}
		if len(r.V) != r.Vec.LocalLen(rank) {
			t.Fatalf("rank %d holds %d vector elements, distribution gives %d", rank, len(r.V), r.Vec.LocalLen(rank))
		}
		for i, v := range r.V {
			got[r.Vec.ToGlobal(rank, i)] = v
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packed vector mismatch:\n got %v\nwant %v", got, want)
	}
}

// runUnpack executes Unpack and checks the gathered result array
// against the sequential oracle.
func runUnpack(t *testing.T, l *dist.Layout, gen mask.Gen, slack int, opt Options) {
	t.Helper()
	gmask := mask.FillGlobal(l, gen)
	size := seq.Count(gmask)
	nPrime := size + slack
	vGlobal := make([]int, nPrime)
	for i := range vGlobal {
		vGlobal[i] = 1000 + i
	}
	fGlobal := make([]int, l.GlobalSize())
	for i := range fGlobal {
		fGlobal[i] = -1 - i
	}
	want := seq.Unpack(vGlobal, gmask, fGlobal)

	vec, err := dist.NewBlockVector(nPrime, l.Procs())
	if err != nil {
		t.Fatal(err)
	}
	fLocals := dist.Scatter(l, fGlobal)

	m := sim.MustNew(sim.Config{Procs: l.Procs()})
	results := make([]*UnpackResult[int], l.Procs())
	err = m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		start := vec.Start(p.Rank())
		vLocal := make([]int, vec.LocalLen(p.Rank()))
		for i := range vLocal {
			vLocal[i] = vGlobal[start+i]
		}
		res, err := Unpack(p, l, vLocal, nPrime, lm, fLocals[p.Rank()], opt)
		if err != nil {
			panic(err)
		}
		results[p.Rank()] = res
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}

	aLocals := make([][]int, l.Procs())
	for r, res := range results {
		aLocals[r] = res.A
	}
	got := dist.Gather(l, aLocals)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unpacked array mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestPackMatchesOracle(t *testing.T) {
	for lname, l := range testLayouts() {
		for mname, gen := range testMasks(l) {
			for _, scheme := range []Scheme{SchemeSSS, SchemeCSS, SchemeCMS} {
				name := fmt.Sprintf("%s/%s/%s", lname, mname, scheme)
				t.Run(name, func(t *testing.T) {
					runPack(t, l, gen, Options{Scheme: scheme})
				})
			}
		}
	}
}

func TestUnpackMatchesOracle(t *testing.T) {
	for lname, l := range testLayouts() {
		for mname, gen := range testMasks(l) {
			for _, scheme := range []Scheme{SchemeSSS, SchemeCSS} {
				for _, slack := range []int{0, 7} {
					name := fmt.Sprintf("%s/%s/%s/slack%d", lname, mname, scheme, slack)
					t.Run(name, func(t *testing.T) {
						runUnpack(t, l, gen, slack, Options{Scheme: scheme})
					})
				}
			}
		}
	}
}

func TestPackVariants(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 64, P: 4, W: 4})
	shape := []int{64}
	gen := mask.NewRandom(0.4, 7, shape...)
	variants := map[string]Options{
		"whole-slice-scan": {Scheme: SchemeCSS, WholeSliceScan: true},
		"cms-whole-scan":   {Scheme: SchemeCMS, WholeSliceScan: true},
		"prs-direct":       {Scheme: SchemeCMS, PRS: comm.PRSDirect},
		"prs-split":        {Scheme: SchemeCMS, PRS: comm.PRSSplit},
		"separate-prs":     {Scheme: SchemeSSS, SeparatePrefixReduce: true},
		"a2a-skipempty":    {Scheme: SchemeCMS, A2A: comm.A2AOptions{SkipEmpty: true}},
		"a2a-naive":        {Scheme: SchemeSSS, A2A: comm.A2AOptions{Naive: true}},
		"a2a-naive-skip":   {Scheme: SchemeCSS, A2A: comm.A2AOptions{Naive: true, SkipEmpty: true}},
	}
	for name, opt := range variants {
		t.Run(name, func(t *testing.T) {
			runPack(t, l, gen, opt)
		})
	}
	t.Run("unpack-whole-scan", func(t *testing.T) {
		runUnpack(t, l, gen, 0, Options{Scheme: SchemeCSS, WholeSliceScan: true})
	})
	t.Run("unpack-skipempty", func(t *testing.T) {
		runUnpack(t, l, gen, 3, Options{Scheme: SchemeSSS, A2A: comm.A2AOptions{SkipEmpty: true}})
	})
}

func TestUnpackVectorTooShort(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	m := sim.MustNew(sim.Config{Procs: 4})
	var sawErr bool
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), mask.Full{}) // Size = 16
		vec, _ := dist.NewBlockVector(8, 4)            // N' = 8 < 16
		v := make([]int, vec.LocalLen(p.Rank()))
		f := make([]int, l.LocalSize())
		_, err := Unpack(p, l, v, 8, lm, f, Options{Scheme: SchemeCSS})
		if err == nil {
			panic("expected error for N' < Size")
		}
		if p.Rank() == 0 {
			sawErr = true
		}
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}
	if !sawErr {
		t.Fatal("error was not raised")
	}
}

func TestPackBadLocalSizes(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 4, W: 2})
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		_, err := Pack(p, l, make([]int, 3), make([]bool, 4), Options{})
		if err == nil {
			panic("expected size mismatch error")
		}
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}
}

func TestSchemeString(t *testing.T) {
	cases := map[Scheme]string{SchemeSSS: "SSS", SchemeCSS: "CSS", SchemeCMS: "CMS", Scheme(9): "Scheme(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
