package pack

// This file is the plan-compilation layer: the ranking stage and the
// run discovery of a PACK/UNPACK call are hoisted into a one-time
// compile, and repeat calls with the same (layout, mask, options)
// execute a compact schedule of bulk copy() moves instead. The design
// follows the iteration-plan idea of real halo-exchange and
// stream-compaction codes: the per-element work of the redistribution
// stage collapses into per-run work, and the dominant per-call ranking
// cost is paid once.
//
// A compiled Plan is a per-destination list of copyRun triples
// (srcOffset, baseRank, len): maximal groups of selected elements that
// are contiguous in local memory, consecutive in global rank, and
// owned by a single block of the result-vector distribution. Under
// every scheme the runs are the same — the simple storage scheme's
// length-1 per-record runs coalesce wherever records are adjacent, and
// the compact schemes' consecutive-rank segments (the runs
// forEachRankRun walks) split additionally at mask gaps, which a bulk
// copy from the source array requires anyway.
//
// The transparent cache path (Options.Plans) must keep a collective
// invariant: ranking is a collective, so every processor of the
// machine has to make the same hit-or-miss decision or the machine
// deadlocks. A single two-word prefix-reduction-sum settles both
// questions at once — see planLookup — so a warm call pays exactly one
// collective, like the ranking stage it replaces, instead of two.

import (
	"fmt"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/ranking"
	"packunpack/internal/transport"
)

// copyRun is one bulk move of a compiled plan: Len contiguous local
// elements starting at source offset Src whose global ranks are Base,
// Base+1, ..., all owned by one processor of the vector distribution.
type copyRun struct {
	Src  int
	Base int
	Len  int
}

// Plan is a compiled PACK/UNPACK schedule for one (layout, mask,
// options) configuration on one processor. Plans are immutable once
// compiled and carry no references to the arrays they were compiled
// from, so they may be cached, shared across machines, and executed
// any number of times. A plan compiled for PACK serves UNPACK too: the
// same runs describe where vector data lands in the local array.
type Plan struct {
	layout *dist.Layout
	opt    Options // Plans stripped; A2A/Scheme/VectorW live here
	nVec   int     // PACK VECTOR length / UNPACK N'; -1 means Size
	// gfp is the global (machine-wide) fingerprint the plan was
	// compiled under — the agreement token of planLookup. Zero for
	// plans compiled through the explicit CompilePlan API.
	gfp uint64
	vec dist.VectorDist
	// rnk is the trimmed ranking result (Size/PSf/PSc, never Records);
	// planned results share it across calls, so treat it as read-only.
	rnk  *ranking.Result
	runs [][]copyRun // per destination processor, in rank order
	// Precomputed message sizing, so execution never re-walks the runs
	// to size a send: segWords[dst] is the PACK segment word count
	// (2+Len per run), reqWords[dst] the UNPACK request word count
	// (2 per run).
	segWords  []int
	reqWords  []int
	totalRuns int
	totalData int
}

// Size returns the global number of selected elements the plan was
// compiled for.
func (pl *Plan) Size() int { return pl.rnk.Size }

// RunCount returns the number of copy runs of this processor's
// schedule (its share of the plan's bulk moves).
func (pl *Plan) RunCount() int { return pl.totalRuns }

// Vec returns the result/input vector distribution the plan targets.
func (pl *Plan) Vec() dist.VectorDist { return pl.vec }

// Ranking exposes the plan's trimmed ranking result (read-only).
func (pl *Plan) Ranking() *ranking.Result { return pl.rnk }

// mix64 is the splitmix64 finalizer — the same mixer the mask
// generators use — applied to fingerprint words.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// maskFingerprint hashes the local mask 64 elements at a time: the
// booleans of one group pack into a bit word, and each word feeds the
// splitmix64 mixer. The length folds in last so masks that differ only
// by trailing false elements stay distinct.
func maskFingerprint(m []bool) uint64 {
	h := uint64(0x243f6a8885a308d3)
	i := 0
	// Full 64-element words, packed 8 bits at a time with branchless
	// bool-to-bit conversion: the mask is hashed on every transparent
	// call, so this scan must stay cheap next to the copies it saves.
	for ; i+64 <= len(m); i += 64 {
		c := m[i : i+64 : i+64]
		var w uint64
		for j := 0; j < 64; j += 8 {
			w |= (b2u(c[j]) | b2u(c[j+1])<<1 | b2u(c[j+2])<<2 | b2u(c[j+3])<<3 |
				b2u(c[j+4])<<4 | b2u(c[j+5])<<5 | b2u(c[j+6])<<6 | b2u(c[j+7])<<7) << uint(j)
		}
		h = mix64(h ^ w)
	}
	if i < len(m) {
		var w uint64
		for j, b := range m[i:] {
			w |= b2u(b) << uint(j)
		}
		h = mix64(h ^ w)
	}
	return mix64(h ^ uint64(len(m)))
}

// b2u converts a bool to 0/1 without a branch (the compiler lowers
// this pattern to a flag-set instruction).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// planFingerprint is the local cache key: the mask hash with the
// layout dimensions, scheme, vector block size and the requested
// vector length folded in. vecLen is -1 for plain PACK (the vector
// takes the selected count), the VECTOR length for PackVector, and N'
// for UNPACK.
func planFingerprint(l *dist.Layout, m []bool, opt Options, vecLen int) uint64 {
	h := maskFingerprint(m)
	h = mix64(h ^ uint64(len(l.Dims)))
	for _, d := range l.Dims {
		h = mix64(h ^ uint64(d.N))
		h = mix64(h ^ uint64(d.P))
		h = mix64(h ^ uint64(d.W))
	}
	h = mix64(h ^ uint64(opt.Scheme))
	h = mix64(h ^ uint64(opt.VectorW))
	return mix64(h ^ uint64(int64(vecLen)))
}

// Rank salts keep the agreement sums order-sensitive: without them,
// two ranks swapping masks (or stored fingerprints) would leave the
// commutative sums unchanged.
const (
	fpRankSalt    = 0x5851f42d
	agreeRankSalt = 0x14057b7e
)

// planLookup is the collective cache negotiation of the transparent
// path, settled by ONE two-word prefix-reduction-sum (the same
// collective count as the ranking stage a warm call skips):
//
//	word 1 sums rank-salted hashes of the local mask fingerprints —
//	the global fingerprint gfp; any rank whose mask changed moves it.
//	word 2 sums rank-salted hashes of each rank's STORED global
//	fingerprint (the gfp recorded in its cached plan for this local
//	key; zero when it has none).
//
// Every rank then locally folds the sum word 2 WOULD have if every
// rank held a plan compiled under exactly this gfp. The hit/miss
// decision compares the two sums — both collective outputs — so all
// ranks decide identically by construction: a shared cache caught
// mid-fill by another machine's compile skews word 2 and the whole
// machine recompiles together, never deadlocking on a partial rank
// set. The decision is probabilistic the same way the fingerprint is
// (wrap-around sums of splitmix64 words); a collision that fakes
// unanimity against an empty slot panics rather than desyncing.
func planLookup(p transport.Endpoint, cache *PlanCache, localFP uint64, algo comm.PRSAlgorithm) (gfp uint64, pl *Plan) {
	pl = cache.get(localFP, p.Rank())
	var stored uint64
	if pl != nil {
		stored = pl.gfp
	}
	world := comm.World(p)
	prev := p.SetPhase(ranking.PhasePRS)
	contrib := []int{
		int(mix64(localFP ^ mix64(uint64(p.Rank())+fpRankSalt))),
		int(mix64(stored ^ mix64(uint64(p.Rank())+agreeRankSalt))),
	}
	_, tot := world.PrefixReductionSum(contrib, algo)
	gfp = uint64(tot[0])
	expected := 0
	for j := 0; j < p.NProcs(); j++ {
		expected += int(mix64(gfp ^ mix64(uint64(j)+agreeRankSalt)))
	}
	p.Charge(p.NProcs()) // fold the expected unanimity sum
	p.SetPhase(prev)
	if tot[1] != expected {
		cache.noteMiss()
		recordPlanLookup(p, false)
		return gfp, nil
	}
	if pl == nil {
		// Unanimity matched but this rank holds nothing: an agreement
		// collision (~2^-64). Executing would desync the machine.
		panic("pack: plan-cache agreement collision with empty local slot")
	}
	cache.noteHit()
	recordPlanLookup(p, true)
	return gfp, pl
}

// forEachCopyRun walks the selected elements in local scan order and
// emits the maximal copy runs: a run extends while the next element is
// adjacent in local memory, consecutive in global rank, and still
// inside the current vector block. The walk streams records through
// ranking.Result.IterRecords, so nothing per-element is materialized.
func forEachCopyRun(rnk *ranking.Result, g sliceGeom, m []bool, vec dist.VectorDist, fn func(dst int, run copyRun)) {
	cur := copyRun{}
	curDst, curEnd := 0, 0
	flush := func() {
		if cur.Len > 0 {
			fn(curDst, cur)
			cur.Len = 0
		}
	}
	rnk.IterRecords(g.l0, g.w0, g.t0, m, func(rec ranking.Record) {
		r := rnk.RankOf(rec)
		if cur.Len > 0 && rec.Off == cur.Src+cur.Len && r == cur.Base+cur.Len && r < curEnd {
			cur.Len++
			return
		}
		flush()
		cur = copyRun{Src: rec.Off, Base: r, Len: 1}
		curDst, _ = vec.Owner(r)
		curEnd = vec.BlockRunEnd(r)
	})
	flush()
}

// CompilePlan runs the ranking collective once and compiles the
// result into a bulk-copy plan for the calling processor. Every
// processor of the machine must call it with the same layout and
// options. The ranking stage always runs in its compact (counter-only)
// form — the compiler streams records instead of materializing them —
// so compiling under the simple storage scheme costs the same as under
// the compact ones. The compile walk charges one mask rescan plus
// three words per emitted run (the run triple write).
func CompilePlan(p transport.Endpoint, l *dist.Layout, m []bool, opt Options) (*Plan, error) {
	return compilePlan(p, l, m, opt, -1)
}

func compilePlan(p transport.Endpoint, l *dist.Layout, m []bool, opt Options, vecLen int) (*Plan, error) {
	if len(m) != l.LocalSize() {
		return nil, fmt.Errorf("pack: local mask %d, layout needs %d", len(m), l.LocalSize())
	}
	switch opt.Scheme {
	case SchemeSSS, SchemeCSS, SchemeCMS:
	default:
		return nil, fmt.Errorf("pack: unknown scheme %v", opt.Scheme)
	}
	if done := planCompileTimer(p); done != nil {
		defer done()
	}
	rnk, err := ranking.Rank(p, l, m, ranking.Options{
		PRS: opt.PRS, KeepRecords: false, SeparatePrefixReduce: opt.SeparatePrefixReduce,
	})
	if err != nil {
		return nil, err
	}
	size := rnk.Size
	if vecLen >= 0 {
		if size > vecLen {
			return nil, fmt.Errorf("pack: plan vector too short: %d < Size=%d", vecLen, size)
		}
		size = vecLen
	}
	vec, err := dist.NewVectorDist(size, p.NProcs(), opt.VectorW)
	if err != nil {
		return nil, err
	}
	n := p.NProcs()
	pl := &Plan{
		layout: l, opt: opt, nVec: vecLen, vec: vec, rnk: rnk,
		runs: make([][]copyRun, n), segWords: make([]int, n), reqWords: make([]int, n),
	}
	pl.opt.Plans = nil // a plan must not retain the cache that holds it
	g := geomOf(l)
	// Sizing pre-pass (uncharged host bookkeeping, the compose-arena
	// idiom): per-destination run counts carve one arena.
	counts := make([]int, n)
	forEachCopyRun(rnk, g, m, vec, func(dst int, run copyRun) {
		counts[dst]++
		pl.totalRuns++
		pl.totalData += run.Len
		pl.segWords[dst] += 2 + run.Len
		pl.reqWords[dst] += 2
	})
	if pl.totalRuns > 0 {
		arena := make([]copyRun, pl.totalRuns)
		off := 0
		for dst, c := range counts {
			if c == 0 {
				continue
			}
			pl.runs[dst] = arena[off : off : off+c]
			off += c
		}
		forEachCopyRun(rnk, g, m, vec, func(dst int, run copyRun) {
			pl.runs[dst] = append(pl.runs[dst], run)
		})
	}
	p.Charge(len(m) + 3*pl.totalRuns) // rescan reads + run triple writes
	return pl, nil
}

// composePlanSegs builds the per-destination segment messages of a
// planned PACK: one exact-sized segment arena, one data arena, and a
// bulk copy per run. Each run is charged as per-run setup (the two
// header words) plus one op per word moved — the bulk-copy charge of
// the cost model.
func composePlanSegs[T any](p transport.Endpoint, pl *Plan, a []T) [][]segMsg[T] {
	send := make([][]segMsg[T], p.NProcs())
	if pl.totalRuns == 0 {
		return send
	}
	segArena := make([]segMsg[T], pl.totalRuns)
	dataArena := make([]T, pl.totalData)
	sOff, dOff := 0, 0
	for dst, runs := range pl.runs {
		if len(runs) == 0 {
			continue
		}
		segs := segArena[sOff : sOff : sOff+len(runs)]
		sOff += len(runs)
		for _, run := range runs {
			data := dataArena[dOff : dOff+run.Len : dOff+run.Len]
			dOff += run.Len
			copy(data, a[run.Src:run.Src+run.Len])
			segs = append(segs, segMsg[T]{Base: run.Base, Data: data})
		}
		send[dst] = segs
	}
	// Per-run setup (the two header words) plus one op per word moved
	// — the bulk-copy charge of the cost model, batched per call.
	p.Charge(2*pl.totalRuns + pl.totalData)
	return send
}

// execPackPlan executes a compiled plan as PACK: bulk-copy compose,
// one many-to-many exchange of segment messages, bulk decode. pad is
// only consulted for plans compiled with a VECTOR length.
func execPackPlan[T any](p transport.Endpoint, pl *Plan, a []T, pad []T) (*Result[T], error) {
	if len(a) != pl.layout.LocalSize() {
		return nil, fmt.Errorf("pack: local array %d, plan's layout needs %d", len(a), pl.layout.LocalSize())
	}
	vec := pl.vec
	res := &Result[T]{Vec: vec, Ranking: pl.rnk, V: make([]T, vec.LocalLen(p.Rank()))}
	if pl.nVec >= 0 {
		if len(pad) != len(res.V) {
			return nil, fmt.Errorf("pack: local VECTOR portion has %d elements, distribution gives %d", len(pad), len(res.V))
		}
		copy(res.V, pad)
		p.Charge(len(pad)) // initialize the result from the pad vector
	}
	send := composePlanSegs(p, pl, a)
	prev := p.SetPhase(PhaseM2M)
	recv := comm.AlltoallVW(comm.World(p), send, pl.segWords, pl.opt.A2A)
	p.SetPhase(prev)
	ops := 0
	for _, buf := range recv {
		for _, seg := range buf {
			ops += 2 + len(seg.Data)
			_, lo := vec.Owner(seg.Base)
			copy(res.V[lo:], seg.Data)
		}
	}
	p.Charge(ops) // per segment: header read + bulk word copy
	recordPackOp(p, "pack", len(res.V))
	return res, nil
}

// execUnpackPlan executes a compiled plan as UNPACK: the runs become
// run-length requests, the owners serve vector slices exactly as the
// unplanned path does, and the replies land with one bulk copy per run
// (the rescan of placeIntoSlice disappears — the run already pins the
// destination offsets).
func execUnpackPlan[T any](p transport.Endpoint, pl *Plan, v []T, field []T) (*UnpackResult[T], error) {
	if pl.opt.Scheme == SchemeCMS {
		return nil, fmt.Errorf("unpack: the compact message scheme applies to PACK only (requests are already compact under CSS)")
	}
	l := pl.layout
	if len(field) != l.LocalSize() {
		return nil, fmt.Errorf("unpack: local field %d, plan's layout needs %d", len(field), l.LocalSize())
	}
	vec := pl.vec
	if want := vec.LocalLen(p.Rank()); len(v) != want {
		return nil, fmt.Errorf("unpack: local vector has %d elements, plan's distribution gives %d", len(v), want)
	}
	n := p.NProcs()
	reqs := make([][]reqSeg, n)
	if pl.totalRuns > 0 {
		arena := make([]reqSeg, pl.totalRuns)
		off := 0
		for dst, runs := range pl.runs {
			if len(runs) == 0 {
				continue
			}
			rs := arena[off : off : off+len(runs)]
			off += len(runs)
			for _, run := range runs {
				rs = append(rs, reqSeg{Base: run.Base, Count: run.Len})
			}
			reqs[dst] = rs
		}
		p.Charge(2 * pl.totalRuns) // request segment headers
	}
	world := comm.World(p)
	prev := p.SetPhase(PhaseM2M)
	gotReqs := comm.AlltoallVW(world, reqs, pl.reqWords, pl.opt.A2A)
	p.SetPhase(prev)

	replies := serveVecRequests(p, vec, v, gotReqs)

	prev = p.SetPhase(PhaseM2M)
	gotData := comm.AlltoallVOpt(world, replies, 1, pl.opt.A2A)
	p.SetPhase(prev)

	res := &UnpackResult[T]{A: make([]T, l.LocalSize()), Ranking: pl.rnk}
	copy(res.A, field)
	p.Charge(l.LocalSize()) // the local field-array transfer pass
	for src, data := range gotData {
		pos := 0
		for _, run := range pl.runs[src] {
			copy(res.A[run.Src:run.Src+run.Len], data[pos:pos+run.Len])
			pos += run.Len
		}
	}
	// Per run: header read + bulk word copy, batched per call.
	p.Charge(2*pl.totalRuns + pl.totalData)
	recordPackOp(p, "unpack", len(res.A))
	return res, nil
}

// PlanPack executes a compiled plan as PACK (the explicit two-step
// API: compile once with CompilePlan, execute per call with no
// per-call ranking or cache negotiation at all).
func PlanPack[T any](p transport.Endpoint, pl *Plan, a []T) (*Result[T], error) {
	if pl.nVec >= 0 {
		return nil, fmt.Errorf("pack: plan was compiled with a VECTOR length; execute it through PackVector's transparent cache path")
	}
	return execPackPlan(p, pl, a, nil)
}

// PlanUnpack executes a compiled plan as UNPACK against the plan's
// vector distribution (N' = the plan's vector size).
func PlanUnpack[T any](p transport.Endpoint, pl *Plan, v []T, field []T) (*UnpackResult[T], error) {
	return execUnpackPlan(p, pl, v, field)
}

// packPlanned is the transparent cache path of packImpl: fingerprint,
// collective lookup, compile on a miss, bulk execute.
func packPlanned[T any](p transport.Endpoint, l *dist.Layout, a []T, m []bool, opt Options, pad []T, nVec int) (*Result[T], error) {
	fp := planFingerprint(l, m, opt, nVec)
	p.Charge(len(m)/64 + 1) // mask hashing, one op per 64-element word
	gfp, pl := planLookup(p, opt.Plans, fp, opt.PRS)
	if pl == nil {
		var err error
		pl, err = compilePlan(p, l, m, opt, nVec)
		if err != nil {
			return nil, err
		}
		pl.gfp = gfp
		opt.Plans.put(fp, p.Rank(), pl)
	}
	return execPackPlan(p, pl, a, pad)
}

// unpackPlanned is the transparent cache path of Unpack.
func unpackPlanned[T any](p transport.Endpoint, l *dist.Layout, v []T, nPrime int, m []bool, field []T, opt Options) (*UnpackResult[T], error) {
	fp := planFingerprint(l, m, opt, nPrime)
	p.Charge(len(m)/64 + 1) // mask hashing, one op per 64-element word
	gfp, pl := planLookup(p, opt.Plans, fp, opt.PRS)
	if pl == nil {
		var err error
		pl, err = compilePlan(p, l, m, opt, nPrime)
		if err != nil {
			return nil, err
		}
		pl.gfp = gfp
		opt.Plans.put(fp, p.Rank(), pl)
	}
	return execUnpackPlan(p, pl, v, field)
}
