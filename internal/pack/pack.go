// Package pack implements the parallel PACK and UNPACK algorithms of
// Section 4 of the paper on top of the ranking stage: ranking first
// (package ranking), then a redistribution stage built on many-to-many
// personalized communication (package comm).
//
// Three scheme variants are provided for PACK and two for UNPACK
// (Section 6):
//
//   - SchemeSSS, the simple storage scheme: a record is saved for every
//     selected element during the initial scan, and messages carry
//     (datum, global rank) pairs.
//   - SchemeCSS, the compact storage scheme: nothing is saved per
//     element; the slice counter array PS_c and the final base-rank
//     array PS_f are compared to regenerate ranks and destinations,
//     at the cost of a second slice scan. Messages still carry
//     (datum, rank) pairs.
//   - SchemeCMS, the compact message scheme: CSS storage plus
//     run-length message encoding — consecutive ranks per destination
//     are shipped as segments (base rank, count, datum...).
//
// The result vector defaults to the paper's block distribution, but any
// block-cyclic vector distribution is supported (Options.VectorW);
// smaller vector blocks fragment the compact message scheme's segments
// exactly as Section 6.2 predicts. PackVector implements the Fortran 90
// optional VECTOR argument (result padded from a vector of length
// >= the selected count).
package pack

import (
	"fmt"

	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/ranking"
	"packunpack/internal/transport"
)

// Scheme selects the storage/message scheme of Section 6.
type Scheme int

const (
	// SchemeSSS is the simple storage scheme.
	SchemeSSS Scheme = iota
	// SchemeCSS is the compact storage scheme.
	SchemeCSS
	// SchemeCMS is the compact message scheme (PACK only; UNPACK
	// requests are already run-length encoded under CSS).
	SchemeCMS
)

func (s Scheme) String() string {
	switch s {
	case SchemeSSS:
		return "SSS"
	case SchemeCSS:
		return "CSS"
	case SchemeCMS:
		return "CMS"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// PhaseM2M is the sim phase name under which the many-to-many
// personalized communication of the redistribution stage is booked.
const PhaseM2M = "m2m"

// Options configure a PACK or UNPACK invocation. The zero value is the
// simple storage scheme with the paper's default algorithm choices.
type Options struct {
	Scheme Scheme
	// PRS picks the prefix-reduction-sum variant used by the ranking
	// stage (default: the paper's auto rule).
	PRS comm.PRSAlgorithm
	// VectorW is the block size of the result vector's (PACK) or the
	// input vector's (UNPACK) block-cyclic distribution. 0 selects
	// the paper's default block partitioning.
	VectorW int
	// WholeSliceScan selects the second scanning method of Section
	// 6.1 (scan the whole slice instead of stopping once all packed
	// elements of the slice are collected). The paper measured the
	// stop-early method as slightly better; the flag exists for the
	// ablation benchmark.
	WholeSliceScan bool
	// A2A tunes the many-to-many personalized communication.
	A2A comm.A2AOptions
	// SeparatePrefixReduce disables the combined prefix-reduction-sum
	// primitive (ablation; see ranking.Options).
	SeparatePrefixReduce bool
	// Plans enables transparent plan caching: calls fingerprint the
	// (layout, mask, options) configuration, compile a bulk-copy plan
	// on the first sighting, and execute the cached plan on repeats,
	// skipping the ranking stage entirely (see plan.go). The cache may
	// be shared across machines; nil keeps the per-call paths.
	Plans *PlanCache
}

func (o Options) rankingOptions(keepRecords bool) ranking.Options {
	return ranking.Options{
		PRS:                  o.PRS,
		KeepRecords:          keepRecords,
		SeparatePrefixReduce: o.SeparatePrefixReduce,
	}
}

// pair is the (datum value, global rank) message unit of the simple
// storage and compact storage schemes (two machine words).
type pair[T any] struct {
	Datum T
	Rank  int
}

// segMsg is one segment of the compact message scheme: the ranks of
// Data are Base, Base+1, ..., so only the base rank and the implicit
// count travel as header words.
type segMsg[T any] struct {
	Base int
	Data []T
}

func segWords[T any](segs []segMsg[T]) int {
	w := 0
	for _, s := range segs {
		w += 2 + len(s.Data)
	}
	return w
}

// Result is the outcome of Pack on one processor.
type Result[T any] struct {
	// V is this processor's portion of the packed result vector.
	V []T
	// Vec describes the distribution of the result vector.
	Vec dist.VectorDist
	// Ranking is the ranking-stage result (Size, base ranks, ...).
	Ranking *ranking.Result
}

// Pack gathers the selected elements of the distributed array into a
// distributed result vector of exactly Size elements. a and m are the
// calling processor's local portions (local row-major order) of the
// input array and the mask; every processor of the machine must call
// Pack with the same layout and options.
func Pack[T any](p transport.Endpoint, l *dist.Layout, a []T, m []bool, opt Options) (*Result[T], error) {
	return packImpl(p, l, a, m, opt, nil, -1)
}

// PackVector is PACK with the Fortran 90 optional VECTOR argument: the
// result vector has the length of the pad vector (global length nVec,
// local portion pad under the same distribution the result will use),
// its first Size elements are the selected elements, and the remaining
// positions keep the pad vector's values. nVec must be at least the
// number of selected elements.
func PackVector[T any](p transport.Endpoint, l *dist.Layout, a []T, m []bool, pad []T, nVec int, opt Options) (*Result[T], error) {
	if nVec < 0 {
		return nil, fmt.Errorf("pack: negative VECTOR length %d", nVec)
	}
	return packImpl(p, l, a, m, opt, pad, nVec)
}

func packImpl[T any](p transport.Endpoint, l *dist.Layout, a []T, m []bool, opt Options, pad []T, nVec int) (*Result[T], error) {
	if len(a) != l.LocalSize() || len(m) != l.LocalSize() {
		return nil, fmt.Errorf("pack: local array %d / mask %d, layout needs %d", len(a), len(m), l.LocalSize())
	}
	if opt.Plans != nil {
		return packPlanned(p, l, a, m, opt, pad, nVec)
	}
	rnk, err := ranking.Rank(p, l, m, opt.rankingOptions(opt.Scheme == SchemeSSS))
	if err != nil {
		return nil, err
	}
	size := rnk.Size
	if nVec >= 0 {
		if size > nVec {
			return nil, fmt.Errorf("pack: VECTOR too short: %d < Size=%d", nVec, size)
		}
		size = nVec
	}
	vec, err := dist.NewVectorDist(size, p.NProcs(), opt.VectorW)
	if err != nil {
		return nil, err
	}
	res := &Result[T]{Vec: vec, Ranking: rnk, V: make([]T, vec.LocalLen(p.Rank()))}
	if nVec >= 0 {
		if len(pad) != len(res.V) {
			return nil, fmt.Errorf("pack: local VECTOR portion has %d elements, distribution gives %d", len(pad), len(res.V))
		}
		copy(res.V, pad)
		p.Charge(len(pad)) // initialize the result from the pad vector
	}
	world := comm.World(p)

	switch opt.Scheme {
	case SchemeSSS, SchemeCSS:
		send := make([][]pair[T], p.NProcs())
		if opt.Scheme == SchemeSSS {
			composePairsSSS(p, a, rnk, vec, send)
		} else {
			composePairsCSS(p, l, a, m, rnk, vec, send, opt.WholeSliceScan)
		}
		prev := p.SetPhase(PhaseM2M)
		recv := comm.AlltoallVOpt(world, send, 2, opt.A2A)
		p.SetPhase(prev)
		for _, buf := range recv {
			p.Charge(2 * len(buf)) // message decomposition
			for _, pr := range buf {
				_, lo := vec.Owner(pr.Rank)
				res.V[lo] = pr.Datum
			}
		}
	case SchemeCMS:
		send := make([][]segMsg[T], p.NProcs())
		composeSegmentsCMS(p, l, a, m, rnk, vec, send, opt.WholeSliceScan)
		words := make([]int, len(send))
		for i := range send {
			words[i] = segWords(send[i])
		}
		prev := p.SetPhase(PhaseM2M)
		recv := comm.AlltoallVW(world, send, words, opt.A2A)
		p.SetPhase(prev)
		for _, buf := range recv {
			for _, seg := range buf {
				p.Charge(2 + len(seg.Data)) // header + data decomposition
				_, lo := vec.Owner(seg.Base)
				copy(res.V[lo:], seg.Data)
			}
		}
	default:
		return nil, fmt.Errorf("pack: unknown scheme %v", opt.Scheme)
	}
	recordPackOp(p, "pack", len(res.V))
	return res, nil
}

// carvePairArena pre-sizes the per-destination send lists to their
// exact final lengths: one backing arena, subsliced per destination
// with zero length and exact capacity, so the append-based compose
// loops fill without ever reallocating. Destinations with no elements
// stay nil. The sizing walk is host bookkeeping, not part of the
// paper's cost model — nothing here is Charged.
func carvePairArena[T any](send [][]pair[T], counts []int) {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return
	}
	arena := make([]pair[T], total)
	off := 0
	for dst, c := range counts {
		if c == 0 {
			continue
		}
		send[dst] = arena[off : off : off+c]
		off += c
	}
}

// composePairsSSS builds the per-destination (datum, rank) messages
// from the records saved by the simple storage scheme.
func composePairsSSS[T any](p transport.Endpoint, a []T, rnk *ranking.Result, vec dist.VectorDist, send [][]pair[T]) {
	counts := make([]int, len(send))
	for _, rec := range rnk.Records {
		dst, _ := vec.Owner(rnk.RankOf(rec))
		counts[dst]++
	}
	carvePairArena(send, counts)
	for _, rec := range rnk.Records {
		r := rnk.RankOf(rec)
		dst, _ := vec.Owner(r)
		send[dst] = append(send[dst], pair[T]{Datum: a[rec.Off], Rank: r})
	}
	p.Charge(2 * len(rnk.Records)) // write datum and rank per element
}

// sliceGeom captures the dimension-0 slice arithmetic of a layout.
type sliceGeom struct {
	l0, w0, t0, slices int
}

func geomOf(l *dist.Layout) sliceGeom {
	return sliceGeom{l0: l.Dims[0].L(), w0: l.Dims[0].W, t0: l.Dims[0].T(), slices: l.Slices()}
}

func (g sliceGeom) base(slice int) int {
	return ranking.SliceBase(slice, g.l0, g.w0, g.t0)
}

// collectSlice appends the data values of the selected elements of a
// slice, in order, to buf, charging the scan per the chosen policy:
// stop as soon as all count elements are found (the paper's measured
// default) or always scan the whole slice.
func collectSlice[T any](p transport.Endpoint, g sliceGeom, a []T, m []bool, slice, count int, whole bool, buf []T) []T {
	base := g.base(slice)
	found := 0
	scanned := 0
	for i := 0; i < g.w0; i++ {
		scanned++
		if m[base+i] {
			buf = append(buf, a[base+i])
			found++
			if found == count && !whole {
				break
			}
		}
	}
	p.Charge(scanned + count) // element reads + datum writes
	return buf
}

// forEachRankRun walks the rank runs of the compact schemes: for every
// non-empty slice, the consecutive ranks PS_f[slice].. are split at the
// result vector's block boundaries and fn sees one (destination, count)
// piece at a time, in compose order. The walk only reads the ranking
// slice counters, so the compose functions use it as an uncharged
// sizing pre-pass.
func forEachRankRun(rnk *ranking.Result, vec dist.VectorDist, slices int, fn func(dst, cnt int)) {
	for slice := 0; slice < slices; slice++ {
		n := rnk.PSc[slice]
		if n == 0 {
			continue
		}
		r := rnk.PSf[slice]
		taken := 0
		for taken < n {
			dst, _ := vec.Owner(r)
			c := min(vec.BlockRunEnd(r)-r, n-taken)
			fn(dst, c)
			r += c
			taken += c
		}
	}
}

// composePairsCSS regenerates ranks by comparing PS_c with PS_f
// (Section 6.1) and builds (datum, rank) messages with a second slice
// scan; only slices with at least one selected element are scanned.
func composePairsCSS[T any](p transport.Endpoint, l *dist.Layout, a []T, m []bool, rnk *ranking.Result, vec dist.VectorDist, send [][]pair[T], whole bool) {
	g := geomOf(l)
	counts := make([]int, len(send))
	forEachRankRun(rnk, vec, g.slices, func(dst, cnt int) { counts[dst] += cnt })
	carvePairArena(send, counts)
	tmp := make([]T, 0, g.w0)
	p.Charge(g.slices) // check the counter array, one read per slice
	for slice := 0; slice < g.slices; slice++ {
		n := rnk.PSc[slice]
		if n == 0 {
			continue
		}
		tmp = collectSlice(p, g, a, m, slice, n, whole, tmp[:0])
		r0 := rnk.PSf[slice]
		for i, datum := range tmp {
			r := r0 + i
			dst, _ := vec.Owner(r)
			send[dst] = append(send[dst], pair[T]{Datum: datum, Rank: r})
		}
		p.Charge(n) // rank writes (the datum writes were charged above)
	}
}

// composeSegmentsCMS builds the compact message scheme's segment
// messages: the consecutive ranks r0..r0+n-1 of a slice are split at
// the result vector's block boundaries, and each piece travels as
// (base rank, count, data...). The smaller the vector's blocks, the
// more segments (Section 6.2).
func composeSegmentsCMS[T any](p transport.Endpoint, l *dist.Layout, a []T, m []bool, rnk *ranking.Result, vec dist.VectorDist, send [][]segMsg[T], whole bool) {
	g := geomOf(l)
	// Sizing pre-pass (uncharged host bookkeeping): per-destination
	// segment counts carve the segment arena; the data words of all
	// segments share one arena, consumed in compose order.
	segCounts := make([]int, len(send))
	totalData := 0
	forEachRankRun(rnk, vec, g.slices, func(dst, cnt int) {
		segCounts[dst]++
		totalData += cnt
	})
	totalSegs := 0
	for _, c := range segCounts {
		totalSegs += c
	}
	if totalSegs > 0 {
		segArena := make([]segMsg[T], totalSegs)
		off := 0
		for dst, c := range segCounts {
			if c == 0 {
				continue
			}
			send[dst] = segArena[off : off : off+c]
			off += c
		}
	}
	dataArena := make([]T, totalData)
	dOff := 0
	tmp := make([]T, 0, g.w0)
	p.Charge(g.slices) // check the counter array, one read per slice
	for slice := 0; slice < g.slices; slice++ {
		n := rnk.PSc[slice]
		if n == 0 {
			continue
		}
		tmp = collectSlice(p, g, a, m, slice, n, whole, tmp[:0])
		r := rnk.PSf[slice]
		taken := 0
		for taken < n {
			dst, _ := vec.Owner(r)
			fit := vec.BlockRunEnd(r) - r
			cnt := min(fit, n-taken)
			data := dataArena[dOff : dOff+cnt : dOff+cnt]
			dOff += cnt
			copy(data, tmp[taken:taken+cnt])
			send[dst] = append(send[dst], segMsg[T]{Base: r, Data: data})
			p.Charge(2) // segment header (base rank + count)
			r += cnt
			taken += cnt
		}
	}
}
