package pack

import "sync"

// PlanCache stores compiled plans keyed by (local fingerprint, rank);
// each plan additionally records the global fingerprint it was
// compiled under, which is what the collective agreement of planLookup
// verifies. One cache may be shared by every processor of a machine —
// and by several machines at once: the map is mutex-guarded on the
// host side (host bookkeeping, not part of the cost model), and the
// transparent lookup path never acts on a partial rank set (the
// unanimity sum fails unless every rank's stored plan matches the
// current global fingerprint). Entries are never evicted; a changed
// mask changes the fingerprint and simply compiles a new entry.
type PlanCache struct {
	mu     sync.Mutex
	plans  map[planKey]*Plan
	hits   int
	misses int
}

type planKey struct {
	fp   uint64
	rank int
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[planKey]*Plan)}
}

// PlanCacheStats is a snapshot of the cache's hit/miss counters. A hit
// or miss is counted per processor per transparent call (the explicit
// CompilePlan/PlanPack path never touches a cache).
type PlanCacheStats struct {
	Hits   int
	Misses int
	Plans  int
}

// HitRate returns Hits / (Hits + Misses), or 0 with no lookups.
func (s PlanCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Plans: len(c.plans)}
}

func (c *PlanCache) get(fp uint64, rank int) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plans[planKey{fp, rank}]
}

func (c *PlanCache) put(fp uint64, rank int, pl *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans[planKey{fp, rank}] = pl
}

func (c *PlanCache) noteHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *PlanCache) noteMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}
