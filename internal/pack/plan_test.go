package pack

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

// planLayouts is the subset of the correctness layouts the plan tests
// sweep (every shape class: cyclic, block-cyclic, block, non-power-of-
// two, multi-dimensional).
func planLayouts() map[string]*dist.Layout {
	return map[string]*dist.Layout{
		"1d-cyclic": dist.MustLayout(dist.Dim{N: 16, P: 4, W: 1}),
		"1d-block":  dist.MustLayout(dist.Dim{N: 16, P: 4, W: 4}),
		"1d-np2":    dist.MustLayout(dist.Dim{N: 30, P: 3, W: 5}),
		"2d-mixed":  dist.MustLayout(dist.Dim{N: 12, P: 2, W: 3}, dist.Dim{N: 6, P: 3, W: 1}),
		"3d":        dist.MustLayout(dist.Dim{N: 4, P: 2, W: 1}, dist.Dim{N: 4, P: 2, W: 2}, dist.Dim{N: 4, P: 1, W: 4}),
	}
}

// planExec runs PACK and UNPACK on every processor through the given
// body variant and returns the gathered vector/array results, so the
// planned variants can be compared byte-for-byte with the unplanned
// one.
type planOutputs struct {
	packV   [][]int // per-rank result vector portions
	unpackA []int   // gathered result array
	size    int
}

func planExecCase(t *testing.T, l *dist.Layout, gen mask.Gen, opt Options, sched sim.Sched,
	body func(p *sim.Proc, a []int, m []bool, v []int, nPrime int, field []int) (*Result[int], *UnpackResult[int])) planOutputs {
	t.Helper()
	n := l.GlobalSize()
	global := make([]int, n)
	fGlobal := make([]int, n)
	for i := range global {
		global[i] = i*10 + 1
		fGlobal[i] = -1 - i
	}
	gmask := mask.FillGlobal(l, gen)
	size := seq.Count(gmask)
	vGlobal := make([]int, size)
	for i := range vGlobal {
		vGlobal[i] = 1000 + i
	}
	vdist, err := dist.NewVectorDist(size, l.Procs(), opt.VectorW)
	if err != nil {
		t.Fatal(err)
	}
	locals := dist.Scatter(l, global)
	fLocals := dist.Scatter(l, fGlobal)

	m := sim.MustNew(sim.Config{Procs: l.Procs(), Sched: sched})
	out := planOutputs{packV: make([][]int, l.Procs()), size: size}
	aLocals := make([][]int, l.Procs())
	err = m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		vLocal := make([]int, vdist.LocalLen(p.Rank()))
		for i := range vLocal {
			vLocal[i] = vGlobal[vdist.ToGlobal(p.Rank(), i)]
		}
		pr, ur := body(p, locals[p.Rank()], lm, vLocal, size, fLocals[p.Rank()])
		out.packV[p.Rank()] = pr.V
		aLocals[p.Rank()] = ur.A
	})
	if err != nil {
		t.Fatalf("machine run failed: %v", err)
	}
	out.unpackA = dist.Gather(l, aLocals)
	return out
}

// TestPlanMatchesUnplanned sweeps layouts, masks, schemes, vector block
// sizes and both schedulers, executing each configuration three ways —
// unplanned, explicit CompilePlan+PlanPack/PlanUnpack, and the
// transparent cache path called twice (cold compile, then cache hit) —
// and requires byte-identical vector and array results.
func TestPlanMatchesUnplanned(t *testing.T) {
	for lname, l := range planLayouts() {
		shape := make([]int, l.Rank())
		for i, d := range l.Dims {
			shape[i] = d.N
		}
		gens := map[string]mask.Gen{
			"empty": mask.Empty{},
			"full":  mask.Full{},
			"d50":   mask.NewRandom(0.50, 2, shape...),
		}
		for mname, gen := range gens {
			for _, scheme := range []Scheme{SchemeSSS, SchemeCSS, SchemeCMS} {
				for _, vw := range []int{0, 3} {
					for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
						opt := Options{Scheme: scheme, VectorW: vw}
						uopt := opt
						if scheme == SchemeCMS {
							uopt.Scheme = SchemeCSS // CMS is PACK-only
						}
						name := fmt.Sprintf("%s/%s/%s/w%d/sched%d", lname, mname, scheme, vw, sched)
						t.Run(name, func(t *testing.T) {
							base := planExecCase(t, l, gen, opt, sched, func(p *sim.Proc, a []int, m []bool, v []int, nPrime int, field []int) (*Result[int], *UnpackResult[int]) {
								pr, err := Pack(p, l, a, m, opt)
								if err != nil {
									panic(err)
								}
								ur, err := Unpack(p, l, v, nPrime, m, field, uopt)
								if err != nil {
									panic(err)
								}
								return pr, ur
							})

							explicit := planExecCase(t, l, gen, opt, sched, func(p *sim.Proc, a []int, m []bool, v []int, nPrime int, field []int) (*Result[int], *UnpackResult[int]) {
								pl, err := CompilePlan(p, l, m, opt)
								if err != nil {
									panic(err)
								}
								pr, err := PlanPack(p, pl, a)
								if err != nil {
									panic(err)
								}
								upl, err := CompilePlan(p, l, m, uopt)
								if err != nil {
									panic(err)
								}
								ur, err := PlanUnpack(p, upl, v, field)
								if err != nil {
									panic(err)
								}
								return pr, ur
							})

							cache := NewPlanCache()
							copt, cuopt := opt, uopt
							copt.Plans, cuopt.Plans = cache, cache
							var warm planOutputs
							for call := 0; call < 2; call++ {
								warm = planExecCase(t, l, gen, opt, sched, func(p *sim.Proc, a []int, m []bool, v []int, nPrime int, field []int) (*Result[int], *UnpackResult[int]) {
									pr, err := Pack(p, l, a, m, copt)
									if err != nil {
										panic(err)
									}
									ur, err := Unpack(p, l, v, nPrime, m, field, cuopt)
									if err != nil {
										panic(err)
									}
									return pr, ur
								})
							}
							st := cache.Stats()
							if st.Hits == 0 || st.Misses == 0 {
								t.Fatalf("cache saw hits=%d misses=%d; want both cold misses and warm hits", st.Hits, st.Misses)
							}

							for rank := range base.packV {
								if !reflect.DeepEqual(explicit.packV[rank], base.packV[rank]) {
									t.Fatalf("rank %d: explicit plan V %v, unplanned %v", rank, explicit.packV[rank], base.packV[rank])
								}
								if !reflect.DeepEqual(warm.packV[rank], base.packV[rank]) {
									t.Fatalf("rank %d: cached plan V %v, unplanned %v", rank, warm.packV[rank], base.packV[rank])
								}
							}
							if !reflect.DeepEqual(explicit.unpackA, base.unpackA) {
								t.Fatalf("explicit plan A %v, unplanned %v", explicit.unpackA, base.unpackA)
							}
							if !reflect.DeepEqual(warm.unpackA, base.unpackA) {
								t.Fatalf("cached plan A %v, unplanned %v", warm.unpackA, base.unpackA)
							}
						})
					}
				}
			}
		}
	}
}

// TestPlanCacheCounters pins the exact hit/miss accounting of the
// transparent path: the first machine run compiles one PACK and one
// UNPACK plan per rank, every later run hits both.
func TestPlanCacheCounters(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 64, P: 4, W: 4})
	gen := mask.NewRandom(0.4, 7, 64)
	cache := NewPlanCache()
	opt := Options{Scheme: SchemeCSS, Plans: cache}
	const calls = 5
	for call := 0; call < calls; call++ {
		planExecCase(t, l, gen, Options{Scheme: SchemeCSS}, sim.SchedCooperative, func(p *sim.Proc, a []int, m []bool, v []int, nPrime int, field []int) (*Result[int], *UnpackResult[int]) {
			pr, err := Pack(p, l, a, m, opt)
			if err != nil {
				panic(err)
			}
			ur, err := Unpack(p, l, v, nPrime, m, field, opt)
			if err != nil {
				panic(err)
			}
			return pr, ur
		})
	}
	st := cache.Stats()
	wantMiss := 2 * l.Procs() // pack + unpack plan per rank, first run only
	wantHit := 2 * l.Procs() * (calls - 1)
	if st.Misses != wantMiss || st.Hits != wantHit || st.Plans != wantMiss {
		t.Fatalf("stats = %+v; want Misses=%d Hits=%d Plans=%d", st, wantMiss, wantHit, wantMiss)
	}
	if got, want := st.HitRate(), float64(wantHit)/float64(wantHit+wantMiss); got != want {
		t.Fatalf("HitRate() = %v, want %v", got, want)
	}
}

// TestPlanCacheRaceSharedAcrossMachines hammers one cache from several
// concurrently running goroutine-scheduled machines (run under
// -race in CI): the unanimity vote must keep every machine consistent
// even while another machine's compiled plans land in the shared map
// mid-lookup, and every machine must still produce the oracle result.
func TestPlanCacheRaceSharedAcrossMachines(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 96, P: 4, W: 8})
	gen := mask.NewRandom(0.5, 11, 96)
	gmask := mask.FillGlobal(l, gen)
	global := make([]int, 96)
	for i := range global {
		global[i] = i * 3
	}
	want := seq.Pack(global, gmask)
	locals := dist.Scatter(l, global)

	cache := NewPlanCache()
	opt := Options{Scheme: SchemeCMS, Plans: cache}
	const machines = 6
	var wg sync.WaitGroup
	errs := make([]error, machines)
	for mi := 0; mi < machines; mi++ {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			m := sim.MustNew(sim.Config{Procs: l.Procs(), Sched: sim.SchedGoroutine})
			results := make([]*Result[int], l.Procs())
			err := m.Run(func(p *sim.Proc) {
				lm := mask.FillLocal(l, p.Rank(), gen)
				res, err := Pack(p, l, locals[p.Rank()], lm, opt)
				if err != nil {
					panic(err)
				}
				results[p.Rank()] = res
			})
			if err != nil {
				errs[mi] = err
				return
			}
			got := make([]int, len(want))
			for rank, r := range results {
				for i, v := range r.V {
					got[r.Vec.ToGlobal(rank, i)] = v
				}
			}
			if !reflect.DeepEqual(got, want) {
				errs[mi] = fmt.Errorf("machine %d: got %v, want %v", mi, got, want)
			}
		}(mi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Hits+st.Misses != machines*l.Procs() {
		t.Fatalf("stats %+v: want %d lookups total", st, machines*l.Procs())
	}
}

// TestPlanRetainsNoRecords guards the compile path's memory behavior:
// plans always rank in counter-only form and stream records, so the
// retained ranking result must carry no materialized Records — even
// when the options name the simple storage scheme.
func TestPlanRetainsNoRecords(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 64, P: 4, W: 4})
	gen := mask.NewRandom(0.6, 5, 64)
	m := sim.MustNew(sim.Config{Procs: l.Procs()})
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		pl, err := CompilePlan(p, l, lm, Options{Scheme: SchemeSSS})
		if err != nil {
			panic(err)
		}
		if pl.Ranking().Records != nil {
			panic(fmt.Sprintf("rank %d: plan retains %d records", p.Rank(), len(pl.Ranking().Records)))
		}
		if pl.Size() == 0 || pl.RunCount() == 0 {
			panic(fmt.Sprintf("rank %d: degenerate plan size=%d runs=%d", p.Rank(), pl.Size(), pl.RunCount()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlanVectorTransparent checks the transparent path under the
// Fortran 90 VECTOR argument: pad values must survive beyond the
// packed elements on both the cold and the warm call.
func TestPlanVectorTransparent(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 32, P: 4, W: 2})
	gen := mask.NewRandom(0.3, 9, 32)
	gmask := mask.FillGlobal(l, gen)
	global := make([]int, 32)
	for i := range global {
		global[i] = 100 + i
	}
	size := seq.Count(gmask)
	nVec := size + 6
	padGlobal := make([]int, nVec)
	for i := range padGlobal {
		padGlobal[i] = -9000 - i
	}
	want := seq.PackVector(global, gmask, padGlobal)
	locals := dist.Scatter(l, global)
	vdist, err := dist.NewVectorDist(nVec, l.Procs(), 0)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewPlanCache()
	opt := Options{Scheme: SchemeCMS, Plans: cache}
	for call := 0; call < 2; call++ {
		m := sim.MustNew(sim.Config{Procs: l.Procs()})
		results := make([]*Result[int], l.Procs())
		err := m.Run(func(p *sim.Proc) {
			lm := mask.FillLocal(l, p.Rank(), gen)
			pad := make([]int, vdist.LocalLen(p.Rank()))
			for i := range pad {
				pad[i] = padGlobal[vdist.ToGlobal(p.Rank(), i)]
			}
			res, err := PackVector(p, l, locals[p.Rank()], lm, pad, nVec, opt)
			if err != nil {
				panic(err)
			}
			results[p.Rank()] = res
		})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, nVec)
		for rank, r := range results {
			for i, v := range r.V {
				got[r.Vec.ToGlobal(rank, i)] = v
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("call %d: got %v, want %v", call, got, want)
		}
	}
	if st := cache.Stats(); st.Misses != l.Procs() || st.Hits != l.Procs() {
		t.Fatalf("stats %+v: want %d misses then %d hits", st, l.Procs(), l.Procs())
	}
}

// TestPlanErrors pins the error behavior of the plan APIs.
func TestPlanErrors(t *testing.T) {
	l := dist.MustLayout(dist.Dim{N: 16, P: 2, W: 4})
	gen := mask.NewRandom(0.5, 3, 16)
	m := sim.MustNew(sim.Config{Procs: l.Procs()})
	err := m.Run(func(p *sim.Proc) {
		lm := mask.FillLocal(l, p.Rank(), gen)
		a := make([]int, l.LocalSize())

		if _, err := CompilePlan(p, l, lm[:1], Options{}); err == nil {
			panic("short mask accepted")
		}
		if _, err := CompilePlan(p, l, lm, Options{Scheme: Scheme(42)}); err == nil {
			panic("unknown scheme accepted")
		}

		pl, err := CompilePlan(p, l, lm, Options{Scheme: SchemeCMS})
		if err != nil {
			panic(err)
		}
		if _, err := PlanPack(p, pl, a[:1]); err == nil {
			panic("short array accepted")
		}
		if _, err := PlanUnpack(p, pl, make([]int, pl.Vec().LocalLen(p.Rank())), a); err == nil {
			panic("CMS plan accepted for UNPACK")
		}

		upl, err := CompilePlan(p, l, lm, Options{Scheme: SchemeCSS})
		if err != nil {
			panic(err)
		}
		if _, err := PlanUnpack(p, upl, make([]int, 99), a); err == nil {
			panic("mis-sized vector accepted")
		}
		if _, err := PlanUnpack(p, upl, make([]int, upl.Vec().LocalLen(p.Rank())), a[:1]); err == nil {
			panic("short field accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMaskFingerprintDistinguishes spot-checks the fingerprint: masks
// differing in one element, in trailing length, or only in layout /
// scheme / vector block size must key different plans.
func TestMaskFingerprintDistinguishes(t *testing.T) {
	m1 := make([]bool, 130)
	m2 := make([]bool, 130)
	m1[129] = true
	if maskFingerprint(m1) == maskFingerprint(m2) {
		t.Fatal("single-bit difference not reflected")
	}
	if maskFingerprint(m1[:64]) == maskFingerprint(m1[:65]) {
		t.Fatal("length difference not reflected")
	}
	l := dist.MustLayout(dist.Dim{N: 16, P: 2, W: 4})
	l2 := dist.MustLayout(dist.Dim{N: 16, P: 2, W: 2})
	lm := make([]bool, l.LocalSize())
	if planFingerprint(l, lm, Options{}, -1) == planFingerprint(l2, lm, Options{}, -1) {
		t.Fatal("layout difference not reflected")
	}
	if planFingerprint(l, lm, Options{Scheme: SchemeCSS}, -1) == planFingerprint(l, lm, Options{Scheme: SchemeCMS}, -1) {
		t.Fatal("scheme difference not reflected")
	}
	if planFingerprint(l, lm, Options{VectorW: 1}, -1) == planFingerprint(l, lm, Options{VectorW: 2}, -1) {
		t.Fatal("vector block difference not reflected")
	}
	if planFingerprint(l, lm, Options{}, -1) == planFingerprint(l, lm, Options{}, 8) {
		t.Fatal("vector length difference not reflected")
	}
}
