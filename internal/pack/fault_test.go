package pack

import (
	"fmt"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

// runGeneralOracle drives PackGeneral and UnpackGeneral end to end on a
// machine with the given scheduler and fault plan and compares both
// results against the sequential reference. Element values are a fixed
// function of the global position, so a faulted run must reproduce them
// exactly.
func runGeneralOracle(t *testing.T, dims []dist.Dim, maskAt func(int) bool, opt Options, sched sim.Sched, faults *sim.FaultConfig) {
	t.Helper()
	gl := dist.MustGeneralLayout(dims...)
	n := gl.GlobalSize()
	global := make([]int, n)
	gmask := make([]bool, n)
	for i := range global {
		global[i] = 11*i + 5
		gmask[i] = maskAt(i)
	}
	want := seq.Pack(global, gmask)
	uvec := make([]int, len(want))
	for i := range uvec {
		uvec[i] = 900_000 + 7*i
	}
	wantUnpack := seq.Unpack(uvec, gmask, global)

	locals := dist.ScatterGeneral(gl, global)
	maskLocals := dist.ScatterGeneral(gl, gmask)
	nprocs := gl.Procs()
	vdist, err := dist.NewVectorDist(len(want), nprocs, opt.VectorW)
	if err != nil {
		t.Fatal(err)
	}
	uopt := opt
	if uopt.Scheme == SchemeCMS {
		uopt.Scheme = SchemeCSS
	}

	m := sim.MustNew(sim.Config{Procs: nprocs, Params: sim.CM5Params(), Sched: sched, Faults: faults})
	packRes := make([]*Result[int], nprocs)
	unpackOut := make([][]int, nprocs)
	if err := m.Run(func(p *sim.Proc) {
		res, err := PackGeneral(p, gl, locals[p.Rank()], maskLocals[p.Rank()], opt)
		if err != nil {
			panic(err)
		}
		packRes[p.Rank()] = res
		lv := make([]int, vdist.LocalLen(p.Rank()))
		for i := range lv {
			lv[i] = uvec[vdist.ToGlobal(p.Rank(), i)]
		}
		ur, err := UnpackGeneral(p, gl, lv, len(want), maskLocals[p.Rank()], locals[p.Rank()], uopt)
		if err != nil {
			panic(err)
		}
		unpackOut[p.Rank()] = ur.A
	}); err != nil {
		t.Fatalf("dims %v sched %v faults %v: %v", dims, sched, faults, err)
	}

	got := make([]int, len(want))
	for rank, res := range packRes {
		if res.Ranking.Size != len(want) {
			t.Fatalf("dims %v: rank %d counted %d selected, reference %d", dims, rank, res.Ranking.Size, len(want))
		}
		for i, v := range res.V {
			got[res.Vec.ToGlobal(rank, i)] = v
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dims %v sched %v faults %v: pack[%d] = %d, want %d", dims, sched, faults, i, got[i], want[i])
		}
	}
	gotUnpack := dist.GatherGeneral(gl, unpackOut)
	for i := range wantUnpack {
		if gotUnpack[i] != wantUnpack[i] {
			t.Fatalf("dims %v sched %v faults %v: unpack[%d] = %d, want %d", dims, sched, faults, i, gotUnpack[i], wantUnpack[i])
		}
	}
}

var faultSchedules = []*sim.FaultConfig{
	nil,
	{Seed: 21, Drop: 0.1, Dup: 0.1, Reorder: 0.1, Delay: 0.1, Stall: 0.03},
	{Seed: 22, Drop: 0.3},
	{Seed: 23, Dup: 0.2, Reorder: 0.3},
}

// TestPackSchemesUnderFaults: every scheme on both schedulers under
// several fault schedules remains byte-identical to the sequential
// reference.
func TestPackSchemesUnderFaults(t *testing.T) {
	dims := []dist.Dim{{N: 10, P: 2, W: 3}, {N: 7, P: 3, W: 2}}
	maskAt := func(i int) bool { return i%3 != 1 }
	for _, scheme := range []Scheme{SchemeSSS, SchemeCSS, SchemeCMS} {
		for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
			for fi, f := range faultSchedules {
				t.Run(fmt.Sprintf("%v/%v/f%d", scheme, sched, fi), func(t *testing.T) {
					runGeneralOracle(t, dims, maskAt, Options{Scheme: scheme}, sched, f)
				})
			}
		}
	}
}

// TestPackEdgeCasesUnderDrops: degenerate shapes — block size larger
// than the extent, more processors than elements, zero-extent
// dimensions — and extreme masks, all under injected drops and
// duplicates.
func TestPackEdgeCasesUnderDrops(t *testing.T) {
	drops := &sim.FaultConfig{Seed: 33, Drop: 0.25, Dup: 0.1}
	cases := []struct {
		name   string
		dims   []dist.Dim
		maskAt func(int) bool
	}{
		{"block-exceeds-extent", []dist.Dim{{N: 3, P: 2, W: 5}}, func(i int) bool { return i%2 == 0 }},
		{"procs-exceed-elements", []dist.Dim{{N: 2, P: 4, W: 1}}, func(int) bool { return true }},
		{"all-true", []dist.Dim{{N: 12, P: 3, W: 2}}, func(int) bool { return true }},
		{"all-false", []dist.Dim{{N: 12, P: 3, W: 2}}, func(int) bool { return false }},
		{"zero-extent", []dist.Dim{{N: 0, P: 2, W: 2}, {N: 5, P: 2, W: 1}}, func(int) bool { return true }},
	}
	for _, tc := range cases {
		for _, scheme := range []Scheme{SchemeSSS, SchemeCMS} {
			for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
				t.Run(fmt.Sprintf("%s/%v/%v", tc.name, scheme, sched), func(t *testing.T) {
					runGeneralOracle(t, tc.dims, tc.maskAt, Options{Scheme: scheme}, sched, drops)
				})
			}
		}
	}
}

// TestPackFaultReportPhases: a faulted Pack surfaces its injection
// activity in the machine's FaultReport, attributed to named phases.
func TestPackFaultReportPhases(t *testing.T) {
	gl := dist.MustGeneralLayout(dist.Dim{N: 24, P: 4, W: 2})
	global := make([]int, 24)
	gmask := make([]bool, 24)
	for i := range global {
		global[i] = i
		gmask[i] = i%2 == 0
	}
	locals := dist.ScatterGeneral(gl, global)
	maskLocals := dist.ScatterGeneral(gl, gmask)
	m := sim.MustNew(sim.Config{Procs: 4, Params: sim.CM5Params(), Sched: sim.SchedCooperative,
		Faults: &sim.FaultConfig{Seed: 44, Drop: 0.2, Dup: 0.2}})
	if err := m.Run(func(p *sim.Proc) {
		if _, err := PackGeneral(p, gl, locals[p.Rank()], maskLocals[p.Rank()], Options{Scheme: SchemeCMS}); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := m.FaultReport()
	if rep == nil || rep.Total.Injected() == 0 {
		t.Fatal("faulted pack run injected nothing")
	}
	if len(rep.PerPhase) == 0 {
		t.Fatal("no per-phase fault attribution")
	}
	var sum sim.FaultCounters
	for _, c := range rep.PerPhase {
		sum.Attempts += c.Attempts
		sum.Drops += c.Drops
	}
	if sum.Attempts != rep.Total.Attempts || sum.Drops != rep.Total.Drops {
		t.Errorf("per-phase counters %+v do not sum to total %+v", sum, rep.Total)
	}
}
