package pack

import (
	"fmt"

	"packunpack/internal/dist"
	"packunpack/internal/transport"
)

// Merge computes the Fortran 90 MERGE intrinsic over a distributed
// array: out[i] = tsource[i] where the mask is true, fsource[i]
// otherwise. MERGE is the purely local member of the masked-array
// family — with aligned operands it needs no communication at all,
// which makes it a useful contrast to PACK/UNPACK in the cost model
// (one pass over the local arrays, zero messages).
func Merge[T any](p transport.Endpoint, l *dist.Layout, tsource, fsource []T, m []bool) ([]T, error) {
	if len(tsource) != l.LocalSize() || len(fsource) != l.LocalSize() || len(m) != l.LocalSize() {
		return nil, fmt.Errorf("pack: Merge operands %d/%d/%d, layout needs %d",
			len(tsource), len(fsource), len(m), l.LocalSize())
	}
	out := make([]T, len(m))
	for i, sel := range m {
		if sel {
			out[i] = tsource[i]
		} else {
			out[i] = fsource[i]
		}
	}
	p.Charge(len(m))
	return out, nil
}
