package pack

// Telemetry hooks for the PACK/UNPACK layer (internal/metrics, PR 8).
// Families recorded here, all no-ops when the endpoint carries no
// registry:
//
//	pack_calls_total{op}        completed operations, op = pack | unpack
//	pack_bytes_total{op}        local result footprint per call, bytes:
//	                            the rank's result-vector share for PACK,
//	                            its result-array size for UNPACK (so the
//	                            machine-wide totals are the global
//	                            result sizes x 8 per call)
//	pack_plan_hits_total        transparent plan-cache lookups served
//	pack_plan_misses_total      ... and those that forced a compile
//	pack_plan_compile_us        wall-clock microseconds per plan compile
//
// Wall time here is host time on both backends (see
// internal/comm/instrument.go for the same convention and rationale);
// the paper's modelled costs stay in Stats/Spans and are never mixed
// into these families.

import (
	"time"

	"packunpack/internal/transport"
)

// recordPackOp counts one completed operation. Called only on success
// paths — failed validation never reaches the counters.
func recordPackOp(p transport.Endpoint, op string, localWords int) {
	reg := p.Metrics()
	if reg == nil {
		return
	}
	reg.Counter("pack_calls_total", "completed PACK/UNPACK operations", "op").With(op).Inc()
	reg.Counter("pack_bytes_total", "local result bytes per completed operation", "op").With(op).Add(int64(localWords) * 8)
}

// recordPlanLookup counts one collective plan-cache decision. Every
// rank of the machine records the same outcome (the decision is
// collective by construction), so per-machine rates divide by NProcs.
func recordPlanLookup(p transport.Endpoint, hit bool) {
	reg := p.Metrics()
	if reg == nil {
		return
	}
	if hit {
		reg.Counter("pack_plan_hits_total", "transparent plan-cache hits").With().Inc()
	} else {
		reg.Counter("pack_plan_misses_total", "transparent plan-cache misses (compiles forced)").With().Inc()
	}
}

// planCompileTimer starts the compile-time observation; nil when
// telemetry is off (callers guard the defer on that).
func planCompileTimer(p transport.Endpoint) func() {
	reg := p.Metrics()
	if reg == nil {
		return nil
	}
	h := reg.Histogram("pack_plan_compile_us", "wall-clock microseconds per plan compile").With()
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Microseconds()) }
}
