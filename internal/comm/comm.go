// Package comm provides the communication primitives the paper's
// algorithms are built from, layered over the pluggable transport
// (internal/transport — the sim machine emulator or the real
// shared-memory backend):
//
//   - process groups (sub-communicators along one dimension of the
//     logical processor grid),
//   - barrier, broadcast and gather utilities,
//   - the vector prefix-reduction-sum primitive of Section 5.1 in both
//     a direct and a split variant plus the paper's selection rule,
//   - many-to-many personalized communication (all-to-all-v) with the
//     linear permutation scheduling of reference [9].
//
// All collectives must be called by every member of the group, in the
// same program order, exactly as in an SPMD message-passing program.
package comm

import (
	"fmt"

	"packunpack/internal/transport"
)

// Tag bases for the collectives. Successive calls to the same
// collective by the same group are kept apart by the FIFO ordering of
// (source, tag) message streams; different collectives use disjoint tag
// ranges so they can never cross-match.
const (
	tagBarrier = 1 << 20
	tagBcast   = 2 << 20
	tagScan    = 3 << 20
	tagSplit1  = 4 << 20
	tagSplit2  = 5 << 20
	tagA2A     = 6 << 20
	tagGather  = 7 << 20
)

// Group is an ordered set of processors that communicate collectively,
// bound to the calling processor. Index i of the group is the group
// rank; prefix operations accumulate in group-rank order.
type Group struct {
	p     transport.Endpoint
	ranks []int
	me    int // my index within ranks
}

// NewGroup builds the group view for processor p. ranks lists the
// global ranks of the members in group order and must contain
// p.Rank() exactly once.
func NewGroup(p transport.Endpoint, ranks []int) (Group, error) {
	me := -1
	for i, r := range ranks {
		if r == p.Rank() {
			if me != -1 {
				return Group{}, fmt.Errorf("comm: rank %d listed twice in group", r)
			}
			me = i
		}
	}
	if me == -1 {
		return Group{}, fmt.Errorf("comm: rank %d not a member of group %v", p.Rank(), ranks)
	}
	cp := make([]int, len(ranks))
	copy(cp, ranks)
	return Group{p: p, ranks: cp, me: me}, nil
}

// World returns the group of all processors in machine order.
func World(p transport.Endpoint) Group {
	ranks := make([]int, p.NProcs())
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(p, ranks)
	if err != nil {
		panic(err) // unreachable: p.Rank() is always in [0, NProcs)
	}
	return g
}

// Size returns the number of group members.
func (g Group) Size() int { return len(g.ranks) }

// Index returns the caller's group rank.
func (g Group) Index() int { return g.me }

// Ranks returns the global ranks of the members in group order.
func (g Group) Ranks() []int { return g.ranks }

// Proc returns the bound processor endpoint.
func (g Group) Proc() transport.Endpoint { return g.p }

// ceilLog2 returns ceil(log2(n)) for n >= 1.
func ceilLog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// Barrier synchronizes the group with the dissemination algorithm:
// ceil(log2 P) rounds of zero-length token exchanges. As a side effect
// it pulls every member's virtual clock up to (at least) the time the
// slowest member entered, which is how the emulator separates the
// timed stages of an algorithm.
func (g Group) Barrier() {
	if done := commObserve(g.p, "barrier"); done != nil {
		defer done()
	}
	n := len(g.ranks)
	for k, d := 0, 1; d < n; k, d = k+1, d*2 {
		// d < n is a loop invariant, so no %n reduction of d is needed
		// before the subtraction; the former (g.me-d%n+n)%n expression
		// only computed the intended source because of that invariant
		// (% binds tighter than -), not by design.
		dst := g.ranks[(g.me+d)%n]
		src := g.ranks[(g.me-d+n)%n]
		g.send(dst, tagBarrier+k, nil, 0)
		g.recv(src, tagBarrier+k)
	}
}

// Bcast broadcasts vec (in place) from the member with group rank root
// to every member, using a binomial tree. Non-root members receive
// into a freshly allocated slice returned to all callers for symmetry.
func (g Group) Bcast(root int, vec []int) []int {
	if done := commObserve(g.p, "bcast"); done != nil {
		defer done()
	}
	n := len(g.ranks)
	if root < 0 || root >= n {
		panic(fmt.Sprintf("comm: Bcast root %d out of range [0,%d)", root, n))
	}
	rel := (g.me - root + n) % n
	// Receive once from the parent (unless root), then forward down
	// the binomial tree.
	mask := 1
	if rel != 0 {
		// Find the lowest set bit of rel: the round we receive in.
		for rel&mask == 0 {
			mask <<= 1
		}
		parent := g.ranks[((rel-mask)+root)%n]
		payload, _ := g.recv(parent, tagBcast)
		if payload != nil {
			vec = payload.([]int)
		} else {
			vec = nil
		}
	} else {
		mask = 1 << ceilLog2(n)
	}
	// Forward to children: rel+m for each m below my receive mask.
	// Each child gets a private copy so that receivers are free to
	// mutate the broadcast result (the ranking algorithm does). The
	// clone preserves nil-ness: a nil vec at the root must come back
	// nil at every member, not as a freshly allocated empty slice
	// ("returned to all callers for symmetry").
	for m := mask >> 1; m >= 1; m >>= 1 {
		childRel := rel + m
		if childRel < n {
			child := g.ranks[(childRel+root)%n]
			g.send(child, tagBcast, cloneIntsSameNil(vec), len(vec))
		}
	}
	return vec
}

// cloneInts copies a slice; collectives never hand a caller's buffer to
// the network, because the receiving goroutine would otherwise share
// memory with the sender.
func cloneInts(v []int) []int {
	out := make([]int, len(v))
	copy(out, v)
	return out
}

// cloneIntsSameNil is cloneInts except that a nil input clones to nil
// (cloneInts allocates a non-nil empty slice, which broke Bcast's
// symmetry contract for nil vectors).
func cloneIntsSameNil(v []int) []int {
	if v == nil {
		return nil
	}
	return cloneInts(v)
}

// GatherV collects each member's variable-length contribution at the
// member with group rank root, which receives them in group order.
// Non-root members return nil. Intended for result assembly and test
// harnesses rather than for the timed algorithm path.
func GatherV[T any](g Group, root int, contrib []T, wordsPerElem int) [][]T {
	if done := commObserve(g.p, "gatherv"); done != nil {
		defer done()
	}
	n := len(g.ranks)
	if g.me != root {
		g.send(g.ranks[root], tagGather, contrib, len(contrib)*wordsPerElem)
		return nil
	}
	out := make([][]T, n)
	for i := 0; i < n; i++ {
		if i == root {
			// Remote rows are owned by the result (ownership of a sent
			// buffer passes to the receiver), but the root's own row must
			// be cloned: handing the caller's live contrib to the result
			// would let later mutations of that buffer corrupt the
			// gathered row, violating the no-aliasing policy of the
			// collectives.
			if contrib != nil {
				out[i] = append(make([]T, 0, len(contrib)), contrib...)
			}
			continue
		}
		payload, _ := g.recv(g.ranks[i], tagGather)
		if payload != nil {
			out[i] = payload.([]T)
		}
	}
	return out
}
