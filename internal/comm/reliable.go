package comm

// This file is the reliable-delivery transport every collective in
// this package rides on. With fault injection off (the default,
// Endpoint.Faults() == nil — always the case on the real backend) the
// wrappers are exact pass-throughs to Endpoint.Send/Recv — not one
// extra word, charge, or allocation — so the perf-gate contract
// (virtual metrics bit-for-bit against the committed baseline) is
// untouched. With fault injection on, every logical message becomes a
// sequence-numbered envelope sent through the fault-injectable
// Endpoint.TrySend and recovered on both sides:
//
//   - Sender: a dropped attempt costs the retransmission timeout
//     (Endpoint.RetryWait models the acknowledgement that never came)
//     and is re-sent, up to the plan's MaxRetries budget; past the
//     budget the run aborts with a sim.FaultBudgetError while the
//     machine's FaultReport keeps the full injection/recovery tally.
//   - Receiver: envelopes are consumed strictly in sequence order per
//     (peer, tag) stream. A duplicate (sequence already consumed) is
//     discarded idempotently; an overtaking envelope (sequence from
//     the future, the result of a reorder or a retry racing a delayed
//     original) is stashed until the gap before it fills.
//
// Together these give exactly-once, in-order delivery per stream over
// a network that drops, duplicates, reorders, and delays — which is
// why every collective (barrier, broadcast, gather, prefix-reduction-
// sum, all-to-all) completes with byte-identical results under any
// fault schedule. Determinism is inherited from the fault layer: all
// decisions hash from (seed, rank, attempt counter), so both
// scheduler modes replay identical faults and identical recoveries.
//
// The SkipEmpty probe channel (SendFree) stays outside the protocol:
// it is documented as zero-cost out-of-band knowledge, i.e. modelled
// as infallible, and the fault layer never injects into SendFree.

import (
	"fmt"

	"packunpack/internal/transport"
)

// envelope is the wire format of the reliable transport: the payload
// plus its per-(sender, receiver, tag) sequence number. It costs one
// extra machine word on the wire.
type envelope struct {
	seq     uint64
	payload any
}

// streamKey identifies one direction of a point-to-point stream from
// the owning processor's perspective: the peer's global rank and the
// message tag.
type streamKey struct {
	peer, tag int
}

// stashKey addresses an out-of-order envelope parked at the receiver.
type stashKey struct {
	peer, tag int
	seq       uint64
}

type stashVal struct {
	payload any
	words   int
}

// xport is a processor's transport state for the run: send and receive
// sequence counters per stream and the out-of-order stash. It lives in
// the processor's CommState slot, so it resets with every Machine.Run
// and needs no locking (only the owning processor touches it).
type xport struct {
	sendSeq map[streamKey]uint64
	recvSeq map[streamKey]uint64
	stash   map[stashKey]stashVal
}

func xportOf(p transport.Endpoint) *xport {
	slot := p.CommState()
	if *slot == nil {
		*slot = &xport{
			sendSeq: make(map[streamKey]uint64),
			recvSeq: make(map[streamKey]uint64),
			stash:   make(map[stashKey]stashVal),
		}
	}
	return (*slot).(*xport)
}

// send transmits payload to the processor with global rank dst,
// reliably when fault injection is on. words is the payload size in
// machine words; the envelope header adds one word on the faulted
// path.
func (g Group) send(dst, tag int, payload any, words int) {
	p := g.p
	f := p.Faults()
	if f == nil {
		p.Send(dst, tag, payload, words)
		return
	}
	st := xportOf(p)
	k := streamKey{peer: dst, tag: tag}
	seq := st.sendSeq[k]
	st.sendSeq[k] = seq + 1
	p.Charge(1) // compose the sequence header
	env := envelope{seq: seq, payload: payload}
	for attempt := 1; ; attempt++ {
		if p.TrySend(dst, tag, env, words+1) {
			return
		}
		if attempt > f.MaxRetries {
			p.FaultGiveUp(dst, tag, attempt)
		}
		p.RetryWait(dst, tag)
	}
}

// recv returns the next in-sequence payload of the (src, tag) stream,
// discarding duplicates and holding overtakers until their turn. With
// fault injection off it is exactly Endpoint.Recv.
func (g Group) recv(src, tag int) (payload any, words int) {
	p := g.p
	if p.Faults() == nil {
		return p.Recv(src, tag)
	}
	st := xportOf(p)
	k := streamKey{peer: src, tag: tag}
	want := st.recvSeq[k]
	for {
		if v, ok := st.stash[stashKey{peer: src, tag: tag, seq: want}]; ok {
			delete(st.stash, stashKey{peer: src, tag: tag, seq: want})
			st.recvSeq[k] = want + 1
			return v.payload, v.words
		}
		raw, w := p.Recv(src, tag)
		env, ok := raw.(envelope)
		if !ok {
			// A raw Send into a reliable stream would deliver an
			// unsequenced payload here; that is a protocol-layering bug,
			// not a recoverable fault.
			panic(fmt.Sprintf("comm: unsequenced message from %d on reliable stream tag %d", src, tag))
		}
		p.Charge(1) // inspect the sequence header
		switch {
		case env.seq == want:
			st.recvSeq[k] = want + 1
			return env.payload, w - 1
		case env.seq < want:
			p.NoteDedup(src, tag)
		default:
			key := stashKey{peer: src, tag: tag, seq: env.seq}
			if _, dup := st.stash[key]; dup {
				p.NoteDedup(src, tag)
				continue
			}
			p.NoteStash(src, tag)
			st.stash[key] = stashVal{payload: env.payload, words: w - 1}
		}
	}
}
