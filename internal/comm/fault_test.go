package comm

import (
	"reflect"
	"testing"

	"packunpack/internal/sim"
)

// collectiveWorkload runs every collective in the package and folds all
// results into results[rank], so a faulted run can be compared
// value-for-value against a fault-free one.
func collectiveWorkload(results [][]int) func(g Group) {
	return func(g Group) {
		n := g.Size()
		me := g.Index()
		var out []int

		var v []int
		if me == n-1 {
			v = []int{7, me, 3}
		}
		v = g.Bcast(n-1, v)
		out = append(out, v...)
		g.Barrier()

		vec := make([]int, 9)
		for j := range vec {
			vec[j] = (me + 1) * (j + 2) % 13
		}
		for _, algo := range []PRSAlgorithm{PRSDirect, PRSSplit} {
			prefix, total := g.PrefixReductionSum(vec, algo)
			out = append(out, prefix...)
			out = append(out, total...)
		}

		for _, opt := range []A2AOptions{{}, {Naive: true}, {SkipEmpty: true}, {SkipEmpty: true, Naive: true}} {
			send := make([][]int, n)
			for i := range send {
				l := (me*7 + i*3) % 4 // mix of empty and non-empty messages
				buf := make([]int, l)
				for j := range buf {
					buf[j] = me*100 + i*10 + j
				}
				send[i] = buf
			}
			recv := AlltoallVOpt(g, send, 1, opt)
			for i := range recv {
				out = append(out, len(recv[i]))
				out = append(out, recv[i]...)
			}
		}

		gathered := GatherV(g, 0, []int{me, me * me}, 1)
		if me == 0 {
			for _, row := range gathered {
				out = append(out, row...)
			}
		}
		results[g.Proc().Rank()] = out
	}
}

func runFaultWorkload(t *testing.T, sched sim.Sched, faults *sim.FaultConfig, trace bool) ([][]int, *sim.Machine) {
	t.Helper()
	const n = 6
	results := make([][]int, n)
	m := sim.MustNew(sim.Config{Procs: n, Params: sim.CM5Params(), Sched: sched, Trace: trace, Faults: faults})
	if err := m.Run(func(p *sim.Proc) { collectiveWorkload(results)(World(p)) }); err != nil {
		t.Fatalf("sched %v faults %v: %v", sched, faults, err)
	}
	return results, m
}

// TestCollectivesUnderFaults is the core reliable-delivery guarantee:
// every collective returns values identical to the fault-free run under
// any seeded fault schedule, on both schedulers.
func TestCollectivesUnderFaults(t *testing.T) {
	baseline, _ := runFaultWorkload(t, sim.SchedCooperative, nil, false)
	schedules := []*sim.FaultConfig{
		{Seed: 1, Drop: 0.02, Dup: 0.02, Reorder: 0.05, Delay: 0.05, Stall: 0.01},
		{Seed: 2, Drop: 0.25},
		{Seed: 3, Dup: 0.2, Reorder: 0.3},
		{Seed: 4, Drop: 0.1, Dup: 0.1, Reorder: 0.1, Delay: 0.1, Stall: 0.05},
	}
	for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
		for _, f := range schedules {
			got, m := runFaultWorkload(t, sched, f, false)
			if !reflect.DeepEqual(got, baseline) {
				t.Errorf("sched %v faults %v: results diverge from fault-free run", sched, f)
			}
			rep := m.FaultReport()
			if rep == nil || rep.Total.Injected() == 0 {
				t.Errorf("sched %v faults %v: nothing injected", sched, f)
			}
			if rep.Total.Drops > 0 && rep.Total.Retries == 0 {
				t.Errorf("sched %v faults %v: drops but no retries recorded", sched, f)
			}
			if rep.Total.Dups > 0 && rep.Total.Dedups == 0 && rep.Total.Residual == 0 {
				t.Errorf("sched %v faults %v: dups neither deduped nor residual", sched, f)
			}
		}
	}
}

// TestFaultScheduleDeterminism is the determinism satellite: the same
// seed replays an identical fault schedule — same FaultReport and same
// per-rank event streams — on both schedulers, while different seeds
// hit different (non-empty) injection points.
func TestFaultScheduleDeterminism(t *testing.T) {
	f := &sim.FaultConfig{Seed: 9, Drop: 0.08, Dup: 0.08, Reorder: 0.1, Delay: 0.1, Stall: 0.03}
	_, coop := runFaultWorkload(t, sim.SchedCooperative, f, true)
	_, gor := runFaultWorkload(t, sim.SchedGoroutine, f, true)

	repC, repG := coop.FaultReport(), gor.FaultReport()
	if repC.Total.Injected() == 0 {
		t.Fatal("schedule injected nothing")
	}
	if !reflect.DeepEqual(repC, repG) {
		t.Errorf("fault reports differ across schedulers:\n%+v\nvs\n%+v", repC.Total, repG.Total)
	}
	if !reflect.DeepEqual(coop.Stats(), gor.Stats()) {
		t.Error("stats differ across schedulers under faults")
	}
	// Event Seq numbering is machine-global under the cooperative
	// scheduler and per-rank under the goroutine one; everything else
	// in the per-rank streams must agree.
	norm := func(rows [][]sim.Event) [][]sim.Event {
		for _, row := range rows {
			for i := range row {
				row[i].Seq = 0
			}
		}
		return rows
	}
	if !reflect.DeepEqual(norm(coop.Events()), norm(gor.Events())) {
		t.Error("per-rank event streams differ across schedulers under faults")
	}

	_, again := runFaultWorkload(t, sim.SchedCooperative, f, true)
	if !reflect.DeepEqual(again.FaultReport(), repC) {
		t.Error("same seed did not replay the same fault schedule")
	}
	other := &sim.FaultConfig{Seed: 10, Drop: 0.08, Dup: 0.08, Reorder: 0.1, Delay: 0.1, Stall: 0.03}
	_, diff := runFaultWorkload(t, sim.SchedCooperative, other, true)
	repO := diff.FaultReport()
	if repO.Total.Injected() == 0 {
		t.Error("seed 10 injected nothing")
	}
	if reflect.DeepEqual(repO.PerRank, repC.PerRank) {
		t.Error("different seeds produced identical injection points")
	}
}

// TestFaultBudgetExhaustion: a schedule that drops everything exhausts
// the retry budget and surfaces as a structured FaultBudgetError, with
// the FaultReport still available for post-mortem.
func TestFaultBudgetExhaustion(t *testing.T) {
	for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
		m := sim.MustNew(sim.Config{Procs: 4, Params: sim.CM5Params(), Sched: sched,
			Faults: &sim.FaultConfig{Seed: 1, Drop: 1, MaxRetries: 3}})
		err := m.Run(func(p *sim.Proc) {
			g := World(p)
			g.Bcast(0, []int{1, 2, 3})
		})
		if !sim.IsFaultBudget(err) {
			t.Fatalf("sched %v: want FaultBudgetError, got %v", sched, err)
		}
		rep := m.FaultReport()
		if rep == nil || rep.Total.Drops == 0 || rep.Total.Retries == 0 {
			t.Errorf("sched %v: report after exhaustion: %+v", sched, rep)
		}
	}
}

// TestReliableStreamHeaderCharge: with faults enabled every reliable
// message carries a one-word sequence header; with faults off the wire
// traffic is bit-identical to the raw path.
func TestReliableStreamHeaderCharge(t *testing.T) {
	run := func(f *sim.FaultConfig) []sim.Stats {
		m := sim.MustNew(sim.Config{Procs: 2, Params: sim.CM5Params(), Sched: sim.SchedCooperative, Faults: f})
		if err := m.Run(func(p *sim.Proc) {
			g := World(p)
			if g.Index() == 0 {
				g.send(1, tagGather, []int{1, 2, 3}, 3)
			} else {
				g.recv(0, tagGather)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	off := run(nil)
	on := run(&sim.FaultConfig{Seed: 1}) // all rates zero: transport on, no injections
	if off[0].WordsSent != 3 {
		t.Fatalf("raw path sent %d words, want 3", off[0].WordsSent)
	}
	if on[0].WordsSent != 4 {
		t.Errorf("reliable path sent %d words, want 4 (payload + seq header)", on[0].WordsSent)
	}
	if on[0].MsgsSent != off[0].MsgsSent {
		t.Errorf("message count changed: %d vs %d", on[0].MsgsSent, off[0].MsgsSent)
	}
}
