package comm

import (
	"testing"

	"packunpack/internal/sim"
)

// FuzzPrefixReductionSum fuzzes both prefix-reduction-sum variants (and
// the auto rule) across machine sizes and vector lengths against a
// locally computed oracle. The seeded corpus lives in
// testdata/fuzz/FuzzPrefixReductionSum.
func FuzzPrefixReductionSum(f *testing.F) {
	f.Add(4, 9, 0, int64(1))
	f.Add(8, 1, 1, int64(2))
	f.Add(6, 33, 2, int64(3))
	f.Add(1, 0, 0, int64(4))
	f.Fuzz(func(t *testing.T, procs, m, algoSel int, seed int64) {
		procs = ((procs%8)+8)%8 + 1
		m = ((m % 48) + 48) % 48
		algo := []PRSAlgorithm{PRSAuto, PRSDirect, PRSSplit}[((algoSel%3)+3)%3]

		x := uint64(seed)
		next := func() int {
			x = x*6364136223846793005 + 1442695040888963407
			return int(x>>33) % 1000
		}
		vecs := make([][]int, procs)
		for r := range vecs {
			vecs[r] = make([]int, m)
			for j := range vecs[r] {
				vecs[r][j] = next()
			}
		}

		wantPrefix := make([][]int, procs)
		run := make([]int, m)
		for r := 0; r < procs; r++ {
			wantPrefix[r] = append([]int(nil), run...)
			for j := 0; j < m; j++ {
				run[j] += vecs[r][j]
			}
		}
		// run now holds the reduction total.

		gotP := make([][]int, procs)
		gotT := make([][]int, procs)
		mach := sim.MustNew(sim.Config{Procs: procs, Sched: sim.SchedCooperative})
		if err := mach.Run(func(p *sim.Proc) {
			g := World(p)
			gotP[p.Rank()], gotT[p.Rank()] = g.PrefixReductionSum(vecs[p.Rank()], algo)
		}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < procs; r++ {
			for j := 0; j < m; j++ {
				if gotP[r][j] != wantPrefix[r][j] {
					t.Fatalf("procs=%d m=%d algo=%v: prefix[%d][%d] = %d, want %d",
						procs, m, algo, r, j, gotP[r][j], wantPrefix[r][j])
				}
				if gotT[r][j] != run[j] {
					t.Fatalf("procs=%d m=%d algo=%v: total[%d][%d] = %d, want %d",
						procs, m, algo, r, j, gotT[r][j], run[j])
				}
			}
		}
	})
}
