package comm

import "fmt"

// PRSAlgorithm selects how the vector prefix-reduction-sum is computed
// (Section 5.1). The paper cites two algorithms from [1, 6]: a direct
// algorithm, best for few processors or short vectors, and a split
// algorithm whose bandwidth term does not grow with the processor
// count, best for large vectors on many processors.
type PRSAlgorithm int

const (
	// PRSAuto applies the paper's selection rule: the direct algorithm
	// if the group has at most 4 members or the vector is shorter than
	// the group, the split algorithm otherwise (Section 7, "Vector
	// Prefix-Reduction-Sum").
	PRSAuto PRSAlgorithm = iota
	// PRSDirect exchanges whole vectors in a recursive-doubling scan:
	// O(log P) start-ups but a O(mu*M*log P) bandwidth term.
	PRSDirect
	// PRSSplit transposes the vector so every member combines one
	// M/P-sized piece locally, then sends each member its prefix and
	// total pieces back: a O(mu*M) bandwidth term at the price of
	// O(P) start-ups. (The paper's split algorithm [6] achieves
	// O(tau*log P + mu*M); under this emulator's sender-occupancy
	// model the transpose variant is the faithful analogue — it keeps
	// the property that decides the paper's experiments, namely that
	// the bandwidth term stops growing with P.)
	PRSSplit
)

func (a PRSAlgorithm) String() string {
	switch a {
	case PRSAuto:
		return "auto"
	case PRSDirect:
		return "direct"
	case PRSSplit:
		return "split"
	}
	return fmt.Sprintf("PRSAlgorithm(%d)", int(a))
}

// PrefixReductionSum performs the combined vector prefix-sum and
// reduction-sum of Section 5.1 over the group: with V_i the vector
// passed by group member i,
//
//	prefix[j] = sum_{k < me} V_k[j]   (exclusive prefix sum)
//	total[j]  = sum_{all k} V_k[j]    (reduction sum)
//
// Both result vectors are returned to every member. vec is not
// modified. All members must pass vectors of the same length and the
// same algorithm choice.
func (g Group) PrefixReductionSum(vec []int, algo PRSAlgorithm) (prefix, total []int) {
	if done := commObserve(g.p, "prs"); done != nil {
		defer done()
	}
	n := len(g.ranks)
	if n == 1 {
		return make([]int, len(vec)), cloneInts(vec)
	}
	if algo == PRSAuto {
		algo = g.pickPRS(len(vec))
	}
	switch algo {
	case PRSDirect:
		return g.prsDirect(vec)
	case PRSSplit:
		return g.prsSplit(vec)
	default:
		panic(fmt.Sprintf("comm: unknown PRS algorithm %d", int(algo)))
	}
}

// pickPRS implements the auto rule. The paper's rule (direct if P <= 4
// or M < P, else split) assumed the split algorithm of reference [6];
// under this emulator's sender-occupancy model the split variant is
// transpose-based with a 2*tau*P start-up term, so the auto rule keeps
// the paper's small-machine/short-vector shortcut and otherwise picks
// the variant with the smaller modelled cost.
func (g Group) pickPRS(m int) PRSAlgorithm {
	n := len(g.ranks)
	if n <= 4 || m < n {
		return PRSDirect
	}
	prm := g.p.Params()
	lg := float64(ceilLog2(n))
	direct := 2 * lg * (prm.Tau + prm.Mu*float64(m))
	split := 2*float64(n-1)*prm.Tau + 3*prm.Mu*float64(m)
	if split < direct {
		return PRSSplit
	}
	return PRSDirect
}

// prsDirect: recursive-doubling exclusive scan (works for any group
// size), followed by a binomial broadcast of the total from the last
// member. Cost about 2 log P start-ups and 2*mu*M*log P transfer.
func (g Group) prsDirect(vec []int) (prefix, total []int) {
	n := len(g.ranks)
	m := len(vec)
	prefix = make([]int, m)
	acc := cloneInts(vec) // inclusive prefix of my leading group segment

	for k, d := 0, 1; d < n; k, d = k+1, d*2 {
		if g.me+d < n {
			g.send(g.ranks[g.me+d], tagScan+k, cloneInts(acc), m)
		}
		if g.me-d >= 0 {
			payload, _ := g.recv(g.ranks[g.me-d], tagScan+k)
			part := payload.([]int)
			g.p.Charge(2 * m) // add into prefix and into acc
			for j := 0; j < m; j++ {
				prefix[j] += part[j]
				acc[j] += part[j]
			}
		}
	}
	// The last member's inclusive accumulation is the reduction sum.
	if g.me == n-1 {
		total = g.Bcast(n-1, acc)
	} else {
		total = g.Bcast(n-1, nil)
	}
	return prefix, total
}

// pieceBounds returns the [lo, hi) range of vector elements assigned to
// piece i when a length-m vector is split over n pieces as evenly as
// possible.
func pieceBounds(i, n, m int) (lo, hi int) {
	base, rem := m/n, m%n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// prsSplit: transpose-combine-transpose.
//
//  1. Split vec into P nearly equal pieces; member j receives piece j
//     from everyone (all-to-all over a linear permutation schedule).
//  2. Member j locally computes, for its piece, the exclusive prefix
//     contribution destined to each member and the piece total.
//  3. Each member receives its prefix piece and the total piece from
//     every piece owner and reassembles the two result vectors.
//
// Per member: about 2P start-ups and 3*mu*M words moved — the
// bandwidth term is independent of P, which is what lets split win on
// long vectors (Section 7).
func (g Group) prsSplit(vec []int) (prefix, total []int) {
	n := len(g.ranks)
	m := len(vec)

	// Phase 1: send piece j of my vector to member j.
	sendPieces := make([][]int, n)
	for j := 0; j < n; j++ {
		lo, hi := pieceBounds(j, n, m)
		sendPieces[j] = cloneInts(vec[lo:hi])
	}
	g.p.Charge(m) // composing the pieces
	rows := AlltoallV(g, sendPieces, 1)

	// Phase 2: rows[i] is member i's values for my piece. Compute the
	// per-member exclusive prefixes and the piece total.
	lo, hi := pieceBounds(g.me, n, m)
	plen := hi - lo
	prefixPieces := make([][]int, n)
	running := make([]int, plen)
	for i := 0; i < n; i++ {
		prefixPieces[i] = cloneInts(running)
		g.p.Charge(plen)
		for j := 0; j < plen; j++ {
			running[j] += rows[i][j]
		}
	}
	// running now holds the piece total.

	// Phase 3: return to member i its prefix piece together with the
	// shared total piece.
	back := make([][]int, n)
	for i := 0; i < n; i++ {
		msg := make([]int, 0, 2*plen)
		msg = append(msg, prefixPieces[i]...)
		msg = append(msg, running...)
		back[i] = msg
	}
	g.p.Charge(2 * plen * n) // composing the return messages
	got := AlltoallV(g, back, 1)

	prefix = make([]int, m)
	total = make([]int, m)
	for i := 0; i < n; i++ {
		plo, phi := pieceBounds(i, n, m)
		w := phi - plo
		copy(prefix[plo:phi], got[i][:w])
		copy(total[plo:phi], got[i][w:])
	}
	g.p.Charge(2 * m) // reassembly
	return prefix, total
}
