package comm

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

// runGroupsBackend executes body on an n-processor machine of the given
// backend, giving each processor the world group.
func runGroupsBackend(t *testing.T, b transport.Backend, n int, body func(g Group)) transport.Machine {
	t.Helper()
	m, err := transport.New(b, sim.Config{Procs: n, Params: sim.CM5Params()})
	if err != nil {
		t.Fatalf("New(%v): %v", b, err)
	}
	if err := m.Run(func(p transport.Endpoint) { body(World(p)) }); err != nil {
		t.Fatalf("%v machine run failed: %v", b, err)
	}
	return m
}

var bothBackends = []transport.Backend{transport.BackendSim, transport.BackendReal}

// TestGatherVRootRowNotAliased is the regression test for the root
// aliasing bug: GatherV used to store the root's live contrib slice
// directly in the result (out[root] = contrib), so mutating the
// contribution buffer after the gather silently corrupted the gathered
// row. The root's own row must be a private copy, like every remote row.
func TestGatherVRootRowNotAliased(t *testing.T) {
	for _, b := range bothBackends {
		t.Run(b.String(), func(t *testing.T) {
			runGroupsBackend(t, b, 4, func(g Group) {
				root := 1
				contrib := []int{g.Index() * 10, g.Index()*10 + 1}
				rows := GatherV(g, root, contrib, 1)
				if g.Index() != root {
					// Senders pass ownership of contrib to the network, so
					// they must not touch it again; only the root's own
					// buffer stays caller-owned.
					if rows != nil {
						panic("non-root got a gather result")
					}
					return
				}
				contrib[0] = -999 // root reuses its buffer after the gather
				for src, row := range rows {
					want := []int{src * 10, src*10 + 1}
					if !reflect.DeepEqual(row, want) {
						panic(fmt.Sprintf("row %d = %v, want %v (root row aliased caller's buffer?)", src, row, want))
					}
				}
			})
		})
	}
}

// TestGatherVNilContribution: a nil contribution gathers as a nil row,
// and the root-row clone must not turn nil into an empty slice.
func TestGatherVNilContribution(t *testing.T) {
	for _, b := range bothBackends {
		t.Run(b.String(), func(t *testing.T) {
			runGroupsBackend(t, b, 3, func(g Group) {
				var contrib []int
				if g.Index() == 2 {
					contrib = []int{5}
				}
				rows := GatherV(g, 0, contrib, 1)
				if g.Index() != 0 {
					return
				}
				if rows[0] != nil || rows[1] != nil {
					panic(fmt.Sprintf("nil contributions gathered as %v, %v; want nil, nil", rows[0], rows[1]))
				}
				if !reflect.DeepEqual(rows[2], []int{5}) {
					panic(fmt.Sprintf("row 2 = %v, want [5]", rows[2]))
				}
			})
		})
	}
}

// TestBcastNilAndEmpty is the regression test for the nil/empty
// asymmetry: broadcasting nil used to return nil at the root but a
// freshly allocated non-nil empty slice at every other member (the
// forward path cloned with cloneInts, which allocates). The contract is
// symmetry: every member gets the same value, including its nil-ness.
func TestBcastNilAndEmpty(t *testing.T) {
	cases := []struct {
		name string
		vec  []int
	}{
		{"nil", nil},
		{"empty", []int{}},
		{"nonempty", []int{3, 1, 4}},
	}
	for _, b := range bothBackends {
		for _, n := range []int{2, 3, 5, 8} {
			for _, c := range cases {
				t.Run(fmt.Sprintf("%v/n=%d/%s", b, n, c.name), func(t *testing.T) {
					for root := 0; root < n; root++ {
						root := root
						runGroupsBackend(t, b, n, func(g Group) {
							var vec []int
							if g.Index() == root {
								vec = c.vec
							}
							got := g.Bcast(root, vec)
							if (got == nil) != (c.vec == nil) {
								panic(fmt.Sprintf("root=%d idx=%d: nil-ness broken: got %#v, root sent %#v", root, g.Index(), got, c.vec))
							}
							if !reflect.DeepEqual(got, c.vec) {
								panic(fmt.Sprintf("root=%d idx=%d: got %v, want %v", root, g.Index(), got, c.vec))
							}
						})
					}
				})
			}
		}
	}
}

// TestBarrierNonPowerOfTwo is the regression test for the
// precedence-dependent source index: the dissemination barrier computed
// its round-k source as (me-d%n+n)%n, which happens to equal the
// intended (me-d+n)%n only because d < n throughout the loop. The test
// pins completion and clock synchronization for group sizes where a
// genuine d%n reduction would matter if the loop ever changed shape.
func TestBarrierNonPowerOfTwo(t *testing.T) {
	for _, b := range bothBackends {
		for _, n := range []int{2, 3, 5, 6, 7, 12} {
			t.Run(fmt.Sprintf("%v/n=%d", b, n), func(t *testing.T) {
				m := runGroupsBackend(t, b, n, func(g Group) {
					g.Proc().Charge(g.Index() * 50)
					g.Barrier()
					g.Barrier() // back-to-back barriers must not cross-match rounds
				})
				if b != transport.BackendSim {
					return
				}
				// On the emulator the barrier also pulls every virtual clock
				// up to at least the slowest member's entry time.
				slowest := float64((n - 1) * 50)
				for _, s := range m.Stats() {
					if s.Clock < slowest {
						t.Errorf("n=%d rank %d finished at %v, before the slowest entry %v", n, s.Rank, s.Clock, slowest)
					}
				}
			})
		}
	}
}

// TestBarrierSubsetGroupNonPowerOfTwo runs the barrier on a
// non-contiguous subset group whose size is not a power of two, so the
// group-rank arithmetic (not just global ranks) is exercised.
func TestBarrierSubsetGroupNonPowerOfTwo(t *testing.T) {
	for _, b := range bothBackends {
		t.Run(b.String(), func(t *testing.T) {
			members := []int{0, 2, 3, 5, 6}
			m, err := transport.New(b, sim.Config{Procs: 7, Params: sim.CM5Params()})
			if err != nil {
				t.Fatal(err)
			}
			err = m.Run(func(p transport.Endpoint) {
				in := false
				for _, r := range members {
					if r == p.Rank() {
						in = true
					}
				}
				if !in {
					return
				}
				g, err := NewGroup(p, members)
				if err != nil {
					panic(err)
				}
				g.Barrier()
				g.Barrier()
			})
			if err != nil {
				t.Fatalf("subset barrier failed: %v", err)
			}
		})
	}
}

// ---- Retry budget accounting (MaxRetries semantics) ----

// countingEndpoint is a fake transport.Endpoint for exercising the
// reliable sender's retry loop in isolation: every delivery attempt
// fails, and the hooks tally how the loop drives them.
type countingEndpoint struct {
	faults   sim.FaultConfig
	trySends int
	waits    int
	giveUpAt int // attempts value passed to FaultGiveUp
	comm     any
}

type giveUpSentinel struct{ attempts int }

func (c *countingEndpoint) Rank() int                                 { return 0 }
func (c *countingEndpoint) NProcs() int                               { return 2 }
func (c *countingEndpoint) Params() sim.Params                        { return sim.Params{} }
func (c *countingEndpoint) Clock() float64                            { return 0 }
func (c *countingEndpoint) SetPhase(name string) string               { return "" }
func (c *countingEndpoint) Charge(ops int)                            {}
func (c *countingEndpoint) Send(dst, tag int, payload any, words int) {}
func (c *countingEndpoint) SendFree(dst, tag int, payload any)        {}
func (c *countingEndpoint) Recv(src, tag int) (any, int)              { return nil, 0 }
func (c *countingEndpoint) SendInts(dst, tag int, v []int)            {}
func (c *countingEndpoint) RecvInts(src, tag int) []int               { return nil }
func (c *countingEndpoint) Faults() *sim.FaultConfig                  { return &c.faults }
func (c *countingEndpoint) RetryWait(dst, tag int)                    { c.waits++ }
func (c *countingEndpoint) NoteDedup(src, tag int)                    {}
func (c *countingEndpoint) NoteStash(src, tag int)                    {}
func (c *countingEndpoint) CommState() *any                           { return &c.comm }
func (c *countingEndpoint) Metrics() *metrics.Registry                { return nil }

func (c *countingEndpoint) TrySend(dst, tag int, payload any, words int) bool {
	c.trySends++
	return false
}

func (c *countingEndpoint) FaultGiveUp(dst, tag, attempts int) {
	c.giveUpAt = attempts
	panic(giveUpSentinel{attempts: attempts})
}

// TestMaxRetriesAttemptAccounting pins the budget semantics of the
// reliable sender: MaxRetries = R permits exactly one original delivery
// attempt plus R retransmissions (R+1 TrySend calls, R RetryWait
// timeouts) before FaultGiveUp fires.
func TestMaxRetriesAttemptAccounting(t *testing.T) {
	for _, r := range []int{1, 2, 3, 7} {
		ep := &countingEndpoint{faults: sim.FaultConfig{MaxRetries: r}}
		g, err := NewGroup(ep, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				rec := recover()
				if _, ok := rec.(giveUpSentinel); !ok {
					t.Fatalf("R=%d: send ended with %v, want FaultGiveUp", r, rec)
				}
			}()
			g.send(1, 99, []int{1}, 1)
		}()
		if ep.trySends != r+1 {
			t.Errorf("R=%d: %d delivery attempts, want %d (1 original + %d retries)", r, ep.trySends, r+1, r)
		}
		if ep.waits != r {
			t.Errorf("R=%d: %d retry timeouts, want %d", r, ep.waits, r)
		}
		if ep.giveUpAt != r+1 {
			t.Errorf("R=%d: FaultGiveUp reported attempt %d, want %d", r, ep.giveUpAt, r+1)
		}
	}
}

// TestMaxRetriesBudgetOnMachine runs the same accounting end-to-end on
// the emulator under a drop-everything schedule: the machine must abort
// with a FaultBudgetError whose Attempts is exactly MaxRetries+1, and
// the fault report's counters must agree, under both scheduler modes.
func TestMaxRetriesBudgetOnMachine(t *testing.T) {
	const retries = 4
	for _, sched := range []sim.Sched{sim.SchedCooperative, sim.SchedGoroutine} {
		m := sim.MustNew(sim.Config{Procs: 2, Params: sim.CM5Params(), Sched: sched,
			Faults: &sim.FaultConfig{Seed: 3, Drop: 1, MaxRetries: retries}})
		err := m.Run(func(p *sim.Proc) {
			g := World(p)
			if g.Index() == 0 {
				g.send(1, tagGather, []int{1}, 1)
			} else {
				g.recv(0, tagGather)
			}
		})
		if !sim.IsFaultBudget(err) {
			t.Fatalf("sched %v: want FaultBudgetError, got %v", sched, err)
		}
		var budget *sim.FaultBudgetError
		if !errors.As(err, &budget) {
			t.Fatalf("sched %v: FaultBudgetError not unwrappable from %v", sched, err)
		}
		if budget.Attempts != retries+1 {
			t.Errorf("sched %v: gave up after %d attempts, want %d (1 original + %d retries)",
				sched, budget.Attempts, retries+1, retries)
		}
		rep := m.FaultReport()
		if rep == nil {
			t.Fatalf("sched %v: no fault report", sched)
		}
		sender := rep.PerRank[0]
		if sender.Attempts != retries+1 || sender.Retries != retries || sender.Drops != retries+1 {
			t.Errorf("sched %v: sender counters %+v, want Attempts=%d Retries=%d Drops=%d",
				sched, sender, retries+1, retries, retries+1)
		}
	}
}

// TestRealBackendSkipsReliableEnvelope: the real backend has no fault
// plan, so the reliable wrappers must be exact pass-throughs — no
// sequence header word on the wire.
func TestRealBackendSkipsReliableEnvelope(t *testing.T) {
	m := runGroupsBackend(t, transport.BackendReal, 2, func(g Group) {
		if g.Index() == 0 {
			g.send(1, tagGather, []int{1, 2, 3}, 3)
		} else {
			if payload, words := g.recv(0, tagGather); words != 3 || len(payload.([]int)) != 3 {
				panic(fmt.Sprintf("pass-through broken: %v words", words))
			}
		}
	})
	if s := m.Stats()[0]; s.WordsSent != 3 || s.MsgsSent != 1 {
		t.Errorf("real backend sent %d words in %d msgs, want 3 in 1 (no envelope header)", s.WordsSent, s.MsgsSent)
	}
}
