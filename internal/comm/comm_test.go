package comm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"packunpack/internal/sim"
)

// runGroups executes body on a machine of n processors, giving each the
// world group.
func runGroups(t *testing.T, n int, params sim.Params, body func(g Group)) *sim.Machine {
	t.Helper()
	m := sim.MustNew(sim.Config{Procs: n, Params: params})
	if err := m.Run(func(p *sim.Proc) { body(World(p)) }); err != nil {
		t.Fatalf("machine run failed: %v", err)
	}
	return m
}

func TestNewGroupValidation(t *testing.T) {
	m := sim.MustNew(sim.Config{Procs: 4})
	err := m.Run(func(p *sim.Proc) {
		if _, err := NewGroup(p, []int{0, 1}); p.Rank() >= 2 && err == nil {
			panic("membership not checked")
		}
		if p.Rank() == 0 {
			if _, err := NewGroup(p, []int{0, 0, 1}); err == nil {
				panic("duplicate member accepted")
			}
		}
		g, err := NewGroup(p, []int{3, 2, 1, 0})
		if err != nil {
			panic(err)
		}
		if g.Size() != 4 || g.Index() != 3-p.Rank() {
			panic(fmt.Sprintf("rank %d: wrong group view %d/%d", p.Rank(), g.Index(), g.Size()))
		}
		if !reflect.DeepEqual(g.Ranks(), []int{3, 2, 1, 0}) {
			panic("Ranks() mangled")
		}
		if g.Proc() != p {
			panic("Proc() lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := sim.MustNew(sim.Config{Procs: 5, Params: sim.Params{Tau: 1, Delta: 1}})
	err := m.Run(func(p *sim.Proc) {
		p.Charge(p.Rank() * 100) // skewed clocks
		World(p).Barrier()
		if p.Clock() < 400 {
			panic(fmt.Sprintf("rank %d clock %v below the slowest member's entry", p.Rank(), p.Clock()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		for root := 0; root < n; root++ {
			runGroups(t, n, sim.Params{}, func(g Group) {
				var vec []int
				if g.Index() == root {
					vec = []int{root * 10, root*10 + 1, 42}
				}
				got := g.Bcast(root, vec)
				want := []int{root * 10, root*10 + 1, 42}
				if !reflect.DeepEqual(got, want) {
					panic(fmt.Sprintf("n=%d root=%d idx=%d: got %v", n, root, g.Index(), got))
				}
			})
		}
	}
}

func TestBcastReceiversGetPrivateCopies(t *testing.T) {
	runGroups(t, 4, sim.Params{}, func(g Group) {
		var vec []int
		if g.Index() == 0 {
			vec = []int{7}
		}
		got := g.Bcast(0, vec)
		got[0] += g.Index() // must not race with other members
		if got[0] != 7+g.Index() {
			panic("copy aliased")
		}
	})
}

func TestGatherV(t *testing.T) {
	out := make([][][]int, 4)
	runGroups(t, 4, sim.Params{}, func(g Group) {
		contrib := make([]int, g.Index()+1)
		for i := range contrib {
			contrib[i] = g.Index()*100 + i
		}
		out[g.Index()] = GatherV(g, 2, contrib, 1)
	})
	for i, o := range out {
		if (o != nil) != (i == 2) {
			t.Fatalf("member %d: gather result presence wrong", i)
		}
	}
	for src, buf := range out[2] {
		if len(buf) != src+1 || buf[0] != src*100 {
			t.Fatalf("gathered contribution from %d wrong: %v", src, buf)
		}
	}
}

// prsOracle computes the expected prefix/total for the deterministic
// per-member vectors used below.
func prsVec(idx, m int) []int {
	v := make([]int, m)
	for j := range v {
		v[j] = (idx+1)*(j+1) + idx
	}
	return v
}

func TestPrefixReductionSumAlgorithms(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16} {
		for _, m := range []int{0, 1, 7, 64} {
			wantPrefix := make([][]int, n)
			wantTotal := make([]int, m)
			run := make([]int, m)
			for i := 0; i < n; i++ {
				wantPrefix[i] = make([]int, m)
				copy(wantPrefix[i], run)
				for j, x := range prsVec(i, m) {
					run[j] += x
					wantTotal[j] = run[j]
				}
			}
			for _, algo := range []PRSAlgorithm{PRSDirect, PRSSplit, PRSAuto} {
				name := fmt.Sprintf("n=%d m=%d %v", n, m, algo)
				runGroups(t, n, sim.Params{}, func(g Group) {
					vec := prsVec(g.Index(), m)
					prefix, total := g.PrefixReductionSum(vec, algo)
					if !reflect.DeepEqual(prefix, wantPrefix[g.Index()]) {
						panic(fmt.Sprintf("%s idx=%d: prefix %v, want %v", name, g.Index(), prefix, wantPrefix[g.Index()]))
					}
					if !reflect.DeepEqual(total, wantTotal) {
						panic(fmt.Sprintf("%s idx=%d: total %v, want %v", name, g.Index(), total, wantTotal))
					}
					// The input must not be modified.
					if !reflect.DeepEqual(vec, prsVec(g.Index(), m)) {
						panic(name + ": input vector modified")
					}
					// Results must be private (mutating them is safe).
					for i := range total {
						total[i] += g.Index()
					}
				})
			}
		}
	}
}

// TestPRSSplitShortVectors pins the explicit-PRSSplit edge the auto
// rule hides: with m < n the even split hands some members zero-length
// pieces (pieceBounds gives lo == hi), so those members combine
// nothing, send empty return messages, and must still terminate with
// the right full-length results. The auto rule never picks split here
// (it falls back to direct for m < n), so only an explicit algorithm
// choice reaches this path.
func TestPRSSplitShortVectors(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16} {
		for _, m := range []int{0, 1, 2, n - 1} {
			if m >= n { // this test is about m < n only
				continue
			}
			name := fmt.Sprintf("n=%d m=%d", n, m)
			// Oracle from the direct algorithm over the same inputs.
			wantPrefix := make([][]int, n)
			wantTotal := make([][]int, n)
			runGroups(t, n, sim.Params{}, func(g Group) {
				p, tt := g.PrefixReductionSum(prsVec(g.Index(), m), PRSDirect)
				wantPrefix[g.Index()], wantTotal[g.Index()] = p, tt
			})
			runGroups(t, n, sim.Params{}, func(g Group) {
				prefix, total := g.PrefixReductionSum(prsVec(g.Index(), m), PRSSplit)
				if len(prefix) != m || len(total) != m {
					panic(fmt.Sprintf("%s idx=%d: result lengths %d/%d, want %d", name, g.Index(), len(prefix), len(total), m))
				}
				if !reflect.DeepEqual(prefix, wantPrefix[g.Index()]) || !reflect.DeepEqual(total, wantTotal[g.Index()]) {
					panic(fmt.Sprintf("%s idx=%d: split (%v, %v) != direct (%v, %v)",
						name, g.Index(), prefix, total, wantPrefix[g.Index()], wantTotal[g.Index()]))
				}
			})
		}
	}
}

func TestPRSCostShapes(t *testing.T) {
	// With M large, split must beat direct on many processors; with M
	// tiny, direct must win. This is the paper's experimental claim
	// about the two algorithms.
	params := sim.CM5Params()
	cost := func(n, m int, algo PRSAlgorithm) float64 {
		machine := runGroups(t, n, params, func(g Group) {
			g.PrefixReductionSum(make([]int, m), algo)
		})
		return machine.MaxClock()
	}
	if d, s := cost(16, 16384, PRSDirect), cost(16, 16384, PRSSplit); s >= d {
		t.Errorf("split (%v) should beat direct (%v) on long vectors", s, d)
	}
	if d, s := cost(16, 4, PRSDirect), cost(16, 4, PRSSplit); d >= s {
		t.Errorf("direct (%v) should beat split (%v) on short vectors", d, s)
	}
	// Auto should match the better of the two, up to its heuristic.
	a := cost(16, 16384, PRSAuto)
	if a > cost(16, 16384, PRSDirect) {
		t.Errorf("auto picked a worse algorithm on long vectors")
	}
}

func TestPieceBounds(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{4, 10}, {3, 3}, {5, 2}, {1, 9}, {7, 0}} {
		covered := 0
		prevHi := 0
		for i := 0; i < tc.n; i++ {
			lo, hi := pieceBounds(i, tc.n, tc.m)
			if lo != prevHi {
				t.Fatalf("n=%d m=%d: piece %d starts at %d, want %d", tc.n, tc.m, i, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("negative piece")
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.m || prevHi != tc.m {
			t.Fatalf("n=%d m=%d: pieces cover %d", tc.n, tc.m, covered)
		}
	}
}

func TestAlltoallVAllVariants(t *testing.T) {
	variants := []A2AOptions{
		{},
		{SkipEmpty: true},
		{Naive: true},
		{Naive: true, SkipEmpty: true},
	}
	for _, n := range []int{1, 2, 3, 4, 8} {
		for vi, opt := range variants {
			name := fmt.Sprintf("n=%d variant=%d", n, vi)
			runGroups(t, n, sim.Params{}, func(g Group) {
				send := make([][]int, n)
				for dst := 0; dst < n; dst++ {
					// Member i sends i*n+dst copies (some empty).
					k := (g.Index() + dst) % 3
					buf := make([]int, k)
					for j := range buf {
						buf[j] = g.Index()*1000 + dst*10 + j
					}
					send[dst] = buf
				}
				recv := AlltoallVOpt(g, send, 1, opt)
				for src := 0; src < n; src++ {
					k := (src + g.Index()) % 3
					if len(recv[src]) != k {
						panic(fmt.Sprintf("%s: from %d got %d elems, want %d", name, src, len(recv[src]), k))
					}
					for j, v := range recv[src] {
						if v != src*1000+g.Index()*10+j {
							panic(fmt.Sprintf("%s: corrupted element", name))
						}
					}
				}
			})
		}
	}
}

func TestAlltoallVWWordAccounting(t *testing.T) {
	// Word counts drive the cost model: 3 members, each sending one
	// 4-word message and two empty ones.
	params := sim.Params{Tau: 10, Mu: 1}
	m := runGroups(t, 3, params, func(g Group) {
		send := make([][]int, 3)
		send[(g.Index()+1)%3] = []int{1, 2, 3, 4}
		words := []int{0, 0, 0}
		words[(g.Index()+1)%3] = 4
		AlltoallVW(g, send, words, A2AOptions{})
	})
	// Default mode sends all 3 rounds (incl. empty + self): per proc
	// 3*tau + 4*mu = 34 of send occupancy.
	for _, s := range m.Stats() {
		if s.WordsSent != 4 || s.MsgsSent != 3 {
			t.Fatalf("stats %+v", s)
		}
	}
}

func TestAlltoallVSkipEmptySavesStartups(t *testing.T) {
	params := sim.CM5Params()
	sparse := func(opt A2AOptions) float64 {
		m := runGroups(t, 16, params, func(g Group) {
			send := make([][]int, 16)
			if g.Index() == 0 {
				send[1] = []int{9}
			}
			AlltoallVOpt(g, send, 1, opt)
		})
		return m.MaxClock()
	}
	full, skip := sparse(A2AOptions{}), sparse(A2AOptions{SkipEmpty: true})
	if skip >= full {
		t.Errorf("SkipEmpty (%v) should be cheaper than always-send (%v) on sparse patterns", skip, full)
	}
}

func TestAlltoallVDeterministicUnderRandomData(t *testing.T) {
	// Permutation-schedule delivery must be exact for irregular sizes.
	rng := rand.New(rand.NewSource(7))
	sizes := make([][]int, 8)
	for i := range sizes {
		sizes[i] = make([]int, 8)
		for j := range sizes[i] {
			sizes[i][j] = rng.Intn(5)
		}
	}
	runGroups(t, 8, sim.Params{}, func(g Group) {
		send := make([][]int, 8)
		for dst := 0; dst < 8; dst++ {
			send[dst] = make([]int, sizes[g.Index()][dst])
			for j := range send[dst] {
				send[dst][j] = g.Index()<<16 | dst<<8 | j
			}
		}
		recv := AlltoallV(g, send, 1)
		for src := 0; src < 8; src++ {
			if len(recv[src]) != sizes[src][g.Index()] {
				panic("size mismatch")
			}
			for j, v := range recv[src] {
				if v != src<<16|g.Index()<<8|j {
					panic("payload mismatch")
				}
			}
		}
	})
}

func TestGroupSubsetCollectives(t *testing.T) {
	// Collectives on non-world groups: two disjoint row groups.
	m := sim.MustNew(sim.Config{Procs: 6})
	err := m.Run(func(p *sim.Proc) {
		row := p.Rank() / 3
		ranks := []int{row * 3, row*3 + 1, row*3 + 2}
		g, err := NewGroup(p, ranks)
		if err != nil {
			panic(err)
		}
		prefix, total := g.PrefixReductionSum([]int{p.Rank()}, PRSDirect)
		wantTotal := ranks[0] + ranks[1] + ranks[2]
		if total[0] != wantTotal {
			panic(fmt.Sprintf("row %d: total %d, want %d", row, total[0], wantTotal))
		}
		wantPrefix := 0
		for _, r := range ranks[:g.Index()] {
			wantPrefix += r
		}
		if prefix[0] != wantPrefix {
			panic(fmt.Sprintf("row %d idx %d: prefix %d, want %d", row, g.Index(), prefix[0], wantPrefix))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierCostIsLogRounds(t *testing.T) {
	// Dissemination barrier: ceil(log2 P) rounds of zero-word tokens,
	// so each member's clock advances by exactly rounds*tau when all
	// enter simultaneously.
	for _, n := range []int{2, 4, 8, 16} {
		params := sim.Params{Tau: 10}
		m := runGroups(t, n, params, func(g Group) {
			g.Barrier()
		})
		want := float64(ceilLog2(n)) * 10
		for _, s := range m.Stats() {
			if s.Clock != want {
				t.Fatalf("P=%d: clock %v, want %v", n, s.Clock, want)
			}
		}
	}
}

func TestGatherVMultiWordElements(t *testing.T) {
	type pair struct{ A, B int }
	m := sim.MustNew(sim.Config{Procs: 3, Params: sim.Params{Tau: 1, Mu: 1}})
	err := m.Run(func(p *sim.Proc) {
		g := World(p)
		contrib := []pair{{A: p.Rank(), B: -p.Rank()}}
		out := GatherV(g, 0, contrib, 2)
		if p.Rank() == 0 {
			for src, buf := range out {
				if len(buf) != 1 || buf[0].A != src || buf[0].B != -src {
					panic(fmt.Sprintf("gathered %v from %d", buf, src))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Word accounting: ranks 1 and 2 each sent one 2-word message.
	for _, s := range m.Stats() {
		if s.Rank != 0 && s.WordsSent != 2 {
			t.Fatalf("rank %d sent %d words, want 2", s.Rank, s.WordsSent)
		}
	}
}
