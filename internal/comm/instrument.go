package comm

// Telemetry hooks for the collectives (internal/metrics, PR 8). Each
// public primitive records one comm_calls_total increment and one
// comm_wall_us observation per invocation, labeled by primitive name.
// Wall time — host time, not virtual time — is the right unit on both
// backends: on the real backend it is the latency a service would see,
// on the emulator it is the host cost of simulating the collective
// (useful for sweep profiling, meaningless as a model figure — the
// model's own numbers stay in Stats/Spans).
//
// Overhead discipline: with no registry attached the hook is one
// interface call and a nil check, and no deferred closure is created.

import (
	"time"

	"packunpack/internal/transport"
)

// commObserve records the call and returns the stop function for its
// wall-time observation, nil when telemetry is off (callers guard the
// defer on that).
func commObserve(p transport.Endpoint, primitive string) func() {
	reg := p.Metrics()
	if reg == nil {
		return nil
	}
	reg.Counter("comm_calls_total", "collective invocations per primitive", "primitive").With(primitive).Inc()
	h := reg.Histogram("comm_wall_us", "wall-clock microseconds per collective call", "primitive").With(primitive)
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Microseconds()) }
}
