package comm

import "sync"

// A2AOptions tunes the many-to-many personalized communication.
type A2AOptions struct {
	// SkipEmpty omits zero-length messages. The default (false)
	// transmits every round's message even when empty, which models
	// the cost of the count exchange / termination detection that a
	// receiver-oblivious exchange otherwise needs; the paper's active
	// message implementation pays an equivalent per-round handshake.
	// In SkipEmpty mode the "who sends to whom" knowledge is carried
	// by zero-cost probe messages, i.e. it is modelled as free, which
	// is what makes SkipEmpty an ablation rather than the default.
	SkipEmpty bool
	// Naive disables the linear permutation schedule: every member
	// first fires all its sends in destination order, then receives
	// in source order. It exists for the scheduling ablation.
	Naive bool
}

const tagA2AProbe = tagA2A + (1 << 18)

// AlltoallV performs many-to-many personalized communication within the
// group: send[i] is delivered to group member i, and the returned slice
// holds recv[i] = the buffer member i sent to the caller. Each element
// of T counts wordsPerElem machine words. Ownership of the send
// buffers passes to the receivers; callers must not reuse them.
//
// The default schedule is the linear permutation scheduling of
// reference [9]: in round r every member p sends to (p+r) mod P and
// receives from (p-r) mod P, so each round is a contention-free
// permutation of the virtual crossbar. Round 0 is the self message,
// which the paper's implementation also routes through the network
// rather than turning into a local copy.
func AlltoallV[T any](g Group, send [][]T, wordsPerElem int) [][]T {
	return AlltoallVOpt(g, send, wordsPerElem, A2AOptions{})
}

// wordsPool recycles the per-call word-count scratch of AlltoallVOpt.
// AlltoallVW only reads the counts while sending, so the slice can be
// returned to the pool as soon as it comes back; sync.Pool hands an
// object to at most one goroutine at a time, so concurrently running
// machines never share a scratch slice.
var wordsPool = sync.Pool{New: func() any { return new([]int) }}

// AlltoallVOpt is AlltoallV with explicit options.
func AlltoallVOpt[T any](g Group, send [][]T, wordsPerElem int, opt A2AOptions) [][]T {
	wp := wordsPool.Get().(*[]int)
	words := *wp
	if cap(words) < len(send) {
		words = make([]int, len(send))
	}
	words = words[:len(send)]
	for i, buf := range send {
		words[i] = len(buf) * wordsPerElem
	}
	recv := AlltoallVW(g, send, words, opt)
	*wp = words
	wordsPool.Put(wp)
	return recv
}

// AlltoallVW is the general form of AlltoallV: words[i] gives the
// machine-word size of the message for member i (which may differ from
// a per-element multiple, e.g. for the compact message scheme's
// segment-encoded buffers). A message is considered empty, for
// SkipEmpty purposes, when its buffer has no elements.
func AlltoallVW[T any](g Group, send [][]T, words []int, opt A2AOptions) [][]T {
	if done := commObserve(g.p, "alltoallv"); done != nil {
		defer done()
	}
	n := len(g.ranks)
	if len(send) != n || len(words) != n {
		panic("comm: AlltoallVW buffer/word count != group size")
	}
	recv := make([][]T, n)

	deliver := func(srcIdx int, payload any) {
		if payload != nil {
			recv[srcIdx] = payload.([]T)
		}
	}

	// The SkipEmpty probes ride SendFree, the zero-cost out-of-band
	// modelling channel, which the fault layer never injects into —
	// only the data messages go through the reliable transport.
	if opt.Naive {
		for i := 0; i < n; i++ {
			if opt.SkipEmpty {
				g.p.SendFree(g.ranks[i], tagA2AProbe, len(send[i]) > 0)
				if len(send[i]) == 0 {
					continue
				}
			}
			g.send(g.ranks[i], tagA2A, send[i], words[i])
		}
		for i := 0; i < n; i++ {
			if opt.SkipEmpty {
				probe, _ := g.p.Recv(g.ranks[i], tagA2AProbe)
				if !probe.(bool) {
					continue
				}
			}
			payload, _ := g.recv(g.ranks[i], tagA2A)
			deliver(i, payload)
		}
		return recv
	}

	for r := 0; r < n; r++ {
		dst := (g.me + r) % n
		src := (g.me - r + n) % n
		if opt.SkipEmpty {
			g.p.SendFree(g.ranks[dst], tagA2AProbe+r, len(send[dst]) > 0)
			if len(send[dst]) > 0 {
				g.send(g.ranks[dst], tagA2A+r, send[dst], words[dst])
			}
			probe, _ := g.p.Recv(g.ranks[src], tagA2AProbe+r)
			if probe.(bool) {
				payload, _ := g.recv(g.ranks[src], tagA2A+r)
				deliver(src, payload)
			}
			continue
		}
		g.send(g.ranks[dst], tagA2A+r, send[dst], words[dst])
		payload, _ := g.recv(g.ranks[src], tagA2A+r)
		deliver(src, payload)
	}
	return recv
}
