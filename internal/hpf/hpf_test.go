package hpf

import (
	"strings"
	"testing"

	"packunpack/internal/dist"
)

func TestParseDistBasic(t *testing.T) {
	l, err := ParseDist("CYCLIC(2) ONTO 4", 16)
	if err != nil {
		t.Fatal(err)
	}
	want := dist.Dim{N: 16, P: 4, W: 2}
	if l.Dims[0] != want {
		t.Fatalf("got %+v, want %+v", l.Dims[0], want)
	}
}

func TestParseDistTwoD(t *testing.T) {
	l, err := ParseDist("(CYCLIC, BLOCK) ONTO 2x4", 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if l.Dims[0] != (dist.Dim{N: 8, P: 2, W: 1}) {
		t.Fatalf("dim0 = %+v", l.Dims[0])
	}
	if l.Dims[1] != (dist.Dim{N: 32, P: 4, W: 8}) {
		t.Fatalf("dim1 = %+v", l.Dims[1])
	}
}

func TestParseDistSerialDim(t *testing.T) {
	l, err := ParseDist("BLOCK, * ONTO 4", 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l.Dims[1] != (dist.Dim{N: 5, P: 1, W: 5}) {
		t.Fatalf("serial dim = %+v", l.Dims[1])
	}
	if l.Procs() != 4 {
		t.Fatalf("Procs = %d", l.Procs())
	}
}

func TestParseDistCaseAndSpacing(t *testing.T) {
	for _, spec := range []string{
		"cyclic(2) onto 4",
		"  Cyclic( 2 )   ONTO   4 ",
		"(CYCLIC(2)) ONTO 4",
	} {
		l, err := ParseDist(spec, 16)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if l.Dims[0].W != 2 || l.Dims[0].P != 4 {
			t.Fatalf("%q parsed to %+v", spec, l.Dims[0])
		}
	}
}

func TestParseDistDefaultsToOneProc(t *testing.T) {
	l, err := ParseDist("BLOCK", 12)
	if err != nil {
		t.Fatal(err)
	}
	if l.Procs() != 1 {
		t.Fatalf("grid should default to 1, got %d", l.Procs())
	}
}

func TestParseDistErrors(t *testing.T) {
	cases := map[string][]int{
		"":                     {8},
		"FNORD ONTO 2":         {8},
		"CYCLIC(x) ONTO 2":     {8},
		"CYCLIC(0) ONTO 2":     {8},
		"BLOCK ONTO 0":         {8},
		"BLOCK ONTO 2x2":       {8},    // too many grid extents
		"BLOCK, CYCLIC ONTO 2": {8, 8}, // too few grid extents
		"BLOCK ONTO 2":         {8, 8}, // rank mismatch
		"CYCLIC(3) ONTO 2":     {8},    // violates divisibility (strict)
		"BLOCK ONTO huh":       {8},
	}
	for spec, shape := range cases {
		if _, err := ParseDist(spec, shape...); err == nil {
			t.Errorf("ParseDist(%q, %v) accepted", spec, shape)
		}
	}
}

func TestParseDistGeneralAllowsNonDivisible(t *testing.T) {
	gl, err := ParseDistGeneral("CYCLIC(3) ONTO 2", 8)
	if err != nil {
		t.Fatal(err)
	}
	if gl.Dims[0] != (dist.Dim{N: 8, P: 2, W: 3}) {
		t.Fatalf("got %+v", gl.Dims[0])
	}
	if _, err := ParseDistGeneral("BOGUS", 8); err == nil {
		t.Fatal("bad spec accepted by general parser")
	}
}

func TestBlockComputesCeil(t *testing.T) {
	gl, err := ParseDistGeneral("BLOCK ONTO 3", 10)
	if err != nil {
		t.Fatal(err)
	}
	if gl.Dims[0].W != 4 { // ceil(10/3)
		t.Fatalf("BLOCK W = %d, want 4", gl.Dims[0].W)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	specs := []struct {
		spec  string
		shape []int
	}{
		{"CYCLIC(2) ONTO 4", []int{16}},
		{"CYCLIC, BLOCK ONTO 2x4", []int{8, 32}},
		{"BLOCK, * ONTO 4", []int{16, 5}},
	}
	for _, tc := range specs {
		l, err := ParseDist(tc.spec, tc.shape...)
		if err != nil {
			t.Fatalf("%q: %v", tc.spec, err)
		}
		formatted := Format(l.Dims)
		l2, err := ParseDist(formatted, tc.shape...)
		if err != nil {
			t.Fatalf("Format(%q) = %q does not reparse: %v", tc.spec, formatted, err)
		}
		for i := range l.Dims {
			if l.Dims[i] != l2.Dims[i] {
				t.Fatalf("%q -> %q changed dim %d: %+v vs %+v", tc.spec, formatted, i, l.Dims[i], l2.Dims[i])
			}
		}
		if !strings.Contains(formatted, "ONTO") == (l.Procs() > 1) {
			t.Fatalf("Format(%q) = %q grid rendering odd", tc.spec, formatted)
		}
	}
}
