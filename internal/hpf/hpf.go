// Package hpf parses HPF-style DISTRIBUTE directives into layouts —
// the front-end notation a data-parallel compiler would hand to this
// runtime. The paper targets exactly this setting (its venue is a
// special issue on compilation techniques for distributed memory
// systems): PACK/UNPACK are compiled against arrays annotated with
//
//	!HPF$ DISTRIBUTE A(CYCLIC(2), BLOCK) ONTO G
//
// The accepted grammar, case-insensitive, is
//
//	spec  := dist {"," dist} ["ONTO" grid]
//	dist  := "BLOCK" | "CYCLIC" | "CYCLIC(" int ")" | "*"
//	grid  := int {"x" int}
//
// with one dist entry per array dimension, dimension 0 (the
// fastest-varying, Fortran's first) first. "*" keeps a dimension on a
// single processor. The grid defaults to one processor along every
// distributed dimension being unspecified — callers normally pass it.
package hpf

import (
	"fmt"
	"strconv"
	"strings"

	"packunpack/internal/dist"
)

// dimSpec is one parsed distribution directive.
type dimSpec struct {
	kind string // "block", "cyclic", "serial"
	w    int    // block size for cyclic(k); 0 for block/cyclic/serial
}

// parseSpec splits the directive into per-dimension specs and the ONTO
// grid (nil if absent).
func parseSpec(spec string) ([]dimSpec, []int, error) {
	s := strings.TrimSpace(spec)
	var gridPart string
	if i := strings.Index(strings.ToUpper(s), "ONTO"); i >= 0 {
		gridPart = strings.TrimSpace(s[i+len("ONTO"):])
		s = strings.TrimSpace(s[:i])
	}
	// Strip one pair of enclosing parentheses, but only if the opening
	// one really matches the final character ("(CYCLIC(2), BLOCK)" is
	// wrapped; "CYCLIC(2)" is not).
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		depth := 0
		wrapped := true
		for i, r := range s {
			switch r {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 && i != len(s)-1 {
					wrapped = false
				}
			}
		}
		if wrapped {
			s = strings.TrimSpace(s[1 : len(s)-1])
		}
	}
	if strings.TrimSpace(s) == "" {
		return nil, nil, fmt.Errorf("hpf: empty distribution spec")
	}

	var dims []dimSpec
	depth := 0
	start := 0
	parts := []string{}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])

	for _, part := range parts {
		p := strings.ToUpper(strings.TrimSpace(part))
		switch {
		case p == "BLOCK":
			dims = append(dims, dimSpec{kind: "block"})
		case p == "CYCLIC":
			dims = append(dims, dimSpec{kind: "cyclic", w: 1})
		case p == "*":
			dims = append(dims, dimSpec{kind: "serial"})
		case strings.HasPrefix(p, "CYCLIC(") && strings.HasSuffix(p, ")"):
			arg := strings.TrimSpace(p[len("CYCLIC(") : len(p)-1])
			w, err := strconv.Atoi(arg)
			if err != nil || w <= 0 {
				return nil, nil, fmt.Errorf("hpf: bad CYCLIC block size %q", arg)
			}
			dims = append(dims, dimSpec{kind: "cyclic", w: w})
		default:
			return nil, nil, fmt.Errorf("hpf: unknown distribution %q (want BLOCK, CYCLIC, CYCLIC(k) or *)", strings.TrimSpace(part))
		}
	}

	var grid []int
	if gridPart != "" {
		for _, tok := range strings.Split(strings.ToLower(gridPart), "x") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v <= 0 {
				return nil, nil, fmt.Errorf("hpf: bad grid extent %q", tok)
			}
			grid = append(grid, v)
		}
	}
	return dims, grid, nil
}

// buildDims resolves the parsed specs against the array shape and
// processor grid into concrete Dim values.
func buildDims(specs []dimSpec, grid, shape []int) ([]dist.Dim, error) {
	if len(specs) != len(shape) {
		return nil, fmt.Errorf("hpf: %d distribution entries for a rank-%d array", len(specs), len(shape))
	}
	// Assign grid extents to the distributed (non-serial) dimensions
	// in order.
	distributed := 0
	for _, sp := range specs {
		if sp.kind != "serial" {
			distributed++
		}
	}
	if grid == nil {
		grid = make([]int, distributed)
		for i := range grid {
			grid[i] = 1
		}
	}
	if len(grid) != distributed {
		return nil, fmt.Errorf("hpf: ONTO grid has %d extents for %d distributed dimensions", len(grid), distributed)
	}
	dims := make([]dist.Dim, len(specs))
	gi := 0
	for i, sp := range specs {
		n := shape[i]
		switch sp.kind {
		case "serial":
			dims[i] = dist.Dim{N: n, P: 1, W: n}
		case "block":
			p := grid[gi]
			gi++
			w := (n + p - 1) / p
			dims[i] = dist.Dim{N: n, P: p, W: w}
		case "cyclic":
			p := grid[gi]
			gi++
			dims[i] = dist.Dim{N: n, P: p, W: sp.w}
		}
	}
	return dims, nil
}

// ParseDist parses a DISTRIBUTE directive against a global array shape
// (dimension 0 first) into a strict layout; the paper's divisibility
// assumptions must hold or an error is returned (use ParseDistGeneral
// otherwise).
func ParseDist(spec string, shape ...int) (*dist.Layout, error) {
	specs, grid, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	dims, err := buildDims(specs, grid, shape)
	if err != nil {
		return nil, err
	}
	return dist.NewLayout(dims...)
}

// ParseDistGeneral is ParseDist without the divisibility assumptions:
// the result is a ragged GeneralLayout usable with PackGeneral and
// UnpackGeneral.
func ParseDistGeneral(spec string, shape ...int) (*dist.GeneralLayout, error) {
	specs, grid, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	dims, err := buildDims(specs, grid, shape)
	if err != nil {
		return nil, err
	}
	return dist.NewGeneralLayout(dims...)
}

// Format renders a layout back into directive notation (a debugging
// aid; Format(ParseDist(s)) is normalized, not byte-identical).
func Format(dims []dist.Dim) string {
	parts := make([]string, len(dims))
	var grid []string
	for i, d := range dims {
		switch {
		case d.P == 1:
			parts[i] = "*"
			continue
		case d.W == 1:
			parts[i] = "CYCLIC"
		case d.W*d.P >= d.N:
			parts[i] = "BLOCK"
		default:
			parts[i] = fmt.Sprintf("CYCLIC(%d)", d.W)
		}
		grid = append(grid, strconv.Itoa(d.P))
	}
	s := strings.Join(parts, ", ")
	if len(grid) > 0 {
		s += " ONTO " + strings.Join(grid, "x")
	}
	return s
}
