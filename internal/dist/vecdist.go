package dist

import "fmt"

// VectorDist describes a general block-cyclic distribution of a 1-D
// vector of Size elements over P processors with block size W, without
// any divisibility requirements: global index r belongs to block r/W,
// block b lives on processor b mod P, and the trailing block may be
// partial.
//
// The paper fixes the PACK result vector (and the UNPACK input vector)
// to block distribution — VectorDist with W = ceil(Size/P) — but
// Section 6.2 observes that the compact message scheme degrades when
// the result vector is distributed with smaller blocks ("the number of
// segments will increase as the block size of the result vector
// decreases"). This type makes that configurable so the effect can be
// measured.
type VectorDist struct {
	Size int
	P    int
	W    int
}

// NewVectorDist validates and builds a vector distribution. w == 0
// selects the paper's default block distribution (W = ceil(Size/P);
// a singleton block for an empty vector).
func NewVectorDist(size, p, w int) (VectorDist, error) {
	if size < 0 {
		return VectorDist{}, fmt.Errorf("dist: vector size must be >= 0, got %d", size)
	}
	if p <= 0 {
		return VectorDist{}, fmt.Errorf("dist: vector P must be positive, got %d", p)
	}
	if w < 0 {
		return VectorDist{}, fmt.Errorf("dist: vector W must be >= 0, got %d", w)
	}
	if w == 0 {
		w = (size + p - 1) / p
		if w == 0 {
			w = 1
		}
	}
	return VectorDist{Size: size, P: p, W: w}, nil
}

// Block reports whether the distribution is the paper's default block
// partitioning (every processor owns at most one block).
func (v VectorDist) Block() bool { return v.W*v.P >= v.Size }

// Owner returns the processor owning global index r and the local
// index there.
func (v VectorDist) Owner(r int) (rank, local int) {
	if r < 0 || r >= v.Size {
		panic(fmt.Sprintf("dist: vector index %d out of range [0,%d)", r, v.Size))
	}
	b := r / v.W
	return b % v.P, (b/v.P)*v.W + r%v.W
}

// ToGlobal maps (rank, local index) back to the global index.
func (v VectorDist) ToGlobal(rank, local int) int {
	tile := local / v.W
	return (tile*v.P+rank)*v.W + local%v.W
}

// LocalLen returns the number of elements processor rank owns.
func (v VectorDist) LocalLen(rank int) int {
	if v.Size == 0 {
		return 0
	}
	fullBlocks := v.Size / v.W
	rem := v.Size % v.W
	// Processor rank owns blocks rank, rank+P, rank+2P, ... Among the
	// fullBlocks complete blocks, it owns:
	n := (fullBlocks - rank + v.P - 1) / v.P * v.W
	if n < 0 {
		n = 0
	}
	// The trailing partial block (index fullBlocks) adds rem elements
	// to its owner.
	if rem > 0 && fullBlocks%v.P == rank {
		n += rem
	}
	return n
}

// BlockRunEnd returns the smallest global index s > r such that
// indices r and s live on different processors — i.e. the exclusive
// end of the contiguous same-owner run containing r. Consecutive ranks
// in [r, BlockRunEnd(r)) form a single segment of the compact message
// scheme.
func (v VectorDist) BlockRunEnd(r int) int {
	end := (r/v.W + 1) * v.W
	if end > v.Size {
		end = v.Size
	}
	return end
}
