package dist

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestValidateRelaxed(t *testing.T) {
	if err := (Dim{N: 17, P: 4, W: 2}).ValidateRelaxed(); err != nil {
		t.Errorf("non-divisible dimension rejected: %v", err)
	}
	if err := (Dim{N: 17, P: 4, W: 200}).ValidateRelaxed(); err != nil {
		t.Errorf("oversize block rejected under relaxed rules: %v", err)
	}
	// Zero extents are legal under the relaxed rules (Fortran 90
	// zero-extent dimensions); everything else degenerate still fails.
	if err := (Dim{N: 0, P: 2, W: 3}).ValidateRelaxed(); err != nil {
		t.Errorf("zero-extent dimension rejected under relaxed rules: %v", err)
	}
	for _, d := range []Dim{{N: -1, P: 1, W: 1}, {N: 1, P: 0, W: 1}, {N: 1, P: 1, W: 0}} {
		if err := d.ValidateRelaxed(); err == nil {
			t.Errorf("degenerate dimension %+v accepted", d)
		}
	}
}

func TestLocalLenAtPartitions(t *testing.T) {
	dims := []Dim{
		{N: 17, P: 4, W: 2},
		{N: 10, P: 4, W: 8},
		{N: 29, P: 3, W: 4},
		{N: 16, P: 4, W: 2}, // divisible: uniform
		{N: 1, P: 5, W: 3},
	}
	for _, d := range dims {
		total := 0
		counts := make([]int, d.P)
		for g := 0; g < d.N; g++ {
			proc, local := d.ToLocal(g)
			counts[proc]++
			if back := d.ToGlobal(proc, local); back != g {
				t.Fatalf("%+v: ToGlobal(ToLocal(%d)) = %d", d, g, back)
			}
		}
		for coord := 0; coord < d.P; coord++ {
			if got := d.LocalLenAt(coord); got != counts[coord] {
				t.Fatalf("%+v: LocalLenAt(%d) = %d, actual ownership %d", d, coord, got, counts[coord])
			}
			total += counts[coord]
		}
		if total != d.N {
			t.Fatalf("%+v: ownership not a partition", d)
		}
	}
}

func TestLocalLenAtMatchesUniformCase(t *testing.T) {
	d := Dim{N: 24, P: 4, W: 2}
	for coord := 0; coord < 4; coord++ {
		if d.LocalLenAt(coord) != d.L() {
			t.Fatalf("divisible dimension should be uniform")
		}
	}
}

func TestPadded(t *testing.T) {
	d := Dim{N: 17, P: 4, W: 2}
	pd := d.Padded()
	if pd.N != 24 { // ceil(17/8)*8
		t.Fatalf("Padded N = %d, want 24", pd.N)
	}
	if err := pd.Validate(); err != nil {
		t.Fatalf("padded dimension fails strict validation: %v", err)
	}
	// Owners and local indices of real elements are unchanged.
	for g := 0; g < d.N; g++ {
		p1, l1 := d.ToLocal(g)
		p2, l2 := pd.ToLocal(g)
		if p1 != p2 || l1 != l2 {
			t.Fatalf("padding moved element %d: (%d,%d) vs (%d,%d)", g, p1, l1, p2, l2)
		}
	}
	// Already-divisible dimensions are unchanged.
	u := Dim{N: 16, P: 4, W: 2}
	if u.Padded() != u {
		t.Fatalf("divisible dimension changed by Padded")
	}
}

func TestPaddedProperty(t *testing.T) {
	f := func(n uint16, p, w uint8) bool {
		d := Dim{N: int(n%300) + 1, P: int(p%6) + 1, W: int(w%9) + 1}
		pd := d.Padded()
		if pd.Validate() != nil || pd.N < d.N || pd.N%pd.S() != 0 {
			return false
		}
		return pd.N-d.N < d.S()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralLayoutScatterGather(t *testing.T) {
	layouts := []*GeneralLayout{
		MustGeneralLayout(Dim{N: 17, P: 4, W: 2}),
		MustGeneralLayout(Dim{N: 7, P: 2, W: 2}, Dim{N: 10, P: 3, W: 2}),
		MustGeneralLayout(Dim{N: 5, P: 2, W: 1}, Dim{N: 4, P: 3, W: 2}, Dim{N: 3, P: 1, W: 2}),
	}
	for _, gl := range layouts {
		global := make([]int, gl.GlobalSize())
		for i := range global {
			global[i] = i * 13
		}
		locals := ScatterGeneral(gl, global)
		total := 0
		for r, loc := range locals {
			if len(loc) != gl.LocalSizeAt(r) {
				t.Fatalf("rank %d local size %d, want %d", r, len(loc), gl.LocalSizeAt(r))
			}
			total += len(loc)
		}
		if total != gl.GlobalSize() {
			t.Fatalf("locals cover %d of %d elements", total, gl.GlobalSize())
		}
		if back := GatherGeneral(gl, locals); !reflect.DeepEqual(back, global) {
			t.Fatalf("GatherGeneral(ScatterGeneral(x)) != x")
		}
	}
}

func TestGeneralLayoutErrors(t *testing.T) {
	if _, err := NewGeneralLayout(); err == nil {
		t.Error("empty general layout accepted")
	}
	if _, err := NewGeneralLayout(Dim{N: -1, P: 1, W: 1}); err == nil {
		t.Error("degenerate dimension accepted")
	}
	// A zero-extent dimension builds: the layout is empty everywhere
	// and pads to one full (all-padding) tile.
	gl := MustGeneralLayout(Dim{N: 0, P: 2, W: 3}, Dim{N: 4, P: 2, W: 2})
	if gl.GlobalSize() != 0 {
		t.Errorf("zero-extent layout GlobalSize = %d, want 0", gl.GlobalSize())
	}
	for r := 0; r < gl.Procs(); r++ {
		if n := gl.LocalSizeAt(r); n != 0 {
			t.Errorf("zero-extent layout rank %d owns %d elements, want 0", r, n)
		}
	}
	if padded := gl.Padded(); padded.Dims[0].N != 6 {
		t.Errorf("zero-extent dimension padded to N=%d, want one tile (6)", padded.Dims[0].N)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGeneralLayout did not panic")
		}
	}()
	MustGeneralLayout(Dim{N: -1, P: 1, W: 1})
}

func TestGeneralLayoutLocalShapes(t *testing.T) {
	gl := MustGeneralLayout(Dim{N: 7, P: 2, W: 2}, Dim{N: 10, P: 3, W: 2})
	// Dimension 0: blocks [0,1][2,3][4,5][6]; coord 0 owns blocks 0,2
	// (indices 0,1,4,5) = 4; coord 1 owns blocks 1,3 (2,3,6) = 3.
	// Dimension 1: blocks of 2 over 3 procs: coord 0 -> blocks 0,3
	// (0,1,6,7)=4; coord 1 -> blocks 1,4 (2,3,8,9)=4; coord 2 -> block
	// 2 (4,5)=2.
	wantShapes := map[int][]int{
		0: {4, 4}, 1: {3, 4},
		2: {4, 4}, 3: {3, 4},
		4: {4, 2}, 5: {3, 2},
	}
	for rank, want := range wantShapes {
		if got := gl.LocalShapeAt(rank); !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d shape %v, want %v", rank, got, want)
		}
	}
}
