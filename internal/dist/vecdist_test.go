package dist

import (
	"testing"
	"testing/quick"
)

func TestVectorDistDefaultIsBlock(t *testing.T) {
	v, err := NewVectorDist(10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.W != 3 {
		t.Fatalf("default W = %d, want ceil(10/4)=3", v.W)
	}
	if !v.Block() {
		t.Fatal("default distribution should be block")
	}
	// Must agree with the legacy BlockVector.
	bv, _ := NewBlockVector(10, 4)
	for r := 0; r < 10; r++ {
		wr, wl := bv.Owner(r)
		gr, gl := v.Owner(r)
		if wr != gr || wl != gl {
			t.Fatalf("index %d: VectorDist (%d,%d) vs BlockVector (%d,%d)", r, gr, gl, wr, wl)
		}
	}
	for rank := 0; rank < 4; rank++ {
		if v.LocalLen(rank) != bv.LocalLen(rank) {
			t.Fatalf("rank %d: LocalLen %d vs %d", rank, v.LocalLen(rank), bv.LocalLen(rank))
		}
	}
}

func TestVectorDistEmpty(t *testing.T) {
	v, err := NewVectorDist(0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		if v.LocalLen(rank) != 0 {
			t.Fatal("empty vector has no local elements")
		}
	}
}

func TestVectorDistValidation(t *testing.T) {
	if _, err := NewVectorDist(-1, 2, 0); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := NewVectorDist(4, 0, 0); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := NewVectorDist(4, 2, -1); err == nil {
		t.Error("negative W accepted")
	}
}

// TestVectorDistPartition: owner/local mapping is a bijection onto
// per-processor ranges of the advertised lengths, and ToGlobal inverts
// it, for a spread of awkward size/P/W combinations.
func TestVectorDistPartition(t *testing.T) {
	cases := []VectorDist{
		{Size: 17, P: 4, W: 1},
		{Size: 17, P: 4, W: 2},
		{Size: 17, P: 4, W: 3},
		{Size: 17, P: 4, W: 5}, // block with remainder
		{Size: 16, P: 4, W: 4}, // exact block
		{Size: 5, P: 8, W: 1},  // fewer elements than processors
		{Size: 1, P: 3, W: 7},
		{Size: 100, P: 7, W: 4},
	}
	for _, v := range cases {
		counts := make(map[int]map[int]bool)
		for r := 0; r < v.Size; r++ {
			rank, local := v.Owner(r)
			if rank < 0 || rank >= v.P {
				t.Fatalf("%+v: owner(%d) rank %d", v, r, rank)
			}
			if local < 0 || local >= v.LocalLen(rank) {
				t.Fatalf("%+v: owner(%d) local %d outside [0,%d)", v, r, local, v.LocalLen(rank))
			}
			if counts[rank] == nil {
				counts[rank] = map[int]bool{}
			}
			if counts[rank][local] {
				t.Fatalf("%+v: (rank,local)=(%d,%d) assigned twice", v, rank, local)
			}
			counts[rank][local] = true
			if back := v.ToGlobal(rank, local); back != r {
				t.Fatalf("%+v: ToGlobal(Owner(%d)) = %d", v, r, back)
			}
		}
		total := 0
		for rank := 0; rank < v.P; rank++ {
			total += v.LocalLen(rank)
		}
		if total != v.Size {
			t.Fatalf("%+v: local lengths sum to %d", v, total)
		}
	}
}

func TestVectorDistProperty(t *testing.T) {
	f := func(size uint16, p, w uint8) bool {
		v, err := NewVectorDist(int(size%500), int(p%8)+1, int(w%9))
		if err != nil {
			return false
		}
		total := 0
		for rank := 0; rank < v.P; rank++ {
			total += v.LocalLen(rank)
		}
		if total != v.Size {
			return false
		}
		for r := 0; r < v.Size; r++ {
			rank, local := v.Owner(r)
			if v.ToGlobal(rank, local) != r || local >= v.LocalLen(rank) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRunEnd(t *testing.T) {
	v := VectorDist{Size: 10, P: 2, W: 3}
	cases := map[int]int{0: 3, 1: 3, 2: 3, 3: 6, 5: 6, 6: 9, 8: 9, 9: 10}
	for r, want := range cases {
		if got := v.BlockRunEnd(r); got != want {
			t.Errorf("BlockRunEnd(%d) = %d, want %d", r, got, want)
		}
	}
	// Runs must never cross owners.
	for r := 0; r < v.Size; r++ {
		rank, _ := v.Owner(r)
		for s := r + 1; s < v.BlockRunEnd(r); s++ {
			if sr, _ := v.Owner(s); sr != rank {
				t.Fatalf("run containing %d crosses owners at %d", r, s)
			}
		}
	}
}
