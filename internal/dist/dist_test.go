package dist

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDimValidate(t *testing.T) {
	cases := []struct {
		d  Dim
		ok bool
	}{
		{Dim{N: 16, P: 4, W: 2}, true},
		{Dim{N: 16, P: 4, W: 4}, true},  // block
		{Dim{N: 16, P: 4, W: 1}, true},  // cyclic
		{Dim{N: 16, P: 1, W: 16}, true}, // serial dimension
		{Dim{N: 0, P: 4, W: 1}, false},
		{Dim{N: 16, P: 0, W: 1}, false},
		{Dim{N: 16, P: 4, W: 0}, false},
		{Dim{N: 16, P: 5, W: 1}, false}, // P does not divide N
		{Dim{N: 16, P: 4, W: 8}, false}, // W > L
		{Dim{N: 16, P: 4, W: 3}, false}, // W does not divide L
		{Dim{N: -4, P: 2, W: 1}, false},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.d, err, c.ok)
		}
	}
}

func TestDimDerivedQuantities(t *testing.T) {
	d := Dim{N: 24, P: 2, W: 3}
	if d.L() != 12 || d.S() != 6 || d.T() != 4 {
		t.Fatalf("L=%d S=%d T=%d", d.L(), d.S(), d.T())
	}
	if d.Block() || d.Cyclic() {
		t.Fatal("neither block nor cyclic expected")
	}
	if !(Dim{N: 8, P: 2, W: 4}).Block() {
		t.Fatal("W=L should be block")
	}
	if !(Dim{N: 8, P: 2, W: 1}).Cyclic() {
		t.Fatal("W=1 should be cyclic")
	}
}

// validDims used for property tests.
var validDims = []Dim{
	{N: 16, P: 4, W: 1},
	{N: 16, P: 4, W: 2},
	{N: 16, P: 4, W: 4},
	{N: 24, P: 2, W: 3},
	{N: 30, P: 3, W: 5},
	{N: 64, P: 8, W: 2},
	{N: 7, P: 7, W: 1},
	{N: 9, P: 1, W: 3},
}

func TestToLocalToGlobalInverse(t *testing.T) {
	for _, d := range validDims {
		if err := d.Validate(); err != nil {
			t.Fatalf("bad test dim %+v: %v", d, err)
		}
		seen := make(map[[2]int]bool)
		for g := 0; g < d.N; g++ {
			proc, local := d.ToLocal(g)
			if proc < 0 || proc >= d.P {
				t.Fatalf("%+v: owner of %d out of range: %d", d, g, proc)
			}
			if local < 0 || local >= d.L() {
				t.Fatalf("%+v: local of %d out of range: %d", d, g, local)
			}
			if back := d.ToGlobal(proc, local); back != g {
				t.Fatalf("%+v: ToGlobal(ToLocal(%d)) = %d", d, g, back)
			}
			key := [2]int{proc, local}
			if seen[key] {
				t.Fatalf("%+v: (proc,local) %v hit twice", d, key)
			}
			seen[key] = true
			if tile := d.TileOf(local); tile != local/d.W {
				t.Fatalf("TileOf(%d) = %d", local, tile)
			}
		}
		if len(seen) != d.N {
			t.Fatalf("%+v: ownership not a partition", d)
		}
	}
}

func TestBlockOwnershipIsContiguous(t *testing.T) {
	d := Dim{N: 20, P: 4, W: 5} // block
	for g := 0; g < d.N; g++ {
		proc, local := d.ToLocal(g)
		if proc != g/5 || local != g%5 {
			t.Fatalf("block dist wrong at %d: proc=%d local=%d", g, proc, local)
		}
	}
}

func TestCyclicOwnershipRoundRobin(t *testing.T) {
	d := Dim{N: 20, P: 4, W: 1}
	for g := 0; g < d.N; g++ {
		proc, local := d.ToLocal(g)
		if proc != g%4 || local != g/4 {
			t.Fatalf("cyclic dist wrong at %d: proc=%d local=%d", g, proc, local)
		}
	}
}

func testLayouts() []*Layout {
	return []*Layout{
		MustLayout(Dim{N: 16, P: 4, W: 2}),
		MustLayout(Dim{N: 8, P: 2, W: 1}, Dim{N: 6, P: 3, W: 2}),
		MustLayout(Dim{N: 4, P: 2, W: 2}, Dim{N: 4, P: 1, W: 1}, Dim{N: 6, P: 3, W: 1}),
	}
}

func TestLayoutRoundTrips(t *testing.T) {
	for _, l := range testLayouts() {
		n := l.GlobalSize()
		if l.LocalSize()*l.Procs() != n {
			t.Fatalf("%v: local*procs != global", l)
		}
		counts := make([]int, l.Procs())
		for pos := 0; pos < n; pos++ {
			g := l.UnflattenGlobal(pos)
			if back := l.FlattenGlobal(g); back != pos {
				t.Fatalf("%v: FlattenGlobal(UnflattenGlobal(%d)) = %d", l, pos, back)
			}
			rank, local := l.GlobalToLocal(g)
			counts[rank]++
			back := l.LocalToGlobal(rank, local)
			if !reflect.DeepEqual(back, g) {
				t.Fatalf("%v: LocalToGlobal(GlobalToLocal(%v)) = %v", l, g, back)
			}
			r2, lo2 := l.GlobalPosOwner(pos)
			if r2 != rank || lo2 != local {
				t.Fatalf("%v: GlobalPosOwner(%d) = (%d,%d), want (%d,%d)", l, pos, r2, lo2, rank, local)
			}
		}
		for rank, c := range counts {
			if c != l.LocalSize() {
				t.Fatalf("%v: rank %d owns %d elements, want %d", l, rank, c, l.LocalSize())
			}
		}
	}
}

func TestGridRankCoordsInverse(t *testing.T) {
	for _, l := range testLayouts() {
		for r := 0; r < l.Procs(); r++ {
			coords := l.GridCoords(r)
			if back := l.GridRank(coords); back != r {
				t.Fatalf("%v: GridRank(GridCoords(%d)) = %d", l, r, back)
			}
		}
	}
}

func TestFlattenLocalInverse(t *testing.T) {
	l := MustLayout(Dim{N: 8, P: 2, W: 2}, Dim{N: 6, P: 3, W: 1})
	for off := 0; off < l.LocalSize(); off++ {
		locals := l.UnflattenLocal(off)
		if back := l.FlattenLocal(locals); back != off {
			t.Fatalf("FlattenLocal(UnflattenLocal(%d)) = %d", off, back)
		}
	}
}

func TestSlices(t *testing.T) {
	l := MustLayout(Dim{N: 16, P: 4, W: 2}, Dim{N: 6, P: 3, W: 2})
	// T_0 = 16/(4*2) = 2 tiles, L_1 = 2, so C = 2*2 = 4.
	if got := l.Slices(); got != 4 {
		t.Fatalf("Slices = %d, want 4", got)
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(); err == nil {
		t.Error("empty layout accepted")
	}
	if _, err := NewLayout(Dim{N: 16, P: 5, W: 1}); err == nil {
		t.Error("invalid dimension accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLayout did not panic")
		}
	}()
	MustLayout(Dim{N: 16, P: 5, W: 1})
}

func TestLayoutString(t *testing.T) {
	l := MustLayout(Dim{N: 16, P: 4, W: 2}, Dim{N: 8, P: 2, W: 4})
	s := l.String()
	if s == "" || s[0] != '[' {
		t.Fatalf("odd String: %q", s)
	}
}

// TestGlobalPosOwnerProperty cross-checks the flat-position owner map
// against the per-dimension maps on random valid layouts, via
// testing/quick.
func TestGlobalPosOwnerProperty(t *testing.T) {
	layouts := testLayouts()
	f := func(layoutIdx uint, posSeed uint) bool {
		l := layouts[int(layoutIdx%uint(len(layouts)))]
		pos := int(posSeed % uint(l.GlobalSize()))
		rank, local := l.GlobalPosOwner(pos)
		// Reconstruct the global position from (rank, local).
		g := l.LocalToGlobal(rank, local)
		return l.FlattenGlobal(g) == pos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockVector(t *testing.T) {
	v, err := NewBlockVector(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.BlockSize() != 3 {
		t.Fatalf("BlockSize = %d, want 3", v.BlockSize())
	}
	wantLens := []int{3, 3, 3, 1}
	total := 0
	for r := 0; r < 4; r++ {
		if got := v.LocalLen(r); got != wantLens[r] {
			t.Fatalf("LocalLen(%d) = %d, want %d", r, got, wantLens[r])
		}
		total += v.LocalLen(r)
	}
	if total != 10 {
		t.Fatalf("local lengths sum to %d", total)
	}
	for r := 0; r < 10; r++ {
		rank, local := v.Owner(r)
		if v.Start(rank)+local != r {
			t.Fatalf("Owner(%d) inconsistent with Start", r)
		}
		if local >= v.LocalLen(rank) {
			t.Fatalf("Owner(%d) local %d out of the owner's range", r, local)
		}
	}
}

func TestBlockVectorEmpty(t *testing.T) {
	v, err := NewBlockVector(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.BlockSize() != 0 {
		t.Fatal("empty vector should have zero block size")
	}
	for r := 0; r < 4; r++ {
		if v.LocalLen(r) != 0 {
			t.Fatal("empty vector should have empty blocks")
		}
	}
}

func TestBlockVectorMoreProcsThanElements(t *testing.T) {
	v, _ := NewBlockVector(3, 8)
	// BlockSize 1: ranks 0..2 own one element, the rest none.
	total := 0
	for r := 0; r < 8; r++ {
		total += v.LocalLen(r)
	}
	if total != 3 {
		t.Fatalf("local lengths sum to %d, want 3", total)
	}
}

func TestBlockVectorErrors(t *testing.T) {
	if _, err := NewBlockVector(-1, 4); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := NewBlockVector(4, 0); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestScatterGatherInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, l := range testLayouts() {
		global := make([]int, l.GlobalSize())
		for i := range global {
			global[i] = rng.Int()
		}
		locals := Scatter(l, global)
		if len(locals) != l.Procs() {
			t.Fatalf("Scatter produced %d locals", len(locals))
		}
		for r, loc := range locals {
			if len(loc) != l.LocalSize() {
				t.Fatalf("rank %d local size %d", r, len(loc))
			}
		}
		back := Gather(l, locals)
		if !reflect.DeepEqual(back, global) {
			t.Fatalf("%v: Gather(Scatter(x)) != x", l)
		}
	}
}

func TestScatterLocalOrderMatchesLocalToGlobal(t *testing.T) {
	l := MustLayout(Dim{N: 8, P: 2, W: 2}, Dim{N: 4, P: 2, W: 1})
	global := make([]int, l.GlobalSize())
	for i := range global {
		global[i] = i
	}
	locals := Scatter(l, global)
	for r := 0; r < l.Procs(); r++ {
		for off, v := range locals[r] {
			g := l.LocalToGlobal(r, off)
			if want := l.FlattenGlobal(g); v != want {
				t.Fatalf("rank %d off %d: got %d, want %d", r, off, v, want)
			}
		}
	}
}
