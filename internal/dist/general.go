package dist

import "fmt"

// This file relaxes the paper's "for the sake of simplicity" divisibility
// assumptions (P_i | N_i, W_i | L_i). The block-cyclic index formulas of
// Dim.ToLocal/ToGlobal are already correct for arbitrary extents — what
// breaks without the assumptions is only the *uniformity* of the local
// arrays (processors own different numbers of elements, trailing blocks
// are partial), which the ranking algorithm needs. The pack package
// recovers uniformity by padding each dimension up to the next multiple
// of the tile size S_i = P_i*W_i and masking the padding out; padding
// sits at the end of every dimension, so the row-major order — and
// hence every rank — of the real elements is unchanged.

// ValidateRelaxed checks only that the dimension is well-formed
// (non-negative extent, positive processors and block size), without
// the paper's divisibility assumptions. A zero extent is legal here —
// Fortran 90 allows zero-extent dimensions, under which every
// processor owns nothing and PACK/UNPACK degenerate to empty results —
// though not in the strict Validate.
func (d Dim) ValidateRelaxed() error {
	switch {
	case d.N < 0:
		return fmt.Errorf("dist: N must be non-negative, got %d", d.N)
	case d.P <= 0:
		return fmt.Errorf("dist: P must be positive, got %d", d.P)
	case d.W <= 0:
		return fmt.Errorf("dist: W must be positive, got %d", d.W)
	}
	return nil
}

// LocalLenAt returns the number of indices of this dimension owned by
// processor coordinate coord, valid for arbitrary (non-divisible)
// extents.
func (d Dim) LocalLenAt(coord int) int {
	fullBlocks := d.N / d.W
	rem := d.N % d.W
	n := (fullBlocks - coord + d.P - 1) / d.P
	if n < 0 {
		n = 0
	}
	n *= d.W
	if rem > 0 && fullBlocks%d.P == coord {
		n += rem
	}
	return n
}

// Padded returns the dimension with its extent rounded up to the next
// multiple of the tile size S = P*W. The padded dimension always
// satisfies the paper's divisibility assumptions, and every index of
// the original dimension keeps its owner and local index. A
// zero-extent dimension pads to one full tile (all padding, every
// element masked out), so the strict validation downstream holds.
func (d Dim) Padded() Dim {
	s := d.S()
	n := (d.N + s - 1) / s * s
	if n == 0 {
		n = s
	}
	return Dim{N: n, P: d.P, W: d.W}
}

// GeneralLayout describes a rank-d array distributed block-cyclically
// with arbitrary extents (no divisibility requirements). Local arrays
// are ragged: their shape depends on the processor's grid coordinates.
type GeneralLayout struct {
	Dims []Dim
}

// NewGeneralLayout validates (relaxed rules) and builds a general
// layout, dimension 0 first.
func NewGeneralLayout(dims ...Dim) (*GeneralLayout, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dist: layout needs at least one dimension")
	}
	for i, d := range dims {
		if err := d.ValidateRelaxed(); err != nil {
			return nil, fmt.Errorf("dimension %d: %w", i, err)
		}
	}
	cp := make([]Dim, len(dims))
	copy(cp, dims)
	return &GeneralLayout{Dims: cp}, nil
}

// MustGeneralLayout is NewGeneralLayout for layouts known to be valid.
func MustGeneralLayout(dims ...Dim) *GeneralLayout {
	l, err := NewGeneralLayout(dims...)
	if err != nil {
		panic(err)
	}
	return l
}

// Rank returns the array rank d.
func (l *GeneralLayout) Rank() int { return len(l.Dims) }

// Procs returns the total processor count.
func (l *GeneralLayout) Procs() int {
	p := 1
	for _, d := range l.Dims {
		p *= d.P
	}
	return p
}

// GlobalSize returns N = prod N_i.
func (l *GeneralLayout) GlobalSize() int {
	n := 1
	for _, d := range l.Dims {
		n *= d.N
	}
	return n
}

// Padded returns the smallest uniform Layout containing this one:
// every dimension rounded up to a tile multiple. The result always
// passes the strict NewLayout validation.
func (l *GeneralLayout) Padded() *Layout {
	dims := make([]Dim, len(l.Dims))
	for i, d := range l.Dims {
		dims[i] = d.Padded()
	}
	return MustLayout(dims...)
}

// GridCoords converts a linear rank to grid coordinates (dimension 0
// fastest), as for Layout.
func (l *GeneralLayout) GridCoords(rank int) []int {
	if rank < 0 || rank >= l.Procs() {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, l.Procs()))
	}
	coords := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		coords[i] = rank % d.P
		rank /= d.P
	}
	return coords
}

// LocalShapeAt returns the ragged local shape (dimension 0 first) of
// the processor with the given rank.
func (l *GeneralLayout) LocalShapeAt(rank int) []int {
	coords := l.GridCoords(rank)
	shape := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		shape[i] = d.LocalLenAt(coords[i])
	}
	return shape
}

// LocalSizeAt returns the number of elements the processor with the
// given rank owns.
func (l *GeneralLayout) LocalSizeAt(rank int) int {
	n := 1
	for _, s := range l.LocalShapeAt(rank) {
		n *= s
	}
	return n
}

// GlobalToLocal maps global indices (dimension 0 first) to (owner
// rank, flat ragged-local offset). The flat offset is row-major over
// the owner's ragged local shape.
func (l *GeneralLayout) GlobalToLocal(global []int) (rank, local int) {
	if len(global) != len(l.Dims) {
		panic("dist: GlobalToLocal indices of wrong rank")
	}
	coords := make([]int, len(l.Dims))
	locals := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		coords[i], locals[i] = d.ToLocal(global[i])
	}
	rank = 0
	stride := 1
	for i, d := range l.Dims {
		rank += coords[i] * stride
		stride *= d.P
	}
	local = 0
	stride = 1
	for i, d := range l.Dims {
		local += locals[i] * stride
		stride *= d.LocalLenAt(coords[i])
	}
	return rank, local
}

// ScatterGeneral splits a flat row-major global array into ragged
// per-processor local arrays.
func ScatterGeneral[T any](l *GeneralLayout, global []T) [][]T {
	if len(global) != l.GlobalSize() {
		panic("dist: ScatterGeneral global buffer of wrong size")
	}
	out := make([][]T, l.Procs())
	for r := range out {
		out[r] = make([]T, l.LocalSizeAt(r))
	}
	walkGeneral(l, func(pos, rank, local int) {
		out[rank][local] = global[pos]
	})
	return out
}

// GatherGeneral is the inverse of ScatterGeneral.
func GatherGeneral[T any](l *GeneralLayout, locals [][]T) []T {
	if len(locals) != l.Procs() {
		panic("dist: GatherGeneral needs one local buffer per processor")
	}
	global := make([]T, l.GlobalSize())
	walkGeneral(l, func(pos, rank, local int) {
		global[pos] = locals[rank][local]
	})
	return global
}

func walkGeneral(l *GeneralLayout, visit func(pos, rank, local int)) {
	d := l.Rank()
	n := l.GlobalSize()
	global := make([]int, d)
	for pos := 0; pos < n; pos++ {
		rank, local := l.GlobalToLocal(global)
		visit(pos, rank, local)
		for i := 0; i < d; i++ {
			global[i]++
			if global[i] < l.Dims[i].N {
				break
			}
			global[i] = 0
		}
	}
}
