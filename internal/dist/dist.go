// Package dist implements the HPF-style block-cyclic data distribution
// arithmetic the paper assumes (Section 3).
//
// A rank-d array A of shape (N_{d-1}, ..., N_1, N_0) is distributed over
// a logical processor grid (P_{d-1}, ..., P_0) with block sizes
// (W_{d-1}, ..., W_0): along dimension i, global indices are grouped
// into blocks of W_i consecutive elements, and block b lives on the
// processor with coordinate b mod P_i. The paper's derived quantities:
//
//	L_i = N_i / P_i          local extent along dimension i
//	S_i = P_i * W_i          tile size (P_i consecutive blocks)
//	T_i = N_i / S_i = L_i/W_i  tiles = blocks per processor
//
// Indexing is row-major with dimension 0 fastest-varying, and all
// indices start from zero, matching the paper: the position of element
// A(i_{d-1},...,i_0) is sum_i i_i * prod_{k<i} N_k.
package dist

import (
	"fmt"
)

// Dim describes the distribution of one array dimension.
type Dim struct {
	N int // global extent
	P int // processors along this dimension
	W int // block size, 1 <= W <= N/P
}

// Validate checks the paper's divisibility assumptions for dimension i:
// P | N, W | (N/P) (hence P*W | N). The algorithms in this module rely
// on them just as the paper does "for the sake of simplicity".
func (d Dim) Validate() error {
	switch {
	case d.N <= 0:
		return fmt.Errorf("dist: N must be positive, got %d", d.N)
	case d.P <= 0:
		return fmt.Errorf("dist: P must be positive, got %d", d.P)
	case d.W <= 0:
		return fmt.Errorf("dist: W must be positive, got %d", d.W)
	case d.N%d.P != 0:
		return fmt.Errorf("dist: P=%d does not divide N=%d", d.P, d.N)
	case d.W > d.N/d.P:
		return fmt.Errorf("dist: W=%d exceeds local size N/P=%d", d.W, d.N/d.P)
	case (d.N/d.P)%d.W != 0:
		return fmt.Errorf("dist: W=%d does not divide local size N/P=%d", d.W, d.N/d.P)
	}
	return nil
}

// L returns the local extent N/P.
func (d Dim) L() int { return d.N / d.P }

// S returns the tile size P*W.
func (d Dim) S() int { return d.P * d.W }

// T returns the number of tiles N/(P*W), which equals the number of
// blocks each processor owns along this dimension.
func (d Dim) T() int { return d.N / (d.P * d.W) }

// Block returns true if the dimension is block-distributed (one block
// per processor, W = L).
func (d Dim) Block() bool { return d.W == d.L() }

// Cyclic returns true if the dimension is cyclically distributed (W=1).
func (d Dim) Cyclic() bool { return d.W == 1 }

// ToLocal maps a global index along this dimension to the owning
// processor coordinate and the local index on that processor.
func (d Dim) ToLocal(g int) (proc, local int) {
	b := g / d.W   // global block number
	proc = b % d.P // owner coordinate
	t := b / d.P   // tile number
	w := g % d.W   // offset within the block
	return proc, t*d.W + w
}

// ToGlobal maps (processor coordinate, local index) back to the global
// index. It is the inverse of ToLocal.
func (d Dim) ToGlobal(proc, local int) int {
	t := local / d.W // tile number
	w := local % d.W // offset within the block
	return t*d.S() + proc*d.W + w
}

// TileOf returns the tile number a local index belongs to (local/W).
func (d Dim) TileOf(local int) int { return local / d.W }

// Layout describes the distribution of a rank-d array over a logical
// processor grid. Dims[0] is dimension 0 (fastest-varying), matching
// the paper's (N_{d-1}, ..., N_1, N_0) notation read right to left.
type Layout struct {
	Dims []Dim
}

// NewLayout validates and builds a layout from per-dimension specs,
// given in order dimension 0 first.
func NewLayout(dims ...Dim) (*Layout, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dist: layout needs at least one dimension")
	}
	for i, d := range dims {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("dimension %d: %w", i, err)
		}
	}
	cp := make([]Dim, len(dims))
	copy(cp, dims)
	return &Layout{Dims: cp}, nil
}

// MustLayout is NewLayout for layouts known to be valid.
func MustLayout(dims ...Dim) *Layout {
	l, err := NewLayout(dims...)
	if err != nil {
		panic(err)
	}
	return l
}

// Rank returns the array rank d.
func (l *Layout) Rank() int { return len(l.Dims) }

// Procs returns the total processor count P = prod P_i.
func (l *Layout) Procs() int {
	p := 1
	for _, d := range l.Dims {
		p *= d.P
	}
	return p
}

// GlobalSize returns N = prod N_i.
func (l *Layout) GlobalSize() int {
	n := 1
	for _, d := range l.Dims {
		n *= d.N
	}
	return n
}

// LocalSize returns L = prod L_i, the number of elements per processor.
func (l *Layout) LocalSize() int {
	n := 1
	for _, d := range l.Dims {
		n *= d.L()
	}
	return n
}

// LocalShape returns (L_0, ..., L_{d-1}), dimension 0 first.
func (l *Layout) LocalShape() []int {
	s := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		s[i] = d.L()
	}
	return s
}

// GridShape returns (P_0, ..., P_{d-1}), dimension 0 first.
func (l *Layout) GridShape() []int {
	s := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		s[i] = d.P
	}
	return s
}

// Slices returns C, the number of W_0-sized slices per processor:
// (prod_{i>0} L_i) * T_0. The slice is the unit of the paper's local
// scans: W_0 contiguous local elements within one tile of dimension 0.
func (l *Layout) Slices() int {
	c := l.Dims[0].T()
	for _, d := range l.Dims[1:] {
		c *= d.L()
	}
	return c
}

// GridRank flattens processor-grid coordinates (coordinate for
// dimension 0 first) into a linear rank; dimension 0 varies fastest.
func (l *Layout) GridRank(coords []int) int {
	if len(coords) != len(l.Dims) {
		panic("dist: GridRank coords of wrong rank")
	}
	rank := 0
	stride := 1
	for i, d := range l.Dims {
		c := coords[i]
		if c < 0 || c >= d.P {
			panic(fmt.Sprintf("dist: coordinate %d out of range [0,%d)", c, d.P))
		}
		rank += c * stride
		stride *= d.P
	}
	return rank
}

// GridCoords is the inverse of GridRank.
func (l *Layout) GridCoords(rank int) []int {
	if rank < 0 || rank >= l.Procs() {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, l.Procs()))
	}
	coords := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		coords[i] = rank % d.P
		rank /= d.P
	}
	return coords
}

// GlobalToLocal maps global array indices (dimension 0 first) to the
// owning processor rank and its flat local offset.
func (l *Layout) GlobalToLocal(global []int) (rank, local int) {
	if len(global) != len(l.Dims) {
		panic("dist: GlobalToLocal indices of wrong rank")
	}
	coords := make([]int, len(l.Dims))
	locals := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		coords[i], locals[i] = d.ToLocal(global[i])
	}
	return l.GridRank(coords), l.FlattenLocal(locals)
}

// LocalToGlobal maps (processor rank, flat local offset) to global
// array indices (dimension 0 first).
func (l *Layout) LocalToGlobal(rank, local int) []int {
	coords := l.GridCoords(rank)
	locals := l.UnflattenLocal(local)
	global := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		global[i] = d.ToGlobal(coords[i], locals[i])
	}
	return global
}

// FlattenLocal converts per-dimension local indices to a flat row-major
// offset (dimension 0 fastest).
func (l *Layout) FlattenLocal(locals []int) int {
	off := 0
	stride := 1
	for i, d := range l.Dims {
		li := locals[i]
		if li < 0 || li >= d.L() {
			panic(fmt.Sprintf("dist: local index %d out of range [0,%d)", li, d.L()))
		}
		off += li * stride
		stride *= d.L()
	}
	return off
}

// UnflattenLocal is the inverse of FlattenLocal.
func (l *Layout) UnflattenLocal(off int) []int {
	locals := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		locals[i] = off % d.L()
		off /= d.L()
	}
	return locals
}

// FlattenGlobal converts global indices (dimension 0 first) to the
// row-major global position used for ranking order.
func (l *Layout) FlattenGlobal(global []int) int {
	off := 0
	stride := 1
	for i, d := range l.Dims {
		gi := global[i]
		if gi < 0 || gi >= d.N {
			panic(fmt.Sprintf("dist: global index %d out of range [0,%d)", gi, d.N))
		}
		off += gi * stride
		stride *= d.N
	}
	return off
}

// UnflattenGlobal is the inverse of FlattenGlobal.
func (l *Layout) UnflattenGlobal(pos int) []int {
	global := make([]int, len(l.Dims))
	for i, d := range l.Dims {
		global[i] = pos % d.N
		pos /= d.N
	}
	return global
}

// GlobalPosOwner maps a flat global row-major position directly to
// (owner rank, flat local offset). It is GlobalToLocal composed with
// UnflattenGlobal.
func (l *Layout) GlobalPosOwner(pos int) (rank, local int) {
	return l.GlobalToLocal(l.UnflattenGlobal(pos))
}

// String renders the layout in HPF-like notation.
func (l *Layout) String() string {
	s := "["
	for i := len(l.Dims) - 1; i >= 0; i-- {
		d := l.Dims[i]
		s += fmt.Sprintf("%d:cyclic(%d)x%d", d.N, d.W, d.P)
		if i > 0 {
			s += ", "
		}
	}
	return s + "]"
}

// BlockVector describes the paper's fixed distribution for the result
// vector V of PACK (and the input vector of UNPACK): plain block
// partitioning of Size elements over P processors, with block size
// ceil(Size/P). The final processors may own fewer (or zero) elements.
type BlockVector struct {
	Size int
	P    int
}

// NewBlockVector builds a block vector descriptor. Size may be zero
// (an empty mask packs to an empty vector).
func NewBlockVector(size, p int) (BlockVector, error) {
	if size < 0 {
		return BlockVector{}, fmt.Errorf("dist: vector size must be >= 0, got %d", size)
	}
	if p <= 0 {
		return BlockVector{}, fmt.Errorf("dist: vector P must be positive, got %d", p)
	}
	return BlockVector{Size: size, P: p}, nil
}

// BlockSize returns ceil(Size/P), the elements per processor (except
// possibly the last non-empty one). Zero for an empty vector.
func (v BlockVector) BlockSize() int {
	if v.Size == 0 {
		return 0
	}
	return (v.Size + v.P - 1) / v.P
}

// Owner returns the processor owning global vector index r and the
// local index there.
func (v BlockVector) Owner(r int) (rank, local int) {
	if r < 0 || r >= v.Size {
		panic(fmt.Sprintf("dist: vector index %d out of range [0,%d)", r, v.Size))
	}
	b := v.BlockSize()
	return r / b, r % b
}

// LocalLen returns the number of vector elements processor rank owns.
func (v BlockVector) LocalLen(rank int) int {
	b := v.BlockSize()
	if b == 0 {
		return 0
	}
	start := rank * b
	if start >= v.Size {
		return 0
	}
	end := start + b
	if end > v.Size {
		end = v.Size
	}
	return end - start
}

// Start returns the first global index owned by rank (meaningful only
// when LocalLen(rank) > 0).
func (v BlockVector) Start(rank int) int { return rank * v.BlockSize() }
