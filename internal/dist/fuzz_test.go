package dist

import "testing"

// FuzzDimRoundTrip fuzzes the per-dimension block-cyclic maps under
// the relaxed (no divisibility) rules: ToGlobal(ToLocal(g)) == g and
// locals stay within the advertised ragged lengths.
func FuzzDimRoundTrip(f *testing.F) {
	f.Add(16, 4, 2, 7)
	f.Add(17, 4, 2, 16)
	f.Add(1, 1, 1, 0)
	f.Add(1000, 7, 13, 999)
	f.Fuzz(func(t *testing.T, n, p, w, g int) {
		n = n%2000 + 1
		if n < 1 {
			n = 1
		}
		p = p%16 + 1
		if p < 1 {
			p = 1
		}
		w = w%32 + 1
		if w < 1 {
			w = 1
		}
		d := Dim{N: n, P: p, W: w}
		if err := d.ValidateRelaxed(); err != nil {
			t.Skip()
		}
		g = ((g % n) + n) % n
		proc, local := d.ToLocal(g)
		if proc < 0 || proc >= p {
			t.Fatalf("dim %+v: owner(%d) = %d", d, g, proc)
		}
		if local < 0 || local >= d.LocalLenAt(proc) {
			t.Fatalf("dim %+v: local(%d) = %d outside [0,%d)", d, g, local, d.LocalLenAt(proc))
		}
		if back := d.ToGlobal(proc, local); back != g {
			t.Fatalf("dim %+v: round trip %d -> %d", d, g, back)
		}
		pd := d.Padded()
		if err := pd.Validate(); err != nil {
			t.Fatalf("padded dim %+v invalid: %v", pd, err)
		}
		p2, l2 := pd.ToLocal(g)
		if p2 != proc || l2 != local {
			t.Fatalf("padding moved element %d", g)
		}
	})
}

// FuzzVectorDist fuzzes the remainder-tolerant vector distribution.
func FuzzVectorDist(f *testing.F) {
	f.Add(10, 4, 0, 9)
	f.Add(17, 4, 3, 0)
	f.Add(1, 8, 1, 0)
	f.Fuzz(func(t *testing.T, size, p, w, r int) {
		size = ((size % 500) + 500) % 500
		p = p%12 + 1
		if p < 1 {
			p = 1
		}
		w = ((w % 9) + 9) % 9
		v, err := NewVectorDist(size, p, w)
		if err != nil {
			t.Skip()
		}
		total := 0
		for rank := 0; rank < v.P; rank++ {
			total += v.LocalLen(rank)
		}
		if total != v.Size {
			t.Fatalf("%+v: local lengths sum to %d", v, total)
		}
		if size == 0 {
			return
		}
		r = ((r % size) + size) % size
		rank, local := v.Owner(r)
		if v.ToGlobal(rank, local) != r {
			t.Fatalf("%+v: round trip failed at %d", v, r)
		}
		end := v.BlockRunEnd(r)
		if end <= r || end > v.Size {
			t.Fatalf("%+v: BlockRunEnd(%d) = %d", v, r, end)
		}
		for s := r; s < end; s++ {
			if sr, _ := v.Owner(s); sr != rank {
				t.Fatalf("%+v: run from %d crosses owners at %d", v, r, s)
			}
		}
	})
}
