package dist

// Scatter splits a flat row-major global array into the per-processor
// local arrays induced by the layout: result[r] is processor r's local
// buffer in local row-major order. It is a test/setup helper — the
// emulated processors exchange data through the machine, not through
// this function.
func Scatter[T any](l *Layout, global []T) [][]T {
	if len(global) != l.GlobalSize() {
		panic("dist: Scatter global buffer of wrong size")
	}
	out := make([][]T, l.Procs())
	for r := range out {
		out[r] = make([]T, l.LocalSize())
	}
	walkOwners(l, func(pos, rank, local int) {
		out[rank][local] = global[pos]
	})
	return out
}

// Gather is the inverse of Scatter: it reassembles the flat global
// array from per-processor local buffers.
func Gather[T any](l *Layout, locals [][]T) []T {
	if len(locals) != l.Procs() {
		panic("dist: Gather needs one local buffer per processor")
	}
	global := make([]T, l.GlobalSize())
	walkOwners(l, func(pos, rank, local int) {
		global[pos] = locals[rank][local]
	})
	return global
}

// walkOwners visits every global position in row-major order together
// with its (owner rank, local offset) pair, using incremental odometer
// arithmetic instead of per-element map calls.
func walkOwners(l *Layout, visit func(pos, rank, local int)) {
	d := l.Rank()
	n := l.GlobalSize()
	global := make([]int, d)
	coords := make([]int, d)
	locals := make([]int, d)
	for pos := 0; pos < n; pos++ {
		for i := 0; i < d; i++ {
			coords[i], locals[i] = l.Dims[i].ToLocal(global[i])
		}
		visit(pos, l.GridRank(coords), l.FlattenLocal(locals))
		for i := 0; i < d; i++ {
			global[i]++
			if global[i] < l.Dims[i].N {
				break
			}
			global[i] = 0
		}
	}
}
