package transport

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
)

func TestBackendStringAndParse(t *testing.T) {
	cases := []struct {
		b Backend
		s string
	}{
		{BackendSim, "sim"},
		{BackendReal, "real"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.s {
			t.Errorf("Backend(%d).String() = %q, want %q", int(c.b), got, c.s)
		}
		b, err := ParseBackend(c.s)
		if err != nil || b != c.b {
			t.Errorf("ParseBackend(%q) = %v, %v, want %v, nil", c.s, b, err, c.b)
		}
	}
	if got := Backend(99).String(); got != "Backend(99)" {
		t.Errorf("unknown backend String() = %q", got)
	}
	if _, err := ParseBackend("cm5"); err == nil {
		t.Error("ParseBackend accepted an unknown backend name")
	}
}

func TestNewRejectsSimOnlyFeaturesOnReal(t *testing.T) {
	_, err := New(BackendReal, sim.Config{Procs: 2, Faults: &sim.FaultConfig{Seed: 1, Drop: 0.1}})
	if err == nil || !strings.Contains(err.Error(), "sim-only") {
		t.Errorf("New(real, faults) error = %v, want sim-only rejection", err)
	}
	_, err = New(Backend(7), sim.Config{Procs: 2})
	if err == nil {
		t.Error("New accepted an unknown backend")
	}
}

// TestNewAcceptsObservabilityOnReal pins the PR 8 contract: tracing,
// span recording, and a metrics registry all map onto the real backend
// (wall-clock event source) instead of being rejected.
func TestNewAcceptsObservabilityOnReal(t *testing.T) {
	reg := metrics.NewRegistry()
	m, err := New(BackendReal, sim.Config{Procs: 2, Params: sim.CM5Params(), Trace: true, Record: true, Metrics: reg})
	if err != nil {
		t.Fatalf("New(real, trace+metrics): %v", err)
	}
	rm := m.(*RealMachine)
	if !rm.cfg.Trace {
		t.Error("Trace flag did not map through")
	}
	if rm.Metrics() != reg {
		t.Error("Metrics registry did not map through")
	}
}

func TestNewBuildsBothBackends(t *testing.T) {
	for _, b := range []Backend{BackendSim, BackendReal} {
		m, err := New(b, sim.Config{Procs: 3, Params: sim.CM5Params()})
		if err != nil {
			t.Fatalf("New(%v): %v", b, err)
		}
		if m.Backend() != b {
			t.Errorf("Backend() = %v, want %v", m.Backend(), b)
		}
		if m.Procs() != 3 {
			t.Errorf("%v Procs() = %d, want 3", b, m.Procs())
		}
		if m.Params() != sim.CM5Params() {
			t.Errorf("%v Params() mismatch", b)
		}
	}
}

// ---- SPSC queue ----

func TestSpscFIFOAndPoll(t *testing.T) {
	q := newSpscQueue()
	if _, ok := q.poll(); ok {
		t.Fatal("poll on empty queue reported a message")
	}
	for i := 0; i < 100; i++ {
		q.put(rmsg{tag: i, words: i})
	}
	for i := 0; i < 100; i++ {
		m, ok := q.poll()
		if !ok || m.tag != i || m.words != i {
			t.Fatalf("poll %d = %+v, %v; want tag/words %d", i, m, ok, i)
		}
	}
	if _, ok := q.poll(); ok {
		t.Fatal("queue not empty after draining")
	}
}

func TestSpscTakeParksUntilPut(t *testing.T) {
	q := newSpscQueue()
	done := make(chan rmsg)
	go func() { done <- q.take() }()
	q.put(rmsg{tag: 42})
	if m := <-done; m.tag != 42 {
		t.Fatalf("take = %+v, want tag 42", m)
	}
}

func TestSpscConcurrentProducerConsumer(t *testing.T) {
	q := newSpscQueue()
	const n = 10000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.put(rmsg{tag: i})
		}
	}()
	for i := 0; i < n; i++ {
		if m := q.take(); m.tag != i {
			t.Fatalf("message %d arrived with tag %d (order broken)", i, m.tag)
		}
	}
	wg.Wait()
	if got := q.drainCount(); got != 0 {
		t.Fatalf("drainCount after full consumption = %d, want 0", got)
	}
}

// ---- Real machine ----

func TestRealMachineRingExchange(t *testing.T) {
	const p = 4
	m := MustNewReal(RealConfig{Procs: p, Params: sim.CM5Params()})
	got := make([]int, p)
	err := m.Run(func(e Endpoint) {
		me, n := e.Rank(), e.NProcs()
		e.Charge(3)
		e.SendInts((me+1)%n, 7, []int{me * 10})
		v := e.RecvInts((me-1+n)%n, 7)
		got[me] = v[0]
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < p; i++ {
		want := ((i - 1 + p) % p) * 10
		if got[i] != want {
			t.Errorf("rank %d received %d, want %d", i, got[i], want)
		}
	}
	stats := m.Stats()
	if len(stats) != p {
		t.Fatalf("Stats() returned %d entries, want %d", len(stats), p)
	}
	for i, s := range stats {
		if s.Rank != i || s.MsgsSent != 1 || s.WordsSent != 1 || s.Ops != 3 {
			t.Errorf("rank %d stats = %+v, want 1 msg / 1 word / 3 ops", i, s)
		}
		if s.Clock <= 0 {
			t.Errorf("rank %d wall clock = %v, want > 0", i, s.Clock)
		}
	}
	if m.MaxClock() <= 0 {
		t.Error("MaxClock() <= 0 after a run")
	}
	if m.Elapsed() <= 0 {
		t.Error("Elapsed() <= 0 after a run")
	}
}

func TestRealMachineReusableAcrossRuns(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 2})
	for round := 0; round < 3; round++ {
		err := m.Run(func(e Endpoint) {
			if e.Rank() == 0 {
				e.SendInts(1, round, []int{round})
			} else if v := e.RecvInts(0, round); v[0] != round {
				t.Errorf("round %d delivered %d", round, v[0])
			}
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestRealMachineTagMismatchStash(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 2})
	err := m.Run(func(e Endpoint) {
		switch e.Rank() {
		case 0:
			e.SendInts(1, 100, []int{1})
			e.SendInts(1, 200, []int{2})
		case 1:
			// Consume in the opposite order of arrival: tag 100 must be
			// parked while tag 200 is claimed, then served from the stash.
			if v := e.RecvInts(0, 200); v[0] != 2 {
				t.Errorf("tag 200 delivered %d, want 2", v[0])
			}
			if v := e.RecvInts(0, 100); v[0] != 1 {
				t.Errorf("tag 100 delivered %d, want 1", v[0])
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRealMachineStreamFIFO(t *testing.T) {
	const n = 5000
	m := MustNewReal(RealConfig{Procs: 2})
	err := m.Run(func(e Endpoint) {
		if e.Rank() == 0 {
			for i := 0; i < n; i++ {
				e.SendInts(1, 1, []int{i})
			}
		} else {
			for i := 0; i < n; i++ {
				if v := e.RecvInts(0, 1); v[0] != i {
					t.Errorf("message %d arrived as %d (stream order broken)", i, v[0])
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRealMachineDeadlockDetected(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 2})
	err := m.Run(func(e Endpoint) {
		if e.Rank() == 0 {
			e.Recv(1, 9) // rank 1 never sends: the machine is wedged
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("Run = %v, want deadlock diagnosis", err)
	}
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("watchdog abort %v does not match sim.ErrDeadlock", err)
	}
}

// TestRealMachineFlightRecorder pins that a flight recorder attached
// to the real backend fills from the emit path (without Trace) and
// still holds the final exchanges after a watchdog abort.
func TestRealMachineFlightRecorder(t *testing.T) {
	fr := sim.MustNewFlightRecorder(2, 32)
	m := MustNewReal(RealConfig{Procs: 2, Flight: fr})
	err := m.Run(func(e Endpoint) {
		if e.Rank() == 0 {
			e.SendInts(1, 1, []int{42})
			e.Recv(1, 9) // never sent: wedged after one real exchange
		} else {
			e.RecvInts(0, 1)
		}
	})
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("Run = %v, want a sim.ErrDeadlock match", err)
	}
	snap := fr.Snapshot()
	if len(snap[0]) == 0 || len(snap[1]) == 0 {
		t.Fatalf("flight rings empty after abort: %d/%d events", len(snap[0]), len(snap[1]))
	}
	last := snap[0][len(snap[0])-1]
	if last.Kind != sim.EvRecvBlock || last.Peer != 1 || last.Tag != 9 {
		t.Fatalf("rank 0 last flight event = %+v, want the fatal recv-block on (src=1, tag=9)", last)
	}
	for r, row := range m.Events() {
		if len(row) != 0 {
			t.Fatalf("rank %d kept %d full-trace events without RealConfig.Trace", r, len(row))
		}
	}
}

// TestRealPeerPanicIsNotDeadlock pins that peer-panic unwinds do NOT
// match sim.ErrDeadlock: the flight-dump trigger must not classify a
// root-cause panic as a deadlock.
func TestRealPeerPanicIsNotDeadlock(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 2})
	err := m.Run(func(e Endpoint) {
		if e.Rank() == 0 {
			panic("root cause")
		}
		e.Recv(0, 1)
	})
	if err == nil || errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("Run = %v, want a non-deadlock root-cause error", err)
	}
}

func TestRealMachinePanicUnwindsPeers(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 2})
	err := m.Run(func(e Endpoint) {
		if e.Rank() == 0 {
			panic("kaboom")
		}
		e.Recv(0, 1) // would hang forever without the abort channel
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Run = %v, want the root-cause panic", err)
	}
}

func TestRealMachineLeftoverMessagesReported(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 2})
	err := m.Run(func(e Endpoint) {
		if e.Rank() == 0 {
			e.SendInts(1, 5, []int{1}) // never received
		}
	})
	if err == nil || !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("Run = %v, want undelivered-message report", err)
	}
}

func TestRealMachineFaultHooksArePanics(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 1})
	err := m.Run(func(e Endpoint) {
		if e.Faults() != nil {
			t.Error("real backend reported a fault plan")
		}
		if !e.TrySend(0, 1, nil, 0) {
			t.Error("TrySend failed on the real backend")
		}
		e.Recv(0, 1)
		e.RetryWait(0, 1) // must panic: sim-only
	})
	if err == nil || !strings.Contains(err.Error(), "sim-only") {
		t.Fatalf("Run = %v, want sim-only panic surfaced as error", err)
	}
}

func TestRealMachineInvalidConfig(t *testing.T) {
	if _, err := NewReal(RealConfig{Procs: 0}); err == nil {
		t.Error("NewReal accepted Procs=0")
	}
	if _, err := NewReal(RealConfig{Procs: 2, Params: sim.Params{Tau: -1}}); err == nil {
		t.Error("NewReal accepted negative Tau")
	}
}

func TestRealProcPhaseAndCommState(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 1})
	err := m.Run(func(e Endpoint) {
		if prev := e.SetPhase("ranking"); prev != "default" {
			t.Errorf("SetPhase returned previous %q, want default", prev)
		}
		if prev := e.SetPhase("transfer"); prev != "ranking" {
			t.Errorf("SetPhase returned previous %q, want ranking", prev)
		}
		slot := e.CommState()
		if *slot != nil {
			t.Error("CommState not nil at run start")
		}
		*slot = "state"
		if *e.CommState() != any("state") {
			t.Error("CommState slot did not persist")
		}
		if e.Clock() < 0 {
			t.Error("wall Clock went negative")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// ---- Sim adapter ----

func TestSimMachineAdapter(t *testing.T) {
	m, err := New(BackendSim, sim.Config{Procs: 2, Params: sim.CM5Params()})
	if err != nil {
		t.Fatalf("New(sim): %v", err)
	}
	got := make([]int, 2)
	err = m.Run(func(e Endpoint) {
		if e.Rank() == 0 {
			e.SendInts(1, 3, []int{17})
		} else {
			got[1] = e.RecvInts(0, 3)[0]
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[1] != 17 {
		t.Errorf("sim adapter delivered %d, want 17", got[1])
	}
	if m.Backend() != BackendSim {
		t.Errorf("Backend() = %v, want sim", m.Backend())
	}
	if m.Elapsed() <= 0 {
		t.Error("Elapsed() <= 0 after a sim run")
	}
	if len(m.Stats()) != 2 {
		t.Errorf("Stats() length = %d, want 2", len(m.Stats()))
	}
	if m.MaxClock() <= 0 {
		t.Error("sim MaxClock() <= 0 after charged communication")
	}
}
