package transport

import (
	"time"

	"packunpack/internal/sim"
)

// SimMachine adapts *sim.Machine to the Machine interface. The emulator
// keeps its full concrete API (tracing, spans, fault reports); this
// wrapper only narrows Run to the Endpoint-typed body and measures the
// host wall time of each run so sim and real report Elapsed uniformly.
type SimMachine struct {
	M       *sim.Machine
	elapsed time.Duration
}

// WrapSim adapts an existing emulator machine.
func WrapSim(m *sim.Machine) *SimMachine { return &SimMachine{M: m} }

// Both backends must present the full transport surface.
var (
	_ Endpoint = (*sim.Proc)(nil)
	_ Machine  = (*SimMachine)(nil)
	_ Endpoint = (*realProc)(nil)
	_ Machine  = (*RealMachine)(nil)
)

func (s *SimMachine) Procs() int         { return s.M.Procs() }
func (s *SimMachine) Params() sim.Params { return s.M.Params() }

func (s *SimMachine) Run(body func(Endpoint)) error {
	start := time.Now()
	err := s.M.Run(func(p *sim.Proc) { body(p) })
	s.elapsed = time.Since(start)
	return err
}

func (s *SimMachine) Stats() []sim.Stats     { return s.M.Stats() }
func (s *SimMachine) MaxClock() float64      { return s.M.MaxClock() }
func (s *SimMachine) Elapsed() time.Duration { return s.elapsed }
func (s *SimMachine) Backend() Backend       { return BackendSim }
