package transport

// Tests for the real backend's observability layer: wall-clock trace
// events (RealConfig.Trace/Sink), the metric families of
// realmeters.go, and the zero-overhead guard for the disabled case.

import (
	"sync"
	"testing"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
)

// ringBody is the shared workload: every rank sends its rank (rank+1
// words) around a ring, twice, with a phase switch in between.
func ringBody(p Endpoint) {
	next := (p.Rank() + 1) % p.NProcs()
	prev := (p.Rank() - 1 + p.NProcs()) % p.NProcs()
	p.Send(next, 7, []int{p.Rank()}, p.Rank()+1)
	p.Recv(prev, 7)
	p.SetPhase("second")
	p.SendInts(next, 8, []int{p.Rank(), p.Rank()})
	p.RecvInts(prev, 8)
}

func TestRealBackendTraceEvents(t *testing.T) {
	const procs = 4
	m := MustNewReal(RealConfig{Procs: procs, Params: sim.CM5Params(), Trace: true})
	if err := m.Run(ringBody); err != nil {
		t.Fatal(err)
	}
	events := m.Events()
	if len(events) != procs {
		t.Fatalf("Events() rows = %d, want %d", len(events), procs)
	}
	sent := map[uint64]int{} // MsgID -> sending rank (EvSend only)
	for r, row := range events {
		if len(row) == 0 {
			t.Fatalf("rank %d recorded no events", r)
		}
		var prevTime float64
		kinds := map[sim.EventKind]int{}
		for _, ev := range row {
			if ev.Rank != r {
				t.Fatalf("rank %d stream carries event for rank %d", r, ev.Rank)
			}
			if ev.Time < prevTime {
				t.Fatalf("rank %d timeline not monotone: %f after %f", r, ev.Time, prevTime)
			}
			prevTime = ev.Time
			kinds[ev.Kind]++
			if ev.Kind == sim.EvSend {
				if ev.MsgID == 0 {
					t.Fatal("traced send has zero MsgID")
				}
				if src := sim.MsgIDSrc(ev.MsgID); src != r {
					t.Fatalf("MsgID encodes rank %d, sent by %d", src, r)
				}
				sent[ev.MsgID] = r
			}
		}
		for _, k := range []sim.EventKind{sim.EvSend, sim.EvDeliver, sim.EvRecvBlock, sim.EvRecvWake, sim.EvPhase} {
			if kinds[k] == 0 {
				t.Errorf("rank %d recorded no %v events", r, k)
			}
		}
	}
	// Every wake links back to a real send: the flow-arrow invariant.
	for _, row := range events {
		for _, ev := range row {
			if ev.Kind != sim.EvRecvWake {
				continue
			}
			if ev.MsgID == 0 {
				t.Fatal("traced recv-wake has zero MsgID (no flow arrow)")
			}
			if _, ok := sent[ev.MsgID]; !ok {
				t.Fatalf("recv-wake MsgID %#x matches no send", ev.MsgID)
			}
		}
	}
	// A second run must reset the buffers, not append to them.
	if err := m.Run(ringBody); err != nil {
		t.Fatal(err)
	}
	if again := m.Events(); len(again[0]) != len(events[0]) {
		t.Errorf("second run recorded %d events for rank 0, first recorded %d", len(again[0]), len(events[0]))
	}
}

// collectSink gathers streamed events; ranks emit concurrently.
type collectSink struct {
	mu  sync.Mutex
	evs []sim.Event
}

func (s *collectSink) Emit(ev sim.Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}

func TestRealBackendSinkStreamsEvents(t *testing.T) {
	sink := &collectSink{}
	m := MustNewReal(RealConfig{Procs: 2, Params: sim.CM5Params(), Trace: true, Sink: sink})
	if err := m.Run(ringBody); err != nil {
		t.Fatal(err)
	}
	buffered := 0
	for _, row := range m.Events() {
		buffered += len(row)
	}
	if len(sink.evs) != buffered {
		t.Errorf("sink streamed %d events, buffers hold %d", len(sink.evs), buffered)
	}
}

func TestRealBackendMetrics(t *testing.T) {
	const procs = 4
	reg := metrics.NewRegistry()
	m := MustNewReal(RealConfig{Procs: procs, Params: sim.CM5Params(), Metrics: reg})
	if err := m.Run(ringBody); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	// Per-link counters must reconcile exactly with Stats.
	stats := m.Stats()
	msgs, ok := snap.Family("transport_link_msgs_total")
	if !ok {
		t.Fatal("transport_link_msgs_total missing")
	}
	bytes, _ := snap.Family("transport_link_bytes_total")
	var wantMsgs, wantWords int64
	for _, s := range stats {
		wantMsgs += s.MsgsSent
		wantWords += s.WordsSent
	}
	if got := msgs.Total(); got != wantMsgs {
		t.Errorf("link msgs total = %d, Stats say %d", got, wantMsgs)
	}
	if got := bytes.Total(); got != wantWords*8 {
		t.Errorf("link bytes total = %d, Stats words*8 = %d", got, wantWords*8)
	}
	// The ring pattern: rank r sends r+1 words to r+1 then 2 more words
	// in phase "second" — check one concrete link cell.
	c, ok := msgs.Child("0", "1")
	if !ok || c.Value != 2 {
		t.Errorf("link (0,1) msgs = %+v ok=%v, want 2", c, ok)
	}
	cb, _ := bytes.Child("0", "1")
	if cb.Value != (1+2)*8 {
		t.Errorf("link (0,1) bytes = %d, want %d", cb.Value, (1+2)*8)
	}

	// Per-phase split: the tag-8 traffic must sit under "second".
	pb, ok := snap.Family("transport_phase_link_bytes_total")
	if !ok {
		t.Fatal("transport_phase_link_bytes_total missing")
	}
	if c, ok := pb.Child("second", "0", "1"); !ok || c.Value != 2*8 {
		t.Errorf("phase-second link (0,1) bytes = %+v ok=%v, want 16", c, ok)
	}
	if c, ok := pb.Child("default", "0", "1"); !ok || c.Value != 1*8 {
		t.Errorf("phase-default link (0,1) bytes = %+v ok=%v, want 8", c, ok)
	}

	// Receives: every rank completed two.
	recvs, ok := snap.Family("transport_recvs_total")
	if !ok || recvs.Total() != int64(procs*2) {
		t.Errorf("recvs total = %d ok=%v, want %d", recvs.Total(), ok, procs*2)
	}

	// Phase wall spans observed for both phases.
	pw, ok := snap.Family("transport_phase_wall_us")
	if !ok {
		t.Fatal("transport_phase_wall_us missing")
	}
	for _, phase := range []string{"default", "second"} {
		if c, ok := pw.Child(phase); !ok || c.Count < int64(procs) {
			t.Errorf("phase %q wall spans = %d ok=%v, want >= %d", phase, c.Count, ok, procs)
		}
	}

	// Queue depth meters engaged.
	if f, ok := snap.Family("transport_queue_depth"); !ok || f.Children[0].Count != wantMsgs {
		t.Errorf("queue depth observations = %v ok=%v, want %d (one per counted put)", f, ok, wantMsgs)
	}
	if _, ok := snap.Family("transport_queue_depth_hw"); !ok {
		t.Error("transport_queue_depth_hw missing")
	}
}

// TestRealSendRecvDisabledAllocs is the zero-overhead regression guard
// at the transport layer: with no registry and no tracing, put costs
// exactly its one inherent node allocation and poll costs none — the
// telemetry branches must add zero.
func TestRealSendRecvDisabledAllocs(t *testing.T) {
	q := newSpscQueue()
	msg := rmsg{tag: 1, payload: nil, words: 3}
	if n := testing.AllocsPerRun(200, func() {
		q.put(msg)
		q.poll()
	}); n > 1 {
		t.Errorf("uninstrumented put+poll allocates %v/op, want <= 1 (the queue node)", n)
	}
}

// TestRealBackendDisabledStatsUnchanged pins that a telemetry-less run
// behaves exactly as before PR 8: no events retained, Metrics() nil.
func TestRealBackendDisabledStatsUnchanged(t *testing.T) {
	m := MustNewReal(RealConfig{Procs: 2, Params: sim.CM5Params()})
	if err := m.Run(ringBody); err != nil {
		t.Fatal(err)
	}
	if m.Metrics() != nil {
		t.Error("Metrics() non-nil without a registry")
	}
	for r, row := range m.Events() {
		if len(row) != 0 {
			t.Errorf("rank %d retained %d events with tracing off", r, len(row))
		}
	}
}

func BenchmarkRealRingDisabled(b *testing.B) {
	m := MustNewReal(RealConfig{Procs: 4, Params: sim.CM5Params()})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Run(ringBody); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealRingMetrics(b *testing.B) {
	m := MustNewReal(RealConfig{Procs: 4, Params: sim.CM5Params(), Metrics: metrics.NewRegistry()})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Run(ringBody); err != nil {
			b.Fatal(err)
		}
	}
}
