package transport

import "sync/atomic"

// rmsg is one in-flight message of the real backend. No arrival time:
// a message is available the moment the enqueue happens.
type rmsg struct {
	tag     int
	payload any
	words   int
	free    bool   // SendFree control message (uncounted)
	id      uint64 // trace message id (sim.MakeMsgID); 0 when tracing is off
}

// spscNode is one link of the unbounded SPSC queue.
type spscNode struct {
	next atomic.Pointer[spscNode]
	msg  rmsg
}

// spscQueue is an unbounded lock-free single-producer single-consumer
// queue — one per ordered (source, destination) processor pair, so the
// producer is always the source's goroutine and the consumer always
// the destination's. The producer owns tail, the consumer owns head,
// and the only shared word is the atomic next pointer of the current
// tail: the producer's Store publishes the node (and the msg written
// before it) to the consumer's Load, which is the happens-before edge
// that makes the design race-free without locks.
//
// Sends never block (the eager protocol both backends share): the list
// grows as needed. A consumer that finds the queue empty parks on the
// notify channel; the producer posts a non-blocking token after every
// link. The token can be stale (a previous take consumed the node
// already), so take re-checks after every wake — a spurious wake costs
// one loop iteration, never correctness.
type spscQueue struct {
	head   *spscNode // consumer-owned; head.next is the front
	tail   *spscNode // producer-owned
	notify chan struct{}

	// Telemetry (realmeters.go): depth is maintained — and meter
	// consulted — only when the machine was built with a registry, so
	// the uninstrumented put/poll pay exactly one nil check.
	meter *linkMeter
	depth atomic.Int64
}

func newSpscQueue() *spscQueue {
	d := &spscNode{}
	return &spscQueue{head: d, tail: d, notify: make(chan struct{}, 1)}
}

// put enqueues m. Producer side only.
func (q *spscQueue) put(m rmsg) {
	n := &spscNode{msg: m}
	q.tail.next.Store(n)
	q.tail = n
	if mt := q.meter; mt != nil {
		d := q.depth.Add(1)
		mt.depthHW.SetMax(d)
		mt.depthHist.Observe(d)
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// poll dequeues the front message without blocking; ok is false when
// the queue is empty. Consumer side only.
func (q *spscQueue) poll() (m rmsg, ok bool) {
	n := q.head.next.Load()
	if n == nil {
		return rmsg{}, false
	}
	m = n.msg
	n.msg = rmsg{} // drop the payload reference from the retired node
	q.head = n
	if q.meter != nil {
		q.depth.Add(-1)
	}
	return m, true
}

// take dequeues the front message, parking until one arrives.
// Consumer side only.
func (q *spscQueue) take() rmsg {
	for {
		if m, ok := q.poll(); ok {
			return m
		}
		<-q.notify
	}
}

// drainCount empties the queue and returns how many messages it held.
// Only called after the run's goroutines have all joined.
func (q *spscQueue) drainCount() int {
	n := 0
	for {
		if _, ok := q.poll(); !ok {
			return n
		}
		n++
	}
}
