// Package transport is the pluggable communication layer the
// algorithms program against. It defines two interfaces:
//
//   - Endpoint, the per-processor handle inside an SPMD run — point-to-
//     point send/receive, the fault-injectable delivery attempt, cost
//     charging, and the clock/stats hooks. Everything in internal/comm,
//     internal/ranking, internal/pack and internal/redist takes an
//     Endpoint, never a concrete machine type.
//   - Machine, the runner that executes an SPMD body once per
//     processor and exposes the run's statistics afterwards.
//
// Two backends implement them:
//
//   - BackendSim wraps the internal/sim virtual-clock emulator
//     (simadapter.go): messages really move, but time is virtual and
//     advances by the paper's two-level cost model. Deterministic,
//     traceable, fault-injectable — the byte-exact oracle.
//   - BackendReal is a real shared-memory parallel machine (real.go):
//     the P processor bodies run as host goroutines (pinned to OS
//     threads when the host has the cores) communicating through
//     unbounded lock-free SPSC queues. No virtual charging — Clock and
//     Machine.Elapsed report wall time, which is what the measured
//     speedup curves of the realworld experiments come from.
//
// Both backends present identical message semantics (eager sends,
// FIFO per (source, destination, tag) stream, tag-matched receives),
// so an algorithm that is correct on one is correct on the other, and
// the cross-backend conformance suite pins that the results are
// byte-identical. Virtual metrics (clocks, phase breakdowns, cost
// charges) are meaningful on the sim backend only; the real backend
// counts ops/messages/words and measures wall time. Both backends are
// observable: they emit the same structured trace-event stream
// (sim.Event — virtual timestamps on sim, wall-clock microseconds on
// real; the two never mix in one capture, see DESIGN.md §14) and both
// carry an optional internal/metrics registry that the instrumented
// layers above the endpoint record into.
package transport

import (
	"fmt"
	"time"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
)

// Endpoint is the per-processor transport handle of an SPMD run. It is
// only valid inside the body function passed to Machine.Run and must
// not be shared between goroutines. *sim.Proc implements it for the
// emulator; realProc implements it for the shared-memory backend.
type Endpoint interface {
	// Rank returns this processor's id in [0, NProcs).
	Rank() int
	// NProcs returns the machine size P.
	NProcs() int
	// Params returns the machine's two-level cost-model constants. The
	// real backend carries them too: algorithm selection rules (the
	// PRS auto rule) consult the model on every backend, so both
	// backends take identical decisions.
	Params() sim.Params
	// Clock returns the current time in microseconds: virtual time on
	// the sim backend, wall time since the run started on the real one.
	Clock() float64
	// SetPhase switches cost/stat attribution to the named phase and
	// returns the previous phase name.
	SetPhase(name string) (previous string)
	// Charge accounts for ops local elementary operations. The sim
	// backend advances the virtual clock by ops*Delta; the real
	// backend only counts them (real work takes real time).
	Charge(ops int)

	// Send transmits payload (words machine words long) to processor
	// dst with the given tag. It never blocks (eager protocol).
	Send(dst, tag int, payload any, words int)
	// SendFree transmits a zero-cost control message (out-of-band
	// modelling channel; never fault-injected, never counted).
	SendFree(dst, tag int, payload any)
	// Recv blocks until a message with the given source and tag
	// arrives and returns its payload and word count. Messages of one
	// (src, tag) stream are delivered in send order.
	Recv(src, tag int) (payload any, words int)
	// SendInts / RecvInts are Send/Recv for the common []int payload,
	// one machine word per element.
	SendInts(dst, tag int, v []int)
	RecvInts(src, tag int) []int

	// TrySend is the fault-injectable delivery attempt the reliable
	// transport in internal/comm is built on. Without a fault plan it
	// is exactly Send and always reports success.
	TrySend(dst, tag int, payload any, words int) bool
	// Faults returns the machine's fault plan, nil when fault
	// injection is off. The real backend always returns nil: fault
	// injection is a modelling device of the emulator (DESIGN.md §13).
	Faults() *sim.FaultConfig
	// RetryWait charges the reliable sender's retransmission timeout;
	// only meaningful with a fault plan installed.
	RetryWait(dst, tag int)
	// FaultGiveUp aborts the calling processor with a FaultBudgetError
	// after a message exhausted its retry budget.
	FaultGiveUp(dst, tag, attempts int)
	// NoteDedup / NoteStash record reliable-receiver recovery actions.
	NoteDedup(src, tag int)
	NoteStash(src, tag int)
	// CommState is an opaque per-run slot where a higher communication
	// layer hangs protocol state off the processor.
	CommState() *any

	// Metrics returns the machine's telemetry registry
	// (internal/metrics), nil when telemetry is off. Instrumented
	// layers resolve handles through it; every handle off a nil
	// registry is a nil no-op, so disabled telemetry costs one
	// predictable branch per recording site.
	Metrics() *metrics.Registry
}

// Machine runs SPMD bodies over one of the backends.
type Machine interface {
	// Procs returns the number of logical processors P.
	Procs() int
	// Params returns the machine cost constants.
	Params() sim.Params
	// Run executes body once per processor and blocks until every
	// processor finishes. It may be called repeatedly but not
	// concurrently on one machine.
	Run(body func(Endpoint)) error
	// Stats returns the per-processor statistics of the most recent
	// Run, ordered by rank. Sim fills the full virtual breakdown; the
	// real backend fills the counters (Ops, MsgsSent, WordsSent) and
	// reports wall time in Clock.
	Stats() []sim.Stats
	// MaxClock returns the largest final per-processor clock of the
	// most recent Run in microseconds (virtual on sim, wall on real).
	MaxClock() float64
	// Elapsed returns the host wall-clock duration of the most recent
	// Run (including processor spawn/join overhead).
	Elapsed() time.Duration
	// Backend identifies the implementation.
	Backend() Backend
}

// Backend names a Machine implementation.
type Backend int

const (
	// BackendSim is the virtual-clock emulator (internal/sim).
	BackendSim Backend = iota
	// BackendReal is the shared-memory parallel backend (real.go).
	BackendReal
)

func (b Backend) String() string {
	switch b {
	case BackendSim:
		return "sim"
	case BackendReal:
		return "real"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend maps the packbench -backend flag values to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "sim":
		return BackendSim, nil
	case "real":
		return BackendReal, nil
	}
	return 0, fmt.Errorf("transport: unknown backend %q (want sim or real)", s)
}

// New builds a Machine of the requested backend from a sim.Config.
// The sim backend honours every Config field. The real backend maps
// Procs, Params, Metrics, and the tracing switches (Trace/Record/Sink
// — events carry wall-clock microsecond timestamps instead of virtual
// time; Record is subsumed by Trace because real spans are synthesized
// from the event stream, see internal/trace) and rejects only fault
// injection, which genuinely needs the emulator's omniscient network.
func New(b Backend, cfg sim.Config) (Machine, error) {
	switch b {
	case BackendSim:
		m, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		return &SimMachine{M: m}, nil
	case BackendReal:
		if cfg.Faults != nil {
			return nil, fmt.Errorf("transport: fault injection is sim-only (the real network is not under our control); run the fault plan on the sim backend")
		}
		return NewReal(RealConfig{
			Procs: cfg.Procs, Params: cfg.Params, Metrics: cfg.Metrics,
			Trace: cfg.Trace || cfg.Record, Sink: cfg.Sink, Flight: cfg.Flight,
		})
	}
	return nil, fmt.Errorf("transport: unknown backend %v", b)
}
