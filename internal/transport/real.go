package transport

// This file is the real shared-memory parallel backend (BackendReal):
// the P processor bodies of an SPMD run execute as host goroutines —
// locked to OS threads when the host has at least P cores, which is as
// close to core pinning as the Go runtime allows — and exchange
// messages through unbounded lock-free SPSC queues, one per ordered
// processor pair (spsc.go). Nothing is virtual: Charge only counts,
// Clock reads the wall, and Machine.Elapsed is the measured run time
// the realworld speedup curves are built from.
//
// Message semantics mirror the emulator exactly — eager non-blocking
// sends, FIFO per (source, destination, tag) stream, tag-matched
// receives with out-of-tag-order messages parked at the receiver — so
// any algorithm written against transport.Endpoint produces
// byte-identical results on both backends (pinned by the cross-backend
// conformance suite). Observability carries over too: with
// RealConfig.Trace the backend emits the same structured sim.Event
// stream — wall-clock microsecond timestamps instead of virtual time,
// same message-id scheme — and with RealConfig.Metrics it records the
// telemetry families of realmeters.go. What does NOT carry over is the
// model side: virtual clocks, cost charging, and fault injection are
// emulator devices (they need an omniscient network), so Faults() is
// always nil here and the reliable transport's fault path never
// engages.
//
// Deadlock handling is heuristic, like the emulator's goroutine mode:
// a watchdog samples a global progress counter, and when every live
// processor has been parked in Recv with no delivery for several
// consecutive scans, the run is declared wedged and every waiter is
// unwound with a diagnostic instead of hanging the process. A panic in
// one body likewise unwinds the peers through the same abort channel.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
)

// RealConfig describes a real shared-memory machine.
type RealConfig struct {
	// Procs is the number of logical processors, P >= 1. Values above
	// the host's core count are allowed (the Go scheduler multiplexes);
	// speedup then flattens, which is itself a measurement.
	Procs int
	// Params are the cost-model constants. The real backend never
	// charges them, but algorithm selection rules (the PRS auto rule)
	// read them, so configuring the same constants as the sim oracle
	// keeps both backends taking identical decisions.
	Params sim.Params
	// NoPin disables locking processor goroutines to OS threads even
	// when the host has enough cores.
	NoPin bool
	// Metrics, when non-nil, attaches the telemetry registry
	// (internal/metrics): the backend records the families documented
	// in realmeters.go (per-link traffic, queue depths, park/wake
	// counts, stash occupancy, per-phase wall spans) and the
	// instrumented layers above the endpoint record theirs. Nil
	// disables all recording at one-branch cost.
	Metrics *metrics.Registry
	// Trace, when set, records structured events (sim.Event schema,
	// wall-clock microsecond timestamps) into per-processor buffers
	// retrievable via Events() after a run — the real-backend
	// counterpart of sim.Config.Trace.
	Trace bool
	// Sink, when non-nil, additionally streams every event as it is
	// produced. Ranks call Emit concurrently (like the emulator's
	// goroutine mode); the sink must be safe for that.
	Sink sim.EventSink
	// Flight, when non-nil, keeps the most recent events of every rank
	// in fixed-size ring buffers (sim/flight.go) regardless of Trace —
	// the bounded post-mortem window the watchdog-abort dump path
	// reads. Ranks write disjoint rings, so no locking is needed.
	Flight *sim.FlightRecorder
}

// RealMachine is a Machine whose processors run genuinely in parallel
// on the host.
type RealMachine struct {
	cfg    RealConfig
	queues [][]*spscQueue // queues[src][dst]

	running atomic.Bool

	// Abort/watchdog state, reset per run.
	aborted  chan struct{}
	abortErr atomic.Pointer[realDeadlockError]
	progress atomic.Uint64 // bumped on every put and successful poll
	blocked  atomic.Int64  // processors currently parked in Recv
	finished atomic.Int64  // processors whose body returned
	runStart time.Time

	mu      sync.Mutex
	stats   []sim.Stats
	events  [][]sim.Event
	elapsed time.Duration
}

// realDeadlockError unwinds a processor when the watchdog declares the
// machine wedged (or a peer panicked first).
type realDeadlockError struct {
	rank, src, tag int
	peerPanic      bool
}

func (e *realDeadlockError) Error() string {
	if e.peerPanic {
		return fmt.Sprintf("transport: processor %d unwound from Recv(src=%d, tag=%d) after a peer failed", e.rank, e.src, e.tag)
	}
	return fmt.Sprintf("transport: deadlock: processor %d waiting for a message from %d with tag %d that never arrives", e.rank, e.src, e.tag)
}

// Is makes errors.Is(err, sim.ErrDeadlock) hold for genuine watchdog
// aborts. Peer-panic unwinds are collateral of another failure, not a
// deadlock, so they do not match.
func (e *realDeadlockError) Is(target error) bool {
	return target == sim.ErrDeadlock && !e.peerPanic
}

// NewReal builds a real shared-memory machine.
func NewReal(cfg RealConfig) (*RealMachine, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("transport: Procs must be >= 1, got %d", cfg.Procs)
	}
	if cfg.Params.Tau < 0 || cfg.Params.Mu < 0 || cfg.Params.Delta < 0 {
		return nil, fmt.Errorf("transport: negative cost parameters %+v", cfg.Params)
	}
	if cfg.Flight != nil && cfg.Flight.Procs() < cfg.Procs {
		return nil, fmt.Errorf("transport: flight recorder built for %d ranks cannot cover P=%d", cfg.Flight.Procs(), cfg.Procs)
	}
	m := &RealMachine{cfg: cfg, queues: make([][]*spscQueue, cfg.Procs)}
	for s := range m.queues {
		m.queues[s] = make([]*spscQueue, cfg.Procs)
		for d := range m.queues[s] {
			m.queues[s][d] = newSpscQueue()
		}
	}
	if cfg.Metrics != nil {
		m.attachQueueMeters(cfg.Metrics)
	}
	return m, nil
}

// Metrics returns the registry configured at construction (nil when
// telemetry is off).
func (m *RealMachine) Metrics() *metrics.Registry { return m.cfg.Metrics }

// MustNewReal is NewReal for configurations known to be valid.
func MustNewReal(cfg RealConfig) *RealMachine {
	m, err := NewReal(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *RealMachine) Procs() int         { return m.cfg.Procs }
func (m *RealMachine) Params() sim.Params { return m.cfg.Params }
func (m *RealMachine) Backend() Backend   { return BackendReal }

// Run executes body once per processor, each on its own goroutine, and
// blocks until every processor finishes. Like the emulator it may be
// called repeatedly (queues are reused) but not concurrently.
func (m *RealMachine) Run(body func(Endpoint)) error {
	if !m.running.CompareAndSwap(false, true) {
		return fmt.Errorf("transport: RealMachine.Run called concurrently on the same machine")
	}
	defer m.running.Store(false)

	n := m.cfg.Procs
	m.aborted = make(chan struct{})
	m.abortErr.Store(nil)
	m.progress.Store(0)
	m.blocked.Store(0)
	m.finished.Store(0)
	pin := !m.cfg.NoPin && n <= runtime.NumCPU()

	procs := make([]*realProc, n)
	for i := range procs {
		in := make([]*spscQueue, n)
		for s := 0; s < n; s++ {
			in[s] = m.queues[s][i]
		}
		procs[i] = &realProc{
			rank: i, m: m, in: in,
			pending: make([][]rmsg, n),
			phase:   "default",
			stats:   sim.Stats{Rank: i, Phases: make(map[string]sim.PhaseStats)},
			tr:      m.cfg.Trace || m.cfg.Sink != nil || m.cfg.Flight != nil,
		}
		if m.cfg.Metrics != nil {
			procs[i].met = newProcMeters(m.cfg.Metrics, i, n, "default", 0)
		}
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	m.runStart = time.Now()
	stopWatch := make(chan struct{})
	go m.watchdog(stopWatch)
	for i := range procs {
		go func(p *realProc) {
			defer wg.Done()
			defer m.finished.Add(1)
			defer func() {
				if r := recover(); r != nil {
					errs[p.rank] = recoverRealErr(p.rank, r)
					m.abort(true)
				}
				p.stats.Clock = p.clockNow()
				if p.met != nil {
					p.met.notePhaseEnd(p.phase, p.stats.Clock)
				}
			}()
			if pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			body(p)
		}(procs[i])
	}
	wg.Wait()
	close(stopWatch)
	elapsed := time.Since(m.runStart)

	m.mu.Lock()
	m.elapsed = elapsed
	m.stats = make([]sim.Stats, n)
	m.events = make([][]sim.Event, n)
	for i, p := range procs {
		m.stats[i] = p.stats
		if m.cfg.Trace {
			m.events[i] = p.events
		}
	}
	m.mu.Unlock()

	var primary, unwinds []error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var de *realDeadlockError
		if errors.As(err, &de) {
			unwinds = append(unwinds, err)
		} else {
			primary = append(primary, err)
		}
	}
	switch {
	case len(primary) > 0:
		return errors.Join(primary...)
	case len(unwinds) > 0:
		return errors.Join(unwinds...)
	}
	leftover := 0
	for _, row := range m.queues {
		for _, q := range row {
			leftover += q.drainCount()
		}
	}
	for _, p := range procs {
		for _, stash := range p.pending {
			leftover += len(stash)
		}
	}
	if leftover != 0 {
		return fmt.Errorf("transport: run finished with %d undelivered messages", leftover)
	}
	return nil
}

// recoverRealErr converts a recovered panic value into a per-rank
// error, preserving unwind identity so Run can prefer root causes.
func recoverRealErr(rank int, r any) error {
	if de, ok := r.(*realDeadlockError); ok {
		return de
	}
	return fmt.Errorf("transport: processor %d panicked: %v", rank, r)
}

// abort wakes every parked receiver so the run can unwind instead of
// hanging; peerPanic records why.
func (m *RealMachine) abort(peerPanic bool) {
	e := &realDeadlockError{peerPanic: peerPanic}
	if m.abortErr.CompareAndSwap(nil, e) {
		close(m.aborted)
	}
}

// watchdog declares the machine wedged when every live processor has
// been parked in Recv with zero message traffic across several
// consecutive scans. Heuristic by design (like the emulator's
// goroutine-mode monitor): a notify token can be in flight during one
// scan, but not across 50 ms of total stillness.
func (m *RealMachine) watchdog(stop chan struct{}) {
	const scans = 5
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	stable := 0
	var lastProgress uint64
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			prog := m.progress.Load()
			blocked, done := m.blocked.Load(), m.finished.Load()
			if blocked > 0 && blocked+done == int64(m.cfg.Procs) && prog == lastProgress {
				stable++
				if stable >= scans {
					m.abort(false)
					return
				}
			} else {
				stable = 0
			}
			lastProgress = prog
		}
	}
}

// Stats returns the per-processor statistics of the most recent Run
// (deep copies; the real backend fills the counters and wall clocks).
func (m *RealMachine) Stats() []sim.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]sim.Stats, len(m.stats))
	for i, s := range m.stats {
		phases := make(map[string]sim.PhaseStats, len(s.Phases))
		for name, ph := range s.Phases {
			phases[name] = ph
		}
		s.Phases = phases
		out[i] = s
	}
	return out
}

// MaxClock returns the largest per-processor wall clock of the most
// recent Run in microseconds.
func (m *RealMachine) MaxClock() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max float64
	for _, s := range m.stats {
		if s.Clock > max {
			max = s.Clock
		}
	}
	return max
}

// Elapsed returns the wall-clock duration of the most recent Run.
func (m *RealMachine) Elapsed() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.elapsed
}

// realProc is one processor of a real run. Only its own goroutine
// touches it.
type realProc struct {
	rank    int
	m       *RealMachine
	in      []*spscQueue // in[src] delivers src -> me
	pending [][]rmsg     // per-src stash of tag-mismatched arrivals
	phase   string
	stats   sim.Stats
	comm    any

	// Telemetry state; zero/nil when the machine has none configured,
	// so every hot-path guard below is a single predictable branch.
	tr       bool          // record/stream trace events
	met      *procMeters   // pre-resolved metric handles, nil = off
	events   []sim.Event   // per-rank event buffer (RealConfig.Trace)
	seq      uint64        // per-rank event sequence number
	sends    uint64        // per-rank message counter for MsgID
	stashLen int           // current tag-mismatch stash size, all sources
}

func (p *realProc) Rank() int          { return p.rank }
func (p *realProc) NProcs() int        { return p.m.cfg.Procs }
func (p *realProc) Params() sim.Params { return p.m.cfg.Params }

// clockNow is wall time since the run started, in microseconds.
func (p *realProc) clockNow() float64 {
	return float64(time.Since(p.m.runStart)) / float64(time.Microsecond)
}

func (p *realProc) Clock() float64 { return p.clockNow() }

func (p *realProc) SetPhase(name string) (previous string) {
	previous = p.phase
	if p.met != nil {
		now := p.clockNow()
		p.met.notePhaseEnd(previous, now)
		p.met.setPhase(p.rank, p.m.cfg.Procs, name)
	}
	p.phase = name
	if p.tr {
		p.emit(sim.Event{Kind: sim.EvPhase, Time: p.clockNow(), Phase: name})
	}
	return previous
}

// Charge counts the ops; real work takes real time, so nothing else
// moves.
func (p *realProc) Charge(ops int) {
	if ops > 0 {
		p.stats.Ops += int64(ops)
	}
}

func (p *realProc) Send(dst, tag int, payload any, words int) {
	if dst < 0 || dst >= p.m.cfg.Procs {
		panic(fmt.Sprintf("transport: Send to invalid rank %d (P=%d)", dst, p.m.cfg.Procs))
	}
	if words < 0 {
		panic("transport: Send with negative word count")
	}
	p.stats.MsgsSent++
	p.stats.WordsSent += int64(words)
	if p.met != nil {
		p.met.noteSend(p.rank, dst, words)
	}
	var id uint64
	if p.tr {
		p.sends++
		id = sim.MakeMsgID(p.rank, p.sends)
	}
	p.m.queues[p.rank][dst].put(rmsg{tag: tag, payload: payload, words: words, id: id})
	p.m.progress.Add(1)
	if p.tr {
		now := p.clockNow()
		p.emit(sim.Event{Kind: sim.EvSend, Peer: dst, Tag: tag, Words: words, Time: now, MsgID: id})
		p.emit(sim.Event{Kind: sim.EvDeliver, Peer: dst, Tag: tag, Words: words, Time: now, MsgID: id})
	}
}

func (p *realProc) SendFree(dst, tag int, payload any) {
	if dst < 0 || dst >= p.m.cfg.Procs {
		panic(fmt.Sprintf("transport: SendFree to invalid rank %d (P=%d)", dst, p.m.cfg.Procs))
	}
	var id uint64
	if p.tr {
		p.sends++
		id = sim.MakeMsgID(p.rank, p.sends)
	}
	p.m.queues[p.rank][dst].put(rmsg{tag: tag, payload: payload, free: true, id: id})
	p.m.progress.Add(1)
	if p.tr {
		p.emit(sim.Event{Kind: sim.EvDeliver, Peer: dst, Tag: tag, Time: p.clockNow(), MsgID: id})
	}
}

// Recv blocks until a message with the given source and tag arrives.
// Tag-mismatched messages that arrive first are parked per source, so
// streams with different tags from one peer can be consumed in any
// order (matching the emulator's mailbox scan).
func (p *realProc) Recv(src, tag int) (payload any, words int) {
	if src < 0 || src >= p.m.cfg.Procs {
		panic(fmt.Sprintf("transport: Recv from invalid rank %d (P=%d)", src, p.m.cfg.Procs))
	}
	var t0 float64
	if p.tr {
		t0 = p.clockNow()
		p.emit(sim.Event{Kind: sim.EvRecvBlock, Peer: src, Tag: tag, Time: t0})
	}
	msg, parks := p.recvMatch(src, tag)
	if p.met != nil {
		p.met.recvs.AddShard(p.rank, 1)
		if parks > 0 {
			p.met.parks.AddShard(p.rank, parks)
		}
	}
	if p.tr {
		now := p.clockNow()
		p.emit(sim.Event{Kind: sim.EvRecvWake, Peer: src, Tag: tag, Words: msg.words, Time: now, Dur: now - t0, MsgID: msg.id})
	}
	return msg.payload, msg.words
}

// recvMatch finds the (src, tag) message — stash first, then the SPSC
// queue, parking on its notify channel while empty — and reports how
// many times it parked.
func (p *realProc) recvMatch(src, tag int) (rmsg, int64) {
	stash := p.pending[src]
	for i, m := range stash {
		if m.tag == tag {
			p.pending[src] = append(stash[:i], stash[i+1:]...)
			p.stashLen--
			return m, 0
		}
	}
	q := p.in[src]
	var parks int64
	for {
		m, ok := q.poll()
		if !ok {
			parks++
			p.m.blocked.Add(1)
			select {
			case <-q.notify:
			case <-p.m.aborted:
				p.m.blocked.Add(-1)
				e := p.m.abortErr.Load()
				panic(&realDeadlockError{rank: p.rank, src: src, tag: tag, peerPanic: e != nil && e.peerPanic})
			}
			p.m.blocked.Add(-1)
			continue
		}
		p.m.progress.Add(1)
		if m.tag == tag {
			return m, parks
		}
		p.pending[src] = append(p.pending[src], m)
		p.stashLen++
		if p.met != nil {
			p.met.stashHW.SetMax(int64(p.stashLen))
		}
	}
}

func (p *realProc) SendInts(dst, tag int, v []int) { p.Send(dst, tag, v, len(v)) }

func (p *realProc) RecvInts(src, tag int) []int {
	payload, _ := p.Recv(src, tag)
	if payload == nil {
		return nil
	}
	return payload.([]int)
}

// TrySend is Send: the real network is not under our control, so there
// is no injected failure to report.
func (p *realProc) TrySend(dst, tag int, payload any, words int) bool {
	p.Send(dst, tag, payload, words)
	return true
}

// Faults is always nil: fault injection is an emulator modelling
// device (DESIGN.md §13), so the reliable transport's recovery path
// never engages on the real backend.
func (p *realProc) Faults() *sim.FaultConfig { return nil }

func (p *realProc) RetryWait(dst, tag int) {
	panic("transport: RetryWait without a fault plan (fault injection is sim-only)")
}

func (p *realProc) FaultGiveUp(dst, tag, attempts int) {
	panic("transport: FaultGiveUp without a fault plan (fault injection is sim-only)")
}

func (p *realProc) NoteDedup(src, tag int) {
	panic("transport: NoteDedup without a fault plan (fault injection is sim-only)")
}

func (p *realProc) NoteStash(src, tag int) {
	panic("transport: NoteStash without a fault plan (fault injection is sim-only)")
}

func (p *realProc) CommState() *any { return &p.comm }

// Metrics returns the machine's telemetry registry, nil when off.
func (p *realProc) Metrics() *metrics.Registry { return p.m.cfg.Metrics }
