package transport

// This file is the real backend's telemetry wiring: the metric
// families it records (when RealConfig.Metrics is set) and the
// wall-clock trace-event emission (when RealConfig.Trace or .Sink is
// set). Both follow the same overhead discipline as the emulator's
// one-bool trace guard: with telemetry off, the hot paths pay exactly
// one nil/bool check; with it on, every handle is pre-resolved so the
// per-message cost is a couple of atomic adds — no map lookups, no
// allocation, no locks.
//
// Metric families (all word counts are converted to bytes at 8 bytes
// per machine word, the Go int width the payloads are built from):
//
//	transport_link_msgs_total{src,dst}          counted messages per directed link
//	transport_link_bytes_total{src,dst}         counted payload bytes per directed link
//	transport_phase_link_msgs_total{phase,src,dst}   the same, split per phase
//	transport_phase_link_bytes_total{phase,src,dst}  (feeds the per-phase PxP matrices)
//	transport_queue_depth                       histogram of SPSC depth observed at enqueue
//	transport_queue_depth_hw{src,dst}           per-queue depth high-water mark
//	transport_parks_total{rank}                 times a receiver parked on the notify channel
//	transport_recvs_total{rank}                 completed receives
//	transport_stash_depth_hw{rank}              high-water mark of tag-mismatch stash entries
//	transport_phase_wall_us{phase}              wall microseconds per phase span
//
// SendFree control messages stay uncounted in msgs/bytes (matching
// Stats.MsgsSent/WordsSent and the sim matrix convention) but do pass
// through the queue-depth meters — they occupy real queue slots.

import (
	"strconv"

	"packunpack/internal/metrics"
	"packunpack/internal/sim"
)

// linkMeter instruments one (src,dst) SPSC queue: enqueue-time depth
// distribution plus the per-queue high-water mark. Attached at machine
// construction, so the queue's put/poll pay one nil check when
// telemetry is off.
type linkMeter struct {
	depthHist *metrics.Histogram
	depthHW   *metrics.Gauge
}

// attachQueueMeters resolves a linkMeter per queue. Called from
// NewReal when a registry is configured.
func (m *RealMachine) attachQueueMeters(reg *metrics.Registry) {
	depthHist := reg.Histogram("transport_queue_depth",
		"SPSC queue depth observed at each enqueue (all links)").With()
	hwVec := reg.Gauge("transport_queue_depth_hw",
		"per-link SPSC queue depth high-water mark", "src", "dst")
	for s, row := range m.queues {
		for d, q := range row {
			q.meter = &linkMeter{
				depthHist: depthHist,
				depthHW:   hwVec.With(strconv.Itoa(s), strconv.Itoa(d)),
			}
		}
	}
}

// procMeters is one processor's pre-resolved metric handles; nil on a
// realProc means telemetry off.
type procMeters struct {
	reg *metrics.Registry

	linkMsgs  []*metrics.Counter // per destination, all-phases totals
	linkBytes []*metrics.Counter
	parks     *metrics.Counter
	recvs     *metrics.Counter
	stashHW   *metrics.Gauge

	phaseWall *metrics.HistogramVec
	// Per-phase link rows, resolved once per phase name (on the first
	// SetPhase into it), so Send stays lookup-free.
	phaseMsgsVec, phaseBytesVec *metrics.CounterVec
	phaseMsgs, phaseBytes       []*metrics.Counter
	phaseRows                   map[string][2][]*metrics.Counter
	phaseStart                  float64 // wall µs of the current phase's start
}

// newProcMeters resolves rank r's handles against reg.
func newProcMeters(reg *metrics.Registry, r, procs int, phase string, now float64) *procMeters {
	mt := &procMeters{
		reg:          reg,
		parks:        reg.Counter("transport_parks_total", "receiver parks on the SPSC notify channel", "rank").With(strconv.Itoa(r)),
		recvs:        reg.Counter("transport_recvs_total", "completed receives", "rank").With(strconv.Itoa(r)),
		stashHW:      reg.Gauge("transport_stash_depth_hw", "high-water mark of tag-mismatched stashed messages", "rank").With(strconv.Itoa(r)),
		phaseWall:    reg.Histogram("transport_phase_wall_us", "wall-clock microseconds per phase span", "phase"),
		phaseMsgsVec: reg.Counter("transport_phase_link_msgs_total", "counted messages per (phase,src,dst)", "phase", "src", "dst"),
		phaseBytesVec: reg.Counter("transport_phase_link_bytes_total",
			"counted payload bytes per (phase,src,dst); 8 bytes per machine word", "phase", "src", "dst"),
		phaseRows:  make(map[string][2][]*metrics.Counter),
		phaseStart: now,
	}
	msgsVec := reg.Counter("transport_link_msgs_total", "counted messages per (src,dst) link", "src", "dst")
	bytesVec := reg.Counter("transport_link_bytes_total",
		"counted payload bytes per (src,dst) link; 8 bytes per machine word", "src", "dst")
	src := strconv.Itoa(r)
	mt.linkMsgs = make([]*metrics.Counter, procs)
	mt.linkBytes = make([]*metrics.Counter, procs)
	for d := 0; d < procs; d++ {
		dst := strconv.Itoa(d)
		mt.linkMsgs[d] = msgsVec.With(src, dst)
		mt.linkBytes[d] = bytesVec.With(src, dst)
	}
	mt.setPhase(r, procs, phase)
	return mt
}

// setPhase switches the pre-resolved per-phase link row (resolving and
// caching it on the phase's first use by this rank).
func (mt *procMeters) setPhase(r, procs int, phase string) {
	if row, ok := mt.phaseRows[phase]; ok {
		mt.phaseMsgs, mt.phaseBytes = row[0], row[1]
		return
	}
	src := strconv.Itoa(r)
	msgs := make([]*metrics.Counter, procs)
	bytes := make([]*metrics.Counter, procs)
	for d := 0; d < procs; d++ {
		dst := strconv.Itoa(d)
		msgs[d] = mt.phaseMsgsVec.With(phase, src, dst)
		bytes[d] = mt.phaseBytesVec.With(phase, src, dst)
	}
	mt.phaseRows[phase] = [2][]*metrics.Counter{msgs, bytes}
	mt.phaseMsgs, mt.phaseBytes = msgs, bytes
}

// noteSend records one counted message on the pre-resolved handles.
// The rank doubles as the counter shard so each producer keeps hitting
// its own cache line.
func (mt *procMeters) noteSend(rank, dst, words int) {
	mt.linkMsgs[dst].AddShard(rank, 1)
	mt.linkBytes[dst].AddShard(rank, int64(words)*8)
	mt.phaseMsgs[dst].AddShard(rank, 1)
	mt.phaseBytes[dst].AddShard(rank, int64(words)*8)
}

// notePhaseEnd observes the wall span of the phase ending now.
func (mt *procMeters) notePhaseEnd(phase string, now float64) {
	mt.phaseWall.With(phase).Observe(int64(now - mt.phaseStart))
	mt.phaseStart = now
}

// --- wall-clock trace events ---

// tracing reports whether this processor records events; cached as a
// bool on realProc so the hot paths pay one load.
func (p *realProc) tracing() bool { return p.tr }

// emit stamps and records one event, mirroring the emulator's emit:
// Seq is per-rank (like the goroutine scheduler — the real machine has
// no deterministic global order to offer), timestamps are wall-clock
// microseconds since the run started.
func (p *realProc) emit(ev sim.Event) {
	p.seq++
	ev.Seq = p.seq
	ev.Rank = p.rank
	if ev.Phase == "" {
		ev.Phase = p.phase
	}
	if p.m.cfg.Trace {
		p.events = append(p.events, ev)
	}
	if p.m.cfg.Sink != nil {
		p.m.cfg.Sink.Emit(ev)
	}
	if p.m.cfg.Flight != nil {
		p.m.cfg.Flight.Note(ev)
	}
}

// Events returns the wall-clock structured event streams of the most
// recent Run, ordered by rank (nil unless RealConfig.Trace was set).
// The streams use the same sim.Event schema and message-id scheme as
// the emulator, so every exporter in internal/trace consumes them
// unchanged — only the meaning of Time differs (wall microseconds
// since run start, never virtual time; the two units never appear in
// one capture).
func (m *RealMachine) Events() [][]sim.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]sim.Event, len(m.events))
	for i, row := range m.events {
		out[i] = append([]sim.Event(nil), row...)
	}
	return out
}
