// Package serve wraps the PACK/UNPACK library in a long-running
// concurrent service: many independent jobs — each a whole distributed
// PACK or UNPACK problem — are multiplexed over a shared worker pool,
// with a bounded admission queue, typed backpressure, per-tenant plan
// caches, and an opt-in chaos mode riding the fault-injection
// machinery of internal/sim.
//
// The shape follows ViPIOS (a client–server system wrapped around
// exactly this kind of data-redistribution kernel) and the
// group-communication-API framing of the Scala HPC work: the service
// boundary takes global problems, the library underneath runs them as
// SPMD machine executions on either transport backend.
//
//	srv, _ := serve.New(serve.Config{Workers: 8, Queue: 256})
//	fut, err := srv.Submit(&serve.Job{Tenant: "t0", Kind: serve.JobPack,
//	    Layout: layout, Global: data, Mask: mask})
//	if serve.IsOverloaded(err) { /* back off for err.RetryAfter */ }
//	resp, err := fut.Wait()
//	// resp.Vector is the packed result, byte-identical to the
//	// sequential reference internal/seq.Pack(data, mask).
//
// Latency is accounted on two clocks (DESIGN.md §16): every response
// carries wall-clock queue and service durations (what an operator
// sees), and — on the sim backend — the virtual makespan of the
// machine run (what the cost model predicts, bit-for-bit reproducible
// and therefore gateable). The two never mix.
package serve

import (
	"errors"
	"fmt"
	"time"

	"packunpack/internal/dist"
	"packunpack/internal/pack"
)

// JobKind selects the operation a job performs.
type JobKind uint8

const (
	// JobPack gathers the masked elements of the distributed array
	// into a packed vector.
	JobPack JobKind = iota
	// JobUnpack scatters a vector back into an array under the mask.
	JobUnpack
)

func (k JobKind) String() string {
	switch k {
	case JobPack:
		return "pack"
	case JobUnpack:
		return "unpack"
	}
	return fmt.Sprintf("JobKind(%d)", int(k))
}

// Job is one independent PACK/UNPACK request. The client hands the
// service the global problem; the service scatters it over the
// machine's processors, runs the distributed algorithm, and gathers
// the result back. Jobs are immutable once submitted: the server reads
// but never writes the slices, and the response buffers are freshly
// allocated, so a tenant can never observe a neighbour's data.
type Job struct {
	// Tenant names the plan-cache domain this job shares: all jobs of
	// one tenant compile into and hit the same PlanCache (repeat mask
	// shapes amortize ranking to zero), while distinct tenants never
	// share fingerprints. Empty is a valid tenant name.
	Tenant string
	// Kind selects PACK or UNPACK.
	Kind JobKind
	// Layout is the block-cyclic distribution of the array. The
	// machine size is Layout.Procs().
	Layout *dist.Layout
	// Global is the global array in row-major order: the data to pack,
	// or UNPACK's field array (unselected positions keep its values).
	Global []int
	// Mask is the global mask, conformable with Global.
	Mask []bool
	// Vector is UNPACK's global input vector; it must hold at least as
	// many elements as the mask selects. Ignored by JobPack.
	Vector []int
	// Scheme selects the storage/message scheme (SSS/CSS/CMS; CMS is
	// PACK-only and falls back to CSS for UNPACK, matching the paper).
	Scheme pack.Scheme
	// VectorW is the block size of the packed/input vector's
	// distribution; 0 is the paper's block default.
	VectorW int

	// gate, when non-nil, stalls the job at execution start until the
	// channel closes. Admission/backpressure tests use it to hold
	// workers busy deterministically; there is no exported way to set
	// it.
	gate <-chan struct{}
}

// Response is the outcome of one job. All result buffers are owned by
// the caller (never aliased by the server or other jobs).
type Response struct {
	// Vector is the packed result vector (JobPack), exactly Count
	// elements.
	Vector []int
	// Array is the unpacked global array (JobUnpack), conformable with
	// the job's Global.
	Array []int
	// Count is the number of selected mask elements.
	Count int

	// Queue and Service are the wall-clock durations the job spent
	// waiting for a worker and executing — the operator's clock.
	Queue   time.Duration
	Service time.Duration
	// VirtualUS is the virtual makespan of the machine run in
	// microseconds — the cost model's clock, bit-for-bit reproducible
	// for the same job on the sim backend, and exactly 0 on the real
	// backend (where Service is the measurement).
	VirtualUS float64
}

// ErrOverloaded is the typed backpressure error: the admission queue
// was full at Submit. The job was NOT accepted; retry after the hint.
type ErrOverloaded struct {
	// Queued and Capacity describe the admission queue at rejection.
	Queued, Capacity int
	// RetryAfter estimates when a slot should free up: the current
	// backlog divided by the pool's observed service rate (a fixed
	// fallback before any job has completed). A hint, not a promise.
	RetryAfter time.Duration
}

func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("serve: overloaded: admission queue full (%d/%d); retry after %v",
		e.Queued, e.Capacity, e.RetryAfter)
}

// IsOverloaded reports whether err is (or wraps) an ErrOverloaded.
func IsOverloaded(err error) bool {
	var o *ErrOverloaded
	return errors.As(err, &o)
}

// ErrClosed is returned by Submit after Close started: the server is
// draining and admits no new work.
var ErrClosed = errors.New("serve: server closed")

// ErrBadJob wraps job validation failures (nil layout, size
// mismatches, short vectors). The job was rejected before admission.
var ErrBadJob = errors.New("serve: invalid job")
