package loadgen

import (
	"fmt"
	"reflect"
	"testing"

	"packunpack/internal/transport"
)

// TestSameSeedSameRun pins loadgen determinism end to end: two runs
// with the same seed produce the identical arrival schedule, spans,
// quantiles and checksum; a different seed produces a different
// schedule.
func TestSameSeedSameRun(t *testing.T) {
	cfg := Config{Seed: 42, Requests: 20_000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\nvs\n%+v", a, b)
	}
	c, err := Run(Config{Seed: 43, Requests: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if c.SumUS == a.SumUS {
		t.Fatalf("different seeds, same latency checksum %d", a.SumUS)
	}
}

// TestGoldenRun pins the exact deterministic outputs for a fixed
// (seed, config) — the golden the satellite asks for. If an
// intentional change to the cost model, the mix, or the DES shifts
// these values, update them alongside the change.
func TestGoldenRun(t *testing.T) {
	res, err := Run(Config{Seed: 1, Requests: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("admitted=%d overloaded=%d p50=%d p99=%d p999=%d sum=%d duration=%d rate=%.3f",
		res.Admitted, res.Overloaded, res.P50US, res.P99US, res.P999US, res.SumUS, res.DurationUS, res.RatePerSec)
	const want = "admitted=50000 overloaded=0 p50=1279 p99=5119 p999=6399 sum=81635255 duration=13303519 rate=3749.648"
	if got != want {
		t.Fatalf("golden drift:\n got %s\nwant %s", got, want)
	}
	if len(res.Spans) != 256 {
		t.Fatalf("retained %d spans, want 256", len(res.Spans))
	}
}

// TestOverloadAtSaturation drives the model far past capacity and
// checks the admission accounting.
func TestOverloadAtSaturation(t *testing.T) {
	res, err := Run(Config{Seed: 7, Requests: 30_000, RatePerSec: 1e9, Workers: 2, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overloaded == 0 {
		t.Fatal("1 GHz arrivals on 2 workers never overloaded")
	}
	if res.Admitted+res.Overloaded != res.Requests {
		t.Fatalf("admitted %d + overloaded %d != %d requests", res.Admitted, res.Overloaded, res.Requests)
	}
	var arrivals int
	for _, c := range res.Classes {
		arrivals += c.Arrivals
	}
	if arrivals != res.Requests {
		t.Fatalf("class arrivals sum to %d, want %d", arrivals, res.Requests)
	}
}

// TestExecuteSoak runs a small execute-phase soak: every request's
// response byte-verified against its own sequential reference.
func TestExecuteSoak(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 60
	}
	res, err := Run(Config{Seed: 3, Requests: n, Execute: true, Workers: 4, Queue: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != n {
		t.Fatalf("executed %d of %d", res.Executed, n)
	}
}

// TestRunWallSmoke paces a short schedule against the real backend.
func TestRunWallSmoke(t *testing.T) {
	res, err := RunWall(Config{
		Seed: 5, Requests: 40, Workers: 2, Queue: 8,
		Backend: transport.BackendReal, RatePerSec: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted+res.Overloaded != res.Requests {
		t.Fatalf("admitted %d + overloaded %d != %d", res.Admitted, res.Overloaded, res.Requests)
	}
	if res.Admitted == 0 {
		t.Fatal("no request admitted")
	}
	if res.P50US <= 0 {
		t.Fatal("no wall latency observed")
	}
}
