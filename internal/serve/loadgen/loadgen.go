// Package loadgen is the open-loop traffic harness for internal/serve:
// a deterministic seeded arrival process (Poisson interarrivals drawn
// from splitmix64 — no time.Now anywhere in the decision path) over a
// mixed workload of PACK/UNPACK job classes.
//
// The harness runs on the library's two clocks (DESIGN.md §16):
//
//   - Run drives a discrete-event simulation of the service queue
//     (Workers parallel servers, a bounded FIFO of Queue slots,
//     admission rejection beyond that) in virtual microseconds. Each
//     class's service time is first measured as the warm (plan-cached)
//     virtual makespan of the real job through a real serve.Server on
//     the sim backend — byte-verified against internal/seq — so the
//     queueing model replays exactly what the service would charge.
//     The resulting latency histogram, quantiles, rejection count and
//     SumUS checksum are a pure function of (seed, config): the same
//     seed gives the identical arrival schedule and the identical
//     histogram, which is what makes a million-request soak gateable.
//
//   - Run can additionally execute every request for real
//     (Config.Execute): each arrival becomes a distinct job with its
//     own seeded payload, submitted through a shared serve.Server and
//     byte-compared against its own sequential reference. That is the
//     correctness-under-load soak; its wall-clock throughput is
//     reported but never gated.
//
//   - RunWall paces the same deterministic schedule in wall time
//     against a server on either backend (the real one in particular)
//     and reports observed wall latencies. Only the measurements are
//     wall-clock; the schedule and payloads stay seeded.
package loadgen

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"packunpack/internal/dist"
	"packunpack/internal/metrics"
	"packunpack/internal/pack"
	"packunpack/internal/seq"
	"packunpack/internal/serve"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

// splitmix64 advances *x and returns the next value of the stream.
// The standard constants (Steele et al.); fully deterministic and
// cheap enough for two draws per simulated request.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a splitmix64 draw to (0,1); never returns 0, so -log is
// always finite.
func unit(x *uint64) float64 {
	return (float64(splitmix64(x)>>11) + 0.5) * (1.0 / (1 << 53))
}

// Class is one workload class of the mix: a fixed layout, operation,
// scheme and mask density. Payloads vary per request (seeded), the
// shape does not — so a class has one plan-cache fingerprint per rank
// and one warm virtual service time.
type Class struct {
	Name    string
	Weight  int // relative arrival probability
	Dims    []dist.Dim
	Kind    serve.JobKind
	Scheme  pack.Scheme
	Density float64 // mask density in [0,1]
	VectorW int
}

// DefaultMix is the harness's stock workload: small/medium/large
// PACK and UNPACK jobs across all three schemes and two machine
// sizes, weighted toward the small end like a serving workload.
func DefaultMix() []Class {
	return []Class{
		{Name: "s4-pack-sss", Weight: 4, Dims: []dist.Dim{{N: 256, P: 4, W: 4}}, Kind: serve.JobPack, Scheme: pack.SchemeSSS, Density: 0.5},
		{Name: "s4-pack-cms", Weight: 4, Dims: []dist.Dim{{N: 256, P: 4, W: 4}}, Kind: serve.JobPack, Scheme: pack.SchemeCMS, Density: 0.9},
		{Name: "s4-unpack-css", Weight: 3, Dims: []dist.Dim{{N: 256, P: 4, W: 4}}, Kind: serve.JobUnpack, Scheme: pack.SchemeCSS, Density: 0.1},
		{Name: "m8-pack-css", Weight: 2, Dims: []dist.Dim{{N: 4096, P: 8, W: 8}}, Kind: serve.JobPack, Scheme: pack.SchemeCSS, Density: 0.5},
		{Name: "m8-unpack-css", Weight: 2, Dims: []dist.Dim{{N: 4096, P: 8, W: 8}}, Kind: serve.JobUnpack, Scheme: pack.SchemeCSS, Density: 0.5},
		{Name: "m4-pack-2d", Weight: 2, Dims: []dist.Dim{{N: 64, P: 2, W: 4}, {N: 64, P: 2, W: 4}}, Kind: serve.JobPack, Scheme: pack.SchemeCMS, Density: 0.25},
		{Name: "l8-pack-cms", Weight: 1, Dims: []dist.Dim{{N: 32768, P: 8, W: 16}}, Kind: serve.JobPack, Scheme: pack.SchemeCMS, Density: 0.25},
		{Name: "l8-unpack-sss", Weight: 1, Dims: []dist.Dim{{N: 32768, P: 8, W: 16}}, Kind: serve.JobUnpack, Scheme: pack.SchemeSSS, Density: 0.25},
	}
}

// SmallMix is a low-cost workload of small layouts across both kinds
// and all three schemes. Its point is wall-clock budget: a
// million-request execute soak (every request run for real and
// byte-verified) finishes in minutes on one core, where DefaultMix
// would take tens of minutes.
func SmallMix() []Class {
	return []Class{
		{Name: "t2-pack-sss", Weight: 3, Dims: []dist.Dim{{N: 64, P: 2, W: 4}}, Kind: serve.JobPack, Scheme: pack.SchemeSSS, Density: 0.5},
		{Name: "t4-pack-cms", Weight: 3, Dims: []dist.Dim{{N: 128, P: 4, W: 2}}, Kind: serve.JobPack, Scheme: pack.SchemeCMS, Density: 0.7},
		{Name: "t4-unpack-css", Weight: 2, Dims: []dist.Dim{{N: 128, P: 4, W: 2}}, Kind: serve.JobUnpack, Scheme: pack.SchemeCSS, Density: 0.3},
		{Name: "t4-pack-css", Weight: 2, Dims: []dist.Dim{{N: 256, P: 4, W: 4}}, Kind: serve.JobPack, Scheme: pack.SchemeCSS, Density: 0.5},
		{Name: "t2-unpack-sss", Weight: 1, Dims: []dist.Dim{{N: 64, P: 2, W: 4}}, Kind: serve.JobUnpack, Scheme: pack.SchemeSSS, Density: 0.9},
	}
}

// Config parameterizes a harness run.
type Config struct {
	// Seed drives everything: arrival times, class choices, payloads.
	Seed uint64
	// Requests is the number of arrivals to generate.
	Requests int
	// RatePerSec is the open-loop Poisson arrival rate. 0 derives a
	// rate putting the modelled pool at ~70% utilization — itself a
	// pure function of the measured service times, hence still
	// deterministic.
	RatePerSec float64
	// Workers and Queue mirror serve.Config: the modelled pool size
	// and admission-queue capacity (defaults 8 and 256).
	Workers, Queue int
	// Mix is the workload; nil means DefaultMix.
	Mix []Class
	// Params are the sim cost-model constants (zero value: CM5).
	Params sim.Params
	// Execute additionally runs every admitted arrival through a real
	// serve.Server (sim backend) with a per-request payload,
	// byte-verifying each response against internal/seq.
	Execute bool
	// Chaos, with Execute, runs the execute-phase server in chaos
	// mode: responses must then be byte-identical or structured
	// FaultBudgetErrors (counted in Result.ExecFaulted).
	Chaos *sim.FaultConfig
	// Backend selects the execute-phase backend (default sim; RunWall
	// defaults to real).
	Backend transport.Backend
	// Sched is the sim scheduling mode for measurement and execution.
	Sched sim.Sched
	// Spans caps the retained per-request spans (default 256, for the
	// Chrome trace export).
	Spans int
	// Metrics optionally instruments the execute/wall-phase server.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	if c.Params == (sim.Params{}) {
		c.Params = sim.CM5Params()
	}
	if c.Spans <= 0 {
		c.Spans = 256
	}
	return c
}

// ClassStat reports one class's measured service time and arrival
// share.
type ClassStat struct {
	Name      string `json:"name"`
	Weight    int    `json:"weight"`
	ServiceUS uint64 `json:"service_us"` // warm virtual makespan
	Arrivals  int    `json:"arrivals"`
}

// Span is one request's life in the modelled queue, in virtual µs.
type Span struct {
	Class     string
	Worker    int
	ArrivalUS uint64
	StartUS   uint64
	DoneUS    uint64
}

// Result is a harness run's report. In Run (the DES) every field up
// to Spans is deterministic for a given (seed, config); the Exec*
// fields describe the optional wall-clock execute phase.
type Result struct {
	Seed       uint64  `json:"seed"`
	Requests   int     `json:"requests"`
	Admitted   int     `json:"admitted"`
	Overloaded int     `json:"overloaded"`
	RatePerSec float64 `json:"rate_per_sec"`
	// DurationUS is the virtual makespan of the whole run; throughput
	// is admitted jobs over that duration.
	DurationUS    uint64  `json:"duration_us"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency quantiles of admitted jobs (queue wait + service),
	// virtual µs, from the log-linear histogram (deterministic bucket
	// upper bounds).
	P50US  int64 `json:"p50_us"`
	P99US  int64 `json:"p99_us"`
	P999US int64 `json:"p999_us"`
	// SumUS is the exact sum of all observed latencies — the
	// determinism checksum a golden test pins.
	SumUS   uint64      `json:"sum_us"`
	Classes []ClassStat `json:"classes"`
	Spans   []Span      `json:"-"`

	// Execute-phase outcome (zero unless Config.Execute).
	Executed    int     `json:"executed,omitempty"`
	ExecFaulted int     `json:"exec_faulted,omitempty"` // structured chaos failures
	ExecWallMS  float64 `json:"exec_wall_ms,omitempty"`
}

// jobFor builds request req of class ci with a seeded payload, plus
// its sequential reference answer.
func jobFor(classes []Class, ci int, seed uint64, req int) (*serve.Job, []int, int) {
	c := classes[ci]
	l := dist.MustLayout(c.Dims...)
	n := l.GlobalSize()
	// A distinct, well-mixed stream per (seed, class, request).
	x := seed ^ 0xc1a55c0ffee ^ uint64(ci)<<48 ^ uint64(req)
	splitmix64(&x)
	global := make([]int, n)
	mask := make([]bool, n)
	for i := range global {
		v := splitmix64(&x)
		global[i] = int(v % 1_000_000)
		mask[i] = unit(&x) < c.Density
	}
	job := &serve.Job{
		Tenant: c.Name, Kind: c.Kind, Layout: l,
		Global: global, Mask: mask, Scheme: c.Scheme, VectorW: c.VectorW,
	}
	if c.Kind == serve.JobPack {
		want := seq.Pack(global, mask)
		return job, want, len(want)
	}
	count := seq.Count(mask)
	vec := make([]int, count)
	for i := range vec {
		vec[i] = int(splitmix64(&x) % 1_000_000)
	}
	job.Vector = vec
	return job, seq.Unpack(vec, mask, global), count
}

// verify compares a response against its reference.
func verify(job *serve.Job, resp *serve.Response, want []int, wantCount int) error {
	got := resp.Vector
	if job.Kind == serve.JobUnpack {
		got = resp.Array
	}
	if len(got) != len(want) || resp.Count != wantCount {
		return fmt.Errorf("loadgen: %s/%v: got %d elements count %d, want %d/%d",
			job.Tenant, job.Kind, len(got), resp.Count, len(want), wantCount)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("loadgen: %s/%v: element %d = %d, want %d",
				job.Tenant, job.Kind, i, got[i], want[i])
		}
	}
	return nil
}

// measureClasses runs each class's request-0 job through a
// single-worker server on the sim backend, twice — the cold call
// compiles the plans, the warm call replays them — byte-verifying
// both, and returns the warm virtual makespans in µs (the DES service
// times).
func measureClasses(cfg Config) ([]uint64, error) {
	srv, err := serve.New(serve.Config{
		Workers: 1, Queue: len(cfg.Mix) + 1,
		Backend: transport.BackendSim, Sched: cfg.Sched, Params: cfg.Params,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	svc := make([]uint64, len(cfg.Mix))
	for ci := range cfg.Mix {
		job, want, wantCount := jobFor(cfg.Mix, ci, cfg.Seed, 0)
		var warm float64
		for pass := 0; pass < 2; pass++ {
			fut, err := srv.Submit(job)
			if err != nil {
				return nil, fmt.Errorf("loadgen: measure %s: %w", cfg.Mix[ci].Name, err)
			}
			resp, err := fut.Wait()
			if err != nil {
				return nil, fmt.Errorf("loadgen: measure %s: %w", cfg.Mix[ci].Name, err)
			}
			if err := verify(job, resp, want, wantCount); err != nil {
				return nil, err
			}
			warm = resp.VirtualUS
		}
		svc[ci] = uint64(math.Ceil(warm))
		if svc[ci] == 0 {
			svc[ci] = 1
		}
	}
	return svc, nil
}

// schedule iterates the deterministic arrival process: each call
// yields the next interarrival gap (µs, possibly 0 at high rates) and
// class index. Two splitmix64 draws per request, nothing else.
type schedule struct {
	state   uint64
	meanIa  float64 // mean interarrival, µs
	weights []int
	total   int
}

func newSchedule(seed uint64, ratePerSec float64, classes []Class) *schedule {
	s := &schedule{state: seed, meanIa: 1e6 / ratePerSec}
	for _, c := range classes {
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		s.weights = append(s.weights, w)
		s.total += w
	}
	return s
}

func (s *schedule) next() (gapUS uint64, class int) {
	gapUS = uint64(-math.Log(unit(&s.state)) * s.meanIa)
	r := int(splitmix64(&s.state) % uint64(s.total))
	for i, w := range s.weights {
		if r < w {
			return gapUS, i
		}
		r -= w
	}
	return gapUS, len(s.weights) - 1
}

// deriveRate returns the deterministic default arrival rate: 70% of
// the modelled pool's capacity under the mix-weighted mean service
// time.
func deriveRate(cfg Config, svcUS []uint64) float64 {
	var num, den float64
	for i, c := range cfg.Mix {
		w := float64(c.Weight)
		if w <= 0 {
			w = 1
		}
		num += w * float64(svcUS[i])
		den += w
	}
	meanSvc := num / den
	return 0.7 * float64(cfg.Workers) * 1e6 / meanSvc
}

// Run measures the mix, then runs the discrete-event simulation of
// the admission queue over cfg.Requests Poisson arrivals — and, with
// cfg.Execute, pushes every arrival through a real server too. See
// the package comment for which outputs are deterministic.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	svcUS, err := measureClasses(cfg)
	if err != nil {
		return nil, err
	}
	rate := cfg.RatePerSec
	if rate <= 0 {
		rate = deriveRate(cfg, svcUS)
	}

	res := &Result{Seed: cfg.Seed, Requests: cfg.Requests, RatePerSec: rate}
	for i, c := range cfg.Mix {
		res.Classes = append(res.Classes, ClassStat{Name: c.Name, Weight: c.Weight, ServiceUS: svcUS[i]})
	}
	if err := res.simulate(cfg, svcUS, rate); err != nil {
		return nil, err
	}
	if cfg.Execute {
		if err := res.execute(cfg); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// busyHeap is a min-heap of (completion time, worker) — ties broken
// by worker index so the drain order is deterministic.
type busyHeap []struct {
	done   uint64
	worker int
}

func (h busyHeap) less(i, j int) bool {
	return h[i].done < h[j].done || (h[i].done == h[j].done && h[i].worker < h[j].worker)
}
func (h *busyHeap) push(done uint64, worker int) {
	*h = append(*h, struct {
		done   uint64
		worker int
	}{done, worker})
	for i := len(*h) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}
func (h *busyHeap) pop() (done uint64, worker int) {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.less(l, m) {
			m = l
		}
		if r < last && h.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return top.done, top.worker
}

// waitRing is the fixed-capacity FIFO of admitted-but-waiting
// requests.
type waitRing struct {
	buf []struct {
		arrival, svc uint64
		class        int
	}
	head, n int
}

func newWaitRing(capacity int) *waitRing {
	return &waitRing{buf: make([]struct {
		arrival, svc uint64
		class        int
	}, capacity)}
}
func (r *waitRing) push(arrival, svc uint64, class int) {
	r.buf[(r.head+r.n)%len(r.buf)] = struct {
		arrival, svc uint64
		class        int
	}{arrival, svc, class}
	r.n++
}
func (r *waitRing) pop() (arrival, svc uint64, class int) {
	e := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e.arrival, e.svc, e.class
}

// simulate runs the discrete-event model and fills the deterministic
// half of res.
func (res *Result) simulate(cfg Config, svcUS []uint64, rate float64) error {
	sched := newSchedule(cfg.Seed, rate, cfg.Mix)
	reg := metrics.NewRegistry()
	hist := reg.Histogram("loadgen_latency_us", "virtual total latency").With()

	var busy busyHeap
	free := make([]int, cfg.Workers)
	for i := range free {
		free[i] = cfg.Workers - 1 - i // pop from the tail: worker 0 first
	}
	fifo := newWaitRing(cfg.Queue)
	var t, lastDone, sum uint64

	record := func(class int, worker int, arrival, start, done uint64) {
		lat := done - arrival
		hist.Observe(int64(lat))
		sum += lat
		if done > lastDone {
			lastDone = done
		}
		if len(res.Spans) < cfg.Spans {
			res.Spans = append(res.Spans, Span{
				Class: cfg.Mix[class].Name, Worker: worker,
				ArrivalUS: arrival, StartUS: start, DoneUS: done,
			})
		}
	}
	// drain completes every worker whose job is done by time now,
	// handing freed workers the FIFO head (cascading: a dequeued job's
	// completion may itself free a worker before now).
	drain := func(now uint64) {
		for len(busy) > 0 && busy[0].done <= now {
			done, w := busy.pop()
			if fifo.n > 0 {
				arrival, svc, class := fifo.pop()
				record(class, w, arrival, done, done+svc)
				busy.push(done+svc, w)
			} else {
				free = append(free, w)
			}
		}
	}

	for i := 0; i < cfg.Requests; i++ {
		gap, class := sched.next()
		t += gap
		drain(t)
		res.Classes[class].Arrivals++
		switch {
		case len(free) > 0:
			w := free[len(free)-1]
			free = free[:len(free)-1]
			record(class, w, t, t, t+svcUS[class])
			busy.push(t+svcUS[class], w)
		case fifo.n < cfg.Queue:
			fifo.push(t, svcUS[class], class)
		default:
			res.Overloaded++
		}
	}
	drain(math.MaxUint64)

	res.Admitted = cfg.Requests - res.Overloaded
	res.DurationUS = lastDone
	if t > lastDone {
		res.DurationUS = t
	}
	if res.DurationUS > 0 {
		res.ThroughputRPS = float64(res.Admitted) / float64(res.DurationUS) * 1e6
	}
	res.P50US = hist.Quantile(0.50)
	res.P99US = hist.Quantile(0.99)
	res.P999US = hist.Quantile(0.999)
	res.SumUS = sum
	if got := hist.Count(); got != int64(res.Admitted) {
		return fmt.Errorf("loadgen: internal accounting: %d latencies for %d admitted", got, res.Admitted)
	}
	return nil
}

// execute replays the arrival stream's class choices as real jobs
// with per-request payloads through a shared server, byte-verifying
// every response. In-flight submissions are capped at the admission
// queue size so the server itself never rejects — the DES already
// models rejection; this phase is purely about correctness under
// concurrency, so it runs closed-loop at full tilt.
func (res *Result) execute(cfg Config) error {
	srv, err := serve.New(serve.Config{
		Workers: cfg.Workers, Queue: cfg.Queue,
		Backend: cfg.Backend, Sched: cfg.Sched, Params: cfg.Params,
		Metrics: cfg.Metrics, Chaos: cfg.Chaos,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	sched := newSchedule(cfg.Seed, 1, cfg.Mix) // gaps ignored; class stream replayed
	sem := make(chan struct{}, cfg.Queue)
	var wg sync.WaitGroup
	var executed, faulted atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	// The class stream is sequential (it shares the DES's splitmix64
	// schedule) but payload generation and verification are
	// per-request independent, so they run on a small pool feeding the
	// server — the submit path must not be the bottleneck on
	// multi-core hosts.
	type item struct{ i, class int }
	feed := make(chan item, 64)
	go func() {
		defer close(feed)
		for i := 0; i < cfg.Requests; i++ {
			_, class := sched.next()
			feed <- item{i, class}
		}
	}()
	gens := runtime.GOMAXPROCS(0)
	if gens < 4 {
		gens = 4
	}
	var gwg sync.WaitGroup
	for g := 0; g < gens; g++ {
		gwg.Add(1)
		go func() {
			defer gwg.Done()
			for it := range feed {
				if firstErr.Load() != nil {
					continue // drain the feed so the feeder never blocks
				}
				job, want, wantCount := jobFor(cfg.Mix, it.class, cfg.Seed, it.i)
				sem <- struct{}{}
				fut, err := srv.Submit(job)
				if err != nil {
					<-sem
					firstErr.CompareAndSwap(nil, fmt.Errorf("submit %d: %w", it.i, err))
					continue
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					resp, err := fut.Wait()
					switch {
					case err == nil:
						if verr := verify(job, resp, want, wantCount); verr != nil {
							firstErr.CompareAndSwap(nil, fmt.Errorf("request %d: %w", i, verr))
							return
						}
						executed.Add(1)
					case cfg.Chaos != nil && sim.IsFaultBudget(err):
						faulted.Add(1)
					default:
						firstErr.CompareAndSwap(nil, fmt.Errorf("request %d: %w", i, err))
					}
				}(it.i)
			}
		}()
	}
	gwg.Wait()
	wg.Wait()
	if v := firstErr.Load(); v != nil {
		return fmt.Errorf("loadgen: execute soak failed: %w", v.(error))
	}
	res.Executed = int(executed.Load())
	res.ExecFaulted = int(faulted.Load())
	res.ExecWallMS = float64(time.Since(start).Microseconds()) / 1e3
	return nil
}

// RunWall paces the deterministic schedule in wall time against a
// server (default: the real backend) and reports observed wall
// latencies. The decision path — arrival times, class choices,
// payloads — is still a pure function of the seed; only the
// measurements (and the admission outcomes, which depend on real
// timing) are wall-clock.
func RunWall(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Backend == transport.BackendSim && cfg.Chaos == nil {
		cfg.Backend = transport.BackendReal
	}
	svcUS, err := measureClasses(cfg) // byte-verifies the mix; rate derivation
	if err != nil {
		return nil, err
	}
	rate := cfg.RatePerSec
	if rate <= 0 {
		rate = deriveRate(cfg, svcUS)
	}
	srv, err := serve.New(serve.Config{
		Workers: cfg.Workers, Queue: cfg.Queue,
		Backend: cfg.Backend, Sched: cfg.Sched, Params: cfg.Params,
		Metrics: cfg.Metrics, Chaos: cfg.Chaos,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	res := &Result{Seed: cfg.Seed, Requests: cfg.Requests, RatePerSec: rate}
	for i, c := range cfg.Mix {
		res.Classes = append(res.Classes, ClassStat{Name: c.Name, Weight: c.Weight, ServiceUS: svcUS[i]})
	}
	reg := metrics.NewRegistry()
	hist := reg.Histogram("loadgen_wall_latency_us", "wall total latency").With()

	sched := newSchedule(cfg.Seed, rate, cfg.Mix)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sum uint64
	var firstErr error
	start := time.Now()
	var due time.Duration
	for i := 0; i < cfg.Requests; i++ {
		gap, class := sched.next()
		due += time.Duration(gap) * time.Microsecond
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		job, want, wantCount := jobFor(cfg.Mix, class, cfg.Seed, i)
		fut, err := srv.Submit(job)
		if err != nil {
			if serve.IsOverloaded(err) {
				res.Overloaded++
				res.Classes[class].Arrivals++
				continue
			}
			return nil, fmt.Errorf("loadgen: wall submit %d: %w", i, err)
		}
		res.Classes[class].Arrivals++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := fut.Wait()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				if verr := verify(job, resp, want, wantCount); verr != nil && firstErr == nil {
					firstErr = fmt.Errorf("request %d: %w", i, verr)
					return
				}
				lat := uint64((resp.Queue + resp.Service).Microseconds())
				hist.Observe(int64(lat))
				sum += lat
				res.Admitted++
			case cfg.Chaos != nil && sim.IsFaultBudget(err):
				res.ExecFaulted++
			default:
				if firstErr == nil {
					firstErr = fmt.Errorf("request %d: %w", i, err)
				}
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("loadgen: wall run failed: %w", firstErr)
	}
	res.DurationUS = uint64(time.Since(start).Microseconds())
	if res.DurationUS > 0 {
		res.ThroughputRPS = float64(res.Admitted) / float64(res.DurationUS) * 1e6
	}
	res.P50US = hist.Quantile(0.50)
	res.P99US = hist.Quantile(0.99)
	res.P999US = hist.Quantile(0.999)
	res.SumUS = sum
	res.Executed = res.Admitted
	return res, nil
}
