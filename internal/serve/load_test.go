package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"packunpack/internal/dist"
	"packunpack/internal/pack"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

// loadCase is one random job plus its sequential reference answer.
type loadCase struct {
	job       *Job
	want      []int // packed vector (JobPack) or unpacked array (JobUnpack)
	wantCount int
}

// drawLoadCase derives a random job from rng: 1-2 dimensional
// divisible layout (N = P*W*slices per dimension), random mask
// density, every scheme, both kinds. The reference answer is computed
// up front through internal/seq.
func drawLoadCase(rng *rand.Rand, tenant string) *loadCase {
	d := 1 + rng.Intn(2)
	dims := make([]dist.Dim, d)
	for i := range dims {
		p := []int{1, 2, 4}[rng.Intn(3)]
		w := 1 + rng.Intn(4)
		slices := 1 + rng.Intn(6)
		dims[i] = dist.Dim{N: p * w * slices, P: p, W: w}
	}
	l := dist.MustLayout(dims...)
	n := l.GlobalSize()
	global := make([]int, n)
	mask := make([]bool, n)
	density := rng.Float64()
	for i := range global {
		global[i] = rng.Intn(1_000_000)
		mask[i] = rng.Float64() < density
	}
	job := &Job{
		Tenant:  tenant,
		Kind:    JobKind(rng.Intn(2)),
		Layout:  l,
		Global:  global,
		Mask:    mask,
		Scheme:  []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS, pack.SchemeCMS}[rng.Intn(3)],
		VectorW: rng.Intn(4),
	}
	lc := &loadCase{job: job}
	if job.Kind == JobPack {
		lc.want = seq.Pack(global, mask)
		lc.wantCount = len(lc.want)
	} else {
		count := seq.Count(mask)
		vec := make([]int, count)
		for i := range vec {
			vec[i] = rng.Intn(1_000_000)
		}
		job.Vector = vec
		lc.want = seq.Unpack(vec, mask, global)
		lc.wantCount = count
	}
	return lc
}

// checkCase compares a response against the case's sequential
// reference, byte for byte.
func (lc *loadCase) check(resp *Response) error {
	got := resp.Vector
	if lc.job.Kind == JobUnpack {
		got = resp.Array
	}
	if len(got) != len(lc.want) {
		return fmt.Errorf("%v: got %d elements, want %d", lc.job.Kind, len(got), len(lc.want))
	}
	for i := range lc.want {
		if got[i] != lc.want[i] {
			return fmt.Errorf("%v: element %d = %d, want %d", lc.job.Kind, i, got[i], lc.want[i])
		}
	}
	if resp.Count != lc.wantCount {
		return fmt.Errorf("%v: count %d, want %d", lc.job.Kind, resp.Count, lc.wantCount)
	}
	return nil
}

// submitAll pushes every case through the server from nSub concurrent
// submitters and waits for all futures. Each case's response is checked
// against its own reference — a job corrupted by a concurrent
// neighbour fails its own comparison.
func submitAll(t *testing.T, s *Server, cases []*loadCase, nSub int) {
	t.Helper()
	var wg sync.WaitGroup
	work := make(chan int)
	errs := make([]error, len(cases))
	for g := 0; g < nSub; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fut, err := s.Submit(cases[i].job)
				if err != nil {
					errs[i] = fmt.Errorf("submit: %w", err)
					continue
				}
				resp, err := fut.Wait()
				if err != nil {
					errs[i] = err
					continue
				}
				errs[i] = cases[i].check(resp)
			}
		}()
	}
	for i := range cases {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("case %d (%v, %d elems, scheme %v): %v",
				i, cases[i].job.Kind, len(cases[i].job.Global), cases[i].job.Scheme, err)
		}
	}
}

// TestCorrectnessUnderLoad is the correctness-under-load property
// test: N random concurrent jobs through one server, every response
// byte-identical to the sequential reference — across sim-coop,
// sim-goroutine, and real backends.
func TestCorrectnessUnderLoad(t *testing.T) {
	const seed = 1
	n := 64
	if testing.Short() {
		n = 16
	}
	backends := []struct {
		name    string
		backend transport.Backend
		sched   sim.Sched
	}{
		{"sim-coop", transport.BackendSim, sim.SchedCooperative},
		{"sim-goroutine", transport.BackendSim, sim.SchedGoroutine},
		{"real", transport.BackendReal, 0},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cases := make([]*loadCase, n)
			for i := range cases {
				cases[i] = drawLoadCase(rng, fmt.Sprintf("tenant-%d", i%3))
			}
			s := newTestServer(t, Config{
				Workers: 4, Queue: n,
				Backend: b.backend, Sched: b.sched,
			})
			submitAll(t, s, cases, 8)
		})
	}
}

// TestRaceHammerSharedPlanCache hammers Submit from many goroutines
// with jobs that share plan-cache fingerprints within each tenant —
// the compile path races on the shared cache by construction. Run
// with -race this doubles as the data-race test; in any mode every
// response must stay byte-identical.
func TestRaceHammerSharedPlanCache(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A few distinct shapes, repeated many times across tenants: the
	// repeats guarantee concurrent cache hits and concurrent compiles
	// of the same fingerprint.
	shapes := make([]*loadCase, 6)
	for i := range shapes {
		shapes[i] = drawLoadCase(rng, "")
	}
	reps := 10
	if testing.Short() {
		reps = 3
	}
	var cases []*loadCase
	for rep := 0; rep < reps; rep++ {
		for i, sh := range shapes {
			job := *sh.job
			job.Tenant = fmt.Sprintf("tenant-%d", (rep+i)%3)
			cases = append(cases, &loadCase{job: &job, want: sh.want, wantCount: sh.wantCount})
		}
	}
	s := newTestServer(t, Config{Workers: 8, Queue: len(cases)})
	submitAll(t, s, cases, 16)
}

// TestChaosJobsSucceedOrFailStructured pins graceful degradation: with
// chaos mode on, every job either succeeds byte-identically (the
// reliable transport absorbed the faults) or fails with a structured
// FaultBudgetError — and a failing job never corrupts a neighbour
// (every other job is still checked against its own reference).
func TestChaosJobsSucceedOrFailStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 48
	if testing.Short() {
		n = 12
	}
	cases := make([]*loadCase, n)
	for i := range cases {
		cases[i] = drawLoadCase(rng, fmt.Sprintf("tenant-%d", i%4))
	}
	s := newTestServer(t, Config{
		Workers: 4, Queue: n,
		// Harsh enough that some jobs exhaust the 2-retry budget while
		// most still get through — both arms of the contract run.
		Chaos: &sim.FaultConfig{
			Seed: 7, Drop: 0.35, Dup: 0.05, Reorder: 0.05,
			Delay: 0.05, Stall: 0.05, MaxRetries: 2,
		},
	})

	var wg sync.WaitGroup
	var mu sync.Mutex
	okN, budgetN := 0, 0
	for i := range cases {
		wg.Add(1)
		go func(lc *loadCase, i int) {
			defer wg.Done()
			fut, err := s.Submit(lc.job)
			if err != nil {
				t.Errorf("case %d: submit: %v", i, err)
				return
			}
			resp, err := fut.Wait()
			switch {
			case err == nil:
				if cerr := lc.check(resp); cerr != nil {
					t.Errorf("case %d: chaos corrupted a successful job: %v", i, cerr)
					return
				}
				mu.Lock()
				okN++
				mu.Unlock()
			case sim.IsFaultBudget(err):
				mu.Lock()
				budgetN++
				mu.Unlock()
			default:
				t.Errorf("case %d: unstructured chaos failure: %v", i, err)
			}
		}(cases[i], i)
	}
	wg.Wait()
	if okN == 0 {
		t.Fatal("chaos absorbed nothing: no job succeeded")
	}
	t.Logf("chaos: %d/%d succeeded byte-identically, %d structured budget failures", okN, n, budgetN)

	// The server must still be healthy after budget failures: a clean
	// job on a fresh machine (chaos still on, but the fault schedule
	// restarts per rebuilt machine) completes or fails structured.
	fut, err := s.Submit(cases[0].job)
	if err != nil {
		t.Fatalf("post-chaos submit: %v", err)
	}
	if resp, err := fut.Wait(); err == nil {
		if cerr := cases[0].check(resp); cerr != nil {
			t.Fatalf("post-chaos job corrupted: %v", cerr)
		}
	} else if !sim.IsFaultBudget(err) {
		t.Fatalf("post-chaos job failed unstructured: %v", err)
	}
}

// TestChaosRejectedOnRealBackend pins the constructor guard.
func TestChaosRejectedOnRealBackend(t *testing.T) {
	_, err := New(Config{
		Backend: transport.BackendReal,
		Chaos:   &sim.FaultConfig{Seed: 1, Drop: 0.1},
	})
	if err == nil {
		t.Fatal("New accepted chaos mode on the real backend")
	}
}
