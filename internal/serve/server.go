package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"packunpack/internal/metrics"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

// Config describes a service instance.
type Config struct {
	// Workers is the shared worker-pool size: how many jobs execute
	// concurrently. Each worker runs one whole machine at a time (the
	// machine itself may spawn P processor goroutines on the real
	// backend). 0 defaults to GOMAXPROCS.
	Workers int
	// Queue is the admission-queue capacity: jobs admitted but not yet
	// picked up by a worker. A Submit that finds the queue full is
	// rejected with ErrOverloaded — the open-loop overload contract.
	// 0 defaults to 64.
	Queue int
	// Backend selects the transport every job's machine runs on:
	// BackendSim (virtual clock, deterministic, the default) or
	// BackendReal (host-parallel, wall clock).
	Backend transport.Backend
	// Sched is the sim backend's scheduling mode (ignored by the real
	// backend). SchedCooperative gives per-job deterministic virtual
	// makespans.
	Sched sim.Sched
	// Params are the cost-model constants each machine carries.
	Params sim.Params
	// Metrics, when non-nil, instruments the service (and every
	// machine it runs): job counters, queue depth, wall-clock latency
	// histograms, virtual-makespan histogram. Attaching a registry
	// never changes any response byte or virtual time — the PR 8
	// invariant, extended to the service path and pinned by a test.
	Metrics *metrics.Registry
	// Chaos, when non-nil, is the opt-in chaos mode: every sim machine
	// runs under this deterministic fault-injection plan. Jobs then
	// either succeed byte-identically (the reliable transport absorbs
	// the faults) or fail with a structured FaultBudgetError; they can
	// never corrupt another job's result (each job owns its buffers).
	// Rejected with the real backend, like sim.Config.Faults.
	Chaos *sim.FaultConfig
	// DisablePlans turns the per-tenant plan caches off (every job
	// ranks from scratch). Mostly for A/B tests.
	DisablePlans bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	return c
}

// task is one admitted job in flight.
type task struct {
	job       *Job
	fut       *Future
	submitted time.Time
}

// Future is the handle Submit returns: wait on it for the job's
// response. Safe to Wait from multiple goroutines.
type Future struct {
	done chan struct{}
	resp *Response
	err  error
}

// Wait blocks until the job completes and returns its response or
// execution error.
func (f *Future) Wait() (*Response, error) {
	<-f.done
	return f.resp, f.err
}

// Done returns a channel closed when the job has completed.
func (f *Future) Done() <-chan struct{} { return f.done }

func (f *Future) complete(resp *Response, err error) {
	f.resp, f.err = resp, err
	close(f.done)
}

// Server multiplexes PACK/UNPACK jobs over a shared worker pool.
type Server struct {
	cfg   Config
	queue chan *task

	mu     sync.RWMutex // guards closed vs. in-flight Submits
	closed bool
	wg     sync.WaitGroup

	tenants sync.Map // tenant name -> *pack.PlanCache

	depth       atomic.Int64 // jobs admitted but not yet started
	ewmaSvcUS   atomic.Int64 // EWMA of wall service time, microseconds
	jobsStarted atomic.Int64

	// Metric handles; all nil-safe no-ops without a registry.
	mJobs     *metrics.CounterVec
	mOverload *metrics.Counter
	mDepth    *metrics.Gauge
	mDepthHW  *metrics.Gauge
	mLatency  *metrics.HistogramVec
	mVirtual  *metrics.Histogram
}

// New builds and starts a server: its workers are running and Submit
// is ready. Close drains it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Chaos != nil && cfg.Backend == transport.BackendReal {
		return nil, fmt.Errorf("serve: chaos mode is sim-only (fault injection needs the emulator's omniscient network)")
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *task, cfg.Queue),
	}
	r := cfg.Metrics
	s.mJobs = r.Counter("serve_jobs_total", "jobs completed by the service", "tenant", "kind", "outcome")
	s.mOverload = r.Counter("serve_overloaded_total", "submissions rejected by admission control").With()
	s.mDepth = r.Gauge("serve_queue_depth", "jobs admitted but not yet started").With()
	s.mDepthHW = r.Gauge("serve_queue_depth_hw", "admission-queue high-water mark").With()
	s.mLatency = r.Histogram("serve_latency_us", "wall-clock job latency by stage, microseconds", "stage")
	s.mVirtual = r.Histogram("serve_virtual_us", "virtual machine makespan per job, microseconds (sim backend)").With()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// validate rejects malformed jobs before admission.
func (j *Job) validate() error {
	if j == nil || j.Layout == nil {
		return fmt.Errorf("%w: nil job or layout", ErrBadJob)
	}
	n := j.Layout.GlobalSize()
	if len(j.Global) != n {
		return fmt.Errorf("%w: global array has %d elements, layout %d", ErrBadJob, len(j.Global), n)
	}
	if len(j.Mask) != n {
		return fmt.Errorf("%w: mask has %d elements, layout %d", ErrBadJob, len(j.Mask), n)
	}
	if j.Kind != JobPack && j.Kind != JobUnpack {
		return fmt.Errorf("%w: unknown kind %v", ErrBadJob, j.Kind)
	}
	return nil
}

// Submit validates and admits a job. It never blocks: a full admission
// queue rejects with *ErrOverloaded (deterministically — the queue
// capacity is fixed and the check is a single non-blocking attempt),
// a closed server with ErrClosed. On success the returned Future
// resolves when the job completes.
func (s *Server) Submit(job *Job) (*Future, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	t := &task{job: job, fut: &Future{done: make(chan struct{})}, submitted: time.Now()}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	select {
	case s.queue <- t:
		d := s.depth.Add(1)
		s.mDepth.Set(d)
		s.mDepthHW.SetMax(d)
		return t.fut, nil
	default:
		s.mOverload.Inc()
		return nil, &ErrOverloaded{
			Queued:     cap(s.queue),
			Capacity:   cap(s.queue),
			RetryAfter: s.retryAfter(),
		}
	}
}

// retryAfter estimates how long until a queue slot frees: the backlog
// ahead of a retry, served at the pool's observed per-job rate. Before
// any job has completed the estimate falls back to one millisecond.
func (s *Server) retryAfter() time.Duration {
	per := time.Duration(s.ewmaSvcUS.Load()) * time.Microsecond
	if per <= 0 {
		per = time.Millisecond
	}
	backlog := int(s.depth.Load()) + s.cfg.Workers // queued + possibly in service
	return per * time.Duration(1+backlog/s.cfg.Workers)
}

// Close stops admission and drains: every admitted job still runs to
// completion (its Future resolves) before Close returns. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// TenantPlanStats returns the plan-cache counters of one tenant's
// shared cache (zero when the tenant has no cache yet or plans are
// disabled).
func (s *Server) TenantPlanStats(tenant string) pack.PlanCacheStats {
	if v, ok := s.tenants.Load(tenant); ok {
		return v.(*pack.PlanCache).Stats()
	}
	return pack.PlanCacheStats{}
}

// planCacheFor resolves the tenant's shared plan cache.
func (s *Server) planCacheFor(tenant string) *pack.PlanCache {
	if s.cfg.DisablePlans {
		return nil
	}
	if v, ok := s.tenants.Load(tenant); ok {
		return v.(*pack.PlanCache)
	}
	v, _ := s.tenants.LoadOrStore(tenant, pack.NewPlanCache())
	return v.(*pack.PlanCache)
}

// machineFor reuses (or builds) the worker-local machine for a given
// processor count. Machines are per worker, never shared: Machine.Run
// must not be called concurrently.
func (s *Server) machineFor(cache map[int]transport.Machine, procs int) (transport.Machine, error) {
	if m, ok := cache[procs]; ok {
		return m, nil
	}
	m, err := transport.New(s.cfg.Backend, sim.Config{
		Procs:   procs,
		Params:  s.cfg.Params,
		Sched:   s.cfg.Sched,
		Metrics: s.cfg.Metrics,
		Faults:  s.cfg.Chaos,
	})
	if err != nil {
		return nil, err
	}
	cache[procs] = m
	return m, nil
}

// worker drains the admission queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	machines := make(map[int]transport.Machine)
	for t := range s.queue {
		d := s.depth.Add(-1)
		s.mDepth.Set(d)
		start := time.Now()
		if t.job.gate != nil {
			<-t.job.gate
		}
		s.jobsStarted.Add(1)

		resp, err := s.execute(machines, t.job)

		svc := time.Since(start)
		outcome := "ok"
		if err != nil {
			outcome = "error"
		} else {
			resp.Queue = start.Sub(t.submitted)
			resp.Service = svc
			s.mLatency.With("queue").Observe(resp.Queue.Microseconds())
			s.mLatency.With("service").Observe(svc.Microseconds())
			s.mLatency.With("total").Observe((resp.Queue + svc).Microseconds())
			s.mVirtual.Observe(int64(resp.VirtualUS))
		}
		s.mJobs.With(t.job.Tenant, t.job.Kind.String(), outcome).Inc()
		s.noteService(svc)
		t.fut.complete(resp, err)
	}
}

// execute runs one job on the worker's machine, rebuilding the machine
// after an errored run (an aborted machine may hold residual state; a
// fresh one is cheap and provably clean).
func (s *Server) execute(machines map[int]transport.Machine, job *Job) (*Response, error) {
	procs := job.Layout.Procs()
	m, err := s.machineFor(machines, procs)
	if err != nil {
		return nil, err
	}
	resp, err := runJob(m, job, s.planCacheFor(job.Tenant))
	if err != nil {
		delete(machines, procs)
		return nil, err
	}
	return resp, nil
}

// noteService folds one wall service time into the EWMA (alpha 1/8)
// behind the RetryAfter hint.
func (s *Server) noteService(svc time.Duration) {
	us := svc.Microseconds()
	if us <= 0 {
		us = 1
	}
	old := s.ewmaSvcUS.Load()
	if old == 0 {
		s.ewmaSvcUS.CompareAndSwap(0, us)
		return
	}
	s.ewmaSvcUS.CompareAndSwap(old, old+(us-old)/8)
}
