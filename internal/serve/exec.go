package serve

import (
	"fmt"

	"packunpack/internal/dist"
	"packunpack/internal/pack"
	"packunpack/internal/transport"
)

// runJob executes one job as a full SPMD machine run: scatter the
// global inputs over the processors, run the distributed algorithm,
// gather the result into freshly allocated response buffers. The
// machine is owned by the calling worker; plans is the tenant's shared
// cache (nil disables planning).
func runJob(m transport.Machine, job *Job, plans *pack.PlanCache) (*Response, error) {
	l := job.Layout
	procs := l.Procs()
	locals := dist.Scatter(l, job.Global)
	maskLocals := dist.Scatter(l, job.Mask)
	opt := pack.Options{Scheme: job.Scheme, VectorW: job.VectorW, Plans: plans}
	resp := &Response{}

	switch job.Kind {
	case JobPack:
		results := make([]*pack.Result[int], procs)
		err := m.Run(func(ep transport.Endpoint) {
			r, err := pack.Pack(ep, l, locals[ep.Rank()], maskLocals[ep.Rank()], opt)
			if err != nil {
				panic(err)
			}
			results[ep.Rank()] = r
		})
		if err != nil {
			return nil, fmt.Errorf("serve: pack job: %w", err)
		}
		count := results[0].Ranking.Size
		out := make([]int, count)
		for rank, r := range results {
			for i, v := range r.V {
				out[r.Vec.ToGlobal(rank, i)] = v
			}
		}
		resp.Vector, resp.Count = out, count

	case JobUnpack:
		// CMS is PACK-only (the paper defines no CMS UNPACK); fall back
		// to CSS exactly like the library's benchmarks do.
		if opt.Scheme == pack.SchemeCMS {
			opt.Scheme = pack.SchemeCSS
		}
		nPrime := len(job.Vector)
		vdist, err := dist.NewVectorDist(nPrime, procs, job.VectorW)
		if err != nil {
			return nil, fmt.Errorf("%w: input vector distribution: %v", ErrBadJob, err)
		}
		outs := make([][]int, procs)
		counts := make([]int, procs)
		err = m.Run(func(ep transport.Endpoint) {
			rank := ep.Rank()
			lv := make([]int, vdist.LocalLen(rank))
			for i := range lv {
				lv[i] = job.Vector[vdist.ToGlobal(rank, i)]
			}
			r, err := pack.Unpack(ep, l, lv, nPrime, maskLocals[rank], locals[rank], opt)
			if err != nil {
				panic(err)
			}
			outs[rank] = r.A
			counts[rank] = r.Ranking.Size
		})
		if err != nil {
			return nil, fmt.Errorf("serve: unpack job: %w", err)
		}
		resp.Array = dist.Gather(l, outs)
		resp.Count = counts[0]
	}

	// Two-clock rule: the virtual makespan is meaningful (and
	// deterministic) on the sim backend only; the real backend's
	// MaxClock is wall time, which Response.Service already carries.
	if m.Backend() == transport.BackendSim {
		resp.VirtualUS = m.MaxClock()
	}
	return resp, nil
}
