package serve

import (
	"errors"
	"testing"
	"time"

	"packunpack/internal/dist"
	"packunpack/internal/metrics"
	"packunpack/internal/pack"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
)

// testLayout is a small divisible layout: 64 elements over 4
// processors, block size 4.
func testLayout(t *testing.T) *dist.Layout {
	t.Helper()
	l, err := dist.NewLayout(dist.Dim{N: 64, P: 4, W: 4})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// fillJob builds a deterministic pack job from a seed.
func fillJob(l *dist.Layout, seed uint64, scheme pack.Scheme) *Job {
	n := l.GlobalSize()
	global := make([]int, n)
	mask := make([]bool, n)
	x := seed
	for i := range global {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		global[i] = int(x % 1_000_000)
		mask[i] = x%3 != 0
	}
	return &Job{Tenant: "t", Kind: JobPack, Layout: l, Global: global, Mask: mask, Scheme: scheme}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Params == (sim.Params{}) {
		cfg.Params = sim.CM5Params()
	}
	if cfg.Sched == 0 {
		cfg.Sched = sim.SchedCooperative
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSubmitPackMatchesSequentialReference(t *testing.T) {
	l := testLayout(t)
	s := newTestServer(t, Config{})
	for seed := uint64(1); seed <= 8; seed++ {
		job := fillJob(l, seed, pack.SchemeCMS)
		fut, err := s.Submit(job)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		resp, err := fut.Wait()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := seq.Pack(job.Global, job.Mask)
		if len(resp.Vector) != len(want) || resp.Count != len(want) {
			t.Fatalf("seed %d: got %d packed elements, want %d", seed, len(resp.Vector), len(want))
		}
		for i := range want {
			if resp.Vector[i] != want[i] {
				t.Fatalf("seed %d: packed[%d] = %d, want %d", seed, i, resp.Vector[i], want[i])
			}
		}
		if resp.VirtualUS <= 0 {
			t.Fatalf("seed %d: sim job reported no virtual makespan", seed)
		}
		if resp.Service <= 0 {
			t.Fatalf("seed %d: no wall service time", seed)
		}
	}
}

func TestSubmitUnpackMatchesSequentialReference(t *testing.T) {
	l := testLayout(t)
	s := newTestServer(t, Config{})
	base := fillJob(l, 7, pack.SchemeCSS)
	count := seq.Count(base.Mask)
	vec := make([]int, count)
	for i := range vec {
		vec[i] = 2_000_000 + 5*i
	}
	job := &Job{Tenant: "t", Kind: JobUnpack, Layout: l,
		Global: base.Global, Mask: base.Mask, Vector: vec, Scheme: pack.SchemeCSS}
	fut, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Unpack(vec, job.Mask, job.Global)
	if len(resp.Array) != len(want) {
		t.Fatalf("unpacked %d elements, want %d", len(resp.Array), len(want))
	}
	for i := range want {
		if resp.Array[i] != want[i] {
			t.Fatalf("unpacked[%d] = %d, want %d", i, resp.Array[i], want[i])
		}
	}
	if resp.Count != count {
		t.Fatalf("count %d, want %d", resp.Count, count)
	}
}

// TestOverloadedDeterministic pins the backpressure contract: with one
// worker held at a gate and the admission queue full, the next Submit
// returns *ErrOverloaded — every time, immediately, with a positive
// retry hint — and the queued jobs still complete once the gate opens.
func TestOverloadedDeterministic(t *testing.T) {
	l := testLayout(t)
	s := newTestServer(t, Config{Workers: 1, Queue: 2})
	gate := make(chan struct{})

	blocker := fillJob(l, 1, pack.SchemeSSS)
	blocker.gate = gate
	bfut, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the blocker up (depth drains to 0),
	// so the queue capacity below is exactly the two slots.
	for i := 0; s.depth.Load() != 0; i++ {
		if i > 10_000 {
			t.Fatal("worker never picked up the gated job")
		}
		time.Sleep(100 * time.Microsecond)
	}

	var queued []*Future
	for i := 0; i < 2; i++ {
		fut, err := s.Submit(fillJob(l, uint64(10+i), pack.SchemeCSS))
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		queued = append(queued, fut)
	}
	// Queue is now full; every further Submit must bounce, and must do
	// so deterministically (no sleeps, no flakes).
	for i := 0; i < 10; i++ {
		_, err := s.Submit(fillJob(l, uint64(100+i), pack.SchemeCMS))
		if !IsOverloaded(err) {
			t.Fatalf("attempt %d: got %v, want ErrOverloaded", i, err)
		}
		var o *ErrOverloaded
		errors.As(err, &o)
		if o.Capacity != 2 || o.Queued != 2 {
			t.Fatalf("attempt %d: queue %d/%d, want 2/2", i, o.Queued, o.Capacity)
		}
		if o.RetryAfter <= 0 {
			t.Fatalf("attempt %d: non-positive RetryAfter %v", i, o.RetryAfter)
		}
	}

	close(gate)
	if _, err := bfut.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	for i, fut := range queued {
		if _, err := fut.Wait(); err != nil {
			t.Fatalf("queued %d: %v", i, err)
		}
	}
}

// TestCloseDrains pins drain-on-shutdown: Close completes every
// admitted job before returning, and Submit afterwards reports
// ErrClosed.
func TestCloseDrains(t *testing.T) {
	l := testLayout(t)
	s := newTestServer(t, Config{Workers: 2, Queue: 32})
	var futs []*Future
	for i := 0; i < 16; i++ {
		fut, err := s.Submit(fillJob(l, uint64(1+i), pack.SchemeCMS))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futs = append(futs, fut)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, fut := range futs {
		select {
		case <-fut.Done():
		default:
			t.Fatalf("job %d not complete after Close returned", i)
		}
		if _, err := fut.Wait(); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if _, err := s.Submit(fillJob(l, 99, pack.SchemeSSS)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}

func TestBadJobRejectedBeforeAdmission(t *testing.T) {
	l := testLayout(t)
	s := newTestServer(t, Config{})
	cases := []*Job{
		nil,
		{Kind: JobPack},
		{Kind: JobPack, Layout: l, Global: make([]int, 3), Mask: make([]bool, 64)},
		{Kind: JobPack, Layout: l, Global: make([]int, 64), Mask: make([]bool, 3)},
		{Kind: JobKind(9), Layout: l, Global: make([]int, 64), Mask: make([]bool, 64)},
	}
	for i, job := range cases {
		if _, err := s.Submit(job); !errors.Is(err, ErrBadJob) {
			t.Fatalf("case %d: got %v, want ErrBadJob", i, err)
		}
	}
}

// TestTelemetryNeverPerturbsService extends the PR 8 invariant to the
// service path: attaching a metrics registry must not change a single
// response byte or virtual microsecond. Jobs are submitted
// sequentially so the shared plan cache traverses the same state
// sequence in both runs.
func TestTelemetryNeverPerturbsService(t *testing.T) {
	l := testLayout(t)
	run := func(reg *metrics.Registry) (vecs [][]int, virts []float64) {
		s := newTestServer(t, Config{Workers: 2, Metrics: reg})
		defer s.Close()
		for seed := uint64(1); seed <= 6; seed++ {
			fut, err := s.Submit(fillJob(l, seed, pack.SchemeCMS))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := fut.Wait()
			if err != nil {
				t.Fatal(err)
			}
			vecs = append(vecs, resp.Vector)
			virts = append(virts, resp.VirtualUS)
		}
		return vecs, virts
	}

	bareVecs, bareVirts := run(nil)
	reg := metrics.NewRegistry()
	instVecs, instVirts := run(reg)

	for i := range bareVecs {
		if len(bareVecs[i]) != len(instVecs[i]) {
			t.Fatalf("job %d: result length changed with telemetry attached", i)
		}
		for j := range bareVecs[i] {
			if bareVecs[i][j] != instVecs[i][j] {
				t.Fatalf("job %d: byte %d changed with telemetry attached", i, j)
			}
		}
		if bareVirts[i] != instVirts[i] {
			t.Fatalf("job %d: virtual makespan %v -> %v with telemetry attached", i, bareVirts[i], instVirts[i])
		}
	}

	snap := reg.Snapshot()
	if f, ok := snap.Family("serve_jobs_total"); !ok || f.Total() != 6 {
		t.Fatalf("serve_jobs_total = %v, want 6 jobs recorded", f.Total())
	}
	if f, ok := snap.Family("serve_latency_us"); !ok {
		t.Fatal("serve_latency_us family missing")
	} else if c, ok := f.Child("total"); !ok || c.Count != 6 {
		t.Fatalf("serve_latency_us{total} count = %d, want 6", c.Count)
	}
}

// TestTenantPlanCacheSharing pins the per-tenant amortization: repeat
// jobs of one tenant hit its shared cache, while a second tenant
// compiles its own plans.
func TestTenantPlanCacheSharing(t *testing.T) {
	l := testLayout(t)
	s := newTestServer(t, Config{Workers: 1})
	job := fillJob(l, 3, pack.SchemeCMS)
	for call := 0; call < 3; call++ {
		fut, err := s.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	other := fillJob(l, 3, pack.SchemeCMS)
	other.Tenant = "other"
	fut, err := s.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}

	st := s.TenantPlanStats("t")
	if st.Misses != 4 { // one compile per rank on the first call
		t.Fatalf("tenant t: %d misses, want 4", st.Misses)
	}
	if st.Hits != 8 { // two repeat calls x 4 ranks
		t.Fatalf("tenant t: %d hits, want 8", st.Hits)
	}
	so := s.TenantPlanStats("other")
	if so.Misses != 4 || so.Hits != 0 {
		t.Fatalf("tenant other: %+v, want 4 misses 0 hits (no cross-tenant sharing)", so)
	}
}
