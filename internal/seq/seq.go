// Package seq implements sequential reference semantics for the
// Fortran 90 / HPF PACK and UNPACK intrinsics on flat row-major arrays.
// It serves as the correctness oracle for the parallel algorithms and
// as the single-processor baseline in the benchmarks.
//
// Because ranking order is global row-major order, the reference
// functions are rank-agnostic: a rank-d array is passed as its flat
// row-major buffer (dimension 0 fastest), which is exactly the order in
// which PACK gathers elements.
package seq

import "fmt"

// Pack gathers the elements of a selected by m into a new vector, in
// array element order. len(m) must equal len(a).
func Pack[T any](a []T, m []bool) []T {
	if len(a) != len(m) {
		panic(fmt.Sprintf("seq: Pack length mismatch: array %d, mask %d", len(a), len(m)))
	}
	var out []T
	for i, sel := range m {
		if sel {
			out = append(out, a[i])
		}
	}
	return out
}

// PackVector implements the Fortran 90 optional VECTOR argument of
// PACK: the result has the length of vector, its leading elements are
// the selected elements of a, and the remaining positions keep the
// corresponding elements of vector. vector must hold at least Count(m)
// elements.
func PackVector[T any](a []T, m []bool, vector []T) []T {
	packed := Pack(a, m)
	if len(packed) > len(vector) {
		panic(fmt.Sprintf("seq: PackVector vector too short: %d < %d", len(vector), len(packed)))
	}
	out := make([]T, len(vector))
	copy(out, vector)
	copy(out, packed)
	return out
}

// Count returns the number of true values in m (the Size of PACK's
// result).
func Count(m []bool) int {
	n := 0
	for _, sel := range m {
		if sel {
			n++
		}
	}
	return n
}

// Unpack scatters v into a new array shaped like m: position i receives
// the next element of v if m[i] is true, and f[i] otherwise. len(f)
// must equal len(m), and v must hold at least Count(m) elements (the
// paper's N' >= Size requirement).
func Unpack[T any](v []T, m []bool, f []T) []T {
	if len(f) != len(m) {
		panic(fmt.Sprintf("seq: Unpack length mismatch: field %d, mask %d", len(f), len(m)))
	}
	out := make([]T, len(m))
	r := 0
	for i, sel := range m {
		if sel {
			if r >= len(v) {
				panic(fmt.Sprintf("seq: Unpack vector too short: need > %d elements, have %d", r, len(v)))
			}
			out[i] = v[r]
			r++
		} else {
			out[i] = f[i]
		}
	}
	return out
}

// Ranks returns, for every true position of m, its rank (0-based index
// in the packed vector), and -1 for false positions. This is the oracle
// for the parallel ranking algorithm of Section 5.
func Ranks(m []bool) []int {
	out := make([]int, len(m))
	r := 0
	for i, sel := range m {
		if sel {
			out[i] = r
			r++
		} else {
			out[i] = -1
		}
	}
	return out
}
