package seq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPackBasic(t *testing.T) {
	a := []int{10, 20, 30, 40, 50}
	m := []bool{true, false, true, true, false}
	want := []int{10, 30, 40}
	if got := Pack(a, m); !reflect.DeepEqual(got, want) {
		t.Fatalf("Pack = %v, want %v", got, want)
	}
}

func TestPackEmptyAndFull(t *testing.T) {
	a := []int{1, 2, 3}
	if got := Pack(a, []bool{false, false, false}); got != nil {
		t.Fatalf("empty mask should pack to nil, got %v", got)
	}
	if got := Pack(a, []bool{true, true, true}); !reflect.DeepEqual(got, a) {
		t.Fatalf("full mask should pack to the array, got %v", got)
	}
}

func TestPackGenericTypes(t *testing.T) {
	a := []string{"a", "b", "c"}
	m := []bool{false, true, true}
	if got := Pack(a, m); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Pack strings = %v", got)
	}
}

func TestPackLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Pack([]int{1, 2}, []bool{true})
}

func TestCount(t *testing.T) {
	if Count([]bool{true, false, true}) != 2 {
		t.Fatal("Count wrong")
	}
	if Count(nil) != 0 {
		t.Fatal("Count(nil) wrong")
	}
}

func TestUnpackBasic(t *testing.T) {
	v := []int{100, 200, 300}
	m := []bool{false, true, false, true, true}
	f := []int{1, 2, 3, 4, 5}
	want := []int{1, 100, 3, 200, 300}
	if got := Unpack(v, m, f); !reflect.DeepEqual(got, want) {
		t.Fatalf("Unpack = %v, want %v", got, want)
	}
}

func TestUnpackVectorLongerThanSize(t *testing.T) {
	// N' > Size: extra vector elements are ignored.
	v := []int{100, 200, 300, 400}
	m := []bool{true, false}
	f := []int{1, 2}
	if got := Unpack(v, m, f); !reflect.DeepEqual(got, []int{100, 2}) {
		t.Fatalf("Unpack = %v", got)
	}
}

func TestUnpackVectorTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short vector")
		}
	}()
	Unpack([]int{1}, []bool{true, true}, []int{0, 0})
}

func TestUnpackFieldMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on field mismatch")
		}
	}()
	Unpack([]int{1}, []bool{true, false}, []int{0})
}

func TestRanks(t *testing.T) {
	m := []bool{true, false, true, true, false, true}
	want := []int{0, -1, 1, 2, -1, 3}
	if got := Ranks(m); !reflect.DeepEqual(got, want) {
		t.Fatalf("Ranks = %v, want %v", got, want)
	}
}

// TestPackUnpackRoundTrip: UNPACK(PACK(a,m), m, a) == a.
func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%64) + 1
		a := make([]int, size)
		m := make([]bool, size)
		for i := range a {
			a[i] = rng.Int()
			m[i] = rng.Intn(2) == 0
		}
		v := Pack(a, m)
		back := Unpack(v, m, a)
		return reflect.DeepEqual(back, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRanksConsistentWithPack: element with rank r lands at V[r].
func TestRanksConsistentWithPack(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%64) + 1
		a := make([]int, size)
		m := make([]bool, size)
		for i := range a {
			a[i] = rng.Int()
			m[i] = rng.Intn(3) != 0
		}
		v := Pack(a, m)
		for i, r := range Ranks(m) {
			if r >= 0 && v[r] != a[i] {
				return false
			}
			if r < 0 && m[i] {
				return false
			}
		}
		return Count(m) == len(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackVector(t *testing.T) {
	a := []int{1, 2, 3, 4}
	m := []bool{true, false, true, false}
	vector := []int{-1, -2, -3, -4, -5}
	want := []int{1, 3, -3, -4, -5}
	if got := PackVector(a, m, vector); !reflect.DeepEqual(got, want) {
		t.Fatalf("PackVector = %v, want %v", got, want)
	}
	// The pad vector itself must not be modified.
	if !reflect.DeepEqual(vector, []int{-1, -2, -3, -4, -5}) {
		t.Fatal("PackVector modified its vector argument")
	}
}

func TestPackVectorTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short vector")
		}
	}()
	PackVector([]int{1, 2}, []bool{true, true}, []int{9})
}
